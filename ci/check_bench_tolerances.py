#!/usr/bin/env python3
"""Gate the reproduced Table 1/2 savings against EXPERIMENTS.md.

Usage: check_bench_tolerances.py TOLERANCES.json BENCH_JSON_DIR

Reads BENCH_table1.json / BENCH_table2.json (emitted by bench_table1 /
bench_table2, schema opiso.bench_table/v1) from BENCH_JSON_DIR and
compares every row's power_reduction_pct against the expected value in
TOLERANCES.json. Exits non-zero if any row is missing or drifts by more
than tolerance_pct_points — so CI fails when a change silently shifts
the reproduction numbers even though the unit tests still pass.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        spec = json.load(f)
    if spec.get("schema") != "opiso.bench_tolerances/v1":
        print(f"error: {sys.argv[1]}: unexpected schema {spec.get('schema')!r}",
              file=sys.stderr)
        return 2
    bench_dir = sys.argv[2]
    tol = float(spec["tolerance_pct_points"])

    failures = 0
    for table, expected_rows in sorted(spec["tables"].items()):
        path = f"{bench_dir}/BENCH_{table}.json"
        try:
            with open(path) as f:
                doc = json.load(f)
        except OSError as e:
            print(f"FAIL {table}: cannot read {path}: {e}")
            failures += 1
            continue
        if doc.get("schema") != "opiso.bench_table/v1":
            print(f"FAIL {table}: unexpected schema {doc.get('schema')!r}")
            failures += 1
            continue
        measured = {row["label"]: float(row["power_reduction_pct"])
                    for row in doc.get("rows", [])}
        for label, expect in sorted(expected_rows.items()):
            if label not in measured:
                print(f"FAIL {table}/{label}: row missing from {path}")
                failures += 1
                continue
            got = measured[label]
            delta = got - float(expect)
            verdict = "ok  " if abs(delta) <= tol else "FAIL"
            print(f"{verdict} {table}/{label}: measured {got:6.2f}%  "
                  f"expected {expect:5.1f}%  delta {delta:+5.2f} "
                  f"(tolerance +/-{tol})")
            if abs(delta) > tol:
                failures += 1

    if failures:
        print(f"\n{failures} row(s) outside tolerance — the reproduced "
              "Table 1/2 savings drifted from EXPERIMENTS.md.")
        return 1
    print("\nall rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
