file(REMOVE_RECURSE
  "CMakeFiles/opiso_power.dir/area_model.cpp.o"
  "CMakeFiles/opiso_power.dir/area_model.cpp.o.d"
  "CMakeFiles/opiso_power.dir/bit_model.cpp.o"
  "CMakeFiles/opiso_power.dir/bit_model.cpp.o.d"
  "CMakeFiles/opiso_power.dir/estimator.cpp.o"
  "CMakeFiles/opiso_power.dir/estimator.cpp.o.d"
  "CMakeFiles/opiso_power.dir/macro_model.cpp.o"
  "CMakeFiles/opiso_power.dir/macro_model.cpp.o.d"
  "libopiso_power.a"
  "libopiso_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
