# Empty dependencies file for opiso_power.
# This may be replaced when dependencies are built.
