file(REMOVE_RECURSE
  "libopiso_power.a"
)
