
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/area_model.cpp" "src/power/CMakeFiles/opiso_power.dir/area_model.cpp.o" "gcc" "src/power/CMakeFiles/opiso_power.dir/area_model.cpp.o.d"
  "/root/repo/src/power/bit_model.cpp" "src/power/CMakeFiles/opiso_power.dir/bit_model.cpp.o" "gcc" "src/power/CMakeFiles/opiso_power.dir/bit_model.cpp.o.d"
  "/root/repo/src/power/estimator.cpp" "src/power/CMakeFiles/opiso_power.dir/estimator.cpp.o" "gcc" "src/power/CMakeFiles/opiso_power.dir/estimator.cpp.o.d"
  "/root/repo/src/power/macro_model.cpp" "src/power/CMakeFiles/opiso_power.dir/macro_model.cpp.o" "gcc" "src/power/CMakeFiles/opiso_power.dir/macro_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/opiso_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opiso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/opiso_boolfn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
