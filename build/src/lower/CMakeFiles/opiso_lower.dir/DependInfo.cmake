
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lower/gate_level.cpp" "src/lower/CMakeFiles/opiso_lower.dir/gate_level.cpp.o" "gcc" "src/lower/CMakeFiles/opiso_lower.dir/gate_level.cpp.o.d"
  "/root/repo/src/lower/gate_power.cpp" "src/lower/CMakeFiles/opiso_lower.dir/gate_power.cpp.o" "gcc" "src/lower/CMakeFiles/opiso_lower.dir/gate_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/opiso_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opiso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/opiso_power.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/opiso_boolfn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
