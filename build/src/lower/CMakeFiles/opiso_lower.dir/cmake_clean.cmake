file(REMOVE_RECURSE
  "CMakeFiles/opiso_lower.dir/gate_level.cpp.o"
  "CMakeFiles/opiso_lower.dir/gate_level.cpp.o.d"
  "CMakeFiles/opiso_lower.dir/gate_power.cpp.o"
  "CMakeFiles/opiso_lower.dir/gate_power.cpp.o.d"
  "libopiso_lower.a"
  "libopiso_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
