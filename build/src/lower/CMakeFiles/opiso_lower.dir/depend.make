# Empty dependencies file for opiso_lower.
# This may be replaced when dependencies are built.
