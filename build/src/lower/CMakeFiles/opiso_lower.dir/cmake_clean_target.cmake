file(REMOVE_RECURSE
  "libopiso_lower.a"
)
