file(REMOVE_RECURSE
  "libopiso_fsm.a"
)
