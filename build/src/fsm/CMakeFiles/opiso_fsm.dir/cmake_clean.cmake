file(REMOVE_RECURSE
  "CMakeFiles/opiso_fsm.dir/reachability.cpp.o"
  "CMakeFiles/opiso_fsm.dir/reachability.cpp.o.d"
  "libopiso_fsm.a"
  "libopiso_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
