# Empty dependencies file for opiso_fsm.
# This may be replaced when dependencies are built.
