file(REMOVE_RECURSE
  "libopiso_sim.a"
)
