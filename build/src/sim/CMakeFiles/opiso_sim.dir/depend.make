# Empty dependencies file for opiso_sim.
# This may be replaced when dependencies are built.
