file(REMOVE_RECURSE
  "CMakeFiles/opiso_sim.dir/activity.cpp.o"
  "CMakeFiles/opiso_sim.dir/activity.cpp.o.d"
  "CMakeFiles/opiso_sim.dir/simulator.cpp.o"
  "CMakeFiles/opiso_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/opiso_sim.dir/stimulus.cpp.o"
  "CMakeFiles/opiso_sim.dir/stimulus.cpp.o.d"
  "libopiso_sim.a"
  "libopiso_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
