file(REMOVE_RECURSE
  "CMakeFiles/opiso_frontend.dir/rtl_parser.cpp.o"
  "CMakeFiles/opiso_frontend.dir/rtl_parser.cpp.o.d"
  "libopiso_frontend.a"
  "libopiso_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
