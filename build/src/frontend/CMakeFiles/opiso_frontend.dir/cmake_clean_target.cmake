file(REMOVE_RECURSE
  "libopiso_frontend.a"
)
