# Empty dependencies file for opiso_frontend.
# This may be replaced when dependencies are built.
