file(REMOVE_RECURSE
  "CMakeFiles/opiso_designs.dir/design1.cpp.o"
  "CMakeFiles/opiso_designs.dir/design1.cpp.o.d"
  "CMakeFiles/opiso_designs.dir/design2.cpp.o"
  "CMakeFiles/opiso_designs.dir/design2.cpp.o.d"
  "CMakeFiles/opiso_designs.dir/fig1.cpp.o"
  "CMakeFiles/opiso_designs.dir/fig1.cpp.o.d"
  "CMakeFiles/opiso_designs.dir/parametric.cpp.o"
  "CMakeFiles/opiso_designs.dir/parametric.cpp.o.d"
  "CMakeFiles/opiso_designs.dir/random_design.cpp.o"
  "CMakeFiles/opiso_designs.dir/random_design.cpp.o.d"
  "libopiso_designs.a"
  "libopiso_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
