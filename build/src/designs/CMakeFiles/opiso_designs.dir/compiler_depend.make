# Empty compiler generated dependencies file for opiso_designs.
# This may be replaced when dependencies are built.
