
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designs/design1.cpp" "src/designs/CMakeFiles/opiso_designs.dir/design1.cpp.o" "gcc" "src/designs/CMakeFiles/opiso_designs.dir/design1.cpp.o.d"
  "/root/repo/src/designs/design2.cpp" "src/designs/CMakeFiles/opiso_designs.dir/design2.cpp.o" "gcc" "src/designs/CMakeFiles/opiso_designs.dir/design2.cpp.o.d"
  "/root/repo/src/designs/fig1.cpp" "src/designs/CMakeFiles/opiso_designs.dir/fig1.cpp.o" "gcc" "src/designs/CMakeFiles/opiso_designs.dir/fig1.cpp.o.d"
  "/root/repo/src/designs/parametric.cpp" "src/designs/CMakeFiles/opiso_designs.dir/parametric.cpp.o" "gcc" "src/designs/CMakeFiles/opiso_designs.dir/parametric.cpp.o.d"
  "/root/repo/src/designs/random_design.cpp" "src/designs/CMakeFiles/opiso_designs.dir/random_design.cpp.o" "gcc" "src/designs/CMakeFiles/opiso_designs.dir/random_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/opiso_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
