file(REMOVE_RECURSE
  "libopiso_designs.a"
)
