# Empty compiler generated dependencies file for opiso_verify.
# This may be replaced when dependencies are built.
