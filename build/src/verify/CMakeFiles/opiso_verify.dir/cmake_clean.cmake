file(REMOVE_RECURSE
  "CMakeFiles/opiso_verify.dir/equiv.cpp.o"
  "CMakeFiles/opiso_verify.dir/equiv.cpp.o.d"
  "libopiso_verify.a"
  "libopiso_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
