file(REMOVE_RECURSE
  "libopiso_verify.a"
)
