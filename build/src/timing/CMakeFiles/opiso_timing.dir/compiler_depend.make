# Empty compiler generated dependencies file for opiso_timing.
# This may be replaced when dependencies are built.
