file(REMOVE_RECURSE
  "CMakeFiles/opiso_timing.dir/delay_model.cpp.o"
  "CMakeFiles/opiso_timing.dir/delay_model.cpp.o.d"
  "CMakeFiles/opiso_timing.dir/sta.cpp.o"
  "CMakeFiles/opiso_timing.dir/sta.cpp.o.d"
  "libopiso_timing.a"
  "libopiso_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
