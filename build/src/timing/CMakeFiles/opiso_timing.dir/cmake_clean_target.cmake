file(REMOVE_RECURSE
  "libopiso_timing.a"
)
