file(REMOVE_RECURSE
  "CMakeFiles/opiso_netlist.dir/cell.cpp.o"
  "CMakeFiles/opiso_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/opiso_netlist.dir/netlist.cpp.o"
  "CMakeFiles/opiso_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/opiso_netlist.dir/stats.cpp.o"
  "CMakeFiles/opiso_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/opiso_netlist.dir/text_io.cpp.o"
  "CMakeFiles/opiso_netlist.dir/text_io.cpp.o.d"
  "CMakeFiles/opiso_netlist.dir/traversal.cpp.o"
  "CMakeFiles/opiso_netlist.dir/traversal.cpp.o.d"
  "libopiso_netlist.a"
  "libopiso_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
