# Empty dependencies file for opiso_netlist.
# This may be replaced when dependencies are built.
