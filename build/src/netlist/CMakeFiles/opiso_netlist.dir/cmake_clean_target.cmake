file(REMOVE_RECURSE
  "libopiso_netlist.a"
)
