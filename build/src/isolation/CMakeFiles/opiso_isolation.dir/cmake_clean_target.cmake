file(REMOVE_RECURSE
  "libopiso_isolation.a"
)
