
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isolation/activation.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/activation.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/activation.cpp.o.d"
  "/root/repo/src/isolation/algorithm.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/algorithm.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/algorithm.cpp.o.d"
  "/root/repo/src/isolation/candidates.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/candidates.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/candidates.cpp.o.d"
  "/root/repo/src/isolation/muxfn.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/muxfn.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/muxfn.cpp.o.d"
  "/root/repo/src/isolation/report.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/report.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/report.cpp.o.d"
  "/root/repo/src/isolation/savings.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/savings.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/savings.cpp.o.d"
  "/root/repo/src/isolation/transform.cpp" "src/isolation/CMakeFiles/opiso_isolation.dir/transform.cpp.o" "gcc" "src/isolation/CMakeFiles/opiso_isolation.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/opiso_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/opiso_boolfn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opiso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/opiso_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/opiso_power.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/opiso_fsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
