# Empty dependencies file for opiso_isolation.
# This may be replaced when dependencies are built.
