file(REMOVE_RECURSE
  "CMakeFiles/opiso_isolation.dir/activation.cpp.o"
  "CMakeFiles/opiso_isolation.dir/activation.cpp.o.d"
  "CMakeFiles/opiso_isolation.dir/algorithm.cpp.o"
  "CMakeFiles/opiso_isolation.dir/algorithm.cpp.o.d"
  "CMakeFiles/opiso_isolation.dir/candidates.cpp.o"
  "CMakeFiles/opiso_isolation.dir/candidates.cpp.o.d"
  "CMakeFiles/opiso_isolation.dir/muxfn.cpp.o"
  "CMakeFiles/opiso_isolation.dir/muxfn.cpp.o.d"
  "CMakeFiles/opiso_isolation.dir/report.cpp.o"
  "CMakeFiles/opiso_isolation.dir/report.cpp.o.d"
  "CMakeFiles/opiso_isolation.dir/savings.cpp.o"
  "CMakeFiles/opiso_isolation.dir/savings.cpp.o.d"
  "CMakeFiles/opiso_isolation.dir/transform.cpp.o"
  "CMakeFiles/opiso_isolation.dir/transform.cpp.o.d"
  "libopiso_isolation.a"
  "libopiso_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
