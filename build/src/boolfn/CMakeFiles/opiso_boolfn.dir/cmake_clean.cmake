file(REMOVE_RECURSE
  "CMakeFiles/opiso_boolfn.dir/bdd.cpp.o"
  "CMakeFiles/opiso_boolfn.dir/bdd.cpp.o.d"
  "CMakeFiles/opiso_boolfn.dir/expr.cpp.o"
  "CMakeFiles/opiso_boolfn.dir/expr.cpp.o.d"
  "CMakeFiles/opiso_boolfn.dir/sop.cpp.o"
  "CMakeFiles/opiso_boolfn.dir/sop.cpp.o.d"
  "libopiso_boolfn.a"
  "libopiso_boolfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_boolfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
