file(REMOVE_RECURSE
  "libopiso_boolfn.a"
)
