# Empty compiler generated dependencies file for opiso_boolfn.
# This may be replaced when dependencies are built.
