file(REMOVE_RECURSE
  "libopiso_baseline.a"
)
