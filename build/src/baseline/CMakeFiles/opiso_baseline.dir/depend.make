# Empty dependencies file for opiso_baseline.
# This may be replaced when dependencies are built.
