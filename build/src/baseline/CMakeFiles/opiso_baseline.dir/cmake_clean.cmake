file(REMOVE_RECURSE
  "CMakeFiles/opiso_baseline.dir/control_signal_gating.cpp.o"
  "CMakeFiles/opiso_baseline.dir/control_signal_gating.cpp.o.d"
  "CMakeFiles/opiso_baseline.dir/guarded_eval.cpp.o"
  "CMakeFiles/opiso_baseline.dir/guarded_eval.cpp.o.d"
  "libopiso_baseline.a"
  "libopiso_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
