# Empty dependencies file for opiso_opt.
# This may be replaced when dependencies are built.
