file(REMOVE_RECURSE
  "CMakeFiles/opiso_opt.dir/passes.cpp.o"
  "CMakeFiles/opiso_opt.dir/passes.cpp.o.d"
  "libopiso_opt.a"
  "libopiso_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
