file(REMOVE_RECURSE
  "libopiso_opt.a"
)
