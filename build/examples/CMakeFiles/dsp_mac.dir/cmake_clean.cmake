file(REMOVE_RECURSE
  "CMakeFiles/dsp_mac.dir/dsp_mac.cpp.o"
  "CMakeFiles/dsp_mac.dir/dsp_mac.cpp.o.d"
  "dsp_mac"
  "dsp_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
