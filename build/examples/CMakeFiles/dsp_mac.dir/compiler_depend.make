# Empty compiler generated dependencies file for dsp_mac.
# This may be replaced when dependencies are built.
