file(REMOVE_RECURSE
  "CMakeFiles/reused_core.dir/reused_core.cpp.o"
  "CMakeFiles/reused_core.dir/reused_core.cpp.o.d"
  "reused_core"
  "reused_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reused_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
