# Empty dependencies file for reused_core.
# This may be replaced when dependencies are built.
