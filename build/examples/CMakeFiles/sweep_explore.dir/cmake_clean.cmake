file(REMOVE_RECURSE
  "CMakeFiles/sweep_explore.dir/sweep_explore.cpp.o"
  "CMakeFiles/sweep_explore.dir/sweep_explore.cpp.o.d"
  "sweep_explore"
  "sweep_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
