# Empty compiler generated dependencies file for sweep_explore.
# This may be replaced when dependencies are built.
