file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm.dir/test_algorithm.cpp.o"
  "CMakeFiles/test_algorithm.dir/test_algorithm.cpp.o.d"
  "test_algorithm"
  "test_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
