# Empty dependencies file for test_lookahead.
# This may be replaced when dependencies are built.
