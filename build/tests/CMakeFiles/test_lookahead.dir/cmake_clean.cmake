file(REMOVE_RECURSE
  "CMakeFiles/test_lookahead.dir/test_lookahead.cpp.o"
  "CMakeFiles/test_lookahead.dir/test_lookahead.cpp.o.d"
  "test_lookahead"
  "test_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
