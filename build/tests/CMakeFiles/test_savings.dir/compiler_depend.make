# Empty compiler generated dependencies file for test_savings.
# This may be replaced when dependencies are built.
