file(REMOVE_RECURSE
  "CMakeFiles/test_savings.dir/test_savings.cpp.o"
  "CMakeFiles/test_savings.dir/test_savings.cpp.o.d"
  "test_savings"
  "test_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
