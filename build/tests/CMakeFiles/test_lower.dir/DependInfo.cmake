
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_lower.cpp" "tests/CMakeFiles/test_lower.dir/test_lower.cpp.o" "gcc" "tests/CMakeFiles/test_lower.dir/test_lower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isolation/CMakeFiles/opiso_isolation.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/opiso_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/designs/CMakeFiles/opiso_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/opiso_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/opiso_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/lower/CMakeFiles/opiso_lower.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/opiso_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/opiso_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/opiso_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/opiso_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/opiso_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/opiso_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/boolfn/CMakeFiles/opiso_boolfn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
