file(REMOVE_RECURSE
  "CMakeFiles/test_muxfn.dir/test_muxfn.cpp.o"
  "CMakeFiles/test_muxfn.dir/test_muxfn.cpp.o.d"
  "test_muxfn"
  "test_muxfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_muxfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
