# Empty compiler generated dependencies file for test_muxfn.
# This may be replaced when dependencies are built.
