# Empty dependencies file for test_stimulus.
# This may be replaced when dependencies are built.
