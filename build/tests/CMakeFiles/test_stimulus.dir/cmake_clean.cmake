file(REMOVE_RECURSE
  "CMakeFiles/test_stimulus.dir/test_stimulus.cpp.o"
  "CMakeFiles/test_stimulus.dir/test_stimulus.cpp.o.d"
  "test_stimulus"
  "test_stimulus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stimulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
