file(REMOVE_RECURSE
  "CMakeFiles/opiso_cli.dir/opiso_cli.cpp.o"
  "CMakeFiles/opiso_cli.dir/opiso_cli.cpp.o.d"
  "opiso"
  "opiso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opiso_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
