# Empty compiler generated dependencies file for opiso_cli.
# This may be replaced when dependencies are built.
