# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_stats "/root/repo/build/tools/opiso" "stats" "/root/repo/designs_rtl/fig1.rtl")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_activation "/root/repo/build/tools/opiso" "activation" "/root/repo/designs_rtl/design1.rtl")
set_tests_properties(cli_activation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_isolate_verify "sh" "-c" "/root/repo/build/tools/opiso isolate /root/repo/designs_rtl/fig1.rtl --style and -o /root/repo/build/fig1_iso.rtn && /root/repo/build/tools/opiso verify /root/repo/designs_rtl/fig1.rtl /root/repo/build/fig1_iso.rtn")
set_tests_properties(cli_isolate_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_optimize "sh" "-c" "/root/repo/build/tools/opiso optimize /root/repo/designs_rtl/fir4.rtl -o /root/repo/build/fir4_opt.rtn")
set_tests_properties(cli_optimize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
