# Empty dependencies file for bench_power_models.
# This may be replaced when dependencies are built.
