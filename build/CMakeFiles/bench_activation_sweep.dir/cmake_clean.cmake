file(REMOVE_RECURSE
  "CMakeFiles/bench_activation_sweep.dir/bench/bench_activation_sweep.cpp.o"
  "CMakeFiles/bench_activation_sweep.dir/bench/bench_activation_sweep.cpp.o.d"
  "bench/bench_activation_sweep"
  "bench/bench_activation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
