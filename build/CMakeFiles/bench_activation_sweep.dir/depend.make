# Empty dependencies file for bench_activation_sweep.
# This may be replaced when dependencies are built.
