// Tests for the macro power models, the area model and the whole-design
// power estimator.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "power/estimator.hpp"
#include "sim/simulator.hpp"

namespace opiso {
namespace {

TEST(MacroModel, MonotoneInToggleRate) {
  MacroPowerModel m;
  const double lo = m.module_power_mw(CellKind::Add, 8, 0.5, 0.5);
  const double hi = m.module_power_mw(CellKind::Add, 8, 4.0, 4.0);
  EXPECT_GT(hi, lo);
  EXPECT_GT(lo, 0.0);  // static term keeps idle power nonzero
}

TEST(MacroModel, ZeroActivityLeavesOnlyStaticPower) {
  MacroPowerModel m;
  const double idle = m.module_power_mw(CellKind::Add, 8, 0.0, 0.0);
  EXPECT_NEAR(idle, m.static_energy_pj(CellKind::Add, 8) * m.clock_freq_mhz * 1e-3, 1e-12);
}

TEST(MacroModel, MultiplierCostsMoreThanAdder) {
  MacroPowerModel m;
  EXPECT_GT(m.module_power_mw(CellKind::Mul, 8, 2.0, 2.0),
            m.module_power_mw(CellKind::Add, 8, 2.0, 2.0));
}

TEST(MacroModel, WiderModulesCostMore) {
  MacroPowerModel m;
  EXPECT_GT(m.module_power_mw(CellKind::Add, 16, 2.0, 2.0),
            m.module_power_mw(CellKind::Add, 4, 2.0, 2.0));
}

TEST(MacroModel, LatchBankCostsMoreThanGateBank) {
  // The Sec.-6 finding hinges on latch isolation carrying a standing
  // overhead that AND/OR banks do not.
  MacroPowerModel m;
  EXPECT_GT(m.module_power_mw(CellKind::IsoLatch, 8, 1.0, 0.2),
            m.module_power_mw(CellKind::IsoAnd, 8, 1.0, 0.2));
  EXPECT_GT(m.static_energy_pj(CellKind::IsoLatch, 8),
            m.static_energy_pj(CellKind::IsoAnd, 8));
}

TEST(MacroModel, RejectsNegativeToggleRates) {
  MacroPowerModel m;
  EXPECT_THROW((void)m.module_power_mw(CellKind::Add, 8, -1.0, 0.0), Error);
}

TEST(MacroModel, LinearInPortRates) {
  // The per-port decomposition used by the savings model requires
  // p(a, b) - p(0, b) to be independent of b.
  MacroPowerModel m;
  const double d1 = m.module_power_mw(CellKind::Mul, 8, 2.0, 0.5) -
                    m.module_power_mw(CellKind::Mul, 8, 0.0, 0.5);
  const double d2 = m.module_power_mw(CellKind::Mul, 8, 2.0, 3.5) -
                    m.module_power_mw(CellKind::Mul, 8, 0.0, 3.5);
  EXPECT_NEAR(d1, d2, 1e-12);
}

TEST(AreaModel, MultiplierGrowsQuadratically) {
  AreaModel a;
  const double w8 = a.cell_area_um2(CellKind::Mul, 8);
  const double w16 = a.cell_area_um2(CellKind::Mul, 16);
  EXPECT_NEAR(w16 / w8, 4.0, 1e-9);
}

TEST(AreaModel, LatchBankLargerThanGateBank) {
  AreaModel a;
  EXPECT_GT(a.cell_area_um2(CellKind::IsoLatch, 8), a.cell_area_um2(CellKind::IsoAnd, 8));
}

TEST(AreaModel, TotalsSumOverCells) {
  Netlist nl;
  NetId x = nl.add_input("x", 8);
  NetId y = nl.add_input("y", 8);
  NetId s = nl.add_binop(CellKind::Add, "s", x, y);
  nl.add_output("o", s);
  AreaModel a;
  EXPECT_NEAR(a.total_area_um2(nl), a.cell_area_um2(CellKind::Add, 8), 1e-9);
}

TEST(Estimator, BreakdownSumsToTotal) {
  const Netlist nl = make_design1(8);
  Simulator sim(nl);
  UniformStimulus stim(5);
  sim.run(stim, 512);
  const PowerBreakdown pb = PowerEstimator().estimate(nl, sim.stats());
  double cell_sum = 0.0;
  for (double mw : pb.cell_mw) cell_sum += mw;
  EXPECT_NEAR(pb.total_mw, cell_sum, 1e-9);
  EXPECT_NEAR(pb.total_mw, pb.arith_mw + pb.steering_mw + pb.sequential_mw + pb.isolation_mw,
              1e-9);
  EXPECT_GT(pb.arith_mw, 0.0);
  EXPECT_EQ(pb.isolation_mw, 0.0);  // nothing isolated yet
}

TEST(Estimator, IdleInputsCutArithPower) {
  const Netlist nl = make_design1(8);
  PowerEstimator est;

  Simulator busy(nl);
  UniformStimulus ustim(7);
  busy.run(ustim, 512);
  const double busy_mw = est.estimate(nl, busy.stats()).total_mw;

  Simulator idle(nl);
  ConstantStimulus cstim;  // everything frozen
  idle.run(cstim, 512);
  const double idle_mw = est.estimate(nl, idle.stats()).total_mw;
  EXPECT_LT(idle_mw, busy_mw * 0.5);
}

TEST(Estimator, InputToggleRatesMatchStats) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  Simulator sim(nl);
  VectorStimulus stim;
  stim.set("a", {0, 0xF, 0, 0xF});
  stim.set("b", {0, 0, 0, 0});
  sim.run(stim, 4);
  const auto rates = PowerEstimator().input_toggle_rates(nl, sim.stats(), nl.net(s).driver);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0], 3.0, 1e-12);  // 12 bit toggles / 4 cycles
  EXPECT_NEAR(rates[1], 0.0, 1e-12);
}

}  // namespace
}  // namespace opiso
