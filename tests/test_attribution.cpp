// Power-attribution ledger: the Eq. 1-5 terms recorded per candidate
// must sum to the totals the run report states — the accounting
// identity the ledger exists to prove. Runs the paper's three designs
// under two bank styles; labeled bench-smoke so the bench gate also
// exercises it.

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "obs/attribution.hpp"
#include "obs/run_report.hpp"

namespace opiso::obs {
namespace {

IsolationResult run_isolation(const Netlist& nl, IsolationStyle style) {
  IsolationOptions opt;
  opt.style = style;
  opt.sim_cycles = 512;
  return run_operand_isolation(
      nl, [] { return std::make_unique<UniformStimulus>(7); }, opt);
}

bool kind_is(const std::string& kind, const char* prefix) {
  return kind.rfind(prefix, 0) == 0;
}

TEST(Attribution, TermsSumToReportedTotals) {
  const std::vector<std::pair<std::string, std::function<Netlist()>>> designs = {
      {"fig1", [] { return make_fig1(); }},
      {"design1", [] { return make_design1(); }},
      {"design2", [] { return make_design2(); }},
  };
  for (const auto& [dname, make] : designs) {
    for (const IsolationStyle style : {IsolationStyle::And, IsolationStyle::Latch}) {
      SCOPED_TRACE(dname + "/" + std::string(isolation_style_name(style)));
      IsolationOptions opt;
      opt.style = style;
      opt.sim_cycles = 512;
      const IsolationResult res = run_operand_isolation(
          make(), [] { return std::make_unique<UniformStimulus>(7); }, opt);
      ASSERT_FALSE(res.iterations.empty());

      // In-memory identity: the sums of the recorded addends equal the
      // estimator's totals exactly (same additions, same order).
      bool any_terms = false;
      for (const IterationLog& log : res.iterations) {
        for (const CandidateEvaluation& ev : log.evaluations) {
          const AttributionSums sums = sum_attribution(ev.attribution);
          EXPECT_DOUBLE_EQ(sums.primary_mw, ev.primary_mw) << ev.cell_name;
          EXPECT_DOUBLE_EQ(sums.secondary_mw, ev.secondary_mw) << ev.cell_name;
          EXPECT_DOUBLE_EQ(sums.overhead_mw, ev.overhead_mw) << ev.cell_name;
          if (!ev.attribution.empty()) any_terms = true;
        }
      }
      EXPECT_TRUE(any_terms);

      // Report-level identity (the acceptance bound): re-sum the
      // serialized ledger terms and compare against the candidates[]
      // rows of the same document, within 1e-9.
      const JsonValue doc = build_run_report(res, opt);
      ASSERT_TRUE(doc.contains("power_attribution"));
      const JsonValue& ledger = doc.at("power_attribution");
      EXPECT_EQ(ledger.at("schema").as_string(), "opiso.power_attribution/v1");
      ASSERT_EQ(ledger.at("iterations").size(), doc.at("iterations").size());
      for (std::size_t i = 0; i < ledger.at("iterations").size(); ++i) {
        const JsonValue& rep_cands = doc.at("iterations").at(i).at("candidates");
        const JsonValue& led_cands = ledger.at("iterations").at(i).at("candidates");
        ASSERT_EQ(led_cands.size(), rep_cands.size());
        for (std::size_t j = 0; j < led_cands.size(); ++j) {
          const JsonValue& rep_c = rep_cands.at(j);
          const JsonValue& led_c = led_cands.at(j);
          EXPECT_EQ(led_c.at("cell").as_string(), rep_c.at("cell").as_string());
          EXPECT_EQ(led_c.at("decision").as_string(), rep_c.at("decision").as_string());
          double primary = 0.0, secondary = 0.0, overhead = 0.0;
          const JsonValue& terms = led_c.at("terms");
          for (std::size_t t = 0; t < terms.size(); ++t) {
            const std::string kind = terms.at(t).at("kind").as_string();
            const double mw = terms.at(t).at("mw").as_number();
            if (kind_is(kind, "primary.")) primary += mw;
            else if (kind_is(kind, "secondary.")) secondary += mw;
            else if (kind_is(kind, "overhead.")) overhead += mw;
            else ADD_FAILURE() << "unknown term kind " << kind;
          }
          EXPECT_NEAR(primary, rep_c.at("primary_mw").as_number(), 1e-9);
          EXPECT_NEAR(secondary, rep_c.at("secondary_mw").as_number(), 1e-9);
          EXPECT_NEAR(overhead, rep_c.at("overhead_mw").as_number(), 1e-9);
          // The ledger's own stated totals carry the same identity.
          EXPECT_NEAR(led_c.at("primary_mw").as_number(),
                      rep_c.at("primary_mw").as_number(), 1e-9);
          EXPECT_NEAR(led_c.at("net_mw").as_number(),
                      primary + secondary - overhead, 1e-9);
        }
      }
    }
  }
}

TEST(Attribution, TermsCarryModelProvenance) {
  const IsolationResult res = run_isolation(make_fig1(), IsolationStyle::And);
  bool saw_primary = false;
  bool saw_overhead = false;
  for (const IterationLog& log : res.iterations) {
    for (const CandidateEvaluation& ev : log.evaluations) {
      for (const SavingsTerm& t : ev.attribution) {
        if (kind_is(t.kind, "primary.")) {
          saw_primary = true;
          EXPECT_GE(t.probability, 0.0);
          EXPECT_LE(t.probability, 1.0);
        }
        if (kind_is(t.kind, "overhead.")) saw_overhead = true;
        if (kind_is(t.kind, "secondary.")) {
          EXPECT_FALSE(t.fanout.empty());
          EXPECT_GE(t.fanout_port, 0);
        }
      }
    }
  }
  EXPECT_TRUE(saw_primary);
  EXPECT_TRUE(saw_overhead);
}

TEST(Attribution, NarrativeExplainsKnownCandidateAndRejectsUnknown) {
  const IsolationResult res = run_isolation(make_fig1(), IsolationStyle::And);
  ASSERT_FALSE(res.iterations.empty());
  ASSERT_FALSE(res.iterations[0].evaluations.empty());
  const std::string cell = res.iterations[0].evaluations[0].cell_name;

  std::ostringstream os;
  EXPECT_TRUE(write_candidate_narrative(os, res, cell));
  const std::string text = os.str();
  EXPECT_NE(text.find("candidate '" + cell + "'"), std::string::npos);
  EXPECT_NE(text.find("primary savings"), std::string::npos);
  EXPECT_NE(text.find("isolation overhead"), std::string::npos);
  EXPECT_NE(text.find("decision:"), std::string::npos);

  std::ostringstream os2;
  EXPECT_FALSE(write_candidate_narrative(os2, res, "no_such_cell"));
  EXPECT_NE(os2.str().find("known candidates"), std::string::npos);
  EXPECT_NE(os2.str().find(cell), std::string::npos);
}

}  // namespace
}  // namespace opiso::obs
