// Round-trip and error tests for the .rtn textual netlist format.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "netlist/text_io.hpp"

namespace opiso {
namespace {

void expect_same_structure(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (CellId id : a.cell_ids()) {
    const Cell& ca = a.cell(id);
    const Cell& cb = b.cell(id);
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.name, cb.name);
    EXPECT_EQ(ca.width, cb.width);
    EXPECT_EQ(ca.param, cb.param);
    ASSERT_EQ(ca.ins.size(), cb.ins.size());
    for (std::size_t p = 0; p < ca.ins.size(); ++p) {
      EXPECT_EQ(a.net(ca.ins[p]).name, b.net(cb.ins[p]).name);
    }
  }
}

class TextIoRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(TextIoRoundTrip, PreservesStructure) {
  Netlist nl;
  const std::string which = GetParam();
  if (which == "fig1") nl = make_fig1(8);
  if (which == "design1") nl = make_design1(8);
  if (which == "design2") nl = make_design2(8, 2);
  if (which == "parametric") nl = make_parametric_datapath({2, 2, 8, true});
  const std::string text = netlist_to_string(nl);
  const Netlist back = netlist_from_string(text);
  expect_same_structure(nl, back);
  // Idempotence: a second round trip emits identical text.
  EXPECT_EQ(netlist_to_string(back), text);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, TextIoRoundTrip,
                         ::testing::Values("fig1", "design1", "design2", "parametric"));

TEST(TextIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "design t\n"
      "\n"
      "net a 4   # trailing comment\n"
      "net b 4\n"
      "net s 4\n"
      "cell pi:a input -> a :\n"
      "cell pi:b input -> b :\n"
      "cell add1 add -> s : a b\n"
      "cell po:o output -> - : s\n";
  const Netlist nl = netlist_from_string(text);
  EXPECT_EQ(nl.name(), "t");
  EXPECT_EQ(nl.num_cells(), 4u);
}

TEST(TextIo, PreservesParams) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  nl.add_shift(CellKind::Shr, "sh", a, 3);
  nl.add_const("k", 42, 8);
  const Netlist back = netlist_from_string(netlist_to_string(nl));
  EXPECT_EQ(back.cell(back.find_cell("s:sh")).param, 3u);
  EXPECT_EQ(back.cell(back.find_cell("const:k")).param, 42u);
}

TEST(TextIo, RejectsUnknownNet) {
  EXPECT_THROW(netlist_from_string("design t\ncell g add -> x : a b\n"), ParseError);
}

TEST(TextIo, RejectsUnknownDirective) {
  EXPECT_THROW(netlist_from_string("wires a 4\n"), ParseError);
}

TEST(TextIo, RejectsUnknownKind) {
  EXPECT_THROW(netlist_from_string("design t\nnet a 4\ncell g frobnicate -> a :\n"),
               ParseError);
}

TEST(TextIo, ErrorsCarryLineNumbers) {
  try {
    (void)netlist_from_string("design t\nnet a 4\nnet a 4\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace opiso
