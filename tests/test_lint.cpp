// Tests for the static-analysis framework (`opiso lint`): one suite per
// pass, the registry/report plumbing, and the end-to-end contract that
// the bundled designs lint clean before isolation and stay clean after
// the transform — while a deliberately corrupted activation function is
// caught as lint.isolation_unsound and independently confirmed
// non-equivalent by the BDD checker.
#include <gtest/gtest.h>

#include <sstream>

#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/algorithm.hpp"
#include "isolation/transform.hpp"
#include "lint/lint.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

using lint::Finding;
using lint::LintOptions;
using lint::LintReport;
using lint::run_lint;

bool has_code(const LintReport& r, ErrCode code) {
  for (const Finding& f : r.findings) {
    if (f.code == code) return true;
  }
  return false;
}

const Finding* find_code(const LintReport& r, ErrCode code) {
  for (const Finding& f : r.findings) {
    if (f.code == code) return &f;
  }
  return nullptr;
}

LintOptions only(std::initializer_list<std::string> passes) {
  LintOptions opt;
  opt.only_passes.assign(passes);
  return opt;
}

// ---------------------------------------------------------------- comb_loop

TEST(LintCombLoop, DetectsCycleAndSkipsOrderDependentPasses) {
  Netlist nl;
  const NetId x = nl.add_input("x", 1);
  const NetId a = nl.add_binop(CellKind::And, "a", x, x);
  const NetId b = nl.add_binop(CellKind::And, "b", a, x);
  nl.reconnect_input(nl.net(a).driver, 1, b);  // a = x & b  ->  a -> b -> a
  nl.add_output("out", b);

  LintReport r = run_lint(nl);
  const Finding* f = find_code(r, ErrCode::LintCombLoop);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
  EXPECT_EQ(f->pass, "comb_loop");
  EXPECT_NE(f->message.find("combinational cycle"), std::string::npos);
  EXPECT_EQ(f->cells.size(), 2u);

  // Observability/STA-based passes must skip, with a note, not crash.
  bool saw_skip = false;
  for (const auto& p : r.passes) {
    if (p.pass == "dead_logic" || p.pass == "isolation_soundness" ||
        p.pass == "isolation_overhead") {
      EXPECT_TRUE(p.skipped) << p.pass;
      EXPECT_FALSE(p.note.empty()) << p.pass;
      saw_skip = true;
    }
  }
  EXPECT_TRUE(saw_skip);
  EXPECT_TRUE(r.fails(Severity::Error));
}

TEST(LintCombLoop, LargeRingDoesNotOverflowTheStack) {
  // A 20k-cell combinational ring: the Tarjan walk must be iterative —
  // a recursive DFS would blow the stack long before this size.
  Netlist nl;
  const NetId x = nl.add_input("x", 1);
  const NetId first = nl.add_unop(CellKind::Buf, "b0", x);
  NetId cur = first;
  for (int i = 1; i < 20000; ++i) {
    cur = nl.add_unop(CellKind::Buf, "b" + std::to_string(i), cur);
  }
  nl.reconnect_input(nl.net(first).driver, 0, cur);
  nl.add_output("out", cur);

  const auto sccs = combinational_sccs(nl);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs.front().size(), 20000u);
  EXPECT_TRUE(has_combinational_cycle(nl));
  // The rendering elides the middle of a huge cycle.
  EXPECT_NE(describe_comb_cycle(nl, sccs.front()).find("more"), std::string::npos);
}

TEST(LintCombLoop, SelfLoopIsReported) {
  Netlist nl;
  const NetId x = nl.add_input("x", 1);
  const NetId a = nl.add_binop(CellKind::Or, "a", x, x);
  nl.reconnect_input(nl.net(a).driver, 1, a);  // a = x | a
  nl.add_output("out", a);
  LintReport r = run_lint(nl, only({"comb_loop"}));
  const Finding* f = find_code(r, ErrCode::LintCombLoop);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("self-loop"), std::string::npos);
}

TEST(LintCombLoop, ParserRejectsCyclicRtlWithStructuredDiagnostic) {
  const std::string text =
      "design loop\n"
      "input en\n"
      "latch a:8 = b when en\n"
      "latch b:8 = a when en\n"
      "output out = a\n";
  try {
    (void)parse_rtl(text);
    FAIL() << "cyclic design must not validate";
  } catch (const OpisoError& e) {
    EXPECT_EQ(e.code(), ErrCode::LintCombLoop);
    EXPECT_GT(e.input_line(), 0);
    EXPECT_NE(std::string(e.what()).find("rtl line"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("combinational cycle"), std::string::npos);
  }
}

TEST(LintCombLoop, LenientParseCarriesSourceLinesIntoFindings) {
  const std::string text =
      "design loop\n"
      "input en\n"
      "latch a:8 = b when en\n"
      "latch b:8 = a when en\n"
      "output out = a\n";
  SourceMap map;
  const Netlist nl = parse_rtl(text, RtlParseOptions{/*validate=*/false}, &map);
  LintReport r = run_lint(nl, {}, &map);
  const Finding* f = find_code(r, ErrCode::LintCombLoop);
  ASSERT_NE(f, nullptr);
  EXPECT_GT(f->source_line, 0);
  EXPECT_LE(f->source_line, 4);
}

// -------------------------------------------------------------------- width

TEST(LintWidth, FlagsMixedOperandWidths) {
  Netlist nl;
  const NetId a = nl.add_input("a", 8);
  const NetId b = nl.add_input("b", 16);
  const NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("out", s);
  LintReport r = run_lint(nl, only({"width"}));
  const Finding* f = find_code(r, ErrCode::LintWidth);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_NE(f->message.find("mixes operand widths"), std::string::npos);
  EXPECT_EQ(f->nets.size(), 2u);
}

TEST(LintWidth, FlagsTruncatingMultiplyAndDegenerateShift) {
  Netlist nl;
  const NetId a = nl.add_input("a", 33);
  const NetId b = nl.add_input("b", 33);
  (void)nl.add_output("p", nl.add_binop(CellKind::Mul, "m", a, b));
  const NetId c = nl.add_input("c", 8);
  (void)nl.add_output("z", nl.add_shift(CellKind::Shl, "sh", c, 8));
  LintReport r = run_lint(nl, only({"width"}));
  bool saw_mul = false;
  bool saw_shift = false;
  for (const Finding& f : r.findings) {
    if (f.message.find("truncates") != std::string::npos) saw_mul = true;
    if (f.message.find("constant 0") != std::string::npos) saw_shift = true;
  }
  EXPECT_TRUE(saw_mul);
  EXPECT_TRUE(saw_shift);
  EXPECT_FALSE(r.fails(Severity::Error));  // style findings are warnings
}

TEST(LintWidth, CleanDesignHasNoWidthFindings) {
  LintReport r = run_lint(make_fig1(8), only({"width"}));
  EXPECT_FALSE(has_code(r, ErrCode::LintWidth));
}

// ------------------------------------------------------------------ drivers

TEST(LintDrivers, FlagsUndrivenAndDanglingNets) {
  Netlist nl;
  const NetId x = nl.add_input("x", 8);
  const NetId floating = nl.add_net("floating", 8);
  const NetId g = nl.add_binop(CellKind::And, "g", floating, x);
  (void)g;  // g's output net feeds nothing -> dangling
  nl.add_output("out", x);

  LintReport r = run_lint(nl, only({"drivers"}));
  const Finding* undriven = find_code(r, ErrCode::LintUndriven);
  ASSERT_NE(undriven, nullptr);
  EXPECT_EQ(undriven->severity, Severity::Error);
  EXPECT_EQ(undriven->nets.front(), "floating");

  const Finding* dangling = find_code(r, ErrCode::LintDangling);
  ASSERT_NE(dangling, nullptr);
  EXPECT_EQ(dangling->severity, Severity::Warning);
  EXPECT_NE(dangling->message.find("drives nothing"), std::string::npos);
}

TEST(LintDrivers, CleanDesignsHaveNoDriverErrors) {
  // design2 carries a few intentionally dangling helper nets (warnings);
  // none of the bundled designs may have driver *errors*.
  for (const Netlist& nl : {make_fig1(8), make_design1(8), make_design2(8)}) {
    LintReport r = run_lint(nl, only({"drivers"}));
    EXPECT_EQ(r.count(Severity::Error), 0u);
  }
  EXPECT_TRUE(run_lint(make_fig1(8), only({"drivers"})).findings.empty());
}

// --------------------------------------------------------------- dead_logic

TEST(LintDeadLogic, FlagsStructurallyUnreachableLogic) {
  Netlist nl;
  const NetId x = nl.add_input("x", 8);
  (void)nl.add_binop(CellKind::Xor, "orphan", x, x);  // feeds nothing
  nl.add_output("out", x);
  LintReport r = run_lint(nl, only({"dead_logic"}));
  const Finding* f = find_code(r, ErrCode::LintDeadLogic);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("unreachable"), std::string::npos);
  EXPECT_NE(f->cells.front().find("orphan"), std::string::npos);
}

TEST(LintDeadLogic, FlagsObservabilityConstantZero) {
  // The adder feeds the sel=1 leg of a mux whose select is tied to 0:
  // structurally connected, semantically never observed — exactly the
  // paper's "redundant computation" with activation function f = 0.
  Netlist nl;
  const NetId x = nl.add_input("x", 8);
  const NetId y = nl.add_input("y", 8);
  const NetId zero = nl.add_const("czero", 0, 1);
  const NetId p = nl.add_binop(CellKind::Add, "deadadd", x, y);
  const NetId m = nl.add_mux2("m", zero, y, p);  // sel=0 always picks y
  nl.add_output("out", m);
  LintReport r = run_lint(nl, only({"dead_logic"}));
  const Finding* f = find_code(r, ErrCode::LintDeadLogic);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("never observed"), std::string::npos);
  EXPECT_NE(f->cells.front().find("deadadd"), std::string::npos);
}

TEST(LintDeadLogic, CleanOnFig1) {
  LintReport r = run_lint(make_fig1(8), only({"dead_logic"}));
  EXPECT_FALSE(has_code(r, ErrCode::LintDeadLogic));
}

// ------------------------------------------------------ isolation_soundness

struct IsolatedFig1 {
  Netlist nl;
  ExprPool pool;
  NetVarMap vars;
  IsolationRecord rec;

  explicit IsolatedFig1(unsigned width = 4) : nl(make_fig1(width)) {
    const ActivationAnalysis aa = derive_activation(nl, pool, vars);
    const CellId a1 = nl.net(nl.find_net("a1")).driver;
    rec = isolate_module(nl, pool, vars, a1, aa.activation_of(nl, a1), IsolationStyle::And);
    nl.validate();
  }
};

TEST(LintSoundness, ProvesCorrectTransformSound) {
  IsolatedFig1 d;
  LintReport r = run_lint(d.nl, only({"isolation_soundness"}));
  EXPECT_FALSE(has_code(r, ErrCode::LintIsolationUnsound)) << r.worst()->message;
  EXPECT_FALSE(has_code(r, ErrCode::LintIsolationUnproven));
}

TEST(LintSoundness, CatchesMutatedActivationFunction) {
  // Invert the AS net feeding the banks: the module is now blocked
  // exactly when it IS observed. The lint proof must fail, and the
  // independent sequential equivalence check must agree the transform
  // no longer preserves behaviour.
  IsolatedFig1 d;
  const NetId nas = d.nl.add_unop(CellKind::Not, "as_bug", d.rec.as_net);
  for (CellId bank : d.rec.bank_cells) d.nl.reconnect_input(bank, 1, nas);
  d.nl.validate();

  LintReport r = run_lint(d.nl, only({"isolation_soundness"}));
  const Finding* f = find_code(r, ErrCode::LintIsolationUnsound);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Error);
  EXPECT_NE(f->message.find("unsound"), std::string::npos);
  EXPECT_NE(f->message.find("AS"), std::string::npos);
  EXPECT_TRUE(r.fails(Severity::Error));

  const EquivResult eq = check_isolation_equivalence(make_fig1(4), d.nl);
  EXPECT_FALSE(eq.equivalent);
}

TEST(LintSoundness, BlownBudgetDegradesToUnproven) {
  IsolatedFig1 d;
  LintOptions opt = only({"isolation_soundness"});
  opt.bdd = BddBudget{8, 0};  // too small for any real proof
  LintReport r = run_lint(d.nl, opt);
  const Finding* f = find_code(r, ErrCode::LintIsolationUnproven);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_NE(f->message.find("unproven"), std::string::npos);
  EXPECT_FALSE(r.fails(Severity::Error));  // degradation is not a failure
}

// ------------------------------------------------------- isolation_overhead

TEST(LintOverhead, FlagsBanksWithoutSlack) {
  IsolatedFig1 d(8);
  LintOptions opt = only({"isolation_overhead"});
  opt.delay.clock_period_ns = 0.5;  // impossibly tight clock
  LintReport r = run_lint(d.nl, opt);
  const Finding* f = find_code(r, ErrCode::LintIsolationOverhead);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_NE(f->message.find("gate levels deep"), std::string::npos);
}

TEST(LintOverhead, QuietUnderARelaxedClock) {
  IsolatedFig1 d(8);
  LintReport r = run_lint(d.nl, only({"isolation_overhead"}));  // 20 ns default
  EXPECT_FALSE(has_code(r, ErrCode::LintIsolationOverhead));
}

// ------------------------------------------------------ framework plumbing

TEST(LintFramework, RegistryHasTheSixBuiltinsInOrder) {
  const auto& passes = lint::PassRegistry::instance().passes();
  ASSERT_GE(passes.size(), 6u);
  const char* expected[] = {"comb_loop",  "width",
                            "drivers",    "dead_logic",
                            "isolation_soundness", "isolation_overhead"};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(passes[i]->name(), expected[i]);
}

TEST(LintFramework, PassSeverityOverrideApplies) {
  Netlist nl;
  const NetId a = nl.add_input("a", 8);
  const NetId b = nl.add_input("b", 16);
  nl.add_output("out", nl.add_binop(CellKind::Add, "s", a, b));
  LintOptions opt = only({"width"});
  opt.pass_severity["width"] = Severity::Error;
  LintReport r = run_lint(nl, opt);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings.front().severity, Severity::Error);
  EXPECT_TRUE(r.fails(Severity::Error));
}

TEST(LintFramework, ReportDocumentCarriesSchemaAndCodes) {
  Netlist nl;
  const NetId a = nl.add_input("a", 8);
  const NetId b = nl.add_input("b", 16);
  nl.add_output("out", nl.add_binop(CellKind::Add, "s", a, b));
  LintReport r = run_lint(nl);
  r.design = "unit";
  const std::string doc = lint::build_lint_report(r).dump(2);
  EXPECT_NE(doc.find("opiso.lint/v1"), std::string::npos);
  EXPECT_NE(doc.find("lint.width"), std::string::npos);
  EXPECT_NE(doc.find("\"totals\""), std::string::npos);
}

TEST(LintFramework, TextRenderingSummarizes) {
  LintReport clean = run_lint(make_fig1(8));
  std::ostringstream os;
  lint::print_lint_text(os, clean, "fig1");
  EXPECT_NE(os.str().find("clean"), std::string::npos);
}

TEST(LintFramework, ThrowOnFindingsCarriesTheLintCode) {
  Netlist nl;
  const NetId x = nl.add_input("x", 1);
  const NetId a = nl.add_binop(CellKind::And, "a", x, x);
  nl.reconnect_input(nl.net(a).driver, 1, a);
  nl.add_output("out", a);
  LintReport r = run_lint(nl);
  try {
    lint::throw_on_findings(r, Severity::Error, "cyclic");
    FAIL() << "must throw";
  } catch (const OpisoError& e) {
    EXPECT_EQ(e.code(), ErrCode::LintCombLoop);
    EXPECT_NE(std::string(e.what()).find("lint rejected"), std::string::npos);
  }
  // A clean report never throws.
  lint::throw_on_findings(run_lint(make_fig1(8)), Severity::Warning, "fig1");
}

// -------------------------------------------------------------- integration

TEST(LintIntegration, BundledDesignsLintCleanBeforeAndAfterIsolation) {
  // Pre-transform: every bundled design is error-free.
  EXPECT_FALSE(run_lint(make_fig1(8)).fails(Severity::Error));
  EXPECT_FALSE(run_lint(make_design1(8)).fails(Severity::Error));
  EXPECT_FALSE(run_lint(make_design2(8)).fails(Severity::Error));

  // Post-transform: the full Algorithm-1 flow output still lints clean —
  // the inserted banks prove sound and nothing structural regressed.
  IsolationOptions opt;
  opt.sim_cycles = 1024;
  const auto stimuli = [] { return std::make_unique<UniformStimulus>(7); };
  for (Netlist design : {make_design1(8), make_design2(8)}) {
    const IsolationResult res = run_operand_isolation(design, stimuli, opt);
    const LintReport r = run_lint(res.netlist);
    EXPECT_FALSE(r.fails(Severity::Error))
        << (r.worst() != nullptr ? r.worst()->message : "");
    EXPECT_FALSE(has_code(r, ErrCode::LintIsolationUnsound));
  }

  // And the hand-driven single-candidate transform from fig1.
  IsolatedFig1 d(8);
  EXPECT_FALSE(run_lint(d.nl).fails(Severity::Error));
}

}  // namespace
}  // namespace opiso
