// Unit tests for the netlist data model: construction rules, width
// inference, fanout bookkeeping, surgery, validation and statistics.
#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"
#include "netlist/traversal.hpp"

namespace opiso {
namespace {

TEST(Netlist, AddNetBasics) {
  Netlist nl("t");
  NetId a = nl.add_net("a", 8);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(nl.net(a).name, "a");
  EXPECT_EQ(nl.net(a).width, 8u);
  EXPECT_EQ(nl.find_net("a"), a);
  EXPECT_FALSE(nl.find_net("missing").valid());
}

TEST(Netlist, RejectsDuplicateNetNames) {
  Netlist nl;
  nl.add_net("a", 4);
  EXPECT_THROW(nl.add_net("a", 4), Error);
}

TEST(Netlist, RejectsBadWidths) {
  Netlist nl;
  EXPECT_THROW(nl.add_net("w0", 0), Error);
  EXPECT_THROW(nl.add_net("w65", 65), Error);
  EXPECT_NO_THROW(nl.add_net("w64", 64));
}

TEST(Netlist, InputOutputRoundTrip) {
  Netlist nl;
  NetId in = nl.add_input("in", 8);
  CellId po = nl.add_output("out", in);
  EXPECT_EQ(nl.primary_inputs().size(), 1u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.cell(po).ins[0], in);
  nl.validate();
}

TEST(Netlist, AddWidthInference) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 4);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  EXPECT_EQ(nl.net(sum).width, 8u);  // max of operand widths
  NetId prod = nl.add_binop(CellKind::Mul, "prod", a, b);
  EXPECT_EQ(nl.net(prod).width, 12u);  // sum of operand widths
  NetId eq = nl.add_binop(CellKind::Eq, "eq", a, b);
  EXPECT_EQ(nl.net(eq).width, 1u);
}

TEST(Netlist, MulWidthCapsAt64) {
  Netlist nl;
  NetId a = nl.add_input("a", 40);
  NetId b = nl.add_input("b", 40);
  NetId p = nl.add_binop(CellKind::Mul, "p", a, b);
  EXPECT_EQ(nl.net(p).width, 64u);
}

TEST(Netlist, MuxRequires1BitSelect) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId s_wide = nl.add_input("s_wide", 2);
  EXPECT_THROW(nl.add_mux2("m", s_wide, a, b), Error);
  NetId s = nl.add_input("s", 1);
  EXPECT_NO_THROW(nl.add_mux2("m2", s, a, b));
}

TEST(Netlist, RegRequires1BitEnable) {
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId en_wide = nl.add_input("en_wide", 8);
  EXPECT_THROW(nl.add_reg("r", d, en_wide), Error);
}

TEST(Netlist, SingleDriverEnforced) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId out = nl.add_net("out", 4);
  nl.add_cell(CellKind::Add, "add1", {a, b}, out);
  EXPECT_THROW(nl.add_cell(CellKind::Sub, "sub1", {a, b}, out), Error);
}

TEST(Netlist, PinCountEnforced) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId out = nl.add_net("out", 4);
  EXPECT_THROW(nl.add_cell(CellKind::Add, "add1", {a}, out), Error);
}

TEST(Netlist, FanoutListsTrackConsumers) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  nl.add_binop(CellKind::Add, "s1", a, b);
  nl.add_binop(CellKind::Sub, "s2", a, b);
  EXPECT_EQ(nl.net(a).fanouts.size(), 2u);
  EXPECT_EQ(nl.net(b).fanouts.size(), 2u);
}

TEST(Netlist, ReconnectInputMovesFanout) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId c = nl.add_input("c", 4);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  CellId adder = nl.net(sum).driver;
  nl.reconnect_input(adder, 0, c);
  EXPECT_EQ(nl.cell(adder).ins[0], c);
  EXPECT_TRUE(nl.net(a).fanouts.empty());
  EXPECT_EQ(nl.net(c).fanouts.size(), 1u);
  nl.validate();
}

TEST(Netlist, ReconnectRejectsWidthMismatch) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId c = nl.add_input("c", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  EXPECT_THROW(nl.reconnect_input(nl.net(sum).driver, 0, c), Error);
}

TEST(Netlist, ConstValueMustFitWidth) {
  Netlist nl;
  EXPECT_THROW(nl.add_const("c", 4, 2), Error);
  EXPECT_NO_THROW(nl.add_const("c3", 3, 2));
}

TEST(Netlist, FreshNamesNeverCollide) {
  Netlist nl;
  nl.add_net("x", 1);
  std::string f1 = nl.fresh_net_name("x");
  EXPECT_NE(f1, "x");
  nl.add_net(f1, 1);
  std::string f2 = nl.fresh_net_name("x");
  EXPECT_NE(f2, f1);
  EXPECT_NE(f2, "x");
}

TEST(Netlist, IsolationCellConstruction) {
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId as = nl.add_input("as", 1);
  NetId blocked = nl.add_iso(CellKind::IsoAnd, "blk", d, as);
  EXPECT_EQ(nl.net(blocked).width, 8u);
  EXPECT_THROW(nl.add_iso(CellKind::Add, "bad", d, as), Error);
}

TEST(Netlist, CellKindNamesRoundTrip) {
  for (int k = 0; k < kNumCellKinds; ++k) {
    const CellKind kind = static_cast<CellKind>(k);
    EXPECT_EQ(cell_kind_from_name(cell_kind_name(kind)), kind);
  }
  EXPECT_THROW(cell_kind_from_name("bogus"), ParseError);
}

TEST(Netlist, StatsCountKinds) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId en = nl.add_input("en", 1);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  NetId r = nl.add_reg("r", sum, en);
  nl.add_output("o", r);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_arith_modules, 1u);
  EXPECT_EQ(s.num_registers, 1u);
  EXPECT_EQ(s.num_isolation_cells, 0u);
  EXPECT_EQ(s.cells_by_kind[static_cast<size_t>(CellKind::PrimaryInput)], 3u);
}

TEST(Netlist, DotExportMentionsCells) {
  Netlist nl("dot");
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  const std::string dot = netlist_to_dot(nl);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("add"), std::string::npos);
}

}  // namespace
}  // namespace opiso
