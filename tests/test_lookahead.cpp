// Tests for the register-lookahead extension (Sec. 3's structural
// look-ahead alternative to the f+_r = 1 cut).
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "designs/designs.hpp"
#include "isolation/activation.hpp"
#include "isolation/algorithm.hpp"
#include "test_util.hpp"

namespace opiso {
namespace {

/// Pipeline where the paper's cut is blind: the adder feeds an
/// always-enabled register r0 whose value is consumed only when a
/// *registered* select (sel_q, loaded from the PI `sel_d` every cycle)
/// steers it into the output register. Because sel_q's next value is
/// predictable (it is registered), lookahead derives a non-trivial
/// activation function; the plain cut yields the useless f = 1.
Netlist make_lookahead_design(unsigned width) {
  Netlist nl("lookahead");
  const NetId a = nl.add_input("a", width);
  const NetId b = nl.add_input("b", width);
  const NetId alt = nl.add_input("alt", width);
  const NetId sel_d = nl.add_input("sel_d", 1);
  const NetId one = nl.add_const("one", 1, 1);

  const NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  const NetId prod = nl.add_binop(CellKind::Mul, "prod", a, b);
  const NetId r0 = nl.add_reg("r0", sum, one);        // reloads every cycle
  const NetId rp = nl.add_reg("rp", prod, one);       // reloads every cycle
  const NetId sel_q = nl.add_reg("sel_q", sel_d, one);
  const NetId ralt = nl.add_reg("ralt", alt, one);

  const NetId m = nl.add_mux2("m", sel_q, ralt, r0);  // sel_q = 1 uses r0
  const NetId m2 = nl.add_mux2("m2", sel_q, rp, ralt);  // sel_q = 0 uses rp
  const NetId sum2 = nl.add_binop(CellKind::Add, "sum2", m, m2);
  const NetId r_out = nl.add_reg("r_out", sum2, one);
  nl.add_output("out", r_out);
  nl.validate();
  return nl;
}

TEST(Lookahead, PredictsRegisteredSignals) {
  Netlist nl = make_lookahead_design(6);
  ExprPool pool;
  NetVarMap vars;
  // sel_q(t+1) = one ? sel_d : sel_q = sel_d (current value).
  const ExprRef p = predict_next_value(nl, pool, vars, nl.find_net("sel_q"));
  ASSERT_TRUE(p.valid());
  BddManager m;
  EXPECT_TRUE(m.equal(m.from_expr(pool, p),
                      m.from_expr(pool, pool.var(vars.var_of(nl, nl.find_net("sel_d"))))));
}

TEST(Lookahead, PrimaryInputsAreUnpredictable) {
  Netlist nl = make_lookahead_design(6);
  ExprPool pool;
  NetVarMap vars;
  EXPECT_FALSE(predict_next_value(nl, pool, vars, nl.find_net("sel_d")).valid());
}

TEST(Lookahead, PredictsThroughControlLogic) {
  Netlist nl;
  NetId d0 = nl.add_input("d0", 1);
  NetId d1 = nl.add_input("d1", 1);
  NetId one = nl.add_const("one", 1, 1);
  NetId q0 = nl.add_reg("q0", d0, one);
  NetId q1 = nl.add_reg("q1", d1, one);
  NetId g = nl.add_binop(CellKind::And, "g", q0, q1);
  nl.add_output("o", g);
  ExprPool pool;
  NetVarMap vars;
  const ExprRef p = predict_next_value(nl, pool, vars, g);
  ASSERT_TRUE(p.valid());
  // g(t+1) = d0(t) & d1(t).
  BddManager m;
  const ExprRef expect = pool.land(pool.var(vars.var_of(nl, d0)), pool.var(vars.var_of(nl, d1)));
  EXPECT_TRUE(m.equal(m.from_expr(pool, p), m.from_expr(pool, expect)));
}

TEST(Lookahead, DerivesNonTrivialActivationWhereCutIsBlind) {
  Netlist nl = make_lookahead_design(6);
  const CellId adder = nl.net(nl.find_net("sum")).driver;
  {
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis plain = derive_activation(nl, pool, vars);
    EXPECT_TRUE(pool.is_const1(plain.activation_of(nl, adder)));
  }
  {
    ExprPool pool;
    NetVarMap vars;
    ActivationOptions opt;
    opt.register_lookahead = true;
    const ActivationAnalysis look = derive_activation(nl, pool, vars, opt);
    const ExprRef f = look.activation_of(nl, adder);
    EXPECT_FALSE(pool.is_const1(f));
    // r0 reloads every cycle, so f+_r0 = obs_r0(t+1) = sel_q(t+1) = sel_d.
    BddManager m;
    EXPECT_TRUE(m.equal(m.from_expr(pool, f),
                        m.from_expr(pool, pool.var(vars.var_of(nl, nl.find_net("sel_d"))))));
  }
}

TEST(Lookahead, UnreloadedRegistersStayConservative) {
  // When the register is *not* reloaded every cycle the loaded value can
  // outlive t+1, so f+ gains the ¬EN(t+1) escape and must not be 0 even
  // if next-cycle observability is 0.
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId en_d = nl.add_input("en_d", 1);
  NetId one = nl.add_const("one", 1, 1);
  NetId en_q = nl.add_reg("en_q", en_d, one);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  NetId r0 = nl.add_reg("r0", sum, en_q);  // enable is registered
  NetId zero4 = nl.add_const("z4", 0, 4);
  NetId m = nl.add_mux2("m", en_q, zero4, r0);
  NetId r1 = nl.add_reg("r1", m, one);
  nl.add_output("o", r1);

  ExprPool pool;
  NetVarMap vars;
  ActivationOptions opt;
  opt.register_lookahead = true;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars, opt);
  const ExprRef f = aa.activation_of(nl, nl.net(sum).driver);
  // f = en_q & (obs(t+1) | !en_q(t+1)) = en_q & (en_d | !en_d) ... both
  // terms reference en_d; whatever the factoring, f must not reduce the
  // observed-load case en_q to anything smaller.
  BddManager mgr;
  const BddRef f_bdd = mgr.from_expr(pool, f);
  const BddRef en_bdd = mgr.from_expr(pool, pool.var(vars.var_of(nl, en_q)));
  EXPECT_TRUE(mgr.equal(f_bdd, en_bdd));
}

TEST(Lookahead, IsolationRemainsObservablyEquivalent) {
  const Netlist original = make_lookahead_design(6);
  IsolationOptions opt;
  opt.activation.register_lookahead = true;
  opt.sim_cycles = 3000;
  const IsolationResult res = run_operand_isolation(
      original, [] {
        auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(91));
        comp->route("sel_d", std::make_unique<ControlledBitStimulus>(0.2, 0.2, 92));
        return comp;
      }, opt);
  EXPECT_FALSE(res.records.empty());
  testutil::expect_observably_equivalent(original, res.netlist, 0x1AB5, 3000);
}

TEST(Lookahead, UnlocksSavingsTheCutCannotReach) {
  const Netlist design = make_lookahead_design(8);
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(95));
    // r0's value is consumed rarely.
    comp->route("sel_d", std::make_unique<ControlledBitStimulus>(0.1, 0.1, 96));
    return comp;
  };
  IsolationOptions plain;
  plain.sim_cycles = 4096;
  const IsolationResult base = run_operand_isolation(design, stimuli, plain);

  IsolationOptions look = plain;
  look.activation.register_lookahead = true;
  const IsolationResult ext = run_operand_isolation(design, stimuli, look);

  EXPECT_GT(ext.records.size(), base.records.size());
  EXPECT_GT(ext.power_reduction_pct(), base.power_reduction_pct());
}

}  // namespace
}  // namespace opiso
