// Tests for the BDD-based formal equivalence checker: correct isolation
// proves equivalent; deliberately broken "isolation" is caught.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "isolation/activation.hpp"
#include "isolation/transform.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

struct Ctx {
  Netlist nl;
  ExprPool pool;
  NetVarMap vars;
  ActivationAnalysis aa;

  explicit Ctx(Netlist design) : nl(std::move(design)) {
    aa = derive_activation(nl, pool, vars);
  }
  CellId cell(const std::string& out_net) { return nl.net(nl.find_net(out_net)).driver; }
};

TEST(Verify, IdenticalDesignsAreEquivalent) {
  const Netlist a = make_fig1(6);
  const EquivResult res = check_isolation_equivalence(a, a);
  EXPECT_TRUE(res.equivalent) << res.reason;
  EXPECT_GT(res.obligations_checked, 0u);
}

TEST(Verify, ProvesFig1IsolationSafe) {
  const Netlist original = make_fig1(6);
  for (IsolationStyle style : {IsolationStyle::And, IsolationStyle::Or}) {
    Ctx c(original);
    (void)isolate_module(c.nl, c.pool, c.vars, c.cell("a1"),
                         c.aa.activation_of(c.nl, c.cell("a1")), style);
    (void)isolate_module(c.nl, c.pool, c.vars, c.cell("a0"),
                         c.aa.activation_of(c.nl, c.cell("a0")), style);
    const EquivResult res = check_isolation_equivalence(original, c.nl);
    EXPECT_TRUE(res.equivalent)
        << isolation_style_name(style) << ": " << res.reason;
  }
}

TEST(Verify, ProvesDesign1IsolationSafe) {
  // Width 4 keeps the array-multiplier BDDs small.
  const Netlist original = make_design1(4);
  Ctx c(original);
  for (const char* name : {"mul1", "add1", "add2", "sub2", "add3", "mul2"}) {
    const CellId cell = c.cell(name);
    (void)isolate_module(c.nl, c.pool, c.vars, cell, c.aa.activation_of(c.nl, cell),
                         IsolationStyle::And);
  }
  const EquivResult res = check_isolation_equivalence(original, c.nl);
  EXPECT_TRUE(res.equivalent) << res.reason;
}

TEST(Verify, CatchesWrongActivationFunction) {
  // Isolate a1 with an UNDER-approximate activation signal (G1 alone
  // misses the S1·!S0·G0 path): a register can then load a blocked
  // value; the checker must refuse.
  const Netlist original = make_fig1(4);
  Ctx c(original);
  const ExprRef wrong = c.pool.var(c.vars.var_of(c.nl, c.nl.find_net("G1")));
  (void)isolate_module(c.nl, c.pool, c.vars, c.cell("a1"), wrong, IsolationStyle::And);
  const EquivResult res = check_isolation_equivalence(original, c.nl);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.reason.find("load a different value"), std::string::npos) << res.reason;
}

TEST(Verify, AcceptsOverApproximateActivation) {
  // Guarding with a looser condition (constant 1 = never block) is
  // functionally safe, merely useless for power.
  const Netlist original = make_fig1(4);
  Ctx c(original);
  (void)isolate_module(c.nl, c.pool, c.vars, c.cell("a1"), c.pool.const1(),
                       IsolationStyle::And);
  const EquivResult res = check_isolation_equivalence(original, c.nl);
  EXPECT_TRUE(res.equivalent) << res.reason;
}

TEST(Verify, CatchesFunctionalEdit) {
  // A real functional change (adder became subtractor) must be caught
  // even though the interface is identical.
  Netlist a;
  {
    NetId x = a.add_input("x", 4);
    NetId y = a.add_input("y", 4);
    NetId en = a.add_input("en", 1);
    NetId s = a.add_binop(CellKind::Add, "s", x, y);
    NetId r = a.add_reg("r", s, en);
    a.add_output("o", r);
  }
  Netlist b;
  {
    NetId x = b.add_input("x", 4);
    NetId y = b.add_input("y", 4);
    NetId en = b.add_input("en", 1);
    NetId s = b.add_binop(CellKind::Sub, "s", x, y);
    NetId r = b.add_reg("r", s, en);
    b.add_output("o", r);
  }
  const EquivResult res = check_isolation_equivalence(a, b);
  EXPECT_FALSE(res.equivalent);
}

TEST(Verify, CatchesEnableTampering) {
  Netlist a;
  NetId x = a.add_input("x", 4);
  NetId en = a.add_input("en", 1);
  NetId en2 = a.add_input("en2", 1);
  NetId r = a.add_reg("r", x, en);
  a.add_output("o", r);

  Netlist b;
  NetId xb = b.add_input("x", 4);
  NetId enb = b.add_input("en", 1);
  NetId en2b = b.add_input("en2", 1);
  NetId gated = b.add_binop(CellKind::And, "gated", enb, en2b);
  NetId rb = b.add_reg("r", xb, gated);
  b.add_output("o", rb);
  (void)en2;
  const EquivResult res = check_isolation_equivalence(a, b);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.reason.find("enable"), std::string::npos) << res.reason;
}

TEST(Verify, RefusesLatchDesigns) {
  const Netlist original = make_fig1(4);
  Ctx c(original);
  (void)isolate_module(c.nl, c.pool, c.vars, c.cell("a1"),
                       c.aa.activation_of(c.nl, c.cell("a1")), IsolationStyle::Latch);
  const EquivResult res = check_isolation_equivalence(original, c.nl);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.reason.find("latch"), std::string::npos);
}

}  // namespace
}  // namespace opiso
