// End-to-end tests of Algorithm 1: power goes down, outputs never
// change, the cost knobs (h_min, slack threshold, weights) gate
// decisions, and iteration logs are coherent.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

StimulusFactory design1_stimuli(double act_p1 = 0.2, double act_tr = 0.2) {
  return [=] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(21));
    comp->route("act", std::make_unique<ControlledBitStimulus>(act_p1, act_tr, 22));
    comp->route("sel", std::make_unique<ControlledBitStimulus>(0.5, 0.4, 23));
    comp->route("g1", std::make_unique<ControlledBitStimulus>(0.4, 0.3, 24));
    comp->route("g2", std::make_unique<ControlledBitStimulus>(0.4, 0.3, 25));
    return comp;
  };
}

TEST(Algorithm, ReducesPowerOnDesign1) {
  IsolationOptions opt;
  opt.sim_cycles = 3000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  EXPECT_FALSE(res.records.empty());
  EXPECT_LT(res.power_after_mw, res.power_before_mw);
  EXPECT_GT(res.power_reduction_pct(), 10.0);
  EXPECT_GT(res.area_after_um2, res.area_before_um2);
}

TEST(Algorithm, TransformedDesignIsObservablyEquivalent) {
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    IsolationOptions opt;
    opt.style = style;
    opt.sim_cycles = 2000;
    const Netlist original = make_design1(8);
    const IsolationResult res = run_operand_isolation(original, design1_stimuli(), opt);
    ASSERT_FALSE(res.records.empty());
    testutil::expect_observably_equivalent(original, res.netlist, 0xFEED, 2500);
  }
}

TEST(Algorithm, Design2AllStylesReduce) {
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    IsolationOptions opt;
    opt.style = style;
    opt.sim_cycles = 3000;
    const Netlist original = make_design2(8, 2);
    const IsolationResult res = run_operand_isolation(
        original, [] { return std::make_unique<UniformStimulus>(31); }, opt);
    EXPECT_FALSE(res.records.empty());
    EXPECT_GT(res.power_reduction_pct(), 5.0) << isolation_style_name(style);
    testutil::expect_observably_equivalent(original, res.netlist, 0xABCD, 2500);
  }
}

TEST(Algorithm, HminInfiniteIsolatesNothing) {
  IsolationOptions opt;
  opt.h_min = 1e9;
  opt.sim_cycles = 1000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  EXPECT_TRUE(res.records.empty());
  EXPECT_NEAR(res.power_after_mw, res.power_before_mw, res.power_before_mw * 0.05);
  EXPECT_DOUBLE_EQ(res.area_after_um2, res.area_before_um2);
}

TEST(Algorithm, SlackThresholdVetoesEverything) {
  IsolationOptions opt;
  opt.slack_threshold_ns = 1e9;  // nothing can meet this
  opt.sim_cycles = 1000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  EXPECT_TRUE(res.records.empty());
  ASSERT_FALSE(res.iterations.empty());
  for (const CandidateEvaluation& ev : res.iterations[0].evaluations) {
    EXPECT_TRUE(ev.slack_vetoed);
  }
}

TEST(Algorithm, OnePerBlockPerIteration) {
  IsolationOptions opt;
  opt.sim_cycles = 2000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  for (const IterationLog& log : res.iterations) {
    // design1 has 4 combinational blocks.
    EXPECT_LE(log.num_isolated, 4u);
    std::set<int> blocks;
    for (const CandidateEvaluation& ev : log.evaluations) {
      if (ev.isolated_now) EXPECT_TRUE(blocks.insert(ev.block).second);
    }
  }
  // Stage 2 has several candidates: isolating them all takes > 1 iteration.
  std::size_t total = 0;
  for (const IterationLog& log : res.iterations) total += log.num_isolated;
  if (total > 4) EXPECT_GT(res.iterations.size(), 1u);
}

TEST(Algorithm, TerminatesWhenNoImprovement) {
  IsolationOptions opt;
  opt.sim_cycles = 1000;
  opt.max_iterations = 50;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  ASSERT_FALSE(res.iterations.empty());
  EXPECT_EQ(res.iterations.back().num_isolated, 0u);
  EXPECT_LT(res.iterations.size(), 12u);
}

TEST(Algorithm, SlackDegradesButStaysPositive) {
  IsolationOptions opt;
  opt.sim_cycles = 2000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  EXPECT_GT(res.slack_before_ns, 0.0);
  EXPECT_GT(res.slack_after_ns, 0.0);  // design still meets timing (Sec. 6)
}

TEST(Algorithm, EvaluationsCarryPaperQuantities) {
  IsolationOptions opt;
  opt.sim_cycles = 2000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  ASSERT_FALSE(res.iterations.empty());
  bool saw_mul1 = false;
  for (const CandidateEvaluation& ev : res.iterations[0].evaluations) {
    EXPECT_GE(ev.pr_redundant, 0.0);
    EXPECT_LE(ev.pr_redundant, 1.0);
    EXPECT_GE(ev.r_area, 0.0);
    EXPECT_FALSE(ev.activation_str.empty());
    if (ev.cell_name == "b:mul1") {
      saw_mul1 = true;
      // act has Pr[1] = 0.2 -> mostly redundant.
      EXPECT_GT(ev.pr_redundant, 0.6);
      EXPECT_EQ(ev.activation_str, "act");
    }
  }
  EXPECT_TRUE(saw_mul1);
}

TEST(Algorithm, LowerActivityMeansMoreSavings) {
  IsolationOptions opt;
  opt.sim_cycles = 3000;
  const IsolationResult busy =
      run_operand_isolation(make_design1(8), design1_stimuli(0.9, 0.1), opt);
  const IsolationResult idle =
      run_operand_isolation(make_design1(8), design1_stimuli(0.05, 0.05), opt);
  EXPECT_GT(idle.power_reduction_pct(), busy.power_reduction_pct());
}

TEST(Algorithm, RequiresStimulusFactory) {
  EXPECT_THROW((void)run_operand_isolation(make_design1(8), nullptr, {}), Error);
}

TEST(Algorithm, BddBudgetDegradesGracefullyAndStaysEquivalent) {
  // Resource-guard contract (robustness layer): with a node budget too
  // small for any real activation function, the canonical BDD
  // simplification falls back to the structurally derived expression —
  // and the transformed design must still be *provably* equivalent to
  // the original, exactly like the unbounded run. Checked on all three
  // paper designs at formally tractable widths.
  struct Case {
    const char* name;
    std::function<Netlist()> make;
    StimulusFactory stimuli;
  };
  const StimulusFactory uniform = [] { return std::make_unique<UniformStimulus>(7); };
  // fig1 is multiplier-free, so the full paper width stays formally
  // tractable; design1/design2 carry multipliers and get width 4 to
  // keep the equivalence checker's BDDs small.
  const Case kCases[] = {
      {"fig1", [] { return make_fig1(8); }, uniform},
      {"design1", [] { return make_design1(4); }, design1_stimuli()},
      {"design2", [] { return make_design2(4, 2); }, uniform},
  };
  obs::metrics().counter("isolate.bdd_budget_fallbacks").reset();
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    IsolationOptions opt;
    opt.style = IsolationStyle::And;  // latch-free: formally checkable
    opt.sim_cycles = 1500;
    opt.bdd_node_budget = 3;  // any second BDD node trips the budget
    const Netlist original = c.make();
    const IsolationResult budgeted = run_operand_isolation(original, c.stimuli, opt);
    opt.bdd_node_budget = 0;  // unlimited
    const IsolationResult unbounded = run_operand_isolation(original, c.stimuli, opt);
    ASSERT_FALSE(budgeted.records.empty());
    // Same isolation decisions either way: the budget only affects the
    // *form* of the synthesized activation, never the candidate choice.
    EXPECT_EQ(budgeted.records.size(), unbounded.records.size());
    const EquivResult eq_budgeted = check_isolation_equivalence(original, budgeted.netlist);
    EXPECT_TRUE(eq_budgeted.equivalent) << eq_budgeted.reason;
    const EquivResult eq_unbounded = check_isolation_equivalence(original, unbounded.netlist);
    EXPECT_TRUE(eq_unbounded.equivalent) << eq_unbounded.reason;
  }
  // The degraded path must actually have been exercised.
  EXPECT_GT(obs::metrics().counter("isolate.bdd_budget_fallbacks").value(), 0u);
}

}  // namespace
}  // namespace opiso
