// Tests for the savings-estimation model (Sec. 4): Eq. 2 rescaling,
// Eq. 1 primary savings against hand computation, refined-vs-simple
// consistency, secondary savings sign and magnitude, and overheads.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "netlist/traversal.hpp"

namespace opiso {
namespace {

struct Harness {
  Netlist nl;
  ExprPool pool;
  NetVarMap vars;
  ActivationAnalysis aa;
  std::vector<IsolationCandidate> cands;
  MacroPowerModel power;

  explicit Harness(Netlist design) : nl(std::move(design)) {
    aa = derive_activation(nl, pool, vars);
    cands = identify_candidates(nl, combinational_blocks(nl), aa, pool, CandidateConfig{});
  }

  std::size_t index(const std::string& out_net) {
    const CellId cell = nl.net(nl.find_net(out_net)).driver;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].cell == cell) return i;
    }
    throw Error("candidate not found: " + out_net);
  }
};

TEST(Savings, Eq2RescalesToggleRate) {
  EXPECT_DOUBLE_EQ(SavingsEstimator::actual_toggle_rate(1.0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(SavingsEstimator::actual_toggle_rate(0.3, 1.0), 0.3);
  EXPECT_DOUBLE_EQ(SavingsEstimator::actual_toggle_rate(0.3, 0.0), 0.0);  // guarded
}

TEST(Savings, PrRedundantMatchesActivationStatistics) {
  Harness h(make_design1(8));
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  auto comp = CompositeStimulus(std::make_unique<UniformStimulus>(1));
  comp.route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.2, 2));
  sim.run(comp, 20000);
  // AS(mul1) = act with Pr[1] = 0.25 -> Pr(redundant) = 0.75.
  EXPECT_NEAR(est.pr_redundant(h.index("mul1"), sim.stats()), 0.75, 0.03);
  EXPECT_NEAR(est.activation_toggle_rate(h.index("mul1"), sim.stats()), 0.2, 0.03);
}

TEST(Savings, SimplePrimaryMatchesHandComputation) {
  Harness h(make_design1(8));
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  auto comp = CompositeStimulus(std::make_unique<UniformStimulus>(3));
  comp.route("act", std::make_unique<ControlledBitStimulus>(0.5, 0.3, 4));
  sim.run(comp, 8000);

  const std::size_t i = h.index("mul1");
  const Cell& mul1 = h.nl.cell(h.cands[i].cell);
  const double tr_a = sim.stats().toggle_rate(mul1.ins[0]);
  const double tr_b = sim.stats().toggle_rate(mul1.ins[1]);
  const double expected = est.pr_redundant(i, sim.stats()) *
                          h.power.module_power_mw(CellKind::Mul, mul1.width, tr_a, tr_b);
  EXPECT_NEAR(est.primary_savings_mw(i, sim.stats(), PrimaryModel::Simple), expected, 1e-9);
  EXPECT_GT(expected, 0.0);
}

TEST(Savings, RefinedEqualsSimpleWithoutFaninCandidates) {
  // mul1's inputs come straight from primary inputs: the refined model's
  // event space degenerates to the background event and both models use
  // Pr(!f)·p(TrA,TrB) — but refined measures the *joint* probability, so
  // allow the sampling-level difference only.
  Harness h(make_design1(8));
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  UniformStimulus stim(5);
  sim.run(stim, 8000);
  const std::size_t i = h.index("mul1");
  const double simple = est.primary_savings_mw(i, sim.stats(), PrimaryModel::Simple);
  const double refined = est.primary_savings_mw(i, sim.stats(), PrimaryModel::Refined);
  EXPECT_NEAR(refined, simple, 1e-9);
}

TEST(Savings, SecondarySavingsPositiveForChainedCandidates) {
  // Isolating add2 in design1 quiesces add3's steered input while add3
  // still computes: secondary savings must be positive.
  Harness h(make_design1(8));
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  UniformStimulus stim(7);
  sim.run(stim, 8000);
  EXPECT_GT(est.secondary_savings_mw(h.index("add2"), sim.stats()), 0.0);
  // mul1 feeds only a register: no fanout candidates, zero secondary.
  EXPECT_DOUBLE_EQ(est.secondary_savings_mw(h.index("mul1"), sim.stats()), 0.0);
}

TEST(Savings, LatchOverheadExceedsGateOverheadForQuietAS) {
  // With a slowly toggling activation signal (long idle runs) the gate
  // banks' entry/exit transitions amortize away and the latch banks'
  // standing cost dominates — the paper's Sec.-6 observation.
  Harness h(make_design1(8));
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  auto comp = CompositeStimulus(std::make_unique<UniformStimulus>(9));
  comp.route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.02, 10));
  sim.run(comp, 8000);
  const std::size_t i = h.index("mul1");
  const double and_cost = est.overhead_mw(i, sim.stats(), IsolationStyle::And);
  const double lat_cost = est.overhead_mw(i, sim.stats(), IsolationStyle::Latch);
  EXPECT_GT(lat_cost, and_cost);
  EXPECT_GT(and_cost, 0.0);
}

TEST(Savings, TwitchyASMakesGateBanksExpensive) {
  // Fast-toggling activation signals charge the induced entry/exit
  // word swings to gate-based banks, but not to latch banks.
  Harness h(make_design1(8));
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  auto comp = CompositeStimulus(std::make_unique<UniformStimulus>(9));
  comp.route("act", std::make_unique<ControlledBitStimulus>(0.5, 0.9, 10));
  sim.run(comp, 8000);
  const std::size_t i = h.index("mul1");
  EXPECT_GT(est.overhead_mw(i, sim.stats(), IsolationStyle::And),
            est.overhead_mw(i, sim.stats(), IsolationStyle::Latch));
}

TEST(Savings, PredictionTracksMeasuredReduction) {
  // End-to-end sanity of the model: predicted net savings for isolating
  // mul1 should be within a factor-2 band of the measured power delta.
  Netlist original = make_design1(8);
  Harness h(original);
  SavingsEstimator est(h.nl, h.pool, h.vars, h.cands, h.power);
  Simulator sim(h.nl, &h.pool, &h.vars);
  est.register_probes(sim);
  auto make_stim = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(11));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.2, 0.2, 12));
    return comp;
  };
  auto s0 = make_stim();
  sim.run(*s0, 12000);
  const std::size_t i = h.index("mul1");
  const double predicted = est.primary_savings_mw(i, sim.stats(), PrimaryModel::Refined) +
                           est.secondary_savings_mw(i, sim.stats()) -
                           est.overhead_mw(i, sim.stats(), IsolationStyle::And);

  // Actually isolate and measure.
  PowerEstimator pe(h.power);
  const double before = pe.estimate(h.nl, sim.stats()).total_mw;
  (void)isolate_module(h.nl, h.pool, h.vars, h.cands[i].cell, h.cands[i].activation,
                       IsolationStyle::And);
  Simulator sim2(h.nl);
  auto s1 = make_stim();
  sim2.run(*s1, 12000);
  const double after = pe.estimate(h.nl, sim2.stats()).total_mw;
  const double measured = before - after;

  EXPECT_GT(predicted, 0.0);
  EXPECT_GT(measured, 0.0);
  EXPECT_LT(std::abs(predicted - measured), std::max(predicted, measured) * 0.6)
      << "predicted " << predicted << " vs measured " << measured;
}

}  // namespace
}  // namespace opiso
