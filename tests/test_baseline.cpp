// Tests for the Sec.-2 baselines: guarded evaluation's existing-signal
// coverage gap and control-signal gating's structural blind spots.
#include <gtest/gtest.h>

#include "baseline/control_signal_gating.hpp"
#include "baseline/guarded_eval.hpp"
#include "designs/designs.hpp"

namespace opiso {
namespace {

StimulusFactory uniform_stimuli(std::uint64_t seed) {
  return [seed] { return std::make_unique<UniformStimulus>(seed); };
}

TEST(GuardedEval, Fig1GuardsA0ButNotA1) {
  // AS_a0 = G0: the existing signal G0 works as guard. AS_a1 is a
  // compound function implied by no single existing signal — exactly
  // the coverage gap the paper describes.
  const GuardedEvalResult res =
      run_guarded_evaluation(make_fig1(8), uniform_stimuli(41), {});
  EXPECT_EQ(res.num_candidates, 2u);
  EXPECT_EQ(res.num_guarded, 1u);
  ASSERT_EQ(res.guarded.size(), 1u);
  EXPECT_EQ(res.netlist.cell(res.guarded[0]).name, "b:a0");
  ASSERT_EQ(res.unguarded.size(), 1u);
  EXPECT_EQ(res.netlist.cell(res.unguarded[0]).name, "b:a1");
}

TEST(GuardedEval, GuardedModulePreservesOutputs) {
  const Netlist original = make_fig1(8);
  const GuardedEvalResult res = run_guarded_evaluation(original, uniform_stimuli(43), {});
  // Lockstep comparison of primary outputs.
  Simulator sim_a(original);
  Simulator sim_b(res.netlist);
  UniformStimulus sa(99), sb(99);
  for (int cycle = 0; cycle < 2000; ++cycle) {
    sim_a.run(sa, 1);
    sim_b.run(sb, 1);
    for (std::size_t i = 0; i < original.primary_outputs().size(); ++i) {
      ASSERT_EQ(sim_a.net_value(original.cell(original.primary_outputs()[i]).ins[0]),
                sim_b.net_value(res.netlist.cell(res.netlist.primary_outputs()[i]).ins[0]))
          << "cycle " << cycle;
    }
  }
}

TEST(GuardedEval, Design1GuardsAreLooseConjuncts) {
  // Every design1 activation function is a product, so some existing
  // conjunct always works as a guard — coverage is full — but e.g. the
  // guard for add2 is the single signal g1 while the true activation is
  // !sel·g2·g1: the guard blocks far fewer redundant cycles.
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(47));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.25, 0.1, 48));
    return comp;
  };
  const GuardedEvalResult res = run_guarded_evaluation(make_design1(8), stimuli, {});
  EXPECT_GT(res.num_candidates, 0u);
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);

  IsolationOptions opt;
  opt.sim_cycles = 4096;
  const IsolationResult full = run_operand_isolation(make_design1(8), stimuli, opt);
  EXPECT_GT(full.power_reduction_pct(), res.power_reduction_pct());
}

TEST(Csg, PiFedCandidatesAreBlindSpot) {
  // design1's stage-1 modules take data straight from primary inputs:
  // CSG has no register to gate ("no power savings in combinational
  // logic that is directly fed by primary inputs", Sec. 2).
  const CsgResult res = run_control_signal_gating(make_design1(8), uniform_stimuli(51), {});
  bool mul1_uncovered = false;
  for (std::size_t i = 0; i < res.uncovered.size(); ++i) {
    if (res.netlist.cell(res.uncovered[i]).name == "b:mul1") {
      mul1_uncovered = true;
      EXPECT_NE(res.uncovered_reasons[i].find("primary input"), std::string::npos);
    }
  }
  EXPECT_TRUE(mul1_uncovered);
}

TEST(Csg, MultiFanoutRegisterIsBlindSpot) {
  // design2: the accumulator register feeds the adder, the subtractor
  // and the output mux — gating it for the adder would corrupt the
  // others (the paper's Fig.-7-of-[4] case).
  const CsgResult res = run_control_signal_gating(make_design2(8, 1), uniform_stimuli(53), {});
  bool sum_uncovered = false;
  for (std::size_t i = 0; i < res.uncovered.size(); ++i) {
    if (res.netlist.cell(res.uncovered[i]).name == "b:l0_sum") {
      sum_uncovered = true;
      EXPECT_NE(res.uncovered_reasons[i].find("fanout"), std::string::npos);
    }
  }
  EXPECT_TRUE(sum_uncovered);
}

TEST(Csg, CoversCleanRegisterFedModule) {
  // reg -> adder -> reg with single-fanout source registers: coverable.
  Netlist nl;
  NetId d0 = nl.add_input("d0", 8);
  NetId d1 = nl.add_input("d1", 8);
  NetId en_in = nl.add_input("en_in", 1);
  NetId en_out = nl.add_input("en_out", 1);
  NetId ra = nl.add_reg("ra", d0, en_in);
  NetId rb = nl.add_reg("rb", d1, en_in);
  NetId sum = nl.add_binop(CellKind::Add, "sum", ra, rb);
  NetId ro = nl.add_reg("ro", sum, en_out);
  nl.add_output("o", ro);

  CsgOptions opt;
  const CsgResult res = run_control_signal_gating(nl, uniform_stimuli(55), opt);
  EXPECT_EQ(res.num_candidates, 1u);
  EXPECT_EQ(res.num_covered, 1u);
  // The source registers' enables are now gated with AS.
  const Cell& ra_cell = res.netlist.cell(res.netlist.find_cell("r:ra"));
  EXPECT_EQ(res.netlist.cell(res.netlist.net(ra_cell.ins[1]).driver).kind, CellKind::And);
}

TEST(Csg, GatingReducesPowerWhenMostlyIdle) {
  Netlist nl;
  NetId d0 = nl.add_input("d0", 12);
  NetId d1 = nl.add_input("d1", 12);
  NetId en_in = nl.add_input("en_in", 1);
  NetId en_out = nl.add_input("en_out", 1);
  NetId ra = nl.add_reg("ra", d0, en_in);
  NetId rb = nl.add_reg("rb", d1, en_in);
  NetId prod = nl.add_binop(CellKind::Mul, "prod", ra, rb);
  NetId ro = nl.add_reg("ro", prod, en_out);
  nl.add_output("o", ro);

  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(61));
    // Output rarely observed: the multiplier is mostly redundant.
    comp->route("en_out", std::make_unique<ControlledBitStimulus>(0.1, 0.1, 62));
    return comp;
  };
  CsgOptions opt;
  opt.sim_cycles = 8000;
  const CsgResult res = run_control_signal_gating(nl, stimuli, opt);
  EXPECT_EQ(res.num_covered, 1u);
  EXPECT_GT(res.power_reduction_pct(), 5.0);
}

TEST(Baselines, OperandIsolationCoversWhatBaselinesCannot) {
  // The headline qualitative claim of Sec. 2 on fig1: the constructive
  // approach isolates both adders; guarded evaluation must skip a1 (its
  // disjunctive activation is implied by no existing signal); CSG skips
  // both (the datapath operands come straight from primary inputs).
  const Netlist f1 = make_fig1(8);
  const GuardedEvalResult ge = run_guarded_evaluation(f1, uniform_stimuli(71), {});
  const CsgResult csg = run_control_signal_gating(f1, uniform_stimuli(72), {});

  IsolationOptions opt;
  opt.sim_cycles = 2000;
  opt.omega_a = 0.0;  // coverage comparison: ignore area cost
  opt.h_min = -1e9;   // isolate everything legal
  const IsolationResult full = run_operand_isolation(
      f1, [] { return std::make_unique<UniformStimulus>(73); }, opt);

  EXPECT_EQ(full.records.size(), 2u);
  EXPECT_EQ(ge.num_guarded, 1u);
  EXPECT_EQ(csg.num_covered, 0u);
}

}  // namespace
}  // namespace opiso
