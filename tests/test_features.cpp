// Tests for library features beyond the core algorithm: BDD-based
// activation simplification, per-candidate style choice, net/cell
// renaming, and the isolation report formatter.
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "designs/designs.hpp"
#include "isolation/report.hpp"
#include "test_util.hpp"

namespace opiso {
namespace {

TEST(SimplifyExpr, CollapsesRedundantTerms) {
  ExprPool p;
  BddManager m;
  // a·b + a·!b + a  ->  a
  ExprRef a = p.var(0), b = p.var(1);
  ExprRef messy = p.lor(p.lor(p.land(a, b), p.land(a, p.lnot(b))), a);
  // The pool's local rules may already shrink this; force redundancy
  // through distinct structure.
  ExprRef messy2 = p.lor(p.land(a, b), p.land(a, p.lnot(b)));
  ExprRef s = m.simplify_expr(p, messy2);
  EXPECT_EQ(s, a);
  EXPECT_LE(p.literal_count(m.simplify_expr(p, messy)), p.literal_count(messy));
}

TEST(SimplifyExpr, NeverIncreasesLiteralCount) {
  ExprPool p;
  BddManager m;
  // XOR chains blow up as SOP; simplify_expr must keep the original.
  ExprRef x = p.var(0);
  for (BoolVar v = 1; v < 6; ++v) {
    ExprRef y = p.var(v);
    x = p.lor(p.land(x, p.lnot(y)), p.land(p.lnot(x), y));
  }
  const ExprRef s = m.simplify_expr(p, x);
  EXPECT_LE(p.literal_count(s), p.literal_count(x));
  // And semantics are preserved.
  for (int mt = 0; mt < 64; ++mt) {
    auto assign = [&](BoolVar v) { return (mt >> v) & 1; };
    EXPECT_EQ(p.eval(s, assign), p.eval(x, assign));
  }
}

TEST(Rename, NetAndCellRenameUpdateLookup) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId s = nl.add_binop(CellKind::Add, "adder", a, b);
  nl.rename_net(s, "total");
  EXPECT_FALSE(nl.find_net("s").valid());
  EXPECT_EQ(nl.find_net("total"), s);
  nl.rename_cell(nl.net(s).driver, "sum_cell");
  EXPECT_EQ(nl.find_cell("sum_cell"), nl.net(s).driver);
  EXPECT_THROW(nl.rename_net(s, "a"), Error);    // collision
  EXPECT_THROW(nl.rename_net(s, ""), Error);     // empty
  nl.validate();
}

StimulusFactory design1_stimuli() {
  return [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(121));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.2, 0.15, 122));
    return comp;
  };
}

TEST(MixedStyle, PicksAStylePerCandidate) {
  IsolationOptions opt;
  opt.choose_style_per_candidate = true;
  opt.sim_cycles = 3000;
  const Netlist original = make_design1(8);
  const IsolationResult res = run_operand_isolation(original, design1_stimuli(), opt);
  ASSERT_FALSE(res.records.empty());
  // The result is functionally clean regardless of the mixture.
  testutil::expect_observably_equivalent(original, res.netlist, 0xD00D, 2500);
  // Evaluations carry the style they were costed for.
  for (const IterationLog& log : res.iterations) {
    for (const CandidateEvaluation& ev : log.evaluations) {
      (void)ev.style;  // present and well-formed by construction
    }
  }
}

TEST(MixedStyle, AtLeastAsGoodAsWorstFixedStyle) {
  const Netlist original = make_design1(8);
  double worst_fixed = 1e18;
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    IsolationOptions opt;
    opt.style = style;
    opt.sim_cycles = 3000;
    const IsolationResult res = run_operand_isolation(original, design1_stimuli(), opt);
    worst_fixed = std::min(worst_fixed, res.power_reduction_pct());
  }
  IsolationOptions mixed;
  mixed.choose_style_per_candidate = true;
  mixed.sim_cycles = 3000;
  const IsolationResult res = run_operand_isolation(original, design1_stimuli(), mixed);
  EXPECT_GE(res.power_reduction_pct(), worst_fixed - 1.0);  // sampling slack
}

TEST(Report, SummaryMentionsEverything) {
  IsolationOptions opt;
  opt.sim_cycles = 2000;
  const IsolationResult res = run_operand_isolation(make_design1(8), design1_stimuli(), opt);
  const std::string summary = format_isolation_summary(res);
  EXPECT_NE(summary.find("power:"), std::string::npos);
  EXPECT_NE(summary.find("area:"), std::string::npos);
  EXPECT_NE(summary.find("isolated modules:"), std::string::npos);
  EXPECT_NE(summary.find("AND bank"), std::string::npos);
  const std::string log = format_iteration_log(res);
  EXPECT_NE(log.find("iteration 0"), std::string::npos);
  EXPECT_NE(log.find("Pr(!f)="), std::string::npos);
  EXPECT_NE(log.find("AS="), std::string::npos);
}

TEST(SimplifyActivation, OffStillWorks) {
  IsolationOptions opt;
  opt.simplify_activation = false;
  opt.sim_cycles = 2000;
  const Netlist original = make_design1(8);
  const IsolationResult res = run_operand_isolation(original, design1_stimuli(), opt);
  EXPECT_FALSE(res.records.empty());
  testutil::expect_observably_equivalent(original, res.netlist, 0xFACE, 2000);
}

}  // namespace
}  // namespace opiso
