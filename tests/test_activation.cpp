// Tests for the activation-function derivation (Sec. 3). The fig1 cases
// check the exact functions the paper prints; BDD equivalence is used so
// the tests do not depend on factoring choices.
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "designs/designs.hpp"
#include "isolation/activation.hpp"

namespace opiso {
namespace {

struct Derived {
  Netlist nl;
  ExprPool pool;
  NetVarMap vars;
  ActivationAnalysis aa;

  explicit Derived(Netlist design) : nl(std::move(design)) {
    aa = derive_activation(nl, pool, vars);
  }
  ExprRef f(const std::string& net) { return aa.activation_of(nl, nl.net(nl.find_net(net)).driver); }
  ExprRef v(const std::string& net) { return pool.var(vars.var_of(nl, nl.find_net(net))); }
  bool equivalent(ExprRef a, ExprRef b) {
    BddManager m;
    return m.equal(m.from_expr(pool, a), m.from_expr(pool, b));
  }
};

TEST(Activation, Fig1AdderA0IsG0) {
  Derived d(make_fig1(8));
  // AS_a0 = G0 — the paper's first derived activation signal.
  EXPECT_TRUE(d.equivalent(d.f("a0"), d.v("G0")));
}

TEST(Activation, Fig1AdderA1MatchesPaper) {
  Derived d(make_fig1(8));
  // AS_a1 = S2·G1 + S1·!S0·G0.
  const ExprRef expected = d.pool.lor(
      d.pool.land(d.v("S2"), d.v("G1")),
      d.pool.land(d.v("S1"), d.pool.land(d.pool.lnot(d.v("S0")), d.v("G0"))));
  EXPECT_TRUE(d.equivalent(d.f("a1"), expected))
      << "derived: " << activation_to_string(d.nl, d.pool, d.vars, d.f("a1"));
}

TEST(Activation, Fig1PrintsPaperFormula) {
  Derived d(make_fig1(8));
  const std::string s = activation_to_string(d.nl, d.pool, d.vars, d.f("a1"));
  // Factored form mentions all five control signals once.
  for (const char* sig : {"S0", "S1", "S2", "G0", "G1"}) {
    EXPECT_NE(s.find(sig), std::string::npos) << s;
  }
}

TEST(Activation, PrimaryOutputIsAlwaysObserved) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.pool.is_const1(d.f("s")));
}

TEST(Activation, ConstantEnableFoldsToConstant) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId one = nl.add_const("one", 1, 1);
  NetId zero = nl.add_const("zero", 0, 1);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId s2 = nl.add_binop(CellKind::Sub, "s2", a, b);
  NetId r1 = nl.add_reg("r1", s1, one);
  NetId r2 = nl.add_reg("r2", s2, zero);
  nl.add_output("o1", r1);
  nl.add_output("o2", r2);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.pool.is_const1(d.f("s1")));  // always loaded
  EXPECT_TRUE(d.pool.is_const0(d.f("s2")));  // dead: never loaded
}

TEST(Activation, MuxFansObservabilityBySelectPolarity) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId sel = nl.add_input("sel", 1);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId s2 = nl.add_binop(CellKind::Sub, "s2", a, b);
  NetId m = nl.add_mux2("m", sel, s1, s2);
  nl.add_output("o", m);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.equivalent(d.f("s1"), d.pool.lnot(d.v("sel"))));
  EXPECT_TRUE(d.equivalent(d.f("s2"), d.v("sel")));
}

TEST(Activation, GateSideInputRefinement) {
  // obs through a 1-bit AND requires the side input at 1; through an OR
  // at 0 (controlling values — Sec. 3's degenerated-multiplexor rule).
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId side = nl.add_input("side", 1);
  NetId en = nl.add_input("en", 1);
  NetId cmp = nl.add_binop(CellKind::Lt, "cmp", a, b);  // 1-bit arithlike
  NetId gated = nl.add_binop(CellKind::And, "gated", cmp, side);
  NetId r = nl.add_reg("r", gated, en);
  nl.add_output("o", r);
  Derived d(std::move(nl));
  // cmp is not an Add/Sub/Mul candidate, but its observability function
  // is still derived: side & en.
  EXPECT_TRUE(d.equivalent(d.f("cmp"), d.pool.land(d.v("side"), d.v("en"))));
}

TEST(Activation, OrGateUsesComplementedSideInput) {
  Netlist nl;
  NetId x = nl.add_input("x", 1);
  NetId side = nl.add_input("side", 1);
  NetId en = nl.add_input("en", 1);
  NetId g = nl.add_binop(CellKind::Or, "g", x, side);
  NetId r = nl.add_reg("r", g, en);
  nl.add_output("o", r);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.equivalent(d.aa.obs[d.nl.find_net("x").value()],
                           d.pool.land(d.pool.lnot(d.v("side")), d.v("en"))));
}

TEST(Activation, LatchGatesObservabilityByEnable) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId le = nl.add_input("le", 1);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  NetId l = nl.add_latch("l", s, le);
  nl.add_output("o", l);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.equivalent(d.f("s"), d.v("le")));
}

TEST(Activation, MultipleFanoutsOrTogether) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId e1 = nl.add_input("e1", 1);
  NetId e2 = nl.add_input("e2", 1);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  NetId r1 = nl.add_reg("r1", s, e1);
  NetId r2 = nl.add_reg("r2", s, e2);
  nl.add_output("o1", r1);
  nl.add_output("o2", r2);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.equivalent(d.f("s"), d.pool.lor(d.v("e1"), d.v("e2"))));
}

TEST(Activation, Design1Stage1IsAct) {
  Derived d(make_design1(8));
  EXPECT_TRUE(d.equivalent(d.f("mul1"), d.v("act")));
  EXPECT_TRUE(d.equivalent(d.f("add1"), d.v("act")));
}

TEST(Activation, Design1Stage2Functions) {
  Derived d(make_design1(8));
  // add2 observed via mux_a (sel=0) -> add3 -> mux_b (g2=1) -> reg (g1).
  const ExprRef exp_add2 =
      d.pool.land(d.pool.lnot(d.v("sel")), d.pool.land(d.v("g2"), d.v("g1")));
  EXPECT_TRUE(d.equivalent(d.f("add2"), exp_add2));
  const ExprRef exp_sub2 = d.pool.land(d.v("sel"), d.pool.land(d.v("g2"), d.v("g1")));
  EXPECT_TRUE(d.equivalent(d.f("sub2"), exp_sub2));
  EXPECT_TRUE(d.equivalent(d.f("add3"), d.pool.land(d.v("g2"), d.v("g1"))));
  EXPECT_TRUE(d.equivalent(d.f("mul2"), d.pool.land(d.pool.lnot(d.v("sel")), d.v("g2"))));
}

TEST(Activation, Design2PhaseDecodedFunctions) {
  Derived d(make_design2(8, 1));
  // Accumulator adder and multiplier observed iff the acc reg loads.
  EXPECT_TRUE(d.equivalent(d.f("l0_sum"), d.v("en_acc")));
  EXPECT_TRUE(d.equivalent(d.f("l0_mul"), d.v("en_acc")));
  // Subtractor observed iff the write-back phase steers it into the
  // output register.
  EXPECT_TRUE(d.equivalent(d.f("l0_sub"), d.v("ph_wr")));
}

TEST(Activation, IsolationCellBlocksObservability) {
  // Once a bank is inserted, the data input upstream of the bank is
  // observable only when AS = 1.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId as = nl.add_input("as", 1);
  NetId en = nl.add_input("en", 1);
  NetId blk = nl.add_iso(CellKind::IsoAnd, "blk", a, as);
  NetId s = nl.add_binop(CellKind::Add, "s", blk, b);
  NetId r = nl.add_reg("r", s, en);
  nl.add_output("o", r);
  Derived d(std::move(nl));
  EXPECT_TRUE(d.equivalent(d.aa.obs[d.nl.find_net("a").value()],
                           d.pool.land(d.v("as"), d.v("en"))));
}

}  // namespace
}  // namespace opiso
