// End-to-end integration scenarios crossing every library layer:
// RTL text -> netlist -> isolation -> optimization -> text round trip ->
// formal verification, plus algorithm idempotence and composite-design
// sanity on a multi-block system.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/algorithm.hpp"
#include "isolation/report.hpp"
#include "netlist/text_io.hpp"
#include "opt/passes.hpp"
#include "power/estimator.hpp"
#include "test_util.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

constexpr const char* kPipelineRtl = R"(
design pipeline
input a:6
input b:6
input mode
input go
wire prod = a * b
wire sum = a + b
wire stage1 = mode ? prod : sum
reg r1:12 = stage1 when go
wire scaled = r1 << 1
wire corrected = r1 - b
wire stage2 = mode ? scaled : corrected
reg r2:12 = stage2 when go
output out = r2
)";

TEST(Integration, FullFlowFromRtlText) {
  // 1. Parse.
  const Netlist design = parse_rtl(kPipelineRtl);
  EXPECT_EQ(design.name(), "pipeline");

  // 2. Isolate.
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(3));
    comp->route("go", std::make_unique<ControlledBitStimulus>(0.2, 0.15, 4));
    comp->route("mode", std::make_unique<ControlledBitStimulus>(0.5, 0.2, 5));
    return comp;
  };
  IsolationOptions opt;
  opt.sim_cycles = 4096;
  const IsolationResult res = run_operand_isolation(design, stimuli, opt);
  ASSERT_FALSE(res.records.empty());
  EXPECT_LT(res.power_after_mw, res.power_before_mw);

  // 3. Behavioral + formal equivalence of the transform.
  testutil::expect_observably_equivalent(design, res.netlist, 0xFEDC, 2500);
  const EquivResult formal = check_isolation_equivalence(design, res.netlist);
  EXPECT_TRUE(formal.equivalent) << formal.reason;

  // 4. Optimize the transformed design; still equivalent.
  const Netlist cleaned = optimize(res.netlist);
  testutil::expect_observably_equivalent(design, cleaned, 0xFEDD, 2500);

  // 5. Text round trip of the final artifact.
  const Netlist reloaded = netlist_from_string(netlist_to_string(cleaned));
  testutil::expect_observably_equivalent(cleaned, reloaded, 0xFEDE, 1000);
}

TEST(Integration, SecondIsolationRunFindsNothing) {
  // Idempotence: re-running Algorithm 1 on an already-isolated design
  // must not isolate anything else (every candidate carries z = 1).
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(7));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.2, 0.15, 8));
    return comp;
  };
  IsolationOptions opt;
  opt.sim_cycles = 2048;
  const IsolationResult first = run_operand_isolation(make_design1(8), stimuli, opt);
  ASSERT_FALSE(first.records.empty());
  const IsolationResult second = run_operand_isolation(first.netlist, stimuli, opt);
  EXPECT_TRUE(second.records.empty());
  EXPECT_NEAR(second.power_after_mw, second.power_before_mw,
              second.power_before_mw * 0.05);
}

TEST(Integration, IsolatedDesignSurvivesOptimizationAndStillSaves) {
  // Optimization after isolation must not undo the savings (banks and
  // activation logic are live logic, not dead code).
  const StimulusFactory stimuli = [] { return std::make_unique<UniformStimulus>(9); };
  IsolationOptions opt;
  opt.sim_cycles = 4096;
  const Netlist original = make_design2(8, 2);
  const IsolationResult res = run_operand_isolation(original, stimuli, opt);
  ASSERT_FALSE(res.records.empty());
  const Netlist cleaned = optimize(res.netlist);

  Simulator sim_orig(original);
  Simulator sim_clean(cleaned);
  UniformStimulus s1(10), s2(10);
  sim_orig.run(s1, 4096);
  sim_clean.run(s2, 4096);
  const double p_orig = PowerEstimator().estimate(original, sim_orig.stats()).total_mw;
  const double p_clean = PowerEstimator().estimate(cleaned, sim_clean.stats()).total_mw;
  EXPECT_LT(p_clean, p_orig * 0.8);
}

TEST(Integration, ConstantFedCandidateIsHandled) {
  // A multiplier with one constant operand: its input net never
  // toggles, savings are small, but isolation must stay legal and
  // behavior-preserving.
  Netlist nl;
  NetId x = nl.add_input("x", 8);
  NetId k = nl.add_const("k", 3, 8);
  NetId en = nl.add_input("en", 1);
  NetId p = nl.add_binop(CellKind::Mul, "p", x, k);
  NetId r = nl.add_reg("r", p, en);
  nl.add_output("o", r);

  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(13));
    comp->route("en", std::make_unique<ControlledBitStimulus>(0.1, 0.1, 14));
    return comp;
  };
  IsolationOptions opt;
  opt.sim_cycles = 4096;
  const IsolationResult res = run_operand_isolation(nl, stimuli, opt);
  testutil::expect_observably_equivalent(nl, res.netlist, 0xC0DE, 2000);
}

TEST(Integration, ManyLaneDesignScalesAndStaysCorrect) {
  const Netlist big = make_design2(6, 6);  // 18 candidates, 6 lanes
  const StimulusFactory stimuli = [] { return std::make_unique<UniformStimulus>(15); };
  IsolationOptions opt;
  opt.sim_cycles = 1024;
  const IsolationResult res = run_operand_isolation(big, stimuli, opt);
  EXPECT_GE(res.records.size(), 6u);  // at least the lane multipliers
  testutil::expect_observably_equivalent(big, res.netlist, 0xB16, 1500);
}

TEST(Integration, ReportRendersTheFullStory) {
  const StimulusFactory stimuli = [] { return std::make_unique<UniformStimulus>(17); };
  IsolationOptions opt;
  opt.sim_cycles = 1024;
  const IsolationResult res = run_operand_isolation(make_fig1(8), stimuli, opt);
  std::ostringstream os;
  write_isolation_report(os, res);
  const std::string report = os.str();
  EXPECT_NE(report.find("operand isolation summary"), std::string::npos);
  EXPECT_NE(report.find("iteration 0"), std::string::npos);
}

}  // namespace
}  // namespace opiso
