// Tests for the ROBDD manager: canonicity, Boolean operators,
// quantification, probability/sat-count, and the Expr bridges.
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace opiso {
namespace {

class BddTest : public ::testing::Test {
 protected:
  BddManager m;
  BddRef x0 = m.var(0);
  BddRef x1 = m.var(1);
  BddRef x2 = m.var(2);
};

TEST_F(BddTest, TerminalIdentities) {
  EXPECT_TRUE(m.is_zero(m.band(x0, m.zero())));
  EXPECT_EQ(m.band(x0, m.one()), x0);
  EXPECT_EQ(m.bor(x0, m.zero()), x0);
  EXPECT_TRUE(m.is_one(m.bor(x0, m.one())));
}

TEST_F(BddTest, CanonicityMakesEquivalenceTrivial) {
  // (x0 & x1) | (x0 & x2) == x0 & (x1 | x2)
  BddRef lhs = m.bor(m.band(x0, x1), m.band(x0, x2));
  BddRef rhs = m.band(x0, m.bor(x1, x2));
  EXPECT_TRUE(m.equal(lhs, rhs));
}

TEST_F(BddTest, DeMorgan) {
  EXPECT_TRUE(m.equal(m.bnot(m.band(x0, x1)), m.bor(m.bnot(x0), m.bnot(x1))));
}

TEST_F(BddTest, XorTruthTable) {
  BddRef f = m.bxor(x0, x1);
  EXPECT_FALSE(m.eval(f, [](BoolVar) { return false; }));
  EXPECT_TRUE(m.eval(f, [](BoolVar v) { return v == 0; }));
  EXPECT_TRUE(m.eval(f, [](BoolVar v) { return v == 1; }));
  EXPECT_FALSE(m.eval(f, [](BoolVar) { return true; }));
}

TEST_F(BddTest, ComplementLemma) {
  BddRef f = m.bor(m.band(x0, x1), x2);
  EXPECT_TRUE(m.is_zero(m.band(f, m.bnot(f))));
  EXPECT_TRUE(m.is_one(m.bor(f, m.bnot(f))));
}

TEST_F(BddTest, RestrictIsCofactor) {
  BddRef f = m.bor(m.band(x0, x1), m.band(m.bnot(x0), x2));
  EXPECT_TRUE(m.equal(m.restrict_var(f, 0, true), x1));
  EXPECT_TRUE(m.equal(m.restrict_var(f, 0, false), x2));
}

TEST_F(BddTest, Quantification) {
  BddRef f = m.band(x0, x1);
  EXPECT_TRUE(m.equal(m.exists(f, 0), x1));
  EXPECT_TRUE(m.is_zero(m.forall(f, 0)));
  BddRef g = m.bor(x0, x1);
  EXPECT_TRUE(m.is_one(m.exists(g, 0)));
  EXPECT_TRUE(m.equal(m.forall(g, 0), x1));
}

TEST_F(BddTest, Implication) {
  EXPECT_TRUE(m.implies(m.band(x0, x1), x0));
  EXPECT_FALSE(m.implies(x0, m.band(x0, x1)));
  EXPECT_TRUE(m.implies(m.zero(), x0));
  EXPECT_TRUE(m.implies(x0, m.one()));
}

TEST_F(BddTest, ProbabilityIndependentVars) {
  // Pr[x0 & x1] = p0*p1; Pr[x0 | x1] = p0 + p1 - p0*p1.
  auto p = [](BoolVar v) { return v == 0 ? 0.3 : 0.6; };
  EXPECT_NEAR(m.probability(m.band(x0, x1), p), 0.18, 1e-12);
  EXPECT_NEAR(m.probability(m.bor(x0, x1), p), 0.72, 1e-12);
  EXPECT_NEAR(m.probability(m.bnot(x0), p), 0.7, 1e-12);
}

TEST_F(BddTest, SatCount) {
  EXPECT_DOUBLE_EQ(m.sat_count(m.band(x0, x1), 3), 2.0);   // x0x1{x2}
  EXPECT_DOUBLE_EQ(m.sat_count(m.bor(x0, x1), 2), 3.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.one(), 4), 16.0);
  EXPECT_DOUBLE_EQ(m.sat_count(m.zero(), 4), 0.0);
}

TEST_F(BddTest, SupportAndSize) {
  BddRef f = m.bor(m.band(x0, x1), x2);
  const auto sup = m.support(f);
  EXPECT_EQ(sup, (std::vector<BoolVar>{0, 1, 2}));
  EXPECT_GE(m.size(f), 3u);
  EXPECT_EQ(m.size(m.one()), 0u);
}

TEST_F(BddTest, FromExprToExprRoundTrip) {
  ExprPool pool;
  // S2·G1 + S1·!S0·G0 — the paper's AS_a1.
  ExprRef e = pool.lor(pool.land(pool.var(0), pool.var(1)),
                       pool.land(pool.var(2), pool.land(pool.lnot(pool.var(3)), pool.var(4))));
  BddRef f = m.from_expr(pool, e);
  ExprRef back = m.to_expr(pool, f);
  // Semantics preserved over all 32 assignments.
  for (int mt = 0; mt < 32; ++mt) {
    auto assign = [&](BoolVar v) { return (mt >> v) & 1; };
    EXPECT_EQ(pool.eval(e, assign), pool.eval(back, assign));
  }
}

TEST(BddBudgetTest, NodeBudgetThrowsStructuredResourceError) {
  // Terminals occupy two slots, so a 4-node budget dies within a few
  // variables — and does so with the stable resource.bdd-nodes code.
  BddManager tiny(BddBudget{4, 0});
  try {
    BddRef acc = tiny.var(0);
    for (BoolVar v = 1; v < 16; ++v) acc = tiny.band(acc, tiny.var(v));
    FAIL() << "expected the node budget to trip";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrCode::ResourceBddNodes);
    EXPECT_EQ(e.severity(), Severity::Warning);  // recoverable by contract
  }
  // The manager survives the refusal: terminals and existing nodes
  // still answer queries, so callers can degrade instead of rebuild.
  EXPECT_TRUE(tiny.is_one(tiny.one()));
  EXPECT_TRUE(tiny.is_zero(tiny.band(tiny.zero(), tiny.one())));
}

TEST(BddBudgetTest, IteCacheBudgetThrows) {
  BddManager tiny(BddBudget{0, 1});
  try {
    BddRef acc = tiny.var(0);
    for (BoolVar v = 1; v < 16; ++v) acc = tiny.bor(acc, tiny.band(tiny.var(v), acc));
    FAIL() << "expected the ITE cache budget to trip";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrCode::ResourceIteCache);
  }
}

TEST(BddBudgetTest, ZeroBudgetMeansUnlimited) {
  BddManager unbounded(BddBudget{});
  BddRef acc = unbounded.var(0);
  for (BoolVar v = 1; v < 24; ++v) acc = unbounded.band(acc, unbounded.var(v));
  EXPECT_FALSE(unbounded.is_zero(acc));
  EXPECT_GT(unbounded.stats().unique_misses, 24u);
}

TEST(BddBudgetTest, GenerousBudgetNeverTriggers) {
  // Same computation under a roomy budget: identical result, no throw —
  // the budget is pure back-pressure, not a behavior change.
  ExprPool pool;
  ExprRef e = pool.lor(pool.land(pool.var(0), pool.var(1)),
                       pool.land(pool.var(2), pool.land(pool.lnot(pool.var(3)), pool.var(4))));
  BddManager roomy(BddBudget{1u << 16, 1u << 16});
  BddManager unbounded;
  ExprRef a = roomy.simplify_expr(pool, e);
  ExprRef b = unbounded.simplify_expr(pool, e);
  for (int mt = 0; mt < 32; ++mt) {
    auto assign = [&](BoolVar v) { return (mt >> v) & 1; };
    EXPECT_EQ(pool.eval(a, assign), pool.eval(b, assign));
  }
}

// Parameterized property: random expressions and their BDDs agree on
// every assignment, and to_expr(from_expr(e)) is equivalent to e.
class BddRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomProperty, ExprBddAgreement) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  ExprPool pool;
  BddManager mgr;
  constexpr int kVars = 6;
  std::vector<ExprRef> stack{pool.var(0)};
  for (int i = 0; i < 20; ++i) {
    const int op = static_cast<int>(rng.next_range(0, 3));
    if (op == 0 || stack.size() < 2) {
      stack.push_back(pool.var(static_cast<BoolVar>(rng.next_range(0, kVars - 1))));
    } else if (op == 1) {
      stack.back() = pool.lnot(stack.back());
    } else {
      ExprRef a = stack.back();
      stack.pop_back();
      stack.back() = op == 2 ? pool.land(stack.back(), a) : pool.lor(stack.back(), a);
    }
  }
  const ExprRef e = stack.back();
  const BddRef f = mgr.from_expr(pool, e);
  const ExprRef back = mgr.to_expr(pool, f);
  for (int mt = 0; mt < (1 << kVars); ++mt) {
    auto assign = [&](BoolVar v) { return (mt >> v) & 1; };
    const bool expect = pool.eval(e, assign);
    EXPECT_EQ(mgr.eval(f, assign), expect);
    EXPECT_EQ(pool.eval(back, assign), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace opiso
