// Tests for the support foundation: deterministic RNG, strong ids,
// error macros, and the simulator's warm-up facility.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strong_id.hpp"

namespace opiso {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, BitsRespectWidth) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(r.next_bits(5), 31u);
    EXPECT_LE(r.next_bits(1), 1u);
  }
  // Width 64 must not shift out of range.
  (void)r.next_bits(64);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_range(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StrongId, DistinctTypesAndInvalid) {
  struct TagA;
  using IdA = StrongId<TagA>;
  IdA a{3};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.value(), 3u);
  EXPECT_FALSE(IdA::invalid().valid());
  EXPECT_EQ(IdA{3}, a);
  EXPECT_NE(IdA{4}, a);
  EXPECT_LT(a, IdA{4});
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    OPISO_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw NetlistError("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw SimError("x"), Error);
}

TEST(Warmup, DiscardsResetTransient) {
  // Register comes out of reset at 0 and jumps to the stimulus value:
  // without warm-up that jump pollutes the toggle statistics.
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId one = nl.add_const("one", 1, 1);
  NetId q = nl.add_reg("q", d, one);
  nl.add_output("o", q);

  ConstantStimulus stim;
  stim.set("d", 0xFF);
  Simulator cold(nl);
  cold.run(stim, 50);
  EXPECT_GT(cold.stats().toggles[q.value()], 0u);  // reset jump counted

  Simulator warm(nl);
  warm.warmup(stim, 4);
  warm.run(stim, 50);
  EXPECT_EQ(warm.stats().toggles[q.value()], 0u);  // steady state only
  EXPECT_EQ(warm.stats().cycles, 50u);
}

}  // namespace
}  // namespace opiso
