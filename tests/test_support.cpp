// Tests for the support foundation: deterministic RNG, strong ids,
// error macros, and the simulator's warm-up facility.
#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strong_id.hpp"

namespace opiso {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, BitsRespectWidth) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(r.next_bits(5), 31u);
    EXPECT_LE(r.next_bits(1), 1u);
  }
  // Width 64 must not shift out of range.
  (void)r.next_bits(64);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_range(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StrongId, DistinctTypesAndInvalid) {
  struct TagA;
  using IdA = StrongId<TagA>;
  IdA a{3};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.value(), 3u);
  EXPECT_FALSE(IdA::invalid().valid());
  EXPECT_EQ(IdA{3}, a);
  EXPECT_NE(IdA{4}, a);
  EXPECT_LT(a, IdA{4});
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    OPISO_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw NetlistError("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw SimError("x"), Error);
  // Everything — including the legacy generic Error — is an OpisoError,
  // so drivers can catch one type and always get a structured record.
  EXPECT_THROW(throw Error("x"), OpisoError);
  EXPECT_THROW(throw ResourceError(ErrCode::ResourceBddNodes, "x"), OpisoError);
  EXPECT_THROW(throw IoError("x"), OpisoError);
}

TEST(Error, CodesCarryStableWireNames) {
  // These names are part of the report schema (opiso.task_failures/v1,
  // --json-errors): they must never change, only be appended to.
  EXPECT_STREQ(error_code_name(ErrCode::Internal), "internal");
  EXPECT_STREQ(error_code_name(ErrCode::Io), "io");
  EXPECT_STREQ(error_code_name(ErrCode::ParseSyntax), "parse.syntax");
  EXPECT_STREQ(error_code_name(ErrCode::ParseNumber), "parse.number");
  EXPECT_STREQ(error_code_name(ErrCode::ParseWidth), "parse.width");
  EXPECT_STREQ(error_code_name(ErrCode::ParseDuplicate), "parse.duplicate");
  EXPECT_STREQ(error_code_name(ErrCode::ParseUnknownRef), "parse.unknown-ref");
  EXPECT_STREQ(error_code_name(ErrCode::ParseDepth), "parse.depth");
  EXPECT_STREQ(error_code_name(ErrCode::JsonDepth), "json.depth");
  EXPECT_STREQ(error_code_name(ErrCode::ResourceBddNodes), "resource.bdd-nodes");
  EXPECT_STREQ(error_code_name(ErrCode::ResourceIteCache), "resource.ite-cache");
  EXPECT_STREQ(error_code_name(ErrCode::ResourceWallClock), "resource.wall-clock");
  EXPECT_STREQ(error_code_name(ErrCode::ResourceStimulus), "resource.stimulus");
  EXPECT_STREQ(error_code_name(ErrCode::TaskFailed), "task.failed");
  EXPECT_STREQ(error_code_name(ErrCode::TaskSkipped), "task.skipped");
}

TEST(Error, DefaultsAndAccessors) {
  const ParseError pe(ErrCode::ParseWidth, "rtl line 7: width 0 out of range", 7);
  EXPECT_EQ(pe.code(), ErrCode::ParseWidth);
  EXPECT_EQ(pe.input_line(), 7);
  EXPECT_EQ(pe.severity(), Severity::Error);
  // Resource errors are recoverable by design.
  const ResourceError re(ErrCode::ResourceWallClock, "over budget");
  EXPECT_EQ(re.severity(), Severity::Warning);
  // what() stays the plain message (no code prefix) so existing
  // message-matching tests and logs are unchanged.
  EXPECT_STREQ(re.what(), "over budget");
}

TEST(Error, JsonRenderingEscapesAndRoundTrips) {
  const ParseError e(ErrCode::ParseSyntax, "bad \"quoted\"\tthing\n", 3);
  const std::string json = e.json();
  // The hand-rendered JSON must be parseable by the real parser and
  // reproduce every structured field.
  const obs::JsonValue doc = obs::JsonValue::parse(json);
  EXPECT_EQ(doc.at("error").at("code").as_string(), "parse.syntax");
  EXPECT_EQ(doc.at("error").at("severity").as_string(), "error");
  EXPECT_EQ(doc.at("error").at("message").as_string(), "bad \"quoted\"\tthing\n");
  EXPECT_EQ(doc.at("error").at("input_line").as_number(), 3.0);
}

TEST(Error, RequireFailureIsStructured) {
  try {
    OPISO_REQUIRE(false, "broken invariant");
    FAIL() << "expected throw";
  } catch (const OpisoError& e) {
    EXPECT_EQ(e.code(), ErrCode::Internal);
    EXPECT_NE(e.where().file, nullptr);
    EXPECT_GT(e.where().line, 0);
  }
}

TEST(Warmup, DiscardsResetTransient) {
  // Register comes out of reset at 0 and jumps to the stimulus value:
  // without warm-up that jump pollutes the toggle statistics.
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId one = nl.add_const("one", 1, 1);
  NetId q = nl.add_reg("q", d, one);
  nl.add_output("o", q);

  ConstantStimulus stim;
  stim.set("d", 0xFF);
  Simulator cold(nl);
  cold.run(stim, 50);
  EXPECT_GT(cold.stats().toggles[q.value()], 0u);  // reset jump counted

  Simulator warm(nl);
  warm.warmup(stim, 4);
  warm.run(stim, 50);
  EXPECT_EQ(warm.stats().toggles[q.value()], 0u);  // steady state only
  EXPECT_EQ(warm.stats().cycles, 50u);
}

}  // namespace
}  // namespace opiso
