// Hierarchical phase profiler: span stream → aggregated call tree,
// JSON export, collapsed-stack (flamegraph) export.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace opiso::obs {
namespace {

void busy_wait_ns(std::uint64_t ns) {
  const std::uint64_t t0 = Tracer::instance().now_ns();
  while (Tracer::instance().now_ns() - t0 < ns) {
  }
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(ProfilerTest, AggregatesByCallPath) {
  {
    OPISO_SPAN("a");
    busy_wait_ns(200000);
    {
      OPISO_SPAN("b");
      busy_wait_ns(100000);
      { OPISO_SPAN("c"); }
    }
    { OPISO_SPAN("b"); }
  }
  { OPISO_SPAN("a"); }
  Tracer::instance().set_enabled(false);

  const ProfileNode root = build_profile_tree(Tracer::instance().events());
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& a = *root.children.at("a");
  EXPECT_EQ(a.count, 2u);
  ASSERT_EQ(a.children.size(), 1u);
  const ProfileNode& b = *a.children.at("b");
  EXPECT_EQ(b.count, 2u);
  ASSERT_EQ(b.children.size(), 1u);
  EXPECT_EQ(b.children.at("c")->count, 1u);

  // Totals nest: the parent covers its children; self = total - kids.
  EXPECT_GE(a.total_ns, b.total_ns);
  EXPECT_EQ(a.self_ns, a.total_ns - b.total_ns);
  EXPECT_EQ(root.total_ns, a.total_ns);
  EXPECT_GT(a.self_ns, 0u);  // the busy-waits are a's own time
}

TEST_F(ProfilerTest, JsonExportCarriesPercentagesOfRootTotal) {
  {
    OPISO_SPAN("phase");
    busy_wait_ns(100000);
  }
  Tracer::instance().set_enabled(false);

  const ProfileNode root = build_profile_tree(Tracer::instance().events());
  const JsonValue doc = profile_to_json(root);
  EXPECT_EQ(doc.at("schema").as_string(), "opiso.profile/v1");
  ASSERT_EQ(doc.at("tree").size(), 1u);
  const JsonValue& node = doc.at("tree").at(0);
  EXPECT_EQ(node.at("name").as_string(), "phase");
  EXPECT_EQ(node.at("count").as_number(), 1.0);
  // The only top-level span accounts for the whole profiled run.
  EXPECT_DOUBLE_EQ(node.at("total_pct").as_number(), 100.0);
  // Round-trippable like every other report section.
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
}

TEST_F(ProfilerTest, FoldedExportEmitsFlamegraphLines) {
  {
    OPISO_SPAN("outer");
    busy_wait_ns(50000);
    {
      OPISO_SPAN("inner");
      busy_wait_ns(50000);
    }
  }
  Tracer::instance().set_enabled(false);

  const ProfileNode root = build_profile_tree(Tracer::instance().events());
  std::ostringstream os;
  write_folded(os, root);
  const std::string text = os.str();
  EXPECT_NE(text.find("outer;inner "), std::string::npos);
  // Each line is "path space integer".
  std::istringstream lines(text);
  std::string path;
  std::uint64_t us = 0;
  int n = 0;
  while (lines >> path >> us) ++n;
  EXPECT_GE(n, 1);
}

TEST_F(ProfilerTest, ThreadsMergeByPathWithoutCorruptingNesting) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      OPISO_SPAN("worker");
      busy_wait_ns(20000);
      {
        OPISO_SPAN("task");
        busy_wait_ns(20000);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Tracer::instance().set_enabled(false);

  const std::vector<TraceEvent> events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u * kThreads);

  const ProfileNode root = build_profile_tree(events);
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& worker = *root.children.at("worker");
  EXPECT_EQ(worker.count, static_cast<std::uint64_t>(kThreads));
  ASSERT_EQ(worker.children.size(), 1u);
  EXPECT_EQ(worker.children.at("task")->count, static_cast<std::uint64_t>(kThreads));
  // "task" never leaks to the top level: per-thread depths kept each
  // worker's stack intact.
  EXPECT_EQ(root.children.count("task"), 0u);
}

TEST_F(ProfilerTest, EmptyStreamYieldsEmptyTree) {
  Tracer::instance().set_enabled(false);
  const ProfileNode root = build_profile_tree({});
  EXPECT_TRUE(root.children.empty());
  EXPECT_EQ(root.total_ns, 0u);
  std::ostringstream os;
  write_folded(os, root);
  EXPECT_TRUE(os.str().empty());
  const JsonValue doc = profile_to_json(root);
  EXPECT_EQ(doc.at("tree").size(), 0u);
}

}  // namespace
}  // namespace opiso::obs
