// Observability layer: JSON round-trips, span tracing, metrics
// registry, run reports.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"

namespace opiso::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, BuildAndDump) {
  JsonValue doc = JsonValue::object();
  doc["name"] = "opiso";
  doc["count"] = std::uint64_t{42};
  doc["pi"] = 3.5;
  doc["ok"] = true;
  doc["nothing"] = JsonValue();
  doc["list"].push_back(1);
  doc["list"].push_back("two");
  EXPECT_EQ(doc.dump(),
            R"({"name":"opiso","count":42,"pi":3.5,"ok":true,"nothing":null,"list":[1,"two"]})");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, -3e2, true, false, null], "s": "q\"uo\\te\n", "nested": {"x": {}}})";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(v.at("a").size(), 6u);
  EXPECT_DOUBLE_EQ(v.at("a").at(2).as_number(), -300.0);
  EXPECT_EQ(v.at("s").as_string(), "q\"uo\\te\n");
  // dump → parse → dump is a fixed point.
  const std::string once = v.dump();
  EXPECT_EQ(JsonValue::parse(once).dump(), once);
  // Pretty-printed output parses back to the same document.
  EXPECT_EQ(JsonValue::parse(v.dump(2)).dump(), once);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(JsonValue::parse(""), ParseError);
  EXPECT_THROW(JsonValue::parse("{"), ParseError);
  EXPECT_THROW(JsonValue::parse("[1,]"), ParseError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), ParseError);
  EXPECT_THROW(JsonValue::parse("nul"), ParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ParseError);
}

TEST(Json, IntegersStayIntegers) {
  JsonValue v(std::uint64_t{16384});
  EXPECT_EQ(v.dump(), "16384");
  EXPECT_DOUBLE_EQ(JsonValue::parse("16384").as_number(), 16384.0);
}

// --------------------------------------------------------------- Trace

TEST(Trace, DisabledModeProducesZeroOutput) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  {
    OPISO_SPAN("outer");
    OPISO_SPAN("inner");
  }
  EXPECT_EQ(tracer.num_events(), 0u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(Trace, SpanNestingAndMonotonicity) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  {
    OPISO_SPAN("outer");
    {
      OPISO_SPAN("inner_a");
    }
    {
      OPISO_SPAN("inner_b");
    }
  }
  tracer.set_enabled(false);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);  // recorded at end: inner_a, inner_b, outer
  EXPECT_EQ(events[0].name, "inner_a");
  EXPECT_EQ(events[1].name, "inner_b");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  // Children start no earlier than the parent and end within it.
  const TraceEvent& outer = events[2];
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].start_ns, outer.start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns, outer.start_ns + outer.dur_ns);
  }
  // inner_b begins after inner_a ended (steady clock is monotonic).
  EXPECT_GE(events[1].start_ns, events[0].start_ns + events[0].dur_ns);
  tracer.clear();
}

TEST(Trace, ChromeTraceShape) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  { OPISO_SPAN("phase"); }
  tracer.set_enabled(false);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  ASSERT_EQ(doc.at("traceEvents").size(), 1u);
  const JsonValue& ev = doc.at("traceEvents").at(0);
  EXPECT_EQ(ev.at("name").as_string(), "phase");
  EXPECT_EQ(ev.at("ph").as_string(), "X");
  EXPECT_TRUE(ev.at("ts").is_number());
  EXPECT_TRUE(ev.at("dur").is_number());
  tracer.clear();
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, CounterRegistryThreadSafety) {
  MetricsRegistry& m = metrics();
  m.counter("test_obs.concurrent").reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      // Re-resolve the name per increment: the get-or-create path must
      // be as thread-safe as the increment itself.
      for (int i = 0; i < kIncrements; ++i) m.counter("test_obs.concurrent").add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.counter("test_obs.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, GaugeAndHistogram) {
  MetricsRegistry& m = metrics();
  m.gauge("test_obs.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(m.gauge("test_obs.gauge").value(), 2.5);

  Histogram& h = m.histogram("test_obs.hist");
  h.reset();
  for (double v : {0.5, 1.0, 2.0, 4.0, 100.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 107.5);
  const JsonValue j = h.to_json();
  EXPECT_EQ(j.at("count").as_number(), 5.0);
  EXPECT_TRUE(j.at("buckets").size() >= 1u);
}

TEST(Metrics, SnapshotGroupsDottedNames) {
  MetricsRegistry& m = metrics();
  m.counter("test_obs.snap_a").reset();
  m.counter("test_obs.snap_a").add(7);
  const JsonValue snap = m.snapshot();
  ASSERT_TRUE(snap.contains("test_obs"));
  EXPECT_EQ(snap.at("test_obs").at("snap_a").as_number(), 7.0);
}

// ---------------------------------------------------------- Run report

TEST(RunReport, RoundTripsThroughParser) {
  IsolationOptions opt;
  opt.sim_cycles = 512;
  opt.warmup_cycles = 8;
  const IsolationResult res = run_operand_isolation(
      make_fig1(8), [] { return std::make_unique<UniformStimulus>(7); }, opt);
  ASSERT_FALSE(res.iterations.empty());

  std::ostringstream os;
  write_run_report(os, res, opt);
  const JsonValue doc = JsonValue::parse(os.str());

  EXPECT_EQ(doc.at("schema").as_string(), "opiso.run_report/v1");
  EXPECT_EQ(doc.at("design").as_string(), res.netlist.name());
  EXPECT_EQ(doc.at("options").at("sim_cycles").as_number(), 512.0);
  EXPECT_DOUBLE_EQ(doc.at("summary").at("power_after_mw").as_number(), res.power_after_mw);
  EXPECT_EQ(doc.at("summary").at("modules_isolated").as_number(),
            static_cast<double>(res.records.size()));

  // Per-iteration candidate decision tables mirror the in-memory log.
  ASSERT_EQ(doc.at("iterations").size(), res.iterations.size());
  const JsonValue& it0 = doc.at("iterations").at(0);
  ASSERT_EQ(it0.at("candidates").size(), res.iterations[0].evaluations.size());
  const CandidateEvaluation& ev0 = res.iterations[0].evaluations[0];
  const JsonValue& c0 = it0.at("candidates").at(0);
  EXPECT_EQ(c0.at("cell").as_string(), ev0.cell_name);
  EXPECT_DOUBLE_EQ(c0.at("h").as_number(), ev0.h);
  EXPECT_EQ(c0.at("decision").as_string(), candidate_decision(ev0));

  // Counters from the layers the run exercised are present.
  EXPECT_GT(doc.at("metrics").at("sim").at("cycles").as_number(), 0.0);
  EXPECT_GT(doc.at("metrics").at("sta").at("runs").as_number(), 0.0);
  EXPECT_GT(doc.at("metrics").at("bdd").at("managers").as_number(), 0.0);

  // The whole document survives a parse → dump → parse cycle.
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
}

TEST(RunReport, DecisionStrings) {
  CandidateEvaluation ev;
  EXPECT_STREQ(candidate_decision(ev), "rejected");
  ev.slack_vetoed = true;
  EXPECT_STREQ(candidate_decision(ev), "slack-veto");
  ev.legal = false;
  EXPECT_STREQ(candidate_decision(ev), "illegal");
  ev.isolated_now = true;
  EXPECT_STREQ(candidate_decision(ev), "isolated");
}

}  // namespace
}  // namespace opiso::obs
