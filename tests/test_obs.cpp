// Observability layer: JSON round-trips, span tracing, metrics
// registry, run reports.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "sim/sweep.hpp"
#include "support/error.hpp"

namespace opiso::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, BuildAndDump) {
  JsonValue doc = JsonValue::object();
  doc["name"] = "opiso";
  doc["count"] = std::uint64_t{42};
  doc["pi"] = 3.5;
  doc["ok"] = true;
  doc["nothing"] = JsonValue();
  doc["list"].push_back(1);
  doc["list"].push_back("two");
  EXPECT_EQ(doc.dump(),
            R"({"name":"opiso","count":42,"pi":3.5,"ok":true,"nothing":null,"list":[1,"two"]})");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"a": [1, 2.5, -3e2, true, false, null], "s": "q\"uo\\te\n", "nested": {"x": {}}})";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(v.at("a").size(), 6u);
  EXPECT_DOUBLE_EQ(v.at("a").at(2).as_number(), -300.0);
  EXPECT_EQ(v.at("s").as_string(), "q\"uo\\te\n");
  // dump → parse → dump is a fixed point.
  const std::string once = v.dump();
  EXPECT_EQ(JsonValue::parse(once).dump(), once);
  // Pretty-printed output parses back to the same document.
  EXPECT_EQ(JsonValue::parse(v.dump(2)).dump(), once);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(JsonValue::parse(""), ParseError);
  EXPECT_THROW(JsonValue::parse("{"), ParseError);
  EXPECT_THROW(JsonValue::parse("[1,]"), ParseError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), ParseError);
  EXPECT_THROW(JsonValue::parse("nul"), ParseError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ParseError);
}

TEST(Json, DepthLimitRejectsPathologicalNesting) {
  // 100 levels is legitimate structure; 200 must trip the recursion
  // budget with a structured json.depth diagnostic instead of
  // overflowing the parser's stack.
  const auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_NO_THROW(JsonValue::parse(nested(100)));
  try {
    (void)JsonValue::parse(nested(200));
    FAIL() << "expected a depth error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ErrCode::JsonDepth);
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos);
  }
  // Mixed object/array nesting counts against the same budget.
  std::string mixed;
  for (int i = 0; i < 100; ++i) mixed += R"({"a":[)";
  mixed += "1";
  for (int i = 0; i < 100; ++i) mixed += "]}";
  EXPECT_THROW(JsonValue::parse(mixed), ParseError);
}

TEST(Json, RejectsNonFiniteNumbers) {
  // JSON has no NaN/Infinity literals; each spelling must fail with a
  // json.number diagnostic that names the problem, and an overflowing
  // exponent must not sneak a non-finite double into a document.
  for (const char* text : {"NaN", "nan", "Infinity", "-Infinity", "inf", "-inf",
                           R"({"v": NaN})", "[1, Infinity]", "1e999", "-1e999"}) {
    SCOPED_TRACE(text);
    try {
      (void)JsonValue::parse(text);
      ADD_FAILURE() << "parsed non-finite input: " << text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.code(), ErrCode::JsonNumber) << e.what();
    }
  }
}

TEST(Json, IntegersStayIntegers) {
  JsonValue v(std::uint64_t{16384});
  EXPECT_EQ(v.dump(), "16384");
  EXPECT_DOUBLE_EQ(JsonValue::parse("16384").as_number(), 16384.0);
}

TEST(Json, IntegersExactBeyondDoublePrecision) {
  // 2^53 + 1 is the first integer a double cannot hold; toggle counters
  // on long sweeps get there. Build-side exactness:
  const std::uint64_t big = 9007199254740993ull;  // 2^53 + 1
  JsonValue v(big);
  EXPECT_TRUE(v.is_integer());
  EXPECT_EQ(v.dump(), "9007199254740993");
  EXPECT_EQ(v.as_uint64(), big);
  // Parse-side exactness, through a full round trip:
  const JsonValue r = JsonValue::parse(v.dump());
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r.as_uint64(), big);
  EXPECT_EQ(r.dump(), "9007199254740993");

  // The extremes of both representations survive round trips too.
  const JsonValue umax = JsonValue::parse("18446744073709551615");
  EXPECT_EQ(umax.num_rep(), JsonValue::NumRep::Uint64);
  EXPECT_EQ(umax.as_uint64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(umax.dump(), "18446744073709551615");
  const JsonValue imin = JsonValue::parse("-9223372036854775808");
  EXPECT_EQ(imin.num_rep(), JsonValue::NumRep::Int64);
  EXPECT_EQ(imin.as_int64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(imin.dump(), "-9223372036854775808");

  // Conversions that cannot represent the value must throw, not wrap.
  EXPECT_THROW((void)umax.as_int64(), Error);
  EXPECT_THROW((void)imin.as_uint64(), Error);
  // Non-integral tokens stay doubles even when they look integral-ish.
  EXPECT_FALSE(JsonValue::parse("1e3").is_integer());
  EXPECT_FALSE(JsonValue::parse("16384.0").is_integer());
  // Beyond-uint64 magnitudes fall back to double instead of failing.
  const JsonValue huge = JsonValue::parse("28446744073709551615");
  EXPECT_FALSE(huge.is_integer());
  EXPECT_GT(huge.as_number(), 1.8e19);
}

// --------------------------------------------------------------- Trace

TEST(Trace, DisabledModeProducesZeroOutput) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(false);
  tracer.clear();
  {
    OPISO_SPAN("outer");
    OPISO_SPAN("inner");
  }
  EXPECT_EQ(tracer.num_events(), 0u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(Trace, SpanNestingAndMonotonicity) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  {
    OPISO_SPAN("outer");
    {
      OPISO_SPAN("inner_a");
    }
    {
      OPISO_SPAN("inner_b");
    }
  }
  tracer.set_enabled(false);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);  // recorded at end: inner_a, inner_b, outer
  EXPECT_EQ(events[0].name, "inner_a");
  EXPECT_EQ(events[1].name, "inner_b");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  // Children start no earlier than the parent and end within it.
  const TraceEvent& outer = events[2];
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].start_ns, outer.start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns, outer.start_ns + outer.dur_ns);
  }
  // inner_b begins after inner_a ended (steady clock is monotonic).
  EXPECT_GE(events[1].start_ns, events[0].start_ns + events[0].dur_ns);
  tracer.clear();
}

TEST(Trace, ChromeTraceShape) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  { OPISO_SPAN("phase"); }
  tracer.set_enabled(false);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  ASSERT_EQ(doc.at("traceEvents").size(), 1u);
  const JsonValue& ev = doc.at("traceEvents").at(0);
  EXPECT_EQ(ev.at("name").as_string(), "phase");
  EXPECT_EQ(ev.at("ph").as_string(), "X");
  EXPECT_TRUE(ev.at("ts").is_number());
  EXPECT_TRUE(ev.at("dur").is_number());
  tracer.clear();
}

TEST(Trace, ConcurrentSweepWorkerSpansProduceValidChromeTrace) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);

  std::vector<SweepTask> tasks;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SweepTask t;
    t.design = "fig1";
    t.make_design = [] { return make_fig1(); };
    t.seed = seed;
    t.cycles = 64;
    tasks.push_back(std::move(t));
  }
  SweepRunner runner(4);
  const std::vector<SweepResult> results = runner.run(tasks);
  tracer.set_enabled(false);
  ASSERT_EQ(results.size(), tasks.size());

  // One sweep.task span per task (worker threads) + the caller's
  // sweep.run span, with per-thread lanes: the caller never executes
  // tasks, so its tid differs from every worker's.
  const std::vector<TraceEvent> events = tracer.events();
  std::set<int> task_tids;
  int run_tid = -1;
  std::size_t task_spans = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "sweep.task") {
      ++task_spans;
      task_tids.insert(e.tid);
    } else if (e.name == "sweep.run") {
      run_tid = e.tid;
    }
  }
  EXPECT_EQ(task_spans, tasks.size());
  EXPECT_NE(run_tid, -1);
  EXPECT_EQ(task_tids.count(run_tid), 0u);

  // The serialized trace is one valid JSON document whose events all
  // carry the Chrome trace-event fields.
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = JsonValue::parse(os.str());
  ASSERT_EQ(doc.at("traceEvents").size(), events.size());
  for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
    const JsonValue& ev = doc.at("traceEvents").at(i);
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("dur").is_number());
    EXPECT_GE(ev.at("tid").as_number(), 1.0);
  }
  tracer.clear();
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, CounterRegistryThreadSafety) {
  MetricsRegistry& m = metrics();
  m.counter("test_obs.concurrent").reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      // Re-resolve the name per increment: the get-or-create path must
      // be as thread-safe as the increment itself.
      for (int i = 0; i < kIncrements; ++i) m.counter("test_obs.concurrent").add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.counter("test_obs.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, GaugeAndHistogram) {
  MetricsRegistry& m = metrics();
  m.gauge("test_obs.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(m.gauge("test_obs.gauge").value(), 2.5);

  Histogram& h = m.histogram("test_obs.hist");
  h.reset();
  for (double v : {0.5, 1.0, 2.0, 4.0, 100.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 107.5);
  const JsonValue j = h.to_json();
  EXPECT_EQ(j.at("count").as_number(), 5.0);
  EXPECT_TRUE(j.at("buckets").size() >= 1u);
}

TEST(Metrics, HistogramEdgeCases) {
  MetricsRegistry& m = metrics();
  Histogram& h = m.histogram("test_obs.hist_edge");

  // Single sample: min == max == the sample, mean is exact.
  h.reset();
  h.record(3.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.25);
  EXPECT_DOUBLE_EQ(h.max(), 3.25);
  EXPECT_DOUBLE_EQ(h.mean(), 3.25);

  // Negative values are legal samples (share the lowest bucket).
  h.reset();
  h.record(-5.0);
  h.record(-1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), -1.0);
  EXPECT_DOUBLE_EQ(h.sum(), -6.0);

  // NaN samples are dropped entirely.
  h.reset();
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  h.record(2.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);

  // ±inf samples count, clamp to the extreme buckets, and propagate
  // into min/max — and the JSON snapshot stays parseable (non-finite
  // doubles serialize as null).
  h.reset();
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_TRUE(std::isinf(h.max()) && h.max() > 0);
  EXPECT_TRUE(std::isinf(h.min()) && h.min() < 0);
  const JsonValue j = h.to_json();
  EXPECT_EQ(j.at("count").as_number(), 3.0);
  // Non-finite doubles serialize as null, so the snapshot stays valid
  // JSON and round-trips.
  const JsonValue round = JsonValue::parse(j.dump());
  EXPECT_TRUE(round.at("max").is_null());
  EXPECT_TRUE(round.at("min").is_null());
  EXPECT_EQ(round.dump(), JsonValue::parse(round.dump()).dump());
  h.reset();
}

TEST(Metrics, SnapshotGroupsDottedNames) {
  MetricsRegistry& m = metrics();
  m.counter("test_obs.snap_a").reset();
  m.counter("test_obs.snap_a").add(7);
  const JsonValue snap = m.snapshot();
  ASSERT_TRUE(snap.contains("test_obs"));
  EXPECT_EQ(snap.at("test_obs").at("snap_a").as_number(), 7.0);
}

// ---------------------------------------------------------- Run report

TEST(RunReport, RoundTripsThroughParser) {
  IsolationOptions opt;
  opt.sim_cycles = 512;
  opt.warmup_cycles = 8;
  const IsolationResult res = run_operand_isolation(
      make_fig1(8), [] { return std::make_unique<UniformStimulus>(7); }, opt);
  ASSERT_FALSE(res.iterations.empty());

  std::ostringstream os;
  write_run_report(os, res, opt);
  const JsonValue doc = JsonValue::parse(os.str());

  EXPECT_EQ(doc.at("schema").as_string(), "opiso.run_report/v1");
  EXPECT_EQ(doc.at("design").as_string(), res.netlist.name());
  EXPECT_EQ(doc.at("options").at("sim_cycles").as_number(), 512.0);
  EXPECT_DOUBLE_EQ(doc.at("summary").at("power_after_mw").as_number(), res.power_after_mw);
  EXPECT_EQ(doc.at("summary").at("modules_isolated").as_number(),
            static_cast<double>(res.records.size()));

  // Per-iteration candidate decision tables mirror the in-memory log.
  ASSERT_EQ(doc.at("iterations").size(), res.iterations.size());
  const JsonValue& it0 = doc.at("iterations").at(0);
  ASSERT_EQ(it0.at("candidates").size(), res.iterations[0].evaluations.size());
  const CandidateEvaluation& ev0 = res.iterations[0].evaluations[0];
  const JsonValue& c0 = it0.at("candidates").at(0);
  EXPECT_EQ(c0.at("cell").as_string(), ev0.cell_name);
  EXPECT_DOUBLE_EQ(c0.at("h").as_number(), ev0.h);
  EXPECT_EQ(c0.at("decision").as_string(), candidate_decision(ev0));

  // Counters from the layers the run exercised are present.
  EXPECT_GT(doc.at("metrics").at("sim").at("cycles").as_number(), 0.0);
  EXPECT_GT(doc.at("metrics").at("sta").at("runs").as_number(), 0.0);
  EXPECT_GT(doc.at("metrics").at("bdd").at("managers").as_number(), 0.0);

  // The whole document survives a parse → dump → parse cycle.
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
}

TEST(RunReport, DecisionStrings) {
  CandidateEvaluation ev;
  EXPECT_STREQ(candidate_decision(ev), "rejected");
  ev.slack_vetoed = true;
  EXPECT_STREQ(candidate_decision(ev), "slack-veto");
  ev.legal = false;
  EXPECT_STREQ(candidate_decision(ev), "illegal");
  ev.isolated_now = true;
  EXPECT_STREQ(candidate_decision(ev), "isolated");
}

}  // namespace
}  // namespace opiso::obs
