// Tests for the cycle-based simulator: functional semantics of every
// cell kind, register/latch behavior, toggle statistics and probes.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace opiso {
namespace {

/// Drives a single-input design with an explicit value sequence and
/// returns the observed per-cycle values of `watch`.
std::vector<std::uint64_t> drive(const Netlist& nl, VectorStimulus& stim, NetId watch,
                                 std::size_t cycles) {
  Simulator sim(nl);
  std::vector<std::uint64_t> observed;
  for (std::size_t i = 0; i < cycles; ++i) {
    sim.run(stim, 1);
    observed.push_back(sim.net_value(watch));
  }
  return observed;
}

TEST(Sim, CombinationalOps) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  NetId dif = nl.add_binop(CellKind::Sub, "dif", a, b);
  NetId prd = nl.add_binop(CellKind::Mul, "prd", a, b);
  NetId eq = nl.add_binop(CellKind::Eq, "eq", a, b);
  NetId lt = nl.add_binop(CellKind::Lt, "lt", a, b);
  NetId shl = nl.add_shift(CellKind::Shl, "shl", a, 2);
  NetId inv = nl.add_unop(CellKind::Not, "inv", a);
  nl.add_output("o", sum);

  ConstantStimulus stim;
  stim.set("a", 200);
  stim.set("b", 57);
  Simulator sim(nl);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(sum), 257u & 0xFF);
  EXPECT_EQ(sim.net_value(dif), (200u - 57u) & 0xFF);
  EXPECT_EQ(sim.net_value(prd), (200u * 57u) & 0xFFFF);
  EXPECT_EQ(sim.net_value(eq), 0u);
  EXPECT_EQ(sim.net_value(lt), 0u);
  EXPECT_EQ(sim.net_value(shl), (200u << 2) & 0xFF);
  EXPECT_EQ(sim.net_value(inv), static_cast<std::uint8_t>(~200u));
}

TEST(Sim, MuxSelectsBOnOne) {
  Netlist nl;
  NetId s = nl.add_input("s", 1);
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 4);
  NetId m = nl.add_mux2("m", s, a, b);
  nl.add_output("o", m);
  ConstantStimulus stim;
  stim.set("a", 3);
  stim.set("b", 12);
  stim.set("s", 0);
  Simulator sim(nl);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(m), 3u);
  stim.set("s", 1);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(m), 12u);
}

TEST(Sim, RegisterCapturesOnEnable) {
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId en = nl.add_input("en", 1);
  NetId q = nl.add_reg("q", d, en);
  nl.add_output("o", q);

  VectorStimulus stim;
  stim.set("d", {10, 20, 30, 40});
  stim.set("en", {1, 0, 1, 0});
  // Q lags by a cycle and holds when EN was 0 at the capturing edge.
  const auto q_vals = drive(nl, stim, q, 4);
  EXPECT_EQ(q_vals, (std::vector<std::uint64_t>{0, 10, 10, 30}));
}

TEST(Sim, LatchTransparentWhileEnabled) {
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId en = nl.add_input("en", 1);
  NetId q = nl.add_latch("q", d, en);
  nl.add_output("o", q);

  VectorStimulus stim;
  stim.set("d", {10, 20, 30, 40});
  stim.set("en", {1, 1, 0, 0});
  const auto q_vals = drive(nl, stim, q, 4);
  // Transparent for two cycles, then holds the last transparent value.
  EXPECT_EQ(q_vals, (std::vector<std::uint64_t>{10, 20, 20, 20}));
}

TEST(Sim, IsolationCellSemantics) {
  Netlist nl;
  NetId d = nl.add_input("d", 4);
  NetId as = nl.add_input("as", 1);
  NetId ia = nl.add_iso(CellKind::IsoAnd, "ia", d, as);
  NetId io = nl.add_iso(CellKind::IsoOr, "io", d, as);
  NetId il = nl.add_iso(CellKind::IsoLatch, "il", d, as);
  nl.add_output("o", ia);

  VectorStimulus stim;
  stim.set("d", {5, 9, 11});
  stim.set("as", {1, 0, 0});
  Simulator sim(nl);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(ia), 5u);
  EXPECT_EQ(sim.net_value(io), 5u);
  EXPECT_EQ(sim.net_value(il), 5u);
  sim.run(stim, 1);  // AS dropped: AND forces 0, OR forces ones, latch holds
  EXPECT_EQ(sim.net_value(ia), 0u);
  EXPECT_EQ(sim.net_value(io), 0xFu);
  EXPECT_EQ(sim.net_value(il), 5u);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(il), 5u);
}

TEST(Sim, AccumulatorFeedback) {
  Netlist nl;
  NetId one = nl.add_const("one", 1, 1);
  NetId d0 = nl.add_const("d0", 0, 8);
  NetId acc = nl.add_reg("acc", d0, one);
  NetId in = nl.add_input("in", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", acc, in);
  nl.reconnect_input(nl.net(acc).driver, 0, sum);
  nl.add_output("o", acc);

  ConstantStimulus stim;
  stim.set("in", 5);
  Simulator sim(nl);
  sim.run(stim, 4);
  EXPECT_EQ(sim.net_value(acc), 15u);  // 3 captured increments visible
  EXPECT_EQ(sim.net_value(sum), 20u);
}

TEST(Sim, ToggleCountsExact) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  nl.add_output("o", a);
  VectorStimulus stim;
  stim.set("a", {0b0000, 0b1111, 0b1110, 0b1110});
  Simulator sim(nl);
  sim.run(stim, 4);
  // Toggles: 4 (0000->1111) + 1 (1111->1110) + 0 = 5 over 4 cycles.
  EXPECT_EQ(sim.stats().toggles[a.value()], 5u);
  EXPECT_NEAR(sim.stats().toggle_rate(a), 5.0 / 4.0, 1e-12);
}

TEST(Sim, ProbOneTracksBit0) {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  nl.add_output("o", a);
  VectorStimulus stim;
  stim.set("a", {1, 0, 1, 1});
  Simulator sim(nl);
  sim.run(stim, 4);
  EXPECT_NEAR(sim.stats().prob_one(a), 0.75, 1e-12);
}

TEST(Sim, ProbesMeasureJointEvents) {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  NetId b = nl.add_input("b", 1);
  nl.add_output("oa", a);
  nl.add_output("ob", b);

  ExprPool pool;
  NetVarMap vars;
  const ExprRef both = pool.land(pool.var(vars.var_of(nl, a)), pool.var(vars.var_of(nl, b)));
  Simulator sim(nl, &pool, &vars);
  const std::size_t probe = sim.add_probe(both);

  VectorStimulus stim;
  stim.set("a", {1, 1, 0, 1});
  stim.set("b", {1, 0, 1, 1});
  sim.run(stim, 4);
  EXPECT_NEAR(sim.stats().probe_probability(probe), 0.5, 1e-12);  // cycles 0 and 3
  // Value sequence of the probe: 1,0,0,1 -> two toggles.
  EXPECT_NEAR(sim.stats().probe_toggle_rate(probe), 2.0 / 4.0, 1e-12);
}

TEST(Sim, ProbesRequirePoolAndVars) {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  nl.add_output("o", a);
  Simulator sim(nl);
  ExprPool pool;
  EXPECT_THROW(sim.add_probe(pool.const1()), Error);
}

TEST(Sim, StatsAccumulateAcrossRunsAndReset) {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  nl.add_output("o", a);
  VectorStimulus stim(true);
  stim.set("a", {0, 1});
  Simulator sim(nl);
  sim.run(stim, 2);
  sim.run(stim, 2);
  EXPECT_EQ(sim.stats().cycles, 4u);
  EXPECT_EQ(sim.stats().toggles[a.value()], 3u);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().cycles, 0u);
}

TEST(Sim, StatsErrorOnZeroCycles) {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  nl.add_output("o", a);
  Simulator sim(nl);
  EXPECT_THROW((void)sim.stats().toggle_rate(a), Error);
}

TEST(Sim, VcdDumpHasHeaderAndChanges) {
  Netlist nl;
  NetId a = nl.add_input("a", 2);
  nl.add_output("o", a);
  std::ostringstream vcd;
  Simulator sim(nl);
  sim.set_vcd(&vcd);
  VectorStimulus stim;
  stim.set("a", {1, 2});
  sim.run(stim, 2);
  const std::string text = vcd.str();
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$var wire 2"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace opiso
