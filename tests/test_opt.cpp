// Tests for the optimization passes: each rewrite family plus the
// global property that optimization never changes observed behavior.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "opt/passes.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace opiso {
namespace {

TEST(Opt, FoldsConstantArithmetic) {
  Netlist nl;
  NetId a = nl.add_const("a", 20, 8);
  NetId b = nl.add_const("b", 22, 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  nl.add_output("o", sum);
  OptimizeStats stats;
  const Netlist o = optimize(nl, {}, &stats);
  EXPECT_EQ(stats.folded_constants, 1u);
  // The PO is fed by a constant-42 cell.
  const Cell& po = o.cell(o.primary_outputs()[0]);
  const Cell& drv = o.cell(o.net(po.ins[0]).driver);
  EXPECT_EQ(drv.kind, CellKind::Constant);
  EXPECT_EQ(drv.param, 42u);
}

TEST(Opt, FoldsThroughChains) {
  Netlist nl;
  NetId a = nl.add_const("a", 3, 8);
  NetId b = nl.add_const("b", 5, 8);
  NetId p = nl.add_binop(CellKind::Mul, "p", a, b);     // 15, width 16
  NetId s = nl.add_shift(CellKind::Shl, "s", p, 2);     // 60
  NetId n = nl.add_unop(CellKind::Not, "n", s);
  nl.add_output("o", n);
  OptimizeStats stats;
  const Netlist o = optimize(nl, {}, &stats);
  EXPECT_EQ(stats.folded_constants, 3u);
  const Cell& drv = o.cell(o.net(o.cell(o.primary_outputs()[0]).ins[0]).driver);
  EXPECT_EQ(drv.param, (~std::uint64_t{60}) & 0xFFFF);
}

TEST(Opt, SimplifiesGateIdentities) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId zero = nl.add_const("zero", 0, 8);
  NetId ones = nl.add_const("ones", 0xFF, 8);
  NetId and1 = nl.add_binop(CellKind::And, "and1", a, ones);  // -> a
  NetId or1 = nl.add_binop(CellKind::Or, "or1", and1, zero);  // -> a
  NetId add1 = nl.add_binop(CellKind::Add, "add1", or1, zero);  // -> a
  nl.add_output("o", add1);
  OptimizeStats stats;
  const Netlist o = optimize(nl, {}, &stats);
  EXPECT_GE(stats.simplified, 3u);
  // Output is driven directly by the primary input.
  const Cell& po = o.cell(o.primary_outputs()[0]);
  EXPECT_EQ(o.cell(o.net(po.ins[0]).driver).kind, CellKind::PrimaryInput);
}

TEST(Opt, FoldsMuxWithConstantSelect) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId sel = nl.add_const("sel", 1, 1);
  NetId m = nl.add_mux2("m", sel, a, b);
  nl.add_output("o", m);
  const Netlist o = optimize(nl);
  const Cell& po = o.cell(o.primary_outputs()[0]);
  EXPECT_EQ(o.net(po.ins[0]).name, "b");  // sel = 1 selects the B leg
}

TEST(Opt, BypassesBuffersAndDoubleNegation) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b1 = nl.add_unop(CellKind::Buf, "b1", a);
  NetId n1 = nl.add_unop(CellKind::Not, "n1", b1);
  NetId n2 = nl.add_unop(CellKind::Not, "n2", n1);
  nl.add_output("o", n2);
  const Netlist o = optimize(nl);
  const Cell& po = o.cell(o.primary_outputs()[0]);
  EXPECT_EQ(o.cell(o.net(po.ins[0]).driver).kind, CellKind::PrimaryInput);
}

TEST(Opt, CseMergesIdenticalCells) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId s2 = nl.add_binop(CellKind::Add, "s2", a, b);  // identical
  NetId x = nl.add_binop(CellKind::Xor, "x", s1, s2);  // -> const 0
  nl.add_output("o", x);
  OptimizeStats stats;
  const Netlist o = optimize(nl, {}, &stats);
  EXPECT_EQ(stats.cse_merged, 1u);
  const Cell& drv = o.cell(o.net(o.cell(o.primary_outputs()[0]).ins[0]).driver);
  EXPECT_EQ(drv.kind, CellKind::Constant);
  EXPECT_EQ(drv.param, 0u);
}

TEST(Opt, RemovesDeadLogic) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId live = nl.add_binop(CellKind::Add, "live", a, b);
  nl.add_binop(CellKind::Mul, "dead_mul", a, b);  // unconnected
  NetId en = nl.add_input("en", 1);
  nl.add_reg("dead_reg", live, en);               // state never observed
  nl.add_output("o", live);
  OptimizeStats stats;
  const Netlist o = optimize(nl, {}, &stats);
  EXPECT_EQ(stats.dead_removed, 2u);
  EXPECT_FALSE(o.find_net("dead_mul").valid());
  EXPECT_FALSE(o.find_net("dead_reg").valid());
  // Interface (all PIs, the PO) is preserved.
  EXPECT_EQ(o.primary_inputs().size(), nl.primary_inputs().size());
}

TEST(Opt, TransparentIsolationCellFoldsAway) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId one = nl.add_const("one", 1, 1);
  NetId blk = nl.add_iso(CellKind::IsoAnd, "blk", a, one);
  NetId sum = nl.add_binop(CellKind::Add, "sum", blk, b);
  nl.add_output("o", sum);
  const Netlist o = optimize(nl);
  const Cell& adder = o.cell(o.net(o.find_net("sum")).driver);
  EXPECT_EQ(o.net(adder.ins[0]).name, "a");
}

TEST(Opt, KeepsRegisterFeedbackLoops) {
  Netlist nl;
  NetId one = nl.add_const("one", 1, 1);
  NetId d0 = nl.add_const("d0", 0, 8);
  NetId acc = nl.add_reg("acc", d0, one);
  NetId in = nl.add_input("in", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", acc, in);
  nl.reconnect_input(nl.net(acc).driver, 0, sum);
  nl.add_output("o", acc);
  const Netlist o = optimize(nl);
  // Behavior preserved: accumulate 3 times.
  Simulator sim(o);
  ConstantStimulus stim;
  stim.set("in", 7);
  sim.run(stim, 4);
  EXPECT_EQ(sim.net_value(o.find_net("acc")), 21u);
}

class OptEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(OptEquivalence, OptimizedDesignIsObservablyEquivalent) {
  Netlist nl;
  const std::string which = GetParam();
  if (which == "fig1") nl = make_fig1(8);
  if (which == "design1") nl = make_design1(8);
  if (which == "design2") nl = make_design2(8, 2);
  if (which == "parametric") nl = make_parametric_datapath({3, 3, 7, true});
  const Netlist o = optimize(nl);
  EXPECT_LE(o.num_cells(), nl.num_cells());
  testutil::expect_observably_equivalent(nl, o, 0xBEEF, 2500);
}

INSTANTIATE_TEST_SUITE_P(Designs, OptEquivalence,
                         ::testing::Values("fig1", "design1", "design2", "parametric"));

TEST(Opt, IdempotentOnBenchmarks) {
  const Netlist nl = make_design2(8, 2);
  OptimizeStats s1, s2;
  const Netlist once = optimize(nl, {}, &s1);
  const Netlist twice = optimize(once, {}, &s2);
  EXPECT_EQ(s2.folded_constants, 0u);
  EXPECT_EQ(s2.cse_merged, 0u);
  EXPECT_LE(twice.num_cells(), once.num_cells());
}

// Regression: optimize() used to leave the 1-bit placeholder constant
// from register reconstruction dangling in its output. Every constant
// in the optimized netlist must have a reader.
TEST(Opt, NoDanglingPlaceholderConstants) {
  for (const Netlist& nl : {make_design1(8), make_design2(8, 4)}) {
    const Netlist o = optimize(nl);
    std::vector<int> readers(o.num_nets(), 0);
    for (CellId id : o.cell_ids()) {
      for (NetId in : o.cell(id).ins) ++readers[in.value()];
    }
    for (CellId id : o.cell_ids()) {
      const Cell& c = o.cell(id);
      if (c.kind != CellKind::Constant) continue;
      EXPECT_GT(readers[c.out.value()], 0)
          << "dangling constant '" << c.name << "' in optimized " << nl.name();
    }
  }
}

// Regression: IsoOr with a constant-0 activation forces all ones — the
// symmetric fold of IsoAnd's constant-0 → 0.
TEST(Opt, IsoOrConstantZeroActivationFoldsToOnes) {
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId zero = nl.add_const("zero", 0, 1);
  NetId blk = nl.add_iso(CellKind::IsoOr, "blk", d, zero);
  nl.add_output("o", blk);
  const Netlist o = optimize(nl);
  const Cell& po = o.cell(o.primary_outputs()[0]);
  const Cell& drv = o.cell(o.net(po.ins[0]).driver);
  EXPECT_EQ(drv.kind, CellKind::Constant);
  EXPECT_EQ(drv.param, 0xFFu);
  testutil::expect_observably_equivalent(nl, o, 0x150A, 200);
}

// Regression: And with an all-ones constant *narrower* than the output
// word is a mask (the constant zero-extends), not an identity.
TEST(Opt, NarrowOnesConstantIsNotAnAndIdentity) {
  Netlist nl;
  NetId x = nl.add_input("x", 8);
  NetId ones4 = nl.add_const("ones4", 0xF, 4);
  NetId y = nl.add_binop(CellKind::And, "y", x, ones4);
  nl.add_output("o", y);
  const Netlist o = optimize(nl);
  Simulator sim(o);
  ConstantStimulus stim;
  stim.set("x", 0xAB);
  sim.run(stim, 2);
  EXPECT_EQ(sim.net_value(o.cell(o.primary_outputs()[0]).ins[0]), 0x0Bu);
}

// Regression: the CSE cache is keyed on the output width too — two
// constants with equal values but different widths are distinct (their
// widths propagate into downstream truncation behavior).
TEST(Opt, CseKeepsSameValueConstantsOfDifferentWidthsApart) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  NetId b = nl.add_input("b", 8);
  NetId c4 = nl.add_const("c4", 7, 4);
  NetId c8 = nl.add_const("c8", 7, 8);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, c4);  // width 4: wraps
  NetId s2 = nl.add_binop(CellKind::Add, "s2", b, c8);  // width 8
  nl.add_output("o1", s1);
  nl.add_output("o2", s2);
  const Netlist o = optimize(nl);
  Simulator sim(o);
  ConstantStimulus stim;
  stim.set("a", 15);
  stim.set("b", 15);
  sim.run(stim, 2);
  EXPECT_EQ(sim.net_value(o.cell(o.primary_outputs()[0]).ins[0]), 6u);
  EXPECT_EQ(sim.net_value(o.cell(o.primary_outputs()[1]).ins[0]), 22u);
  testutil::expect_observably_equivalent(nl, o, 0xC5E1, 200);
}

TEST(Opt, DisabledPassesDoNothing) {
  Netlist nl;
  NetId a = nl.add_const("a", 1, 8);
  NetId b = nl.add_const("b", 2, 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  nl.add_output("o", sum);
  OptimizeOptions off;
  off.constant_fold = off.simplify = off.cse = off.dead_code_elim = false;
  OptimizeStats stats;
  const Netlist o = optimize(nl, off, &stats);
  EXPECT_EQ(stats.folded_constants, 0u);
  EXPECT_EQ(o.num_cells(), nl.num_cells());
}

}  // namespace
}  // namespace opiso
