// Report diff: schema-aware, tolerance-aware structural comparison —
// the core of the determinism and bench/golden CI gates.

#include <gtest/gtest.h>

#include <sstream>

#include "obs/report_diff.hpp"
#include "support/error.hpp"

namespace opiso::obs {
namespace {

ToleranceSpec spec_from(const std::string& rules_json) {
  return ToleranceSpec::parse(
      JsonValue::parse(R"({"schema": "opiso.report_tolerances/v1", "rules": )" + rules_json +
                       "}"));
}

TEST(ReportDiff, IdenticalDocumentsProduceNoEntries) {
  const JsonValue a = JsonValue::parse(
      R"({"schema": "opiso.sweep/v1", "tasks": [{"design": "fig1", "toggles": 123}],
          "totals": {"tasks": 1}})");
  EXPECT_TRUE(diff_reports(a, a).empty());
}

TEST(ReportDiff, ValueDivergenceListsDottedPath) {
  const JsonValue a = JsonValue::parse(R"({"tasks": [{"power_mw": 1.0}]})");
  const JsonValue b = JsonValue::parse(R"({"tasks": [{"power_mw": 2.0}]})");
  const std::vector<DiffEntry> d = diff_reports(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].path, "tasks.0.power_mw");
  EXPECT_EQ(d[0].kind, "value");
  EXPECT_DOUBLE_EQ(d[0].delta, 1.0);

  std::ostringstream os;
  print_diff(os, d);
  EXPECT_NE(os.str().find("tasks.0.power_mw"), std::string::npos);
}

TEST(ReportDiff, SchemaMismatchIsItsOwnKindAndLeads) {
  const JsonValue a =
      JsonValue::parse(R"({"x": 1, "schema": "opiso.sweep/v1"})");
  const JsonValue b =
      JsonValue::parse(R"({"x": 2, "schema": "opiso.run_report/v1"})");
  const std::vector<DiffEntry> d = diff_reports(a, b);
  ASSERT_GE(d.size(), 2u);
  EXPECT_EQ(d[0].kind, "schema");
  EXPECT_EQ(d[0].path, "schema");
}

TEST(ReportDiff, MissingExtraAndLength) {
  const JsonValue a = JsonValue::parse(R"({"only_a": 1, "arr": [1, 2]})");
  const JsonValue b = JsonValue::parse(R"({"only_b": 2, "arr": [1]})");
  const std::vector<DiffEntry> d = diff_reports(a, b);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].path, "only_a");
  EXPECT_EQ(d[0].kind, "missing");
  EXPECT_EQ(d[1].path, "arr");
  EXPECT_EQ(d[1].kind, "length");
  EXPECT_EQ(d[2].path, "only_b");
  EXPECT_EQ(d[2].kind, "extra");
}

TEST(ReportDiff, SubsetModeSkipsBOnlyKeys) {
  const JsonValue golden = JsonValue::parse(R"({"summary": {"pct": 10.0}})");
  const JsonValue full = JsonValue::parse(
      R"({"summary": {"pct": 10.0, "extra_detail": 1}, "metrics": {}})");
  DiffOptions options;
  options.subset = true;
  EXPECT_TRUE(diff_reports(golden, full, {}, options).empty());
  // But A-side keys must still exist in B.
  const JsonValue incomplete = JsonValue::parse(R"({"metrics": {}})");
  const std::vector<DiffEntry> d = diff_reports(golden, incomplete, {}, options);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, "missing");
}

TEST(ReportDiff, AbsAndRelTolerancesAccept) {
  const JsonValue a = JsonValue::parse(R"({"rows": [{"pct": 33.0}], "p": 100.0})");
  const JsonValue b = JsonValue::parse(R"({"rows": [{"pct": 35.0}], "p": 100.00001})");
  // No rules: both fields diverge.
  EXPECT_EQ(diff_reports(a, b).size(), 2u);
  const ToleranceSpec spec =
      spec_from(R"([{"path": "rows.*.pct", "abs": 3.0}, {"path": "p", "rel": 1e-6}])");
  EXPECT_TRUE(diff_reports(a, b, spec).empty());
  // Tighter bounds reject again, and the entry carries what was allowed.
  const ToleranceSpec tight = spec_from(R"([{"path": "rows.*.pct", "abs": 1.0}])");
  const std::vector<DiffEntry> d = diff_reports(a, b, tight);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].path, "rows.0.pct");
  EXPECT_DOUBLE_EQ(d[0].allowed, 1.0);
}

TEST(ReportDiff, OneSidedRelIncreaseAllowsUnboundedImprovement) {
  // Lower-is-better metric (wall time): a halving passes, a within-
  // margin rise passes, an over-margin rise fails — the CI perf gate's
  // exact semantics.
  const ToleranceSpec spec = spec_from(R"([{"path": "benches.*.wall_ms",
                                            "rel_increase": 0.10}])");
  const JsonValue base = JsonValue::parse(R"({"benches": [{"wall_ms": 100.0}]})");
  const JsonValue faster = JsonValue::parse(R"({"benches": [{"wall_ms": 50.0}]})");
  const JsonValue slightly = JsonValue::parse(R"({"benches": [{"wall_ms": 109.0}]})");
  const JsonValue regressed = JsonValue::parse(R"({"benches": [{"wall_ms": 111.0}]})");
  EXPECT_TRUE(diff_reports(base, faster, spec).empty());
  EXPECT_TRUE(diff_reports(base, slightly, spec).empty());
  const std::vector<DiffEntry> d = diff_reports(base, regressed, spec);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].path, "benches.0.wall_ms");
  EXPECT_DOUBLE_EQ(d[0].allowed, 10.0);
}

TEST(ReportDiff, OneSidedRelDecreaseGuardsThroughputMetrics) {
  // Higher-is-better metric (lane-cycles/sec): only a drop beyond the
  // margin is a regression.
  const ToleranceSpec spec = spec_from(R"([{"path": "throughput",
                                            "rel_decrease": 0.10}])");
  const JsonValue base = JsonValue::parse(R"({"throughput": 1000.0})");
  EXPECT_TRUE(diff_reports(base, JsonValue::parse(R"({"throughput": 5000.0})"), spec).empty());
  EXPECT_TRUE(diff_reports(base, JsonValue::parse(R"({"throughput": 901.0})"), spec).empty());
  EXPECT_EQ(diff_reports(base, JsonValue::parse(R"({"throughput": 899.0})"), spec).size(), 1u);
}

TEST(ReportDiff, OneSidedRulesComposeWithTwoSidedAcceptance) {
  // An abs rule on the same path still accepts small regressions even
  // past the one-sided margin's direction checks.
  const ToleranceSpec spec = spec_from(R"([{"path": "v", "abs": 5.0,
                                            "rel_increase": 0.0}])");
  const JsonValue base = JsonValue::parse(R"({"v": 100.0})");
  EXPECT_TRUE(diff_reports(base, JsonValue::parse(R"({"v": 104.0})"), spec).empty());
  EXPECT_EQ(diff_reports(base, JsonValue::parse(R"({"v": 106.0})"), spec).size(), 1u);
  EXPECT_TRUE(diff_reports(base, JsonValue::parse(R"({"v": 1.0})"), spec).empty());
}

TEST(ReportDiff, IgnoreRulesSuppressSubtreesAndPresence) {
  const JsonValue a = JsonValue::parse(R"({"metrics": {"sim": {"ns": 1}}, "x": 1})");
  const JsonValue b = JsonValue::parse(R"({"x": 1})");
  const ToleranceSpec spec = spec_from(R"([{"path": "metrics.**", "ignore": true},
                                           {"path": "metrics", "ignore": true}])");
  EXPECT_TRUE(diff_reports(a, b, spec).empty());
}

TEST(ReportDiff, TrailingGlobMatchesAnySuffix) {
  const JsonValue a = JsonValue::parse(R"({"prof": {"deep": {"er": 1.0}}})");
  const JsonValue b = JsonValue::parse(R"({"prof": {"deep": {"er": 2.0}}})");
  EXPECT_EQ(diff_reports(a, b).size(), 1u);
  EXPECT_TRUE(diff_reports(a, b, spec_from(R"([{"path": "prof.**", "ignore": true}])")).empty());
  // In-segment glob.
  const JsonValue c = JsonValue::parse(R"({"power_before_mw": 1.0})");
  const JsonValue e = JsonValue::parse(R"({"power_before_mw": 1.5})");
  EXPECT_TRUE(diff_reports(c, e, spec_from(R"([{"path": "power_*", "abs": 1.0}])")).empty());
}

TEST(ReportDiff, GlobMatchingTable) {
  // Table-driven matcher contract, exercised through ignore rules: a
  // matching pattern suppresses the divergence at `path`, a
  // non-matching one leaves it. Covers `**` matching zero segments
  // mid-pattern, multiple `**`, `*` vs `**`, and empty path segments
  // (consecutive dots are real segments here, not separators to fold).
  struct Case {
    const char* pattern;
    const char* key;  // object key whose value diverges (dots nest)
    bool matches;
  };
  const Case kCases[] = {
      // `**` as zero segments mid-pattern: a.**.z covers a.z ...
      {"a.**.z", "a.z", true},
      // ... one segment ...
      {"a.**.z", "a.b.z", true},
      // ... and several.
      {"a.**.z", "a.b.c.d.z", true},
      {"a.**.z", "a.b.c.tail", false},
      // `**` must not absorb the required trailing literal.
      {"a.**.z", "a", false},
      // Leading `**`.
      {"**.z", "z", true},
      {"**.z", "a.b.z", true},
      {"**.z", "a.b.y", false},
      // Double `**`.
      {"**.m.**", "m", true},
      {"**.m.**", "a.m.b.c", true},
      {"**.m.**", "a.n.b", false},
      // Bare `**` matches everything, including the root-level key.
      {"**", "anything.at.all", true},
      // `*` is exactly one segment — never zero, never two.
      {"a.*.z", "a.b.z", true},
      {"a.*.z", "a.z", false},
      {"a.*.z", "a.b.c.z", false},
      // In-segment glob combined with `**`.
      {"**.power_*", "deep.down.power_mw", true},
      {"**.power_*", "deep.down.area_um2", false},
      // Empty segments (an ignore rule author may write "a..b")
      // participate literally instead of crashing or folding.
      {"a..b", "a.b", false},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(std::string(c.pattern) + " vs " + c.key);
    // Build nested docs so that the dotted path `c.key` exists and
    // diverges between a and b.
    JsonValue a(1.0);
    JsonValue b(2.0);
    const std::string key(c.key);
    std::vector<std::string> segs;
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = key.find('.', start);
      segs.push_back(key.substr(start, dot - start));
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
      JsonValue na = JsonValue::object();
      JsonValue nb = JsonValue::object();
      na[*it] = std::move(a);
      nb[*it] = std::move(b);
      a = std::move(na);
      b = std::move(nb);
    }
    const ToleranceSpec spec =
        spec_from(std::string(R"([{"path": ")") + c.pattern + R"(", "ignore": true}])");
    EXPECT_EQ(diff_reports(a, b, spec).empty(), c.matches);
  }
}

TEST(ReportDiff, EmptySegmentsInPathsDiffCleanly) {
  // A document key containing no characters produces an empty path
  // segment; matching and reporting must handle it.
  JsonValue a = JsonValue::object();
  JsonValue b = JsonValue::object();
  JsonValue inner_a = JsonValue::object();
  JsonValue inner_b = JsonValue::object();
  inner_a[""] = JsonValue(1.0);
  inner_b[""] = JsonValue(2.0);
  a["x"] = std::move(inner_a);
  b["x"] = std::move(inner_b);
  const std::vector<DiffEntry> d = diff_reports(a, b);
  ASSERT_EQ(d.size(), 1u);
  // The empty segment is ignorable by an exact-spelling rule.
  EXPECT_TRUE(diff_reports(a, b, spec_from(R"([{"path": "x.", "ignore": true}])")).empty());
  // `x.*` also covers it: `*` matches one segment, even an empty one.
  EXPECT_TRUE(diff_reports(a, b, spec_from(R"([{"path": "x.*", "ignore": true}])")).empty());
}

TEST(ReportDiff, ExactIntegersBeyondDoublePrecision) {
  // 2^53 and 2^53+1 collapse to the same double; the diff must still
  // see them as different.
  const JsonValue a = JsonValue::parse(R"({"toggles": 9007199254740992})");
  const JsonValue b = JsonValue::parse(R"({"toggles": 9007199254740993})");
  const std::vector<DiffEntry> d = diff_reports(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].path, "toggles");
  // And equal giant integers match (uint64 territory).
  const JsonValue u = JsonValue::parse(R"({"toggles": 18446744073709551615})");
  EXPECT_TRUE(diff_reports(u, u).empty());
}

TEST(ReportDiff, TypeMismatchesAreStructural) {
  const JsonValue a = JsonValue::parse(R"({"v": 1})");
  const JsonValue b = JsonValue::parse(R"({"v": "1"})");
  const std::vector<DiffEntry> d = diff_reports(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, "type");
}

TEST(ReportDiff, FirstMatchingRuleWins) {
  const JsonValue a = JsonValue::parse(R"({"x": 1.0})");
  const JsonValue b = JsonValue::parse(R"({"x": 5.0})");
  // The first (narrow) rule matches and rejects; the later permissive
  // rule never applies.
  const ToleranceSpec spec =
      spec_from(R"([{"path": "x", "abs": 1.0}, {"path": "x", "abs": 100.0}])");
  EXPECT_EQ(diff_reports(a, b, spec).size(), 1u);
}

TEST(ReportDiff, ToleranceSpecParseRejectsBadInput) {
  EXPECT_THROW(ToleranceSpec::parse(JsonValue::parse(R"({"schema": "nope"})")), Error);
  EXPECT_THROW(
      ToleranceSpec::parse(JsonValue::parse(
          R"({"schema": "opiso.report_tolerances/v1", "rules": [{"abs": 1.0}]})")),
      Error);
}

}  // namespace
}  // namespace opiso::obs
