#pragma once
// Shared helpers for the opiso test suite.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace opiso::testutil {

/// Lock-step observational equivalence: both designs see identical
/// stimulus; every primary output must agree on every cycle. This is
/// the correctness contract of operand isolation — blocked computations
/// are exactly the ones that are never observed.
inline void expect_observably_equivalent(const Netlist& a, const Netlist& b,
                                         std::uint64_t seed, std::uint64_t cycles) {
  ASSERT_EQ(a.primary_outputs().size(), b.primary_outputs().size());
  Simulator sim_a(a);
  Simulator sim_b(b);
  UniformStimulus stim_a(seed);
  UniformStimulus stim_b(seed);
  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    sim_a.run(stim_a, 1);
    sim_b.run(stim_b, 1);
    for (std::size_t i = 0; i < a.primary_outputs().size(); ++i) {
      const NetId net_a = a.cell(a.primary_outputs()[i]).ins[0];
      const NetId net_b = b.cell(b.primary_outputs()[i]).ins[0];
      ASSERT_EQ(sim_a.net_value(net_a), sim_b.net_value(net_b))
          << "output " << a.net(net_a).name << " diverged at cycle " << cycle;
    }
  }
}

}  // namespace opiso::testutil
