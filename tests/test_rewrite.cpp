// Tests for equality-saturation datapath rewriting: rule soundness,
// budget degradation, verification gating, report determinism, and the
// differential fuzz contract (original vs optimized vs rewritten agree
// bitwise under both simulation engines).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "obs/json.hpp"
#include "opt/passes.hpp"
#include "opt/rewrite_rules.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/sweep.hpp"
#include "test_util.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

Netlist load_fir4() {
  return parse_rtl_file(std::string(OPISO_DESIGNS_RTL_DIR) + "/fir4.rtl");
}

std::size_t count_kind(const Netlist& nl, CellKind kind) {
  std::size_t n = 0;
  for (CellId id : nl.cell_ids()) {
    if (nl.cell(id).kind == kind) ++n;
  }
  return n;
}

std::uint64_t fired(const RewriteResult& r, const std::string& rule) {
  const auto it = r.rules_fired.find(rule);
  return it == r.rules_fired.end() ? 0 : it->second;
}

/// Lock-step comparison under the lane-parallel engine: every primary
/// output must agree in every lane on every cycle.
void expect_parallel_equivalent(const Netlist& a, const Netlist& b, std::uint64_t seed,
                                unsigned lanes, std::uint64_t cycles) {
  ParallelSimulator pa(a, lanes);
  ParallelSimulator pb(b, lanes);
  const auto stim = [seed](unsigned lane) {
    return std::make_unique<UniformStimulus>(sweep_lane_seed(seed, lane));
  };
  pa.set_stimulus(stim);
  pb.set_stimulus(stim);
  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    pa.run(1);
    pb.run(1);
    for (std::size_t i = 0; i < a.primary_outputs().size(); ++i) {
      const NetId na = a.cell(a.primary_outputs()[i]).ins[0];
      const NetId nb = b.cell(b.primary_outputs()[i]).ins[0];
      for (unsigned l = 0; l < lanes; ++l) {
        ASSERT_EQ(pa.lane_value(na, l), pb.lane_value(nb, l))
            << "output " << a.net(na).name << " lane " << l << " cycle " << cycle;
      }
    }
  }
}

TEST(Rewrite, Fir4DecomposesConstantMultipliers) {
  const Netlist nl = load_fir4();
  const RewriteResult r = rewrite_datapath(nl);
  ASSERT_TRUE(r.rewritten) << r.fallback_reason;
  EXPECT_TRUE(r.verified);
  EXPECT_GT(fired(r, "mul-shift-add"), 0u);
  EXPECT_LT(r.cost_after, r.cost_before);
  // The coefficients 3, 7, 7, 3 are all 2^k ± 2^j: every multiplier is
  // cheaper as shifts and an add/sub at the profiled activity, so none
  // survive extraction.
  EXPECT_GT(count_kind(nl, CellKind::Mul), 0u);
  EXPECT_EQ(count_kind(r.netlist, CellKind::Mul), 0u);
  testutil::expect_observably_equivalent(nl, r.netlist, 0xF1A4, 2000);
  const EquivResult eq = check_isolation_equivalence(nl, r.netlist);
  EXPECT_TRUE(eq.equivalent) << eq.reason;
}

TEST(Rewrite, MuxFactoringSharesTheAdder) {
  Netlist nl;
  const NetId a = nl.add_input("a", 8);
  const NetId b = nl.add_input("b", 8);
  const NetId c = nl.add_input("c", 8);
  const NetId s = nl.add_input("s", 1);
  const NetId add1 = nl.add_binop(CellKind::Add, "add1", a, c);
  const NetId add2 = nl.add_binop(CellKind::Add, "add2", b, c);
  const NetId m = nl.add_mux2("m", s, add1, add2);
  nl.add_output("o", m);
  nl.validate();

  const RewriteResult r = rewrite_datapath(nl);
  ASSERT_TRUE(r.rewritten) << r.fallback_reason;
  EXPECT_TRUE(r.verified);
  EXPECT_GT(fired(r, "mux-factor"), 0u);
  EXPECT_EQ(count_kind(r.netlist, CellKind::Add), 1u);
  testutil::expect_observably_equivalent(nl, r.netlist, 0xFAC7, 2000);
}

TEST(Rewrite, AddAssociativityRespectsWidths) {
  // (p1:1 + p2:1):1 + p3:8 — regrouping to p1 + (p2 + p3) would lose
  // the 1-bit intermediate truncation; the width guard must block it
  // (or verification must catch it). Either way behavior is preserved.
  Netlist nl;
  const NetId p1 = nl.add_input("p1", 1);
  const NetId p2 = nl.add_input("p2", 1);
  const NetId p3 = nl.add_input("p3", 8);
  const NetId s1 = nl.add_binop(CellKind::Add, "s1", p1, p2);
  const NetId s2 = nl.add_binop(CellKind::Add, "s2", s1, p3);
  nl.add_output("o", s2);
  nl.validate();

  const RewriteResult r = rewrite_datapath(nl);
  testutil::expect_observably_equivalent(nl, r.netlist, 0xA55C, 2000);
}

TEST(Rewrite, NodeBudgetDegradesToInput) {
  const Netlist nl = make_design1(8);
  RewriteOptions opt;
  opt.max_nodes = 4;  // absurd: forces the PR-4 degradation path
  const RewriteResult r = rewrite_datapath(nl, opt);
  EXPECT_FALSE(r.rewritten);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.fallback_reason.empty());
  EXPECT_EQ(r.netlist.num_cells(), nl.num_cells());
  testutil::expect_observably_equivalent(nl, r.netlist, 0xB1D6, 500);
}

TEST(Rewrite, LatchDesignFallsBack) {
  Netlist nl;
  const NetId d = nl.add_input("d", 8);
  const NetId en = nl.add_input("en", 1);
  const NetId q = nl.add_latch("lat", d, en);
  nl.add_output("o", q);
  nl.validate();
  const RewriteResult r = rewrite_datapath(nl);
  EXPECT_FALSE(r.rewritten);
  EXPECT_NE(r.fallback_reason.find("latch"), std::string::npos);
}

TEST(Rewrite, VerifyGateCatchesUnsoundExtraction) {
  // With verification disabled the pass trusts its rules; with it on,
  // every rewritten result must have discharged equivalence
  // obligations. design2 exercises the FSM + MAC datapath.
  const Netlist nl = make_design2(8, 4);
  const RewriteResult r = rewrite_datapath(nl);
  if (r.rewritten) {
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.verify_obligations, 0u);
  }
  testutil::expect_observably_equivalent(nl, r.netlist, 0xD2D2, 2000);
}

TEST(Rewrite, ReportSectionIsDeterministic) {
  const auto render = [] {
    const RewriteResult r = rewrite_datapath(make_design2(8, 2));
    std::ostringstream os;
    rewrite_report_section(r).write(os, 1);
    return os.str();
  };
  const std::string a = render();
  const std::string b = render();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

class RewriteFuzz : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const { return 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(GetParam()); }
};

TEST_P(RewriteFuzz, OriginalOptimizedRewrittenAgree) {
  RandomDesignConfig cfg;
  cfg.levels = 5;
  cfg.cells_per_level = 4;
  const Netlist nl = make_random_datapath(seed(), cfg);
  const Netlist o = optimize(nl);
  const RewriteResult r = rewrite_datapath(nl);

  // Scalar engine, lock-step.
  testutil::expect_observably_equivalent(nl, o, seed(), 400);
  testutil::expect_observably_equivalent(nl, r.netlist, seed(), 400);
  // Lane-parallel engine, lock-step.
  expect_parallel_equivalent(nl, o, seed(), 8, 60);
  expect_parallel_equivalent(nl, r.netlist, seed(), 8, 60);

  // Formal check where tractable: a rewritten result was already proven
  // inside the pass; re-prove against the optimizer output too.
  if (r.rewritten) EXPECT_TRUE(r.verified);
  BddBudget budget;
  budget.max_nodes = 1u << 20;
  try {
    const EquivResult eq = check_isolation_equivalence(nl, o, budget);
    EXPECT_TRUE(eq.equivalent) << "optimize() changed behavior (seed " << seed()
                               << "): " << eq.reason;
  } catch (const ResourceError&) {
    // Wide random multipliers can blow the BDD budget; the lock-step
    // checks above still cover the behavior.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace opiso
