// Differential tests for the multi-lane bit-parallel simulator: for every
// design and lane count, the parallel engine must produce statistics
// BITWISE IDENTICAL to running one scalar Simulator per lane (with the
// lane's RNG stream) and merging the stats — the scalar engine is the
// oracle. This is the contract that lets the sweep runner, the
// isolation loop, and the benchmarks swap engines freely.
#include <gtest/gtest.h>

#include <memory>

#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/activation.hpp"
#include "isolation/transform.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace opiso {
namespace {

/// Probe expressions over the first few 1-bit nets, so probe counters
/// are covered wherever the design has control signals.
std::vector<ExprRef> make_probes(const Netlist& nl, ExprPool& pool, NetVarMap& vars) {
  std::vector<BoolVar> bits;
  for (NetId id : nl.net_ids()) {
    if (nl.net(id).width == 1) bits.push_back(vars.var_of(nl, id));
    if (bits.size() >= 3) break;
  }
  std::vector<ExprRef> probes;
  if (bits.empty()) return probes;
  probes.push_back(pool.var(bits[0]));
  probes.push_back(pool.lnot(pool.var(bits[0])));
  if (bits.size() >= 2) probes.push_back(pool.land(pool.var(bits[0]), pool.var(bits[1])));
  if (bits.size() >= 3) {
    probes.push_back(pool.lor(pool.var(bits[1]), pool.lnot(pool.var(bits[2]))));
  }
  return probes;
}

/// The differential harness: parallel run vs per-lane scalar oracle.
void expect_matches_oracle(const Netlist& nl, unsigned lanes, std::uint64_t cycles,
                           std::uint64_t seed, std::uint64_t warmup = 0) {
  SCOPED_TRACE(testing::Message() << "design=" << nl.name() << " lanes=" << lanes
                                  << " cycles=" << cycles << " seed=" << seed);
  ExprPool pool;
  NetVarMap vars;
  const std::vector<ExprRef> probes = make_probes(nl, pool, vars);

  ParallelSimulator psim(nl, lanes, &pool, &vars);
  psim.enable_bit_stats();
  for (ExprRef p : probes) psim.add_probe(p);
  psim.set_stimulus([seed](unsigned lane) {
    return std::make_unique<UniformStimulus>(sweep_lane_seed(seed, lane));
  });
  if (warmup > 0) psim.warmup(warmup);
  psim.run(cycles);

  ActivityStats oracle;
  for (unsigned l = 0; l < lanes; ++l) {
    Simulator sim(nl, &pool, &vars);
    sim.enable_bit_stats();
    for (ExprRef p : probes) sim.add_probe(p);
    UniformStimulus stim(sweep_lane_seed(seed, l));
    if (warmup > 0) sim.warmup(stim, warmup);
    sim.run(stim, cycles);
    oracle.merge(sim.stats());
    // Final word-level values per lane must match the scalar run too —
    // stats could in principle agree while values diverge.
    for (NetId id : nl.net_ids()) {
      ASSERT_EQ(psim.lane_value(id, l), sim.net_value(id))
          << "net " << nl.net(id).name << " lane " << l;
    }
  }

  const ActivityStats& got = psim.stats();
  EXPECT_EQ(got.cycles, oracle.cycles);
  EXPECT_EQ(got.toggles, oracle.toggles);
  EXPECT_EQ(got.ones, oracle.ones);
  EXPECT_EQ(got.bit_toggles, oracle.bit_toggles);
  EXPECT_EQ(got.probe_true, oracle.probe_true);
  EXPECT_EQ(got.probe_toggles, oracle.probe_toggles);
}

TEST(SimParallel, MatchesScalarOnFig1) {
  const Netlist nl = make_fig1();
  // Lane counts straddling plane-word boundaries: partial first word,
  // exactly one word, first lane of word 1, partial last word, full block.
  for (unsigned lanes : {1u, 5u, 64u, 65u, ParallelSimulator::kMaxLanes - 3,
                         ParallelSimulator::kMaxLanes}) {
    expect_matches_oracle(nl, lanes, 200, 3);
  }
}

TEST(SimParallel, MatchesScalarOnDesign1) {
  expect_matches_oracle(make_design1(), 64, 150, 17);
  // Cross the 64-lane word boundary on a real datapath (slow-path count
  // kept small: the oracle runs one scalar sim per lane).
  expect_matches_oracle(make_design1(), 96, 60, 19);
}

TEST(SimParallel, MatchesScalarOnDesign2) {
  // design2 has an FSM, multipliers and latches — the densest mix.
  expect_matches_oracle(make_design2(), 64, 150, 29);
  expect_matches_oracle(make_design2(8, 3), 7, 100, 31);
}

TEST(SimParallel, MatchesScalarOnParametric) {
  ParametricConfig cfg;
  cfg.lanes = 3;
  cfg.stages = 2;
  expect_matches_oracle(make_parametric_datapath(cfg), 64, 100, 41);
}

TEST(SimParallel, MatchesScalarWithWarmup) {
  expect_matches_oracle(make_fig1(), 64, 100, 5, /*warmup=*/16);
}

TEST(SimParallel, MatchesScalarOnAllRtlDesigns) {
  for (const char* name : {"fig1.rtl", "design1.rtl", "fir4.rtl"}) {
    const Netlist nl =
        parse_rtl_file(std::string(OPISO_DESIGNS_RTL_DIR) + "/" + name);
    for (unsigned lanes : {1u, 5u, 64u}) expect_matches_oracle(nl, lanes, 120, 7);
  }
}

TEST(SimParallel, MatchesScalarOnIsolatedDesigns) {
  // The transformed netlists exercise the Iso* cell kinds.
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    Netlist nl = make_fig1();
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis aa = derive_activation(nl, pool, vars);
    for (CellId id : nl.cell_ids()) {
      if (!cell_kind_is_arith(nl.cell(id).kind)) continue;
      const ExprRef f = aa.activation_of(nl, id);
      if (pool.is_const1(f) || !isolation_is_legal(nl, pool, vars, id, f)) continue;
      (void)isolate_module(nl, pool, vars, id, f, style);
    }
    expect_matches_oracle(nl, 64, 150, 13);
  }
}

// Directed mixed-width operator coverage: the bit-sliced arithmetic has
// per-kind width-extension rules (zero-extended planes, two's-complement
// Sub, mod-2^w Mul, max-width Eq/Lt) that random designs may not hit in
// every combination.
Netlist make_mixed_width_alu(unsigned wa, unsigned wb) {
  Netlist nl("mixed_alu");
  const NetId a = nl.add_input("a", wa);
  const NetId b = nl.add_input("b", wb);
  const NetId s = nl.add_net("s", std::max(wa, wb));
  const NetId d = nl.add_net("d", std::max(wa, wb));
  const NetId m = nl.add_net("m", std::min(64u, wa + wb));
  const NetId e = nl.add_net("e", 1);
  const NetId lt = nl.add_net("lt", 1);
  nl.add_cell(CellKind::Add, "add", {a, b}, s);
  nl.add_cell(CellKind::Sub, "sub", {a, b}, d);
  nl.add_cell(CellKind::Mul, "mul", {a, b}, m);
  nl.add_cell(CellKind::Eq, "eq", {a, b}, e);
  nl.add_cell(CellKind::Lt, "lt", {a, b}, lt);
  for (NetId o : {s, d, m, e, lt}) nl.add_output(nl.net(o).name + "_o", o);
  return nl;
}

TEST(SimParallel, MatchesScalarOnMixedWidthOperators) {
  for (auto [wa, wb] : {std::pair{4u, 4u}, {3u, 8u}, {8u, 3u}, {1u, 12u}, {16u, 5u}}) {
    expect_matches_oracle(make_mixed_width_alu(wa, wb), 64, 200, 1000 + wa * 64 + wb);
  }
}

TEST(SimParallel, ShiftParamEdgeCases) {
  for (std::uint64_t sh : {std::uint64_t{0}, std::uint64_t{3}, std::uint64_t{7}}) {
    Netlist nl("shift");
    const NetId a = nl.add_input("a", 8);
    const NetId l = nl.add_net("l", 8);
    const NetId r = nl.add_net("r", 8);
    nl.add_cell(CellKind::Shl, "shl", {a}, l, sh);
    nl.add_cell(CellKind::Shr, "shr", {a}, r, sh);
    nl.add_output("lo", l);
    nl.add_output("ro", r);
    expect_matches_oracle(nl, 64, 100, 77 + sh);
  }
}

TEST(SimParallel, MatchesScalarWithNonUniformStimulus) {
  // ControlledBitStimulus is not a plain uniform draw, so this pins the
  // per-lane virtual-dispatch path (the SoA fast path handles uniform).
  const Netlist nl = make_design1();
  ParallelSimulator psim(nl, 70);
  psim.set_stimulus([](unsigned lane) {
    return std::make_unique<ControlledBitStimulus>(0.3, 0.2, 1000 + lane);
  });
  psim.run(80);
  ActivityStats oracle;
  for (unsigned l = 0; l < 70; ++l) {
    Simulator sim(nl);
    ControlledBitStimulus stim(0.3, 0.2, 1000 + l);
    sim.run(stim, 80);
    oracle.merge(sim.stats());
  }
  EXPECT_EQ(psim.stats().toggles, oracle.toggles);
  EXPECT_EQ(psim.stats().ones, oracle.ones);
}

TEST(SimParallel, RunRequiresStimulus) {
  const Netlist nl = make_fig1();
  ParallelSimulator sim(nl, 4);
  EXPECT_THROW(sim.run(1), Error);
}

TEST(SimParallel, LaneBoundsChecked) {
  const Netlist nl = make_fig1();
  EXPECT_THROW(ParallelSimulator(nl, 0), Error);
  EXPECT_THROW(ParallelSimulator(nl, ParallelSimulator::kMaxLanes + 1), Error);
  ParallelSimulator sim(nl, 4);
  sim.set_stimulus([](unsigned) { return std::make_unique<UniformStimulus>(1); });
  sim.run(1);
  EXPECT_THROW((void)sim.lane_value(NetId{0}, 4), Error);
}

TEST(SimParallel, ProbesRequirePoolAndVars) {
  const Netlist nl = make_fig1();
  ParallelSimulator sim(nl, 4);
  ExprPool pool;
  EXPECT_THROW((void)sim.add_probe(pool.const1()), Error);
}

TEST(SimParallel, StatsAccumulateAcrossRunsAndReset) {
  const Netlist nl = make_fig1();
  ParallelSimulator sim(nl, 8);
  sim.set_stimulus([](unsigned lane) {
    return std::make_unique<UniformStimulus>(sweep_lane_seed(2, lane));
  });
  sim.run(10);
  EXPECT_EQ(sim.stats().cycles, 80u);
  sim.run(10);
  EXPECT_EQ(sim.stats().cycles, 160u);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().cycles, 0u);
}

}  // namespace
}  // namespace opiso
