// Tests for bit-level activity statistics, the correlated-walk
// stimulus, the bit-level macro model and the gate-level reference
// power measurement.
#include <gtest/gtest.h>

#include "lower/gate_power.hpp"
#include "power/bit_model.hpp"
#include "power/estimator.hpp"
#include "sim/simulator.hpp"

namespace opiso {
namespace {

Netlist passthrough(unsigned width) {
  Netlist nl;
  NetId a = nl.add_input("a", width);
  nl.add_output("o", a);
  return nl;
}

TEST(BitStats, CountsPerBitExactly) {
  Netlist nl = passthrough(4);
  const NetId a = nl.find_net("a");
  Simulator sim(nl);
  sim.enable_bit_stats();
  VectorStimulus stim;
  stim.set("a", {0b0000, 0b0001, 0b0011, 0b0010});
  sim.run(stim, 4);
  // bit0: 0->1->1->0 = 2 toggles; bit1: 0->0->1->1 = 1 toggle.
  EXPECT_NEAR(sim.stats().bit_toggle_rate(a, 0), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(sim.stats().bit_toggle_rate(a, 1), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(sim.stats().bit_toggle_rate(a, 3), 0.0, 1e-12);
  // Word toggle count equals the per-bit sum.
  EXPECT_EQ(sim.stats().toggles[a.value()], 3u);
}

TEST(BitStats, ErrorsWhenNotEnabled) {
  Netlist nl = passthrough(4);
  Simulator sim(nl);
  UniformStimulus stim(1);
  sim.run(stim, 4);
  EXPECT_THROW((void)sim.stats().bit_toggle_rate(nl.find_net("a"), 0), Error);
}

TEST(CorrelatedWalk, MsbsToggleMuchLessThanLsbs) {
  Netlist nl = passthrough(12);
  const NetId a = nl.find_net("a");
  Simulator sim(nl);
  sim.enable_bit_stats();
  CorrelatedWalkStimulus stim(0.02, 3);
  sim.run(stim, 30000);
  const double lsb = sim.stats().bit_toggle_rate(a, 0);
  const double msb = sim.stats().bit_toggle_rate(a, 11);
  EXPECT_GT(lsb, 0.3);          // low bits look like white noise
  EXPECT_LT(msb, lsb * 0.15);   // top bits nearly quiet
}

TEST(CorrelatedWalk, StaysInRangeAndMoves) {
  Netlist nl = passthrough(8);
  const NetId a = nl.find_net("a");
  Simulator sim(nl);
  CorrelatedWalkStimulus stim(0.05, 9);
  std::uint64_t prev = 0;
  bool moved = false;
  for (int i = 0; i < 200; ++i) {
    sim.run(stim, 1);
    const std::uint64_t v = sim.net_value(a);
    EXPECT_LE(v, 0xFFu);
    if (i > 0 && v != prev) moved = true;
    prev = v;
  }
  EXPECT_TRUE(moved);
}

TEST(BitModel, LsbTogglesCostMoreInAdders) {
  BitLevelMacroModel m;
  EXPECT_GT(m.bit_energy_pj(CellKind::Add, 8, 0, 0, 8), m.bit_energy_pj(CellKind::Add, 8, 0, 7, 8));
  EXPECT_GT(m.bit_energy_pj(CellKind::Mul, 16, 0, 0, 8), m.bit_energy_pj(CellKind::Mul, 16, 0, 7, 8));
  // Gates have no positional effect.
  EXPECT_DOUBLE_EQ(m.bit_energy_pj(CellKind::And, 8, 0, 0, 8),
                   m.bit_energy_pj(CellKind::And, 8, 0, 7, 8));
}

TEST(BitModel, AgreesWithWordModelUnderWhiteNoise) {
  // Same adder, uniform stimulus: both estimates within ~35% of each
  // other (they are calibrated to first order, not identically).
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  Simulator sim(nl);
  sim.enable_bit_stats();
  UniformStimulus stim(21);
  sim.run(stim, 8000);
  const CellId adder = nl.net(s).driver;
  const double word = PowerEstimator().cell_power_mw(nl, sim.stats(), adder);
  const double bit = BitLevelPowerEstimator().cell_power_mw(nl, sim.stats(), adder);
  EXPECT_NEAR(bit / word, 1.0, 0.10);
}

TEST(BitModel, CorrelatedDataCostsLessButNotProportionally) {
  Netlist nl;
  NetId a = nl.add_input("a", 10);
  NetId b = nl.add_input("b", 10);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  auto measure = [&](std::unique_ptr<Stimulus> stim, double* word_mw) {
    Simulator sim(nl);
    sim.enable_bit_stats();
    sim.run(*stim, 8000);
    if (word_mw) *word_mw = PowerEstimator().estimate(nl, sim.stats()).total_mw;
    return BitLevelPowerEstimator().total_power_mw(nl, sim.stats());
  };
  const double uniform = measure(std::make_unique<UniformStimulus>(31), nullptr);
  double word_correlated = 0.0;
  const double correlated =
      measure(std::make_unique<CorrelatedWalkStimulus>(0.02, 31), &word_correlated);
  // Correlated data is cheaper...
  EXPECT_LT(correlated, uniform * 0.9);
  // ...but not in proportion to the raw toggle count: the surviving
  // LSB toggles ride the longest carry tails, so the bit-level model
  // charges more than the word-level (uniform-energy) model does.
  EXPECT_GT(correlated, word_correlated);
}

TEST(GateRef, MeasuresLoweredDesign) {
  Netlist nl;
  NetId a = nl.add_input("a", 6);
  NetId b = nl.add_input("b", 6);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  UniformStimulus stim(41);
  const GateRefPower ref = measure_gate_level_power(nl, stim, 2000);
  EXPECT_GT(ref.total_mw, 0.0);
  EXPECT_GT(ref.gate_toggles, 0u);
  EXPECT_GT(ref.gate_cells, 20u);  // a 6-bit ripple adder in gates
}

TEST(GateRef, QuietInputsMeanQuietGates) {
  Netlist nl;
  NetId a = nl.add_input("a", 6);
  NetId b = nl.add_input("b", 6);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  ConstantStimulus stim;
  const GateRefPower ref = measure_gate_level_power(nl, stim, 500);
  EXPECT_EQ(ref.gate_toggles, 0u);
}

TEST(GateRef, TracksMacroModelWithinBand) {
  // The word-level macro model and the gate-level measurement should be
  // the same order of magnitude for an adder under white noise — the
  // calibration premise behind macro power models.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  nl.add_output("o", s);
  Simulator sim(nl);
  UniformStimulus stim1(51);
  sim.run(stim1, 4000);
  const double word = PowerEstimator().cell_power_mw(nl, sim.stats(), nl.net(s).driver);
  UniformStimulus stim2(51);
  const GateRefPower ref = measure_gate_level_power(nl, stim2, 4000);
  EXPECT_GT(word / ref.total_mw, 0.25);
  EXPECT_LT(word / ref.total_mw, 4.0);
}

}  // namespace
}  // namespace opiso
