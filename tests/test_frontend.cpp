// Tests for the RTL language frontend: statement forms, expression
// precedence, register feedback, width rules and error reporting.
#include <gtest/gtest.h>

#include "frontend/rtl_parser.hpp"
#include "isolation/activation.hpp"
#include "sim/simulator.hpp"

namespace opiso {
namespace {

TEST(Rtl, MinimalDesign) {
  const Netlist nl = parse_rtl(
      "design tiny\n"
      "input a:8\n"
      "input b:8\n"
      "wire s = a + b\n"
      "output o = s\n");
  EXPECT_EQ(nl.name(), "tiny");
  EXPECT_TRUE(nl.find_net("s").valid());
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("a", 30);
  stim.set("b", 12);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("s")), 42u);
}

TEST(Rtl, PrecedenceMulOverAdd) {
  const Netlist nl = parse_rtl(
      "input a:4\ninput b:4\ninput c:4\n"
      "wire r = a + b * c\n"
      "output o = r\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("a", 1);
  stim.set("b", 2);
  stim.set("c", 3);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("r")), 7u);
}

TEST(Rtl, ParenthesesOverridePrecedence) {
  const Netlist nl = parse_rtl(
      "input a:4\ninput b:4\ninput c:4\n"
      "wire r = (a + b) * c\n"
      "output o = r\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("a", 1);
  stim.set("b", 2);
  stim.set("c", 3);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("r")), 9u);
}

TEST(Rtl, TernaryIsMux) {
  const Netlist nl = parse_rtl(
      "input s\ninput a:8\ninput b:8\n"
      "wire m = s ? a : b\n"
      "output o = m\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("a", 11);
  stim.set("b", 22);
  stim.set("s", 1);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("m")), 11u);
  stim.set("s", 0);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("m")), 22u);
}

TEST(Rtl, BitwiseAndComparisonOps) {
  const Netlist nl = parse_rtl(
      "input a:4\ninput b:4\n"
      "wire x = ~a & b | a ^ b\n"
      "wire lt = a < b\n"
      "wire eq = a == b\n"
      "wire sh = a << 2\n"
      "output o = x\noutput o2 = lt\noutput o3 = eq\noutput o4 = sh\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("a", 0b0011);
  stim.set("b", 0b0101);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("x")), ((~0b0011u & 0b0101u) | (0b0011u ^ 0b0101u)) & 0xFu);
  EXPECT_EQ(sim.net_value(nl.find_net("lt")), 1u);
  EXPECT_EQ(sim.net_value(nl.find_net("eq")), 0u);
  EXPECT_EQ(sim.net_value(nl.find_net("sh")), 0b1100u);
}

TEST(Rtl, RegisterWithEnableAndFeedback) {
  // Accumulator: the reg references itself in its own D expression.
  const Netlist nl = parse_rtl(
      "design acc\n"
      "input x:8\n"
      "input en\n"
      "reg acc:8 = acc + x when en\n"
      "output o = acc\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("x", 5);
  stim.set("en", 1);
  sim.run(stim, 4);
  EXPECT_EQ(sim.net_value(nl.find_net("acc")), 15u);  // 3 captures visible
}

TEST(Rtl, RegisterWithoutWhenLoadsAlways) {
  const Netlist nl = parse_rtl(
      "input x:8\n"
      "reg r:8 = x\n"
      "output o = r\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("x", 9);
  sim.run(stim, 2);
  EXPECT_EQ(sim.net_value(nl.find_net("r")), 9u);
}

TEST(Rtl, LatchStatement) {
  const Netlist nl = parse_rtl(
      "input d:8\ninput le\n"
      "latch l:8 = d when le\n"
      "output o = l\n");
  const CellId cell = nl.net(nl.find_net("l")).driver;
  EXPECT_EQ(nl.cell(cell).kind, CellKind::Latch);
}

TEST(Rtl, SizedLiteralsAndConst) {
  const Netlist nl = parse_rtl(
      "input a:8\n"
      "const k:8 = 10\n"
      "wire s = a + k + 5:8\n"
      "output o = s\n");
  Simulator sim(nl);
  ConstantStimulus stim;
  stim.set("a", 1);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(nl.find_net("s")), 16u);
}

TEST(Rtl, Fig1CanBeWrittenInRtl) {
  // The paper's running example expressed in the language; activation
  // derivation must find the same functions as the builder version.
  const Netlist nl = parse_rtl(
      "design fig1_rtl\n"
      "input A:8\ninput B:8\ninput C:8\ninput D:8\ninput E:8\n"
      "input S0\ninput S1\ninput S2\ninput G0\ninput G1\n"
      "wire a1 = A + B\n"
      "wire m2 = S2 ? a1 : D\n"
      "reg r1:8 = m2 when G1\n"
      "wire m0 = S0 ? C : a1\n"
      "wire m1 = S1 ? m0 : E\n"
      "wire a0 = m1 + C\n"
      "reg r0:8 = a0 when G0\n"
      "output out0 = r0\noutput out1 = r1\n");
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars);
  const CellId a1 = nl.net(nl.find_net("a1")).driver;
  const std::string as_a1 = activation_to_string(nl, pool, vars, aa.activation_of(nl, a1));
  for (const char* sig : {"S0", "S1", "S2", "G0", "G1"}) {
    EXPECT_NE(as_a1.find(sig), std::string::npos) << as_a1;
  }
}

TEST(Rtl, ErrorsCarryLineNumbers) {
  try {
    (void)parse_rtl("input a:8\nwire b = a +\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Rtl, RejectsUnknownSignal) {
  EXPECT_THROW((void)parse_rtl("wire x = y + z\noutput o = x\n"), ParseError);
}

TEST(Rtl, RejectsRedefinition) {
  EXPECT_THROW((void)parse_rtl("input a:4\ninput a:4\n"), ParseError);
}

TEST(Rtl, RejectsRegWithoutWidth) {
  EXPECT_THROW((void)parse_rtl("input x:8\nreg r = x\n"), ParseError);
}

TEST(Rtl, RejectsWidthMismatchOnWire) {
  EXPECT_THROW((void)parse_rtl("input a:8\ninput b:8\nwire s:4 = a + b\n"), ParseError);
}

TEST(Rtl, RejectsUnsizedLiteralOutsideShift) {
  EXPECT_THROW((void)parse_rtl("input a:8\nwire s = a + 5\n"), ParseError);
}

TEST(Rtl, RejectsNonUnitWhen) {
  EXPECT_THROW((void)parse_rtl("input x:8\ninput e:2\nreg r:8 = x when e\n"), ParseError);
}

TEST(Rtl, RejectsTrailingTokens) {
  EXPECT_THROW((void)parse_rtl("input a:8 junk\n"), ParseError);
}

}  // namespace
}  // namespace opiso
