// Property-based fuzzing across the whole stack: random layered
// datapaths are pushed through every major transform and each one must
// preserve observed behavior (and, where applicable, pass the formal
// checker).
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "isolation/activation.hpp"
#include "isolation/transform.hpp"
#include "netlist/stats.hpp"
#include "lower/gate_level.hpp"
#include "netlist/text_io.hpp"
#include "opt/passes.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/sweep.hpp"
#include "test_util.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

class Fuzz : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] std::uint64_t seed() const {
    return static_cast<std::uint64_t>(GetParam()) * 1337 + 11;
  }
};

TEST_P(Fuzz, GeneratorProducesValidDesigns) {
  const Netlist nl = make_random_datapath(seed());
  EXPECT_NO_THROW(nl.validate());
  EXPECT_GE(nl.primary_outputs().size(), 1u);
}

TEST_P(Fuzz, TextRoundTripIsExact) {
  const Netlist nl = make_random_datapath(seed());
  const std::string text = netlist_to_string(nl);
  const Netlist back = netlist_from_string(text);
  EXPECT_EQ(netlist_to_string(back), text);
  testutil::expect_observably_equivalent(nl, back, seed(), 300);
}

TEST_P(Fuzz, OptimizePreservesBehavior) {
  const Netlist nl = make_random_datapath(seed());
  const Netlist opt = optimize(nl);
  EXPECT_LE(opt.num_cells(), nl.num_cells());
  testutil::expect_observably_equivalent(nl, opt, seed() ^ 0xA5A5, 800);
}

TEST_P(Fuzz, IsolationPreservesBehaviorAllStyles) {
  const Netlist original = make_random_datapath(seed());
  for (IsolationStyle style :
       {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
    Netlist nl = original;
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis aa = derive_activation(nl, pool, vars);
    std::size_t isolated = 0;
    for (CellId id : nl.cell_ids()) {
      if (!cell_kind_is_arith(nl.cell(id).kind)) continue;
      const ExprRef f = aa.activation_of(nl, id);
      if (pool.is_const1(f)) continue;
      if (!isolation_is_legal(nl, pool, vars, id, f)) continue;
      (void)isolate_module(nl, pool, vars, id, f, style);
      ++isolated;
    }
    nl.validate();
    if (isolated == 0) continue;  // some seeds have only always-observed modules
    testutil::expect_observably_equivalent(original, nl, seed() ^ 0xF00D, 1200);
  }
}

TEST_P(Fuzz, FormalCheckerAgreesOnGateStyles) {
  // Keep multiplier bit-widths small enough for BDDs.
  RandomDesignConfig cfg;
  cfg.max_width = 5;
  cfg.levels = 4;
  cfg.cells_per_level = 4;
  const Netlist original = make_random_datapath(seed(), cfg);
  const NetlistStats stats = compute_stats(original);
  if (stats.cells_by_kind[static_cast<size_t>(CellKind::Mul)] > 3) return;

  Netlist nl = original;
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars);
  std::size_t isolated = 0;
  for (CellId id : nl.cell_ids()) {
    if (!cell_kind_is_arith(nl.cell(id).kind)) continue;
    const ExprRef f = aa.activation_of(nl, id);
    if (pool.is_const1(f) || !isolation_is_legal(nl, pool, vars, id, f)) continue;
    (void)isolate_module(nl, pool, vars, id, f, IsolationStyle::And);
    ++isolated;
  }
  if (isolated == 0) return;
  const EquivResult res = check_isolation_equivalence(original, nl);
  EXPECT_TRUE(res.equivalent) << "seed " << seed() << ": " << res.reason;
}

TEST_P(Fuzz, LoweringMatchesWordLevel) {
  RandomDesignConfig cfg;
  cfg.max_width = 6;
  cfg.levels = 4;
  cfg.cells_per_level = 4;
  const Netlist word = make_random_datapath(seed(), cfg);
  const GateLevelResult g = lower_to_gates(word);
  Simulator ws(word);
  Simulator gs(g.netlist);
  UniformStimulus sw(seed());
  UniformStimulus sg_inner(seed());
  BitStimulusAdapter sg(word, sg_inner);
  for (int cycle = 0; cycle < 300; ++cycle) {
    ws.run(sw, 1);
    gs.run(sg, 1);
    for (std::size_t i = 0; i < word.primary_outputs().size(); ++i) {
      const NetId wn = word.cell(word.primary_outputs()[i]).ins[0];
      std::uint64_t v = 0;
      const auto& bits = g.bits_of(wn);
      for (std::size_t b = 0; b < bits.size(); ++b) v |= gs.net_value(bits[b]) << b;
      ASSERT_EQ(ws.net_value(wn), v) << "seed " << seed() << " cycle " << cycle;
    }
  }
}

TEST_P(Fuzz, ParallelSimMatchesScalarOracle) {
  // The 64-lane engine must be bitwise identical to one scalar run per
  // lane on arbitrary generated designs, latches included.
  RandomDesignConfig cfg;
  cfg.allow_latches = (GetParam() % 2) == 1;
  const Netlist nl = make_random_datapath(seed(), cfg);
  const unsigned lanes = 1 + static_cast<unsigned>(seed() % 64);

  ParallelSimulator psim(nl, lanes);
  psim.set_stimulus([this](unsigned lane) {
    return std::make_unique<UniformStimulus>(sweep_lane_seed(seed(), lane));
  });
  psim.run(100);

  ActivityStats oracle;
  for (unsigned l = 0; l < lanes; ++l) {
    Simulator sim(nl);
    UniformStimulus stim(sweep_lane_seed(seed(), l));
    sim.run(stim, 100);
    oracle.merge(sim.stats());
    for (CellId po : nl.primary_outputs()) {
      const NetId net = nl.cell(po).ins[0];
      ASSERT_EQ(psim.lane_value(net, l), sim.net_value(net))
          << "seed " << seed() << " lanes " << lanes << " net " << nl.net(net).name;
    }
  }
  ASSERT_EQ(psim.stats().toggles, oracle.toggles) << "seed " << seed() << " lanes " << lanes;
  ASSERT_EQ(psim.stats().ones, oracle.ones) << "seed " << seed() << " lanes " << lanes;
  ASSERT_EQ(psim.stats().cycles, oracle.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace opiso
