// Tests for the e-graph core: hashcons, union-find, congruence
// rebuild, width discipline, deterministic iteration.
#include <gtest/gtest.h>

#include <sstream>

#include "opt/egraph.hpp"
#include "support/error.hpp"

namespace opiso {
namespace {

ENode leaf(std::uint64_t net, unsigned width) {
  ENode n;
  n.kind = CellKind::PrimaryInput;
  n.param = net;
  n.width = width;
  return n;
}

ENode konst(std::uint64_t value, unsigned width) {
  ENode n;
  n.kind = CellKind::Constant;
  n.param = value;
  n.width = width;
  return n;
}

ENode binop(CellKind kind, EClassId a, EClassId b, unsigned width) {
  ENode n;
  n.kind = kind;
  n.width = width;
  n.children = {a, b};
  return n;
}

TEST(EGraph, HashconsDeduplicates) {
  EGraph g;
  const EClassId a = g.add(leaf(0, 8));
  const EClassId b = g.add(leaf(1, 8));
  const EClassId s1 = g.add(binop(CellKind::Add, a, b, 8));
  const EClassId s2 = g.add(binop(CellKind::Add, a, b, 8));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(g.num_classes(), 3u);
  EXPECT_EQ(g.num_nodes(), 3u);
  // Different operand order is a different node (commutativity is a
  // rewrite rule, not a structural identity).
  const EClassId s3 = g.add(binop(CellKind::Add, b, a, 8));
  EXPECT_NE(s1, s3);
}

TEST(EGraph, MergeTriggersCongruence) {
  EGraph g;
  const EClassId x = g.add(leaf(0, 8));
  const EClassId y = g.add(leaf(1, 8));
  const EClassId z = g.add(leaf(2, 8));
  const EClassId xz = g.add(binop(CellKind::Mul, x, z, 16));
  const EClassId yz = g.add(binop(CellKind::Mul, y, z, 16));
  EXPECT_NE(g.find(xz), g.find(yz));
  // x == y  =>  x*z == y*z by congruence.
  EXPECT_TRUE(g.merge(x, y));
  g.rebuild();
  EXPECT_EQ(g.find(x), g.find(y));
  EXPECT_EQ(g.find(xz), g.find(yz));
}

TEST(EGraph, CongruenceCascades) {
  EGraph g;
  const EClassId a = g.add(leaf(0, 4));
  const EClassId b = g.add(leaf(1, 4));
  const EClassId ab = g.add(binop(CellKind::Add, a, b, 4));
  const EClassId ba = g.add(binop(CellKind::Add, b, a, 4));
  const EClassId top1 = g.add(binop(CellKind::Xor, ab, a, 4));
  const EClassId top2 = g.add(binop(CellKind::Xor, ba, a, 4));
  g.merge(ab, ba);
  g.rebuild();
  // The parents become congruent one level up.
  EXPECT_EQ(g.find(top1), g.find(top2));
}

TEST(EGraph, MergeRejectsWidthMismatch) {
  EGraph g;
  const EClassId narrow = g.add(leaf(0, 4));
  const EClassId wide = g.add(leaf(1, 8));
  EXPECT_THROW((void)g.merge(narrow, wide), Error);
}

TEST(EGraph, SmallerIdIsCanonical) {
  EGraph g;
  const EClassId a = g.add(leaf(0, 8));
  const EClassId b = g.add(leaf(1, 8));
  g.merge(b, a);
  g.rebuild();
  EXPECT_EQ(g.find(a), a);
  EXPECT_EQ(g.find(b), a);
}

TEST(EGraph, ConstValue) {
  EGraph g;
  const EClassId k = g.add(konst(42, 8));
  const EClassId x = g.add(leaf(0, 8));
  ASSERT_TRUE(g.const_value(k).has_value());
  EXPECT_EQ(*g.const_value(k), 42u);
  EXPECT_FALSE(g.const_value(x).has_value());
  // After merging an expression class into the constant class, the
  // value is visible through either id.
  const EClassId e = g.add(binop(CellKind::Add, x, x, 8));
  g.merge(e, k);
  g.rebuild();
  EXPECT_EQ(g.const_value(e), g.const_value(k));
}

TEST(EGraph, NodeWidthMatchesNetlistRules) {
  EXPECT_EQ(EGraph::node_width(CellKind::Add, 0, {4, 8}), 8u);
  EXPECT_EQ(EGraph::node_width(CellKind::Mul, 0, {8, 8}), 16u);
  EXPECT_EQ(EGraph::node_width(CellKind::Mul, 0, {40, 40}), 64u);
  EXPECT_EQ(EGraph::node_width(CellKind::Eq, 0, {8, 8}), 1u);
  EXPECT_EQ(EGraph::node_width(CellKind::Shl, 3, {8}), 8u);
  EXPECT_EQ(EGraph::node_width(CellKind::Mux2, 0, {1, 4, 8}), 8u);
  EXPECT_EQ(EGraph::node_width(CellKind::IsoAnd, 0, {8, 1}), 8u);
}

TEST(EGraph, DeterministicIterationOrder) {
  // Two graphs built by the same insertion sequence report identical
  // class ids and node orders — the substrate of bitwise-identical
  // opiso.rewrite/v1 sections.
  const auto build = [] {
    EGraph g;
    const EClassId a = g.add(leaf(0, 8));
    const EClassId b = g.add(leaf(1, 8));
    const EClassId s = g.add(binop(CellKind::Add, a, b, 8));
    g.add(binop(CellKind::Add, b, a, 8));
    g.add(binop(CellKind::Mul, s, b, 16));
    g.merge(g.add(binop(CellKind::Add, b, a, 8)), s);
    g.rebuild();
    std::ostringstream os;
    for (EClassId c : g.class_ids()) {
      os << c << ":";
      for (const ENode& n : g.nodes(c)) {
        os << static_cast<int>(n.kind) << "/" << n.param << "/" << n.width;
        for (EClassId ch : n.children) os << "," << g.find(ch);
        os << ";";
      }
    }
    return os.str();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace opiso
