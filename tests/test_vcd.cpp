// VCD writer/parser round trip (obs/vcd.hpp): what write_vcd emits must
// come back through parse_vcd with every net and power signal declared,
// deterministic identifier codes, and strictly increasing timestamps —
// and the parser must reject the malformed documents `opiso vcd-check`
// gates on in CI.
#include <gtest/gtest.h>

#include <sstream>

#include "designs/designs.hpp"
#include "obs/vcd.hpp"
#include "power/power_trace.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/simulator.hpp"

namespace opiso {
namespace {

struct Wave {
  CycleTrace trace{1, true};
  PowerTrace power;
};

Wave make_wave(const Netlist& nl, std::uint64_t cycles, std::uint64_t window) {
  Wave w;
  w.trace = CycleTrace(window, /*record_values=*/true);
  Simulator sim(nl);
  UniformStimulus stim(1);
  sim.warmup(stim, 8);
  sim.set_cycle_sink(&w.trace);
  sim.run(stim, cycles);
  w.trace.finish();
  w.power = compute_power_trace(nl, w.trace);
  return w;
}

TEST(Vcd, RoundTripsThroughParser) {
  const Netlist nl = make_design1();
  const Wave w = make_wave(nl, 64, 1);
  std::ostringstream os;
  obs::write_vcd(os, nl, w.trace, &w.power);
  const obs::VcdDocument doc = obs::parse_vcd(os.str());

  // One wire per net plus two real signals per cell.
  EXPECT_EQ(doc.vars.size(), nl.num_nets() + 2 * nl.num_cells());
  EXPECT_EQ(doc.num_timestamps, w.trace.num_samples());
  EXPECT_EQ(doc.first_timestamp, 0u);
  EXPECT_EQ(doc.last_timestamp, (w.trace.num_samples() - 1) * 10);
  EXPECT_GT(doc.num_changes, 0u);
  EXPECT_EQ(doc.timescale, "1ns");

  // Every net appears under its (sanitized) name with its width.
  for (NetId id : nl.net_ids()) {
    const Net& n = nl.net(id);
    const obs::VcdVar* var = doc.find_var(n.name);
    ASSERT_NE(var, nullptr) << n.name;
    EXPECT_EQ(var->width, n.width);
    EXPECT_EQ(var->type, "wire");
  }
  // And every cell got its power pair.
  for (CellId id : nl.cell_ids()) {
    const std::string& name = nl.cell(id).name;
    EXPECT_NE(doc.find_var("e_" + name), nullptr) << name;
    EXPECT_NE(doc.find_var("t_" + name), nullptr) << name;
  }
}

TEST(Vcd, OutputIsDeterministic) {
  const Netlist nl = make_fig1();
  std::ostringstream a;
  std::ostringstream b;
  {
    const Wave w = make_wave(nl, 32, 1);
    obs::write_vcd(a, nl, w.trace, &w.power);
  }
  {
    const Wave w = make_wave(nl, 32, 1);
    obs::write_vcd(b, nl, w.trace, &w.power);
  }
  EXPECT_EQ(a.str(), b.str());
}

TEST(Vcd, WindowedTimestampsAreSampleStarts) {
  const Netlist nl = make_fig1();
  const Wave w = make_wave(nl, 64, 16);
  std::ostringstream os;
  obs::write_vcd(os, nl, w.trace, nullptr);
  const obs::VcdDocument doc = obs::parse_vcd(os.str());
  EXPECT_EQ(doc.num_timestamps, 4u);
  EXPECT_EQ(doc.last_timestamp, 48u * 10);
}

TEST(Vcd, RequiresValueSnapshots) {
  const Netlist nl = make_fig1();
  CycleTrace trace(1, /*record_values=*/false);
  Simulator sim(nl);
  UniformStimulus stim(1);
  sim.set_cycle_sink(&trace);
  sim.run(stim, 4);
  trace.finish();
  std::ostringstream os;
  EXPECT_THROW(obs::write_vcd(os, nl, trace, nullptr), Error);
}

TEST(Vcd, ParserRejectsMalformedDocuments) {
  const char* header =
      "$timescale 1ns $end\n$scope module m $end\n"
      "$var wire 4 ! a $end\n$upscope $end\n$enddefinitions $end\n";
  // Undeclared identifier.
  EXPECT_THROW(obs::parse_vcd(std::string(header) + "#0\nb1010 ?\n"), ParseError);
  // Vector wider than declared.
  EXPECT_THROW(obs::parse_vcd(std::string(header) + "#0\nb10101 !\n"), ParseError);
  // Non-increasing timestamps.
  EXPECT_THROW(obs::parse_vcd(std::string(header) + "#5\nb1010 !\n#5\nb1011 !\n"), ParseError);
  // Value change before any timestamp.
  EXPECT_THROW(obs::parse_vcd(std::string(header) + "b1010 !\n"), ParseError);
  // Truncated declarations.
  EXPECT_THROW(obs::parse_vcd("$timescale 1ns $end\n$scope module m $end\n"), ParseError);
  // Garbage token.
  EXPECT_THROW(obs::parse_vcd(std::string(header) + "#0\nq! \n"), ParseError);
  // The well-formed document parses.
  const obs::VcdDocument ok = obs::parse_vcd(std::string(header) + "#0\nb1010 !\n#10\n0!\n");
  EXPECT_EQ(ok.vars.size(), 1u);
  EXPECT_EQ(ok.num_timestamps, 2u);
  EXPECT_EQ(ok.num_changes, 2u);
}

TEST(Vcd, ParsesScalarSimulatorInlineVcd) {
  // The scalar Simulator's own --vcd output (net-id identifier codes)
  // must pass the same round-trip gate.
  const Netlist nl = make_fig1();
  std::ostringstream os;
  Simulator sim(nl);
  sim.set_vcd(&os);
  UniformStimulus stim(1);
  sim.run(stim, 16);
  const obs::VcdDocument doc = obs::parse_vcd(os.str());
  EXPECT_EQ(doc.vars.size(), nl.num_nets());
  EXPECT_EQ(doc.num_timestamps, 16u);
}

}  // namespace
}  // namespace opiso
