// Batch-means confidence layer: the accumulator's integer cells must be
// bitwise identical for every partition of the lanes x frames work
// across merge calls (this is what makes the opiso.confidence/v1
// section engine/thread/width-invariant), the Student-t quantiles must
// match closed forms, and — the statistical contract — roughly 95% of
// the reported 95% intervals must actually cover the long-run truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <sstream>
#include <vector>

#include "designs/designs.hpp"
#include "obs/confidence.hpp"
#include "power/estimator.hpp"
#include "sim/simulator.hpp"
#include "sim/stimulus.hpp"
#include "sim/sweep.hpp"

namespace opiso {
namespace {

using obs::BatchAccumulator;
using obs::SeriesInterval;

TEST(TQuantile, MatchesClosedFormsAndNormalLimit) {
  // df = 1: t = tan(pi * level / 2).
  EXPECT_NEAR(obs::student_t_quantile(0.95, 1), 12.7062047362, 1e-6);
  EXPECT_NEAR(obs::student_t_quantile(0.50, 1), 1.0, 1e-12);
  // df = 2: closed form sqrt(2/(a(2-a)) - 2), a = 1 - level.
  EXPECT_NEAR(obs::student_t_quantile(0.95, 2), 4.3026527297, 1e-6);
  // Reference values (df >= 3 uses the Cornish-Fisher expansion).
  EXPECT_NEAR(obs::student_t_quantile(0.95, 5), 2.5705818356, 1e-3);
  EXPECT_NEAR(obs::student_t_quantile(0.95, 15), 2.1314495456, 1e-4);
  EXPECT_NEAR(obs::student_t_quantile(0.99, 15), 2.9467128835, 1e-3);
  // Large df converges to the normal quantile.
  EXPECT_NEAR(obs::student_t_quantile(0.95, 100000), 1.9599639845, 1e-4);
  // Monotone: wider level and fewer df both widen the interval.
  EXPECT_GT(obs::student_t_quantile(0.99, 10), obs::student_t_quantile(0.95, 10));
  EXPECT_GT(obs::student_t_quantile(0.95, 3), obs::student_t_quantile(0.95, 30));
}

TEST(BatchAccumulator, WindowsFillAndPartialTrailing) {
  BatchAccumulator acc;
  EXPECT_FALSE(acc.enabled());
  acc.begin_frame();  // no-op while disabled
  acc.configure(2, 4);
  ASSERT_TRUE(acc.enabled());
  for (int f = 0; f < 10; ++f) {
    acc.begin_frame();
    acc.add(0, 1);
    acc.add(1, static_cast<std::uint64_t>(f));
  }
  EXPECT_EQ(acc.num_frames(), 10u);
  EXPECT_EQ(acc.complete_windows(), 2u);  // trailing 2 frames stay partial
  EXPECT_EQ(acc.cell(0, 0), 4u);
  EXPECT_EQ(acc.cell(0, 1), 0u + 1 + 2 + 3);
  EXPECT_EQ(acc.cell(1, 1), 4u + 5 + 6 + 7);
  EXPECT_EQ(acc.cell(2, 0), 2u);  // partial window carried exactly
  acc.reset();
  EXPECT_TRUE(acc.enabled());
  EXPECT_EQ(acc.num_frames(), 0u);
}

/// Deterministic synthetic event count for (frame, lane, series).
std::uint64_t event_count(std::uint64_t frame, unsigned lane, std::size_t series) {
  std::uint64_t h = frame * 0x9E3779B97F4A7C15ull + lane * 0xBF58476D1CE4E5B9ull +
                    series * 0x94D049BB133111EBull + 1;
  h ^= h >> 31;
  return h % 5;  // small counts, like per-frame bit toggles
}

/// One accumulator covering `lanes` (a subset) over `frames` frames.
BatchAccumulator accumulate_lanes(const std::vector<unsigned>& lanes, std::uint64_t frames,
                                  std::size_t num_series, std::uint32_t batch_frames) {
  BatchAccumulator acc;
  acc.configure(num_series, batch_frames);
  for (std::uint64_t f = 0; f < frames; ++f) {
    acc.begin_frame();
    for (unsigned lane : lanes) {
      for (std::size_t s = 0; s < num_series; ++s) acc.add(s, event_count(f, lane, s));
    }
  }
  return acc;
}

void expect_same_cells(const BatchAccumulator& a, const BatchAccumulator& b) {
  ASSERT_EQ(a.num_frames(), b.num_frames());
  ASSERT_EQ(a.complete_windows(), b.complete_windows());
  ASSERT_EQ(a.num_series(), b.num_series());
  const std::uint64_t windows =
      (a.num_frames() + a.batch_frames() - 1) / a.batch_frames();
  for (std::uint64_t w = 0; w < windows; ++w) {
    for (std::size_t s = 0; s < a.num_series(); ++s) {
      ASSERT_EQ(a.cell(w, s), b.cell(w, s)) << "window " << w << " series " << s;
    }
  }
}

// The tentpole invariant, fuzzed: for ANY partition of the lanes into
// groups (one accumulator per group, as per-thread or per-lane engines
// produce) and ANY merge order, the merged cells are bitwise identical
// to the single-pass reference. Integer addition is associative and
// commutative; this test pins that the implementation actually leans
// on nothing else.
TEST(BatchAccumulator, MergeInvariantUnderAnyLanePartitionFuzz) {
  std::mt19937 rng(0xC0FFEEu);  // fixed seed: failures must reproduce
  for (int iter = 0; iter < 60; ++iter) {
    const unsigned num_lanes = 1 + rng() % 8;
    const std::size_t num_series = 1 + rng() % 6;
    const std::uint32_t batch_frames = 1 + rng() % 7;
    const std::uint64_t frames = 1 + rng() % 40;

    std::vector<unsigned> all_lanes(num_lanes);
    std::iota(all_lanes.begin(), all_lanes.end(), 0u);
    const BatchAccumulator ref =
        accumulate_lanes(all_lanes, frames, num_series, batch_frames);

    // Random partition: shuffle the lanes, cut into 1..num_lanes groups.
    std::shuffle(all_lanes.begin(), all_lanes.end(), rng);
    const unsigned groups = 1 + rng() % num_lanes;
    std::vector<BatchAccumulator> parts;
    for (unsigned g = 0; g < groups; ++g) {
      std::vector<unsigned> mine;
      for (unsigned i = g; i < num_lanes; i += groups) mine.push_back(all_lanes[i]);
      if (mine.empty()) continue;
      parts.push_back(accumulate_lanes(mine, frames, num_series, batch_frames));
    }
    // Random merge order — commutativity — folded pairwise in a random
    // tree shape — associativity.
    std::shuffle(parts.begin(), parts.end(), rng);
    while (parts.size() > 1) {
      const std::size_t i = rng() % (parts.size() - 1);
      parts[i].merge(parts[i + 1]);
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    // Merging into an unconfigured accumulator adopts the other side.
    BatchAccumulator from_empty;
    from_empty.merge(parts[0]);
    expect_same_cells(ref, parts[0]);
    expect_same_cells(ref, from_empty);
  }
}

TEST(BatchAccumulator, CopySeriesIsStrideAware) {
  // Source covers a 4-net design, destination a 2-net one: copy_series
  // must index each side under its own num_series stride (this is how
  // incremental replay splices carried-forward clean-net windows).
  BatchAccumulator src = accumulate_lanes({0, 1}, 11, 4, 4);
  BatchAccumulator dst = accumulate_lanes({2}, 7, 2, 4);
  const std::uint64_t dst_s0_w0 = dst.cell(0, 0);
  dst.copy_series(src, 1);
  EXPECT_EQ(dst.num_frames(), 11u);  // adopts the longer frame count
  for (std::uint64_t w = 0; w < 3; ++w) {
    EXPECT_EQ(dst.cell(w, 1), src.cell(w, 1)) << "window " << w;
  }
  EXPECT_EQ(dst.cell(0, 0), dst_s0_w0);  // other series untouched
}

TEST(BatchInterval, DegenerateAndConstantSeries) {
  BatchAccumulator acc;
  acc.configure(1, 4);
  // One complete window: no interval yet.
  for (int f = 0; f < 4; ++f) {
    acc.begin_frame();
    acc.add(0, 2);
  }
  SeriesInterval one = obs::batch_interval(acc, 0, 1, 0.95);
  EXPECT_EQ(one.batches, 1u);
  EXPECT_DOUBLE_EQ(one.halfwidth, 0.0);
  // Constant rate across windows: zero variance, zero half-width.
  for (int f = 0; f < 12; ++f) {
    acc.begin_frame();
    acc.add(0, 2);
  }
  SeriesInterval flat = obs::batch_interval(acc, 0, 1, 0.95);
  EXPECT_EQ(flat.batches, 4u);
  EXPECT_DOUBLE_EQ(flat.mean, 2.0);
  EXPECT_DOUBLE_EQ(flat.halfwidth, 0.0);
}

// End-to-end engine/thread identity on the real pipeline: a plain
// sweep task with confidence enabled must emit byte-identical
// opiso.confidence/v1 and opiso.coverage/v1 sections from the scalar
// engine (one Simulator per lane, stats merged) and the bit-parallel
// plane engine, on one worker thread or eight.
TEST(SweepConfidence, SectionsIdenticalAcrossEnginesAndThreads) {
  auto make_tasks = [](SimEngineKind engine) {
    std::vector<SweepTask> tasks;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      SweepTask t;
      t.design = "design1";
      t.make_design = [] { return make_design1(); };
      t.seed = seed;
      t.cycles = 128;
      t.lanes = 16;
      t.engine = engine;
      t.confidence.enabled = true;
      t.confidence.batch_frames = 2;
      tasks.push_back(t);
    }
    return tasks;
  };
  const std::vector<SweepResult> par1 = SweepRunner(1).run(make_tasks(SimEngineKind::Parallel));
  const std::vector<SweepResult> par8 = SweepRunner(8).run(make_tasks(SimEngineKind::Parallel));
  const std::vector<SweepResult> scal = SweepRunner(4).run(make_tasks(SimEngineKind::Scalar));
  ASSERT_EQ(par1.size(), scal.size());
  for (std::size_t i = 0; i < par1.size(); ++i) {
    EXPECT_FALSE(par1[i].confidence.is_null());
    EXPECT_EQ(par1[i].confidence.dump(), par8[i].confidence.dump());
    EXPECT_EQ(par1[i].confidence.dump(), scal[i].confidence.dump());
    EXPECT_EQ(par1[i].coverage.dump(), scal[i].coverage.dump());
    EXPECT_EQ(par1[i].coverage.dump(), par8[i].coverage.dump());
  }
}

// Statistical calibration: run many short fixed-seed measurements of
// design1, report a 95% CI on the macro-model power each time, and
// check the intervals cover the long-run truth at roughly the nominal
// rate. The run is fully deterministic (fixed seeds), so the observed
// coverage is a constant of the implementation; the [90%, 99%] band
// allows the usual batch-means small-sample optimism without letting a
// broken variance estimate through.
TEST(Calibration, NinetyFivePercentIntervalsCoverLongRunTruth) {
  const Netlist design = make_design1();
  PowerEstimator estimator;
  const std::vector<double> weights = estimator.net_toggle_weights(design);

  // Long-run truth: one scalar run two orders of magnitude longer than
  // the measured runs.
  double truth = 0.0;
  {
    Simulator sim(design);
    UniformStimulus stim(12345);
    sim.warmup(stim, 256);
    sim.run(stim, 1u << 18);
    const ActivityStats& st = sim.stats();
    for (std::size_t n = 0; n < weights.size(); ++n) {
      truth += weights[n] * st.toggle_rate(NetId(static_cast<std::uint32_t>(n)));
    }
  }

  const int kRuns = 100;
  const std::uint64_t kCycles = 4096;
  int covered = 0;
  for (int run = 0; run < kRuns; ++run) {
    Simulator sim(design);
    sim.enable_batch_stats(16);
    UniformStimulus stim(1000 + static_cast<std::uint64_t>(run));
    sim.warmup(stim, 256);
    sim.run(stim, kCycles);
    const SeriesInterval ci =
        obs::weighted_interval(sim.stats().net_batches, weights, /*lanes=*/1, 0.95);
    ASSERT_EQ(ci.batches, kCycles / 16);
    ASSERT_GT(ci.halfwidth, 0.0);
    if (std::abs(ci.mean - truth) <= ci.halfwidth) ++covered;
  }
  EXPECT_GE(covered, 90) << "95% CIs cover the truth only " << covered << "/100 times";
  EXPECT_LE(covered, 99) << "95% CIs are too wide: covered " << covered << "/100 times";
}

}  // namespace
}  // namespace opiso
