// libFuzzer entry point for the RTL parser (optional target, gated by
// -DOPISO_BUILD_FUZZERS=ON with Clang). Contract under fuzzing: every
// input either parses or raises OpisoError — any other exception,
// signal, leak, or sanitizer report is a finding. Seed the run with the
// checked-in corpus:
//
//   ./fuzz_rtl_parser ../tests/corpus/rtl
//
// The in-tree deterministic mutation harness (test_corpus.cpp) covers
// the same contract on every ctest run; this target exists for longer
// coverage-guided sessions.
#include <cstddef>
#include <cstdint>
#include <string>

#include "frontend/rtl_parser.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    (void)opiso::parse_rtl(std::string(reinterpret_cast<const char*>(data), size));
  } catch (const opiso::OpisoError&) {
    // Structured rejection is a pass.
  }
  return 0;
}
