// Sanity tests for the benchmark design generators.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "netlist/stats.hpp"
#include "netlist/traversal.hpp"
#include "sim/simulator.hpp"

namespace opiso {
namespace {

TEST(Designs, Fig1Structure) {
  const Netlist nl = make_fig1(8);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_arith_modules, 2u);
  EXPECT_EQ(s.num_registers, 2u);
  EXPECT_EQ(s.cells_by_kind[static_cast<size_t>(CellKind::Mux2)], 3u);
  const Fig1Nets f = fig1_nets(nl);
  EXPECT_TRUE(f.a1_out.valid());
  EXPECT_EQ(nl.cell(f.a1).kind, CellKind::Add);
}

TEST(Designs, Fig1ComputesTheDatapath) {
  const Netlist nl = make_fig1(8);
  ConstantStimulus stim;
  stim.set("A", 10);
  stim.set("B", 20);
  stim.set("C", 3);
  stim.set("S0", 0);  // m0 passes a1
  stim.set("S1", 1);  // m1 passes m0
  stim.set("S2", 1);  // m2 passes a1
  stim.set("G0", 1);
  stim.set("G1", 1);
  Simulator sim(nl);
  sim.run(stim, 2);
  // r0 captured a0 = (A+B) + C; r1 captured a1 = A+B.
  EXPECT_EQ(sim.net_value(nl.find_net("r0")), 33u);
  EXPECT_EQ(sim.net_value(nl.find_net("r1")), 30u);
}

TEST(Designs, Design1WidthParameter) {
  for (unsigned w : {4u, 8u, 12u}) {
    const Netlist nl = make_design1(w);
    EXPECT_EQ(nl.net(nl.find_net("mul1")).width, 2 * w);
    EXPECT_EQ(nl.net(nl.find_net("add1")).width, w);
    EXPECT_NO_THROW(nl.validate());
  }
}

TEST(Designs, Design1MacSemantics) {
  const Netlist nl = make_design1(8);
  ConstantStimulus stim;
  stim.set("x0", 5);
  stim.set("x1", 6);
  stim.set("x2", 10);
  stim.set("x3", 20);
  stim.set("act", 1);
  Simulator sim(nl);
  sim.run(stim, 2);
  EXPECT_EQ(sim.net_value(nl.find_net("reg_p")), 30u);
  EXPECT_EQ(sim.net_value(nl.find_net("reg_q")), 30u);
  EXPECT_EQ(sim.net_value(nl.find_net("add2")), 60u);
  EXPECT_EQ(sim.net_value(nl.find_net("sub2")), 0u);
}

TEST(Designs, Design2CounterCyclesWithStart) {
  const Netlist nl = make_design2(8, 1);
  ConstantStimulus stim;
  stim.set("start", 1);
  Simulator sim(nl);
  // After the first settle st = 000; the counter walks all 8 phases.
  std::vector<std::uint64_t> states;
  for (int i = 0; i < 10; ++i) {
    sim.run(stim, 1);
    states.push_back(sim.net_value(nl.find_net("st2")) * 4 +
                     sim.net_value(nl.find_net("st1")) * 2 +
                     sim.net_value(nl.find_net("st0")));
  }
  EXPECT_EQ(states, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 0, 1}));
}

TEST(Designs, Design2CounterHoldsWithoutStart) {
  const Netlist nl = make_design2(8, 1);
  ConstantStimulus stim;
  stim.set("start", 0);
  Simulator sim(nl);
  sim.run(stim, 5);
  EXPECT_EQ(sim.net_value(nl.find_net("st0")), 0u);
  EXPECT_EQ(sim.net_value(nl.find_net("st1")), 0u);
}

TEST(Designs, Design2LaneCount) {
  for (unsigned lanes : {1u, 2u, 4u}) {
    const Netlist nl = make_design2(8, lanes);
    const NetlistStats s = compute_stats(nl);
    // Per lane: mul + sum + sub.
    EXPECT_EQ(s.num_arith_modules, 3u * lanes);
    EXPECT_NO_THROW(nl.validate());
  }
}

TEST(Designs, Design2AccumulatorAccumulates) {
  const Netlist nl = make_design2(8, 1);
  ConstantStimulus stim;
  stim.set("start", 1);
  stim.set("l0_a", 3);
  stim.set("l0_b", 4);
  Simulator sim(nl);
  // en_acc = ph1|ph2: with the counter at 0,1,2,3,... the accumulator
  // loads on edges of cycles with st=1 and st=2 (two loads per lap).
  sim.run(stim, 5);  // st: 0,1,2,3,0 -> acc loaded twice with acc+12
  EXPECT_EQ(sim.net_value(nl.find_net("l0_acc")), 24u);
}

TEST(Designs, ParametricScalesLinearly) {
  const Netlist small = make_parametric_datapath({1, 1, 8, true});
  const Netlist big = make_parametric_datapath({4, 4, 8, true});
  EXPECT_GT(big.num_cells(), 10 * small.num_cells());
  const NetlistStats s = compute_stats(big);
  EXPECT_EQ(s.num_arith_modules, 4u * 4u * 3u);  // add+sub+acc per stage
}

TEST(Designs, ParametricValidatesAcrossParameterSpace) {
  for (unsigned lanes : {1u, 3u}) {
    for (unsigned stages : {1u, 4u}) {
      for (bool cross : {false, true}) {
        const Netlist nl = make_parametric_datapath({lanes, stages, 6, cross});
        EXPECT_NO_THROW(nl.validate());
        EXPECT_EQ(nl.primary_outputs().size(), lanes);
      }
    }
  }
}

TEST(Designs, ParametricRejectsBadParameters) {
  EXPECT_THROW((void)make_parametric_datapath({0, 1, 8, true}), Error);
  EXPECT_THROW((void)make_parametric_datapath({1, 1, 1, true}), Error);
  EXPECT_THROW((void)make_parametric_datapath({1, 1, 32, true}), Error);
}

}  // namespace
}  // namespace opiso
