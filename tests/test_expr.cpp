// Tests for the hash-consed expression pool: simplification rules,
// evaluation, support, literal counting, substitution and printing.
#include <gtest/gtest.h>

#include "boolfn/expr.hpp"
#include "support/rng.hpp"

namespace opiso {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprPool p;
  ExprRef v0 = p.var(0);
  ExprRef v1 = p.var(1);
  ExprRef v2 = p.var(2);
};

TEST_F(ExprTest, ConstantsAreFixedPoints) {
  EXPECT_EQ(p.lnot(p.const0()), p.const1());
  EXPECT_EQ(p.lnot(p.const1()), p.const0());
  EXPECT_EQ(p.land(v0, p.const1()), v0);
  EXPECT_EQ(p.land(v0, p.const0()), p.const0());
  EXPECT_EQ(p.lor(v0, p.const0()), v0);
  EXPECT_EQ(p.lor(v0, p.const1()), p.const1());
}

TEST_F(ExprTest, IdempotenceAndComplement) {
  EXPECT_EQ(p.land(v0, v0), v0);
  EXPECT_EQ(p.lor(v0, v0), v0);
  EXPECT_EQ(p.land(v0, p.lnot(v0)), p.const0());
  EXPECT_EQ(p.lor(v0, p.lnot(v0)), p.const1());
  EXPECT_EQ(p.lnot(p.lnot(v0)), v0);
}

TEST_F(ExprTest, HashConsingSharesStructure) {
  ExprRef a = p.land(v0, v1);
  ExprRef b = p.land(v1, v0);  // canonical operand order
  EXPECT_EQ(a, b);
}

TEST_F(ExprTest, EvalMatchesTruthTable) {
  // f = v0·v1 + !v2
  ExprRef f = p.lor(p.land(v0, v1), p.lnot(v2));
  for (int m = 0; m < 8; ++m) {
    const bool b0 = m & 1, b1 = m & 2, b2 = m & 4;
    const bool expect = (b0 && b1) || !b2;
    EXPECT_EQ(p.eval(f, [&](BoolVar v) { return v == 0 ? b0 : v == 1 ? b1 : b2; }), expect);
  }
}

TEST_F(ExprTest, SupportIsSortedAndDeduplicated) {
  ExprRef f = p.lor(p.land(v2, v0), p.land(v0, v1));
  const auto sup = p.support(f);
  ASSERT_EQ(sup.size(), 3u);
  EXPECT_EQ(sup[0], 0u);
  EXPECT_EQ(sup[1], 1u);
  EXPECT_EQ(sup[2], 2u);
  EXPECT_TRUE(p.support(p.const1()).empty());
}

TEST_F(ExprTest, LiteralCountFactoredForm) {
  // S2·G1 + S1·!S0·G0 has 5 literals.
  ExprRef f = p.lor(p.land(v0, v1), p.land(v2, p.land(p.lnot(p.var(3)), p.var(4))));
  EXPECT_EQ(p.literal_count(f), 5u);
  // A negated variable counts as one literal, not two nodes.
  EXPECT_EQ(p.literal_count(p.lnot(v0)), 1u);
  EXPECT_EQ(p.literal_count(p.const1()), 0u);
}

TEST_F(ExprTest, GateCountCountsOperators) {
  ExprRef f = p.lor(p.land(v0, v1), v2);
  EXPECT_EQ(p.gate_count(f), 2u);  // one AND, one OR
  EXPECT_EQ(p.gate_count(v0), 0u);
}

TEST_F(ExprTest, SubstituteReplacesVariable) {
  ExprRef f = p.lor(p.land(v0, v1), v2);
  ExprRef g = p.substitute(f, 0, p.const1());
  EXPECT_EQ(g, p.lor(v1, v2));
  ExprRef h = p.substitute(f, 0, p.const0());
  EXPECT_EQ(h, v2);
}

TEST_F(ExprTest, SubstituteWithExpression) {
  ExprRef f = p.land(v0, v1);
  ExprRef g = p.substitute(f, 0, p.lor(v1, v2));
  // (v1 | v2) & v1 = ... evaluate to check equivalence on all minterms.
  for (int m = 0; m < 8; ++m) {
    const bool b1 = m & 2, b2 = m & 4;
    const bool expect = (b1 || b2) && b1;
    EXPECT_EQ(p.eval(g, [&](BoolVar v) { return v == 1 ? b1 : v == 2 ? b2 : false; }), expect);
  }
}

TEST_F(ExprTest, ToStringReadable) {
  ExprRef f = p.lor(p.land(v1, v0), p.lnot(v2));
  auto name = [](BoolVar v) { return std::string(1, static_cast<char>('a' + v)); };
  const std::string s = p.to_string(f, name);
  EXPECT_NE(s.find('&'), std::string::npos);
  EXPECT_NE(s.find('|'), std::string::npos);
  EXPECT_NE(s.find("!c"), std::string::npos);
}

TEST_F(ExprTest, IteExpandsCorrectly) {
  ExprRef f = p.ite(v0, v1, v2);
  for (int m = 0; m < 8; ++m) {
    const bool b0 = m & 1, b1 = m & 2, b2 = m & 4;
    EXPECT_EQ(p.eval(f, [&](BoolVar v) { return v == 0 ? b0 : v == 1 ? b1 : b2; }),
              b0 ? b1 : b2);
  }
}

// Property: random expressions simplify without changing semantics.
TEST(ExprProperty, RandomBuildsPreserveSemantics) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    ExprPool p;
    constexpr int kVars = 5;
    // Build a random expression tree and, in parallel, a reference
    // evaluator structure (captured truth table over 2^5 minterms).
    std::vector<ExprRef> stack;
    std::vector<std::uint32_t> truth;  // bitmask over 32 minterms
    auto var_truth = [](BoolVar v) {
      std::uint32_t t = 0;
      for (int m = 0; m < 32; ++m) {
        if (m & (1 << v)) t |= (1u << m);
      }
      return t;
    };
    for (int i = 0; i < 12; ++i) {
      const int op = static_cast<int>(rng.next_range(0, 3));
      if (op == 0 || stack.size() < 2) {
        const BoolVar v = static_cast<BoolVar>(rng.next_range(0, kVars - 1));
        stack.push_back(p.var(v));
        truth.push_back(var_truth(v));
      } else if (op == 1) {
        ExprRef a = stack.back();
        stack.pop_back();
        std::uint32_t ta = truth.back();
        truth.pop_back();
        stack.push_back(p.lnot(a));
        truth.push_back(~ta);
      } else {
        ExprRef a = stack.back();
        stack.pop_back();
        ExprRef b = stack.back();
        stack.pop_back();
        std::uint32_t ta = truth.back();
        truth.pop_back();
        std::uint32_t tb = truth.back();
        truth.pop_back();
        if (op == 2) {
          stack.push_back(p.land(a, b));
          truth.push_back(ta & tb);
        } else {
          stack.push_back(p.lor(a, b));
          truth.push_back(ta | tb);
        }
      }
    }
    const ExprRef f = stack.back();
    const std::uint32_t tf = truth.back();
    for (int m = 0; m < 32; ++m) {
      const bool expect = (tf >> m) & 1;
      EXPECT_EQ(p.eval(f, [&](BoolVar v) { return (m >> v) & 1; }), expect) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace opiso
