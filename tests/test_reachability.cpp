// Tests for control-FSM extraction, reachability enumeration and
// don't-care-based activation minimization.
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "designs/designs.hpp"
#include "fsm/reachability.hpp"
#include "isolation/activation.hpp"
#include "isolation/algorithm.hpp"
#include "isolation/transform.hpp"
#include "test_util.hpp"

namespace opiso {
namespace {

TEST(Reachability, ExtractsDesign2Counter) {
  const Netlist nl = make_design2(8, 1);
  const ControlSpace space = explore_control_space(nl);
  ASSERT_TRUE(space.tractable);
  // The 3-bit state counter is the design's only control state.
  EXPECT_EQ(space.state_regs.size(), 3u);
  // `start` is the only control input.
  ASSERT_EQ(space.input_nets.size(), 1u);
  EXPECT_EQ(nl.net(space.input_nets[0]).name, "start");
  // The Gray-free binary counter reaches all 8 states.
  EXPECT_EQ(space.reachable.size(), 8u);
}

TEST(Reachability, CounterWithUnreachableStates) {
  // Cross-coupled swap register (s0 <- s1, s1 <- s0) reset to 00 never
  // leaves 00: three of the four states are unreachable.
  Netlist nl;
  NetId one = nl.add_const("one", 1, 1);
  NetId d0 = nl.add_const("d0", 0, 1);
  NetId s0 = nl.add_reg("s0", d0, one);
  NetId s1 = nl.add_reg("s1", d0, one);
  // swap feedback: s0 <- s1, s1 <- s0
  nl.reconnect_input(nl.net(s0).driver, 0, s1);
  nl.reconnect_input(nl.net(s1).driver, 0, s0);
  nl.add_output("o0", s0);
  nl.add_output("o1", s1);
  const ControlSpace space = explore_control_space(nl);
  ASSERT_TRUE(space.tractable);
  EXPECT_EQ(space.reachable.size(), 1u);  // stuck at 00
}

TEST(Reachability, DataPathStaysOutOfSlice) {
  const Netlist nl = make_design2(8, 1);
  const ControlSpace space = explore_control_space(nl);
  EXPECT_FALSE(space.in_slice(nl.find_net("l0_mul")));
  EXPECT_FALSE(space.in_slice(nl.find_net("l0_acc")));
  EXPECT_TRUE(space.in_slice(nl.find_net("ph1")));
  EXPECT_TRUE(space.in_slice(nl.find_net("en_acc")));
}

TEST(Reachability, BudgetMakesSpaceIntractable) {
  const Netlist nl = make_design2(8, 1);
  const ControlSpace space = explore_control_space(nl, /*max_state_bits=*/1);
  EXPECT_FALSE(space.tractable);
}

TEST(Reachability, CareSetExcludesImpossiblePhasePairs) {
  const Netlist nl = make_design2(8, 1);
  const ControlSpace space = explore_control_space(nl);
  ASSERT_TRUE(space.tractable);
  BddManager mgr;
  NetVarMap vars;
  const NetId ph1 = nl.find_net("ph1");
  const NetId ph2 = nl.find_net("ph2");
  const BddRef care = reachable_care_set(space, nl, mgr, vars, {ph1, ph2});
  // Phases decode distinct states: ph1 & ph2 is unreachable.
  const BddRef both =
      mgr.band(mgr.var(vars.var_of(nl, ph1)), mgr.var(vars.var_of(nl, ph2)));
  EXPECT_TRUE(mgr.is_zero(mgr.band(care, both)));
  // But each phase alone does occur.
  EXPECT_FALSE(mgr.is_zero(mgr.band(care, mgr.var(vars.var_of(nl, ph1)))));
}

TEST(Reachability, RestrictToCareShrinksOneHotFunctions) {
  // f = ph1·!ph2 + ph2·!ph1 over one-hot phases simplifies to ph1 + ph2
  // once the impossible ph1·ph2 valuation is a don't-care.
  const Netlist nl = make_design2(8, 1);
  const ControlSpace space = explore_control_space(nl);
  ExprPool pool;
  NetVarMap vars;
  const ExprRef p1 = pool.var(vars.var_of(nl, nl.find_net("ph1")));
  const ExprRef p2 = pool.var(vars.var_of(nl, nl.find_net("ph2")));
  const ExprRef f =
      pool.lor(pool.land(p1, pool.lnot(p2)), pool.land(p2, pool.lnot(p1)));
  const ExprRef g = minimize_with_reachability(space, nl, pool, vars, f);
  EXPECT_LT(pool.literal_count(g), pool.literal_count(f));
  // Equal on the care set: simulate both over reachable valuations.
  BddManager mgr;
  const BddRef care =
      reachable_care_set(space, nl, mgr, vars, {nl.find_net("ph1"), nl.find_net("ph2")});
  const BddRef diff = mgr.bxor(mgr.from_expr(pool, f), mgr.from_expr(pool, g));
  EXPECT_TRUE(mgr.is_zero(mgr.band(diff, care)));
}

TEST(Reachability, MinimizationLeavesForeignFunctionsAlone) {
  const Netlist nl = make_design1(8);  // no internal FSM: slice has no states
  const ControlSpace space = explore_control_space(nl);
  ExprPool pool;
  NetVarMap vars;
  const ExprRef f = pool.var(vars.var_of(nl, nl.find_net("act")));
  EXPECT_EQ(minimize_with_reachability(space, nl, pool, vars, f), f);
}

TEST(Reachability, MinimizedActivationKeepsDesignEquivalent) {
  // Isolate design2's subtractor with the reachability-minimized
  // activation function; observed outputs must be unchanged.
  const Netlist original = make_design2(8, 1);
  Netlist nl = original;
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis aa = derive_activation(nl, pool, vars);
  const ControlSpace space = explore_control_space(nl);
  ASSERT_TRUE(space.tractable);
  const CellId sub = nl.net(nl.find_net("l0_sub")).driver;
  const ExprRef minimized =
      minimize_with_reachability(space, nl, pool, vars, aa.activation_of(nl, sub));
  (void)isolate_module(nl, pool, vars, sub, minimized, IsolationStyle::And);
  testutil::expect_observably_equivalent(original, nl, 0x5EED, 3000);
}

TEST(Reachability, AlgorithmOptionKeepsEquivalenceAndNeverGrowsLogic) {
  const Netlist original = make_design2(8, 2);
  auto run_with = [&](bool dont_cares) {
    IsolationOptions opt;
    opt.use_reachability_dont_cares = dont_cares;
    opt.sim_cycles = 2000;
    return run_operand_isolation(
        original, [] { return std::make_unique<UniformStimulus>(77); }, opt);
  };
  const IsolationResult plain = run_with(false);
  const IsolationResult dc = run_with(true);
  ASSERT_FALSE(dc.records.empty());
  testutil::expect_observably_equivalent(original, dc.netlist, 0xACE, 3000);
  // Don't-care minimization can only shrink total activation logic.
  auto total_literals = [](const IsolationResult& r) {
    std::size_t n = 0;
    for (const IsolationRecord& rec : r.records) n += rec.literal_count;
    return n;
  };
  EXPECT_LE(total_literals(dc), total_literals(plain));
}

TEST(Reachability, RestrictOperatorContract) {
  // g ∧ care == f ∧ care for random small cases.
  BddManager m;
  const BddRef x0 = m.var(0), x1 = m.var(1), x2 = m.var(2);
  const BddRef f = m.bor(m.band(x0, x1), m.band(m.bnot(x0), x2));
  const BddRef care = m.bor(m.band(x0, m.bnot(x1)), m.band(m.bnot(x0), x1));
  const BddRef g = m.restrict_to_care(f, care);
  EXPECT_TRUE(m.equal(m.band(g, care), m.band(f, care)));
  // Trivial cares.
  EXPECT_TRUE(m.equal(m.restrict_to_care(f, m.one()), f));
}

}  // namespace
}  // namespace opiso
