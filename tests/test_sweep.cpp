// Thread pool and sweep runner: deterministic parallelism. The pool
// must execute every task exactly once and propagate failures; the
// sweep runner must produce results that are bitwise independent of the
// thread count and of the simulation engine.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "designs/designs.hpp"
#include "sim/sweep.hpp"
#include "util/thread_pool.hpp"

namespace opiso {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndReuse) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no tasks expected"; });
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(7, [&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 70);
}

TEST(ThreadPool, PropagatesTheSmallestFailingIndex) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(50, [](std::size_t i) {
      if (i == 7 || i == 31) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  // The pool must survive a failed round.
  std::atomic<int> ok{0};
  pool.parallel_for(3, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 3);
}

std::vector<SweepTask> demo_tasks() {
  std::vector<SweepTask> tasks;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SweepTask t;
    t.design = "design2";
    t.make_design = [] { return make_design2(); };
    t.seed = seed;
    t.cycles = 64;
    t.lanes = 64;
    tasks.push_back(t);
  }
  return tasks;
}

TEST(SweepRunner, ResultsIndependentOfThreadCount) {
  const std::vector<SweepTask> tasks = demo_tasks();
  const std::vector<SweepResult> one = SweepRunner(1).run(tasks);
  const std::vector<SweepResult> eight = SweepRunner(8).run(tasks);
  ASSERT_EQ(one.size(), tasks.size());
  ASSERT_EQ(eight.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(one[i].design, eight[i].design);
    EXPECT_EQ(one[i].seed, eight[i].seed);
    EXPECT_EQ(one[i].toggles, eight[i].toggles);
    EXPECT_EQ(one[i].lane_cycles, eight[i].lane_cycles);
    EXPECT_EQ(one[i].power_mw, eight[i].power_mw);  // bitwise, not approximate
  }
}

TEST(SweepRunner, ScalarEngineIsABitwiseOracle) {
  std::vector<SweepTask> par = demo_tasks();
  std::vector<SweepTask> scal = demo_tasks();
  for (SweepTask& t : scal) t.engine = SimEngineKind::Scalar;
  const std::vector<SweepResult> p = SweepRunner(2).run(par);
  const std::vector<SweepResult> s = SweepRunner(2).run(scal);
  ASSERT_EQ(p.size(), s.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p[i].toggles, s[i].toggles);
    EXPECT_EQ(p[i].lane_cycles, s[i].lane_cycles);
    EXPECT_EQ(p[i].power_mw, s[i].power_mw);
  }
}

TEST(SweepRunner, PartialLaneCountsMatchScalar) {
  SweepTask t;
  t.design = "fig1";
  t.make_design = [] { return make_fig1(); };
  t.cycles = 128;
  t.lanes = 5;  // not a multiple of anything convenient
  SweepTask ts = t;
  ts.engine = SimEngineKind::Scalar;
  const SweepResult p = run_sweep_task(t);
  const SweepResult s = run_sweep_task(ts);
  EXPECT_EQ(p.lane_cycles, 5u * 128u);
  EXPECT_EQ(p.toggles, s.toggles);
  EXPECT_EQ(p.power_mw, s.power_mw);
}

TEST(SweepReport, IsDeterministicAcrossEngines) {
  std::vector<SweepTask> par = demo_tasks();
  std::vector<SweepTask> scal = demo_tasks();
  for (SweepTask& t : scal) t.engine = SimEngineKind::Scalar;
  std::ostringstream a, b;
  build_sweep_report(SweepRunner(4).run(par)).write(a, 1);
  build_sweep_report(SweepRunner(1).run(scal)).write(b, 1);
  EXPECT_EQ(a.str(), b.str());
}

TEST(SweepReport, CarriesSchemaAndTotals) {
  const obs::JsonValue doc = build_sweep_report(SweepRunner(2).run(demo_tasks()));
  EXPECT_EQ(doc.at("schema").as_string(), "opiso.sweep/v1");
  EXPECT_EQ(doc.at("totals").at("tasks").as_number(), 3.0);
  EXPECT_EQ(doc.at("tasks").at(0).at("design").as_string(), "design2");
  EXPECT_GT(doc.at("totals").at("toggles").as_number(), 0.0);
}

TEST(SweepLaneSeed, StreamsAreDistinct) {
  EXPECT_NE(sweep_lane_seed(1, 0), sweep_lane_seed(1, 1));
  EXPECT_NE(sweep_lane_seed(1, 0), sweep_lane_seed(2, 0));
}

}  // namespace
}  // namespace opiso
