// Thread pool and sweep runner: deterministic parallelism. The pool
// must execute every task exactly once and propagate failures; the
// sweep runner must produce results that are bitwise independent of the
// thread count and of the simulation engine.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "designs/designs.hpp"
#include "obs/metrics.hpp"
#include "sim/sweep.hpp"
#include "util/thread_pool.hpp"

namespace opiso {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndReuse) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no tasks expected"; });
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(7, [&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 70);
}

TEST(ThreadPool, PropagatesTheSmallestFailingIndex) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(50, [](std::size_t i) {
      if (i == 7 || i == 31) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");
  }
  // The pool must survive a failed round.
  std::atomic<int> ok{0};
  pool.parallel_for(3, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 3);
}

std::vector<SweepTask> demo_tasks() {
  std::vector<SweepTask> tasks;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SweepTask t;
    t.design = "design2";
    t.make_design = [] { return make_design2(); };
    t.seed = seed;
    t.cycles = 64;
    t.lanes = 64;
    tasks.push_back(t);
  }
  return tasks;
}

TEST(SweepRunner, ResultsIndependentOfThreadCount) {
  const std::vector<SweepTask> tasks = demo_tasks();
  const std::vector<SweepResult> one = SweepRunner(1).run(tasks);
  const std::vector<SweepResult> eight = SweepRunner(8).run(tasks);
  ASSERT_EQ(one.size(), tasks.size());
  ASSERT_EQ(eight.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(one[i].design, eight[i].design);
    EXPECT_EQ(one[i].seed, eight[i].seed);
    EXPECT_EQ(one[i].toggles, eight[i].toggles);
    EXPECT_EQ(one[i].lane_cycles, eight[i].lane_cycles);
    EXPECT_EQ(one[i].power_mw, eight[i].power_mw);  // bitwise, not approximate
  }
}

TEST(SweepRunner, ScalarEngineIsABitwiseOracle) {
  std::vector<SweepTask> par = demo_tasks();
  std::vector<SweepTask> scal = demo_tasks();
  for (SweepTask& t : scal) t.engine = SimEngineKind::Scalar;
  const std::vector<SweepResult> p = SweepRunner(2).run(par);
  const std::vector<SweepResult> s = SweepRunner(2).run(scal);
  ASSERT_EQ(p.size(), s.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p[i].toggles, s[i].toggles);
    EXPECT_EQ(p[i].lane_cycles, s[i].lane_cycles);
    EXPECT_EQ(p[i].power_mw, s[i].power_mw);
  }
}

TEST(SweepRunner, PartialLaneCountsMatchScalar) {
  SweepTask t;
  t.design = "fig1";
  t.make_design = [] { return make_fig1(); };
  t.cycles = 128;
  t.lanes = 5;  // not a multiple of anything convenient
  SweepTask ts = t;
  ts.engine = SimEngineKind::Scalar;
  const SweepResult p = run_sweep_task(t);
  const SweepResult s = run_sweep_task(ts);
  EXPECT_EQ(p.lane_cycles, 5u * 128u);
  EXPECT_EQ(p.toggles, s.toggles);
  EXPECT_EQ(p.power_mw, s.power_mw);
}

TEST(SweepReport, IsDeterministicAcrossEngines) {
  std::vector<SweepTask> par = demo_tasks();
  std::vector<SweepTask> scal = demo_tasks();
  for (SweepTask& t : scal) t.engine = SimEngineKind::Scalar;
  std::ostringstream a, b;
  build_sweep_report(SweepRunner(4).run(par)).write(a, 1);
  build_sweep_report(SweepRunner(1).run(scal)).write(b, 1);
  EXPECT_EQ(a.str(), b.str());
}

TEST(SweepReport, CarriesSchemaAndTotals) {
  const obs::JsonValue doc = build_sweep_report(SweepRunner(2).run(demo_tasks()));
  EXPECT_EQ(doc.at("schema").as_string(), "opiso.sweep/v1");
  EXPECT_EQ(doc.at("totals").at("tasks").as_number(), 3.0);
  EXPECT_EQ(doc.at("tasks").at(0).at("design").as_string(), "design2");
  EXPECT_GT(doc.at("totals").at("toggles").as_number(), 0.0);
}

TEST(SweepLaneSeed, StreamsAreDistinct) {
  EXPECT_NE(sweep_lane_seed(1, 0), sweep_lane_seed(1, 1));
  EXPECT_NE(sweep_lane_seed(1, 0), sweep_lane_seed(2, 0));
}

// ---------------------------------------------------- robustness layer

TEST(ThreadPool, CountsTaskFailuresInMetrics) {
  obs::metrics().counter("pool.task_failures").reset();
  ThreadPool pool(4);
  try {
    pool.parallel_for(20, [](std::size_t i) {
      if (i % 5 == 0) throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 0");
  }
  // Every throwing task is counted, not just the propagated first one.
  EXPECT_EQ(obs::metrics().counter("pool.task_failures").value(), 4u);
}

TEST(ThreadPool, SurvivesFailureStorms) {
  // Regression for the generation-handoff race: a worker still draining
  // one generation while the caller starts the next could claim
  // next-generation indices or corrupt the busy histogram. Hammer the
  // pool with quick alternating throwing/clean generations; correctness
  // here is "every task of every generation runs exactly once and the
  // pool never deadlocks" (the ctest TIMEOUT backs the latter).
  ThreadPool pool(8);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::atomic<int>> hits(17);
    const bool throwing = round % 2 == 0;
    try {
      pool.parallel_for(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (throwing && i % 7 == 3) throw std::runtime_error("x");
      });
      EXPECT_FALSE(throwing);
    } catch (const std::runtime_error&) {
      EXPECT_TRUE(throwing);
    }
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(SweepRunner, RunStillPropagatesWithoutIsolation) {
  std::vector<SweepTask> tasks = demo_tasks();
  tasks[1].make_design = []() -> Netlist { throw SimError("deliberate"); };
  EXPECT_THROW((void)SweepRunner(2).run(tasks), SimError);
}

TEST(SweepRunner, IsolatedSweepRecordsFailureAndCompletes) {
  std::vector<SweepTask> tasks = demo_tasks();
  tasks[1].make_design = []() -> Netlist { throw SimError("deliberate sabotage"); };
  const SweepOutcome out = SweepRunner(4).run_isolated(tasks);
  EXPECT_FALSE(out.ok());
  ASSERT_EQ(out.failures.size(), 1u);
  const SweepTaskFailure& f = out.failures[0];
  EXPECT_EQ(f.task_index, 1u);
  EXPECT_EQ(f.design, "design2");
  EXPECT_EQ(f.seed, 2u);
  EXPECT_EQ(f.code, "sim.misuse");
  EXPECT_NE(f.message.find("deliberate sabotage"), std::string::npos);
  // The healthy tasks still produced full results.
  EXPECT_FALSE(out.failed(0));
  EXPECT_FALSE(out.failed(2));
  EXPECT_GT(out.results[0].toggles, 0u);
  EXPECT_GT(out.results[2].toggles, 0u);
  // And they match a clean failure-free run bit for bit.
  const std::vector<SweepResult> clean = SweepRunner(1).run(demo_tasks());
  EXPECT_EQ(out.results[0].toggles, clean[0].toggles);
  EXPECT_EQ(out.results[2].toggles, clean[2].toggles);
  EXPECT_EQ(out.results[0].power_mw, clean[0].power_mw);
}

TEST(SweepRunner, IsolatedReportIdenticalAcrossThreadCounts) {
  // The acceptance contract: a sweep with an injected failing task
  // still emits a complete report with the opiso.task_failures/v1
  // section, bitwise identical for any thread count.
  const auto sabotaged = [] {
    std::vector<SweepTask> tasks = demo_tasks();
    tasks[1].make_design = []() -> Netlist {
      throw ParseError(ErrCode::ParseSyntax, "injected failure");
    };
    return tasks;
  };
  std::ostringstream one, eight;
  build_sweep_report(SweepRunner(1).run_isolated(sabotaged())).write(one, 1);
  build_sweep_report(SweepRunner(8).run_isolated(sabotaged())).write(eight, 1);
  EXPECT_EQ(one.str(), eight.str());
  const obs::JsonValue doc = obs::JsonValue::parse(one.str());
  EXPECT_EQ(doc.at("task_failures").at("schema").as_string(), "opiso.task_failures/v1");
  ASSERT_EQ(doc.at("task_failures").at("failures").size(), 1u);
  const obs::JsonValue& entry = doc.at("task_failures").at("failures").at(0);
  EXPECT_EQ(entry.at("task_index").as_number(), 1.0);
  EXPECT_EQ(entry.at("code").as_string(), "parse.syntax");
  EXPECT_EQ(entry.at("design").as_string(), "design2");
  // The failed slot is excluded from tasks/totals.
  EXPECT_EQ(doc.at("tasks").size(), 2u);
  EXPECT_EQ(doc.at("totals").at("tasks").as_number(), 2.0);
  EXPECT_EQ(doc.at("totals").at("failed_tasks").as_number(), 1.0);
}

TEST(SweepRunner, CleanReportCarriesEmptyFailureSection) {
  // Always present, so report consumers can key on the section without
  // probing and clean/failed reports share one shape.
  const obs::JsonValue doc = build_sweep_report(SweepRunner(2).run_isolated(demo_tasks()));
  EXPECT_EQ(doc.at("task_failures").at("schema").as_string(), "opiso.task_failures/v1");
  EXPECT_EQ(doc.at("task_failures").at("failures").size(), 0u);
  EXPECT_EQ(doc.at("totals").at("failed_tasks").as_number(), 0.0);
}

TEST(SweepBudgetTest, StimulusBudgetFailsUpFrontAndDeterministically) {
  std::vector<SweepTask> tasks = demo_tasks();  // 64 cycles x 64 lanes each
  SweepRunOptions options;
  options.budget.task_max_lane_cycles = 64 * 64 - 1;
  const SweepOutcome out = SweepRunner(3).run_isolated(tasks, options);
  ASSERT_EQ(out.failures.size(), tasks.size());
  for (const SweepTaskFailure& f : out.failures) {
    EXPECT_EQ(f.code, "resource.stimulus");
    EXPECT_EQ(f.elapsed_lane_cycles, 0u) << "must fail before simulating";
  }
  // One lane-cycle more of budget and everything passes.
  options.budget.task_max_lane_cycles = 64 * 64;
  EXPECT_TRUE(SweepRunner(3).run_isolated(tasks, options).ok());
}

TEST(SweepBudgetTest, OverflowProofStimulusCheck) {
  SweepTask t;
  t.design = "fig1";
  t.make_design = [] { return make_fig1(); };
  t.cycles = ~std::uint64_t{0} / 2;  // cycles * lanes would overflow
  t.lanes = 64;
  SweepBudget budget;
  budget.task_max_lane_cycles = 1000;
  try {
    (void)run_sweep_task(t, budget);
    FAIL() << "expected a stimulus-budget error";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrCode::ResourceStimulus);
  }
}

TEST(SweepBudgetTest, WallClockBudgetStopsRunawayTask) {
  SweepTask t;
  t.design = "design2";
  t.make_design = [] { return make_design2(); };
  t.cycles = 1u << 30;  // would take minutes unbudgeted
  t.lanes = 64;
  SweepBudget budget;
  budget.task_wall_clock_sec = 0.05;
  try {
    (void)run_sweep_task(t, budget);
    FAIL() << "expected a wall-clock error";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.code(), ErrCode::ResourceWallClock);
  }
  // Under fault isolation the same budget produces a recorded failure
  // with deterministic identity fields (elapsed varies with load).
  SweepRunOptions options;
  options.budget = budget;
  const SweepOutcome out = SweepRunner(2).run_isolated({t}, options);
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_EQ(out.failures[0].code, "resource.wall-clock");
  EXPECT_EQ(out.failures[0].design, "design2");
}

TEST(SweepRunner, FailFastSkipsRemainingTasks) {
  // Single-threaded so the schedule is sequential and the skip set is
  // predictable: task 0 fails, tasks 1 and 2 must be skipped.
  std::vector<SweepTask> tasks = demo_tasks();
  tasks[0].make_design = []() -> Netlist { throw SimError("first fails"); };
  SweepRunOptions options;
  options.fail_fast = true;
  const SweepOutcome out = SweepRunner(1).run_isolated(tasks, options);
  ASSERT_EQ(out.failures.size(), 3u);
  EXPECT_EQ(out.failures[0].code, "sim.misuse");
  EXPECT_EQ(out.failures[1].code, "task.skipped");
  EXPECT_EQ(out.failures[2].code, "task.skipped");
  // Without fail-fast the healthy tasks complete.
  const SweepOutcome patient = SweepRunner(1).run_isolated(tasks);
  EXPECT_EQ(patient.failures.size(), 1u);
}

}  // namespace
}  // namespace opiso
