// Per-cycle energy waveform (power/power_trace.hpp). The load-bearing
// invariant: the waveform INTEGRATES EXACTLY to the aggregate numbers —
// per cell and in total, in integer femtojoules, for any window size and
// either engine — and re-estimating power from the trace's rebuilt
// ActivityStats reproduces PowerEstimator's double mW bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "designs/designs.hpp"
#include "power/power_trace.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace opiso {
namespace {

struct Captured {
  CycleTrace trace{1};
  ActivityStats stats;
};

Captured capture(const Netlist& nl, std::uint64_t window, bool parallel) {
  Captured c;
  c.trace = CycleTrace(window);
  if (parallel) {
    ParallelSimulator sim(nl, 8);
    sim.set_stimulus([](unsigned lane) {
      return std::make_unique<UniformStimulus>(sweep_lane_seed(1, lane));
    });
    sim.warmup(4);
    sim.set_cycle_sink(&c.trace);
    sim.run(64);
    c.stats = sim.stats();
  } else {
    Simulator sim(nl);
    UniformStimulus stim(1);
    sim.warmup(stim, 32);
    sim.set_cycle_sink(&c.trace);
    sim.run(stim, 512);
    c.stats = sim.stats();
  }
  c.trace.finish();
  return c;
}

void expect_integral_equals_aggregate(const Netlist& nl, const Captured& c) {
  const MacroPowerModel model{};
  const PowerTrace pt = compute_power_trace(nl, c.trace, model);

  // Per cell: Σ_samples cell_fj[c][s] == cell_total_fj[c] ==
  // cell_energy_fj(aggregate stats), exactly.
  std::uint64_t total = 0;
  for (CellId id : nl.cell_ids()) {
    const std::size_t ci = id.value();
    std::uint64_t sum = 0;
    for (std::uint64_t e : pt.cell_fj[ci]) sum += e;
    EXPECT_EQ(sum, pt.cell_total_fj[ci]) << "cell " << nl.cell(id).name;
    EXPECT_EQ(sum, cell_energy_fj(nl, c.stats, id, model)) << "cell " << nl.cell(id).name;
    total += sum;
  }
  EXPECT_EQ(total, pt.total_energy_fj);

  // Per sample: category energies partition the total.
  for (std::size_t s = 0; s < pt.num_samples(); ++s) {
    EXPECT_EQ(pt.arith_fj[s] + pt.steering_fj[s] + pt.sequential_fj[s] + pt.isolation_fj[s],
              pt.total_fj[s])
        << "sample " << s;
  }

  // Double bridge: the trace's rebuilt stats reproduce the estimator's
  // total bit-for-bit (same code path, same inputs)...
  const PowerEstimator est(model);
  const double agg_mw = est.estimate(nl, c.stats).total_mw;
  const double trace_mw = est.estimate(nl, c.trace.to_activity_stats()).total_mw;
  EXPECT_EQ(trace_mw, agg_mw);
  // ...and the direct integer-integral conversion agrees to < 1e-9
  // relative (documented tolerance of the fJ→mW bridge).
  EXPECT_NEAR(pt.avg_power_mw(), agg_mw, std::abs(agg_mw) * 1e-9);
}

TEST(PowerTrace, IntegralEqualsAggregateScalar) {
  for (const Netlist& nl : {make_fig1(), make_design1(), make_design2()}) {
    for (std::uint64_t window : {1u, 7u, 512u}) {
      SCOPED_TRACE(testing::Message() << nl.name() << " window=" << window);
      expect_integral_equals_aggregate(nl, capture(nl, window, /*parallel=*/false));
    }
  }
}

TEST(PowerTrace, IntegralEqualsAggregateParallel) {
  for (const Netlist& nl : {make_fig1(), make_design1(), make_design2()}) {
    SCOPED_TRACE(nl.name());
    expect_integral_equals_aggregate(nl, capture(nl, 4, /*parallel=*/true));
  }
}

TEST(PowerTrace, CoefficientsAreExactIntegerFemtojoules) {
  // The invariant only holds because every macro-model coefficient is an
  // exact multiple of 1 fJ: llround must land on a value that converts
  // back to the double coefficient exactly.
  const MacroPowerModel model{};
  for (int k = 0; k < kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    const int ports = cell_kind_num_inputs(kind);
    for (unsigned width : {1u, 8u, 16u, 32u, 64u}) {
      // fJ value × 1e-3 must recover the pJ coefficient to far better
      // than the 0.0005 pJ llround decision margin — i.e. the double
      // coefficient sits on the 1 fJ grid, not near a rounding boundary.
      const std::int64_t st = static_energy_fj(model, kind, width);
      EXPECT_NEAR(static_cast<double>(st), model.static_energy_pj(kind, width) * 1000.0, 1e-6)
          << cell_kind_name(kind) << " w=" << width;
      for (int p = 0; p < ports; ++p) {
        const std::int64_t e = energy_per_toggle_fj(model, kind, width, p);
        EXPECT_NEAR(static_cast<double>(e), model.energy_per_toggle_pj(kind, width, p) * 1000.0,
                    1e-6)
            << cell_kind_name(kind) << " w=" << width << " port=" << p;
      }
    }
  }
}

TEST(PowerTrace, SamplePowerAveragesToTotal) {
  const Netlist nl = make_design1();
  const Captured c = capture(nl, 1, false);
  const PowerTrace pt = compute_power_trace(nl, c.trace);
  ASSERT_GT(pt.num_samples(), 0u);
  double sum = 0.0;
  for (std::size_t s = 0; s < pt.num_samples(); ++s) sum += pt.sample_power_mw(s);
  EXPECT_NEAR(sum / static_cast<double>(pt.num_samples()), pt.avg_power_mw(),
              pt.avg_power_mw() * 1e-9);
}

TEST(PowerTrace, RejectsForeignTrace) {
  const Netlist nl1 = make_fig1();
  const Netlist nl2 = make_design1();
  const Captured c = capture(nl1, 1, false);
  EXPECT_THROW((void)compute_power_trace(nl2, c.trace), Error);
}

}  // namespace
}  // namespace opiso
