// Tests for sum-of-products extraction and distance-1 merging.
#include <gtest/gtest.h>

#include "boolfn/sop.hpp"
#include "support/rng.hpp"

namespace opiso {
namespace {

bool cover_eval(const std::vector<Cube>& cover, int minterm) {
  for (const Cube& c : cover) {
    bool ok = true;
    for (const auto& [v, pol] : c) {
      if (static_cast<bool>((minterm >> v) & 1) != pol) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

TEST(Sop, ExtractConstants) {
  BddManager m;
  EXPECT_TRUE(extract_cover(m, m.zero()).empty());
  const auto one = extract_cover(m, m.one());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0].empty());
}

TEST(Sop, ExtractSimpleFunction) {
  BddManager m;
  BddRef f = m.bor(m.band(m.var(0), m.var(1)), m.bnot(m.var(2)));
  const auto cover = merge_cover(extract_cover(m, f));
  for (int mt = 0; mt < 8; ++mt) {
    EXPECT_EQ(cover_eval(cover, mt), m.eval(f, [&](BoolVar v) { return (mt >> v) & 1; }));
  }
}

TEST(Sop, MergeCollapsesAdjacentCubes) {
  // x·y + x·!y should merge to x.
  std::vector<Cube> cover{{{0, true}, {1, true}}, {{0, true}, {1, false}}};
  const auto merged = merge_cover(cover);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Cube{{0, true}}));
}

TEST(Sop, MergeRemovesSubsumed) {
  // x + x·y — the second cube is subsumed.
  std::vector<Cube> cover{{{0, true}}, {{0, true}, {1, true}}};
  const auto merged = merge_cover(cover);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (Cube{{0, true}}));
}

TEST(Sop, CoverLiteralCount) {
  std::vector<Cube> cover{{{0, true}, {1, false}}, {{2, true}}};
  EXPECT_EQ(cover_literal_count(cover), 3u);
}

TEST(Sop, CoverToString) {
  std::vector<Cube> cover{{{0, true}, {1, false}}};
  const std::string s =
      cover_to_string(cover, [](BoolVar v) { return std::string(1, static_cast<char>('a' + v)); });
  EXPECT_EQ(s, "a&!b");
  EXPECT_EQ(cover_to_string({}, nullptr), "0");
}

TEST(Sop, CoverToExprEquivalent) {
  BddManager m;
  ExprPool pool;
  BddRef f = m.bxor(m.var(0), m.var(1));
  const auto cover = extract_cover(m, f);
  const ExprRef e = cover_to_expr(pool, cover);
  for (int mt = 0; mt < 4; ++mt) {
    auto assign = [&](BoolVar v) { return (mt >> v) & 1; };
    EXPECT_EQ(pool.eval(e, assign), m.eval(f, assign));
  }
}

// Property: merging never changes the function; XOR-like functions keep
// their full cube count while unate functions shrink.
class SopRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SopRandomProperty, MergePreservesFunction) {
  Rng rng(GetParam() * 31 + 7);
  BddManager m;
  constexpr int kVars = 5;
  // Random function from random minterm set.
  BddRef f = m.zero();
  for (int i = 0; i < 8; ++i) {
    const int mt = static_cast<int>(rng.next_range(0, (1 << kVars) - 1));
    BddRef cube = m.one();
    for (int v = 0; v < kVars; ++v) {
      cube = m.band(cube, (mt >> v) & 1 ? m.var(static_cast<BoolVar>(v))
                                        : m.nvar(static_cast<BoolVar>(v)));
    }
    f = m.bor(f, cube);
  }
  const auto raw = extract_cover(m, f);
  const auto merged = merge_cover(raw);
  EXPECT_LE(merged.size(), raw.size());
  for (int mt = 0; mt < (1 << kVars); ++mt) {
    auto assign = [&](BoolVar v) { return (mt >> v) & 1; };
    EXPECT_EQ(cover_eval(merged, mt), m.eval(f, assign)) << "minterm " << mt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SopRandomProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace opiso
