// Tests for static timing analysis: hand-computed arrivals, slack
// bookkeeping, and the effect of inserting isolation cells.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "timing/sta.hpp"

namespace opiso {
namespace {

TEST(Sta, SingleAdderArrival) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  nl.add_output("o", sum);

  DelayModel dm;
  const TimingReport rep = run_sta(nl, dm);
  // arrival(a) = load only (1 fanout); arrival(sum) = arrival(in) +
  // adder delay + load of 1 fanout pin.
  const double arr_in = dm.load_per_fanout_ns;
  const double expected =
      arr_in + dm.cell_delay(CellKind::Add, 8) + dm.load_per_fanout_ns;
  EXPECT_NEAR(rep.net_arrival(sum), expected, 1e-12);
  EXPECT_NEAR(rep.critical_path_delay, expected, 1e-12);
  // Slack at the PO pin = period - arrival.
  EXPECT_NEAR(rep.net_slack(sum), dm.clock_period_ns - expected, 1e-12);
}

TEST(Sta, RegisterLaunchAndCapture) {
  Netlist nl;
  NetId d = nl.add_input("d", 8);
  NetId en = nl.add_input("en", 1);
  NetId q = nl.add_reg("q", d, en);
  NetId sum = nl.add_binop(CellKind::Add, "sum", q, q);
  NetId q2 = nl.add_reg("q2", sum, en);
  nl.add_output("o", q2);

  DelayModel dm;
  const TimingReport rep = run_sta(nl, dm);
  // Q launches at clk-to-q (+ load of its 2 pins on the adder).
  EXPECT_NEAR(rep.net_arrival(q), dm.clk_to_q_ns + 2 * dm.load_per_fanout_ns, 1e-12);
  // D of q2 must meet period - setup.
  EXPECT_NEAR(rep.required[sum.value()], dm.clock_period_ns - dm.setup_ns, 1e-12);
}

TEST(Sta, SlackConstantAlongASinglePath) {
  // Classic STA property: all nets on one critical path share its slack.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId s2 = nl.add_binop(CellKind::Add, "s2", s1, b);
  NetId s3 = nl.add_binop(CellKind::Add, "s3", s2, b);
  nl.add_output("o3", s3);
  const TimingReport rep = run_sta(nl, DelayModel{});
  EXPECT_NEAR(rep.net_slack(s3), rep.net_slack(s1), 1e-12);
  EXPECT_NEAR(rep.worst_slack, rep.net_slack(s3), 1e-12);
}

TEST(Sta, DeeperDisjointConeHasSmallerSlack) {
  // Two independent cones: the 3-adder chain has less slack than the
  // single adder feeding its own output.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId c = nl.add_input("c", 8);
  NetId d = nl.add_input("d", 8);
  NetId shallow = nl.add_binop(CellKind::Add, "shallow", a, b);
  NetId t1 = nl.add_binop(CellKind::Add, "t1", c, d);
  NetId t2 = nl.add_binop(CellKind::Add, "t2", t1, d);
  NetId deep = nl.add_binop(CellKind::Add, "deep", t2, d);
  nl.add_output("o1", shallow);
  nl.add_output("o2", deep);
  const TimingReport rep = run_sta(nl, DelayModel{});
  EXPECT_LT(rep.net_slack(deep), rep.net_slack(shallow));
  EXPECT_NEAR(rep.worst_slack, rep.net_slack(deep), 1e-12);
}

TEST(Sta, WiderAdderIsSlower) {
  DelayModel dm;
  EXPECT_GT(dm.cell_delay(CellKind::Add, 16), dm.cell_delay(CellKind::Add, 8));
  EXPECT_GT(dm.cell_delay(CellKind::Mul, 8), dm.cell_delay(CellKind::Add, 8));
}

TEST(Sta, IsolationBankReducesSlack) {
  // Same circuit with and without an IsoAnd in the adder's A path.
  auto build = [](bool iso) {
    Netlist nl;
    NetId a = nl.add_input("a", 8);
    NetId b = nl.add_input("b", 8);
    NetId as = nl.add_input("as", 1);
    NetId lhs = a;
    if (iso) lhs = nl.add_iso(CellKind::IsoAnd, "blk", a, as);
    NetId sum = nl.add_binop(CellKind::Add, "sum", lhs, b);
    NetId en = nl.add_input("en", 1);
    NetId q = nl.add_reg("q", sum, en);
    nl.add_output("o", q);
    (void)as;
    return nl;
  };
  const TimingReport plain = run_sta(build(false), DelayModel{});
  const TimingReport isolated = run_sta(build(true), DelayModel{});
  EXPECT_LT(isolated.worst_slack, plain.worst_slack);
}

TEST(Sta, MeetsTimingOnBenchmarkDesigns) {
  for (const Netlist& nl :
       {make_fig1(8), make_design1(8), make_design2(8, 2)}) {
    const TimingReport rep = run_sta(nl, DelayModel{});
    EXPECT_GT(rep.worst_slack, 0.0) << nl.name();
    EXPECT_GT(rep.critical_path_delay, 0.0) << nl.name();
    EXPECT_LT(rep.critical_path_delay, DelayModel{}.clock_period_ns) << nl.name();
  }
}

TEST(Sta, CellSlackUsesOutputNet) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  nl.add_output("o", sum);
  const TimingReport rep = run_sta(nl, DelayModel{});
  EXPECT_NEAR(cell_slack(nl, rep, nl.net(sum).driver), rep.net_slack(sum), 1e-12);
}

}  // namespace
}  // namespace opiso
