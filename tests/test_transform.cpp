// Tests for the isolation transform: structural effects, activation-
// logic synthesis, legality, and — the correctness contract of the whole
// technique — observational equivalence for every isolation style.
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "designs/designs.hpp"
#include "isolation/activation.hpp"
#include "isolation/transform.hpp"
#include "test_util.hpp"

namespace opiso {
namespace {

struct Ctx {
  Netlist nl;
  ExprPool pool;
  NetVarMap vars;
  ActivationAnalysis aa;

  explicit Ctx(Netlist design) : nl(std::move(design)) {
    aa = derive_activation(nl, pool, vars);
  }
  CellId cell(const std::string& out_net) { return nl.net(nl.find_net(out_net)).driver; }
  ExprRef f(const std::string& out_net) { return aa.activation_of(nl, cell(out_net)); }
};

TEST(Transform, SynthesizedLogicComputesTheFunction) {
  Ctx c(make_fig1(8));
  const ExprRef f_a1 = c.f("a1");
  std::vector<CellId> created;
  const NetId as = synthesize_activation_logic(c.nl, c.pool, c.vars, f_a1, "as_a1", &created);
  EXPECT_FALSE(created.empty());
  c.nl.validate();

  // Exhaustively drive the five control inputs and compare the AS net
  // against direct evaluation of the expression.
  Simulator sim(c.nl);
  for (int mt = 0; mt < 32; ++mt) {
    ConstantStimulus stim;
    const char* names[5] = {"S0", "S1", "S2", "G0", "G1"};
    for (int i = 0; i < 5; ++i) stim.set(names[i], (mt >> i) & 1);
    sim.run(stim, 1);
    const bool expected = c.pool.eval(f_a1, [&](BoolVar v) {
      return (sim.net_value(c.vars.net_of(v)) & 1) != 0;
    });
    EXPECT_EQ(sim.net_value(as) & 1, expected ? 1u : 0u) << "minterm " << mt;
  }
}

TEST(Transform, SharedSubexpressionsShareGates) {
  Ctx c(make_fig1(8));
  // (G0&G1) | !(G0&G1)-ish sharing: build a & b and (a & b) | c.
  ExprRef ab = c.pool.land(c.pool.var(c.vars.var_of(c.nl, c.nl.find_net("G0"))),
                           c.pool.var(c.vars.var_of(c.nl, c.nl.find_net("G1"))));
  ExprRef top = c.pool.lor(ab, c.pool.var(c.vars.var_of(c.nl, c.nl.find_net("S0"))));
  std::vector<CellId> created;
  (void)synthesize_activation_logic(c.nl, c.pool, c.vars, top, "sh", &created);
  EXPECT_EQ(created.size(), 2u);  // one AND + one OR, the AND not duplicated
}

TEST(Transform, IsolateInsertsBanksOnEveryInput) {
  Ctx c(make_fig1(8));
  const CellId a1 = c.cell("a1");
  const IsolationRecord rec =
      isolate_module(c.nl, c.pool, c.vars, a1, c.f("a1"), IsolationStyle::And);
  c.nl.validate();
  EXPECT_EQ(rec.bank_cells.size(), 2u);
  EXPECT_EQ(rec.isolated_bits, 16u);
  EXPECT_EQ(rec.literal_count, 5u);  // S2·G1 + S1·!S0·G0
  for (NetId in : c.nl.cell(a1).ins) {
    EXPECT_EQ(c.nl.cell(c.nl.net(in).driver).kind, CellKind::IsoAnd);
  }
}

TEST(Transform, StylesMapToCellKinds) {
  EXPECT_EQ(isolation_cell_kind(IsolationStyle::And), CellKind::IsoAnd);
  EXPECT_EQ(isolation_cell_kind(IsolationStyle::Or), CellKind::IsoOr);
  EXPECT_EQ(isolation_cell_kind(IsolationStyle::Latch), CellKind::IsoLatch);
  EXPECT_EQ(isolation_style_name(IsolationStyle::Latch), "LAT");
}

TEST(Transform, OtherConsumersKeepTheRawNet) {
  // a1 also feeds mux m2 directly; isolating a0 must not touch that path.
  Ctx c(make_fig1(8));
  const NetId a1_net = c.nl.find_net("a1");
  const std::size_t fanouts_before = c.nl.net(a1_net).fanouts.size();
  (void)isolate_module(c.nl, c.pool, c.vars, c.cell("a0"), c.f("a0"), IsolationStyle::And);
  c.nl.validate();
  EXPECT_EQ(c.nl.net(a1_net).fanouts.size(), fanouts_before);
}

TEST(Transform, IllegalWhenActivationTapsOwnFanout) {
  // cmp computes a select from the adder's own output: using it to
  // isolate the adder would create a combinational cycle.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId en = nl.add_input("en", 1);
  NetId s = nl.add_binop(CellKind::Add, "s", a, b);
  NetId cmp = nl.add_binop(CellKind::Lt, "cmp", s, b);
  NetId m = nl.add_mux2("m", cmp, s, b);
  NetId r = nl.add_reg("r", m, en);
  nl.add_output("o", r);
  Ctx c(std::move(nl));
  const CellId adder = c.cell("s");
  const ExprRef f = c.f("s");
  EXPECT_FALSE(isolation_is_legal(c.nl, c.pool, c.vars, adder, f));
  EXPECT_THROW(isolate_module(c.nl, c.pool, c.vars, adder, f, IsolationStyle::And),
               NetlistError);
}

// ---- The correctness contract: observed outputs never change. -------------

struct EquivCase {
  const char* design;
  IsolationStyle style;
};

class TransformEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(TransformEquivalence, IsolatingEveryCandidatePreservesOutputs) {
  const auto [which, style] = GetParam();
  Netlist original;
  const std::string name = which;
  if (name == "fig1") original = make_fig1(8);
  if (name == "design1") original = make_design1(8);
  if (name == "design2") original = make_design2(8, 2);
  if (name == "parametric") original = make_parametric_datapath({2, 2, 6, true});

  Ctx c(original);  // copy for transformation
  // Isolate every legal arithmetic candidate with a non-constant f.
  std::size_t isolated = 0;
  for (CellId id : c.nl.cell_ids()) {
    if (!cell_kind_is_arith(c.nl.cell(id).kind)) continue;
    const ExprRef f = c.aa.activation_of(c.nl, id);
    if (c.pool.is_const1(f)) continue;
    if (!isolation_is_legal(c.nl, c.pool, c.vars, id, f)) continue;
    (void)isolate_module(c.nl, c.pool, c.vars, id, f, style);
    ++isolated;
  }
  ASSERT_GT(isolated, 0u);
  c.nl.validate();
  testutil::expect_observably_equivalent(original, c.nl, 0xC0FFEE, 3000);
}

INSTANTIATE_TEST_SUITE_P(
    DesignsTimesStyles, TransformEquivalence,
    ::testing::Values(EquivCase{"fig1", IsolationStyle::And},
                      EquivCase{"fig1", IsolationStyle::Or},
                      EquivCase{"fig1", IsolationStyle::Latch},
                      EquivCase{"design1", IsolationStyle::And},
                      EquivCase{"design1", IsolationStyle::Or},
                      EquivCase{"design1", IsolationStyle::Latch},
                      EquivCase{"design2", IsolationStyle::And},
                      EquivCase{"design2", IsolationStyle::Or},
                      EquivCase{"design2", IsolationStyle::Latch},
                      EquivCase{"parametric", IsolationStyle::And},
                      EquivCase{"parametric", IsolationStyle::Or},
                      EquivCase{"parametric", IsolationStyle::Latch}));

TEST(Transform, IsolationReducesModuleInputActivity) {
  // With AS mostly low, the module's input toggle rate collapses.
  Netlist original = make_design1(8);
  Ctx c(original);
  const CellId mul1 = c.cell("mul1");
  (void)isolate_module(c.nl, c.pool, c.vars, mul1, c.f("mul1"), IsolationStyle::And);

  auto make_stim = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(9));
    comp->route("act", std::make_unique<ControlledBitStimulus>(0.1, 0.1, 5));
    return comp;
  };
  Simulator sim_orig(original);
  Simulator sim_iso(c.nl);
  auto s1 = make_stim();
  auto s2 = make_stim();
  sim_orig.run(*s1, 4000);
  sim_iso.run(*s2, 4000);

  const NetId pin_orig = original.cell(original.net(original.find_net("mul1")).driver).ins[0];
  const NetId pin_iso = c.nl.cell(mul1).ins[0];
  const double rate_orig = sim_orig.stats().toggle_rate(pin_orig);
  const double rate_iso = sim_iso.stats().toggle_rate(pin_iso);
  EXPECT_LT(rate_iso, rate_orig * 0.35);
}

}  // namespace
}  // namespace opiso
