// Per-cycle capture hook (sim/cycle_trace.hpp): the scalar and parallel
// engines must feed a CycleSink traces that are BITWISE IDENTICAL —
// the parallel engine's lane-folded per-cycle toggle counts equal the
// sample-wise sum (CycleTrace::merge) of one scalar trace per lane with
// the same stimulus streams — and a trace must integrate back to the
// engine's own ActivityStats exactly, for any window size.
#include <gtest/gtest.h>

#include <memory>

#include "designs/designs.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace opiso {
namespace {

void expect_traces_equal(const CycleTrace& a, const CycleTrace& b) {
  ASSERT_EQ(a.num_samples(), b.num_samples());
  ASSERT_EQ(a.cycles(), b.cycles());
  ASSERT_EQ(a.lanes(), b.lanes());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (std::size_t s = 0; s < a.num_samples(); ++s) {
    ASSERT_EQ(a.sample_cycles(s), b.sample_cycles(s)) << "sample " << s;
    ASSERT_EQ(a.sample_toggles(s), b.sample_toggles(s)) << "sample " << s;
  }
  ASSERT_EQ(a.net_totals(), b.net_totals());
}

CycleTrace capture_scalar(const Netlist& nl, std::uint64_t seed, std::uint64_t warmup,
                          std::uint64_t cycles, std::uint64_t window) {
  Simulator sim(nl);
  UniformStimulus stim(seed);
  if (warmup > 0) sim.warmup(stim, warmup);
  CycleTrace trace(window);
  sim.set_cycle_sink(&trace);
  sim.run(stim, cycles);
  trace.finish();
  return trace;
}

/// Differential harness: the parallel engine's trace vs the merge of
/// one scalar-lane trace per lane.
void expect_matches_scalar_oracle(const Netlist& nl, unsigned lanes, std::uint64_t cycles,
                                  std::uint64_t warmup, std::uint64_t window) {
  SCOPED_TRACE(testing::Message() << "design=" << nl.name() << " lanes=" << lanes
                                  << " cycles=" << cycles << " warmup=" << warmup
                                  << " window=" << window);
  ParallelSimulator psim(nl, lanes);
  psim.set_stimulus(
      [](unsigned lane) { return std::make_unique<UniformStimulus>(sweep_lane_seed(1, lane)); });
  if (warmup > 0) psim.warmup(warmup);
  CycleTrace ptrace(window);
  psim.set_cycle_sink(&ptrace);
  psim.run(cycles);
  ptrace.finish();

  CycleTrace oracle(window);
  oracle.finish();  // empty finished trace; merge adopts the first lane's shape
  for (unsigned l = 0; l < lanes; ++l) {
    oracle.merge(capture_scalar(nl, sweep_lane_seed(1, l), warmup, cycles, window));
  }
  expect_traces_equal(ptrace, oracle);

  // The trace also integrates back to the engine's aggregate stats.
  const ActivityStats from_trace = ptrace.to_activity_stats();
  EXPECT_EQ(from_trace.cycles, psim.stats().cycles);
  EXPECT_EQ(from_trace.toggles, psim.stats().toggles);
}

TEST(CycleTrace, ScalarTraceMatchesAggregateStats) {
  const Netlist nl = make_design1();
  Simulator sim(nl);
  UniformStimulus stim(7);
  sim.warmup(stim, 16);
  CycleTrace trace(1);
  sim.set_cycle_sink(&trace);
  sim.run(stim, 200);
  trace.finish();

  EXPECT_EQ(trace.cycles(), 200u);
  EXPECT_EQ(trace.lanes(), 1u);
  EXPECT_EQ(trace.num_samples(), 200u);
  const ActivityStats from_trace = trace.to_activity_stats();
  EXPECT_EQ(from_trace.cycles, sim.stats().cycles);
  EXPECT_EQ(from_trace.toggles, sim.stats().toggles);
}

TEST(CycleTrace, WindowingPreservesSumsExactly) {
  const Netlist nl = make_design2();
  // Same run, three window sizes; 77 is deliberately not a divisor of
  // 300 so the trailing partial sample is exercised.
  const CycleTrace full = capture_scalar(nl, 3, 8, 300, 1);
  for (std::uint64_t window : {4u, 77u, 300u, 1000u}) {
    const CycleTrace folded = capture_scalar(nl, 3, 8, 300, window);
    SCOPED_TRACE(testing::Message() << "window=" << window);
    EXPECT_EQ(folded.cycles(), full.cycles());
    EXPECT_EQ(folded.net_totals(), full.net_totals());
    std::uint64_t covered = 0;
    for (std::size_t s = 0; s < folded.num_samples(); ++s) covered += folded.sample_cycles(s);
    EXPECT_EQ(covered, 300u);
    // Sample-wise refold of the full-resolution trace.
    for (std::size_t s = 0; s < folded.num_samples(); ++s) {
      std::vector<std::uint64_t> expect(nl.num_nets(), 0);
      for (std::uint64_t c = s * window; c < std::min<std::uint64_t>((s + 1) * window, 300);
           ++c) {
        const std::vector<std::uint64_t>& t = full.sample_toggles(c);
        for (std::size_t n = 0; n < t.size(); ++n) expect[n] += t[n];
      }
      EXPECT_EQ(folded.sample_toggles(s), expect) << "sample " << s;
    }
  }
}

TEST(CycleTrace, FirstObservedCycleHasZeroTogglesWithoutWarmup) {
  const Netlist nl = make_fig1();
  Simulator sim(nl);
  UniformStimulus stim(1);
  CycleTrace trace(1);
  sim.set_cycle_sink(&trace);
  sim.run(stim, 10);
  trace.finish();
  for (std::uint64_t t : trace.sample_toggles(0)) EXPECT_EQ(t, 0u);
  const ActivityStats from_trace = trace.to_activity_stats();
  EXPECT_EQ(from_trace.toggles, sim.stats().toggles);
}

TEST(CycleTrace, ValueSnapshotsFollowScalarEngine) {
  const Netlist nl = make_fig1();
  Simulator sim(nl);
  UniformStimulus stim(5);
  CycleTrace trace(1, /*record_values=*/true);
  sim.set_cycle_sink(&trace);
  sim.run(stim, 25);
  trace.finish();
  ASSERT_TRUE(trace.has_values());
  ASSERT_EQ(trace.num_samples(), 25u);
  // The last sample's snapshot is the simulator's current settled state
  // pre-clock-edge... the simulator has clocked since, so just check
  // shape and that snapshots change over time for some net.
  ASSERT_EQ(trace.sample_values(0).size(), nl.num_nets());
  bool any_changed = false;
  for (std::size_t s = 1; s < trace.num_samples() && !any_changed; ++s) {
    any_changed = trace.sample_values(s) != trace.sample_values(s - 1);
  }
  EXPECT_TRUE(any_changed);
}

TEST(CycleTrace, ParallelMatchesScalarOracle) {
  for (const Netlist& nl : {make_fig1(), make_design1(), make_design2()}) {
    for (unsigned lanes : {1u, 3u, 64u}) {
      expect_matches_scalar_oracle(nl, lanes, 64, /*warmup=*/2, /*window=*/1);
    }
    expect_matches_scalar_oracle(nl, 8, 100, /*warmup=*/0, /*window=*/7);
  }
}

TEST(CycleTrace, MergeRequiresMatchingShape) {
  const CycleTrace a = capture_scalar(make_fig1(), 1, 0, 10, 1);
  CycleTrace b = capture_scalar(make_fig1(), 2, 0, 20, 1);
  EXPECT_THROW(b.merge(a), Error);
}

TEST(CycleTrace, DetachedSinkStopsCapture) {
  const Netlist nl = make_fig1();
  Simulator sim(nl);
  UniformStimulus stim(1);
  CycleTrace trace(1);
  sim.set_cycle_sink(&trace);
  sim.run(stim, 5);
  sim.set_cycle_sink(nullptr);
  sim.run(stim, 5);
  trace.finish();
  EXPECT_EQ(trace.cycles(), 5u);
  EXPECT_EQ(sim.stats().cycles, 10u);
}

}  // namespace
}  // namespace opiso
