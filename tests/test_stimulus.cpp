// Tests for the stimulus generators — the statistics they promise are
// what the activation-sweep experiment (Sec. 6) depends on.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.hpp"

namespace opiso {
namespace {

Netlist one_bit_probe_design() {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  nl.add_output("o", a);
  return nl;
}

TEST(Stimulus, ConstantDefaultsToZero) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  nl.add_output("o", a);
  ConstantStimulus stim;
  Simulator sim(nl);
  sim.run(stim, 3);
  EXPECT_EQ(sim.net_value(a), 0u);
}

TEST(Stimulus, ConstantMasksToWidth) {
  Netlist nl;
  NetId a = nl.add_input("a", 4);
  nl.add_output("o", a);
  ConstantStimulus stim;
  stim.set("a", 0xFF);
  Simulator sim(nl);
  sim.run(stim, 1);
  EXPECT_EQ(sim.net_value(a), 0xFu);
}

TEST(Stimulus, VectorHoldsLastValue) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  nl.add_output("o", a);
  VectorStimulus stim;
  stim.set("a", {1, 2});
  Simulator sim(nl);
  sim.run(stim, 5);
  EXPECT_EQ(sim.net_value(a), 2u);
}

TEST(Stimulus, UniformIsDeterministicPerSeed) {
  Netlist nl;
  NetId a = nl.add_input("a", 16);
  nl.add_output("o", a);
  auto run_once = [&](std::uint64_t seed) {
    UniformStimulus stim(seed);
    Simulator sim(nl);
    sim.run(stim, 10);
    return sim.net_value(a);
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

// Parameterized sweep: the Markov bit stream must hit its target static
// probability and toggle rate (within sampling tolerance).
struct BitStats {
  double p1;
  double tr;
};

class ControlledBitSweep : public ::testing::TestWithParam<BitStats> {};

TEST_P(ControlledBitSweep, HitsTargetStatistics) {
  const auto [p1, tr] = GetParam();
  Netlist nl = one_bit_probe_design();
  const NetId a = nl.find_net("a");
  ControlledBitStimulus stim(p1, tr, 99);
  Simulator sim(nl);
  sim.run(stim, 60000);
  EXPECT_NEAR(sim.stats().prob_one(a), p1, 0.02);
  EXPECT_NEAR(sim.stats().toggle_rate(a), tr, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Targets, ControlledBitSweep,
                         ::testing::Values(BitStats{0.5, 0.5}, BitStats{0.1, 0.1},
                                           BitStats{0.9, 0.15}, BitStats{0.25, 0.4},
                                           BitStats{0.5, 0.05}, BitStats{0.75, 0.3}));

TEST(Stimulus, ControlledBitRejectsInfeasibleToggleRate) {
  // tr must be <= 2*min(p1, 1-p1).
  EXPECT_THROW(ControlledBitStimulus(0.1, 0.5), Error);
  EXPECT_THROW(ControlledBitStimulus(0.0, 0.1), Error);
  EXPECT_NO_THROW(ControlledBitStimulus(0.1, 0.2));
}

TEST(Stimulus, IdleBurstPhaseVisibleOnPhaseInput) {
  Netlist nl;
  NetId ph = nl.add_input("phase", 1);
  NetId d = nl.add_input("d", 8);
  nl.add_output("op", ph);
  nl.add_output("od", d);
  IdleBurstStimulus stim(10.0, 30.0, 3);
  stim.set_phase_input("phase");
  Simulator sim(nl);
  sim.run(stim, 40000);
  // Expected duty cycle = mean_active / (mean_active + mean_idle) = 0.25.
  EXPECT_NEAR(sim.stats().prob_one(ph), 0.25, 0.04);
  // Data holds during idle: toggle rate well below the uniform 4.0.
  EXPECT_LT(sim.stats().toggle_rate(d), 4.0 * 0.35);
  EXPECT_GT(sim.stats().toggle_rate(d), 0.1);
}

TEST(Stimulus, CompositeRoutesBySignalName) {
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  nl.add_output("oa", a);
  nl.add_output("ob", b);
  auto comp = CompositeStimulus(std::make_unique<ConstantStimulus>());
  auto fixed = std::make_unique<ConstantStimulus>();
  fixed->set("a", 77);
  comp.route("a", std::move(fixed));
  Simulator sim(nl);
  sim.run(comp, 2);
  EXPECT_EQ(sim.net_value(a), 77u);
  EXPECT_EQ(sim.net_value(b), 0u);
}

TEST(Stimulus, CompositeRejectsNull) {
  EXPECT_THROW(CompositeStimulus(nullptr), Error);
}

}  // namespace
}  // namespace opiso
