// Corpus-driven robustness harness for the RTL parser.
//
// tests/corpus/rtl holds two file families: ok_*.rtl must parse into a
// valid netlist, bad_*.rtl must be rejected with a structured
// OpisoError diagnostic that names the offending input line — never a
// crash, an abort, or a raw std:: exception. On top of the fixed
// corpus, a deterministic byte-mutation fuzzer (fixed xorshift seed, so
// every run and every CI leg sees the same inputs) hammers the parser
// with corrupted variants of each corpus file; any outcome other than
// "parsed" or "threw OpisoError" fails the suite. The same corpus
// feeds the optional libFuzzer target (fuzz_rtl_parser) as its seed
// inputs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/rtl_parser.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace opiso {
namespace {

namespace fs = std::filesystem;

const fs::path kCorpusDir = fs::path(OPISO_CORPUS_DIR) / "rtl";

std::vector<fs::path> corpus_files(const std::string& prefix) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(kCorpusDir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && entry.path().extension() == ".rtl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

TEST(Corpus, DirectoriesArePopulated) {
  // Guards against a silently empty glob (e.g. a moved corpus dir)
  // turning the whole suite into a no-op.
  EXPECT_GE(corpus_files("ok_").size(), 3u);
  EXPECT_GE(corpus_files("bad_").size(), 15u);
}

TEST(Corpus, OkFilesParseAndValidate) {
  for (const fs::path& path : corpus_files("ok_")) {
    SCOPED_TRACE(path.filename().string());
    Netlist nl;
    ASSERT_NO_THROW(nl = parse_rtl_file(path.string()));
    EXPECT_NO_THROW(nl.validate());
    EXPECT_GE(nl.primary_outputs().size(), 1u);
  }
}

TEST(Corpus, BadFilesYieldStructuredLineDiagnostics) {
  for (const fs::path& path : corpus_files("bad_")) {
    SCOPED_TRACE(path.filename().string());
    try {
      (void)parse_rtl_file(path.string());
      ADD_FAILURE() << path << " parsed but must be rejected";
    } catch (const OpisoError& e) {
      // Structured: a stable code, a message, and the offending line.
      EXPECT_STRNE(e.code_name(), "");
      EXPECT_NE(e.code(), ErrCode::Internal)
          << "malformed input must not surface as an internal error";
      EXPECT_FALSE(std::string(e.what()).empty());
      EXPECT_GT(e.input_line(), 0) << "diagnostic lost the input line";
      EXPECT_NE(std::string(e.what()).find("rtl line"), std::string::npos);
      // The JSON rendering must itself be valid JSON carrying the code.
      const obs::JsonValue j = obs::JsonValue::parse(e.json());
      EXPECT_EQ(j.at("error").at("code").as_string(), e.code_name());
      EXPECT_EQ(j.at("error").at("input_line").as_number(),
                static_cast<double>(e.input_line()));
    }
    // Anything else (std::bad_alloc, std::out_of_range, a signal)
    // escapes and fails the test — exactly the point.
  }
}

TEST(Corpus, ExpectedCodesForKnownFamilies) {
  const struct {
    const char* file;
    ErrCode code;
  } kCases[] = {
      {"bad_dup_wire.rtl", ErrCode::ParseDuplicate},
      {"bad_dup_reg.rtl", ErrCode::ParseDuplicate},
      {"bad_width_zero.rtl", ErrCode::ParseWidth},
      {"bad_width_oversized.rtl", ErrCode::ParseWidth},
      {"bad_width_overflow.rtl", ErrCode::ParseWidth},
      {"bad_dangling_ref.rtl", ErrCode::ParseUnknownRef},
      {"bad_number_literal.rtl", ErrCode::ParseNumber},
      {"bad_number_overflow.rtl", ErrCode::ParseNumber},
      {"bad_shift_overflow.rtl", ErrCode::ParseNumber},
      {"bad_deep_nesting.rtl", ErrCode::ParseDepth},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.file);
    try {
      (void)parse_rtl_file((kCorpusDir / c.file).string());
      ADD_FAILURE() << c.file << " parsed but must be rejected";
    } catch (const OpisoError& e) {
      EXPECT_EQ(e.code(), c.code) << "got " << e.code_name() << ": " << e.what();
    }
  }
}

TEST(Corpus, MissingFileIsAnIoError) {
  EXPECT_THROW((void)parse_rtl_file((kCorpusDir / "does_not_exist.rtl").string()), IoError);
}

// ------------------------------------------------------------- fuzzing

struct XorShift64 {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// Byte-level corruption: flips, ASCII splices, truncation, duplication.
// Deliberately text-shaped (printable splice bytes) so mutants stay in
// the lexer/elaborator's interesting region instead of dying uniformly
// in the first token.
std::string mutate(std::string text, XorShift64& rng) {
  if (text.empty()) text = " ";
  const unsigned ops = 1 + static_cast<unsigned>(rng.next() % 4);
  for (unsigned op = 0; op < ops; ++op) {
    switch (rng.next() % 5) {
      case 0:  // flip a byte
        text[rng.next() % text.size()] ^= static_cast<char>(1u << (rng.next() % 8));
        break;
      case 1:  // overwrite with a printable byte
        text[rng.next() % text.size()] = static_cast<char>(' ' + rng.next() % 95);
        break;
      case 2:  // truncate
        text.resize(rng.next() % (text.size() + 1));
        if (text.empty()) text = "(";
        break;
      case 3: {  // duplicate a slice (breeds duplicate definitions)
        const std::size_t from = rng.next() % text.size();
        const std::size_t len = rng.next() % std::min<std::size_t>(text.size() - from, 64) ;
        text.insert(rng.next() % text.size(), text.substr(from, len));
        break;
      }
      case 4: {  // splice structural noise
        static const char* kNoise[] = {":", "?", "(", "))", "<<", "0x", ":0", ":99",
                                       "when", "reg", "wire q = q", "\n"};
        text.insert(rng.next() % text.size(), kNoise[rng.next() % 12]);
        break;
      }
    }
  }
  return text;
}

TEST(Corpus, DeterministicMutationFuzzNeverCrashes) {
  constexpr int kRoundsPerFile = 150;  // fixed workload: time-boxed in CI
  XorShift64 rng{0x0015CA1EDB00F5ull};  // fixed seed: identical on every run
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (const std::string prefix : {"ok_", "bad_"}) {
    for (const fs::path& path : corpus_files(prefix)) {
      const std::string original = slurp(path);
      for (int round = 0; round < kRoundsPerFile; ++round) {
        const std::string mutant = mutate(original, rng);
        try {
          (void)parse_rtl(mutant);
          ++parsed;
        } catch (const OpisoError&) {
          ++rejected;
        } catch (const std::exception& e) {
          ADD_FAILURE() << path.filename() << " round " << round
                        << ": leaked a non-OpisoError exception: " << e.what()
                        << "\n--- mutant ---\n"
                        << mutant;
        }
      }
    }
  }
  // The mutator must actually exercise both outcomes, otherwise it is
  // either too tame or reducing everything to the first-token error.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace opiso
