// Tests for gate-level lowering: exhaustive functional checks of the
// arithmetic expansions plus lock-step word-vs-gate equivalence on the
// benchmark designs.
#include <gtest/gtest.h>

#include "designs/designs.hpp"
#include "lower/gate_level.hpp"
#include "sim/simulator.hpp"

namespace opiso {
namespace {

/// Evaluate a two-input word design and its lowering on one input pair;
/// returns {word result, gate result} for the net/bits named "f".
struct OpHarness {
  Netlist word;
  GateLevelResult gates;
  NetId word_f;

  explicit OpHarness(CellKind kind, unsigned wa, unsigned wb) {
    NetId a = word.add_input("a", wa);
    NetId b = word.add_input("b", wb);
    word_f = word.add_binop(kind, "f", a, b);
    word.add_output("o", word_f);
    gates = lower_to_gates(word);
  }

  std::pair<std::uint64_t, std::uint64_t> eval(std::uint64_t va, std::uint64_t vb) {
    ConstantStimulus stim;
    stim.set("a", va);
    stim.set("b", vb);
    Simulator ws(word);
    ws.run(stim, 1);

    BitStimulusAdapter bits(word, stim);
    Simulator gs(gates.netlist);
    gs.run(bits, 1);
    std::uint64_t gate_val = 0;
    const auto& f_bits = gates.bits_of(word_f);
    for (std::size_t i = 0; i < f_bits.size(); ++i) {
      gate_val |= gs.net_value(f_bits[i]) << i;
    }
    return {ws.net_value(word_f), gate_val};
  }
};

struct OpCase {
  CellKind kind;
  const char* name;
};

class LowerOpExhaustive : public ::testing::TestWithParam<OpCase> {};

TEST_P(LowerOpExhaustive, FourBitExhaustive) {
  OpHarness h(GetParam().kind, 4, 4);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      const auto [w, g] = h.eval(a, b);
      ASSERT_EQ(w, g) << GetParam().name << "(" << a << ", " << b << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, LowerOpExhaustive,
                         ::testing::Values(OpCase{CellKind::Add, "add"},
                                           OpCase{CellKind::Sub, "sub"},
                                           OpCase{CellKind::Mul, "mul"},
                                           OpCase{CellKind::Eq, "eq"},
                                           OpCase{CellKind::Lt, "lt"},
                                           OpCase{CellKind::And, "and"},
                                           OpCase{CellKind::Xor, "xor"},
                                           OpCase{CellKind::Nor, "nor"}));

TEST(Lower, MixedWidthAdd) {
  OpHarness h(CellKind::Add, 6, 3);
  for (std::uint64_t a : {0ull, 5ull, 33ull, 63ull}) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      const auto [w, g] = h.eval(a, b);
      ASSERT_EQ(w, g);
    }
  }
}

TEST(Lower, ShiftsAreWiring) {
  Netlist word;
  NetId a = word.add_input("a", 8);
  NetId l = word.add_shift(CellKind::Shl, "l", a, 3);
  NetId r = word.add_shift(CellKind::Shr, "r", a, 2);
  word.add_output("ol", l);
  word.add_output("or", r);
  const std::size_t gates_before = word.num_cells();
  const GateLevelResult g = lower_to_gates(word);
  (void)gates_before;
  ConstantStimulus stim;
  stim.set("a", 0b10110101);
  BitStimulusAdapter bits(word, stim);
  Simulator gs(g.netlist);
  gs.run(bits, 1);
  std::uint64_t lv = 0, rv = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    lv |= gs.net_value(g.bits_of(l)[i]) << i;
    rv |= gs.net_value(g.bits_of(r)[i]) << i;
  }
  EXPECT_EQ(lv, (0b10110101ull << 3) & 0xFF);
  EXPECT_EQ(rv, 0b10110101ull >> 2);
}

TEST(Lower, AllNetsAreOneBit) {
  const GateLevelResult g = lower_to_gates(make_fig1(6));
  for (NetId id : g.netlist.net_ids()) {
    EXPECT_EQ(g.netlist.net(id).width, 1u);
  }
}

class LowerDesignEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(LowerDesignEquivalence, LockStepWithWordLevel) {
  Netlist word;
  const std::string which = GetParam();
  if (which == "fig1") word = make_fig1(6);
  if (which == "design1") word = make_design1(5);
  if (which == "design2") word = make_design2(5, 1);
  const GateLevelResult g = lower_to_gates(word);

  Simulator ws(word);
  Simulator gs(g.netlist);
  UniformStimulus stim_w(77);
  UniformStimulus stim_g_inner(77);
  BitStimulusAdapter stim_g(word, stim_g_inner);
  for (int cycle = 0; cycle < 400; ++cycle) {
    ws.run(stim_w, 1);
    gs.run(stim_g, 1);
    // Compare every word net against its reassembled bits.
    for (NetId net : word.net_ids()) {
      const auto& bits = g.bits_of(net);
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < bits.size(); ++i) v |= gs.net_value(bits[i]) << i;
      ASSERT_EQ(ws.net_value(net), v)
          << "net " << word.net(net).name << " diverged at cycle " << cycle;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, LowerDesignEquivalence,
                         ::testing::Values("fig1", "design1", "design2"));

TEST(Lower, IsolationCellsLowerCorrectly) {
  Netlist word;
  NetId d = word.add_input("d", 4);
  NetId as = word.add_input("as", 1);
  NetId ia = word.add_iso(CellKind::IsoAnd, "ia", d, as);
  NetId io = word.add_iso(CellKind::IsoOr, "io", d, as);
  word.add_output("oa", ia);
  word.add_output("oo", io);
  const GateLevelResult g = lower_to_gates(word);
  for (std::uint64_t dv = 0; dv < 16; ++dv) {
    for (std::uint64_t asv = 0; asv < 2; ++asv) {
      ConstantStimulus stim;
      stim.set("d", dv);
      stim.set("as", asv);
      BitStimulusAdapter bits(word, stim);
      Simulator gs(g.netlist);
      gs.run(bits, 1);
      std::uint64_t va = 0, vo = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        va |= gs.net_value(g.bits_of(ia)[i]) << i;
        vo |= gs.net_value(g.bits_of(io)[i]) << i;
      }
      ASSERT_EQ(va, asv ? dv : 0u);
      ASSERT_EQ(vo, asv ? dv : 0xFu);
    }
  }
}

TEST(Lower, GateCountScalesWithWidth) {
  auto count = [](unsigned w) {
    Netlist word;
    NetId a = word.add_input("a", w);
    NetId b = word.add_input("b", w);
    word.add_output("o", word.add_binop(CellKind::Mul, "p", a, b));
    return lower_to_gates(word).netlist.num_cells();
  };
  // Array multiplier grows superlinearly; ripple adder linearly.
  EXPECT_GT(count(8), 3 * count(4));
}

}  // namespace
}  // namespace opiso
