// Tests for topological ordering, combinational-block partitioning and
// cone computations.
#include <gtest/gtest.h>

#include <algorithm>

#include "designs/designs.hpp"
#include "netlist/traversal.hpp"

namespace opiso {
namespace {

/// Position map helper.
std::vector<std::size_t> positions(const Netlist& nl, const std::vector<CellId>& order) {
  std::vector<std::size_t> pos(nl.num_cells());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].value()] = i;
  return pos;
}

TEST(Traversal, TopoOrderCoversAllCells) {
  const Netlist nl = make_design1(8);
  const auto order = topological_order(nl);
  EXPECT_EQ(order.size(), nl.num_cells());
}

TEST(Traversal, TopoOrderRespectsCombDependencies) {
  const Netlist nl = make_design1(8);
  const auto order = topological_order(nl);
  const auto pos = positions(nl, order);
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::Reg || c.kind == CellKind::PrimaryInput ||
        c.kind == CellKind::Constant) {
      continue;
    }
    for (NetId in : c.ins) {
      const CellId drv = nl.net(in).driver;
      const Cell& d = nl.cell(drv);
      if (d.kind == CellKind::Reg || d.kind == CellKind::PrimaryInput ||
          d.kind == CellKind::Constant) {
        continue;
      }
      EXPECT_LT(pos[drv.value()], pos[id.value()])
          << "cell " << c.name << " ordered before its driver " << d.name;
    }
  }
}

TEST(Traversal, DetectsCombinationalCycle) {
  Netlist nl;
  NetId a = nl.add_input("a", 1);
  // x = a & y ; y = x | a  — a combinational loop.
  NetId x = nl.add_net("x", 1);
  NetId y = nl.add_net("y", 1);
  nl.add_cell(CellKind::And, "gx", {a, y}, x);
  nl.add_cell(CellKind::Or, "gy", {x, a}, y);
  EXPECT_THROW(topological_order(nl), NetlistError);
  EXPECT_THROW(nl.validate(), NetlistError);
}

TEST(Traversal, RegistersBreakCycles) {
  // Accumulator feedback through a register must be legal.
  Netlist nl;
  NetId one = nl.add_const("one", 1, 1);
  NetId d0 = nl.add_const("d0", 0, 8);
  NetId acc = nl.add_reg("acc", d0, one);
  NetId in = nl.add_input("in", 8);
  NetId sum = nl.add_binop(CellKind::Add, "sum", acc, in);
  nl.reconnect_input(nl.net(acc).driver, 0, sum);
  nl.add_output("o", acc);
  EXPECT_NO_THROW(nl.validate());
}

TEST(Traversal, Design1HasFourCombBlocks) {
  // Stage 1 contributes two independent blocks (mul1 cone, add1 cone);
  // stage 2 splits into the add2/sub2/add3 network and the mul2/mux_c
  // network — registers connect them sequentially, not combinationally.
  const Netlist nl = make_design1(8);
  const auto blocks = combinational_blocks(nl);
  EXPECT_EQ(blocks.size(), 4u);
}

TEST(Traversal, BlockCellsAreDisjointAndComplete) {
  const Netlist nl = make_design2(8, 2);
  const auto blocks = combinational_blocks(nl);
  std::vector<int> seen(nl.num_cells(), 0);
  for (const CombBlock& b : blocks) {
    for (CellId id : b.cells) ++seen[id.value()];
  }
  std::size_t comb_cells = 0;
  for (CellId id : nl.cell_ids()) {
    const CellKind k = nl.cell(id).kind;
    const bool comb = k != CellKind::Reg && k != CellKind::PrimaryInput &&
                      k != CellKind::PrimaryOutput && k != CellKind::Constant;
    if (comb) {
      ++comb_cells;
      EXPECT_EQ(seen[id.value()], 1) << nl.cell(id).name;
    } else {
      EXPECT_EQ(seen[id.value()], 0) << nl.cell(id).name;
    }
  }
  std::size_t in_blocks = 0;
  for (const CombBlock& b : blocks) in_blocks += b.cells.size();
  EXPECT_EQ(in_blocks, comb_cells);
}

TEST(Traversal, FanoutConeStopsAtRegisters) {
  const Netlist nl = make_design1(8);
  const CellId mul1 = nl.net(nl.find_net("mul1")).driver;
  const auto cone = combinational_fanout_cone(nl, mul1);
  // mul1 feeds reg_p directly: cone is just the multiplier itself.
  EXPECT_EQ(cone.size(), 1u);
  EXPECT_EQ(cone[0], mul1);
}

TEST(Traversal, FaninConeCollectsSteeringNetwork) {
  const Netlist nl = make_design1(8);
  const CellId add3 = nl.net(nl.find_net("add3")).driver;
  const auto cone = combinational_fanin_cone(nl, add3);
  // add3 <- mux_a <- {add2, sub2}: four comb cells incl. itself.
  EXPECT_EQ(cone.size(), 4u);
}

TEST(Traversal, NetInCombinationalFanout) {
  const Netlist nl = make_design1(8);
  const CellId add2 = nl.net(nl.find_net("add2")).driver;
  EXPECT_TRUE(net_in_combinational_fanout(nl, add2, nl.find_net("add3")));
  EXPECT_TRUE(net_in_combinational_fanout(nl, add2, nl.find_net("add2")));
  EXPECT_FALSE(net_in_combinational_fanout(nl, add2, nl.find_net("sub2")));
  EXPECT_FALSE(net_in_combinational_fanout(nl, add2, nl.find_net("reg_p")));
}

TEST(Traversal, ChangedCellsEmptyOnIdenticalNetlists) {
  const Netlist a = make_design1(8);
  const Netlist b = make_design1(8);
  EXPECT_TRUE(changed_cells(a, b).empty());
}

TEST(Traversal, ChangedCellsFindsAppendedAndRewiredCells) {
  const Netlist base = make_design1(8);
  Netlist cur = base;
  // Append a cell and rewire an existing consumer onto its output — the
  // isolation transform's evolution pattern in miniature.
  const NetId src = cur.find_net("add2");
  const NetId buf_out = cur.add_net("cc_buf", cur.net(src).width);
  const CellId buf = cur.add_cell(CellKind::Buf, "cc_buf_cell", {src}, buf_out);
  const CellId mux_a = cur.net(cur.find_net("mux_a")).driver;  // reads add2 on pin 1
  int pin = -1;
  for (std::size_t i = 0; i < cur.cell(mux_a).ins.size(); ++i) {
    if (cur.cell(mux_a).ins[i] == src) pin = static_cast<int>(i);
  }
  ASSERT_GE(pin, 0);
  cur.reconnect_input(mux_a, pin, buf_out);
  const std::vector<CellId> changed = changed_cells(base, cur);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_TRUE(std::is_sorted(changed.begin(), changed.end(),
                             [](CellId a, CellId b) { return a.value() < b.value(); }));
  EXPECT_EQ(changed[0], mux_a);  // rewired input
  EXPECT_EQ(changed[1], buf);    // appended cell
}

TEST(Traversal, ChangedCellsRejectsNonAppendEvolution) {
  const Netlist design1 = make_design1(8);
  const Netlist fig1 = make_fig1(8);
  // fig1 has fewer cells than design1: not an append-only evolution.
  EXPECT_THROW((void)changed_cells(design1, fig1), NetlistError);
}

TEST(Traversal, DirtyConeClosesOverFanoutThroughRegisters) {
  const Netlist nl = make_design1(8);
  const CellId mul1 = nl.net(nl.find_net("mul1")).driver;
  const std::vector<CellId> cone = dirty_cone(nl, {mul1});
  const auto in_cone = [&cone](CellId id) {
    return std::find(cone.begin(), cone.end(), id) != cone.end();
  };
  EXPECT_TRUE(in_cone(mul1));  // seeds are included
  // Unlike the combinational fanout cone (which is just {mul1}: it
  // feeds reg_p directly), the dirty cone crosses the register — a
  // changed cell perturbs the register's state sequence, so every
  // reader of reg_p replays differently too.
  EXPECT_EQ(combinational_fanout_cone(nl, mul1).size(), 1u);
  EXPECT_TRUE(in_cone(nl.net(nl.find_net("reg_p")).driver));
  EXPECT_TRUE(in_cone(nl.net(nl.find_net("add2")).driver));
  EXPECT_TRUE(in_cone(nl.net(nl.find_net("sub2")).driver));
  // Cells fed only by the untouched reg_q branch never enter the cone.
  EXPECT_FALSE(in_cone(nl.net(nl.find_net("add1")).driver));
  EXPECT_FALSE(in_cone(nl.net(nl.find_net("mul2")).driver));
  EXPECT_TRUE(std::is_sorted(cone.begin(), cone.end(),
                             [](CellId a, CellId b) { return a.value() < b.value(); }));
}

}  // namespace
}  // namespace opiso
