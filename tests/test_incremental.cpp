// Differential tests for dirty-cone incremental re-simulation: after
// any sequence of isolation transforms, IncrementalSession::measure must
// produce statistics BITWISE IDENTICAL to a fresh full run of the
// configured engine — same counters, same probes, same per-cycle trace.
// The full engine is the oracle, on every bundled design and both
// engines, including a fixed-seed fuzz loop that toggles random banks
// between rounds.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "designs/designs.hpp"
#include "frontend/rtl_parser.hpp"
#include "isolation/activation.hpp"
#include "isolation/algorithm.hpp"
#include "isolation/candidates.hpp"
#include "isolation/transform.hpp"
#include "netlist/traversal.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/incremental.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"

namespace opiso {
namespace {

IncrementalConfig make_cfg(SimEngineKind engine, std::uint64_t cycles = 512,
                           std::uint64_t warmup = 32, unsigned lanes = 64) {
  IncrementalConfig cfg;
  cfg.engine = engine;
  cfg.lanes = lanes;
  cfg.warmup_cycles = warmup;
  cfg.sim_cycles = cycles;
  return cfg;
}

IncrementalSession::StimulusFactory scalar_factory(std::uint64_t seed) {
  return [seed] { return std::make_unique<UniformStimulus>(seed); };
}

IncrementalSession::LaneStimulusFactory lane_factory(std::uint64_t seed) {
  return [seed](unsigned lane) {
    return std::make_unique<UniformStimulus>(sweep_lane_seed(seed, lane));
  };
}

/// Probe expressions over a few 1-bit nets of the current netlist, so
/// the probe counters (which the replay must re-evaluate every round)
/// are always exercised.
std::vector<ExprRef> make_probes(const Netlist& nl, ExprPool& pool, NetVarMap& vars) {
  std::vector<BoolVar> bits;
  for (NetId id : nl.net_ids()) {
    if (nl.net(id).width == 1) bits.push_back(vars.var_of(nl, id));
    if (bits.size() >= 3) break;
  }
  std::vector<ExprRef> probes;
  if (bits.empty()) return probes;
  probes.push_back(pool.var(bits[0]));
  probes.push_back(pool.lnot(pool.var(bits[0])));
  if (bits.size() >= 2) probes.push_back(pool.land(pool.var(bits[0]), pool.var(bits[1])));
  if (bits.size() >= 3) {
    probes.push_back(pool.lor(pool.var(bits[1]), pool.lnot(pool.var(bits[2]))));
  }
  return probes;
}

/// The oracle: a fresh full engine run with the exact warmup/cycle
/// split the session uses (the measure_activity discipline).
ActivityStats full_reference(const Netlist& nl, const IncrementalConfig& cfg,
                             std::uint64_t seed, const ExprPool* pool, const NetVarMap* vars,
                             const std::vector<ExprRef>& probes, CycleSink* sink = nullptr) {
  if (cfg.engine == SimEngineKind::Parallel) {
    ParallelSimulator sim(nl, cfg.lanes, pool, vars);
    if (cfg.bit_stats) sim.enable_bit_stats();
    for (ExprRef p : probes) (void)sim.add_probe(p);
    sim.set_stimulus([seed](unsigned lane) {
      return std::make_unique<UniformStimulus>(sweep_lane_seed(seed, lane));
    });
    const std::uint64_t lanes = sim.lanes();
    if (cfg.warmup_cycles > 0) sim.warmup((cfg.warmup_cycles + lanes - 1) / lanes);
    if (sink != nullptr) sim.set_cycle_sink(sink);
    sim.run(std::max<std::uint64_t>(1, cfg.sim_cycles / lanes));
    return sim.stats();
  }
  Simulator sim(nl, pool, vars);
  if (cfg.bit_stats) sim.enable_bit_stats();
  for (ExprRef p : probes) (void)sim.add_probe(p);
  UniformStimulus stim(seed);
  if (cfg.warmup_cycles > 0) sim.warmup(stim, cfg.warmup_cycles);
  if (sink != nullptr) sim.set_cycle_sink(sink);
  sim.run(stim, cfg.sim_cycles);
  return sim.stats();
}

void expect_stats_equal(const ActivityStats& got, const ActivityStats& want) {
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.toggles, want.toggles);
  EXPECT_EQ(got.ones, want.ones);
  EXPECT_EQ(got.bit_toggles, want.bit_toggles);
  EXPECT_EQ(got.probe_true, want.probe_true);
  EXPECT_EQ(got.probe_toggles, want.probe_toggles);
}

void expect_traces_equal(const CycleTrace& got, const CycleTrace& want) {
  ASSERT_EQ(got.num_samples(), want.num_samples());
  EXPECT_EQ(got.cycles(), want.cycles());
  EXPECT_EQ(got.lanes(), want.lanes());
  EXPECT_EQ(got.net_totals(), want.net_totals());
  for (std::size_t s = 0; s < got.num_samples(); ++s) {
    EXPECT_EQ(got.sample_toggles(s), want.sample_toggles(s)) << "sample " << s;
  }
}

/// Isolate the first not-yet-isolated legal candidate; returns false if
/// the design has none left. `rng`, when set, picks a random one.
bool isolate_one(Netlist& nl, IsolationStyle style, std::mt19937_64* rng = nullptr) {
  ExprPool pool;
  NetVarMap vars;
  const ActivationAnalysis analysis = derive_activation(nl, pool, vars, {});
  const std::vector<CombBlock> blocks = combinational_blocks(nl);
  std::vector<IsolationCandidate> cands =
      identify_candidates(nl, blocks, analysis, pool, CandidateConfig{});
  std::vector<IsolationCandidate> eligible;
  for (const IsolationCandidate& c : cands) {
    if (c.already_isolated) continue;
    if (!isolation_is_legal(nl, pool, vars, c.cell, c.activation)) continue;
    eligible.push_back(c);
  }
  if (eligible.empty()) return false;
  std::size_t pick = 0;
  if (rng != nullptr) pick = (*rng)() % eligible.size();
  isolate_module(nl, pool, vars, eligible[pick].cell, eligible[pick].activation, style);
  nl.validate();
  return true;
}

Netlist make_named_design(const std::string& name) {
  if (name == "fig1") return make_fig1();
  if (name == "design1") return make_design1();
  if (name == "design2") return make_design2();
  if (name == "parametric") return make_parametric_datapath({});
  return parse_rtl_file(std::string(OPISO_DESIGNS_RTL_DIR "/") + name);
}

const char* kDesigns[] = {"fig1", "design1", "design2", "parametric",
                          "fig1.rtl", "design1.rtl", "fir4.rtl"};

/// The core differential harness: baseline round, then rounds of
/// committed banks, each replayed round compared against the oracle —
/// stats, probes, and the per-cycle trace.
void run_differential(const std::string& design, SimEngineKind engine) {
  SCOPED_TRACE(testing::Message() << "design=" << design << " engine="
                                  << (engine == SimEngineKind::Parallel ? "parallel" : "scalar"));
  Netlist nl = make_named_design(design);
  const IncrementalConfig cfg = make_cfg(engine);
  IncrementalSession session(scalar_factory(1), lane_factory(1), cfg);

  const IsolationStyle styles[] = {IsolationStyle::And, IsolationStyle::Or,
                                   IsolationStyle::Latch};
  for (int round = 0; round < 4; ++round) {
    ExprPool pool;
    NetVarMap vars;
    const std::vector<ExprRef> probes = make_probes(nl, pool, vars);
    CycleTrace inc_trace(1), full_trace(1);
    const ActivityStats got = session.measure(
        nl, &pool, &vars,
        [&probes](ProbeHost& sim) {
          for (ExprRef p : probes) (void)sim.add_probe(p);
        },
        &inc_trace);
    inc_trace.finish();
    const ActivityStats want = full_reference(nl, cfg, 1, &pool, &vars, probes, &full_trace);
    full_trace.finish();
    SCOPED_TRACE(testing::Message() << "round=" << round);
    expect_stats_equal(got, want);
    expect_traces_equal(inc_trace, full_trace);
    if (!isolate_one(nl, styles[round % 3])) break;
  }
  EXPECT_EQ(session.full_runs(), 1u);  // only round 0 ran the engine in full
  EXPECT_GE(session.replays(), 1u);
}

TEST(Incremental, MatchesFullScalarOnAllDesigns) {
  for (const char* d : kDesigns) run_differential(d, SimEngineKind::Scalar);
}

TEST(Incremental, MatchesFullParallelOnAllDesigns) {
  for (const char* d : kDesigns) run_differential(d, SimEngineKind::Parallel);
}

TEST(Incremental, MatchesFullWithBitStats) {
  for (SimEngineKind engine : {SimEngineKind::Scalar, SimEngineKind::Parallel}) {
    Netlist nl = make_design1();
    IncrementalConfig cfg = make_cfg(engine, 256);
    cfg.bit_stats = true;
    IncrementalSession session(scalar_factory(7), lane_factory(7), cfg);
    for (int round = 0; round < 3; ++round) {
      const ActivityStats got = session.measure(nl, nullptr, nullptr);
      const ActivityStats want = full_reference(nl, cfg, 7, nullptr, nullptr, {});
      SCOPED_TRACE(testing::Message() << "engine=" << static_cast<int>(engine)
                                      << " round=" << round);
      expect_stats_equal(got, want);
      if (!isolate_one(nl, IsolationStyle::And)) break;
    }
  }
}

TEST(Incremental, OddLaneCountAndCycleSplit) {
  // Lane counts that do not divide the plane width and cycle counts
  // that do not divide the lanes stress the macro-cycle bookkeeping.
  Netlist nl = make_design2();
  IncrementalConfig cfg = make_cfg(SimEngineKind::Parallel, 500, 37, 23);
  IncrementalSession session(scalar_factory(3), lane_factory(3), cfg);
  for (int round = 0; round < 3; ++round) {
    const ActivityStats got = session.measure(nl, nullptr, nullptr);
    const ActivityStats want = full_reference(nl, cfg, 3, nullptr, nullptr, {});
    SCOPED_TRACE(testing::Message() << "round=" << round);
    expect_stats_equal(got, want);
    if (!isolate_one(nl, IsolationStyle::Or)) break;
  }
}

// Fixed-seed fuzz loop: random designs, random bank toggles between
// rounds, both engines — incremental must match full every time.
TEST(Incremental, FuzzRandomBankToggles) {
  std::mt19937_64 rng(0xC0FFEEu);
  const char* designs[] = {"fig1", "design1", "design2", "fir4.rtl"};
  for (int trial = 0; trial < 6; ++trial) {
    const std::string design = designs[trial % 4];
    const SimEngineKind engine =
        (rng() & 1) != 0 ? SimEngineKind::Parallel : SimEngineKind::Scalar;
    SCOPED_TRACE(testing::Message() << "trial=" << trial << " design=" << design);
    Netlist nl = make_named_design(design);
    const std::uint64_t seed = 1 + (rng() % 1000);
    const IncrementalConfig cfg = make_cfg(engine, 256, 16);
    IncrementalSession session(scalar_factory(seed), lane_factory(seed), cfg);
    const IsolationStyle styles[] = {IsolationStyle::And, IsolationStyle::Or,
                                     IsolationStyle::Latch};
    for (int round = 0; round < 4; ++round) {
      ExprPool pool;
      NetVarMap vars;
      const std::vector<ExprRef> probes = make_probes(nl, pool, vars);
      const ActivityStats got = session.measure(nl, &pool, &vars, [&probes](ProbeHost& sim) {
        for (ExprRef p : probes) (void)sim.add_probe(p);
      });
      const ActivityStats want = full_reference(nl, cfg, seed, &pool, &vars, probes);
      SCOPED_TRACE(testing::Message() << "round=" << round);
      expect_stats_equal(got, want);
      if (!isolate_one(nl, styles[rng() % 3], &rng)) break;
    }
  }
}

TEST(Incremental, TapeBudgetFallsBackToFull) {
  Netlist nl = make_design1();
  IncrementalConfig cfg = make_cfg(SimEngineKind::Scalar, 256);
  cfg.tape_budget_bytes = 1;  // nothing fits: every round must run in full
  IncrementalSession session(scalar_factory(1), lane_factory(1), cfg);
  for (int round = 0; round < 3; ++round) {
    const ActivityStats got = session.measure(nl, nullptr, nullptr);
    const ActivityStats want = full_reference(nl, cfg, 1, nullptr, nullptr, {});
    expect_stats_equal(got, want);
    if (!isolate_one(nl, IsolationStyle::And)) break;
  }
  EXPECT_FALSE(session.incremental_available());
  EXPECT_EQ(session.replays(), 0u);
  EXPECT_EQ(session.tape_bytes(), 0u);
}

TEST(Incremental, RebasesOnNonAppendEvolution) {
  // A structurally unrelated netlist cannot be expressed as an
  // append-only evolution: the session must rebase (fresh full run on
  // the new design) and still return oracle-identical statistics.
  const IncrementalConfig cfg = make_cfg(SimEngineKind::Scalar, 256);
  IncrementalSession session(scalar_factory(1), lane_factory(1), cfg);
  Netlist a = make_design1();
  expect_stats_equal(session.measure(a, nullptr, nullptr),
                     full_reference(a, cfg, 1, nullptr, nullptr, {}));
  Netlist b = make_fig1();
  expect_stats_equal(session.measure(b, nullptr, nullptr),
                     full_reference(b, cfg, 1, nullptr, nullptr, {}));
  EXPECT_EQ(session.full_runs(), 2u);
  // The rebase re-captured: an evolution of fig1 now replays.
  ASSERT_TRUE(isolate_one(b, IsolationStyle::And));
  expect_stats_equal(session.measure(b, nullptr, nullptr),
                     full_reference(b, cfg, 1, nullptr, nullptr, {}));
  EXPECT_EQ(session.replays(), 1u);
}

TEST(Incremental, VerifyStimulusAcceptsRoundInvariantFactory) {
  Netlist nl = make_design2();
  IncrementalConfig cfg = make_cfg(SimEngineKind::Scalar, 256);
  cfg.verify_stimulus = true;
  IncrementalSession session(scalar_factory(5), lane_factory(5), cfg);
  for (int round = 0; round < 2; ++round) {
    const ActivityStats got = session.measure(nl, nullptr, nullptr);
    expect_stats_equal(got, full_reference(nl, cfg, 5, nullptr, nullptr, {}));
    if (!isolate_one(nl, IsolationStyle::And)) break;
  }
  EXPECT_TRUE(session.incremental_available());
  EXPECT_GE(session.replays(), 1u);
}

TEST(Incremental, VerifyStimulusDetectsNonInvariantFactory) {
  // A factory that yields a different stream every call violates the
  // session contract; verify_stimulus must catch it during replay and
  // fall back to a (correct) full measurement permanently.
  Netlist nl = make_design1();
  IncrementalConfig cfg = make_cfg(SimEngineKind::Scalar, 256);
  cfg.verify_stimulus = true;
  std::uint64_t next_seed = 1;
  IncrementalSession session(
      [&next_seed] { return std::make_unique<UniformStimulus>(next_seed++); }, nullptr, cfg);
  (void)session.measure(nl, nullptr, nullptr);
  ASSERT_TRUE(isolate_one(nl, IsolationStyle::And));
  const ActivityStats got = session.measure(nl, nullptr, nullptr);
  EXPECT_FALSE(session.incremental_available());
  // The fallback round itself is a plain full run under seed 3 (the
  // replay consumed seed 2 before detecting the mismatch).
  expect_stats_equal(got, full_reference(nl, cfg, 3, nullptr, nullptr, {}));
}

// End-to-end: Algorithm 1 with the incremental session enabled must
// reproduce the non-incremental run exactly — records, iterations and
// power numbers — on both engines.
TEST(Incremental, IsolationLoopBitIdentical) {
  for (const char* d : {"fig1", "design1", "design2"}) {
    for (SimEngineKind engine : {SimEngineKind::Scalar, SimEngineKind::Parallel}) {
      SCOPED_TRACE(testing::Message() << "design=" << d << " engine="
                                      << static_cast<int>(engine));
      IsolationOptions opt;
      opt.sim_cycles = 1024;
      opt.sim_engine = engine;
      opt.lane_stimuli = lane_factory(1);
      opt.incremental = true;
      const IsolationResult inc = run_operand_isolation(
          make_named_design(d), scalar_factory(1), opt);
      opt.incremental = false;
      const IsolationResult full = run_operand_isolation(
          make_named_design(d), scalar_factory(1), opt);

      EXPECT_EQ(inc.records.size(), full.records.size());
      EXPECT_EQ(inc.iterations.size(), full.iterations.size());
      EXPECT_EQ(inc.power_before_mw, full.power_before_mw);
      EXPECT_EQ(inc.power_after_mw, full.power_after_mw);
      EXPECT_EQ(inc.area_after_um2, full.area_after_um2);
      for (std::size_t i = 0; i < std::min(inc.records.size(), full.records.size()); ++i) {
        EXPECT_EQ(inc.records[i].candidate, full.records[i].candidate);
        EXPECT_EQ(inc.records[i].style, full.records[i].style);
      }
      for (std::size_t i = 0; i < std::min(inc.iterations.size(), full.iterations.size());
           ++i) {
        EXPECT_EQ(inc.iterations[i].total_power_mw, full.iterations[i].total_power_mw);
        EXPECT_EQ(inc.iterations[i].num_isolated, full.iterations[i].num_isolated);
      }
    }
  }
}

}  // namespace
}  // namespace opiso
