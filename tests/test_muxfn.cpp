// Tests for multiplexing-function derivation (Sec. 4.1): fanin networks
// with g^k conditions and fanout-candidate discovery.
#include <gtest/gtest.h>

#include "boolfn/bdd.hpp"
#include "designs/designs.hpp"
#include "isolation/activation.hpp"
#include "isolation/muxfn.hpp"

namespace opiso {
namespace {

struct Ctx {
  Netlist nl;
  ExprPool pool;
  NetVarMap vars;

  explicit Ctx(Netlist design) : nl(std::move(design)) {}
  CellId cell(const std::string& out_net) { return nl.net(nl.find_net(out_net)).driver; }
  ExprRef v(const std::string& net) { return pool.var(vars.var_of(nl, nl.find_net(net))); }
  bool equivalent(ExprRef a, ExprRef b) {
    BddManager m;
    return m.equal(m.from_expr(pool, a), m.from_expr(pool, b));
  }
  CandidatePredicate arith_pred() {
    return [this](CellId id) { return cell_kind_is_arith(nl.cell(id).kind); };
  }
};

TEST(MuxFn, Fig1FaninOfA0MatchesPaper) {
  Ctx c(make_fig1(8));
  // Input A (port 0) of a0 is fed by a1 through m0/m1: g = S1·!S0.
  const FaninNetwork fan =
      derive_fanin_network(c.nl, c.pool, c.vars, c.cell("a0"), 0, c.arith_pred());
  ASSERT_EQ(fan.candidates.size(), 1u);
  EXPECT_EQ(fan.candidates[0].candidate, c.cell("a1"));
  EXPECT_TRUE(c.equivalent(fan.candidates[0].condition,
                           c.pool.land(c.v("S1"), c.pool.lnot(c.v("S0")))));
  // The same muxes can also steer C or E (primary inputs) to the pin.
  EXPECT_TRUE(fan.has_noncandidate_source);
}

TEST(MuxFn, Fig1FaninPortBHasNoCandidates) {
  Ctx c(make_fig1(8));
  const FaninNetwork fan =
      derive_fanin_network(c.nl, c.pool, c.vars, c.cell("a0"), 1, c.arith_pred());
  EXPECT_TRUE(fan.candidates.empty());
  EXPECT_TRUE(fan.has_noncandidate_source);
}

TEST(MuxFn, Fig1FanoutOfA1ReachesA0) {
  Ctx c(make_fig1(8));
  const auto fanouts = derive_fanout_candidates(c.nl, c.pool, c.vars, c.cell("a1"),
                                                c.arith_pred());
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_EQ(fanouts[0].candidate, c.cell("a0"));
  EXPECT_EQ(fanouts[0].port, 0);
  EXPECT_TRUE(c.equivalent(fanouts[0].condition,
                           c.pool.land(c.v("S1"), c.pool.lnot(c.v("S0")))));
}

TEST(MuxFn, DirectConnectionHasConditionOne) {
  // c_i directly wired into c_j (Fig. 3 of the paper): g = 1.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId en = nl.add_input("en", 1);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId s2 = nl.add_binop(CellKind::Add, "s2", s1, b);
  NetId r = nl.add_reg("r", s2, en);
  nl.add_output("o", r);
  Ctx c(std::move(nl));
  const auto fanouts =
      derive_fanout_candidates(c.nl, c.pool, c.vars, c.cell("s1"), c.arith_pred());
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_TRUE(c.pool.is_const1(fanouts[0].condition));
  EXPECT_EQ(fanouts[0].port, 0);
}

TEST(MuxFn, ParallelPathsOrTheirConditions) {
  // s1 reaches the consumer through both mux legs -> g = !sel + sel = 1.
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId sel = nl.add_input("sel", 1);
  NetId en = nl.add_input("en", 1);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId m = nl.add_mux2("m", sel, s1, s1);
  NetId s2 = nl.add_binop(CellKind::Add, "s2", m, b);
  NetId r = nl.add_reg("r", s2, en);
  nl.add_output("o", r);
  Ctx c(std::move(nl));
  const auto fanouts =
      derive_fanout_candidates(c.nl, c.pool, c.vars, c.cell("s1"), c.arith_pred());
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_TRUE(c.pool.is_const1(fanouts[0].condition));
}

TEST(MuxFn, StopsAtCandidatesInBetween) {
  // s1 -> s2 -> s3: fanout of s1 reports only s2 (paths terminate at the
  // first candidate; s3's exposure is s2's business).
  Netlist nl;
  NetId a = nl.add_input("a", 8);
  NetId b = nl.add_input("b", 8);
  NetId en = nl.add_input("en", 1);
  NetId s1 = nl.add_binop(CellKind::Add, "s1", a, b);
  NetId s2 = nl.add_binop(CellKind::Add, "s2", s1, b);
  NetId s3 = nl.add_binop(CellKind::Add, "s3", s2, b);
  NetId r = nl.add_reg("r", s3, en);
  nl.add_output("o", r);
  Ctx c(std::move(nl));
  const auto fanouts =
      derive_fanout_candidates(c.nl, c.pool, c.vars, c.cell("s1"), c.arith_pred());
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_EQ(fanouts[0].candidate, c.cell("s2"));
}

TEST(MuxFn, FanoutThroughRegistersIsCut) {
  // Sequential boundary: fanout candidates behind a register are not
  // reported (the f+_r = 1 cut).
  Netlist nl = make_design1(8);
  Ctx c(std::move(nl));
  const auto fanouts =
      derive_fanout_candidates(c.nl, c.pool, c.vars, c.cell("mul1"), c.arith_pred());
  EXPECT_TRUE(fanouts.empty());
}

TEST(MuxFn, Design1Add2FeedsAdd3) {
  Ctx c(make_design1(8));
  const auto fanouts =
      derive_fanout_candidates(c.nl, c.pool, c.vars, c.cell("add2"), c.arith_pred());
  ASSERT_EQ(fanouts.size(), 1u);
  EXPECT_EQ(fanouts[0].candidate, c.cell("add3"));
  EXPECT_TRUE(c.equivalent(fanouts[0].condition, c.pool.lnot(c.v("sel"))));
}

}  // namespace
}  // namespace opiso
