// Re-used core example: the paper's second motivating scenario —
// "re-used designs of which only part of the functionality is being
// used". A small ALU core supports add/sub/mul/compare behind an
// opcode-driven mux tree; the integrating design pins the opcode so the
// multiplier path is selected only rarely. Operand isolation recovers
// the power the unused modes burn.

#include <cstdio>

#include "isolation/algorithm.hpp"
#include "netlist/netlist.hpp"

namespace {

using namespace opiso;

/// A reusable 4-function ALU: op[1:0] selects among A+B, A-B, A*B
/// (truncated) and (A<B). All functions compute every cycle; the mux
/// tree discards all but one result — the textbook isolation target.
Netlist make_alu_core(unsigned width) {
  Netlist nl("reused_alu");
  const NetId a = nl.add_input("a", width);
  const NetId b = nl.add_input("b", width);
  const NetId op0 = nl.add_input("op0", 1);
  const NetId op1 = nl.add_input("op1", 1);
  const NetId en = nl.add_input("en", 1);

  const NetId sum = nl.add_binop(CellKind::Add, "sum", a, b);
  const NetId dif = nl.add_binop(CellKind::Sub, "dif", a, b);
  const NetId prd_full = nl.add_binop(CellKind::Mul, "prd_full", a, b);
  const NetId prd = nl.add_shift(CellKind::Shr, "prd", prd_full, width);  // high half
  // Comparator widened to the datapath width through a mux against 0/1.
  const NetId cmp = nl.add_binop(CellKind::Lt, "cmp", a, b);
  const NetId zero = nl.add_const("zero", 0, width);
  const NetId one = nl.add_const("one", 1, width);
  const NetId cmp_w = nl.add_mux2("cmp_w", cmp, zero, one);

  // Two result channels, each with its own opcode bit:
  //   out_lo: op0 selects A+B or A-B;
  //   out_hi: op1 selects the multiplier's high half or the comparison.
  const NetId lo = nl.add_mux2("lo", op0, sum, dif);
  const NetId hi = nl.add_mux2("hi", op1, cmp_w, prd);  // op1 = 1 selects the multiplier
  const NetId r_lo = nl.add_reg("r_lo", lo, en);
  const NetId r_hi = nl.add_reg("r_hi", hi, en);
  nl.add_output("out_lo", r_lo);
  nl.add_output("out_hi", r_hi);
  nl.validate();
  return nl;
}

}  // namespace

int main() {
  const Netlist core = make_alu_core(8);
  std::printf("re-used ALU core: %zu cells\n\n", core.num_cells());

  // The integrating design uses the core almost exclusively in ADD mode
  // (op = 00) and enables the result registers half of the time.
  auto make_stimuli = [](double mul_mode_prob) {
    return [mul_mode_prob]() -> std::unique_ptr<Stimulus> {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(11));
      comp->route("op0", std::make_unique<ControlledBitStimulus>(0.05, 0.05, 12));
      comp->route("op1",
                  std::make_unique<ControlledBitStimulus>(mul_mode_prob, 0.05, 13));
      comp->route("en", std::make_unique<ControlledBitStimulus>(0.5, 0.4, 14));
      return comp;
    };
  };

  std::printf("%-28s %10s %10s %9s\n", "integration scenario", "before", "after", "saved");
  for (double mul_prob : {0.02, 0.25, 0.75}) {
    IsolationOptions opt;
    opt.sim_cycles = 8192;
    const IsolationResult res =
        run_operand_isolation(core, make_stimuli(mul_prob), opt);
    char label[64];
    std::snprintf(label, sizeof label, "Pr[mul path selected]=%.2f", mul_prob);
    std::printf("%-28s %7.3f mW %7.3f mW %8.2f%%\n", label, res.power_before_mw,
                res.power_after_mw, res.power_reduction_pct());
  }
  std::printf("\nThe rarer the multiplier mode, the more of the re-used core's\n"
              "power the isolation banks recover.\n");
  return 0;
}
