// Quickstart: the complete operand-isolation flow on the paper's Fig.-1
// circuit in ~60 lines of API usage.
//
//   1. Build an RTL netlist with the builder API.
//   2. Derive the activation functions (Sec. 3).
//   3. Run the automated isolation algorithm (Sec. 5).
//   4. Compare power, area and slack before/after.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "designs/designs.hpp"
#include "isolation/activation.hpp"
#include "isolation/algorithm.hpp"

int main() {
  using namespace opiso;

  // --- 1. The design: two adders behind a mux/register steering
  // network (make_fig1 assembles it with Netlist::add_* calls).
  const Netlist design = make_fig1(8);
  std::printf("design '%s': %zu cells, %zu nets\n\n", design.name().c_str(),
              design.num_cells(), design.num_nets());

  // --- 2. Activation functions: one structural backward pass.
  {
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis aa = derive_activation(design, pool, vars);
    const Fig1Nets nets = fig1_nets(design);
    std::printf("derived activation signals (Sec. 3):\n");
    std::printf("  AS_a0 = %s\n",
                activation_to_string(design, pool, vars, aa.activation_of(design, nets.a0))
                    .c_str());
    std::printf("  AS_a1 = %s\n\n",
                activation_to_string(design, pool, vars, aa.activation_of(design, nets.a1))
                    .c_str());
  }

  // --- 3. Automated isolation. The stimulus mimics a datapath whose
  // results are consumed rarely: load enables are low-duty.
  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(1));
    comp->route("G0", std::make_unique<ControlledBitStimulus>(0.2, 0.2, 2));
    comp->route("G1", std::make_unique<ControlledBitStimulus>(0.2, 0.2, 3));
    return comp;
  };
  IsolationOptions options;
  options.style = IsolationStyle::And;  // the paper's recommended style
  options.sim_cycles = 8192;

  const IsolationResult result = run_operand_isolation(design, stimuli, options);

  // --- 4. Report.
  std::printf("isolated %zu module(s):\n", result.records.size());
  for (const IsolationRecord& rec : result.records) {
    std::printf("  %s: %u input bits behind %s banks, activation logic: %zu literals\n",
                result.netlist.cell(rec.candidate).name.c_str(), rec.isolated_bits,
                std::string(isolation_style_name(rec.style)).c_str(), rec.literal_count);
  }
  std::printf("\npower:  %.3f mW -> %.3f mW  (-%.1f%%)\n", result.power_before_mw,
              result.power_after_mw, result.power_reduction_pct());
  std::printf("area:   %.0f um^2 -> %.0f um^2  (+%.2f%%)\n", result.area_before_um2,
              result.area_after_um2, result.area_increase_pct());
  std::printf("slack:  %.2f ns -> %.2f ns\n", result.slack_before_ns, result.slack_after_ns);
  return 0;
}
