// DSP MAC example: the control-dominated scenario from the paper's
// introduction — a multi-lane multiply-accumulate datapath sequenced by
// an FSM so that each arithmetic module works only in a few states.
// Shows the per-iteration decision log of Algorithm 1 and the power
// breakdown by category.

#include <cstdio>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"
#include "power/estimator.hpp"

int main() {
  using namespace opiso;

  const Netlist design = make_design2(8, 4);  // four MAC lanes
  std::printf("design '%s': %zu cells (%zu lanes x {mul, acc-add, sub})\n\n",
              design.name().c_str(), design.num_cells(), static_cast<std::size_t>(4));

  const StimulusFactory stimuli = [] {
    auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(7));
    comp->route("start", std::make_unique<ControlledBitStimulus>(0.8, 0.25, 8));
    return comp;
  };

  IsolationOptions options;
  options.sim_cycles = 8192;
  options.omega_a = 0.02;

  const IsolationResult result = run_operand_isolation(design, stimuli, options);

  std::printf("iteration log (one candidate per combinational block per pass):\n");
  for (const IterationLog& log : result.iterations) {
    std::printf("  iter %d: total %.3f mW, %zu isolated\n", log.iteration, log.total_power_mw,
                log.num_isolated);
    for (const CandidateEvaluation& ev : log.evaluations) {
      if (!ev.isolated_now) continue;
      std::printf("    + %-10s Pr(redundant)=%.2f  primary %.4f + secondary %.4f "
                  "- overhead %.4f mW, h=%.4f\n",
                  ev.cell_name.c_str(), ev.pr_redundant, ev.primary_mw, ev.secondary_mw,
                  ev.overhead_mw, ev.h);
      std::printf("      AS = %s\n", ev.activation_str.c_str());
    }
  }

  // Power breakdown of the final design.
  Simulator sim(result.netlist);
  auto stim = stimuli();
  sim.run(*stim, 8192);
  const PowerBreakdown pb = PowerEstimator().estimate(result.netlist, sim.stats());
  std::printf("\nfinal power breakdown: arith %.3f, steering %.3f, sequential %.3f, "
              "isolation overhead %.3f mW\n",
              pb.arith_mw, pb.steering_mw, pb.sequential_mw, pb.isolation_mw);
  std::printf("total: %.3f mW -> %.3f mW (-%.1f%%), area +%.2f%%\n", result.power_before_mw,
              result.power_after_mw, result.power_reduction_pct(),
              result.area_increase_pct());
  return 0;
}
