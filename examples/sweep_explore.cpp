// Design-space exploration example: use the library as a what-if tool.
// For a given design, sweep the isolation style against the activation
// duty cycle and print which style wins where — the analysis behind the
// paper's conclusion that combinational isolation should be preferred.

#include <cstdio>

#include "designs/designs.hpp"
#include "isolation/algorithm.hpp"

int main() {
  using namespace opiso;
  const Netlist design = make_design1(8);

  std::printf("style x duty-cycle exploration on design1 (power reduction %%)\n\n");
  std::printf("%12s %10s %10s %10s   best\n", "Pr[act=1]", "AND", "OR", "LAT");

  for (double p1 : {0.05, 0.2, 0.5, 0.8}) {
    const StimulusFactory stimuli = [p1] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(42));
      comp->route("act", std::make_unique<ControlledBitStimulus>(
                             p1, 0.5 * 2.0 * std::min(p1, 1.0 - p1), 43));
      return comp;
    };
    double best_red = -1e9;
    const char* best = "-";
    std::printf("%12.2f", p1);
    for (IsolationStyle style :
         {IsolationStyle::And, IsolationStyle::Or, IsolationStyle::Latch}) {
      IsolationOptions opt;
      opt.style = style;
      opt.sim_cycles = 6144;
      const IsolationResult res = run_operand_isolation(design, stimuli, opt);
      const double red = res.power_reduction_pct();
      std::printf(" %9.2f%%", red);
      if (red > best_red) {
        best_red = red;
        best = isolation_style_name(style).data();
      }
    }
    std::printf("   %s\n", best);
  }
  std::printf(
      "\nExpected: gate-based styles match or beat latches when the module\n"
      "idles in long runs (the paper's Sec.-6 observation); latches only\n"
      "catch up when the activation signal toggles every few cycles.\n");
  return 0;
}
