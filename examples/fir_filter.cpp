// FIR-filter example driven through the RTL language frontend: a 4-tap
// filter with a power-down input. When `enable` is low the accumulator
// holds and all four multipliers plus the adder tree compute redundantly
// — operand isolation recovers that power. Demonstrates the textual
// front door (parse_rtl) and duty-cycle sensitivity.

#include <cstdio>

#include "frontend/rtl_parser.hpp"
#include "isolation/activation.hpp"
#include "isolation/algorithm.hpp"

namespace {

constexpr const char* kFirRtl = R"(
design fir4
input x:8
input enable
const one:1 = 1
const c0:8 = 3
const c1:8 = 7
const c2:8 = 7
const c3:8 = 3
reg d1:8 = x when one
reg d2:8 = d1 when one
reg d3:8 = d2 when one
wire p0 = x * c0
wire p1 = d1 * c1
wire p2 = d2 * c2
wire p3 = d3 * c3
wire s01 = p0 + p1
wire s23 = p2 + p3
wire y = s01 + s23
reg acc:16 = y when enable
output out = acc
)";

}  // namespace

int main() {
  using namespace opiso;
  const Netlist fir = parse_rtl(kFirRtl);
  std::printf("fir4 (from RTL text): %zu cells\n\n", fir.num_cells());

  {
    ExprPool pool;
    NetVarMap vars;
    const ActivationAnalysis aa = derive_activation(fir, pool, vars);
    std::printf("every arithmetic module derives AS = enable:\n");
    for (CellId id : fir.cell_ids()) {
      if (!cell_kind_is_arith(fir.cell(id).kind)) continue;
      std::printf("  %-4s: AS = %s\n", fir.cell(id).name.c_str(),
                  activation_to_string(fir, pool, vars, aa.activation_of(fir, id)).c_str());
    }
  }

  std::printf("\n%-24s %10s %10s %9s %9s\n", "duty cycle of enable", "before", "after",
              "saved", "modules");
  for (double duty : {0.9, 0.5, 0.1}) {
    const StimulusFactory stimuli = [duty] {
      auto comp = std::make_unique<CompositeStimulus>(std::make_unique<UniformStimulus>(5));
      comp->route("enable", std::make_unique<ControlledBitStimulus>(duty, 0.1, 6));
      return comp;
    };
    IsolationOptions opt;
    opt.sim_cycles = 8192;
    const IsolationResult res = run_operand_isolation(fir, stimuli, opt);
    std::printf("Pr[enable]=%.1f            %7.3f mW %7.3f mW %8.2f%% %9zu\n", duty,
                res.power_before_mw, res.power_after_mw, res.power_reduction_pct(),
                res.records.size());
  }
  std::printf("\nThe lower the duty cycle, the closer the filter's power\n"
              "approaches the cost of its registers alone.\n");
  return 0;
}
