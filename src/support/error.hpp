#pragma once
// Error handling foundation for the opiso library.
//
// All library errors derive from opiso::Error (itself a std::runtime_error)
// so callers can catch library failures distinctly from standard-library
// failures. OPISO_REQUIRE is used to validate preconditions at API
// boundaries; internal invariants use OPISO_ASSERT which compiles to a
// check in all build types (netlist corruption must never propagate
// silently into power numbers).

#include <sstream>
#include <stdexcept>
#include <string>

namespace opiso {

/// Base class of every exception thrown by the opiso library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a netlist violates structural invariants (bad widths,
/// multiple drivers, combinational cycles, dangling references).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed textual input (.rtn netlists, stimulus files).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown when a simulation is driven inconsistently (missing stimulus,
/// probing unknown nets, zero simulated cycles).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_require_failure(const char* cond, const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace opiso

#define OPISO_REQUIRE(cond, msg)                                                      \
  do {                                                                                \
    if (!(cond)) ::opiso::detail::throw_require_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define OPISO_ASSERT(cond, msg) OPISO_REQUIRE(cond, msg)
