#pragma once
// Forwarding header: the error taxonomy moved to util/error.hpp when it
// grew stable error codes, severities, and a JSON rendering (PR 4). All
// legacy class names (Error, NetlistError, ParseError, SimError) and the
// OPISO_REQUIRE / OPISO_ASSERT macros are defined there; existing
// includes of "support/error.hpp" keep working unchanged.

#include "util/error.hpp"
