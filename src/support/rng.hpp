#pragma once
// Deterministic pseudo-random number generation for stimulus and tests.
//
// A thin wrapper around xoshiro256** with convenience draws used by the
// stimulus generators: uniform words, Bernoulli bits with exact
// probability, and range draws. Deterministic seeding keeps every
// experiment in EXPERIMENTS.md byte-reproducible.

#include <array>
#include <cstdint>

namespace opiso {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform word restricted to `width` low bits (width in [1,64]).
  std::uint64_t next_bits(unsigned width) {
    const std::uint64_t w = next_u64();
    return width >= 64 ? w : (w & ((std::uint64_t{1} << width) - 1));
  }

  /// Uniform double in [0,1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw: true with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_u64() % (hi - lo + 1);
  }

  /// Raw xoshiro state, for engines that advance many Rngs in lockstep
  /// structure-of-arrays form (sim/parallel_sim.cpp). Round-tripping
  /// through state()/set_state() preserves the output sequence exactly.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (unsigned i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace opiso
