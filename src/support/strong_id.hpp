#pragma once
// Strongly typed index wrappers.
//
// Netlists, BDD managers and expression pools are all index-based arenas;
// mixing a CellId with a NetId is the classic EDA bug. StrongId<Tag> makes
// each id a distinct type with no implicit conversions while remaining a
// trivially copyable 32-bit value.

#include <cstdint>
#include <functional>
#include <limits>

namespace opiso {

template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }

 private:
  value_type value_ = kInvalid;
};

}  // namespace opiso

namespace std {
template <typename Tag>
struct hash<opiso::StrongId<Tag>> {
  size_t operator()(opiso::StrongId<Tag> id) const noexcept {
    return std::hash<typename opiso::StrongId<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
