#include "lint/lint.hpp"

#include <algorithm>
#include <ostream>

#include "lint/passes.hpp"

namespace opiso::lint {

std::size_t LintReport::count(Severity at_least) const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (static_cast<int>(f.severity) >= static_cast<int>(at_least)) ++n;
  }
  return n;
}

const Finding* LintReport::worst() const {
  const Finding* best = nullptr;
  for (const Finding& f : findings) {
    if (best == nullptr || static_cast<int>(f.severity) > static_cast<int>(best->severity)) {
      best = &f;
    }
  }
  return best;
}

LintContext::LintContext(const Netlist& nl, const LintOptions& options,
                         const SourceMap* source_map)
    : nl_(nl), options_(options), source_map_(source_map) {}

const std::vector<std::vector<CellId>>& LintContext::comb_sccs() {
  if (!sccs_) sccs_ = combinational_sccs(nl_);
  return *sccs_;
}

bool LintContext::acyclic() { return comb_sccs().empty(); }

const ActivationAnalysis& LintContext::activation() {
  OPISO_REQUIRE(acyclic(), "observability requires an acyclic design");
  if (!activation_) activation_ = derive_activation(nl_, pool_, vars_);
  return *activation_;
}

const TimingReport& LintContext::sta() {
  OPISO_REQUIRE(acyclic(), "STA requires an acyclic design");
  if (!sta_) sta_ = run_sta(nl_, options_.delay);
  return *sta_;
}

int LintContext::cell_line(CellId id) const {
  return source_map_ == nullptr ? 0 : source_map_->cell_line(nl_.cell(id).name);
}

int LintContext::net_line(NetId id) const {
  return source_map_ == nullptr ? 0 : source_map_->net_line(nl_.net(id).name);
}

PassRegistry& PassRegistry::instance() {
  static PassRegistry registry;
  return registry;
}

PassRegistry::PassRegistry() {
  // Explicit construction: these live in the same static library, and a
  // self-registering static initializer in an otherwise unreferenced
  // object file would be dropped by the linker.
  register_pass(make_comb_loop_pass());
  register_pass(make_width_pass());
  register_pass(make_drivers_pass());
  register_pass(make_dead_logic_pass());
  register_pass(make_isolation_soundness_pass());
  register_pass(make_isolation_overhead_pass());
}

void PassRegistry::register_pass(std::unique_ptr<LintPass> pass) {
  OPISO_REQUIRE(pass != nullptr, "null lint pass");
  for (const auto& existing : passes_) {
    OPISO_REQUIRE(existing->name() != pass->name(),
                  "duplicate lint pass '" + std::string(pass->name()) + "'");
  }
  passes_.push_back(std::move(pass));
}

LintReport run_lint(const Netlist& nl, const LintOptions& options,
                    const SourceMap* source_map) {
  LintReport report;
  report.design = nl.name();
  LintContext ctx(nl, options, source_map);

  auto selected = [&](std::string_view name) {
    if (options.only_passes.empty()) return true;
    return std::any_of(options.only_passes.begin(), options.only_passes.end(),
                       [&](const std::string& s) { return s == name; });
  };

  for (const auto& pass : PassRegistry::instance().passes()) {
    if (!selected(pass->name())) continue;
    PassResult result;
    result.pass = std::string(pass->name());
    if (pass->requires_acyclic() && !ctx.acyclic()) {
      result.skipped = true;
      result.note = "skipped: design has combinational cycles";
      report.passes.push_back(std::move(result));
      continue;
    }
    std::vector<Finding> found;
    pass->run(ctx, found, result.note);
    auto severity_override = options.pass_severity.find(result.pass);
    for (Finding& f : found) {
      f.pass = result.pass;
      if (severity_override != options.pass_severity.end()) {
        f.severity = severity_override->second;
      }
    }
    result.num_findings = found.size();
    report.findings.insert(report.findings.end(), std::make_move_iterator(found.begin()),
                           std::make_move_iterator(found.end()));
    report.passes.push_back(std::move(result));
  }
  return report;
}

obs::JsonValue build_lint_report(const LintReport& report) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.lint/v1";
  doc["design"] = report.design;

  obs::JsonValue passes = obs::JsonValue::array();
  for (const PassResult& p : report.passes) {
    obs::JsonValue row = obs::JsonValue::object();
    row["pass"] = p.pass;
    row["findings"] = static_cast<unsigned long long>(p.num_findings);
    row["skipped"] = p.skipped;
    if (!p.note.empty()) row["note"] = p.note;
    passes.push_back(std::move(row));
  }
  doc["passes"] = std::move(passes);

  obs::JsonValue findings = obs::JsonValue::array();
  for (const Finding& f : report.findings) {
    obs::JsonValue row = obs::JsonValue::object();
    row["code"] = error_code_name(f.code);
    row["severity"] = severity_name(f.severity);
    row["pass"] = f.pass;
    row["message"] = f.message;
    if (!f.cells.empty()) {
      obs::JsonValue cells = obs::JsonValue::array();
      for (const std::string& c : f.cells) cells.push_back(c);
      row["cells"] = std::move(cells);
    }
    if (!f.nets.empty()) {
      obs::JsonValue nets = obs::JsonValue::array();
      for (const std::string& n : f.nets) nets.push_back(n);
      row["nets"] = std::move(nets);
    }
    if (f.source_line > 0) row["source_line"] = f.source_line;
    findings.push_back(std::move(row));
  }
  doc["findings"] = std::move(findings);

  obs::JsonValue totals = obs::JsonValue::object();
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Finding& f : report.findings) {
    if (static_cast<int>(f.severity) >= static_cast<int>(Severity::Error)) {
      ++errors;
    } else {
      ++warnings;
    }
  }
  totals["errors"] = static_cast<unsigned long long>(errors);
  totals["warnings"] = static_cast<unsigned long long>(warnings);
  doc["totals"] = std::move(totals);
  return doc;
}

void print_lint_text(std::ostream& os, const LintReport& report, const std::string& subject) {
  for (const Finding& f : report.findings) {
    os << subject << ':';
    if (f.source_line > 0) os << f.source_line << ':';
    os << ' ' << severity_name(f.severity) << '[' << error_code_name(f.code) << "] " << f.pass
       << ": " << f.message << '\n';
  }
  const std::size_t errors = report.count(Severity::Error);
  const std::size_t warnings = report.findings.size() - errors;
  if (report.findings.empty()) {
    os << subject << ": clean (" << report.passes.size() << " passes)\n";
  } else {
    os << subject << ": " << errors << " error(s), " << warnings << " warning(s)\n";
  }
}

void throw_on_findings(const LintReport& report, Severity fail_on, const std::string& subject) {
  const Finding* worst = nullptr;
  for (const Finding& f : report.findings) {
    if (static_cast<int>(f.severity) < static_cast<int>(fail_on)) continue;
    if (worst == nullptr || static_cast<int>(f.severity) > static_cast<int>(worst->severity)) {
      worst = &f;
    }
  }
  if (worst == nullptr) return;
  std::string msg = "lint rejected '" + subject + "': " + worst->message;
  const std::size_t more = report.count(fail_on) - 1;
  if (more > 0) msg += " (+" + std::to_string(more) + " more finding(s))";
  throw Error(worst->code, msg, worst->severity, SourceLoc{}, worst->source_line);
}

}  // namespace opiso::lint
