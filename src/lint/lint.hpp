#pragma once
// Pass-based static analysis of word-level netlists (`opiso lint`).
//
// Each pass inspects one well-formedness or isolation-correctness
// property and reports structured findings: a stable `lint.*` error
// code from the shared taxonomy (util/error.hpp), a severity, the
// net/cell names involved, and — when the design came from a textual
// source and a SourceMap is supplied — the 1-based input line.
//
// Built-in passes (registration order):
//   comb_loop            combinational cycles (iterative Tarjan SCC)
//   width                width mismatches / silent truncation
//   drivers              undriven, multiply-driven and dangling nets
//   dead_logic           logic no register or primary output observes
//                        (structural reachability + Sec.-3 observability)
//   isolation_soundness  per inserted bank, a BDD proof that AS = 0
//                        implies the guarded module's output is
//                        unobserved this cycle (budget-guarded; blown
//                        budgets degrade to "unproven" warnings)
//   isolation_overhead   AS gating depth cross-checked against STA slack
//
// The framework is open: PassRegistry accepts external passes, and
// LintContext shares the lazily computed artifacts (SCCs, topological
// order, observability functions, timing report) between passes so a
// full lint of a design stays well under a second.

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "boolfn/bdd.hpp"
#include "boolfn/expr.hpp"
#include "isolation/activation.hpp"
#include "netlist/netlist.hpp"
#include "netlist/source_map.hpp"
#include "netlist/traversal.hpp"
#include "obs/json.hpp"
#include "sim/activity.hpp"
#include "timing/delay_model.hpp"
#include "timing/sta.hpp"
#include "util/error.hpp"

namespace opiso::lint {

/// One structured finding. `code` is the stable wire name
/// (error_code_name), the same code a sweep pre-flight rejection or a
/// parse-time rejection of the defect would carry.
struct Finding {
  ErrCode code = ErrCode::Internal;
  Severity severity = Severity::Warning;
  std::string pass;                 ///< pass that produced the finding
  std::string message;              ///< human-readable, one line
  std::vector<std::string> cells;   ///< cells involved (may be empty)
  std::vector<std::string> nets;    ///< nets involved (may be empty)
  int source_line = 0;              ///< 1-based input line (0 = unknown)
};

/// Analysis knobs.
struct LintOptions {
  /// Budget for the isolation-soundness proofs (and the BDD refinement
  /// of dead-logic findings). Exceeding it degrades the affected check
  /// to a `lint.isolation_unproven` warning instead of failing the run.
  BddBudget bdd{1u << 20, 0};

  /// Delay model for the isolation-overhead pass.
  DelayModel delay;

  /// Slack below which an isolation bank's output is flagged by the
  /// overhead pass (ns). 0 flags only nets that actually violate timing.
  double overhead_slack_threshold_ns = 0.0;

  /// Run only the named passes (empty = all registered passes).
  std::vector<std::string> only_passes;

  /// Per-pass severity overrides: every finding of the named pass is
  /// reported at the given severity instead of its default.
  std::unordered_map<std::string, Severity> pass_severity;
};

/// Per-pass outcome recorded in the report.
struct PassResult {
  std::string pass;
  std::size_t num_findings = 0;
  bool skipped = false;
  std::string note;  ///< skip reason or degradation note ("" = none)
};

struct LintReport {
  std::string design;
  std::vector<Finding> findings;
  std::vector<PassResult> passes;

  /// Number of findings at or above `at_least`.
  [[nodiscard]] std::size_t count(Severity at_least) const;
  /// True when at least one finding is at or above `fail_on` — the
  /// CLI's exit-1 condition.
  [[nodiscard]] bool fails(Severity fail_on) const { return count(fail_on) > 0; }
  /// Most severe finding, if any.
  [[nodiscard]] const Finding* worst() const;
};

/// Shared per-run state handed to every pass. Heavy artifacts are
/// computed on first use and cached; passes that only need the raw
/// netlist never pay for STA or observability derivation.
class LintContext {
 public:
  LintContext(const Netlist& nl, const LintOptions& options, const SourceMap* source_map);

  [[nodiscard]] const Netlist& nl() const { return nl_; }
  [[nodiscard]] const LintOptions& options() const { return options_; }

  /// Combinational SCCs (cycles). Safe on invalid netlists.
  const std::vector<std::vector<CellId>>& comb_sccs();
  /// True when the design has no combinational cycle. Passes that walk
  /// in dependency order are skipped on cyclic designs (the comb_loop
  /// pass already reported the cycles).
  bool acyclic();

  /// Sec.-3 observability functions (requires an acyclic design).
  const ActivationAnalysis& activation();
  ExprPool& pool() { return pool_; }
  NetVarMap& vars() { return vars_; }

  /// Timing report under options().delay (requires an acyclic design).
  const TimingReport& sta();

  /// Source line of a cell/net (0 when no SourceMap or not recorded).
  [[nodiscard]] int cell_line(CellId id) const;
  [[nodiscard]] int net_line(NetId id) const;

 private:
  const Netlist& nl_;
  const LintOptions& options_;
  const SourceMap* source_map_;
  std::optional<std::vector<std::vector<CellId>>> sccs_;
  ExprPool pool_;
  NetVarMap vars_;
  std::optional<ActivationAnalysis> activation_;
  std::optional<TimingReport> sta_;
};

/// One analysis pass. Implementations must be stateless across runs
/// (the registry instantiates each pass once and reuses it).
class LintPass {
 public:
  virtual ~LintPass() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Passes that need a dependency order (observability, STA) return
  /// true and are skipped — with a note — on cyclic designs.
  [[nodiscard]] virtual bool requires_acyclic() const { return true; }
  /// Append findings; may record a degradation note for the report.
  virtual void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) = 0;
};

/// Registry of available passes, in registration order. Built-in passes
/// are registered on first access; custom passes may be added after.
class PassRegistry {
 public:
  static PassRegistry& instance();
  void register_pass(std::unique_ptr<LintPass> pass);
  [[nodiscard]] const std::vector<std::unique_ptr<LintPass>>& passes() const { return passes_; }

 private:
  PassRegistry();
  std::vector<std::unique_ptr<LintPass>> passes_;
};

/// Run all (or options.only_passes) registered passes over `nl`.
[[nodiscard]] LintReport run_lint(const Netlist& nl, const LintOptions& options = {},
                                  const SourceMap* source_map = nullptr);

/// Build the `opiso.lint/v1` report document.
[[nodiscard]] obs::JsonValue build_lint_report(const LintReport& report);

/// Human-readable rendering: one "<subject>:<line>: severity[code]
/// pass: message" line per finding plus a summary line.
void print_lint_text(std::ostream& os, const LintReport& report, const std::string& subject);

/// Throw the worst finding at or above `fail_on` as an Error carrying
/// its lint.* code — the sweep pre-flight hook, so rejected designs are
/// recorded in opiso.task_failures/v1 under the lint code.
void throw_on_findings(const LintReport& report, Severity fail_on, const std::string& subject);

}  // namespace opiso::lint
