// Structural passes: combinational loops, width hygiene, driver/fanout
// consistency. None of these need a dependency order, so they run (and
// report) even on designs validate() rejects.

#include <algorithm>
#include <string>

#include "lint/passes.hpp"

namespace opiso::lint {

namespace {

std::string wname(const Netlist& nl, NetId id) {
  const Net& n = nl.net(id);
  return "'" + n.name + "' (" + std::to_string(n.width) + "b)";
}

// --------------------------------------------------------------- comb_loop
class CombLoopPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "comb_loop"; }
  [[nodiscard]] std::string_view description() const override {
    return "combinational cycles (Tarjan SCC over the cell graph)";
  }
  [[nodiscard]] bool requires_acyclic() const override { return false; }

  void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) override {
    (void)note;
    const Netlist& nl = ctx.nl();
    for (const std::vector<CellId>& scc : ctx.comb_sccs()) {
      Finding f;
      f.code = ErrCode::LintCombLoop;
      f.severity = Severity::Error;
      f.message = "combinational cycle through " + describe_comb_cycle(nl, scc);
      for (CellId id : scc) {
        f.cells.push_back(nl.cell(id).name);
        if (f.source_line == 0) f.source_line = ctx.cell_line(id);
      }
      out.push_back(std::move(f));
    }
  }
};

// ------------------------------------------------------------------- width
class WidthPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "width"; }
  [[nodiscard]] std::string_view description() const override {
    return "operand width mismatches and silent truncation";
  }
  [[nodiscard]] bool requires_acyclic() const override { return false; }

  void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) override {
    (void)note;
    const Netlist& nl = ctx.nl();
    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      auto report = [&](ErrCode code, Severity severity, std::string message,
                        std::vector<NetId> nets) {
        Finding f;
        f.code = code;
        f.severity = severity;
        f.message = std::move(message);
        f.cells.push_back(c.name);
        for (NetId n : nets) f.nets.push_back(nl.net(n).name);
        f.source_line = ctx.cell_line(id);
        out.push_back(std::move(f));
      };

      switch (c.kind) {
        case CellKind::Add:
        case CellKind::Sub:
        case CellKind::Mul:
        case CellKind::Eq:
        case CellKind::Lt:
        case CellKind::And:
        case CellKind::Or:
        case CellKind::Xor:
        case CellKind::Nand:
        case CellKind::Nor:
        case CellKind::Xnor: {
          const unsigned wa = nl.net(c.ins[0]).width;
          const unsigned wb = nl.net(c.ins[1]).width;
          if (wa != wb) {
            report(ErrCode::LintWidth, Severity::Warning,
                   std::string(cell_kind_name(c.kind)) + " '" + c.name +
                       "' mixes operand widths " + wname(nl, c.ins[0]) + " vs " +
                       wname(nl, c.ins[1]) + " (narrow side zero-extends)",
                   {c.ins[0], c.ins[1]});
          }
          if (c.kind == CellKind::Mul && wa + wb > 64) {
            report(ErrCode::LintWidth, Severity::Warning,
                   "mul '" + c.name + "' full product needs " + std::to_string(wa + wb) +
                       " bits; result truncates to 64",
                   {c.ins[0], c.ins[1]});
          }
          break;
        }
        case CellKind::Shl:
        case CellKind::Shr: {
          const unsigned w = nl.net(c.ins[0]).width;
          if (c.param >= w) {
            report(ErrCode::LintWidth, Severity::Warning,
                   std::string(cell_kind_name(c.kind)) + " '" + c.name + "' shifts a " +
                       std::to_string(w) + "-bit value by " + std::to_string(c.param) +
                       " — the result is constant 0",
                   {c.ins[0]});
          }
          break;
        }
        case CellKind::Mux2: {
          const unsigned wa = nl.net(c.ins[1]).width;
          const unsigned wb = nl.net(c.ins[2]).width;
          if (wa != wb) {
            report(ErrCode::LintWidth, Severity::Warning,
                   "mux '" + c.name + "' legs differ: " + wname(nl, c.ins[1]) + " vs " +
                       wname(nl, c.ins[2]) + " (narrow leg zero-extends)",
                   {c.ins[1], c.ins[2]});
          }
          break;
        }
        default:
          break;
      }

      // Defensive: the add_* builders make this unconstructible, but a
      // hand-mutated or future-deserialized netlist may disagree with
      // the width rules — that is data corruption, not style.
      if (c.out.valid() && c.kind != CellKind::PrimaryInput && c.kind != CellKind::Constant) {
        const unsigned expected = nl.infer_width(c.kind, c.ins, c.param);
        if (nl.net(c.out).width != expected) {
          report(ErrCode::LintWidth, Severity::Error,
                 "cell '" + c.name + "' output " + wname(nl, c.out) + " contradicts inferred width " +
                     std::to_string(expected),
                 {c.out});
        }
      }
    }
  }
};

// ----------------------------------------------------------------- drivers
class DriversPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "drivers"; }
  [[nodiscard]] std::string_view description() const override {
    return "undriven, multiply-driven and dangling nets";
  }
  [[nodiscard]] bool requires_acyclic() const override { return false; }

  void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) override {
    (void)note;
    const Netlist& nl = ctx.nl();

    // Count drivers per net from the cell side; the net's own `driver`
    // field must agree. add_cell enforces single drivers, so anything
    // found here means the structure was mutated behind the API's back.
    std::vector<int> driver_count(nl.num_nets(), 0);
    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      if (c.out.valid()) ++driver_count[c.out.value()];
    }

    for (NetId id : nl.net_ids()) {
      const Net& net = nl.net(id);
      auto report = [&](ErrCode code, Severity severity, std::string message) {
        Finding f;
        f.code = code;
        f.severity = severity;
        f.message = std::move(message);
        f.nets.push_back(net.name);
        f.source_line = ctx.net_line(id);
        out.push_back(std::move(f));
      };

      if (!net.driver.valid() || driver_count[id.value()] == 0) {
        report(ErrCode::LintUndriven, Severity::Error,
               "net " + wname(nl, id) + " has no driver");
        continue;
      }
      if (driver_count[id.value()] > 1) {
        report(ErrCode::LintMultiDriven, Severity::Error,
               "net " + wname(nl, id) + " is driven by " +
                   std::to_string(driver_count[id.value()]) + " cell outputs");
      }
      if (nl.cell(net.driver).out != id) {
        report(ErrCode::LintMultiDriven, Severity::Error,
               "net " + wname(nl, id) + " names driver '" + nl.cell(net.driver).name +
                   "' whose output is a different net");
      }
      for (const Pin& pin : net.fanouts) {
        const Cell& sink = nl.cell(pin.cell);
        if (pin.port < 0 || static_cast<std::size_t>(pin.port) >= sink.ins.size() ||
            sink.ins[static_cast<std::size_t>(pin.port)] != id) {
          report(ErrCode::LintMultiDriven, Severity::Error,
                 "net " + wname(nl, id) + " fanout pin (" + sink.name + ", port " +
                     std::to_string(pin.port) + ") disagrees with the sink's input list");
        }
      }
      if (net.fanouts.empty()) {
        report(ErrCode::LintDangling, Severity::Warning,
               "net " + wname(nl, id) + " drives nothing");
      }
    }
  }
};

}  // namespace

std::unique_ptr<LintPass> make_comb_loop_pass() { return std::make_unique<CombLoopPass>(); }
std::unique_ptr<LintPass> make_width_pass() { return std::make_unique<WidthPass>(); }
std::unique_ptr<LintPass> make_drivers_pass() { return std::make_unique<DriversPass>(); }

}  // namespace opiso::lint
