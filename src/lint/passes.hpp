#pragma once
// Internal: factories for the built-in lint passes. PassRegistry calls
// these explicitly — static-initializer registration would be dropped by
// the linker for unreferenced objects in a static library.

#include <memory>

#include "lint/lint.hpp"

namespace opiso::lint {

std::unique_ptr<LintPass> make_comb_loop_pass();
std::unique_ptr<LintPass> make_width_pass();
std::unique_ptr<LintPass> make_drivers_pass();
std::unique_ptr<LintPass> make_dead_logic_pass();
std::unique_ptr<LintPass> make_isolation_soundness_pass();
std::unique_ptr<LintPass> make_isolation_overhead_pass();

}  // namespace opiso::lint
