// Semantic passes: dead logic, isolation soundness, isolation overhead.
// These require an acyclic design (they consume the Sec.-3 observability
// derivation and STA); the framework skips them, with a note, when the
// comb_loop pass has findings.

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "lint/passes.hpp"

namespace opiso::lint {

namespace {

/// Grounds 1-bit nets (and observability expressions over them) to BDDs
/// over a common leaf set: primary inputs, register/latch outputs,
/// constants (folded) and any net driven by a cell the grounding cannot
/// expand (wide operands). Expanding through the 1-bit control logic is
/// what makes the soundness check meaningful — the synthesized AS logic
/// and the derived observability function must meet in the same
/// variable space, not each behind an opaque variable of its own.
class NetGrounder {
 public:
  NetGrounder(LintContext& ctx, BddManager& mgr) : ctx_(ctx), mgr_(mgr) {}

  BddRef of_net(NetId net) {
    const Netlist& nl = ctx_.nl();
    std::vector<std::uint32_t> stack{net.value()};
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      if (net_memo_.count(n) != 0) {
        stack.pop_back();
        continue;
      }
      const NetId nid{n};
      const Cell& drv = nl.cell(nl.net(nid).driver);
      if (!expandable(nl, drv)) {
        net_memo_[n] = leaf(nid, drv);
        stack.pop_back();
        continue;
      }
      bool ready = true;
      for (NetId in : drv.ins) {
        if (net_memo_.count(in.value()) == 0) {
          stack.push_back(in.value());
          ready = false;
        }
      }
      if (!ready) continue;
      net_memo_[n] = combine(drv);
      stack.pop_back();
    }
    return net_memo_.at(net.value());
  }

  /// Ground an observability expression: Var v → of_net(net carrying v).
  BddRef of_expr(ExprRef e) {
    const ExprPool& pool = ctx_.pool();
    std::vector<ExprRef> stack{e};
    while (!stack.empty()) {
      const ExprRef r = stack.back();
      if (expr_memo_.count(r.value()) != 0) {
        stack.pop_back();
        continue;
      }
      const ExprNode& node = pool.node(r);
      switch (node.op) {
        case ExprOp::Const0: expr_memo_[r.value()] = mgr_.zero(); break;
        case ExprOp::Const1: expr_memo_[r.value()] = mgr_.one(); break;
        case ExprOp::Var:
          expr_memo_[r.value()] = of_net(ctx_.vars().net_of(node.var));
          break;
        case ExprOp::Not: {
          auto it = expr_memo_.find(node.a.value());
          if (it == expr_memo_.end()) {
            stack.push_back(node.a);
            continue;
          }
          expr_memo_[r.value()] = mgr_.bnot(it->second);
          break;
        }
        case ExprOp::And:
        case ExprOp::Or: {
          auto ia = expr_memo_.find(node.a.value());
          auto ib = expr_memo_.find(node.b.value());
          if (ia == expr_memo_.end() || ib == expr_memo_.end()) {
            if (ia == expr_memo_.end()) stack.push_back(node.a);
            if (ib == expr_memo_.end()) stack.push_back(node.b);
            continue;
          }
          expr_memo_[r.value()] = node.op == ExprOp::And ? mgr_.band(ia->second, ib->second)
                                                         : mgr_.bor(ia->second, ib->second);
          break;
        }
      }
      stack.pop_back();
    }
    return expr_memo_.at(e.value());
  }

  BddManager& mgr() { return mgr_; }

 private:
  static bool one_bit_ins(const Netlist& nl, const Cell& c) {
    return std::all_of(c.ins.begin(), c.ins.end(),
                       [&](NetId in) { return nl.net(in).width == 1; });
  }

  static bool expandable(const Netlist& nl, const Cell& c) {
    if (!c.out.valid() || nl.net(c.out).width != 1 || !one_bit_ins(nl, c)) return false;
    switch (c.kind) {
      case CellKind::Not:
      case CellKind::Buf:
      case CellKind::And:
      case CellKind::Or:
      case CellKind::Xor:
      case CellKind::Nand:
      case CellKind::Nor:
      case CellKind::Xnor:
      case CellKind::Eq:
      case CellKind::Lt:
      case CellKind::Add:
      case CellKind::Sub:
      case CellKind::Mux2:
      case CellKind::IsoAnd:
      case CellKind::IsoOr:
      case CellKind::Constant:
        return true;
      default:
        // PI / Reg / Latch / IsoLatch carry state or stimulus; wide
        // arithmetic and shifts stay opaque.
        return false;
    }
  }

  BddRef leaf(NetId net, const Cell& drv) {
    if (drv.kind == CellKind::Constant) {
      return (drv.param & 1u) != 0 ? mgr_.one() : mgr_.zero();
    }
    return mgr_.var(ctx_.vars().var_of(ctx_.nl(), net));
  }

  BddRef combine(const Cell& c) {
    auto in = [&](std::size_t i) { return net_memo_.at(c.ins[i].value()); };
    switch (c.kind) {
      case CellKind::Constant: return (c.param & 1u) != 0 ? mgr_.one() : mgr_.zero();
      case CellKind::Not: return mgr_.bnot(in(0));
      case CellKind::Buf: return in(0);
      case CellKind::And: return mgr_.band(in(0), in(1));
      case CellKind::Or: return mgr_.bor(in(0), in(1));
      case CellKind::Xor: return mgr_.bxor(in(0), in(1));
      case CellKind::Nand: return mgr_.bnot(mgr_.band(in(0), in(1)));
      case CellKind::Nor: return mgr_.bnot(mgr_.bor(in(0), in(1)));
      case CellKind::Xnor: return mgr_.bnot(mgr_.bxor(in(0), in(1)));
      case CellKind::Eq: return mgr_.bnot(mgr_.bxor(in(0), in(1)));
      case CellKind::Lt: return mgr_.band(mgr_.bnot(in(0)), in(1));
      // 1-bit modular add/sub are XOR.
      case CellKind::Add:
      case CellKind::Sub: return mgr_.bxor(in(0), in(1));
      case CellKind::Mux2: return mgr_.ite(in(0), in(2), in(1));
      case CellKind::IsoAnd: return mgr_.band(in(0), in(1));
      case CellKind::IsoOr: return mgr_.bor(in(0), mgr_.bnot(in(1)));
      default: break;
    }
    OPISO_REQUIRE(false, "NetGrounder::combine on non-expandable cell");
    return mgr_.zero();
  }

  LintContext& ctx_;
  BddManager& mgr_;
  std::unordered_map<std::uint32_t, BddRef> net_memo_;
  std::unordered_map<std::uint32_t, BddRef> expr_memo_;
};

/// One satisfying assignment of f over its support, rendered with net
/// names ("sel=0, en1=1"). At most `max_vars` variables are printed.
std::string render_counterexample(BddManager& mgr, const NetVarMap& vars, const Netlist& nl,
                                  BddRef f, std::size_t max_vars = 6) {
  std::string s;
  BddRef cur = f;
  std::size_t printed = 0;
  for (BoolVar v : mgr.support(f)) {
    const BddRef hi = mgr.restrict_var(cur, v, true);
    const bool val = !mgr.is_zero(hi);
    cur = val ? hi : mgr.restrict_var(cur, v, false);
    if (printed++ >= max_vars) {
      s += ", ...";
      break;
    }
    if (!s.empty()) s += ", ";
    s += nl.net(vars.net_of(v)).name + "=" + (val ? "1" : "0");
  }
  return s.empty() ? "any assignment" : s;
}

// -------------------------------------------------------------- dead_logic
class DeadLogicPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "dead_logic"; }
  [[nodiscard]] std::string_view description() const override {
    return "logic no register or primary output can observe";
  }

  void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) override {
    const Netlist& nl = ctx.nl();

    // Structural liveness: a net is live when a primary output or a
    // register consumes it (directly or through combinational logic).
    std::vector<bool> net_live(nl.num_nets(), false);
    std::vector<NetId> work;
    auto mark = [&](NetId n) {
      if (!net_live[n.value()]) {
        net_live[n.value()] = true;
        work.push_back(n);
      }
    };
    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      if (c.kind == CellKind::PrimaryOutput || c.kind == CellKind::Reg) {
        for (NetId in : c.ins) mark(in);
      }
    }
    while (!work.empty()) {
      const NetId n = work.back();
      work.pop_back();
      for (NetId in : nl.cell(nl.net(n).driver).ins) mark(in);
    }

    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      if (c.kind == CellKind::PrimaryInput || c.kind == CellKind::Constant ||
          c.kind == CellKind::PrimaryOutput || c.kind == CellKind::Reg) {
        continue;
      }
      if (!c.out.valid() || net_live[c.out.value()]) continue;
      Finding f;
      f.code = ErrCode::LintDeadLogic;
      f.severity = Severity::Warning;
      f.message = std::string(cell_kind_name(c.kind)) + " '" + c.name +
                  "' is unreachable from every register and primary output";
      f.cells.push_back(c.name);
      f.nets.push_back(nl.net(c.out).name);
      f.source_line = ctx.cell_line(id);
      out.push_back(std::move(f));
    }

    // Semantic refinement for the expensive cells: an arithmetic module
    // can be structurally connected yet never observed — its Sec.-3
    // observability function is constant 0 (e.g. a mux select tied so
    // the module's leg is never chosen).
    const ActivationAnalysis& act = ctx.activation();
    BddManager mgr(ctx.options().bdd);
    NetGrounder grounder(ctx, mgr);
    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      if (!cell_kind_is_arith(c.kind) || !c.out.valid() || !net_live[c.out.value()]) continue;
      const ExprRef obs = act.obs[c.out.value()];
      bool dead = ctx.pool().is_const0(obs);
      if (!dead && !ctx.pool().is_const1(obs)) {
        try {
          dead = mgr.is_zero(grounder.of_expr(obs));
        } catch (const ResourceError& e) {
          note = std::string("observability refinement degraded: ") + e.what();
          continue;
        }
      }
      if (!dead) continue;
      Finding f;
      f.code = ErrCode::LintDeadLogic;
      f.severity = Severity::Warning;
      f.message = std::string(cell_kind_name(c.kind)) + " '" + c.name +
                  "' is connected but never observed (observability is constant 0)";
      f.cells.push_back(c.name);
      f.nets.push_back(nl.net(c.out).name);
      f.source_line = ctx.cell_line(id);
      out.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------- isolation_soundness
class IsolationSoundnessPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "isolation_soundness"; }
  [[nodiscard]] std::string_view description() const override {
    return "BDD proof that AS = 0 implies the guarded output is unobserved";
  }

  void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) override {
    (void)note;
    const Netlist& nl = ctx.nl();

    // One proof obligation per (guarded module, AS net): every bank cell
    // of one isolation transform shares both, so the per-pin cells
    // collapse to a single check.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<CellId>> groups;
    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      if (!cell_kind_is_isolation(c.kind)) continue;
      for (const Pin& pin : nl.net(c.out).fanouts) {
        groups[{pin.cell.value(), c.ins[1].value()}].push_back(id);
      }
    }
    if (groups.empty()) return;

    const ActivationAnalysis& act = ctx.activation();
    BddManager mgr(ctx.options().bdd);
    NetGrounder grounder(ctx, mgr);

    for (const auto& [key, banks] : groups) {
      const CellId consumer{key.first};
      const NetId as_net{key.second};
      const Cell& cons = nl.cell(consumer);
      // The invariant guards the *module output*: when AS = 0 the
      // consumer's result must be unobservable this cycle, otherwise the
      // bank is forcing wrong operand values into live logic.
      const NetId guarded = cons.out.valid() ? cons.out : nl.cell(banks.front()).out;
      const ExprRef obs = act.obs[guarded.value()];

      auto finding = [&](ErrCode code, Severity severity, std::string message) {
        Finding f;
        f.code = code;
        f.severity = severity;
        f.message = std::move(message);
        f.cells.push_back(cons.name);
        for (CellId b : banks) f.cells.push_back(nl.cell(b).name);
        f.nets.push_back(nl.net(as_net).name);
        f.source_line = ctx.cell_line(consumer);
        out.push_back(std::move(f));
      };

      try {
        const BddRef obs_bdd = grounder.of_expr(obs);
        const BddRef as_bdd = grounder.of_net(as_net);
        if (mgr.implies(obs_bdd, as_bdd)) continue;
        const BddRef violation = mgr.band(obs_bdd, mgr.bnot(as_bdd));
        finding(ErrCode::LintIsolationUnsound, Severity::Error,
                "isolation of '" + cons.name + "' via AS '" + nl.net(as_net).name +
                    "' is unsound: the output is observable while AS = 0 (e.g. " +
                    render_counterexample(mgr, ctx.vars(), nl, violation) + ")");
      } catch (const ResourceError& e) {
        finding(ErrCode::LintIsolationUnproven, Severity::Warning,
                "soundness of isolating '" + cons.name + "' via AS '" + nl.net(as_net).name +
                    "' is unproven: " + e.what());
      }
    }
  }
};

// ----------------------------------------------------- isolation_overhead
class IsolationOverheadPass final : public LintPass {
 public:
  [[nodiscard]] std::string_view name() const override { return "isolation_overhead"; }
  [[nodiscard]] std::string_view description() const override {
    return "AS gating depth cross-checked against STA slack";
  }

  void run(LintContext& ctx, std::vector<Finding>& out, std::string& note) override {
    (void)note;
    const Netlist& nl = ctx.nl();
    std::vector<CellId> iso_cells;
    for (CellId id : nl.cell_ids()) {
      if (cell_kind_is_isolation(nl.cell(id).kind)) iso_cells.push_back(id);
    }
    if (iso_cells.empty()) return;

    const TimingReport& timing = ctx.sta();

    // Gate depth of every net (levels of combinational cells from the
    // nearest sequential/stimulus source) — how deep the synthesized AS
    // logic sits in front of the bank it drives.
    std::vector<unsigned> depth(nl.num_nets(), 0);
    for (CellId id : topological_order(nl)) {
      const Cell& c = nl.cell(id);
      if (!c.out.valid()) continue;
      if (c.kind == CellKind::PrimaryInput || c.kind == CellKind::Constant ||
          c.kind == CellKind::Reg) {
        continue;
      }
      unsigned d = 0;
      for (NetId in : c.ins) d = std::max(d, depth[in.value()]);
      depth[c.out.value()] = d + 1;
    }

    const double threshold = ctx.options().overhead_slack_threshold_ns;
    for (CellId id : iso_cells) {
      const Cell& c = nl.cell(id);
      const double slack = timing.net_slack(c.out);
      if (slack >= threshold) continue;
      Finding f;
      f.code = ErrCode::LintIsolationOverhead;
      f.severity = Severity::Warning;
      f.message = "isolation bank '" + c.name + "' output slack " + std::to_string(slack) +
                  " ns is below " + std::to_string(threshold) + " ns; its AS net '" +
                  nl.net(c.ins[1]).name + "' sits " + std::to_string(depth[c.ins[1].value()]) +
                  " gate levels deep";
      f.cells.push_back(c.name);
      f.nets.push_back(nl.net(c.ins[1]).name);
      f.source_line = ctx.cell_line(id);
      out.push_back(std::move(f));
    }
  }
};

}  // namespace

std::unique_ptr<LintPass> make_dead_logic_pass() { return std::make_unique<DeadLogicPass>(); }
std::unique_ptr<LintPass> make_isolation_soundness_pass() {
  return std::make_unique<IsolationSoundnessPass>();
}
std::unique_ptr<LintPass> make_isolation_overhead_pass() {
  return std::make_unique<IsolationOverheadPass>();
}

}  // namespace opiso::lint
