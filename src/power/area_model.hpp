#pragma once
// Cell area model (µm², 0.25µm-class standard cells).
//
// The isolation cost model (Sec. 5.1) charges area for the isolation
// banks ("readily given by the number of input bits to isolate") and for
// the activation logic (literal count of the factored activation
// function). Datapath modules get width-proportional areas except the
// multiplier, which grows quadratically.

#include "netlist/netlist.hpp"

namespace opiso {

struct AreaModel {
  [[nodiscard]] double cell_area_um2(CellKind kind, unsigned width) const;
  [[nodiscard]] double cell_area_um2(const Cell& cell) const {
    return cell_area_um2(cell.kind, cell.width);
  }
  /// Sum over all cells.
  [[nodiscard]] double total_area_um2(const Netlist& nl) const;
};

}  // namespace opiso
