#include "power/area_model.hpp"

namespace opiso {

double AreaModel::cell_area_um2(CellKind kind, unsigned width) const {
  const double w = static_cast<double>(width);
  switch (kind) {
    case CellKind::PrimaryInput:
    case CellKind::PrimaryOutput:
    case CellKind::Constant:
      return 0.0;
    case CellKind::Add:
    case CellKind::Sub:
      return 210.0 * w;
    case CellKind::Mul:
      return 95.0 * w * w;
    case CellKind::Eq:
    case CellKind::Lt:
      return 60.0 * w;
    case CellKind::Shl:
    case CellKind::Shr:
      return 4.0 * w;
    case CellKind::Not:
    case CellKind::Buf:
      return 9.0 * w;
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Nand:
    case CellKind::Nor:
      return 14.0 * w;
    case CellKind::Xor:
    case CellKind::Xnor:
      return 22.0 * w;
    case CellKind::Mux2:
      return 26.0 * w;
    case CellKind::Reg:
      return 85.0 * w;
    case CellKind::Latch:
    case CellKind::IsoLatch:
      return 55.0 * w;
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
      return 14.0 * w;
  }
  return 0.0;
}

double AreaModel::total_area_um2(const Netlist& nl) const {
  double total = 0.0;
  for (CellId id : nl.cell_ids()) total += cell_area_um2(nl.cell(id));
  return total;
}

}  // namespace opiso
