#pragma once
// Macro power models p_i(Tr) — Sec. 4.1.
//
// The paper assumes that for every isolation candidate a macro power
// model is available that maps input toggle rates to power (Landman-
// style RT-level macro models [5,7]). We provide one per cell kind:
//
//   P(mW) = f_clk * [ Σ_ports E_port(kind, width) * Tr_port
//                     + E_static(kind, width) ]
//
// where Tr_port is the average number of bit toggles per cycle at that
// port over the full word (the simulator's measurement), E_port is an
// effective switched energy per input bit toggle — growing with width
// for datapath modules because one input toggle ripples through O(w)
// internal nodes (adders) or O(w) rows (multipliers) — and E_static is
// a small width-proportional idle/leakage/clock term.
//
// Registers additionally burn clock energy every cycle regardless of
// data activity; that term is what makes latch-based isolation banks
// more expensive than AND/OR banks and reproduces the paper's headline
// secondary finding (Sec. 6).
//
// The evaluation interface deliberately takes hypothetical toggle rates:
// the savings model (Sec. 4.2/4.3) queries p_j(0, TrB) and
// p_j(Tr', TrB) for rates that were never simulated.

#include <span>

#include "netlist/cell.hpp"

namespace opiso {

struct MacroPowerModel {
  double clock_freq_mhz = 100.0;

  /// Effective switched energy (pJ) per bit toggle at input `port`.
  [[nodiscard]] double energy_per_toggle_pj(CellKind kind, unsigned width, int port) const;

  /// Activity-independent energy (pJ) per cycle (clock/leakage).
  [[nodiscard]] double static_energy_pj(CellKind kind, unsigned width) const;

  /// Module power (mW) for the given per-port toggle rates
  /// (toggles/cycle over the full word). Port count must match the kind.
  [[nodiscard]] double module_power_mw(CellKind kind, unsigned width,
                                       std::span<const double> input_toggle_rates) const;

  /// Two-input convenience overload (the paper's p_i(TrA, TrB)).
  [[nodiscard]] double module_power_mw(CellKind kind, unsigned width, double tr_a,
                                       double tr_b) const;
};

}  // namespace opiso
