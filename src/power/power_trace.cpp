#include "power/power_trace.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace opiso {

namespace {
// The pJ coefficients are defined on a 0.001 pJ grid (macro_model.cpp:
// base + slope·w with millesimal constants and integer widths), so the
// nearest integer femtojoule IS the intended value; rounding only
// removes the binary representation error of e.g. 0.035·w.
std::int64_t to_fj(double pj) { return std::llround(pj * 1000.0); }
}  // namespace

std::int64_t energy_per_toggle_fj(const MacroPowerModel& model, CellKind kind, unsigned width,
                                  int port) {
  return to_fj(model.energy_per_toggle_pj(kind, width, port));
}

std::int64_t static_energy_fj(const MacroPowerModel& model, CellKind kind, unsigned width) {
  return to_fj(model.static_energy_pj(kind, width));
}

double PowerTrace::avg_power_mw() const {
  if (cycles == 0) return 0.0;
  const double pj = static_cast<double>(total_energy_fj) / 1000.0;
  return pj / static_cast<double>(lane_cycles()) * clock_freq_mhz * 1e-3;
}

double PowerTrace::sample_power_mw(std::size_t s) const {
  OPISO_REQUIRE(s < num_samples(), "PowerTrace: sample index out of range");
  if (sample_cycles[s] == 0) return 0.0;
  const double pj = static_cast<double>(total_fj[s]) / 1000.0;
  const double lc = static_cast<double>(sample_cycles[s]) * static_cast<double>(lanes);
  return pj / lc * clock_freq_mhz * 1e-3;
}

std::uint64_t cell_energy_fj(const Netlist& nl, const ActivityStats& stats, CellId cell,
                             const MacroPowerModel& model) {
  const Cell& c = nl.cell(cell);
  std::uint64_t e = static_cast<std::uint64_t>(static_energy_fj(model, c.kind, c.width)) *
                    stats.cycles;
  for (std::size_t p = 0; p < c.ins.size(); ++p) {
    const std::uint64_t toggles = stats.toggles[c.ins[p].value()];
    e += static_cast<std::uint64_t>(
             energy_per_toggle_fj(model, c.kind, c.width, static_cast<int>(p))) *
         toggles;
  }
  return e;
}

PowerTrace compute_power_trace(const Netlist& nl, const CycleTrace& trace,
                               const MacroPowerModel& model) {
  OPISO_SPAN("power.trace");
  OPISO_REQUIRE(trace.num_nets() == 0 || trace.num_nets() == nl.num_nets(),
                "compute_power_trace: trace was captured from a different netlist");
  const std::size_t ns = trace.num_samples();
  const std::size_t nc = nl.num_cells();

  PowerTrace pt;
  pt.cycles = trace.cycles();
  pt.lanes = trace.lanes() == 0 ? 1 : trace.lanes();
  pt.window = trace.window();
  pt.clock_freq_mhz = model.clock_freq_mhz;
  pt.sample_cycles.resize(ns);
  pt.total_fj.assign(ns, 0);
  pt.arith_fj.assign(ns, 0);
  pt.steering_fj.assign(ns, 0);
  pt.sequential_fj.assign(ns, 0);
  pt.isolation_fj.assign(ns, 0);
  pt.cell_fj.assign(nc, {});
  pt.cell_toggles.assign(nc, {});
  pt.cell_total_fj.assign(nc, 0);
  pt.cell_total_toggles.assign(nc, 0);
  for (std::size_t s = 0; s < ns; ++s) pt.sample_cycles[s] = trace.sample_cycles(s);

  // Hoist the integer coefficients out of the sample loop: one static +
  // per-port toggle coefficient per cell, fixed for the whole trace.
  std::vector<std::uint64_t> stat_fj(nc);
  std::vector<std::vector<std::uint64_t>> port_fj(nc);
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    stat_fj[id.value()] =
        static_cast<std::uint64_t>(static_energy_fj(model, c.kind, c.width));
    auto& pf = port_fj[id.value()];
    pf.reserve(c.ins.size());
    for (std::size_t p = 0; p < c.ins.size(); ++p) {
      pf.push_back(static_cast<std::uint64_t>(
          energy_per_toggle_fj(model, c.kind, c.width, static_cast<int>(p))));
    }
  }

  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    const std::size_t ci = id.value();
    auto& cell_series = pt.cell_fj[ci];
    auto& tog_series = pt.cell_toggles[ci];
    cell_series.assign(ns, 0);
    tog_series.assign(ns, 0);
    for (std::size_t s = 0; s < ns; ++s) {
      const auto& toggles = trace.sample_toggles(s);
      const std::uint64_t lc = pt.sample_cycles[s] * pt.lanes;
      std::uint64_t e = stat_fj[ci] * lc;
      std::uint64_t tog = 0;
      for (std::size_t p = 0; p < c.ins.size(); ++p) {
        const std::uint64_t t = toggles[c.ins[p].value()];
        e += port_fj[ci][p] * t;
        tog += t;
      }
      cell_series[s] = e;
      tog_series[s] = tog;
      pt.cell_total_fj[ci] += e;
      pt.cell_total_toggles[ci] += tog;
      pt.total_fj[s] += e;
      if (cell_kind_is_arith(c.kind)) {
        pt.arith_fj[s] += e;
      } else if (cell_kind_is_isolation(c.kind)) {
        pt.isolation_fj[s] += e;
      } else if (c.kind == CellKind::Reg || c.kind == CellKind::Latch) {
        pt.sequential_fj[s] += e;
      } else {
        pt.steering_fj[s] += e;
      }
    }
    pt.total_energy_fj += pt.cell_total_fj[ci];
  }
  obs::metrics().counter("power.traces").add(1);
  obs::metrics().counter("power.trace_samples").add(ns);
  return pt;
}

}  // namespace opiso
