#include "power/macro_model.hpp"

#include <array>

#include "support/error.hpp"

namespace opiso {

double MacroPowerModel::energy_per_toggle_pj(CellKind kind, unsigned width, int port) const {
  const double w = static_cast<double>(width);
  switch (kind) {
    case CellKind::PrimaryInput:
    case CellKind::PrimaryOutput:
    case CellKind::Constant:
      return 0.0;
    case CellKind::Add:
    case CellKind::Sub:
      // One input-bit toggle flips ~O(w) carry-chain nodes on average.
      return 0.10 + 0.035 * w;
    case CellKind::Mul:
      // Array multiplier: an input toggle disturbs a whole row/column.
      return 0.18 + 0.085 * w;
    case CellKind::Eq:
    case CellKind::Lt:
      return 0.06 + 0.010 * w;
    case CellKind::Shl:
    case CellKind::Shr:
      return 0.01;  // fixed shifts are wiring
    case CellKind::Not:
    case CellKind::Buf:
      return 0.015;
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Nand:
    case CellKind::Nor:
      return 0.030;
    case CellKind::Xor:
    case CellKind::Xnor:
      return 0.045;
    case CellKind::Mux2:
      // Select (port 0) swings the whole word; data ports pass one bit.
      return port == 0 ? 0.030 * w : 0.035;
    case CellKind::Reg:
    case CellKind::Latch:
      // D toggles (port 0) charge the storage node; EN (port 1) gates.
      return port == 0 ? 0.060 : 0.020;
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
      // AS (port 1) swings the whole isolation bank.
      return port == 1 ? 0.030 * w : 0.030;
    case CellKind::IsoLatch:
      return port == 1 ? 0.045 * w : 0.060;
  }
  return 0.0;
}

double MacroPowerModel::static_energy_pj(CellKind kind, unsigned width) const {
  const double w = static_cast<double>(width);
  switch (kind) {
    case CellKind::Reg:
      // Clock tree + internal clock buffers toggle every cycle.
      return 0.050 * w;
    case CellKind::Latch:
    case CellKind::IsoLatch:
      // A transparent latch is storage: its enable network presents a
      // clock-like per-cycle load and the cell leaks like a FF, not a
      // gate — the paper's "power overhead induced by the latches" that
      // lets gate-based isolation win (Sec. 6).
      return 0.055 * w;
    case CellKind::Mul:
      return 0.004 * w * w;
    case CellKind::Add:
    case CellKind::Sub:
      return 0.004 * w;
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
      return 0.002 * w;
    default:
      return 0.001 * w;
  }
}

double MacroPowerModel::module_power_mw(CellKind kind, unsigned width,
                                        std::span<const double> input_toggle_rates) const {
  double energy_pj = static_energy_pj(kind, width);
  for (std::size_t p = 0; p < input_toggle_rates.size(); ++p) {
    OPISO_REQUIRE(input_toggle_rates[p] >= 0.0, "toggle rates must be non-negative");
    energy_pj +=
        energy_per_toggle_pj(kind, width, static_cast<int>(p)) * input_toggle_rates[p];
  }
  // P[mW] = E[pJ/cycle] * f[MHz] * 1e-3.
  return energy_pj * clock_freq_mhz * 1e-3;
}

double MacroPowerModel::module_power_mw(CellKind kind, unsigned width, double tr_a,
                                        double tr_b) const {
  const std::array<double, 2> rates{tr_a, tr_b};
  return module_power_mw(kind, width, rates);
}

}  // namespace opiso
