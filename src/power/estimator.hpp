#pragma once
// Whole-netlist power estimation — the DesignPower-equivalent (Sec. 6).
//
// Sums every cell's macro-model power evaluated at the toggle rates the
// simulator measured at that cell's input nets. Produces a per-cell and
// per-category breakdown so experiments can report where the savings
// came from (isolated modules vs. isolation-circuitry overhead).

#include <vector>

#include "power/area_model.hpp"
#include "power/macro_model.hpp"
#include "sim/activity.hpp"

namespace opiso {

struct PowerBreakdown {
  std::vector<double> cell_mw;       ///< per cell (indexed by CellId value)
  double total_mw = 0.0;
  double arith_mw = 0.0;             ///< arithmetic datapath modules
  double steering_mw = 0.0;          ///< muxes, gates, shifters, comparators
  double sequential_mw = 0.0;        ///< registers and plain latches
  double isolation_mw = 0.0;         ///< IsoAnd/IsoOr/IsoLatch overhead

  [[nodiscard]] double cell_power_mw(CellId id) const { return cell_mw[id.value()]; }
};

class PowerEstimator {
 public:
  explicit PowerEstimator(MacroPowerModel model = {}) : model_(model) {}

  /// Toggle rates at a cell's input nets, in port order.
  [[nodiscard]] std::vector<double> input_toggle_rates(const Netlist& nl,
                                                       const ActivityStats& stats,
                                                       CellId cell) const;

  /// Power of a single cell at the measured activity.
  [[nodiscard]] double cell_power_mw(const Netlist& nl, const ActivityStats& stats,
                                     CellId cell) const;

  [[nodiscard]] PowerBreakdown estimate(const Netlist& nl, const ActivityStats& stats) const;

  /// Exact per-net sensitivity dP_total/dTr_net in mW per (toggle/
  /// cycle): the macro model is strictly linear in every port's toggle
  /// rate, so total power is static_mw + Σ_n weight_n · Tr_n. The
  /// confidence layer turns per-net batch toggle counts into a
  /// design-power confidence interval through this vector without any
  /// re-estimation.
  [[nodiscard]] std::vector<double> net_toggle_weights(const Netlist& nl) const;

  [[nodiscard]] const MacroPowerModel& model() const { return model_; }

 private:
  MacroPowerModel model_;
};

}  // namespace opiso
