#pragma once
// Per-cycle energy waveform — the temporal counterpart of PowerEstimator.
//
// The macro model is affine in the toggle counts: a cell's energy over
// any set of cycles is
//
//   E = E_static * lane_cycles + Σ_ports E_port * toggles_port
//
// with coefficients that are exact multiples of 1 fJ (macro_model.cpp
// defines them as millesimal pJ values scaled by integer widths). This
// module evaluates that identity per trace sample in *integer
// femtojoules*, which buys an exact accounting invariant:
//
//   Σ_samples cell_fj[c][s]  ==  cell_energy_fj(c, aggregate stats)
//
// bit-for-bit, for every cell and any window size — integer addition is
// associative, unlike double accumulation. The double-precision bridge
// back to the estimator's mW world is exact too when driven through the
// same code path: CycleTrace::to_activity_stats() feeds PowerEstimator
// the identical toggle totals and cycle count, so the re-estimated
// total_mw equals the aggregate run's total_mw bit-for-bit. Only
// avg_power_mw(), which converts the integer integral directly, may
// differ from the estimator total in the last bits of a double
// (documented tolerance: < 1e-9 relative; see DESIGN.md).

#include <cstdint>
#include <vector>

#include "power/estimator.hpp"
#include "sim/cycle_trace.hpp"

namespace opiso {

/// Exact integer-femtojoule view of a macro-model coefficient.
/// energy_per_toggle_pj / static_energy_pj are defined on a 0.001 pJ
/// grid, so round-to-nearest recovers the intended integer exactly.
[[nodiscard]] std::int64_t energy_per_toggle_fj(const MacroPowerModel& model, CellKind kind,
                                                unsigned width, int port);
[[nodiscard]] std::int64_t static_energy_fj(const MacroPowerModel& model, CellKind kind,
                                            unsigned width);

/// Per-sample, per-cell energy waveform of a traced run. Sample s of a
/// window-W trace covers lane_cycles(s) = sample_cycles(s) * lanes
/// lane-cycles; all energies are integer femtojoules.
struct PowerTrace {
  std::uint64_t cycles = 0;  ///< macro-cycles traced
  unsigned lanes = 1;
  std::uint64_t window = 1;
  double clock_freq_mhz = 100.0;

  std::vector<std::uint64_t> sample_cycles;  ///< macro-cycles per sample
  std::vector<std::uint64_t> total_fj;       ///< per sample, all cells
  std::vector<std::uint64_t> arith_fj;       ///< per sample, by category
  std::vector<std::uint64_t> steering_fj;
  std::vector<std::uint64_t> sequential_fj;
  std::vector<std::uint64_t> isolation_fj;

  std::vector<std::vector<std::uint64_t>> cell_fj;       ///< [cell][sample]
  std::vector<std::vector<std::uint64_t>> cell_toggles;  ///< [cell][sample] input toggles
  std::vector<std::uint64_t> cell_total_fj;              ///< [cell]
  std::vector<std::uint64_t> cell_total_toggles;         ///< [cell]
  std::uint64_t total_energy_fj = 0;

  [[nodiscard]] std::size_t num_samples() const { return total_fj.size(); }
  [[nodiscard]] std::uint64_t lane_cycles() const { return cycles * lanes; }

  /// Average power of the whole trace / of one sample, from the integer
  /// integral: P[mW] = E[fJ] / lane_cycles / 1000 * f[MHz] * 1e-3.
  [[nodiscard]] double avg_power_mw() const;
  [[nodiscard]] double sample_power_mw(std::size_t s) const;
};

/// Evaluate the macro model over every trace sample. The trace must be
/// finished and cover the same netlist (net count is checked).
[[nodiscard]] PowerTrace compute_power_trace(const Netlist& nl, const CycleTrace& trace,
                                             const MacroPowerModel& model = {});

/// The aggregate side of the accounting identity: the cell's whole-run
/// energy in integer fJ from aggregate statistics. compute_power_trace's
/// per-cell sample sums equal this exactly.
[[nodiscard]] std::uint64_t cell_energy_fj(const Netlist& nl, const ActivityStats& stats,
                                           CellId cell, const MacroPowerModel& model = {});

}  // namespace opiso
