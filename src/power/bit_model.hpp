#pragma once
// Bit-position-aware macro power model (dual-bit-type flavored).
//
// The paper's macro models (Sec. 4.1, citing Landman [5]) map input
// toggle rates to power. The plain MacroPowerModel charges every input
// bit toggle the same effective energy; that is exact for uniform white
// noise but overestimates datapath modules fed with *correlated* data,
// where the high-order (sign/magnitude) bits rarely toggle — and a
// low-order toggle in an adder ripples through the longest carry tail.
//
// BitLevelMacroModel charges each input bit of the positional kinds
// (add/sub/mul/compare) proportionally to its downstream tail:
//
//   E(bit i) = E_word(kind) · (W − i) / mean_j(W − j)
//
// so LSB toggles (long carry tails / many partial-product columns) cost
// more than MSB toggles, while the *mean* per-toggle energy equals the
// word-level model's — under uniform per-bit activity both models agree
// exactly, and they diverge only for the non-uniform bit profiles of
// correlated data. bench_power_models validates both against gate-level
// reference measurements of the lowered netlists.

#include "power/macro_model.hpp"
#include "sim/activity.hpp"

namespace opiso {

struct BitLevelMacroModel {
  double clock_freq_mhz = 100.0;

  /// Effective energy (pJ) of one toggle at bit `bit` of input `port`
  /// (`port_width` = number of bits on that port, for normalization).
  [[nodiscard]] double bit_energy_pj(CellKind kind, unsigned width, int port, unsigned bit,
                                     unsigned port_width) const;

  /// Module power (mW) from per-bit toggle rates of each input port.
  [[nodiscard]] double module_power_mw(
      CellKind kind, unsigned width,
      const std::vector<std::vector<double>>& per_bit_rates) const;
};

/// Whole-design estimate using per-bit statistics (the simulator must
/// have run with enable_bit_stats()).
class BitLevelPowerEstimator {
 public:
  explicit BitLevelPowerEstimator(BitLevelMacroModel model = {}) : model_(model) {}

  [[nodiscard]] double cell_power_mw(const Netlist& nl, const ActivityStats& stats,
                                     CellId cell) const;
  [[nodiscard]] double total_power_mw(const Netlist& nl, const ActivityStats& stats) const;

 private:
  BitLevelMacroModel model_;
};

}  // namespace opiso
