#include "power/estimator.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace opiso {

std::vector<double> PowerEstimator::input_toggle_rates(const Netlist& nl,
                                                       const ActivityStats& stats,
                                                       CellId cell) const {
  const Cell& c = nl.cell(cell);
  std::vector<double> rates;
  rates.reserve(c.ins.size());
  for (NetId in : c.ins) rates.push_back(stats.toggle_rate(in));
  return rates;
}

double PowerEstimator::cell_power_mw(const Netlist& nl, const ActivityStats& stats,
                                     CellId cell) const {
  const Cell& c = nl.cell(cell);
  const std::vector<double> rates = input_toggle_rates(nl, stats, cell);
  return model_.module_power_mw(c.kind, c.width, rates);
}

std::vector<double> PowerEstimator::net_toggle_weights(const Netlist& nl) const {
  std::vector<double> weights(nl.num_nets(), 0.0);
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    for (std::size_t p = 0; p < c.ins.size(); ++p) {
      weights[c.ins[p].value()] +=
          model_.energy_per_toggle_pj(c.kind, c.width, static_cast<int>(p)) *
          model_.clock_freq_mhz * 1e-3;
    }
  }
  return weights;
}

PowerBreakdown PowerEstimator::estimate(const Netlist& nl, const ActivityStats& stats) const {
  OPISO_SPAN("power.estimate");
  obs::metrics().counter("power.estimates").add(1);
  obs::metrics().counter("power.cells_evaluated").add(nl.num_cells());
  PowerBreakdown pb;
  pb.cell_mw.assign(nl.num_cells(), 0.0);
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    const double mw = cell_power_mw(nl, stats, id);
    pb.cell_mw[id.value()] = mw;
    pb.total_mw += mw;
    if (cell_kind_is_arith(c.kind)) {
      pb.arith_mw += mw;
    } else if (cell_kind_is_isolation(c.kind)) {
      pb.isolation_mw += mw;
    } else if (c.kind == CellKind::Reg || c.kind == CellKind::Latch) {
      pb.sequential_mw += mw;
    } else {
      pb.steering_mw += mw;
    }
  }
  // Distribution across all estimates this run — sweeps over many
  // (design × seed × config) points read this to spot outlier tasks.
  obs::metrics().histogram("power.total_mw").record(pb.total_mw);
  return pb;
}

}  // namespace opiso
