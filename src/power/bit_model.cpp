#include "power/bit_model.hpp"

namespace opiso {

namespace {
bool is_positional(CellKind kind) {
  switch (kind) {
    case CellKind::Add:
    case CellKind::Sub:
    case CellKind::Mul:
    case CellKind::Eq:
    case CellKind::Lt:
      return true;
    default:
      return false;
  }
}
}  // namespace

double BitLevelMacroModel::bit_energy_pj(CellKind kind, unsigned width, int port, unsigned bit,
                                         unsigned port_width) const {
  MacroPowerModel word;
  const double base = word.energy_per_toggle_pj(kind, width, port);
  if (!is_positional(kind) || port_width == 0) return base;
  // A toggle at bit i re-evaluates the carry/column tail from i up to
  // the module's output width W; normalize so the mean over the port's
  // bits equals the word-level per-toggle energy.
  const double w = static_cast<double>(width);
  const double tail = w - static_cast<double>(std::min(bit, width - 1));
  const double mean_tail = w - (static_cast<double>(port_width) - 1.0) / 2.0;
  return base * tail / std::max(mean_tail, 1.0);
}

double BitLevelMacroModel::module_power_mw(
    CellKind kind, unsigned width,
    const std::vector<std::vector<double>>& per_bit_rates) const {
  MacroPowerModel word;  // shared static/idle term
  double energy_pj = word.static_energy_pj(kind, width);
  for (std::size_t port = 0; port < per_bit_rates.size(); ++port) {
    const auto& bits = per_bit_rates[port];
    for (std::size_t bit = 0; bit < bits.size(); ++bit) {
      energy_pj += bit_energy_pj(kind, width, static_cast<int>(port),
                                 static_cast<unsigned>(bit),
                                 static_cast<unsigned>(bits.size())) *
                   bits[bit];
    }
  }
  return energy_pj * clock_freq_mhz * 1e-3;
}

double BitLevelPowerEstimator::cell_power_mw(const Netlist& nl, const ActivityStats& stats,
                                             CellId cell) const {
  OPISO_REQUIRE(stats.has_bit_stats(),
                "BitLevelPowerEstimator: run the simulator with enable_bit_stats()");
  const Cell& c = nl.cell(cell);
  std::vector<std::vector<double>> rates;
  rates.reserve(c.ins.size());
  for (NetId in : c.ins) {
    std::vector<double> bits;
    const unsigned w = nl.net(in).width;
    bits.reserve(w);
    for (unsigned b = 0; b < w; ++b) bits.push_back(stats.bit_toggle_rate(in, b));
    rates.push_back(std::move(bits));
  }
  return model_.module_power_mw(c.kind, c.width, rates);
}

double BitLevelPowerEstimator::total_power_mw(const Netlist& nl,
                                              const ActivityStats& stats) const {
  double total = 0.0;
  for (CellId id : nl.cell_ids()) total += cell_power_mw(nl, stats, id);
  return total;
}

}  // namespace opiso
