#pragma once
// Switching-activity statistics gathered during simulation.
//
// Tr (toggle rate) of a net is the average number of bit toggles per
// clock cycle observed over the simulation — exactly the quantity the
// paper's macro power models consume (Sec. 4.1). For 1-bit control nets
// we additionally track the static probability Pr[net = 1].
//
// Expr probes evaluate arbitrary Boolean functions of net values each
// cycle and report Pr[expr] over the run. The savings model needs joint
// probabilities of dependent signals (Pr(!f_i & f_j & g), Sec. 4.2/4.3);
// measuring product expressions in-simulation sidesteps any independence
// assumption, as the paper requires ("the probabilities cannot further
// be simplified").

#include <cstdint>
#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "obs/confidence.hpp"
#include "obs/coverage.hpp"

namespace opiso {

/// Maps 1-bit nets to Boolean variables (shared by activation derivation,
/// probes, and activation-logic synthesis). Variables are allocated on
/// first use; the mapping is stable for the lifetime of the object.
class NetVarMap {
 public:
  /// Variable for a (1-bit) net; allocates on first use.
  BoolVar var_of(const Netlist& nl, NetId net);
  /// Net of an allocated variable.
  [[nodiscard]] NetId net_of(BoolVar v) const;
  [[nodiscard]] std::size_t num_vars() const { return nets_.size(); }
  /// Variable for the net, or kNoVar if never allocated.
  [[nodiscard]] BoolVar try_var_of(NetId net) const;
  static constexpr BoolVar kNoVar = 0xFFFFFFFFu;

 private:
  std::vector<NetId> nets_;                 ///< var -> net
  std::vector<BoolVar> var_by_net_;         ///< net.value() -> var (kNoVar = none)
};

struct ActivityStats {
  std::uint64_t cycles = 0;
  std::vector<std::uint64_t> toggles;    ///< per net: total bit toggles
  std::vector<std::uint64_t> ones;       ///< per net: cycles with bit0 == 1
  /// Per net, per bit position: toggle counts (empty unless the
  /// simulator was asked to collect bit-level statistics). Feeds the
  /// dual-bit-type macro models: LSBs of datapath words behave as white
  /// noise while MSBs track the (slowly varying) sign/magnitude region.
  std::vector<std::vector<std::uint64_t>> bit_toggles;
  std::vector<std::uint64_t> probe_true; ///< per probe: cycles where expr held
  std::vector<std::uint64_t> probe_toggles; ///< per probe: value changes between cycles
  /// Batch-means moments behind the confidence layer (obs/confidence
  /// .hpp): exact per-window integer event counts for nets (bit
  /// toggles) and probes (lanes where the expression held). Disabled
  /// unless the engine was asked to collect them; counted only over
  /// measured frames (reset clears the warmup accumulation), and
  /// carried through merge/incremental splicing so confidence
  /// intervals stay bitwise identical across engines and partitions.
  obs::BatchAccumulator net_batches;
  obs::BatchAccumulator probe_batches;

  /// Average bit toggles per cycle over the whole word (the paper's Tr).
  [[nodiscard]] double toggle_rate(NetId net) const;
  /// Static probability of a 1-bit net.
  [[nodiscard]] double prob_one(NetId net) const;
  /// Pr[probe expression] over the run.
  [[nodiscard]] double probe_probability(std::size_t probe) const;
  /// Toggle rate of the probe expression's value (per cycle).
  [[nodiscard]] double probe_toggle_rate(std::size_t probe) const;
  /// Toggle rate of one bit of a net (requires bit-level collection).
  [[nodiscard]] double bit_toggle_rate(NetId net, unsigned bit) const;
  [[nodiscard]] bool has_bit_stats() const { return !bit_toggles.empty(); }

  /// Element-wise accumulation of another run's statistics over the
  /// same netlist (and probe set, if any). Rates computed afterwards
  /// are averages over the combined cycle count — this is both the
  /// ordered reduction of the sweep runner and the oracle operation
  /// that makes N scalar runs comparable to one N-lane parallel run.
  /// An empty *this adopts the other side's shape.
  void merge(const ActivityStats& other);

  void reset();
};

/// Per-candidate activation-signal exercise counts for the coverage
/// section (filled by the isolation layer from its probe indices).
struct CandidateExercise {
  std::string cell;
  std::size_t probe = 0;  ///< activation probe (Pr[f_i]) index
};

/// Adapters from simulation statistics to the layer-agnostic obs
/// section builders. `net_power_weights_mw` is the macro model's exact
/// per-net dP/dTr vector (power/estimator.hpp); empty disables the
/// design-power interval.
[[nodiscard]] obs::JsonValue build_confidence_section(
    const Netlist& nl, const ActivityStats& stats, const obs::ConfidenceConfig& config,
    const std::vector<double>& net_power_weights_mw);
[[nodiscard]] obs::JsonValue build_coverage_section(
    const Netlist& nl, const ActivityStats& stats,
    const std::vector<CandidateExercise>& candidates);

}  // namespace opiso
