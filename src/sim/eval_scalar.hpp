#pragma once
// Shared scalar cell-evaluation kernel.
//
// The full scalar Simulator and the incremental dirty-cone replay both
// evaluate cells against a flat per-net value array; keeping the
// per-kind semantics in one inline function makes the two paths
// bit-identical by construction (the same discipline plane_program.hpp
// provides for the lane-parallel engine and its cone replay).
//
// The caller masks the returned word to the output net's width and is
// responsible for skipping PrimaryInput/PrimaryOutput cells (inputs are
// driven by stimulus or tape; outputs drive no net).

#include <cstdint>

#include "netlist/netlist.hpp"

namespace opiso {

/// Evaluate one cell on the settled `value` array. `state` is the
/// cell's held word — read for Reg outputs, updated level-sensitively
/// for Latch/IsoLatch. Returns the unmasked output word.
inline std::uint64_t eval_scalar_cell(const Cell& c, const std::uint64_t* value,
                                      std::uint64_t& state) {
  auto in = [&](int p) { return value[c.ins[static_cast<std::size_t>(p)].value()]; };
  switch (c.kind) {
    case CellKind::PrimaryInput:  // excluded by the caller
    case CellKind::PrimaryOutput:
      return 0;
    case CellKind::Constant:
      return c.param;
    case CellKind::Reg:
      return state;
    case CellKind::Add:
      return in(0) + in(1);
    case CellKind::Sub:
      return in(0) - in(1);
    case CellKind::Mul:
      return in(0) * in(1);
    case CellKind::Eq:
      return in(0) == in(1) ? 1 : 0;
    case CellKind::Lt:
      return in(0) < in(1) ? 1 : 0;
    case CellKind::Shl:
      return c.param >= 64 ? 0 : in(0) << c.param;
    case CellKind::Shr:
      return c.param >= 64 ? 0 : in(0) >> c.param;
    case CellKind::Not:
      return ~in(0);
    case CellKind::Buf:
      return in(0);
    case CellKind::And:
      return in(0) & in(1);
    case CellKind::Or:
      return in(0) | in(1);
    case CellKind::Xor:
      return in(0) ^ in(1);
    case CellKind::Nand:
      return ~(in(0) & in(1));
    case CellKind::Nor:
      return ~(in(0) | in(1));
    case CellKind::Xnor:
      return ~(in(0) ^ in(1));
    case CellKind::Mux2:
      return (in(0) & 1) ? in(2) : in(1);
    case CellKind::Latch:
      // Transparent while EN = 1; holds otherwise (level-sensitive).
      if (in(1) & 1) state = in(0);
      return state;
    case CellKind::IsoAnd:
      return (in(1) & 1) ? in(0) : 0;
    case CellKind::IsoOr:
      return (in(1) & 1) ? in(0) : ~std::uint64_t{0};
    case CellKind::IsoLatch:
      if (in(1) & 1) state = in(0);
      return state;
  }
  return 0;
}

/// The clock edge for one register: state <- D when EN bit 0 is set,
/// reading the settled values (all registers sample concurrently).
inline void clock_scalar_reg(const Cell& c, const std::uint64_t* value, std::uint64_t& state) {
  if (value[c.ins[1].value()] & 1) state = value[c.ins[0].value()];
}

}  // namespace opiso
