#pragma once
// Shared vocabulary of the two simulation engines.
//
// ProbeHost is the narrow interface the savings estimator needs to
// register its joint-probability probes: both the scalar Simulator and
// the bit-parallel ParallelSimulator implement it, so every activity
// consumer (power models, savings model, isolation loop) is engine-
// agnostic — it reads the resulting ActivityStats and never cares how
// many lanes produced them.

#include <cstddef>
#include <cstdint>

#include "boolfn/expr.hpp"

namespace opiso {

/// Which simulation engine to drive a measurement with. Scalar is the
/// reference/oracle path; Parallel evaluates up to 64 stimulus lanes
/// per netlist pass (see sim/parallel_sim.hpp).
enum class SimEngineKind { Scalar, Parallel };

[[nodiscard]] constexpr const char* sim_engine_name(SimEngineKind kind) {
  return kind == SimEngineKind::Scalar ? "scalar" : "parallel";
}

/// Anything probes can be registered on. add_probe returns the probe
/// index used with ActivityStats::probe_probability and friends.
class ProbeHost {
 public:
  virtual ~ProbeHost() = default;
  virtual std::size_t add_probe(ExprRef expr) = 0;
};

/// Raw per-cycle state observer both engines can drive: after every
/// combinational settle (warmup cycles included) the sink sees the
/// engine's full settled-state array for that cycle. For the scalar
/// Simulator `data` is the per-net value array (`n` = nets); for the
/// lane-parallel engine it is the bit-plane word array (`n` = plane
/// words). This is the capture hook of the incremental dirty-cone
/// engine's frame tape (sim/incremental.hpp).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void on_frame(std::uint64_t cycle, const std::uint64_t* data, std::size_t n) = 0;
};

}  // namespace opiso
