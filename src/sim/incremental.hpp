#pragma once
// Dirty-cone incremental re-simulation.
//
// The isolation loop (Algorithm 1) re-simulates the whole design after
// every committed bank, yet one iteration changes only a handful of
// cells: the rewired candidate, the inserted bank cells and the
// synthesized activation logic. Every cell outside the *dirty cone* —
// the forward closure of those changes over net fanouts, through
// registers — provably replays the previous simulation cycle for
// cycle, because its inputs see bit-identical values under the same
// stimulus.
//
// An IncrementalSession exploits that: the first measurement round runs
// the configured engine in full while recording a frame tape (the
// settled per-net values — scalar — or the settled plane words —
// lane-parallel — of every cycle, warmup included, via the engines'
// FrameSink hook). Each later round diffs the evolved netlist against
// the baseline (changed_cells), closes the diff into a dirty cone
// (dirty_cone), and then replays the tape: per cycle it memcpys the
// frame into the stable prefix of the value/plane array and re-evaluates
// only the cone's cells — with the same kernels the engines use
// (eval_scalar_cell / eval_plane_program), so cone values are
// bit-identical to a full re-run by construction. Statistics partition
// the same way: toggle/ones counters of nets outside the cone are
// carried forward from the baseline ActivityStats; cone nets are
// re-counted from the replay; probe counters (which change per round)
// are always re-evaluated on the reconstructed state.
//
// Contract: the stimulus factories must be deterministic and
// round-invariant — every call must yield the same value sequence (the
// CLI's seeded factories do). Otherwise a full re-simulation would not
// reproduce the tape either; verify_stimulus spot-checks the contract
// on the scalar engine by re-drawing the stimulus during replay and
// comparing primary-input values against the tape.
//
// Fallbacks are silent and safe: a tape exceeding tape_budget_bytes, a
// netlist evolution changed_cells cannot express, or a verify mismatch
// all disable the session's incremental path, and every round simply
// runs the full engine (counted in sim.incremental.* metrics).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"
#include "sim/engine.hpp"
#include "sim/stimulus.hpp"

namespace opiso {

class CycleSink;

struct IncrementalConfig {
  SimEngineKind engine = SimEngineKind::Scalar;
  /// Lanes of the parallel engine (ignored by the scalar engine).
  unsigned lanes = 64;
  /// Total warmup / measured lane-cycles; the parallel engine splits
  /// them across its lanes exactly as the isolation loop does.
  std::uint64_t warmup_cycles = 32;
  std::uint64_t sim_cycles = 4096;
  /// Frame-tape memory ceiling. A run whose tape would exceed it is not
  /// captured and the session measures in full every round.
  std::size_t tape_budget_bytes = std::size_t{256} << 20;
  /// Re-draw the stimulus during scalar replay and compare primary
  /// inputs against the tape (detects non-round-invariant factories).
  bool verify_stimulus = false;
  /// Collect per-bit toggle statistics in every round.
  bool bit_stats = false;
  /// Collect batch-means moments (obs/confidence.hpp) in every round:
  /// replays recompute dirty-net and probe cells and splice the carried
  /// clean-net cells, so the confidence section stays bitwise identical
  /// to full re-simulation. 0 disables.
  std::uint32_t batch_frames = 0;
};

class IncrementalSession {
 public:
  using StimulusFactory = std::function<std::unique_ptr<Stimulus>()>;
  using LaneStimulusFactory = std::function<std::unique_ptr<Stimulus>(unsigned lane)>;

  /// `stimuli` drives the scalar engine, `lane_stimuli` the parallel
  /// one; only the factory matching cfg.engine is required.
  IncrementalSession(StimulusFactory stimuli, LaneStimulusFactory lane_stimuli,
                     IncrementalConfig cfg);

  /// One measurement round over `nl`, which must be the baseline
  /// netlist or an append-only evolution of it (the isolation
  /// transform's guarantee). `register_on` registers this round's
  /// probes (ExprRefs in `pool` over `vars`); `sink` observes the
  /// measured cycles' per-net toggle counts exactly as if attached to
  /// the full engine after warmup. Returns statistics bit-identical to
  /// a full engine run with the same configuration.
  ActivityStats measure(const Netlist& nl, const ExprPool* pool, const NetVarMap* vars,
                        const std::function<void(ProbeHost&)>& register_on = nullptr,
                        CycleSink* sink = nullptr);

  // -- introspection (tests, reports, docs) --------------------------------
  /// True once a baseline tape is in place and replays are possible.
  [[nodiscard]] bool incremental_available() const { return have_baseline_ && !disabled_; }
  [[nodiscard]] std::uint64_t full_runs() const { return full_runs_; }
  [[nodiscard]] std::uint64_t replays() const { return replays_; }
  /// Cone size of the most recent replay (cells).
  [[nodiscard]] std::size_t last_cone_cells() const { return last_cone_cells_; }
  [[nodiscard]] std::size_t tape_bytes() const { return tape_.size() * sizeof(std::uint64_t); }

 private:
  ActivityStats full_measure_with_probes(const Netlist& nl, const ExprPool* pool,
                                         const NetVarMap* vars,
                                         const std::vector<ExprRef>& probes, CycleSink* sink);
  ActivityStats replay_scalar(const Netlist& nl, const ExprPool* pool, const NetVarMap* vars,
                              const std::vector<ExprRef>& probes, CycleSink* sink,
                              const std::vector<CellId>& cone);
  ActivityStats replay_parallel(const Netlist& nl, const ExprPool* pool, const NetVarMap* vars,
                                const std::vector<ExprRef>& probes, CycleSink* sink,
                                const std::vector<CellId>& cone);
  /// Merge replayed counters (dirty nets) with baseline counters.
  ActivityStats assemble(const Netlist& nl, const std::vector<bool>& dirty,
                         ActivityStats&& replayed) const;

  StimulusFactory stimuli_;
  LaneStimulusFactory lane_stimuli_;
  IncrementalConfig cfg_;

  // Frame counts of one measurement round (macro-cycles for the
  // parallel engine), fixed by cfg_ — mirrors the isolation loop's
  // warmup/cycles split so full and incremental rounds line up.
  std::uint64_t warmup_frames_ = 0;
  std::uint64_t measured_frames_ = 0;

  bool have_baseline_ = false;
  bool disabled_ = false;  ///< permanent fallback (budget / verify failure)
  std::optional<Netlist> base_;        ///< baseline netlist (tape's shape)
  ActivityStats base_stats_;           ///< baseline per-net counters
  std::vector<std::uint64_t> tape_;    ///< frames_ x frame_words_
  std::size_t frame_words_ = 0;

  std::uint64_t full_runs_ = 0;
  std::uint64_t replays_ = 0;
  std::size_t last_cone_cells_ = 0;
};

}  // namespace opiso
