#include "sim/stimulus.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace opiso {

namespace {
std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}
const std::string& pi_net_name(const Netlist& nl, CellId pi) {
  return nl.net(nl.cell(pi).out).name;
}
}  // namespace

// ---------------------------------------------------------------- Uniform
UniformStimulus::UniformStimulus(std::uint64_t seed) : rng_(seed) {}

std::uint64_t UniformStimulus::next(const Netlist& nl, CellId pi, std::uint64_t) {
  return rng_.next_bits(nl.cell(pi).width);
}

// ---------------------------------------------------------------- Constant
void ConstantStimulus::set(const std::string& input_net_name, std::uint64_t value) {
  values_[input_net_name] = value;
}

std::uint64_t ConstantStimulus::next(const Netlist& nl, CellId pi, std::uint64_t) {
  auto it = values_.find(pi_net_name(nl, pi));
  const std::uint64_t raw = it == values_.end() ? 0 : it->second;
  return raw & width_mask(nl.cell(pi).width);
}

// ---------------------------------------------------------------- Vector
void VectorStimulus::set(const std::string& input_net_name, std::vector<std::uint64_t> values) {
  vectors_[input_net_name] = std::move(values);
}

std::uint64_t VectorStimulus::next(const Netlist& nl, CellId pi, std::uint64_t cycle) {
  auto it = vectors_.find(pi_net_name(nl, pi));
  if (it == vectors_.end() || it->second.empty()) return 0;
  const auto& vec = it->second;
  std::size_t idx;
  if (wrap_) {
    idx = static_cast<std::size_t>(cycle % vec.size());
  } else {
    idx = static_cast<std::size_t>(std::min<std::uint64_t>(cycle, vec.size() - 1));
  }
  return vec[idx] & width_mask(nl.cell(pi).width);
}

// ---------------------------------------------------------------- Markov bit
ControlledBitStimulus::ControlledBitStimulus(double p1, double toggle_rate, std::uint64_t seed)
    : p1_(p1), tr_(toggle_rate), rng_(seed) {
  OPISO_REQUIRE(p1 > 0.0 && p1 < 1.0, "ControlledBitStimulus: p1 must be in (0,1)");
  const double limit = 2.0 * std::min(p1, 1.0 - p1);
  OPISO_REQUIRE(toggle_rate >= 0.0 && toggle_rate <= limit,
                "ControlledBitStimulus: toggle rate must be in [0, 2*min(p1,1-p1)]");
  p01_ = tr_ / (2.0 * (1.0 - p1));
  p10_ = tr_ / (2.0 * p1);
}

std::uint64_t ControlledBitStimulus::next(const Netlist& nl, CellId pi, std::uint64_t) {
  const unsigned width = nl.cell(pi).width;
  const std::uint32_t key = pi.value();
  std::uint64_t word = state_[key];
  if (!started_[key]) {
    // Draw the initial state from the stationary distribution per bit.
    word = 0;
    for (unsigned b = 0; b < width; ++b) {
      if (rng_.next_bool(p1_)) word |= std::uint64_t{1} << b;
    }
    started_[key] = true;
  } else {
    for (unsigned b = 0; b < width; ++b) {
      const bool cur = (word >> b) & 1;
      const bool flip = rng_.next_bool(cur ? p10_ : p01_);
      if (flip) word ^= std::uint64_t{1} << b;
    }
  }
  state_[key] = word;
  return word;
}

// ---------------------------------------------------------------- Idle bursts
IdleBurstStimulus::IdleBurstStimulus(double mean_active, double mean_idle, std::uint64_t seed)
    : rng_(seed) {
  OPISO_REQUIRE(mean_active >= 1.0 && mean_idle >= 1.0,
                "IdleBurstStimulus: mean burst lengths must be >= 1 cycle");
  p_leave_active_ = 1.0 / mean_active;
  p_leave_idle_ = 1.0 / mean_idle;
}

void IdleBurstStimulus::advance_phase() {
  if (rng_.next_bool(active_ ? p_leave_active_ : p_leave_idle_)) active_ = !active_;
}

std::uint64_t IdleBurstStimulus::next(const Netlist& nl, CellId pi, std::uint64_t cycle) {
  // Advance the phase once per cycle (on the first PI queried).
  if (cycle != phase_cycle_) {
    phase_cycle_ = cycle;
    advance_phase();
  }
  const Cell& cell = nl.cell(pi);
  if (!phase_input_.empty() && pi_net_name(nl, pi) == phase_input_) {
    return active_ ? 1 : 0;
  }
  std::uint64_t& held = held_[pi.value()];
  if (active_) held = rng_.next_bits(cell.width);
  return held;
}

// ---------------------------------------------------------------- Correlated walk
CorrelatedWalkStimulus::CorrelatedWalkStimulus(double relative_step, std::uint64_t seed)
    : relative_step_(relative_step), rng_(seed) {
  OPISO_REQUIRE(relative_step > 0.0 && relative_step <= 1.0,
                "CorrelatedWalkStimulus: relative step must be in (0,1]");
}

std::uint64_t CorrelatedWalkStimulus::next(const Netlist& nl, CellId pi, std::uint64_t) {
  const unsigned width = nl.cell(pi).width;
  const std::uint64_t mask = width_mask(width);
  const std::uint32_t key = pi.value();
  std::uint64_t x = state_[key];
  if (!started_[key]) {
    x = rng_.next_bits(width);  // random starting point
    started_[key] = true;
  } else {
    const double full_scale = static_cast<double>(mask) + 1.0;
    const std::uint64_t max_step =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(full_scale * relative_step_));
    const std::uint64_t step = rng_.next_range(0, max_step);
    // Reflecting walk keeps the value in range without modular wrap
    // (wrap would fake a full-scale MSB transition).
    if (rng_.next_bool(0.5)) {
      x = (x + step > mask) ? mask - (x + step - mask) : x + step;
    } else {
      x = (step > x) ? (step - x) : x - step;
    }
    x &= mask;
  }
  state_[key] = x;
  return x;
}

// ---------------------------------------------------------------- Composite
CompositeStimulus::CompositeStimulus(std::unique_ptr<Stimulus> fallback)
    : fallback_(std::move(fallback)) {
  OPISO_REQUIRE(fallback_ != nullptr, "CompositeStimulus: fallback required");
}

void CompositeStimulus::route(const std::string& input_net_name, std::unique_ptr<Stimulus> gen) {
  OPISO_REQUIRE(gen != nullptr, "CompositeStimulus: null generator");
  routes_[input_net_name] = std::move(gen);
}

std::uint64_t CompositeStimulus::next(const Netlist& nl, CellId pi, std::uint64_t cycle) {
  auto it = routes_.find(pi_net_name(nl, pi));
  Stimulus& gen = it == routes_.end() ? *fallback_ : *it->second;
  return gen.next(nl, pi, cycle);
}

}  // namespace opiso
