#include "sim/plane_program.hpp"

#include "support/error.hpp"

namespace opiso {

namespace {

constexpr unsigned K = kPlaneWords;

inline const std::uint64_t* load(const std::uint64_t* planes, std::uint32_t off, unsigned w_in,
                                 unsigned b) {
  return b < w_in ? planes + off + b * K : kZeroPlaneBlock.data();
}

inline bool block_zero(const std::uint64_t* p) {
  std::uint64_t acc = 0;
  for (unsigned k = 0; k < K; ++k) acc |= p[k];
  return acc == 0;
}

}  // namespace

PlaneProgram build_plane_program(const Netlist& nl, const std::vector<CellId>& cells,
                                 const std::vector<std::size_t>& plane_off,
                                 const std::vector<std::size_t>& state_off) {
  PlaneProgram prog;
  prog.ops.reserve(cells.size());
  const auto net_off = [&](NetId n) {
    return static_cast<std::uint32_t>(plane_off[n.value()] * K);
  };
  const auto net_w = [&](NetId n) { return static_cast<std::uint16_t>(nl.net(n).width); };
  for (CellId id : cells) {
    const Cell& cell = nl.cell(id);
    if (cell.kind == CellKind::PrimaryInput || cell.kind == CellKind::PrimaryOutput) continue;
    PlaneOp op;
    op.kind = cell.kind;
    op.w = static_cast<std::uint16_t>(cell.width);
    op.out = net_off(cell.out);
    op.param = cell.param;
    if (!cell.ins.empty()) {
      op.a = net_off(cell.ins[0]);
      op.wa = net_w(cell.ins[0]);
    }
    if (cell.ins.size() > 1) {
      op.b = net_off(cell.ins[1]);
      op.wb = net_w(cell.ins[1]);
    }
    if (cell.ins.size() > 2) {
      op.c = net_off(cell.ins[2]);
      op.wc = net_w(cell.ins[2]);
    }
    if (cell.kind == CellKind::Reg || cell_kind_is_latch(cell.kind)) {
      op.state = static_cast<std::uint32_t>(state_off[id.value()] * K);
    }
    if (cell.kind == CellKind::Reg) {
      PlaneRegOp r;
      r.w = op.w;
      r.wd = op.wa;
      r.d = op.a;
      r.en = op.b;
      r.state = op.state;
      prog.regs.push_back(r);
    }
    prog.ops.push_back(op);
  }
  return prog;
}

// The per-block operand pointers below are __restrict: a cell's output
// net is always distinct from its input nets (comb loops are rejected
// by netlist validation), so the written block never overlaps a read
// block and the compiler may fuse each K-word loop into vector ops
// without runtime alias checks. Inputs may alias each other (e.g.
// mul x*x) — reads through two restrict pointers are allowed.
void eval_plane_program(const PlaneProgram& prog, std::uint64_t* planes, std::uint64_t* state,
                        const std::uint64_t* ones) {
  for (const PlaneOp& op : prog.ops) {
    const unsigned w = op.w;
    std::uint64_t* out = planes + op.out;
    switch (op.kind) {
      case CellKind::PrimaryInput:
      case CellKind::PrimaryOutput:
        break;
      case CellKind::Constant:
        for (unsigned b = 0; b < w; ++b) {
          std::uint64_t* __restrict po = out + b * K;
          if ((op.param >> b) & 1) {
            for (unsigned k = 0; k < K; ++k) po[k] = ones[k];
          } else {
            for (unsigned k = 0; k < K; ++k) po[k] = 0;
          }
        }
        break;
      case CellKind::Reg: {
        const std::uint64_t* __restrict st = state + op.state;
        for (unsigned b = 0; b < w; ++b) {
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = st[b * K + k];
        }
        break;
      }
      case CellKind::Add: {
        std::uint64_t carry[K] = {};
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) {
            const std::uint64_t axb = pa[k] ^ pb[k];
            po[k] = axb ^ carry[k];
            carry[k] = (pa[k] & pb[k]) | (carry[k] & axb);
          }
        }
        break;
      }
      case CellKind::Sub: {
        // a - b == a + ~b + 1: carry starts at all-ones; ~b is taken on
        // the width-masked value, so planes past b's width become ones —
        // exactly the scalar 64-bit two's-complement pattern.
        std::uint64_t carry[K];
        for (unsigned k = 0; k < K; ++k) carry[k] = ones[k];
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) {
            const std::uint64_t nb = ~pb[k] & ones[k];
            const std::uint64_t axb = pa[k] ^ nb;
            po[k] = axb ^ carry[k];
            carry[k] = (pa[k] & nb) | (carry[k] & axb);
          }
        }
        break;
      }
      case CellKind::Mul: {
        // Shift-and-add over bit planes (mod 2^w, like the scalar path).
        for (unsigned b = 0; b < w; ++b) {
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = 0;
        }
        for (unsigned j = 0; j < op.wb && j < w; ++j) {
          const std::uint64_t* __restrict bj = load(planes, op.b, op.wb, j);
          if (block_zero(bj)) continue;
          std::uint64_t carry[K] = {};
          for (unsigned k2 = 0; j + k2 < w; ++k2) {
            const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, k2);
            std::uint64_t* __restrict po = out + (j + k2) * K;
            std::uint64_t carry_acc = 0;
            for (unsigned k = 0; k < K; ++k) {
              const std::uint64_t p = pa[k] & bj[k];
              const std::uint64_t cur = po[k];
              const std::uint64_t cxp = cur ^ p;
              po[k] = cxp ^ carry[k];
              carry[k] = (cur & p) | (carry[k] & cxp);
              carry_acc |= carry[k];
            }
            if (carry_acc == 0 && k2 >= op.wa) break;  // nothing left to propagate
          }
        }
        break;
      }
      case CellKind::Eq: {
        const unsigned wmax = std::max<unsigned>(op.wa, op.wb);
        std::uint64_t eq[K];
        for (unsigned k = 0; k < K; ++k) eq[k] = ones[k];
        for (unsigned b = 0; b < wmax; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          for (unsigned k = 0; k < K; ++k) eq[k] &= ~(pa[k] ^ pb[k]) & ones[k];
        }
        for (unsigned k = 0; k < K; ++k) out[k] = eq[k];
        break;
      }
      case CellKind::Lt: {
        // LSB-to-MSB scan: lt_b = (!a_b & b_b) | (a_b == b_b) & lt_{b-1}.
        const unsigned wmax = std::max<unsigned>(op.wa, op.wb);
        std::uint64_t lt[K] = {};
        for (unsigned b = 0; b < wmax; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          for (unsigned k = 0; k < K; ++k) {
            lt[k] = ((~pa[k] & ones[k]) & pb[k]) | ((~(pa[k] ^ pb[k]) & ones[k]) & lt[k]);
          }
        }
        for (unsigned k = 0; k < K; ++k) out[k] = lt[k];
        break;
      }
      case CellKind::Shl:
        for (unsigned b = 0; b < w; ++b) {
          std::uint64_t* __restrict po = out + b * K;
          if (op.param <= b && op.param < 64) {
            const std::uint64_t* __restrict pa =
                load(planes, op.a, op.wa, b - static_cast<unsigned>(op.param));
            for (unsigned k = 0; k < K; ++k) po[k] = pa[k];
          } else {
            for (unsigned k = 0; k < K; ++k) po[k] = 0;
          }
        }
        break;
      case CellKind::Shr:
        for (unsigned b = 0; b < w; ++b) {
          std::uint64_t* __restrict po = out + b * K;
          if (op.param < 64) {
            const std::uint64_t* __restrict pa =
                load(planes, op.a, op.wa, b + static_cast<unsigned>(op.param));
            for (unsigned k = 0; k < K; ++k) po[k] = pa[k];
          } else {
            for (unsigned k = 0; k < K; ++k) po[k] = 0;
          }
        }
        break;
      case CellKind::Not:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = ~pa[k] & ones[k];
        }
        break;
      case CellKind::Buf:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = pa[k];
        }
        break;
      case CellKind::And:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = pa[k] & pb[k];
        }
        break;
      case CellKind::Or:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = pa[k] | pb[k];
        }
        break;
      case CellKind::Xor:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = pa[k] ^ pb[k];
        }
        break;
      case CellKind::Nand:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = ~(pa[k] & pb[k]) & ones[k];
        }
        break;
      case CellKind::Nor:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = ~(pa[k] | pb[k]) & ones[k];
        }
        break;
      case CellKind::Xnor:
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pa = load(planes, op.a, op.wa, b);
          const std::uint64_t* __restrict pb = load(planes, op.b, op.wb, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = ~(pa[k] ^ pb[k]) & ones[k];
        }
        break;
      case CellKind::Mux2: {
        const std::uint64_t* __restrict sel = load(planes, op.a, op.wa, 0);
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict p0 = load(planes, op.b, op.wb, b);
          const std::uint64_t* __restrict p1 = load(planes, op.c, op.wc, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) {
            po[k] = (sel[k] & p1[k]) | ((~sel[k] & ones[k]) & p0[k]);
          }
        }
        break;
      }
      case CellKind::Latch:
      case CellKind::IsoLatch: {
        // Transparent per lane while EN = 1; holds otherwise.
        const std::uint64_t* __restrict en = load(planes, op.b, op.wb, 0);
        std::uint64_t* __restrict st = state + op.state;
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pd = load(planes, op.a, op.wa, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) {
            st[b * K + k] = (en[k] & pd[k]) | ((~en[k] & ones[k]) & st[b * K + k]);
            po[k] = st[b * K + k];
          }
        }
        break;
      }
      case CellKind::IsoAnd: {
        const std::uint64_t* __restrict en = load(planes, op.b, op.wb, 0);
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pd = load(planes, op.a, op.wa, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = en[k] & pd[k];
        }
        break;
      }
      case CellKind::IsoOr: {
        const std::uint64_t* __restrict en = load(planes, op.b, op.wb, 0);
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t* __restrict pd = load(planes, op.a, op.wa, b);
          std::uint64_t* __restrict po = out + b * K;
          for (unsigned k = 0; k < K; ++k) po[k] = (en[k] & pd[k]) | (~en[k] & ones[k]);
        }
        break;
      }
    }
  }
}

void clock_plane_program(const PlaneProgram& prog, const std::uint64_t* planes,
                         std::uint64_t* state) {
  // ~en needs no lane mask here: inactive-lane state bits start 0 and
  // en/d planes are masked, so they can only stay 0.
  for (const PlaneRegOp& r : prog.regs) {
    const std::uint64_t* __restrict en = load(planes, r.en, 1, 0);
    std::uint64_t* __restrict st = state + r.state;
    for (unsigned b = 0; b < r.w; ++b) {
      const std::uint64_t* __restrict pd = load(planes, r.d, r.wd, b);
      for (unsigned k = 0; k < K; ++k) {
        st[b * K + k] = (en[k] & pd[k]) | (~en[k] & st[b * K + k]);
      }
    }
  }
}

}  // namespace opiso
