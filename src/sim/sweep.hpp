#pragma once
// Multithreaded design sweep.
//
// A sweep fans independent (design × stimulus seed × engine config)
// simulation tasks across a deterministic thread pool and reduces the
// results in task order. Each task derives its lane RNG streams from
// its own seed (sweep_lane_seed), no task shares mutable state with
// another, and the result vector is indexed by task — so the output is
// bitwise identical for any --threads value, and identical between the
// scalar and parallel engines (a scalar task runs one Simulator per
// lane and merges the stats; a parallel task runs the 64-lane engine
// once). CI diffs the emitted reports across thread counts and engines
// to hold the runner to this.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "obs/confidence.hpp"
#include "obs/json.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"

namespace opiso {

struct IsolationOptions;  // isolation/algorithm.hpp (linked via opiso_isolation)

/// Deterministic per-lane RNG stream seed for a task seed.
[[nodiscard]] constexpr std::uint64_t sweep_lane_seed(std::uint64_t task_seed, unsigned lane) {
  return task_seed ^ (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(lane) + 1));
}

struct SweepTask {
  std::string design;                    ///< label used in the report
  std::function<Netlist()> make_design;  ///< must be pure (called on a worker)
  std::uint64_t seed = 1;
  std::uint64_t cycles = 4096;  ///< cycles per lane
  unsigned lanes = ParallelSimulator::kMaxLanes;
  std::uint64_t warmup = 0;  ///< per-lane warmup cycles (discarded)
  SimEngineKind engine = SimEngineKind::Parallel;
  /// Stimulus per lane seed; defaults to UniformStimulus when unset.
  std::function<std::unique_ptr<Stimulus>(std::uint64_t lane_seed)> make_stimulus;
  /// When set, the task runs Algorithm 1 (run_operand_isolation) on the
  /// design instead of a plain activity measurement: the options are
  /// copied and the task's engine/lanes/cycles/warmup and seed-derived
  /// stimulus factories are installed on the copy, so every task stays
  /// a pure function of its own fields. Shared across tasks (the sweep
  /// never mutates it).
  std::shared_ptr<const IsolationOptions> isolate;
  /// Batch-means confidence collection (obs/confidence.hpp). When
  /// enabled the task's report row gains opiso.confidence/v1 and
  /// opiso.coverage/v1 sections — bitwise identical across engines,
  /// --threads values, and plane widths, because the accumulated window
  /// moments are exact integers. A min_power_ci_halfwidth_mw >= 0 gate
  /// *fails* an under-converged task (confidence.under-converged in
  /// opiso.task_failures/v1) instead of silently extending it. In
  /// isolate mode this is installed on the IsolationOptions copy.
  obs::ConfidenceConfig confidence{};
};

struct SweepResult {
  std::string design;
  std::uint64_t seed = 0;
  SimEngineKind engine = SimEngineKind::Parallel;
  unsigned lanes = 0;
  std::uint64_t lane_cycles = 0;  ///< total simulated lane-cycles (post-warmup)
  std::uint64_t toggles = 0;      ///< total bit toggles over all nets
  double power_mw = 0.0;          ///< macro-model power at the measured activity

  // -- isolate-mode extras (task.isolate set); zero otherwise ---------------
  bool isolated_mode = false;
  double power_before_mw = 0.0;
  double power_after_mw = 0.0;
  double power_reduction_pct = 0.0;
  std::uint64_t iterations = 0;         ///< Algorithm-1 iterations run
  std::uint64_t modules_isolated = 0;   ///< banks committed

  // -- confidence extras (task.confidence.enabled); null otherwise ----------
  obs::JsonValue confidence;  ///< opiso.confidence/v1 section
  obs::JsonValue coverage;    ///< opiso.coverage/v1 section
};

/// Per-task resource budget. Zero fields are unlimited. The stimulus
/// budget is checked up front (cycles × lanes is known before the task
/// runs, so the check is deterministic); the wall-clock budget is
/// enforced between simulation chunks, so a runaway task stops within
/// one chunk of the limit instead of holding a worker forever.
struct SweepBudget {
  double task_wall_clock_sec = 0.0;        ///< per-task wall-clock limit
  std::uint64_t task_max_lane_cycles = 0;  ///< per-task cycles × lanes limit
};

/// Execute one task synchronously (also the per-worker body).
[[nodiscard]] SweepResult run_sweep_task(const SweepTask& task);
/// Budget-enforcing variant: throws ResourceError (resource.stimulus /
/// resource.wall-clock) when a limit is exceeded.
[[nodiscard]] SweepResult run_sweep_task(const SweepTask& task, const SweepBudget& budget);

/// Record of one task that threw or blew its budget during a
/// fault-isolated sweep. `elapsed_lane_cycles` counts the simulated
/// lane-cycles completed before the failure — a deterministic elapsed
/// measure, unlike wall time, so reports with failures still diff
/// bitwise identical across --threads values.
struct SweepTaskFailure {
  std::size_t task_index = 0;
  std::string design;
  std::uint64_t seed = 0;
  std::string code;     ///< stable OpisoError code name ("resource.wall-clock", ...)
  std::string message;  ///< diagnostic text (what())
  std::uint64_t elapsed_lane_cycles = 0;
};

struct SweepRunOptions {
  /// Stop launching new tasks after the first failure; tasks that never
  /// started are recorded with code "task.skipped". The skip set depends
  /// on scheduling, so fail-fast trades report reproducibility for
  /// latency — leave it off when diffing reports across --threads.
  bool fail_fast = false;
  SweepBudget budget;
  /// Pre-flight hook run against each task's elaborated design before
  /// any simulation. Throwing an OpisoError rejects the task: it is
  /// recorded in opiso.task_failures/v1 under the error's stable code
  /// (this is how the CLI wires `opiso lint` in front of every task
  /// without the sweep layer depending on the analyzer). Must be pure —
  /// it runs on worker threads, one design at a time.
  std::function<void(const SweepTask&, const Netlist&)> preflight;
};

/// Result of a fault-isolated sweep: per-task results in task order
/// (failed slots carry only design/seed), plus the failure records
/// sorted by task index.
struct SweepOutcome {
  std::vector<SweepResult> results;
  std::vector<SweepTaskFailure> failures;
  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] bool failed(std::size_t task_index) const;
};

/// Snapshot passed to the progress callback after each task completes.
/// `task_index` is the finished task; completion order is scheduling-
/// dependent, so progress output is informational only — the result
/// vector and report stay deterministic regardless.
struct SweepProgress {
  std::size_t completed = 0;   ///< tasks finished so far (including this one)
  std::size_t total = 0;       ///< tasks in the sweep
  std::size_t task_index = 0;  ///< index of the task that just finished
  double elapsed_sec = 0.0;
  double eta_sec = 0.0;  ///< elapsed/completed * remaining
};
using SweepProgressFn = std::function<void(const SweepProgress&)>;

class SweepRunner {
 public:
  /// `threads` = 0 picks the hardware concurrency.
  explicit SweepRunner(unsigned threads = 0);

  /// Fan all tasks across the pool; results come back in task order.
  /// `progress`, when set, is invoked once per completed task from the
  /// finishing worker, serialized by an internal mutex (safe to write
  /// to a stream from it).
  [[nodiscard]] std::vector<SweepResult> run(const std::vector<SweepTask>& tasks,
                                             const SweepProgressFn& progress = nullptr);

  /// Fault-isolated variant: a throwing or over-budget task becomes a
  /// SweepTaskFailure record while every other task still completes
  /// (nothing propagates out of the pool). This is the production entry
  /// point for untrusted/batch sweeps; `run` keeps the fail-loud
  /// semantics for programmatic callers.
  [[nodiscard]] SweepOutcome run_isolated(const std::vector<SweepTask>& tasks,
                                          const SweepRunOptions& options = {},
                                          const SweepProgressFn& progress = nullptr);

  [[nodiscard]] unsigned threads() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Deterministic JSON report (schema opiso.sweep/v1). Contains no
/// wall-clock or thread-count fields so reports from different
/// --threads runs diff clean; throughput lives in the metrics registry
/// ("sweep.*", "sim.parallel.*", "pool.*") instead. The report always
/// carries a `task_failures` section (schema opiso.task_failures/v1;
/// empty array on a clean run), so its presence never depends on
/// whether anything failed.
[[nodiscard]] obs::JsonValue build_sweep_report(const std::vector<SweepResult>& results);
/// Fault-isolated form: failed task slots are omitted from `tasks` and
/// recorded under `task_failures` instead; totals cover successes only.
[[nodiscard]] obs::JsonValue build_sweep_report(const SweepOutcome& outcome);

}  // namespace opiso
