#include "sim/incremental.hpp"

#include <bit>
#include <cstring>

#include "netlist/traversal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/eval_scalar.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/plane_program.hpp"
#include "sim/simulator.hpp"
#include "support/error.hpp"

namespace opiso {

namespace {

constexpr unsigned K = kPlaneWords;

std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Captures every settled frame verbatim into one flat array.
class TapeSink final : public FrameSink {
 public:
  explicit TapeSink(std::vector<std::uint64_t>* tape) : tape_(tape) {}
  void on_frame(std::uint64_t, const std::uint64_t* data, std::size_t n) override {
    tape_->insert(tape_->end(), data, data + n);
  }

 private:
  std::vector<std::uint64_t>* tape_;
};

/// ProbeHost that records the registered expressions without an engine:
/// probe indices are assigned in registration order, exactly as the
/// engines assign them, so replaying the recorded list onto an engine
/// (or evaluating it directly) preserves every index.
class ProbeCollector final : public ProbeHost {
 public:
  std::size_t add_probe(ExprRef expr) override {
    probes.push_back(expr);
    return probes.size() - 1;
  }
  std::vector<ExprRef> probes;
};

/// Lane-parallel probe evaluation over the reconstructed plane array —
/// the standalone mirror of ParallelSimulator::eval_expr_lanes (same
/// masked operations over plane-0 blocks, same per-cycle memoization),
/// so probe counters replay bit-identically.
class LaneExprEval {
 public:
  LaneExprEval(const ExprPool* pool, const NetVarMap* vars,
               const std::vector<std::size_t>& plane_off, const PlaneBlock& lane_mask)
      : pool_(pool), vars_(vars), plane_off_(plane_off), lane_mask_(lane_mask) {}

  /// `planes` is re-pointed every cycle: the replay loop retires the
  /// current plane array into `prev` by buffer swap.
  void next_cycle(const std::uint64_t* planes) {
    planes_ = planes;
    ++gen_;
  }

  void eval(ExprRef r, std::uint64_t* out) {
    const std::size_t idx = r.value();
    if (idx * K < val_.size() && gen_of_[idx] == gen_) {
      for (unsigned k = 0; k < K; ++k) out[k] = val_[idx * K + k];
      return;
    }
    const ExprNode& n = pool_->node(r);
    std::uint64_t v[K] = {};
    std::uint64_t tmp_b[K];
    switch (n.op) {
      case ExprOp::Const0:
        break;
      case ExprOp::Const1:
        for (unsigned k = 0; k < K; ++k) v[k] = lane_mask_[k];
        break;
      case ExprOp::Var: {
        const std::size_t off = plane_off_[vars_->net_of(n.var).value()] * K;
        for (unsigned k = 0; k < K; ++k) v[k] = planes_[off + k];
        break;
      }
      case ExprOp::Not:
        eval(n.a, v);
        for (unsigned k = 0; k < K; ++k) v[k] = ~v[k] & lane_mask_[k];
        break;
      case ExprOp::And:
        eval(n.a, v);
        eval(n.b, tmp_b);
        for (unsigned k = 0; k < K; ++k) v[k] &= tmp_b[k];
        break;
      case ExprOp::Or:
        eval(n.a, v);
        eval(n.b, tmp_b);
        for (unsigned k = 0; k < K; ++k) v[k] |= tmp_b[k];
        break;
    }
    if (idx * K >= val_.size()) {
      val_.resize(pool_->num_nodes() * K, 0);
      gen_of_.resize(pool_->num_nodes(), 0);
    }
    for (unsigned k = 0; k < K; ++k) {
      val_[idx * K + k] = v[k];
      out[k] = v[k];
    }
    gen_of_[idx] = gen_;
  }

 private:
  const ExprPool* pool_;
  const NetVarMap* vars_;
  const std::vector<std::size_t>& plane_off_;
  const std::uint64_t* planes_ = nullptr;
  const PlaneBlock& lane_mask_;
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> gen_of_;
  std::uint64_t gen_ = 0;
};

/// Cone cells in evaluation order (the global topological order
/// filtered to the cone — relative order, and hence replay semantics,
/// match the full engines exactly), PIs/POs dropped.
std::vector<CellId> cone_eval_order(const Netlist& nl, const std::vector<CellId>& cone) {
  std::vector<bool> in_cone(nl.num_cells(), false);
  for (CellId id : cone) in_cone[id.value()] = true;
  std::vector<CellId> order;
  for (CellId id : topological_order(nl)) {
    if (!in_cone[id.value()]) continue;
    const CellKind k = nl.cell(id).kind;
    if (k == CellKind::PrimaryInput || k == CellKind::PrimaryOutput) continue;
    order.push_back(id);
  }
  return order;
}

/// Per-net dirty mask: outputs of the cone's evaluated cells. Every net
/// appended after the baseline is driven by a new (hence dirty) cell,
/// so the mask covers all of them too.
std::vector<bool> dirty_net_mask(const Netlist& nl, const std::vector<CellId>& cone_order) {
  std::vector<bool> dirty(nl.num_nets(), false);
  for (CellId id : cone_order) {
    const NetId out = nl.cell(id).out;
    if (out.valid()) dirty[out.value()] = true;
  }
  return dirty;
}

ActivityStats make_stats_shape(const Netlist& nl, std::size_t num_probes, bool bit_stats,
                               std::uint32_t batch_frames) {
  ActivityStats s;
  s.toggles.assign(nl.num_nets(), 0);
  s.ones.assign(nl.num_nets(), 0);
  if (bit_stats) {
    s.bit_toggles.resize(nl.num_nets());
    for (NetId id : nl.net_ids()) s.bit_toggles[id.value()].assign(nl.net(id).width, 0);
  }
  s.probe_true.assign(num_probes, 0);
  s.probe_toggles.assign(num_probes, 0);
  if (batch_frames != 0) {
    s.net_batches.configure(nl.num_nets(), batch_frames);
    s.probe_batches.configure(num_probes, batch_frames);
  }
  return s;
}

}  // namespace

IncrementalSession::IncrementalSession(StimulusFactory stimuli, LaneStimulusFactory lane_stimuli,
                                       IncrementalConfig cfg)
    : stimuli_(std::move(stimuli)), lane_stimuli_(std::move(lane_stimuli)), cfg_(cfg) {
  if (cfg_.engine == SimEngineKind::Parallel) {
    OPISO_REQUIRE(lane_stimuli_ != nullptr, "IncrementalSession: parallel engine needs lane_stimuli");
    const std::uint64_t lanes = cfg_.lanes;
    warmup_frames_ = cfg_.warmup_cycles > 0 ? (cfg_.warmup_cycles + lanes - 1) / lanes : 0;
    measured_frames_ = std::max<std::uint64_t>(1, cfg_.sim_cycles / lanes);
  } else {
    OPISO_REQUIRE(stimuli_ != nullptr, "IncrementalSession: scalar engine needs a stimulus factory");
    warmup_frames_ = cfg_.warmup_cycles;
    measured_frames_ = cfg_.sim_cycles;
  }
}

ActivityStats IncrementalSession::measure(const Netlist& nl, const ExprPool* pool,
                                          const NetVarMap* vars,
                                          const std::function<void(ProbeHost&)>& register_on,
                                          CycleSink* sink) {
  OPISO_SPAN("sim.incremental.measure");
  // The single register_on call of this round: probes are collected
  // here and forwarded (to the engine on a full run, to the replay
  // evaluator otherwise) with their registration order — and hence
  // indices — intact.
  ProbeCollector collector;
  if (register_on) register_on(collector);
  if (!collector.probes.empty()) {
    OPISO_REQUIRE(pool != nullptr && vars != nullptr,
                  "IncrementalSession: probes require an ExprPool and NetVarMap");
  }
  if (!have_baseline_ || disabled_) {
    return full_measure_with_probes(nl, pool, vars, collector.probes, sink);
  }
  std::vector<CellId> seeds;
  try {
    seeds = changed_cells(*base_, nl);
  } catch (const NetlistError&) {
    // Not an append-only evolution of the captured baseline: re-base on
    // a fresh full run instead of giving up for good.
    obs::metrics().counter("sim.incremental.rebases").add(1);
    have_baseline_ = false;
    return full_measure_with_probes(nl, pool, vars, collector.probes, sink);
  }
  const std::vector<CellId> cone = dirty_cone(nl, seeds);
  last_cone_cells_ = cone.size();
  ++replays_;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sim.incremental.replays").add(1);
  m.gauge("sim.incremental.cone_cells").set(static_cast<double>(cone.size()));
  m.gauge("sim.incremental.cone_fraction")
      .set(static_cast<double>(cone.size()) / static_cast<double>(std::max<std::size_t>(1, nl.num_cells())));
  OPISO_SPAN("sim.incremental.replay");
  if (cfg_.engine == SimEngineKind::Parallel) {
    return replay_parallel(nl, pool, vars, collector.probes, sink, cone);
  }
  return replay_scalar(nl, pool, vars, collector.probes, sink, cone);
}

ActivityStats IncrementalSession::full_measure_with_probes(const Netlist& nl,
                                                           const ExprPool* pool,
                                                           const NetVarMap* vars,
                                                           const std::vector<ExprRef>& probes,
                                                           CycleSink* sink) {
  OPISO_SPAN("sim.incremental.full");
  ++full_runs_;
  obs::metrics().counter("sim.incremental.full_runs").add(1);
  const std::uint64_t frames = warmup_frames_ + measured_frames_;

  // Capture a fresh baseline tape whenever it fits the budget — the
  // most recent full run becomes the baseline, keeping later cones as
  // small as the netlist evolution allows.
  bool capture = !disabled_;
  std::size_t fw = 0;
  if (cfg_.engine == SimEngineKind::Parallel) {
    std::size_t planes = 0;
    for (NetId id : nl.net_ids()) planes += nl.net(id).width;
    fw = planes * K;
  } else {
    fw = nl.num_nets();
  }
  if (capture && frames * fw * sizeof(std::uint64_t) > cfg_.tape_budget_bytes) {
    capture = false;
    disabled_ = true;  // the tape only grows with the netlist
    obs::metrics().counter("sim.incremental.tape_budget_skips").add(1);
  }
  if (capture) {
    tape_.clear();
    tape_.reserve(frames * fw);
  }
  TapeSink tape_sink(&tape_);

  ActivityStats stats;
  if (cfg_.engine == SimEngineKind::Parallel) {
    ParallelSimulator sim(nl, cfg_.lanes, pool, vars);
    if (cfg_.bit_stats) sim.enable_bit_stats();
    if (cfg_.batch_frames != 0) sim.enable_batch_stats(cfg_.batch_frames);
    for (ExprRef p : probes) (void)sim.add_probe(p);
    sim.set_stimulus(lane_stimuli_);
    if (capture) sim.set_frame_sink(&tape_sink);
    if (warmup_frames_ > 0) sim.warmup(warmup_frames_);
    if (sink) sim.set_cycle_sink(sink);
    sim.run(measured_frames_);
    stats = sim.stats();
  } else {
    Simulator sim(nl, pool, vars);
    if (cfg_.bit_stats) sim.enable_bit_stats();
    if (cfg_.batch_frames != 0) sim.enable_batch_stats(cfg_.batch_frames);
    for (ExprRef p : probes) (void)sim.add_probe(p);
    if (capture) sim.set_frame_sink(&tape_sink);
    std::unique_ptr<Stimulus> stim = stimuli_();
    if (warmup_frames_ > 0) sim.warmup(*stim, warmup_frames_);
    if (sink) sim.set_cycle_sink(sink);
    sim.run(*stim, measured_frames_);
    stats = sim.stats();
  }

  if (capture) {
    base_.emplace(nl);
    base_stats_ = stats;
    frame_words_ = fw;
    have_baseline_ = true;
    obs::metrics().gauge("sim.incremental.tape_bytes")
        .set(static_cast<double>(tape_.size() * sizeof(std::uint64_t)));
  }
  return stats;
}

ActivityStats IncrementalSession::assemble(const Netlist& nl, const std::vector<bool>& dirty,
                                           ActivityStats&& replayed) const {
  // Nets outside the cone replay the baseline bit for bit, so their
  // counters are the baseline's counters; the loop bound is the
  // baseline's net count because every appended net is dirty.
  (void)nl;
  for (std::size_t n = 0; n < base_->num_nets(); ++n) {
    if (dirty[n]) continue;
    replayed.toggles[n] = base_stats_.toggles[n];
    replayed.ones[n] = base_stats_.ones[n];
    if (!replayed.bit_toggles.empty() && !base_stats_.bit_toggles.empty()) {
      replayed.bit_toggles[n] = base_stats_.bit_toggles[n];
    }
    // Batch-means cells partition exactly like the counters above:
    // clean nets carry the baseline's per-window cells, dirty nets keep
    // the replayed ones (probe cells were fully recomputed already).
    replayed.net_batches.copy_series(base_stats_.net_batches, n);
  }
  replayed.cycles = base_stats_.cycles;
  return std::move(replayed);
}

ActivityStats IncrementalSession::replay_scalar(const Netlist& nl, const ExprPool* pool,
                                                const NetVarMap* vars,
                                                const std::vector<ExprRef>& probes,
                                                CycleSink* sink,
                                                const std::vector<CellId>& cone) {
  const std::size_t nn = nl.num_nets();
  const std::uint64_t frames = warmup_frames_ + measured_frames_;
  const std::vector<CellId> cone_order = cone_eval_order(nl, cone);
  const std::vector<bool> dirty = dirty_net_mask(nl, cone_order);
  std::vector<std::uint32_t> dirty_nets;
  for (std::uint32_t n = 0; n < nn; ++n) {
    if (dirty[n]) dirty_nets.push_back(n);
  }

  std::vector<std::uint64_t> value(nn, 0);
  std::vector<std::uint64_t> prev(nn, 0);
  std::vector<std::uint64_t> state(nl.num_cells(), 0);
  std::vector<std::uint64_t> mask(nn);
  for (NetId id : nl.net_ids()) mask[id.value()] = width_mask(nl.net(id).width);

  ActivityStats rs = make_stats_shape(nl, probes.size(), cfg_.bit_stats, cfg_.batch_frames);
  std::vector<bool> prev_probe(probes.size(), false);
  std::vector<std::uint32_t> sink_toggles(sink ? nn : 0, 0);

  std::unique_ptr<Stimulus> verify_stim;
  if (cfg_.verify_stimulus) verify_stim = stimuli_();

  for (std::uint64_t f = 0; f < frames; ++f) {
    if (f > 0) std::swap(prev, value);
    std::memcpy(value.data(), tape_.data() + f * frame_words_,
                frame_words_ * sizeof(std::uint64_t));
    if (verify_stim) {
      for (CellId pi : nl.primary_inputs()) {
        const NetId out = nl.cell(pi).out;
        const std::uint64_t expect = verify_stim->next(nl, pi, f) & mask[out.value()];
        if (expect != value[out.value()]) {
          // The factory is not round-invariant: the tape cannot stand
          // in for a re-simulation. Permanently fall back to full runs.
          disabled_ = true;
          obs::metrics().counter("sim.incremental.verify_failures").add(1);
          return full_measure_with_probes(nl, pool, vars, probes, sink);
        }
      }
    }
    for (CellId id : cone_order) {
      const Cell& c = nl.cell(id);
      value[c.out.value()] =
          eval_scalar_cell(c, value.data(), state[id.value()]) & mask[c.out.value()];
    }
    const bool measured = f >= warmup_frames_;
    if (measured && rs.net_batches.enabled()) {
      rs.net_batches.begin_frame();
      rs.probe_batches.begin_frame();
    }
    if (measured) {
      if (f > 0) {
        for (std::uint32_t n : dirty_nets) {
          std::uint64_t diff = value[n] ^ prev[n];
          const auto pc = static_cast<std::uint64_t>(std::popcount(diff));
          rs.toggles[n] += pc;
          rs.net_batches.add(n, pc);
          if (!rs.bit_toggles.empty()) {
            auto& bits = rs.bit_toggles[n];
            while (diff) {
              ++bits[static_cast<std::size_t>(std::countr_zero(diff))];
              diff &= diff - 1;
            }
          }
        }
      }
      for (std::uint32_t n : dirty_nets) rs.ones[n] += value[n] & 1;
      if (sink) {
        if (f > 0) {
          for (std::size_t n = 0; n < nn; ++n) {
            sink_toggles[n] = static_cast<std::uint32_t>(std::popcount(value[n] ^ prev[n]));
          }
        } else {
          std::fill(sink_toggles.begin(), sink_toggles.end(), 0);
        }
        sink->on_cycle(nl, f, 1, sink_toggles, value.data());
      }
    }
    // Probes run on every frame — warmup included — so the previous
    // probe value threads across the warmup boundary exactly as it
    // does inside the engines (reset_stats drops counters, not state).
    for (std::size_t p = 0; p < probes.size(); ++p) {
      const bool hold = pool->eval(probes[p], [&](BoolVar v) {
        return (value[vars->net_of(v).value()] & 1) != 0;
      });
      if (measured) {
        if (hold) {
          ++rs.probe_true[p];
          rs.probe_batches.add(p, 1);
        }
        if (f > 0 && hold != prev_probe[p]) ++rs.probe_toggles[p];
      }
      prev_probe[p] = hold;
    }
    for (CellId id : cone_order) {
      const Cell& c = nl.cell(id);
      if (c.kind == CellKind::Reg) clock_scalar_reg(c, value.data(), state[id.value()]);
    }
  }
  return assemble(nl, dirty, std::move(rs));
}

ActivityStats IncrementalSession::replay_parallel(const Netlist& nl, const ExprPool* pool,
                                                  const NetVarMap* vars,
                                                  const std::vector<ExprRef>& probes,
                                                  CycleSink* sink,
                                                  const std::vector<CellId>& cone) {
  const std::uint64_t frames = warmup_frames_ + measured_frames_;
  const unsigned lanes = cfg_.lanes;
  PlaneBlock lane_mask{};
  for (unsigned k = 0; k < K; ++k) {
    const unsigned lo = 64 * k;
    if (lanes >= lo + 64) {
      lane_mask[k] = ~std::uint64_t{0};
    } else if (lanes > lo) {
      lane_mask[k] = (std::uint64_t{1} << (lanes - lo)) - 1;
    } else {
      lane_mask[k] = 0;
    }
  }

  // Plane/state layouts are assigned in ascending id order, so the
  // baseline netlist's offsets are a stable prefix of these — the tape
  // frame memcpys straight into the front of the plane array.
  std::vector<std::size_t> plane_off(nl.num_nets());
  std::size_t planes_total = 0;
  for (NetId id : nl.net_ids()) {
    plane_off[id.value()] = planes_total;
    planes_total += nl.net(id).width;
  }
  std::vector<std::size_t> state_off(nl.num_cells());
  std::size_t state_planes = 0;
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    state_off[id.value()] = state_planes;
    if (c.kind == CellKind::Reg || cell_kind_is_latch(c.kind)) state_planes += c.width;
  }

  const std::vector<CellId> cone_order = cone_eval_order(nl, cone);
  const std::vector<bool> dirty = dirty_net_mask(nl, cone_order);
  const PlaneProgram prog = build_plane_program(nl, cone_order, plane_off, state_off);

  std::vector<std::uint64_t> planes(planes_total * K, 0);
  std::vector<std::uint64_t> prev(planes_total * K, 0);
  std::vector<std::uint64_t> state(state_planes * K, 0);

  ActivityStats rs = make_stats_shape(nl, probes.size(), cfg_.bit_stats, cfg_.batch_frames);
  std::vector<std::uint64_t> prev_probe(probes.size() * K, 0);
  std::vector<std::uint32_t> sink_toggles(sink ? nl.num_nets() : 0, 0);
  LaneExprEval expr_eval(pool, vars, plane_off, lane_mask);

  for (std::uint64_t f = 0; f < frames; ++f) {
    if (f > 0) std::swap(prev, planes);
    std::memcpy(planes.data(), tape_.data() + f * frame_words_,
                frame_words_ * sizeof(std::uint64_t));
    eval_plane_program(prog, planes.data(), state.data(), lane_mask.data());
    const bool measured = f >= warmup_frames_;
    if (measured && rs.net_batches.enabled()) {
      rs.net_batches.begin_frame();
      rs.probe_batches.begin_frame();
    }
    if (measured) {
      for (NetId id : nl.net_ids()) {
        const std::size_t n = id.value();
        if (!dirty[n]) continue;
        const unsigned width = nl.net(id).width;
        const std::size_t off = plane_off[n] * K;
        if (f > 0) {
          std::uint64_t total = 0;
          for (unsigned b = 0; b < width; ++b) {
            std::uint64_t pc = 0;
            for (unsigned k = 0; k < K; ++k) {
              pc += static_cast<std::uint64_t>(
                  std::popcount(planes[off + b * K + k] ^ prev[off + b * K + k]));
            }
            total += pc;
            if (!rs.bit_toggles.empty()) rs.bit_toggles[n][b] += pc;
          }
          rs.toggles[n] += total;
          rs.net_batches.add(n, total);
        }
        std::uint64_t ones_pc = 0;
        for (unsigned k = 0; k < K; ++k) {
          ones_pc += static_cast<std::uint64_t>(std::popcount(planes[off + k]));
        }
        rs.ones[n] += ones_pc;
      }
      if (sink) {
        for (NetId id : nl.net_ids()) {
          const std::size_t n = id.value();
          std::uint32_t total = 0;
          if (f > 0) {
            const unsigned width = nl.net(id).width;
            const std::size_t off = plane_off[n] * K;
            for (unsigned b = 0; b < width * K; ++b) {
              total += static_cast<std::uint32_t>(std::popcount(planes[off + b] ^ prev[off + b]));
            }
          }
          sink_toggles[n] = total;
        }
        sink->on_cycle(nl, f, lanes, sink_toggles, nullptr);
      }
    }
    if (!probes.empty()) {
      expr_eval.next_cycle(planes.data());
      std::uint64_t hold[K];
      for (std::size_t p = 0; p < probes.size(); ++p) {
        expr_eval.eval(probes[p], hold);
        std::uint64_t pc_true = 0;
        std::uint64_t pc_tog = 0;
        for (unsigned k = 0; k < K; ++k) {
          pc_true += static_cast<std::uint64_t>(std::popcount(hold[k]));
          pc_tog += static_cast<std::uint64_t>(std::popcount(hold[k] ^ prev_probe[p * K + k]));
          prev_probe[p * K + k] = hold[k];
        }
        if (measured) {
          rs.probe_true[p] += pc_true;
          rs.probe_batches.add(p, pc_true);
          if (f > 0) rs.probe_toggles[p] += pc_tog;
        }
      }
    }
    clock_plane_program(prog, planes.data(), state.data());
  }
  return assemble(nl, dirty, std::move(rs));
}

}  // namespace opiso
