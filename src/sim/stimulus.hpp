#pragma once
// Stimulus generators for cycle-based simulation.
//
// The paper's experiments hinge on the *statistics* of the stimuli: the
// design1 sweep varies the static probability and toggle rate of a
// primary-input activation signal (Sec. 6). ControlledBitStimulus
// realizes an exact stationary Markov bit stream with a requested
// Pr[1] and toggle rate; IdleBurstStimulus produces the long idle
// stretches that make AND/OR isolation effective; CompositeStimulus
// routes different generators to different primary inputs.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace opiso {

/// Supplies one value per primary input per cycle. The simulator calls
/// next() for each PI in insertion order, once per cycle, so stateful
/// generators see a deterministic call sequence.
class Stimulus {
 public:
  virtual ~Stimulus() = default;
  [[nodiscard]] virtual std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) = 0;

  /// Non-null iff this generator is a plain uniform draw from the
  /// returned Rng (one next_bits(width) per call, no other state). The
  /// lane-parallel engine uses this to advance all lane RNGs in
  /// structure-of-arrays lockstep instead of through virtual dispatch;
  /// a caller that takes the pointer owns the stream from then on.
  [[nodiscard]] virtual Rng* uniform_rng() { return nullptr; }
};

/// Uniform random words on every input.
class UniformStimulus : public Stimulus {
 public:
  explicit UniformStimulus(std::uint64_t seed = 1);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;
  Rng* uniform_rng() override { return &rng_; }

 private:
  Rng rng_;
};

/// Holds every input at a constant value (defaults to 0); selected
/// inputs can be overridden. Useful for directed unit tests.
class ConstantStimulus : public Stimulus {
 public:
  ConstantStimulus() = default;
  void set(const std::string& input_net_name, std::uint64_t value);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

 private:
  std::unordered_map<std::string, std::uint64_t> values_;
};

/// Replays a per-input vector of values; repeats the last value once the
/// vector is exhausted (or wraps, if configured).
class VectorStimulus : public Stimulus {
 public:
  explicit VectorStimulus(bool wrap = false) : wrap_(wrap) {}
  void set(const std::string& input_net_name, std::vector<std::uint64_t> values);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

 private:
  bool wrap_;
  std::unordered_map<std::string, std::vector<std::uint64_t>> vectors_;
};

/// Stationary two-state Markov chain over a single bit with exact target
/// statistics: Pr[1] = p1 and E[toggles/cycle] = tr. Requires
/// tr <= 2*min(p1, 1-p1); transition probabilities follow from
/// detailed balance: p0->1 = tr/(2*(1-p1)), p1->0 = tr/(2*p1).
/// For multi-bit inputs, each bit runs an independent chain.
class ControlledBitStimulus : public Stimulus {
 public:
  ControlledBitStimulus(double p1, double toggle_rate, std::uint64_t seed = 7);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

  [[nodiscard]] double p1() const { return p1_; }
  [[nodiscard]] double toggle_rate() const { return tr_; }

 private:
  double p1_;
  double tr_;
  double p01_;
  double p10_;
  Rng rng_;
  std::unordered_map<std::uint32_t, std::uint64_t> state_;  ///< per-PI word
  std::unordered_map<std::uint32_t, bool> started_;
};

/// Alternating active/idle bursts with geometric lengths. During active
/// bursts data inputs are uniform random; during idle bursts they hold.
/// Mirrors the "long periods in which the output is not used" scenario
/// of Sec. 1.
class IdleBurstStimulus : public Stimulus {
 public:
  /// mean_active / mean_idle: expected burst lengths in cycles.
  IdleBurstStimulus(double mean_active, double mean_idle, std::uint64_t seed = 11);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

  /// Name of the 1-bit input that publishes the burst state (1 = active);
  /// if a PI with this name exists it is driven with the phase bit.
  void set_phase_input(std::string name) { phase_input_ = std::move(name); }

 private:
  void advance_phase();
  double p_leave_active_;
  double p_leave_idle_;
  bool active_ = true;
  std::uint64_t phase_cycle_ = ~std::uint64_t{0};
  std::string phase_input_;
  Rng rng_;
  std::unordered_map<std::uint32_t, std::uint64_t> held_;
};

/// Temporally correlated data stream: a bounded random walk
/// x(t+1) = x(t) ± step with step ~ U[0, max_step]. Consecutive samples
/// differ by little, so low-order bits toggle like white noise while
/// high-order bits toggle rarely — the dual-bit-type signal shape of
/// Landman's macro models ([5] in the paper) that real DSP data
/// exhibits and uniform random vectors do not.
class CorrelatedWalkStimulus : public Stimulus {
 public:
  /// max_step as a fraction of full scale (e.g. 0.02 -> +-2% steps).
  explicit CorrelatedWalkStimulus(double relative_step = 0.02, std::uint64_t seed = 17);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

 private:
  double relative_step_;
  Rng rng_;
  std::unordered_map<std::uint32_t, std::uint64_t> state_;
  std::unordered_map<std::uint32_t, bool> started_;
};

/// Routes selected inputs (by net name) to dedicated generators; the
/// fallback generator handles everything else.
class CompositeStimulus : public Stimulus {
 public:
  explicit CompositeStimulus(std::unique_ptr<Stimulus> fallback);
  void route(const std::string& input_net_name, std::unique_ptr<Stimulus> gen);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

 private:
  std::unique_ptr<Stimulus> fallback_;
  std::unordered_map<std::string, std::unique_ptr<Stimulus>> routes_;
};

}  // namespace opiso
