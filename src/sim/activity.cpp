#include "sim/activity.hpp"

#include "support/error.hpp"

namespace opiso {

BoolVar NetVarMap::var_of(const Netlist& nl, NetId net) {
  OPISO_REQUIRE(nl.net(net).width == 1, "NetVarMap: only 1-bit nets can be Boolean variables");
  if (var_by_net_.size() < nl.num_nets()) var_by_net_.resize(nl.num_nets(), kNoVar);
  BoolVar& slot = var_by_net_[net.value()];
  if (slot == kNoVar) {
    slot = static_cast<BoolVar>(nets_.size());
    nets_.push_back(net);
  }
  return slot;
}

NetId NetVarMap::net_of(BoolVar v) const {
  OPISO_REQUIRE(v < nets_.size(), "NetVarMap: unknown variable");
  return nets_[v];
}

BoolVar NetVarMap::try_var_of(NetId net) const {
  if (net.value() >= var_by_net_.size()) return kNoVar;
  return var_by_net_[net.value()];
}

double ActivityStats::toggle_rate(NetId net) const {
  OPISO_REQUIRE(cycles > 0, "toggle_rate: no simulated cycles");
  OPISO_REQUIRE(net.value() < toggles.size(), "toggle_rate: unknown net");
  return static_cast<double>(toggles[net.value()]) / static_cast<double>(cycles);
}

double ActivityStats::prob_one(NetId net) const {
  OPISO_REQUIRE(cycles > 0, "prob_one: no simulated cycles");
  OPISO_REQUIRE(net.value() < ones.size(), "prob_one: unknown net");
  return static_cast<double>(ones[net.value()]) / static_cast<double>(cycles);
}

double ActivityStats::probe_probability(std::size_t probe) const {
  OPISO_REQUIRE(cycles > 0, "probe_probability: no simulated cycles");
  OPISO_REQUIRE(probe < probe_true.size(), "probe_probability: unknown probe");
  return static_cast<double>(probe_true[probe]) / static_cast<double>(cycles);
}

double ActivityStats::probe_toggle_rate(std::size_t probe) const {
  OPISO_REQUIRE(cycles > 0, "probe_toggle_rate: no simulated cycles");
  OPISO_REQUIRE(probe < probe_toggles.size(), "probe_toggle_rate: unknown probe");
  return static_cast<double>(probe_toggles[probe]) / static_cast<double>(cycles);
}

double ActivityStats::bit_toggle_rate(NetId net, unsigned bit) const {
  OPISO_REQUIRE(cycles > 0, "bit_toggle_rate: no simulated cycles");
  OPISO_REQUIRE(has_bit_stats(), "bit_toggle_rate: bit-level statistics not collected");
  OPISO_REQUIRE(net.value() < bit_toggles.size(), "bit_toggle_rate: unknown net");
  const auto& bits = bit_toggles[net.value()];
  OPISO_REQUIRE(bit < bits.size(), "bit_toggle_rate: bit out of range");
  return static_cast<double>(bits[bit]) / static_cast<double>(cycles);
}

void ActivityStats::merge(const ActivityStats& other) {
  if (toggles.empty() && ones.empty() && probe_true.empty()) {
    *this = other;
    return;
  }
  OPISO_REQUIRE(toggles.size() == other.toggles.size() && ones.size() == other.ones.size(),
                "ActivityStats::merge: statistics cover different netlists");
  OPISO_REQUIRE(probe_true.size() == other.probe_true.size(),
                "ActivityStats::merge: statistics cover different probe sets");
  cycles += other.cycles;
  for (std::size_t n = 0; n < toggles.size(); ++n) toggles[n] += other.toggles[n];
  for (std::size_t n = 0; n < ones.size(); ++n) ones[n] += other.ones[n];
  for (std::size_t p = 0; p < probe_true.size(); ++p) {
    probe_true[p] += other.probe_true[p];
    probe_toggles[p] += other.probe_toggles[p];
  }
  net_batches.merge(other.net_batches);
  probe_batches.merge(other.probe_batches);
  if (!other.bit_toggles.empty()) {
    if (bit_toggles.empty()) {
      bit_toggles = other.bit_toggles;
    } else {
      OPISO_REQUIRE(bit_toggles.size() == other.bit_toggles.size(),
                    "ActivityStats::merge: bit statistics cover different netlists");
      for (std::size_t n = 0; n < bit_toggles.size(); ++n) {
        for (std::size_t b = 0; b < bit_toggles[n].size(); ++b) {
          bit_toggles[n][b] += other.bit_toggles[n][b];
        }
      }
    }
  }
}

void ActivityStats::reset() {
  cycles = 0;
  std::fill(toggles.begin(), toggles.end(), 0);
  std::fill(ones.begin(), ones.end(), 0);
  std::fill(probe_true.begin(), probe_true.end(), 0);
  std::fill(probe_toggles.begin(), probe_toggles.end(), 0);
  for (auto& bits : bit_toggles) std::fill(bits.begin(), bits.end(), 0);
  net_batches.reset();
  probe_batches.reset();
}

obs::JsonValue build_confidence_section(const Netlist& nl, const ActivityStats& stats,
                                        const obs::ConfidenceConfig& config,
                                        const std::vector<double>& net_power_weights_mw) {
  obs::ConfidenceInput input;
  input.nets = &stats.net_batches;
  input.cycles = stats.cycles;
  input.net_names.reserve(nl.num_nets());
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    input.net_names.push_back(nl.net(NetId(static_cast<std::uint32_t>(n))).name);
  }
  input.power_weights_mw = net_power_weights_mw;
  input.config = config;
  return obs::build_confidence_section(input);
}

obs::JsonValue build_coverage_section(const Netlist& nl, const ActivityStats& stats,
                                      const std::vector<CandidateExercise>& candidates) {
  obs::CoverageInput input;
  input.cycles = stats.cycles;
  input.net_names.reserve(nl.num_nets());
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    input.net_names.push_back(nl.net(NetId(static_cast<std::uint32_t>(n))).name);
  }
  input.net_toggles = stats.toggles;
  for (const CandidateExercise& c : candidates) {
    obs::CoverageInput::Candidate out;
    out.cell = c.cell;
    out.active_cycles = c.probe < stats.probe_true.size() ? stats.probe_true[c.probe] : 0;
    out.activation_toggles =
        c.probe < stats.probe_toggles.size() ? stats.probe_toggles[c.probe] : 0;
    input.candidates.push_back(std::move(out));
  }
  return obs::build_coverage_section(input);
}

}  // namespace opiso
