#pragma once
// Plane-block geometry of the bit-parallel engine.
//
// The lane-parallel simulator stores one *block* of kPlaneWords
// 64-bit words per net bit, so one pass over the netlist advances
// 64 * kPlaneWords stimulus lanes at once. The block width is a
// compile-time choice ("compile-time dispatch"): 8 words (512 lanes,
// one AVX-512 zmm per plane) when the translation units are compiled
// with AVX-512 codegen enabled, 4 words (256 lanes, one AVX2 ymm — or
// two SSE xmm, or four scalar words on any ISA) otherwise. Every plane
// kernel is written as a fixed-trip loop over kPlaneWords, which the
// compiler unrolls and, when -march permits, vectorizes; there are no
// intrinsics, so the portable std::uint64_t[4] build is the same code
// compiled without vector ISA flags and produces bit-identical
// statistics — the block width only changes how many lanes one pass
// carries, never what any lane computes.
//
// -DOPISO_FORCE_SCALAR_PLANES=ON (CMake) pins the portable 4-word
// layout and refuses vector -march flags for these kernels, so CI can
// prove the fallback path stays green and bit-identical.

#include <array>
#include <cstdint>

namespace opiso {

#if defined(OPISO_FORCE_SCALAR_PLANES)
inline constexpr unsigned kPlaneWords = 4;
#elif defined(__AVX512F__)
inline constexpr unsigned kPlaneWords = 8;
#else
inline constexpr unsigned kPlaneWords = 4;
#endif

static_assert(kPlaneWords == 4 || kPlaneWords == 8, "plane block must be 4 or 8 words");

/// One block: bit b of kPlaneWords*64 lanes. Word k holds lanes
/// [64k, 64k+64); lane l lives in word l/64, bit l%64.
using PlaneBlock = std::array<std::uint64_t, kPlaneWords>;

/// Instruction set the plane kernels were compiled for (diagnostics and
/// the CI SIMD-matrix assertion; never changes results).
[[nodiscard]] inline constexpr const char* plane_isa_name() {
#if defined(OPISO_FORCE_SCALAR_PLANES)
  return "scalar-forced";
#elif defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "scalar";
#endif
}

/// All-zero block plane accessors return for bits past a net's width.
/// Sized for the widest block so a pointer to it is valid for any
/// kPlaneWords.
inline constexpr std::array<std::uint64_t, 8> kZeroPlaneBlock{};

}  // namespace opiso
