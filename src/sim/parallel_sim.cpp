#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "netlist/traversal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cycle_trace.hpp"
#include "support/error.hpp"

namespace opiso {

// Lane-plane invariant: every stored plane word is masked to the
// active-lane mask block, so inactive-lane bits are always 0 and
// popcount-based statistics never see them. Bitwise NOT must therefore
// re-apply the mask.

namespace {
constexpr unsigned K = kPlaneWords;
}  // namespace

ParallelSimulator::ParallelSimulator(const Netlist& nl, unsigned lanes, const ExprPool* pool,
                                     const NetVarMap* vars)
    : nl_(nl), pool_(pool), vars_(vars), lanes_(lanes) {
  OPISO_REQUIRE(lanes >= 1 && lanes <= kMaxLanes,
                "ParallelSimulator: lanes must be in [1," + std::to_string(kMaxLanes) + "]");
  nl_.validate();
  for (unsigned k = 0; k < K; ++k) {
    const unsigned lo = 64 * k;
    if (lanes_ >= lo + 64) {
      lane_mask_[k] = ~std::uint64_t{0};
    } else if (lanes_ > lo) {
      lane_mask_[k] = (std::uint64_t{1} << (lanes_ - lo)) - 1;
    } else {
      lane_mask_[k] = 0;
    }
  }
  order_ = topological_order(nl_);

  plane_off_.resize(nl_.num_nets());
  std::size_t planes = 0;
  for (NetId id : nl_.net_ids()) {
    plane_off_[id.value()] = planes;
    planes += nl_.net(id).width;
  }
  planes_.assign(planes * K, 0);
  prev_.assign(planes * K, 0);

  state_off_.resize(nl_.num_cells());
  std::size_t state_planes = 0;
  for (CellId id : nl_.cell_ids()) {
    const Cell& c = nl_.cell(id);
    state_off_[id.value()] = state_planes;
    if (c.kind == CellKind::Reg || cell_kind_is_latch(c.kind)) state_planes += c.width;
  }
  state_.assign(state_planes * K, 0);

  program_ = build_plane_program(nl_, order_, plane_off_, state_off_);

  stats_.toggles.assign(nl_.num_nets(), 0);
  stats_.ones.assign(nl_.num_nets(), 0);
}

std::size_t ParallelSimulator::add_probe(ExprRef expr) {
  OPISO_REQUIRE(pool_ != nullptr && vars_ != nullptr,
                "ParallelSimulator: probes require an ExprPool and NetVarMap");
  for (BoolVar v : pool_->support(expr)) {
    NetId net = vars_->net_of(v);
    OPISO_REQUIRE(net.value() < nl_.num_nets(), "probe variable bound to foreign net");
  }
  probes_.push_back(expr);
  prev_probe_.insert(prev_probe_.end(), K, 0);
  stats_.probe_true.push_back(0);
  stats_.probe_toggles.push_back(0);
  if (stats_.net_batches.enabled()) {
    stats_.probe_batches.configure(probes_.size(), stats_.net_batches.batch_frames());
  }
  return probes_.size() - 1;
}

void ParallelSimulator::set_stimulus(const LaneStimulusFactory& make) {
  OPISO_REQUIRE(make != nullptr, "ParallelSimulator: null stimulus factory");
  lane_stims_.clear();
  lane_stims_.reserve(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) {
    lane_stims_.push_back(make(l));
    OPISO_REQUIRE(lane_stims_.back() != nullptr,
                  "ParallelSimulator: stimulus factory returned null");
  }
  // SoA fast path: when every lane is a plain uniform generator, gather
  // the per-lane xoshiro states into four parallel arrays so one loop
  // advances all lanes (identical sequences, computed blockwise).
  uniform_fast_ = true;
  for (const auto& s : lane_stims_) {
    if (s->uniform_rng() == nullptr) {
      uniform_fast_ = false;
      break;
    }
  }
  if (uniform_fast_) {
    lanes_padded_ = (lanes_ + 7) & ~std::size_t{7};
    // Padding lanes hold the all-zero xoshiro state, whose output is
    // identically zero — they never contaminate real lanes' planes.
    rng_soa_.assign(4 * lanes_padded_, 0);
    for (unsigned l = 0; l < lanes_; ++l) {
      const std::array<std::uint64_t, 4> st = lane_stims_[l]->uniform_rng()->state();
      for (unsigned i = 0; i < 4; ++i) rng_soa_[i * lanes_padded_ + l] = st[i];
    }
    pi_masks_.clear();
    for (CellId pi : nl_.primary_inputs()) {
      const unsigned w = nl_.cell(pi).width;
      pi_masks_.push_back(w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1));
    }
    uniform_buf_.assign(pi_masks_.size() * lanes_padded_, 0);
  } else {
    rng_soa_.clear();
    pi_masks_.clear();
    uniform_buf_.clear();
  }
}

void ParallelSimulator::enable_bit_stats() {
  if (!stats_.bit_toggles.empty()) return;
  stats_.bit_toggles.resize(nl_.num_nets());
  for (NetId id : nl_.net_ids()) {
    stats_.bit_toggles[id.value()].assign(nl_.net(id).width, 0);
  }
}

void ParallelSimulator::enable_batch_stats(std::uint32_t batch_frames) {
  stats_.net_batches.configure(nl_.num_nets(), batch_frames);
  stats_.probe_batches.configure(probes_.size(), batch_frames);
}

namespace {

/// Transpose an 8x8 bit matrix packed row-major into a word (element
/// (i,j) = bit 8i+j) with three delta-swap rounds (Hacker's Delight).
inline std::uint64_t transpose8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

inline std::uint64_t rotl64(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// N consecutive xoshiro256** draws per lane, all lanes in one pass:
/// draw p of lane l lands in out[p * stride + l], masked to masks[p].
/// N is a template parameter so the draw loop fully unrolls and the
/// lane loop body is straight-line — the compiler then vectorizes over
/// lanes with the four state words held in registers across all N
/// draws, instead of spilling them between draws. The multiplies by 5
/// and 9 are written as shift-adds so the loop vectorizes on ISAs
/// without a 64-bit vector multiply.
template <unsigned N>
void uniform_draws(std::uint64_t* __restrict s0, std::uint64_t* __restrict s1,
                   std::uint64_t* __restrict s2, std::uint64_t* __restrict s3, std::size_t n,
                   const std::uint64_t* __restrict masks, std::uint64_t* __restrict out,
                   std::size_t stride) {
  for (std::size_t l = 0; l < n; ++l) {
    std::uint64_t a = s0[l];
    std::uint64_t b = s1[l];
    std::uint64_t c = s2[l];
    std::uint64_t d = s3[l];
    for (unsigned p = 0; p < N; ++p) {
      const std::uint64_t b5 = (b << 2) + b;
      const std::uint64_t r7 = rotl64(b5, 7);
      out[p * stride + l] = ((r7 << 3) + r7) & masks[p];
      const std::uint64_t t = b << 17;
      c ^= a;
      d ^= b;
      b ^= c;
      a ^= d;
      c ^= t;
      d = rotl64(d, 45);
    }
    s0[l] = a;
    s1[l] = b;
    s2[l] = c;
    s3[l] = d;
  }
}

}  // namespace

void ParallelSimulator::drive_inputs() {
  // Per lane, each stimulus sees the same (PI, cycle) call sequence the
  // scalar simulator issues — the transposition into planes is pure
  // bookkeeping, so lane l replays scalar run l exactly. The words are
  // gathered first and transposed in 8x8 bit blocks: the blocked form
  // runs in O(width) per 8 lanes instead of O(width) per lane, and
  // drive_inputs is the one per-lane (non-amortized) stage of the
  // macro-cycle, so it is the engine's throughput ceiling.
  std::uint64_t tmp[kMaxLanes];
  const unsigned groups = (lanes_ + 7) / 8;
  if (uniform_fast_) {
    // All this cycle's draws for all PIs in one pass over the SoA
    // state arrays, in chunks of up to 8 draws per pass — within a
    // chunk the lane states live in registers, so the per-draw cost is
    // the xoshiro arithmetic plus one store. Per lane, draw order is
    // PI insertion order: exactly the call sequence the scalar
    // simulator issues, so lane l's stream replays scalar run l.
    std::uint64_t* const s0 = rng_soa_.data();
    std::uint64_t* const s1 = s0 + lanes_padded_;
    std::uint64_t* const s2 = s1 + lanes_padded_;
    std::uint64_t* const s3 = s2 + lanes_padded_;
    const std::size_t n = lanes_padded_;
    std::size_t p = 0;
    while (p < pi_masks_.size()) {
      const std::uint64_t* const masks = pi_masks_.data() + p;
      std::uint64_t* const out = uniform_buf_.data() + p * n;
      // Chunks are capped at 4 draws: larger unrolled bodies exceed the
      // vector register budget and the compiler spills the lane states,
      // costing more than the chunking saves.
      switch (std::min<std::size_t>(pi_masks_.size() - p, 4)) {
        case 4: uniform_draws<4>(s0, s1, s2, s3, n, masks, out, n); p += 4; break;
        case 3: uniform_draws<3>(s0, s1, s2, s3, n, masks, out, n); p += 3; break;
        case 2: uniform_draws<2>(s0, s1, s2, s3, n, masks, out, n); p += 2; break;
        default: uniform_draws<1>(s0, s1, s2, s3, n, masks, out, n); p += 1; break;
      }
    }
  }
  std::size_t pi_index = 0;
  for (CellId pi : nl_.primary_inputs()) {
    const Cell& c = nl_.cell(pi);
    const unsigned width = c.width;
    const std::size_t off = plane_off_[c.out.value()] * K;
    const std::uint64_t* lane_words;
    if (uniform_fast_) {
      lane_words = uniform_buf_.data() + pi_index * lanes_padded_;
    } else {
      const std::uint64_t wmask =
          width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
      for (unsigned l = 0; l < lanes_; ++l) {
        tmp[l] = lane_stims_[l]->next(nl_, pi, cycle_) & wmask;
      }
      for (unsigned l = lanes_; l < 8 * groups; ++l) tmp[l] = 0;
      lane_words = tmp;
    }
    ++pi_index;
    for (unsigned b = 0; b < width * K; ++b) planes_[off + b] = 0;
    // The transposition is phrased as three flat loops — truncating
    // byte pack, delta-swap rounds over all groups, byte scatter — so
    // each vectorizes over the group dimension instead of handling one
    // 8-lane group at a time. Group g's word lands in byte g of the
    // destination plane's word array; that byte view of a little-endian
    // word array IS the lane order (group g = word g/8, byte g%8), so
    // the scatter is contiguous byte stores. Big-endian hosts take the
    // shift-or scatter instead.
    std::uint64_t xg[kMaxLanes / 8];
    for (unsigned cb = 0; cb * 8 < width; ++cb) {  // byte column cb: bits 8cb..8cb+7
      std::uint8_t* const pb = reinterpret_cast<std::uint8_t*>(xg);
      for (unsigned l = 0; l < 8 * groups; ++l) {
        pb[l] = static_cast<std::uint8_t>(lane_words[l] >> (8 * cb));
      }
      // byte j of xg[g] now holds bit 8cb+j of lanes 8g..8g+7
      for (unsigned g = 0; g < groups; ++g) xg[g] = transpose8x8(xg[g]);
      const unsigned bits = std::min(8u, width - 8 * cb);
      for (unsigned j = 0; j < bits; ++j) {
        std::uint64_t* const dst = &planes_[off + (8 * cb + j) * K];
        if constexpr (std::endian::native == std::endian::little) {
          std::uint8_t* const out = reinterpret_cast<std::uint8_t*>(dst);
          for (unsigned g = 0; g < groups; ++g) {
            out[g] = static_cast<std::uint8_t>(xg[g] >> (8 * j));
          }
        } else {
          for (unsigned g = 0; g < groups; ++g) {
            dst[g / 8] |= ((xg[g] >> (8 * j)) & 0xFF) << (8 * (g % 8));
          }
        }
      }
    }
  }
}

void ParallelSimulator::eval_expr_lanes(ExprRef r, std::uint64_t* out) {
  const std::size_t idx = r.value();
  if (idx * K < expr_val_.size() && expr_gen_[idx] == gen_) {
    for (unsigned k = 0; k < K; ++k) out[k] = expr_val_[idx * K + k];
    return;
  }
  const ExprNode& n = pool_->node(r);
  std::uint64_t v[K] = {};
  std::uint64_t tmp_b[K];
  switch (n.op) {
    case ExprOp::Const0:
      break;
    case ExprOp::Const1:
      for (unsigned k = 0; k < K; ++k) v[k] = lane_mask_[k];
      break;
    case ExprOp::Var: {
      const std::size_t off = plane_off_[vars_->net_of(n.var).value()] * K;  // plane 0 = bit 0
      for (unsigned k = 0; k < K; ++k) v[k] = planes_[off + k];
      break;
    }
    case ExprOp::Not:
      eval_expr_lanes(n.a, v);
      for (unsigned k = 0; k < K; ++k) v[k] = ~v[k] & lane_mask_[k];
      break;
    case ExprOp::And:
      eval_expr_lanes(n.a, v);
      eval_expr_lanes(n.b, tmp_b);
      for (unsigned k = 0; k < K; ++k) v[k] &= tmp_b[k];
      break;
    case ExprOp::Or:
      eval_expr_lanes(n.a, v);
      eval_expr_lanes(n.b, tmp_b);
      for (unsigned k = 0; k < K; ++k) v[k] |= tmp_b[k];
      break;
  }
  if (idx * K >= expr_val_.size()) {
    expr_val_.resize(pool_->num_nodes() * K, 0);
    expr_gen_.resize(pool_->num_nodes(), 0);
  }
  for (unsigned k = 0; k < K; ++k) {
    expr_val_[idx * K + k] = v[k];
    out[k] = v[k];
  }
  expr_gen_[idx] = gen_;
}

void ParallelSimulator::set_cycle_sink(CycleSink* sink) {
  sink_ = sink;
  if (sink_) sink_toggles_.assign(nl_.num_nets(), 0);
}

void ParallelSimulator::record_stats() {
  const bool bits = !stats_.bit_toggles.empty();
  const bool batches = stats_.net_batches.enabled();
  if (batches) {
    stats_.net_batches.begin_frame();
    stats_.probe_batches.begin_frame();
  }
  for (NetId id : nl_.net_ids()) {
    const std::size_t n = id.value();
    const unsigned width = nl_.net(id).width;
    const std::size_t off = plane_off_[n] * K;
    if (has_prev_) {
      std::uint64_t total = 0;
      for (unsigned b = 0; b < width; ++b) {
        std::uint64_t pc = 0;
        for (unsigned k = 0; k < K; ++k) {
          pc += static_cast<std::uint64_t>(
              std::popcount(planes_[off + b * K + k] ^ prev_[off + b * K + k]));
        }
        total += pc;
        if (bits) stats_.bit_toggles[n][b] += pc;
      }
      stats_.toggles[n] += total;
      if (batches) stats_.net_batches.add(n, total);
      if (sink_) sink_toggles_[n] = static_cast<std::uint32_t>(total);
    }
    std::uint64_t ones_pc = 0;
    for (unsigned k = 0; k < K; ++k) {
      ones_pc += static_cast<std::uint64_t>(std::popcount(planes_[off + k]));
    }
    stats_.ones[n] += ones_pc;
  }
  if (sink_) {
    if (!has_prev_) std::fill(sink_toggles_.begin(), sink_toggles_.end(), 0);
    sink_->on_cycle(nl_, cycle_, lanes_, sink_toggles_, nullptr);
  }
  if (!probes_.empty()) {
    ++gen_;
    std::uint64_t hold[K];
    for (std::size_t p = 0; p < probes_.size(); ++p) {
      eval_expr_lanes(probes_[p], hold);
      std::uint64_t pc_true = 0;
      std::uint64_t pc_tog = 0;
      for (unsigned k = 0; k < K; ++k) {
        pc_true += static_cast<std::uint64_t>(std::popcount(hold[k]));
        pc_tog += static_cast<std::uint64_t>(std::popcount(hold[k] ^ prev_probe_[p * K + k]));
        prev_probe_[p * K + k] = hold[k];
      }
      stats_.probe_true[p] += pc_true;
      if (batches) stats_.probe_batches.add(p, pc_true);
      if (has_prev_) stats_.probe_toggles[p] += pc_tog;
    }
  }
  stats_.cycles += lanes_;
}

void ParallelSimulator::run(std::uint64_t cycles) {
  OPISO_REQUIRE(lane_stims_.size() == lanes_,
                "ParallelSimulator::run: set_stimulus() must be called first");
  OPISO_SPAN("sim.parallel.run");
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < cycles; ++i) {
    // Every net plane is rewritten below (PO cells drive no net), so
    // last cycle's values are retired into prev_ by pointer swap rather
    // than a copy; planes_ keeps the final values once run() returns.
    if (has_prev_) std::swap(prev_, planes_);
    drive_inputs();
    eval_plane_program(program_, planes_.data(), state_.data(), lane_mask_.data());
    if (frame_sink_) frame_sink_->on_frame(cycle_, planes_.data(), planes_.size());
    record_stats();
    clock_plane_program(program_, planes_.data(), state_.data());
    has_prev_ = true;
    ++cycle_;
  }
  // Coarse-boundary metrics flush (once per run(), never per cycle).
  const std::uint64_t run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  const std::uint64_t lane_cycles = cycles * lanes_;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sim.parallel.runs").add(1);
  m.counter("sim.parallel.cycles").add(cycles);
  m.counter("sim.parallel.lane_cycles").add(lane_cycles);
  m.counter("sim.parallel.run_ns").add(run_ns);
  if (run_ns > 0) {
    m.gauge("sim.parallel.lanes_per_sec")
        .set(static_cast<double>(lane_cycles) * 1e9 / static_cast<double>(run_ns));
  }
}

void ParallelSimulator::reset_state() {
  std::fill(planes_.begin(), planes_.end(), 0);
  std::fill(prev_.begin(), prev_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
  has_prev_ = false;
  cycle_ = 0;
}

std::uint64_t ParallelSimulator::lane_value(NetId net, unsigned lane) const {
  OPISO_REQUIRE(net.valid() && net.value() < nl_.num_nets(), "lane_value: invalid net");
  OPISO_REQUIRE(lane < lanes_, "lane_value: lane out of range");
  const unsigned width = nl_.net(net).width;
  const std::size_t off = plane_off_[net.value()] * K;
  const unsigned word = lane / 64;
  const unsigned bit = lane % 64;
  std::uint64_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    v |= ((planes_[off + b * K + word] >> bit) & 1) << b;
  }
  return v;
}

}  // namespace opiso
