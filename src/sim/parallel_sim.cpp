#include "sim/parallel_sim.hpp"

#include <bit>
#include <chrono>

#include "netlist/traversal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cycle_trace.hpp"
#include "support/error.hpp"

namespace opiso {

// Lane-plane invariant: every stored plane is masked to lane_mask_, so
// inactive-lane bits are always 0 and popcount-based statistics never
// see them. Bitwise NOT must therefore re-apply the mask.

ParallelSimulator::ParallelSimulator(const Netlist& nl, unsigned lanes, const ExprPool* pool,
                                     const NetVarMap* vars)
    : nl_(nl), pool_(pool), vars_(vars), lanes_(lanes) {
  OPISO_REQUIRE(lanes >= 1 && lanes <= kMaxLanes, "ParallelSimulator: lanes must be in [1,64]");
  nl_.validate();
  lane_mask_ = lanes_ >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << lanes_) - 1);
  order_ = topological_order(nl_);

  plane_off_.resize(nl_.num_nets());
  std::size_t planes = 0;
  for (NetId id : nl_.net_ids()) {
    plane_off_[id.value()] = planes;
    planes += nl_.net(id).width;
  }
  planes_.assign(planes, 0);
  prev_.assign(planes, 0);

  state_off_.resize(nl_.num_cells());
  std::size_t state_planes = 0;
  for (CellId id : nl_.cell_ids()) {
    const Cell& c = nl_.cell(id);
    state_off_[id.value()] = state_planes;
    if (c.kind == CellKind::Reg || cell_kind_is_latch(c.kind)) state_planes += c.width;
  }
  state_.assign(state_planes, 0);

  stats_.toggles.assign(nl_.num_nets(), 0);
  stats_.ones.assign(nl_.num_nets(), 0);
}

std::size_t ParallelSimulator::add_probe(ExprRef expr) {
  OPISO_REQUIRE(pool_ != nullptr && vars_ != nullptr,
                "ParallelSimulator: probes require an ExprPool and NetVarMap");
  for (BoolVar v : pool_->support(expr)) {
    NetId net = vars_->net_of(v);
    OPISO_REQUIRE(net.value() < nl_.num_nets(), "probe variable bound to foreign net");
  }
  probes_.push_back(expr);
  prev_probe_.push_back(0);
  stats_.probe_true.push_back(0);
  stats_.probe_toggles.push_back(0);
  return probes_.size() - 1;
}

void ParallelSimulator::set_stimulus(const LaneStimulusFactory& make) {
  OPISO_REQUIRE(make != nullptr, "ParallelSimulator: null stimulus factory");
  lane_stims_.clear();
  lane_stims_.reserve(lanes_);
  for (unsigned l = 0; l < lanes_; ++l) {
    lane_stims_.push_back(make(l));
    OPISO_REQUIRE(lane_stims_.back() != nullptr,
                  "ParallelSimulator: stimulus factory returned null");
  }
}

void ParallelSimulator::enable_bit_stats() {
  if (!stats_.bit_toggles.empty()) return;
  stats_.bit_toggles.resize(nl_.num_nets());
  for (NetId id : nl_.net_ids()) {
    stats_.bit_toggles[id.value()].assign(nl_.net(id).width, 0);
  }
}

namespace {

/// Transpose an 8x8 bit matrix packed row-major into a word (element
/// (i,j) = bit 8i+j) with three delta-swap rounds (Hacker's Delight).
inline std::uint64_t transpose8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

}  // namespace

void ParallelSimulator::drive_inputs() {
  // Per lane, each stimulus sees the same (PI, cycle) call sequence the
  // scalar simulator issues — the transposition into planes is pure
  // bookkeeping, so lane l replays scalar run l exactly. The words are
  // gathered first and transposed in 8x8 bit blocks: the blocked form
  // runs in O(width) per 8 lanes instead of O(width) per lane, and
  // drive_inputs is the one per-lane (non-amortized) stage of the
  // macro-cycle, so this is the engine's throughput ceiling.
  std::uint64_t tmp[kMaxLanes];
  for (CellId pi : nl_.primary_inputs()) {
    const Cell& c = nl_.cell(pi);
    const unsigned width = c.width;
    const std::size_t off = plane_off_[c.out.value()];
    const std::uint64_t wmask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    for (unsigned l = 0; l < lanes_; ++l) {
      tmp[l] = lane_stims_[l]->next(nl_, pi, cycle_) & wmask;
    }
    for (unsigned l = lanes_; l < kMaxLanes; ++l) tmp[l] = 0;
    for (unsigned b = 0; b < width; ++b) planes_[off + b] = 0;
    for (unsigned g = 0; g < kMaxLanes / 8; ++g) {        // lane group g: lanes 8g..8g+7
      for (unsigned cb = 0; cb * 8 < width; ++cb) {       // byte column cb: bits 8cb..8cb+7
        std::uint64_t x = 0;
        for (unsigned i = 0; i < 8; ++i) {
          x |= ((tmp[8 * g + i] >> (8 * cb)) & 0xFF) << (8 * i);
        }
        if (x == 0) continue;
        x = transpose8x8(x);  // byte j now holds bit 8cb+j of the 8 lanes
        const unsigned bits = std::min(8u, width - 8 * cb);
        for (unsigned j = 0; j < bits; ++j) {
          planes_[off + 8 * cb + j] |= ((x >> (8 * j)) & 0xFF) << (8 * g);
        }
      }
    }
  }
}

void ParallelSimulator::settle_combinational() {
  const std::uint64_t ones = lane_mask_;
  for (CellId id : order_) {
    const Cell& c = nl_.cell(id);
    if (c.kind == CellKind::PrimaryInput || c.kind == CellKind::PrimaryOutput) continue;
    const unsigned w = c.width;
    std::uint64_t* out = &planes_[plane_off_[c.out.value()]];
    switch (c.kind) {
      case CellKind::PrimaryInput:
      case CellKind::PrimaryOutput:
        break;
      case CellKind::Constant:
        for (unsigned b = 0; b < w; ++b) out[b] = ((c.param >> b) & 1) ? ones : 0;
        break;
      case CellKind::Reg: {
        const std::uint64_t* st = &state_[state_off_[id.value()]];
        for (unsigned b = 0; b < w; ++b) out[b] = st[b];
        break;
      }
      case CellKind::Add: {
        std::uint64_t carry = 0;
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t a = plane(c.ins[0], b);
          const std::uint64_t bb = plane(c.ins[1], b);
          const std::uint64_t axb = a ^ bb;
          out[b] = axb ^ carry;
          carry = (a & bb) | (carry & axb);
        }
        break;
      }
      case CellKind::Sub: {
        // a - b == a + ~b + 1: carry starts at all-ones; ~b is taken on
        // the width-masked value, so planes past b's width become ones —
        // exactly the scalar 64-bit two's-complement pattern.
        std::uint64_t carry = ones;
        for (unsigned b = 0; b < w; ++b) {
          const std::uint64_t a = plane(c.ins[0], b);
          const std::uint64_t bb = ~plane(c.ins[1], b) & ones;
          const std::uint64_t axb = a ^ bb;
          out[b] = axb ^ carry;
          carry = (a & bb) | (carry & axb);
        }
        break;
      }
      case CellKind::Mul: {
        // Shift-and-add over bit planes (mod 2^w, like the scalar path).
        const unsigned wa = nl_.net(c.ins[0]).width;
        const unsigned wb = nl_.net(c.ins[1]).width;
        for (unsigned b = 0; b < w; ++b) out[b] = 0;
        for (unsigned j = 0; j < wb && j < w; ++j) {
          const std::uint64_t bj = plane(c.ins[1], j);
          if (bj == 0) continue;
          std::uint64_t carry = 0;
          for (unsigned k = 0; j + k < w; ++k) {
            const std::uint64_t p = (k < wa ? plane(c.ins[0], k) : 0) & bj;
            const std::uint64_t cur = out[j + k];
            const std::uint64_t cxp = cur ^ p;
            out[j + k] = cxp ^ carry;
            carry = (cur & p) | (carry & cxp);
            if (carry == 0 && k >= wa) break;  // nothing left to propagate
          }
        }
        break;
      }
      case CellKind::Eq: {
        const unsigned wmax = std::max(nl_.net(c.ins[0]).width, nl_.net(c.ins[1]).width);
        std::uint64_t eq = ones;
        for (unsigned b = 0; b < wmax; ++b) {
          eq &= ~(plane(c.ins[0], b) ^ plane(c.ins[1], b)) & ones;
        }
        out[0] = eq;
        break;
      }
      case CellKind::Lt: {
        // LSB-to-MSB scan: lt_b = (!a_b & b_b) | (a_b == b_b) & lt_{b-1}.
        const unsigned wmax = std::max(nl_.net(c.ins[0]).width, nl_.net(c.ins[1]).width);
        std::uint64_t lt = 0;
        for (unsigned b = 0; b < wmax; ++b) {
          const std::uint64_t a = plane(c.ins[0], b);
          const std::uint64_t bb = plane(c.ins[1], b);
          lt = ((~a & ones) & bb) | ((~(a ^ bb) & ones) & lt);
        }
        out[0] = lt;
        break;
      }
      case CellKind::Shl:
        for (unsigned b = 0; b < w; ++b) {
          out[b] = (c.param <= b && c.param < 64) ? plane(c.ins[0], b - static_cast<unsigned>(c.param)) : 0;
        }
        break;
      case CellKind::Shr:
        for (unsigned b = 0; b < w; ++b) {
          out[b] = c.param < 64 ? plane(c.ins[0], b + static_cast<unsigned>(c.param)) : 0;
        }
        break;
      case CellKind::Not:
        for (unsigned b = 0; b < w; ++b) out[b] = ~plane(c.ins[0], b) & ones;
        break;
      case CellKind::Buf:
        for (unsigned b = 0; b < w; ++b) out[b] = plane(c.ins[0], b);
        break;
      case CellKind::And:
        for (unsigned b = 0; b < w; ++b) out[b] = plane(c.ins[0], b) & plane(c.ins[1], b);
        break;
      case CellKind::Or:
        for (unsigned b = 0; b < w; ++b) out[b] = plane(c.ins[0], b) | plane(c.ins[1], b);
        break;
      case CellKind::Xor:
        for (unsigned b = 0; b < w; ++b) out[b] = plane(c.ins[0], b) ^ plane(c.ins[1], b);
        break;
      case CellKind::Nand:
        for (unsigned b = 0; b < w; ++b) {
          out[b] = ~(plane(c.ins[0], b) & plane(c.ins[1], b)) & ones;
        }
        break;
      case CellKind::Nor:
        for (unsigned b = 0; b < w; ++b) {
          out[b] = ~(plane(c.ins[0], b) | plane(c.ins[1], b)) & ones;
        }
        break;
      case CellKind::Xnor:
        for (unsigned b = 0; b < w; ++b) {
          out[b] = ~(plane(c.ins[0], b) ^ plane(c.ins[1], b)) & ones;
        }
        break;
      case CellKind::Mux2: {
        const std::uint64_t sel = plane(c.ins[0], 0);
        const std::uint64_t nsel = ~sel & ones;
        for (unsigned b = 0; b < w; ++b) {
          out[b] = (sel & plane(c.ins[2], b)) | (nsel & plane(c.ins[1], b));
        }
        break;
      }
      case CellKind::Latch:
      case CellKind::IsoLatch: {
        // Transparent per lane while EN = 1; holds otherwise.
        const std::uint64_t en = plane(c.ins[1], 0);
        const std::uint64_t nen = ~en & ones;
        std::uint64_t* st = &state_[state_off_[id.value()]];
        for (unsigned b = 0; b < w; ++b) {
          st[b] = (en & plane(c.ins[0], b)) | (nen & st[b]);
          out[b] = st[b];
        }
        break;
      }
      case CellKind::IsoAnd: {
        const std::uint64_t en = plane(c.ins[1], 0);
        for (unsigned b = 0; b < w; ++b) out[b] = en & plane(c.ins[0], b);
        break;
      }
      case CellKind::IsoOr: {
        const std::uint64_t en = plane(c.ins[1], 0);
        const std::uint64_t nen = ~en & ones;
        for (unsigned b = 0; b < w; ++b) out[b] = (en & plane(c.ins[0], b)) | nen;
        break;
      }
    }
  }
}

void ParallelSimulator::clock_registers() {
  const std::uint64_t ones = lane_mask_;
  for (CellId id : order_) {
    const Cell& c = nl_.cell(id);
    if (c.kind != CellKind::Reg) continue;
    const std::uint64_t en = plane(c.ins[1], 0);
    const std::uint64_t nen = ~en & ones;
    std::uint64_t* st = &state_[state_off_[id.value()]];
    for (unsigned b = 0; b < c.width; ++b) {
      st[b] = (en & plane(c.ins[0], b)) | (nen & st[b]);
    }
  }
}

std::uint64_t ParallelSimulator::eval_expr_lanes(ExprRef r) {
  const std::size_t idx = r.value();
  if (idx < expr_val_.size() && expr_gen_[idx] == gen_) return expr_val_[idx];
  const ExprNode& n = pool_->node(r);
  std::uint64_t v = 0;
  switch (n.op) {
    case ExprOp::Const0:
      v = 0;
      break;
    case ExprOp::Const1:
      v = lane_mask_;
      break;
    case ExprOp::Var:
      v = planes_[plane_off_[vars_->net_of(n.var).value()]];  // plane 0 = bit 0
      break;
    case ExprOp::Not:
      v = ~eval_expr_lanes(n.a) & lane_mask_;
      break;
    case ExprOp::And:
      v = eval_expr_lanes(n.a) & eval_expr_lanes(n.b);
      break;
    case ExprOp::Or:
      v = eval_expr_lanes(n.a) | eval_expr_lanes(n.b);
      break;
  }
  if (idx >= expr_val_.size()) {
    expr_val_.resize(pool_->num_nodes(), 0);
    expr_gen_.resize(pool_->num_nodes(), 0);
  }
  expr_val_[idx] = v;
  expr_gen_[idx] = gen_;
  return v;
}

void ParallelSimulator::set_cycle_sink(CycleSink* sink) {
  sink_ = sink;
  if (sink_) sink_toggles_.assign(nl_.num_nets(), 0);
}

void ParallelSimulator::record_stats() {
  const bool bits = !stats_.bit_toggles.empty();
  for (NetId id : nl_.net_ids()) {
    const std::size_t n = id.value();
    const unsigned width = nl_.net(id).width;
    const std::size_t off = plane_off_[n];
    if (has_prev_) {
      std::uint64_t total = 0;
      for (unsigned b = 0; b < width; ++b) {
        const std::uint64_t diff = planes_[off + b] ^ prev_[off + b];
        const auto pc = static_cast<std::uint64_t>(std::popcount(diff));
        total += pc;
        if (bits) stats_.bit_toggles[n][b] += pc;
      }
      stats_.toggles[n] += total;
      if (sink_) sink_toggles_[n] = static_cast<std::uint32_t>(total);
    }
    stats_.ones[n] += static_cast<std::uint64_t>(std::popcount(planes_[off]));
  }
  if (sink_) {
    if (!has_prev_) std::fill(sink_toggles_.begin(), sink_toggles_.end(), 0);
    sink_->on_cycle(nl_, cycle_, lanes_, sink_toggles_, nullptr);
  }
  if (!probes_.empty()) {
    ++gen_;
    for (std::size_t p = 0; p < probes_.size(); ++p) {
      const std::uint64_t hold = eval_expr_lanes(probes_[p]);
      stats_.probe_true[p] += static_cast<std::uint64_t>(std::popcount(hold));
      if (has_prev_) {
        stats_.probe_toggles[p] +=
            static_cast<std::uint64_t>(std::popcount(hold ^ prev_probe_[p]));
      }
      prev_probe_[p] = hold;
    }
  }
  stats_.cycles += lanes_;
}

void ParallelSimulator::run(std::uint64_t cycles) {
  OPISO_REQUIRE(lane_stims_.size() == lanes_,
                "ParallelSimulator::run: set_stimulus() must be called first");
  OPISO_SPAN("sim.parallel.run");
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < cycles; ++i) {
    // Every net plane is rewritten below (PO cells drive no net), so
    // last cycle's values are retired into prev_ by pointer swap rather
    // than a copy; planes_ keeps the final values once run() returns.
    if (has_prev_) std::swap(prev_, planes_);
    drive_inputs();
    settle_combinational();
    record_stats();
    clock_registers();
    has_prev_ = true;
    ++cycle_;
  }
  // Coarse-boundary metrics flush (once per run(), never per cycle).
  const std::uint64_t run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  const std::uint64_t lane_cycles = cycles * lanes_;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sim.parallel.runs").add(1);
  m.counter("sim.parallel.cycles").add(cycles);
  m.counter("sim.parallel.lane_cycles").add(lane_cycles);
  m.counter("sim.parallel.run_ns").add(run_ns);
  if (run_ns > 0) {
    m.gauge("sim.parallel.lanes_per_sec")
        .set(static_cast<double>(lane_cycles) * 1e9 / static_cast<double>(run_ns));
  }
}

void ParallelSimulator::reset_state() {
  std::fill(planes_.begin(), planes_.end(), 0);
  std::fill(prev_.begin(), prev_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
  has_prev_ = false;
  cycle_ = 0;
}

std::uint64_t ParallelSimulator::lane_value(NetId net, unsigned lane) const {
  OPISO_REQUIRE(net.valid() && net.value() < nl_.num_nets(), "lane_value: invalid net");
  OPISO_REQUIRE(lane < lanes_, "lane_value: lane out of range");
  const unsigned width = nl_.net(net).width;
  const std::size_t off = plane_off_[net.value()];
  std::uint64_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    v |= ((planes_[off + b] >> lane) & 1) << b;
  }
  return v;
}

}  // namespace opiso
