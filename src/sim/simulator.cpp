#include "sim/simulator.hpp"

#include <bit>
#include <chrono>
#include <numeric>
#include <ostream>

#include "netlist/traversal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/cycle_trace.hpp"
#include "sim/eval_scalar.hpp"
#include "support/error.hpp"

namespace opiso {

namespace {
std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}
}  // namespace

Simulator::Simulator(const Netlist& nl, const ExprPool* pool, const NetVarMap* vars)
    : nl_(nl), pool_(pool), vars_(vars) {
  nl_.validate();
  order_ = topological_order(nl_);
  value_.assign(nl_.num_nets(), 0);
  prev_.assign(nl_.num_nets(), 0);
  state_.assign(nl_.num_cells(), 0);
  mask_.resize(nl_.num_nets());
  for (NetId id : nl_.net_ids()) mask_[id.value()] = width_mask(nl_.net(id).width);
  stats_.toggles.assign(nl_.num_nets(), 0);
  stats_.ones.assign(nl_.num_nets(), 0);
}

std::size_t Simulator::add_probe(ExprRef expr) {
  OPISO_REQUIRE(pool_ != nullptr && vars_ != nullptr,
                "Simulator: probes require an ExprPool and NetVarMap");
  // Every variable in the probe must be bound to a net of this netlist.
  for (BoolVar v : pool_->support(expr)) {
    NetId net = vars_->net_of(v);
    OPISO_REQUIRE(net.value() < nl_.num_nets(), "probe variable bound to foreign net");
  }
  probes_.push_back(expr);
  prev_probe_.push_back(false);
  stats_.probe_true.push_back(0);
  stats_.probe_toggles.push_back(0);
  if (stats_.net_batches.enabled()) {
    stats_.probe_batches.configure(probes_.size(), stats_.net_batches.batch_frames());
  }
  return probes_.size() - 1;
}

void Simulator::settle_combinational() {
  for (CellId id : order_) {
    const Cell& c = nl_.cell(id);
    if (c.kind == CellKind::PrimaryInput || c.kind == CellKind::PrimaryOutput) continue;
    value_[c.out.value()] =
        eval_scalar_cell(c, value_.data(), state_[id.value()]) & mask_[c.out.value()];
  }
}

void Simulator::clock_registers() {
  // All registers sample concurrently on the edge: reads of D happen on
  // the settled values, so a simple second pass is race-free.
  for (CellId id : order_) {
    const Cell& c = nl_.cell(id);
    if (c.kind != CellKind::Reg) continue;
    clock_scalar_reg(c, value_.data(), state_[id.value()]);
  }
}

void Simulator::enable_bit_stats() {
  if (!stats_.bit_toggles.empty()) return;
  stats_.bit_toggles.resize(nl_.num_nets());
  for (NetId id : nl_.net_ids()) {
    stats_.bit_toggles[id.value()].assign(nl_.net(id).width, 0);
  }
}

void Simulator::enable_batch_stats(std::uint32_t batch_frames) {
  stats_.net_batches.configure(nl_.num_nets(), batch_frames);
  stats_.probe_batches.configure(probes_.size(), batch_frames);
}

void Simulator::set_cycle_sink(CycleSink* sink) {
  sink_ = sink;
  if (sink_) sink_toggles_.assign(nl_.num_nets(), 0);
}

void Simulator::record_stats() {
  const bool batches = stats_.net_batches.enabled();
  if (batches) {
    stats_.net_batches.begin_frame();
    stats_.probe_batches.begin_frame();
  }
  if (has_prev_) {
    for (std::size_t n = 0; n < value_.size(); ++n) {
      std::uint64_t diff = value_[n] ^ prev_[n];
      const auto pc = static_cast<std::uint32_t>(std::popcount(diff));
      stats_.toggles[n] += pc;
      if (batches) stats_.net_batches.add(n, pc);
      if (sink_) sink_toggles_[n] = pc;
      if (!stats_.bit_toggles.empty()) {
        auto& bits = stats_.bit_toggles[n];
        while (diff) {
          const int b = std::countr_zero(diff);
          ++bits[static_cast<std::size_t>(b)];
          diff &= diff - 1;
        }
      }
    }
  }
  for (std::size_t n = 0; n < value_.size(); ++n) {
    stats_.ones[n] += value_[n] & 1;
  }
  if (sink_) {
    if (!has_prev_) std::fill(sink_toggles_.begin(), sink_toggles_.end(), 0);
    sink_->on_cycle(nl_, cycle_, 1, sink_toggles_, value_.data());
  }
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    const bool hold = pool_->eval(probes_[p], [&](BoolVar v) {
      return (value_[vars_->net_of(v).value()] & 1) != 0;
    });
    if (hold) {
      ++stats_.probe_true[p];
      if (batches) stats_.probe_batches.add(p, 1);
    }
    if (has_prev_ && hold != prev_probe_[p]) ++stats_.probe_toggles[p];
    prev_probe_[p] = hold;
  }
  ++stats_.cycles;
}

void Simulator::write_vcd_header() {
  *vcd_ << "$timescale 1ns $end\n$scope module " << (nl_.name().empty() ? "top" : nl_.name())
        << " $end\n";
  for (NetId id : nl_.net_ids()) {
    const Net& n = nl_.net(id);
    *vcd_ << "$var wire " << n.width << " n" << id.value() << ' ' << n.name << " $end\n";
  }
  *vcd_ << "$upscope $end\n$enddefinitions $end\n";
}

void Simulator::write_vcd_cycle() {
  *vcd_ << '#' << cycle_ * 10 << '\n';
  for (std::size_t n = 0; n < value_.size(); ++n) {
    if (has_prev_ && value_[n] == prev_[n]) continue;
    const unsigned width = nl_.net(NetId{static_cast<std::uint32_t>(n)}).width;
    if (width == 1) {
      *vcd_ << (value_[n] & 1) << 'n' << n << '\n';
    } else {
      *vcd_ << 'b';
      for (int b = static_cast<int>(width) - 1; b >= 0; --b) *vcd_ << ((value_[n] >> b) & 1);
      *vcd_ << " n" << n << '\n';
    }
  }
}

void Simulator::run(Stimulus& stim, std::uint64_t cycles) {
  OPISO_SPAN("sim.run");
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t toggles_start =
      std::accumulate(stats_.toggles.begin(), stats_.toggles.end(), std::uint64_t{0});
  if (vcd_ && !vcd_header_written_) {
    write_vcd_header();
    vcd_header_written_ = true;
  }
  for (std::uint64_t i = 0; i < cycles; ++i) {
    for (CellId pi : nl_.primary_inputs()) {
      const Cell& c = nl_.cell(pi);
      value_[c.out.value()] = stim.next(nl_, pi, cycle_) & mask_[c.out.value()];
    }
    settle_combinational();
    if (frame_sink_) frame_sink_->on_frame(cycle_, value_.data(), value_.size());
    record_stats();
    if (vcd_) write_vcd_cycle();
    clock_registers();
    prev_ = value_;
    has_prev_ = true;
    ++cycle_;
  }
  // Flush run totals to the metrics registry (coarse boundary: once per
  // run() call, never per cycle).
  const std::uint64_t run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  const std::uint64_t toggles_end =
      std::accumulate(stats_.toggles.begin(), stats_.toggles.end(), std::uint64_t{0});
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sim.runs").add(1);
  m.counter("sim.cycles").add(cycles);
  m.counter("sim.run_ns").add(run_ns);
  m.counter("sim.toggles").add(toggles_end - toggles_start);
  if (run_ns > 0) {
    m.gauge("sim.cycles_per_sec").set(static_cast<double>(cycles) * 1e9 /
                                      static_cast<double>(run_ns));
  }
}

void Simulator::reset_stats() { stats_.reset(); }

void Simulator::reset_state() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(prev_.begin(), prev_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
  has_prev_ = false;
  cycle_ = 0;
}

std::uint64_t Simulator::net_value(NetId net) const {
  OPISO_REQUIRE(net.valid() && net.value() < value_.size(), "net_value: invalid net");
  return value_[net.value()];
}

}  // namespace opiso
