#pragma once
// Cycle-based two-phase RTL simulator.
//
// Each cycle: (1) primary inputs take fresh stimulus values, (2) all
// combinational cells evaluate once in topological order — transparent
// latches flow through or hold depending on their enable, updating their
// held state level-sensitively — and (3) on the implicit clock edge all
// registers capture. Activity statistics (toggle rates, static
// probabilities, probe probabilities) accumulate across run() calls
// until reset_stats().
//
// This is the "simulation of real-life test vectors" of Sec. 4.1: toggle
// rates feed the macro power models, probe probabilities feed the
// Pr(!f ...) terms of the savings model.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"
#include "sim/engine.hpp"
#include "sim/stimulus.hpp"

namespace opiso {

class CycleSink;

class Simulator : public ProbeHost {
 public:
  /// The netlist must outlive the simulator and is validated here.
  /// `pool`/`vars` (both optional, must outlive the simulator when
  /// given) enable Expr probes whose variables are NetVarMap variables.
  explicit Simulator(const Netlist& nl, const ExprPool* pool = nullptr,
                     const NetVarMap* vars = nullptr);

  /// Register an expression to be evaluated each cycle. Returns the
  /// probe index used with ActivityStats::probe_probability.
  std::size_t add_probe(ExprRef expr) override;

  /// Simulate `cycles` cycles, drawing inputs from `stim`. Statistics
  /// accumulate; state (registers/latches) persists across calls.
  void run(Stimulus& stim, std::uint64_t cycles);

  /// Simulate `cycles` cycles and then drop all statistics gathered so
  /// far: flushes the reset transient out of the toggle rates and
  /// probabilities the power models consume.
  void warmup(Stimulus& stim, std::uint64_t cycles) {
    run(stim, cycles);
    reset_stats();
  }

  /// Clear statistics but keep circuit state.
  void reset_stats();
  /// Reset circuit state (registers, latches, previous values) to zero.
  void reset_state();

  [[nodiscard]] const ActivityStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t net_value(NetId net) const;
  [[nodiscard]] const Netlist& netlist() const { return nl_; }

  /// Stream a VCD waveform of all nets while running (null disables).
  void set_vcd(std::ostream* os) { vcd_ = os; }

  /// Attach a frame observer (null detaches): after every combinational
  /// settle (warmup cycles included) the sink sees the per-net settled
  /// value array — the incremental engine's tape capture hook.
  void set_frame_sink(FrameSink* sink) { frame_sink_ = sink; }

  /// Attach a per-cycle observer (null detaches). Each simulated cycle
  /// the sink receives this cycle's per-net bit-toggle counts (zeros on
  /// the first observed cycle) and the settled net values — attach
  /// after warmup so the trace covers exactly what stats() covers.
  void set_cycle_sink(CycleSink* sink);

  /// Collect per-bit toggle counts (needed by the dual-bit-type power
  /// models). Costs one pass over the set bits of each changed word.
  void enable_bit_stats();

  /// Collect batch-means moments (obs/confidence.hpp): per-window
  /// toggle counts for every net and true-counts for every probe, the
  /// raw material of the confidence report section. One add per net
  /// per cycle; warmup accumulation is discarded by reset_stats.
  void enable_batch_stats(std::uint32_t batch_frames);

 private:
  void settle_combinational();
  void clock_registers();
  void record_stats();
  void write_vcd_header();
  void write_vcd_cycle();

  const Netlist& nl_;
  const ExprPool* pool_;
  const NetVarMap* vars_;
  std::vector<CellId> order_;          ///< topological order
  std::vector<std::uint64_t> value_;   ///< current value per net
  std::vector<std::uint64_t> prev_;    ///< previous-cycle value per net
  std::vector<std::uint64_t> state_;   ///< per cell: reg/latch held value
  std::vector<std::uint64_t> mask_;    ///< per net: width mask
  std::vector<ExprRef> probes_;
  std::vector<bool> prev_probe_;
  ActivityStats stats_;
  std::uint64_t cycle_ = 0;
  bool has_prev_ = false;
  std::ostream* vcd_ = nullptr;
  bool vcd_header_written_ = false;
  CycleSink* sink_ = nullptr;
  FrameSink* frame_sink_ = nullptr;
  std::vector<std::uint32_t> sink_toggles_;  ///< per net, this cycle
};

}  // namespace opiso
