#pragma once
// Bit-parallel multi-lane cycle simulator.
//
// Packs up to kMaxLanes independent stimulus streams ("lanes") into one
// plane *block* (kPlaneWords x 64-bit words, see sim/planes.hpp) per
// net bit: plane b of a net holds bit b of that net's value across all
// lanes. One levelized pass over a structure-of-arrays compilation of
// the netlist (sim/plane_program.hpp) then advances every lane by one
// cycle. Word-level arithmetic is evaluated bit-sliced — ripple-carry
// adders/subtractors, shift-and-add multipliers, bitwise comparators —
// so the engine does the work of up to kMaxLanes scalar simulators
// while touching each cell once per pass, and toggle counting
// degenerates to popcount(prev ^ cur) per plane word.
//
// Contract (held by tests/test_sim_parallel.cpp and the fuzz suite):
// running lanes L with stimulus streams s_0..s_{L-1} for C cycles
// produces ActivityStats *bitwise identical* to running the scalar
// Simulator once per lane with the same stream for C cycles and merging
// the per-lane stats (ActivityStats::merge). This makes the scalar
// engine the differential-testing oracle (`--sim=scalar`), and holds
// for every plane-block width and ISA the kernels compile to.
//
// When every lane's stimulus is a plain UniformStimulus, the engine
// advances all lane RNG states in lockstep structure-of-arrays form —
// the same per-lane xoshiro sequences, computed blockwise without the
// per-lane virtual dispatch — so stimulus generation vectorizes along
// with the plane kernels.
//
// Probes evaluate lane-parallel over plane 0 of their variables'
// nets: one memoized DAG walk per cycle instead of one per lane.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"
#include "sim/engine.hpp"
#include "sim/plane_program.hpp"
#include "sim/planes.hpp"
#include "sim/stimulus.hpp"

namespace opiso {

class CycleSink;

class ParallelSimulator : public ProbeHost {
 public:
  static constexpr unsigned kMaxLanes = 64 * kPlaneWords;

  /// One independent stimulus stream per lane. Lane seeds should differ
  /// per lane or every lane simulates the same trajectory.
  using LaneStimulusFactory = std::function<std::unique_ptr<Stimulus>(unsigned lane)>;

  /// The netlist must outlive the simulator; `lanes` in [1, kMaxLanes].
  /// `pool`/`vars` (optional, must outlive the simulator) enable Expr
  /// probes, exactly as in the scalar Simulator.
  explicit ParallelSimulator(const Netlist& nl, unsigned lanes = kMaxLanes,
                             const ExprPool* pool = nullptr, const NetVarMap* vars = nullptr);

  std::size_t add_probe(ExprRef expr) override;

  /// Instantiate one stimulus stream per lane (replacing any previous
  /// streams). Stream state persists across run() calls, mirroring the
  /// scalar simulator's external Stimulus objects.
  void set_stimulus(const LaneStimulusFactory& make);

  /// Simulate `cycles` cycles in every lane (lanes() * cycles
  /// lane-cycles total). Statistics accumulate; lane state persists.
  void run(std::uint64_t cycles);

  /// Run then drop statistics: flushes the reset transient.
  void warmup(std::uint64_t cycles) {
    run(cycles);
    reset_stats();
  }

  void reset_stats() { stats_.reset(); }
  /// Reset circuit state in all lanes (keeps stimulus streams).
  void reset_state();
  /// Attach a per-cycle observer (null detaches). Each macro-cycle the
  /// sink receives the per-net toggle counts folded over all lanes
  /// (popcount per plane, summed) — bitwise identical to the sample-wise
  /// sum of the scalar engine's per-lane traces. Net values are not
  /// passed (they live in bit planes); attach after warmup.
  void set_cycle_sink(CycleSink* sink);
  /// Attach a frame observer (null detaches): after every settle the
  /// sink sees the full plane array (incremental tape capture).
  void set_frame_sink(FrameSink* sink) { frame_sink_ = sink; }
  /// Collect per-bit toggle counts (dual-bit-type power models).
  void enable_bit_stats();
  /// Collect batch-means moments (obs/confidence.hpp). Each macro-cycle
  /// adds the lane-folded toggle popcount per net and the lanes-true
  /// popcount per probe to the current window's cells — bitwise
  /// identical to merging the per-lane scalar accumulators.
  void enable_batch_stats(std::uint32_t batch_frames);

  [[nodiscard]] const ActivityStats& stats() const { return stats_; }
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  [[nodiscard]] const Netlist& netlist() const { return nl_; }

  /// Current value of `net` in one lane (reassembled from the planes;
  /// for tests and debugging).
  [[nodiscard]] std::uint64_t lane_value(NetId net, unsigned lane) const;

 private:
  void drive_inputs();
  void record_stats();
  void eval_expr_lanes(ExprRef r, std::uint64_t* out);

  const Netlist& nl_;
  const ExprPool* pool_;
  const NetVarMap* vars_;
  unsigned lanes_;
  PlaneBlock lane_mask_{};  ///< active-lane mask, one block
  std::vector<CellId> order_;  ///< topological order
  PlaneProgram program_;       ///< SoA compilation of order_

  std::vector<std::size_t> plane_off_;   ///< per net: bit-plane index (x kPlaneWords = word)
  std::vector<std::uint64_t> planes_;    ///< current value, one block per net bit
  std::vector<std::uint64_t> prev_;      ///< previous-cycle planes
  std::vector<std::size_t> state_off_;   ///< per cell: bit-plane index into state_
  std::vector<std::uint64_t> state_;     ///< reg/latch held planes

  std::vector<std::unique_ptr<Stimulus>> lane_stims_;
  // SoA xoshiro fast path (all lanes UniformStimulus): state word i of
  // lane l at rng_soa_[i * lanes_padded_ + l].
  bool uniform_fast_ = false;
  std::size_t lanes_padded_ = 0;
  std::vector<std::uint64_t> rng_soa_;
  std::vector<std::uint64_t> pi_masks_;     ///< per PI: width mask (fast path)
  std::vector<std::uint64_t> uniform_buf_;  ///< per cycle: PI p draws at [p*lanes_padded_..]

  std::vector<ExprRef> probes_;
  std::vector<std::uint64_t> prev_probe_;  ///< per probe: previous lane block

  // Per-cycle probe memoization over the hash-consed Expr DAG
  // (block-valued: node r at expr_val_[r * kPlaneWords ..]).
  std::vector<std::uint64_t> expr_val_;
  std::vector<std::uint64_t> expr_gen_;
  std::uint64_t gen_ = 0;

  ActivityStats stats_;
  std::uint64_t cycle_ = 0;
  bool has_prev_ = false;
  CycleSink* sink_ = nullptr;
  FrameSink* frame_sink_ = nullptr;
  std::vector<std::uint32_t> sink_toggles_;  ///< per net, this macro-cycle (lane-folded)
};

}  // namespace opiso
