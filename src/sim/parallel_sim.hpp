#pragma once
// Bit-parallel 64-lane cycle simulator.
//
// Packs up to 64 independent stimulus streams ("lanes") into one
// std::uint64_t per net *bit*: plane b of a net holds bit b of that
// net's value across all lanes. One levelized pass over the netlist
// then advances every lane by one cycle. Word-level arithmetic is
// evaluated bit-sliced — ripple-carry adders/subtractors, shift-and-add
// multipliers, bitwise comparators — so the engine does the work of up
// to 64 scalar simulators while touching each cell once per pass, and
// toggle counting degenerates to popcount(prev ^ cur) per plane.
//
// Contract (held by tests/test_sim_parallel.cpp and the fuzz suite):
// running lanes L with stimulus streams s_0..s_{L-1} for C cycles
// produces ActivityStats *bitwise identical* to running the scalar
// Simulator once per lane with the same stream for C cycles and merging
// the per-lane stats (ActivityStats::merge). This makes the scalar
// engine the differential-testing oracle (`--sim=scalar`).
//
// Probes evaluate lane-parallel over plane 0 of their variables'
// nets: one memoized DAG walk per cycle instead of one per lane.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"
#include "sim/engine.hpp"
#include "sim/stimulus.hpp"

namespace opiso {

class CycleSink;

class ParallelSimulator : public ProbeHost {
 public:
  static constexpr unsigned kMaxLanes = 64;

  /// One independent stimulus stream per lane. Lane seeds should differ
  /// per lane or every lane simulates the same trajectory.
  using LaneStimulusFactory = std::function<std::unique_ptr<Stimulus>(unsigned lane)>;

  /// The netlist must outlive the simulator; `lanes` in [1, 64].
  /// `pool`/`vars` (optional, must outlive the simulator) enable Expr
  /// probes, exactly as in the scalar Simulator.
  explicit ParallelSimulator(const Netlist& nl, unsigned lanes = kMaxLanes,
                             const ExprPool* pool = nullptr, const NetVarMap* vars = nullptr);

  std::size_t add_probe(ExprRef expr) override;

  /// Instantiate one stimulus stream per lane (replacing any previous
  /// streams). Stream state persists across run() calls, mirroring the
  /// scalar simulator's external Stimulus objects.
  void set_stimulus(const LaneStimulusFactory& make);

  /// Simulate `cycles` cycles in every lane (lanes() * cycles
  /// lane-cycles total). Statistics accumulate; lane state persists.
  void run(std::uint64_t cycles);

  /// Run then drop statistics: flushes the reset transient.
  void warmup(std::uint64_t cycles) {
    run(cycles);
    reset_stats();
  }

  void reset_stats() { stats_.reset(); }
  /// Reset circuit state in all lanes (keeps stimulus streams).
  void reset_state();
  /// Attach a per-cycle observer (null detaches). Each macro-cycle the
  /// sink receives the per-net toggle counts folded over all lanes
  /// (popcount per plane, summed) — bitwise identical to the sample-wise
  /// sum of the scalar engine's per-lane traces. Net values are not
  /// passed (they live in bit planes); attach after warmup.
  void set_cycle_sink(CycleSink* sink);
  /// Collect per-bit toggle counts (dual-bit-type power models).
  void enable_bit_stats();

  [[nodiscard]] const ActivityStats& stats() const { return stats_; }
  [[nodiscard]] unsigned lanes() const { return lanes_; }
  [[nodiscard]] const Netlist& netlist() const { return nl_; }

  /// Current value of `net` in one lane (reassembled from the planes;
  /// for tests and debugging).
  [[nodiscard]] std::uint64_t lane_value(NetId net, unsigned lane) const;

 private:
  void drive_inputs();
  void settle_combinational();
  void clock_registers();
  void record_stats();
  [[nodiscard]] std::uint64_t eval_expr_lanes(ExprRef r);

  // Plane of bit b of `net`'s *current* value, zero-extended past the
  // net's width (scalar values are width-masked, so high planes are 0).
  [[nodiscard]] std::uint64_t plane(NetId net, unsigned b) const {
    return b < nl_.net(net).width ? planes_[plane_off_[net.value()] + b] : 0;
  }

  const Netlist& nl_;
  const ExprPool* pool_;
  const NetVarMap* vars_;
  unsigned lanes_;
  std::uint64_t lane_mask_;
  std::vector<CellId> order_;  ///< topological order

  std::vector<std::size_t> plane_off_;   ///< per net: offset into planes_
  std::vector<std::uint64_t> planes_;    ///< current value, one word per net bit
  std::vector<std::uint64_t> prev_;      ///< previous-cycle planes
  std::vector<std::size_t> state_off_;   ///< per cell: offset into state_ (stateful kinds)
  std::vector<std::uint64_t> state_;     ///< reg/latch held planes

  std::vector<std::unique_ptr<Stimulus>> lane_stims_;
  std::vector<ExprRef> probes_;
  std::vector<std::uint64_t> prev_probe_;  ///< per probe: previous lane word

  // Per-cycle probe memoization over the hash-consed Expr DAG.
  std::vector<std::uint64_t> expr_val_;
  std::vector<std::uint64_t> expr_gen_;
  std::uint64_t gen_ = 0;

  ActivityStats stats_;
  std::uint64_t cycle_ = 0;
  bool has_prev_ = false;
  CycleSink* sink_ = nullptr;
  std::vector<std::uint32_t> sink_toggles_;  ///< per net, this macro-cycle (lane-folded)
};

}  // namespace opiso
