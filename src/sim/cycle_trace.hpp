#pragma once
// Time-resolved switching capture — the temporal axis of ActivityStats.
//
// ActivityStats answers "how often did this net toggle over the run";
// a CycleSink answers "when". Both engines feed the hook once per
// macro-cycle with the per-net bit-toggle counts of that cycle, folded
// over all active lanes — for the scalar engine a per-net popcount of
// value ^ prev, for the 64-lane engine the popcount summed over the bit
// planes. The counts are integers, so folding, windowing and merging
// are exact: the per-cycle trace of an L-lane parallel run is bitwise
// identical to the sample-wise sum of L scalar traces with the same
// lane streams (the same oracle discipline as ActivityStats::merge),
// and a trace's per-net totals reproduce ActivityStats::toggles exactly.
//
// CycleTrace is the standard sink: it folds cycles into fixed-width
// windows (window = 1 keeps full per-cycle resolution; larger windows
// bound memory on long runs — sums are preserved exactly either way)
// and can optionally snapshot net values (scalar engine only), which is
// what the VCD exporter consumes.

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/activity.hpp"

namespace opiso {

/// Per-cycle observer both simulation engines drive. Called after the
/// cycle's combinational settle and statistics recording, before the
/// clock edge — `net_toggles[n]` is the number of bit toggles of net n
/// between the previous and this cycle summed over the engine's active
/// lanes (all zero on the first observed cycle), `lanes` is that lane
/// count, and `net_values` points at the per-net settled values (scalar
/// engine only; null from the lane-parallel engine, whose values live
/// in bit planes).
class CycleSink {
 public:
  virtual ~CycleSink() = default;
  virtual void on_cycle(const Netlist& nl, std::uint64_t cycle, unsigned lanes,
                        std::span<const std::uint32_t> net_toggles,
                        const std::uint64_t* net_values) = 0;
};

/// Windowed per-net toggle trace (plus optional value snapshots).
///
/// Sample s covers macro-cycles [s*window, (s+1)*window) of the
/// observed run; the final sample may cover fewer cycles
/// (sample_cycles(s)). Call finish() after the run to flush a partial
/// trailing sample — all accessors below require it.
class CycleTrace final : public CycleSink {
 public:
  explicit CycleTrace(std::uint64_t window = 1, bool record_values = false);

  void on_cycle(const Netlist& nl, std::uint64_t cycle, unsigned lanes,
                std::span<const std::uint32_t> net_toggles,
                const std::uint64_t* net_values) override;

  /// Flush the partial trailing sample. Idempotent; capture may not
  /// resume afterwards.
  void finish();

  /// Sample-wise accumulation of another trace over the same netlist
  /// and window — the oracle operation that folds N scalar lane traces
  /// into the shape of one N-lane parallel trace. An empty *this adopts
  /// the other side's shape; value snapshots do not merge and are
  /// dropped. Both traces must be finished.
  void merge(const CycleTrace& other);

  [[nodiscard]] std::uint64_t window() const { return window_; }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }  ///< macro-cycles observed
  [[nodiscard]] unsigned lanes() const { return lanes_; }         ///< folded lane count
  [[nodiscard]] std::size_t num_samples() const { return samples_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return num_nets_; }
  [[nodiscard]] bool has_values() const { return record_values_; }

  /// Macro-cycles folded into sample s (== window except possibly last).
  [[nodiscard]] std::uint64_t sample_cycles(std::size_t s) const;
  /// Per-net toggle counts of sample s (lane-folded, exact integers).
  [[nodiscard]] const std::vector<std::uint64_t>& sample_toggles(std::size_t s) const;
  /// Per-net value snapshot at the last cycle of sample s (requires
  /// record_values; scalar engine only).
  [[nodiscard]] const std::vector<std::uint64_t>& sample_values(std::size_t s) const;
  /// Per-net toggle totals over the whole trace — equals the engine's
  /// ActivityStats::toggles for the same run segment, exactly.
  [[nodiscard]] const std::vector<std::uint64_t>& net_totals() const { return net_totals_; }

  /// Rebuild the aggregate statistics this trace integrates to:
  /// toggles = net_totals(), cycles = cycles() * lanes(). Feeding the
  /// result to PowerEstimator reproduces the aggregate power of the
  /// traced run bit-for-bit (the estimator consumes only toggle rates;
  /// static probabilities are not captured per cycle and stay zero).
  [[nodiscard]] ActivityStats to_activity_stats() const;

 private:
  void flush_sample();

  std::uint64_t window_;
  bool record_values_;
  bool finished_ = false;

  std::size_t num_nets_ = 0;
  unsigned lanes_ = 0;
  std::uint64_t cycles_ = 0;           ///< macro-cycles observed so far
  std::uint64_t cycles_in_sample_ = 0;  ///< cycles folded into the open sample

  struct Sample {
    std::uint64_t cycles = 0;
    std::vector<std::uint64_t> toggles;  ///< per net
    std::vector<std::uint64_t> values;   ///< per net (empty unless recording)
  };
  std::vector<std::uint64_t> accum_;      ///< open sample: per-net toggles
  std::vector<std::uint64_t> last_values_;
  std::vector<std::uint64_t> net_totals_;
  std::vector<Sample> samples_;
};

}  // namespace opiso
