#pragma once
// Structure-of-arrays compilation of a netlist for plane evaluation.
//
// The lane-parallel engine walks cells in topological order every
// macro-cycle; chasing Cell/Net objects through the netlist on that
// walk costs more than the bit-plane arithmetic for small designs. A
// PlaneProgram flattens the walk once: per evaluated cell one PlaneOp
// holding the opcode, the pre-resolved plane-word offsets of its
// output/input blocks, the widths needed for zero-extension, and the
// state offset for stateful kinds. eval_plane_program is then a tight
// loop over a contiguous op array — the same kernel serves the full
// engine (ops = every cell) and the incremental cone replay (ops =
// only the dirty cone's cells), which is what keeps the two paths
// bit-identical by construction.
//
// Offsets are in words into the planes/state arrays (bit-plane index
// times kPlaneWords); bit b of an operand lives at off + b*kPlaneWords.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/planes.hpp"

namespace opiso {

struct PlaneOp {
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  CellKind kind = CellKind::Buf;
  std::uint16_t w = 0;                 ///< output width (bits)
  std::uint16_t wa = 0, wb = 0, wc = 0;  ///< input net widths (zero-extension bounds)
  std::uint32_t out = 0;               ///< word offset of the output's bit-0 block
  std::uint32_t a = kNone, b = kNone, c = kNone;  ///< input word offsets
  std::uint32_t state = kNone;         ///< word offset into the state array
  std::uint64_t param = 0;
};

/// One register capture: on the clock edge, state <- D where EN bit 0.
struct PlaneRegOp {
  std::uint16_t w = 0;   ///< register width
  std::uint16_t wd = 0;  ///< D net width
  std::uint32_t d = 0;   ///< D word offset
  std::uint32_t en = 0;  ///< EN word offset (bit 0 used)
  std::uint32_t state = 0;
};

struct PlaneProgram {
  std::vector<PlaneOp> ops;      ///< settle ops, topological order
  std::vector<PlaneRegOp> regs;  ///< clock-edge captures
};

/// Compile `cells` (must be topologically ordered; PIs/POs are
/// skipped) against plane/state offset maps given in bit-plane units.
[[nodiscard]] PlaneProgram build_plane_program(const Netlist& nl,
                                               const std::vector<CellId>& cells,
                                               const std::vector<std::size_t>& plane_off,
                                               const std::vector<std::size_t>& state_off);

/// One combinational settle: evaluate every op into `planes`,
/// level-sensitive latches updating `state`. `ones` is the active-lane
/// mask block (kPlaneWords words); every written plane stays masked to
/// it (the lane-plane invariant).
void eval_plane_program(const PlaneProgram& prog, std::uint64_t* planes, std::uint64_t* state,
                        const std::uint64_t* ones);

/// The clock edge for the program's registers (reads settled planes).
void clock_plane_program(const PlaneProgram& prog, const std::uint64_t* planes,
                         std::uint64_t* state);

}  // namespace opiso
