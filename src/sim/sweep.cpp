#include "sim/sweep.hpp"

#include <chrono>
#include <mutex>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/estimator.hpp"
#include "support/error.hpp"
#include "util/thread_pool.hpp"

namespace opiso {

namespace {

std::unique_ptr<Stimulus> make_task_stimulus(const SweepTask& task, std::uint64_t lane_seed) {
  if (task.make_stimulus) return task.make_stimulus(lane_seed);
  return std::make_unique<UniformStimulus>(lane_seed);
}

}  // namespace

SweepResult run_sweep_task(const SweepTask& task) {
  OPISO_SPAN("sweep.task");
  OPISO_REQUIRE(task.make_design != nullptr, "sweep task '" + task.design + "': no design");
  OPISO_REQUIRE(task.lanes >= 1 && task.lanes <= ParallelSimulator::kMaxLanes,
                "sweep task '" + task.design + "': lanes must be in [1,64]");
  const Netlist nl = task.make_design();
  ActivityStats stats;
  if (task.engine == SimEngineKind::Parallel) {
    ParallelSimulator sim(nl, task.lanes);
    sim.set_stimulus([&](unsigned lane) {
      return make_task_stimulus(task, sweep_lane_seed(task.seed, lane));
    });
    if (task.warmup > 0) sim.warmup(task.warmup);
    sim.run(task.cycles);
    stats = sim.stats();
  } else {
    // Scalar oracle: one simulator per lane over the same streams,
    // merged in lane order — definitionally what the parallel engine
    // must reproduce bit for bit.
    for (unsigned lane = 0; lane < task.lanes; ++lane) {
      Simulator sim(nl);
      std::unique_ptr<Stimulus> stim = make_task_stimulus(task, sweep_lane_seed(task.seed, lane));
      if (task.warmup > 0) sim.warmup(*stim, task.warmup);
      sim.run(*stim, task.cycles);
      stats.merge(sim.stats());
    }
  }

  SweepResult r;
  r.design = task.design;
  r.seed = task.seed;
  r.engine = task.engine;
  r.lanes = task.lanes;
  r.lane_cycles = stats.cycles;
  r.toggles = std::accumulate(stats.toggles.begin(), stats.toggles.end(), std::uint64_t{0});
  r.power_mw = PowerEstimator().estimate(nl, stats).total_mw;
  return r;
}

struct SweepRunner::Impl {
  explicit Impl(unsigned threads) : pool(threads) {}
  ThreadPool pool;
};

SweepRunner::SweepRunner(unsigned threads) : impl_(std::make_shared<Impl>(threads)) {}

unsigned SweepRunner::threads() const { return impl_->pool.size(); }

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepTask>& tasks,
                                          const SweepProgressFn& progress) {
  OPISO_SPAN("sweep.run");
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<SweepResult> results(tasks.size());
  std::mutex progress_mu;
  std::size_t completed = 0;
  // Ordered reduction: worker i writes slot i, nothing else. Progress
  // reporting is a side channel and never touches the results.
  impl_->pool.parallel_for(tasks.size(), [&](std::size_t i) {
    results[i] = run_sweep_task(tasks[i]);
    if (!progress) return;
    std::lock_guard<std::mutex> lock(progress_mu);
    SweepProgress p;
    p.completed = ++completed;
    p.total = tasks.size();
    p.task_index = i;
    p.elapsed_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                        .count();
    p.eta_sec = p.elapsed_sec / static_cast<double>(p.completed) *
                static_cast<double>(p.total - p.completed);
    progress(p);
  });

  const std::uint64_t run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  std::uint64_t lane_cycles = 0;
  for (const SweepResult& r : results) lane_cycles += r.lane_cycles;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sweep.runs").add(1);
  m.counter("sweep.tasks").add(tasks.size());
  m.counter("sweep.lane_cycles").add(lane_cycles);
  m.counter("sweep.run_ns").add(run_ns);
  if (run_ns > 0) {
    m.gauge("sweep.lane_cycles_per_sec")
        .set(static_cast<double>(lane_cycles) * 1e9 / static_cast<double>(run_ns));
  }
  return results;
}

obs::JsonValue build_sweep_report(const std::vector<SweepResult>& results) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.sweep/v1";
  obs::JsonValue tasks = obs::JsonValue::array();
  std::uint64_t lane_cycles = 0;
  std::uint64_t toggles = 0;
  for (const SweepResult& r : results) {
    obs::JsonValue t = obs::JsonValue::object();
    t["design"] = r.design;
    t["seed"] = r.seed;
    // No engine field: scalar and parallel must produce the same
    // numbers, and CI diffs the two reports to prove it.
    t["lanes"] = static_cast<std::uint64_t>(r.lanes);
    t["lane_cycles"] = r.lane_cycles;
    t["toggles"] = r.toggles;
    t["power_mw"] = r.power_mw;
    tasks.push_back(std::move(t));
    lane_cycles += r.lane_cycles;
    toggles += r.toggles;
  }
  doc["tasks"] = std::move(tasks);
  obs::JsonValue totals = obs::JsonValue::object();
  totals["tasks"] = static_cast<std::uint64_t>(results.size());
  totals["lane_cycles"] = lane_cycles;
  totals["toggles"] = toggles;
  doc["totals"] = std::move(totals);
  return doc;
}

}  // namespace opiso
