#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>

#include "isolation/algorithm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/estimator.hpp"
#include "support/error.hpp"
#include "util/thread_pool.hpp"

namespace opiso {

namespace {

std::unique_ptr<Stimulus> make_task_stimulus(const SweepTask& task, std::uint64_t lane_seed) {
  if (task.make_stimulus) return task.make_stimulus(lane_seed);
  return std::make_unique<UniformStimulus>(lane_seed);
}

// Cycles simulated between wall-clock checks: small enough that a
// runaway task stops promptly, large enough that the clock reads stay
// off the hot path.
constexpr std::uint64_t kBudgetChunkCycles = 1024;

// Enforces the wall-clock budget between simulation chunks and keeps
// `elapsed_lane_cycles` (the deterministic progress measure recorded in
// failure reports) up to date as chunks complete.
class TaskGuard {
 public:
  TaskGuard(const SweepTask& task, const SweepBudget& budget, std::uint64_t* elapsed)
      : task_(task), budget_(budget), elapsed_(elapsed),
        start_(std::chrono::steady_clock::now()) {}

  void advance(std::uint64_t lane_cycles) {
    if (elapsed_ != nullptr) *elapsed_ += lane_cycles;
    check_clock();
  }

  void check_clock() const {
    if (budget_.task_wall_clock_sec <= 0.0) return;
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    if (sec > budget_.task_wall_clock_sec) {
      throw ResourceError(ErrCode::ResourceWallClock,
                          "sweep task '" + task_.design + "': wall-clock budget of " +
                              std::to_string(budget_.task_wall_clock_sec) + "s exceeded");
    }
  }

  /// Chunked only when a clock budget is armed; otherwise one full run
  /// (the historical single-call path, with zero extra clock reads).
  [[nodiscard]] std::uint64_t chunk(std::uint64_t remaining) const {
    if (budget_.task_wall_clock_sec <= 0.0) return remaining;
    return std::min(remaining, kBudgetChunkCycles);
  }

 private:
  const SweepTask& task_;
  const SweepBudget& budget_;
  std::uint64_t* elapsed_;
  std::chrono::steady_clock::time_point start_;
};

SweepResult run_sweep_task_impl(const SweepTask& task, const SweepBudget& budget,
                                std::uint64_t* elapsed_lane_cycles,
                                const std::function<void(const SweepTask&, const Netlist&)>&
                                    preflight = nullptr) {
  OPISO_SPAN("sweep.task");
  OPISO_REQUIRE(task.make_design != nullptr, "sweep task '" + task.design + "': no design");
  OPISO_REQUIRE(task.lanes >= 1 && task.lanes <= ParallelSimulator::kMaxLanes,
                "sweep task '" + task.design + "': lanes must be in [1," +
                    std::to_string(ParallelSimulator::kMaxLanes) + "]");
  // The stimulus volume is known before anything runs, so this check is
  // deterministic — the same task fails the same way on every schedule.
  if (budget.task_max_lane_cycles != 0 &&
      task.cycles > budget.task_max_lane_cycles / task.lanes) {
    throw ResourceError(ErrCode::ResourceStimulus,
                        "sweep task '" + task.design + "': " + std::to_string(task.cycles) +
                            " cycles x " + std::to_string(task.lanes) +
                            " lanes exceeds the stimulus budget of " +
                            std::to_string(budget.task_max_lane_cycles) + " lane-cycles");
  }
  TaskGuard guard(task, budget, elapsed_lane_cycles);
  const Netlist nl = task.make_design();
  // Pre-flight before any simulator touches the design: a rejection
  // throws here, before lane state is allocated, so bad inputs cost
  // milliseconds and surface with the rejecting check's own error code.
  if (preflight != nullptr) preflight(task, nl);
  guard.check_clock();

  if (task.isolate) {
    // Isolate mode: the task runs Algorithm 1 instead of a plain
    // measurement. The shared options are copied and the task's own
    // engine/lanes/cycles/warmup and seed are installed, so the result
    // is a pure function of the task fields — the report stays bitwise
    // identical for any --threads value.
    IsolationOptions opt = *task.isolate;
    opt.sim_engine = task.engine;
    opt.sim_lanes = task.lanes;
    if (task.confidence.enabled) opt.confidence = task.confidence;
    const std::uint64_t scale = task.engine == SimEngineKind::Parallel ? task.lanes : 1;
    opt.sim_cycles = task.cycles * scale;
    opt.warmup_cycles = task.warmup * scale;
    if (task.engine == SimEngineKind::Parallel) {
      opt.lane_stimuli = [&task](unsigned lane) {
        return make_task_stimulus(task, sweep_lane_seed(task.seed, lane));
      };
    }
    // The wall-clock budget is enforced between iterations (the loop's
    // natural chunk); elapsed progress counts one measurement round per
    // iteration, a deterministic measure like the plain path's.
    const std::function<void(const IterationLog&)> chained = opt.on_iteration;
    opt.on_iteration = [&guard, &opt, &chained](const IterationLog& log) {
      guard.advance(opt.sim_cycles);
      if (chained) chained(log);
    };
    const IsolationResult res = run_operand_isolation(
        nl, [&task] { return make_task_stimulus(task, task.seed); }, opt);
    guard.advance(opt.sim_cycles);  // the final post-loop measurement
    if (opt.confidence.enabled && !res.confidence_converged) {
      throw Error(ErrCode::ConfidenceUnconverged,
                  "sweep task '" + task.design +
                      "': power CI half-width misses the requested gate of " +
                      std::to_string(opt.confidence.min_power_ci_halfwidth_mw) +
                      " mW (simulate more cycles or widen the gate)");
    }

    SweepResult r;
    r.design = task.design;
    r.seed = task.seed;
    r.engine = task.engine;
    r.lanes = task.lanes;
    r.lane_cycles = (res.iterations.size() + 1) * opt.sim_cycles;
    r.isolated_mode = true;
    r.power_before_mw = res.power_before_mw;
    r.power_after_mw = res.power_after_mw;
    r.power_reduction_pct = res.power_reduction_pct();
    r.iterations = res.iterations.size();
    r.modules_isolated = res.records.size();
    r.power_mw = res.power_after_mw;
    if (opt.confidence.enabled) r.confidence = res.confidence;
    r.coverage = res.coverage;
    return r;
  }

  ActivityStats stats;
  if (task.engine == SimEngineKind::Parallel) {
    ParallelSimulator sim(nl, task.lanes);
    if (task.confidence.enabled) sim.enable_batch_stats(task.confidence.batch_frames);
    sim.set_stimulus([&](unsigned lane) {
      return make_task_stimulus(task, sweep_lane_seed(task.seed, lane));
    });
    if (task.warmup > 0) {
      sim.warmup(task.warmup);
      guard.check_clock();
    }
    for (std::uint64_t done = 0; done < task.cycles;) {
      const std::uint64_t step = guard.chunk(task.cycles - done);
      sim.run(step);
      done += step;
      guard.advance(step * task.lanes);
    }
    stats = sim.stats();
  } else {
    // Scalar oracle: one simulator per lane over the same streams,
    // merged in lane order — definitionally what the parallel engine
    // must reproduce bit for bit.
    for (unsigned lane = 0; lane < task.lanes; ++lane) {
      Simulator sim(nl);
      if (task.confidence.enabled) sim.enable_batch_stats(task.confidence.batch_frames);
      std::unique_ptr<Stimulus> stim = make_task_stimulus(task, sweep_lane_seed(task.seed, lane));
      if (task.warmup > 0) {
        sim.warmup(*stim, task.warmup);
        guard.check_clock();
      }
      for (std::uint64_t done = 0; done < task.cycles;) {
        const std::uint64_t step = guard.chunk(task.cycles - done);
        sim.run(*stim, step);
        done += step;
        guard.advance(step);
      }
      stats.merge(sim.stats());
    }
  }

  SweepResult r;
  r.design = task.design;
  r.seed = task.seed;
  r.engine = task.engine;
  r.lanes = task.lanes;
  r.lane_cycles = stats.cycles;
  r.toggles = std::accumulate(stats.toggles.begin(), stats.toggles.end(), std::uint64_t{0});
  r.power_mw = PowerEstimator().estimate(nl, stats).total_mw;
  if (task.confidence.enabled) {
    const std::vector<double> weights = PowerEstimator().net_toggle_weights(nl);
    r.confidence = build_confidence_section(nl, stats, task.confidence, weights);
    r.coverage = build_coverage_section(nl, stats, {});
    if (task.confidence.min_power_ci_halfwidth_mw >= 0.0) {
      const std::uint64_t frames = stats.net_batches.num_frames();
      const std::uint64_t lanes = frames > 0 ? stats.cycles / frames : 0;
      const obs::SeriesInterval pw =
          obs::weighted_interval(stats.net_batches, weights, lanes, task.confidence.level);
      if (pw.batches < 2 || pw.halfwidth > task.confidence.min_power_ci_halfwidth_mw) {
        throw Error(ErrCode::ConfidenceUnconverged,
                    "sweep task '" + task.design + "': power CI half-width " +
                        std::to_string(pw.halfwidth) + " mW after " +
                        std::to_string(pw.batches) + " batches misses the requested gate of " +
                        std::to_string(task.confidence.min_power_ci_halfwidth_mw) +
                        " mW (simulate more cycles or widen the gate)");
      }
    }
  }
  return r;
}

}  // namespace

SweepResult run_sweep_task(const SweepTask& task) {
  return run_sweep_task_impl(task, SweepBudget{}, nullptr);
}

SweepResult run_sweep_task(const SweepTask& task, const SweepBudget& budget) {
  return run_sweep_task_impl(task, budget, nullptr);
}

bool SweepOutcome::failed(std::size_t task_index) const {
  for (const SweepTaskFailure& f : failures) {
    if (f.task_index == task_index) return true;
  }
  return false;
}

struct SweepRunner::Impl {
  explicit Impl(unsigned threads) : pool(threads) {}
  ThreadPool pool;
};

SweepRunner::SweepRunner(unsigned threads) : impl_(std::make_shared<Impl>(threads)) {}

unsigned SweepRunner::threads() const { return impl_->pool.size(); }

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepTask>& tasks,
                                          const SweepProgressFn& progress) {
  OPISO_SPAN("sweep.run");
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<SweepResult> results(tasks.size());
  std::mutex progress_mu;
  std::size_t completed = 0;
  // Ordered reduction: worker i writes slot i, nothing else. Progress
  // reporting is a side channel and never touches the results.
  impl_->pool.parallel_for(tasks.size(), [&](std::size_t i) {
    results[i] = run_sweep_task(tasks[i]);
    if (!progress) return;
    std::lock_guard<std::mutex> lock(progress_mu);
    SweepProgress p;
    p.completed = ++completed;
    p.total = tasks.size();
    p.task_index = i;
    p.elapsed_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                        .count();
    p.eta_sec = p.elapsed_sec / static_cast<double>(p.completed) *
                static_cast<double>(p.total - p.completed);
    progress(p);
  });

  const std::uint64_t run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  std::uint64_t lane_cycles = 0;
  for (const SweepResult& r : results) lane_cycles += r.lane_cycles;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sweep.runs").add(1);
  m.counter("sweep.tasks").add(tasks.size());
  m.counter("sweep.lane_cycles").add(lane_cycles);
  m.counter("sweep.run_ns").add(run_ns);
  if (run_ns > 0) {
    m.gauge("sweep.lane_cycles_per_sec")
        .set(static_cast<double>(lane_cycles) * 1e9 / static_cast<double>(run_ns));
  }
  return results;
}

SweepOutcome SweepRunner::run_isolated(const std::vector<SweepTask>& tasks,
                                       const SweepRunOptions& options,
                                       const SweepProgressFn& progress) {
  OPISO_SPAN("sweep.run_isolated");
  const auto wall_start = std::chrono::steady_clock::now();
  SweepOutcome out;
  out.results.resize(tasks.size());
  std::mutex mu;  // failures list + progress counter
  std::size_t completed = 0;
  std::atomic<bool> abort{false};
  impl_->pool.parallel_for(tasks.size(), [&](std::size_t i) {
    std::uint64_t elapsed = 0;
    SweepTaskFailure failure;
    bool failed = false;
    if (options.fail_fast && abort.load(std::memory_order_acquire)) {
      failed = true;
      failure.code = error_code_name(ErrCode::TaskSkipped);
      failure.message = "skipped after an earlier failure (--fail-fast)";
    } else {
      try {
        out.results[i] = run_sweep_task_impl(tasks[i], options.budget, &elapsed,
                                             options.preflight);
      } catch (const OpisoError& e) {
        failed = true;
        failure.code = e.code_name();
        failure.message = e.what();
      } catch (const std::exception& e) {
        failed = true;
        failure.code = error_code_name(ErrCode::Internal);
        failure.message = e.what();
      } catch (...) {
        failed = true;
        failure.code = error_code_name(ErrCode::Internal);
        failure.message = "unknown exception";
      }
    }
    if (failed) {
      // The slot keeps its identity so the report's failure entry and
      // the (zeroed) result line up; it is excluded from tasks/totals.
      failure.task_index = i;
      failure.design = tasks[i].design;
      failure.seed = tasks[i].seed;
      failure.elapsed_lane_cycles = elapsed;
      out.results[i].design = tasks[i].design;
      out.results[i].seed = tasks[i].seed;
      if (options.fail_fast) abort.store(true, std::memory_order_release);
      obs::metrics().counter("sweep.task_failures").add(1);
      std::lock_guard<std::mutex> lock(mu);
      out.failures.push_back(std::move(failure));
    }
    if (!progress) return;
    std::lock_guard<std::mutex> lock(mu);
    SweepProgress p;
    p.completed = ++completed;
    p.total = tasks.size();
    p.task_index = i;
    p.elapsed_sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
                        .count();
    p.eta_sec = p.elapsed_sec / static_cast<double>(p.completed) *
                static_cast<double>(p.total - p.completed);
    progress(p);
  });

  // Completion order is scheduling-dependent; the report is not.
  std::sort(out.failures.begin(), out.failures.end(),
            [](const SweepTaskFailure& a, const SweepTaskFailure& b) {
              return a.task_index < b.task_index;
            });

  const std::uint64_t run_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall_start)
          .count());
  std::uint64_t lane_cycles = 0;
  for (const SweepResult& r : out.results) lane_cycles += r.lane_cycles;
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("sweep.runs").add(1);
  m.counter("sweep.tasks").add(tasks.size());
  m.counter("sweep.lane_cycles").add(lane_cycles);
  m.counter("sweep.run_ns").add(run_ns);
  if (run_ns > 0) {
    m.gauge("sweep.lane_cycles_per_sec")
        .set(static_cast<double>(lane_cycles) * 1e9 / static_cast<double>(run_ns));
  }
  return out;
}

obs::JsonValue build_sweep_report(const std::vector<SweepResult>& results) {
  SweepOutcome outcome;
  outcome.results = results;
  return build_sweep_report(outcome);
}

obs::JsonValue build_sweep_report(const SweepOutcome& outcome) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.sweep/v1";
  obs::JsonValue tasks = obs::JsonValue::array();
  std::uint64_t lane_cycles = 0;
  std::uint64_t toggles = 0;
  std::size_t succeeded = 0;
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (outcome.failed(i)) continue;  // recorded under task_failures
    const SweepResult& r = outcome.results[i];
    obs::JsonValue t = obs::JsonValue::object();
    t["design"] = r.design;
    t["seed"] = r.seed;
    // No engine field: scalar and parallel must produce the same
    // numbers, and CI diffs the two reports to prove it.
    t["lanes"] = static_cast<std::uint64_t>(r.lanes);
    t["lane_cycles"] = r.lane_cycles;
    t["toggles"] = r.toggles;
    t["power_mw"] = r.power_mw;
    if (r.isolated_mode) {
      // Additive isolate-mode fields; plain rows keep the v1 shape
      // unchanged so existing consumers never see them.
      t["power_before_mw"] = r.power_before_mw;
      t["power_after_mw"] = r.power_after_mw;
      t["power_reduction_pct"] = r.power_reduction_pct;
      t["iterations"] = r.iterations;
      t["modules_isolated"] = r.modules_isolated;
    }
    // Additive confidence/coverage sections (task.confidence.enabled);
    // rows without them keep the v1 shape unchanged.
    if (!r.confidence.is_null()) t["confidence"] = r.confidence;
    if (!r.coverage.is_null()) t["coverage"] = r.coverage;
    tasks.push_back(std::move(t));
    lane_cycles += r.lane_cycles;
    toggles += r.toggles;
    ++succeeded;
  }
  doc["tasks"] = std::move(tasks);
  obs::JsonValue totals = obs::JsonValue::object();
  totals["tasks"] = static_cast<std::uint64_t>(succeeded);
  totals["failed_tasks"] = static_cast<std::uint64_t>(outcome.failures.size());
  totals["lane_cycles"] = lane_cycles;
  totals["toggles"] = toggles;
  doc["totals"] = std::move(totals);
  // Always present (empty on a clean run) so consumers can key on the
  // section without probing, and clean/failed reports share a shape.
  obs::JsonValue failures = obs::JsonValue::object();
  failures["schema"] = "opiso.task_failures/v1";
  obs::JsonValue entries = obs::JsonValue::array();
  for (const SweepTaskFailure& f : outcome.failures) {
    obs::JsonValue e = obs::JsonValue::object();
    e["task_index"] = static_cast<std::uint64_t>(f.task_index);
    e["design"] = f.design;
    e["seed"] = f.seed;
    e["code"] = f.code;
    e["message"] = f.message;
    // Lane-cycles, not wall time: elapsed progress that diffs bitwise
    // identical across --threads values.
    e["elapsed_lane_cycles"] = f.elapsed_lane_cycles;
    entries.push_back(std::move(e));
  }
  failures["failures"] = std::move(entries);
  doc["task_failures"] = std::move(failures);
  return doc;
}

}  // namespace opiso
