#include "sim/cycle_trace.hpp"

#include "support/error.hpp"

namespace opiso {

CycleTrace::CycleTrace(std::uint64_t window, bool record_values)
    : window_(window), record_values_(record_values) {
  OPISO_REQUIRE(window >= 1, "CycleTrace: window must be >= 1");
}

void CycleTrace::on_cycle(const Netlist& nl, std::uint64_t /*cycle*/, unsigned lanes,
                          std::span<const std::uint32_t> net_toggles,
                          const std::uint64_t* net_values) {
  OPISO_REQUIRE(!finished_, "CycleTrace: capture after finish()");
  if (num_nets_ == 0 && cycles_ == 0) {
    num_nets_ = nl.num_nets();
    lanes_ = lanes;
    accum_.assign(num_nets_, 0);
    net_totals_.assign(num_nets_, 0);
  }
  OPISO_REQUIRE(net_toggles.size() == num_nets_ && lanes == lanes_,
                "CycleTrace: engine changed shape mid-capture");
  OPISO_REQUIRE(!record_values_ || net_values != nullptr,
                "CycleTrace: value recording needs the scalar engine");
  for (std::size_t n = 0; n < num_nets_; ++n) {
    accum_[n] += net_toggles[n];
    net_totals_[n] += net_toggles[n];
  }
  if (record_values_) last_values_.assign(net_values, net_values + num_nets_);
  ++cycles_;
  if (++cycles_in_sample_ == window_) flush_sample();
}

void CycleTrace::flush_sample() {
  Sample s;
  s.cycles = cycles_in_sample_;
  s.toggles = accum_;
  if (record_values_) s.values = last_values_;
  samples_.push_back(std::move(s));
  std::fill(accum_.begin(), accum_.end(), 0);
  cycles_in_sample_ = 0;
}

void CycleTrace::finish() {
  if (finished_) return;
  if (cycles_in_sample_ > 0) flush_sample();
  finished_ = true;
}

void CycleTrace::merge(const CycleTrace& other) {
  OPISO_REQUIRE(finished_ && other.finished_, "CycleTrace::merge: finish() both traces first");
  if (num_nets_ == 0 && samples_.empty()) {
    window_ = other.window_;
    num_nets_ = other.num_nets_;
    lanes_ = 0;  // accumulated below
    cycles_ = other.cycles_;
    net_totals_.assign(other.num_nets_, 0);
    samples_.resize(other.samples_.size());
    for (std::size_t s = 0; s < samples_.size(); ++s) {
      samples_[s].cycles = other.samples_[s].cycles;
      samples_[s].toggles.assign(num_nets_, 0);
    }
  }
  OPISO_REQUIRE(window_ == other.window_ && num_nets_ == other.num_nets_ &&
                    cycles_ == other.cycles_ && samples_.size() == other.samples_.size(),
                "CycleTrace::merge: traces cover different runs");
  lanes_ += other.lanes_;
  record_values_ = false;  // per-lane value snapshots do not fold
  for (auto& s : samples_) s.values.clear();
  for (std::size_t n = 0; n < num_nets_; ++n) net_totals_[n] += other.net_totals_[n];
  for (std::size_t s = 0; s < samples_.size(); ++s) {
    OPISO_REQUIRE(samples_[s].cycles == other.samples_[s].cycles,
                  "CycleTrace::merge: sample boundaries differ");
    for (std::size_t n = 0; n < num_nets_; ++n) {
      samples_[s].toggles[n] += other.samples_[s].toggles[n];
    }
  }
}

std::uint64_t CycleTrace::sample_cycles(std::size_t s) const {
  OPISO_REQUIRE(finished_ && s < samples_.size(), "CycleTrace: bad sample index");
  return samples_[s].cycles;
}

const std::vector<std::uint64_t>& CycleTrace::sample_toggles(std::size_t s) const {
  OPISO_REQUIRE(finished_ && s < samples_.size(), "CycleTrace: bad sample index");
  return samples_[s].toggles;
}

const std::vector<std::uint64_t>& CycleTrace::sample_values(std::size_t s) const {
  OPISO_REQUIRE(finished_ && s < samples_.size(), "CycleTrace: bad sample index");
  OPISO_REQUIRE(record_values_, "CycleTrace: values were not recorded");
  return samples_[s].values;
}

ActivityStats CycleTrace::to_activity_stats() const {
  OPISO_REQUIRE(finished_, "CycleTrace: finish() before to_activity_stats()");
  ActivityStats stats;
  stats.cycles = cycles_ * lanes_;
  stats.toggles = net_totals_;
  stats.ones.assign(num_nets_, 0);
  return stats;
}

}  // namespace opiso
