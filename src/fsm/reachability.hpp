#pragma once
// Control-FSM extraction and reachability analysis.
//
// Sec. 3 names two ways to reason about control signals beyond pure
// structure: fanin analysis (see ActivationOptions::register_lookahead)
// and "analyzing the corresponding FSM". This module implements the
// FSM route: it extracts the design's *control slice* — the closure of
// 1-bit nets computable from 1-bit registers, 1-bit primary inputs and
// constants — enumerates the reachable control states by explicit
// breadth-first search from the all-zero reset state, and exposes the
// set of control-net valuations that can actually occur.
//
// Payoff: valuations that never occur (e.g. two one-hot phase decodes
// both high) are don't-cares for the activation logic. minimize_with_
// reachability() shrinks a derived activation function against that
// care set with the Coudert–Madre restrict operator; the result agrees
// with the original on every reachable valuation, so the isolated
// design remains observationally equivalent, with cheaper logic.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "boolfn/bdd.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"

namespace opiso {

struct ControlSpace {
  /// 1-bit registers whose next-state cone lies in the control slice.
  std::vector<CellId> state_regs;
  /// 1-bit primary-input nets the control slice reads.
  std::vector<NetId> input_nets;
  /// Every 1-bit net evaluable inside the control slice.
  std::vector<NetId> slice_nets;
  /// Reachable states, encoded as bit i = value of state_regs[i].
  std::unordered_set<std::uint64_t> reachable;
  /// False if the state/input space exceeded the exploration budget —
  /// all queries then fall back to "everything reachable".
  bool tractable = false;

  [[nodiscard]] bool in_slice(NetId net) const;
};

/// Extract the control slice and enumerate reachable states.
[[nodiscard]] ControlSpace explore_control_space(const Netlist& nl,
                                                 unsigned max_state_bits = 20,
                                                 unsigned max_input_bits = 12);

/// Characteristic function (over NetVarMap variables) of the joint
/// valuations the given nets can assume across all reachable states and
/// input combinations. Nets must lie in the control slice.
[[nodiscard]] BddRef reachable_care_set(const ControlSpace& space, const Netlist& nl,
                                        BddManager& mgr, NetVarMap& vars,
                                        const std::vector<NetId>& nets);

/// Minimize `f` (an activation function over control nets) against the
/// reachability care set: the result equals f on every valuation that
/// can occur and has at most the original literal count. Returns `f`
/// unchanged when the space is intractable or f's support leaves the
/// control slice.
[[nodiscard]] ExprRef minimize_with_reachability(const ControlSpace& space, const Netlist& nl,
                                                 ExprPool& pool, NetVarMap& vars, ExprRef f);

}  // namespace opiso
