#include "fsm/reachability.hpp"

#include <algorithm>
#include <deque>

#include "netlist/traversal.hpp"

namespace opiso {

namespace {

bool is_slice_gate(CellKind kind) {
  switch (kind) {
    case CellKind::Not:
    case CellKind::Buf:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor:
    case CellKind::Mux2:
    case CellKind::Eq:
    case CellKind::Lt:
      return true;
    default:
      return false;
  }
}

/// Evaluates the control slice for one (state, input) pair.
struct SliceEvaluator {
  const Netlist& nl;
  const ControlSpace& space;
  std::vector<CellId> order;               ///< slice cells in topo order
  std::vector<int> state_index_of_cell;    ///< cell -> state bit (-1 none)
  std::vector<int> input_index_of_net;     ///< net -> input bit (-1 none)
  mutable std::vector<std::uint8_t> value; ///< per net

  SliceEvaluator(const Netlist& netlist, const ControlSpace& sp) : nl(netlist), space(sp) {
    std::vector<bool> in_slice(nl.num_nets(), false);
    for (NetId n : space.slice_nets) in_slice[n.value()] = true;
    state_index_of_cell.assign(nl.num_cells(), -1);
    for (std::size_t i = 0; i < space.state_regs.size(); ++i) {
      state_index_of_cell[space.state_regs[i].value()] = static_cast<int>(i);
    }
    input_index_of_net.assign(nl.num_nets(), -1);
    for (std::size_t i = 0; i < space.input_nets.size(); ++i) {
      input_index_of_net[space.input_nets[i].value()] = static_cast<int>(i);
    }
    for (CellId id : topological_order(nl)) {
      const Cell& c = nl.cell(id);
      if (c.out.valid() && in_slice[c.out.value()]) order.push_back(id);
    }
    value.assign(nl.num_nets(), 0);
  }

  void evaluate(std::uint64_t state, std::uint64_t input) const {
    for (CellId id : order) {
      const Cell& c = nl.cell(id);
      auto in = [&](int p) { return value[c.ins[static_cast<size_t>(p)].value()]; };
      std::uint8_t out = 0;
      switch (c.kind) {
        case CellKind::Constant:
          out = static_cast<std::uint8_t>(c.param & 1);
          break;
        case CellKind::PrimaryInput: {
          const int idx = input_index_of_net[c.out.value()];
          OPISO_ASSERT(idx >= 0, "SliceEvaluator: PI missing from input enumeration");
          out = static_cast<std::uint8_t>((input >> idx) & 1);
          break;
        }
        case CellKind::Reg:
          out = static_cast<std::uint8_t>((state >> state_index_of_cell[id.value()]) & 1);
          break;
        case CellKind::Not: out = !in(0); break;
        case CellKind::Buf: out = in(0); break;
        case CellKind::And: out = in(0) & in(1); break;
        case CellKind::Or: out = in(0) | in(1); break;
        case CellKind::Xor: out = in(0) ^ in(1); break;
        case CellKind::Nand: out = !(in(0) & in(1)); break;
        case CellKind::Nor: out = !(in(0) | in(1)); break;
        case CellKind::Xnor: out = !(in(0) ^ in(1)); break;
        case CellKind::Eq: out = in(0) == in(1); break;
        case CellKind::Lt: out = in(0) < in(1); break;
        case CellKind::Mux2: out = in(0) ? in(2) : in(1); break;
        default:
          throw Error("SliceEvaluator: non-control cell in slice");
      }
      value[c.out.value()] = out & 1;
    }
  }

  [[nodiscard]] std::uint64_t next_state(std::uint64_t state, std::uint64_t input) const {
    evaluate(state, input);
    std::uint64_t next = 0;
    for (std::size_t i = 0; i < space.state_regs.size(); ++i) {
      const Cell& r = nl.cell(space.state_regs[i]);
      const bool en = value[r.ins[1].value()] & 1;
      const bool d = value[r.ins[0].value()] & 1;
      const bool cur = (state >> i) & 1;
      if (en ? d : cur) next |= std::uint64_t{1} << i;
    }
    return next;
  }
};

}  // namespace

bool ControlSpace::in_slice(NetId net) const {
  return std::find(slice_nets.begin(), slice_nets.end(), net) != slice_nets.end();
}

ControlSpace explore_control_space(const Netlist& nl, unsigned max_state_bits,
                                   unsigned max_input_bits) {
  ControlSpace space;

  // Greatest fixpoint: start with every 1-bit net whose driver *could*
  // belong to the slice, then delete violations until stable. Starting
  // optimistic keeps mutually dependent FSM registers in.
  std::vector<bool> in_slice(nl.num_nets(), false);
  for (NetId id : nl.net_ids()) {
    const Cell& drv = nl.cell(nl.net(id).driver);
    if (nl.net(id).width != 1) continue;
    if (drv.kind == CellKind::Constant || drv.kind == CellKind::PrimaryInput ||
        drv.kind == CellKind::Reg || is_slice_gate(drv.kind)) {
      in_slice[id.value()] = true;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (NetId id : nl.net_ids()) {
      if (!in_slice[id.value()]) continue;
      const Cell& drv = nl.cell(nl.net(id).driver);
      bool ok = true;
      if (is_slice_gate(drv.kind) || drv.kind == CellKind::Reg) {
        for (NetId in : drv.ins) {
          if (!in_slice[in.value()]) ok = false;
        }
      }
      if (!ok) {
        in_slice[id.value()] = false;
        changed = true;
      }
    }
  }

  for (NetId id : nl.net_ids()) {
    if (in_slice[id.value()]) space.slice_nets.push_back(id);
  }
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::Reg && c.out.valid() && in_slice[c.out.value()]) {
      space.state_regs.push_back(id);
    }
  }
  // Inputs: every 1-bit primary input in the slice. (Even a PI consumed
  // only by data-register enables can appear in the support of an
  // activation function, so the evaluator must enumerate its values.)
  for (CellId pi : nl.primary_inputs()) {
    const Cell& c = nl.cell(pi);
    if (c.width == 1 && in_slice[c.out.value()]) space.input_nets.push_back(c.out);
  }

  if (space.state_regs.size() > max_state_bits || space.input_nets.size() > max_input_bits) {
    space.tractable = false;
    return space;
  }

  // Explicit BFS from the all-zero reset state.
  const SliceEvaluator eval(nl, space);
  const std::uint64_t num_inputs = std::uint64_t{1} << space.input_nets.size();
  std::deque<std::uint64_t> frontier{0};
  space.reachable.insert(0);
  while (!frontier.empty()) {
    const std::uint64_t s = frontier.front();
    frontier.pop_front();
    for (std::uint64_t in = 0; in < num_inputs; ++in) {
      const std::uint64_t nxt = eval.next_state(s, in);
      if (space.reachable.insert(nxt).second) frontier.push_back(nxt);
    }
  }
  space.tractable = true;
  return space;
}

BddRef reachable_care_set(const ControlSpace& space, const Netlist& nl, BddManager& mgr,
                          NetVarMap& vars, const std::vector<NetId>& nets) {
  OPISO_REQUIRE(space.tractable, "reachable_care_set: control space intractable");
  for (NetId n : nets) {
    OPISO_REQUIRE(space.in_slice(n), "reachable_care_set: net outside the control slice: " +
                                         nl.net(n).name);
  }
  const SliceEvaluator eval(nl, space);
  const std::uint64_t num_inputs = std::uint64_t{1} << space.input_nets.size();
  BddRef care = mgr.zero();
  for (std::uint64_t state : space.reachable) {
    for (std::uint64_t in = 0; in < num_inputs; ++in) {
      eval.evaluate(state, in);
      BddRef minterm = mgr.one();
      for (NetId n : nets) {
        const BoolVar v = vars.var_of(nl, n);
        minterm = mgr.band(minterm, (eval.value[n.value()] & 1) ? mgr.var(v) : mgr.nvar(v));
      }
      care = mgr.bor(care, minterm);
    }
  }
  return care;
}

ExprRef minimize_with_reachability(const ControlSpace& space, const Netlist& nl, ExprPool& pool,
                                   NetVarMap& vars, ExprRef f) {
  if (!space.tractable) return f;
  std::vector<NetId> support_nets;
  for (BoolVar v : pool.support(f)) {
    const NetId n = vars.net_of(v);
    if (!space.in_slice(n)) return f;  // function leaves the control slice
    support_nets.push_back(n);
  }
  if (support_nets.empty()) return f;

  BddManager mgr;
  const BddRef care = reachable_care_set(space, nl, mgr, vars, support_nets);
  if (mgr.is_zero(care) || mgr.is_one(care)) return f;
  const BddRef f_bdd = mgr.from_expr(pool, f);
  const BddRef reduced = mgr.restrict_to_care(f_bdd, care);
  const ExprRef candidate = mgr.to_expr(pool, reduced);
  return pool.literal_count(candidate) < pool.literal_count(f) ? candidate : f;
}

}  // namespace opiso
