#include "isolation/activation.hpp"

#include "netlist/traversal.hpp"
#include "obs/trace.hpp"

namespace opiso {

namespace {

bool is_comb_for_obs(CellKind kind) {
  switch (kind) {
    case CellKind::PrimaryInput:
    case CellKind::PrimaryOutput:
    case CellKind::Constant:
    case CellKind::Reg:
      return false;
    default:
      return true;
  }
}

}  // namespace

ExprRef predict_next_value(const Netlist& nl, ExprPool& pool, NetVarMap& vars, NetId net) {
  OPISO_REQUIRE(nl.net(net).width == 1, "predict_next_value: only 1-bit control nets");
  const Cell& drv = nl.cell(nl.net(net).driver);
  // Current-cycle value of a net: a Boolean variable, folded to a
  // constant when the net is constant-driven.
  auto cur = [&](NetId n) -> ExprRef {
    const Cell& d = nl.cell(nl.net(n).driver);
    if (d.kind == CellKind::Constant) return (d.param & 1) ? pool.const1() : pool.const0();
    return pool.var(vars.var_of(nl, n));
  };
  auto recurse = [&](NetId n) { return predict_next_value(nl, pool, vars, n); };
  switch (drv.kind) {
    case CellKind::Constant:
      return (drv.param & 1) ? pool.const1() : pool.const0();
    case CellKind::Reg:
      // Q(t+1) = EN(t) ? D(t) : Q(t); all three are current-cycle nets.
      return pool.ite(cur(drv.ins[1]), cur(drv.ins[0]), cur(net));
    case CellKind::Buf:
      return recurse(drv.ins[0]);
    case CellKind::Not: {
      const ExprRef a = recurse(drv.ins[0]);
      return a.valid() ? pool.lnot(a) : ExprRef::invalid();
    }
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor: {
      if (nl.net(drv.ins[0]).width != 1 || nl.net(drv.ins[1]).width != 1) {
        return ExprRef::invalid();
      }
      const ExprRef a = recurse(drv.ins[0]);
      const ExprRef b = recurse(drv.ins[1]);
      if (!a.valid() || !b.valid()) return ExprRef::invalid();
      switch (drv.kind) {
        case CellKind::And: return pool.land(a, b);
        case CellKind::Or: return pool.lor(a, b);
        case CellKind::Xor: return pool.lor(pool.land(a, pool.lnot(b)), pool.land(pool.lnot(a), b));
        case CellKind::Nand: return pool.lnot(pool.land(a, b));
        case CellKind::Nor: return pool.lnot(pool.lor(a, b));
        default: return pool.lnot(pool.lor(pool.land(a, pool.lnot(b)), pool.land(pool.lnot(a), b)));
      }
    }
    case CellKind::Mux2: {
      if (nl.cell(nl.net(net).driver).width != 1) return ExprRef::invalid();
      const ExprRef s = recurse(drv.ins[0]);
      const ExprRef a = recurse(drv.ins[1]);
      const ExprRef b = recurse(drv.ins[2]);
      if (!s.valid() || !a.valid() || !b.valid()) return ExprRef::invalid();
      return pool.ite(s, b, a);
    }
    default:
      // Primary inputs, latches, datapath cells: unpredictable.
      return ExprRef::invalid();
  }
}

ActivationAnalysis derive_activation(const Netlist& nl, ExprPool& pool, NetVarMap& vars,
                                     const ActivationOptions& options) {
  OPISO_SPAN("activation.derive");
  ActivationAnalysis aa;
  aa.obs.assign(nl.num_nets(), pool.const0());

  auto add_obs = [&](NetId net, ExprRef cond) {
    aa.obs[net.value()] = pool.lor(aa.obs[net.value()], cond);
  };
  auto ctrl = [&](NetId net) { return pool.var(vars.var_of(nl, net)); };

  // With lookahead, f+_r needs the register's *own* observability —
  // derived with the plain f+_r = 1 cut first (one level of lookahead).
  std::vector<ExprRef> base_obs;
  if (options.register_lookahead) {
    base_obs = derive_activation(nl, pool, vars, ActivationOptions{}).obs;
  }

  // f+_r for a register: next-cycle observability of its output, OR the
  // possibility that the loaded value outlives cycle t+1 (not reloaded).
  auto f_plus = [&](const Cell& reg) -> ExprRef {
    if (!options.register_lookahead) return pool.const1();
    // Substitute every control variable v of obs_r with its predicted
    // next-cycle value; any unpredictable variable forces f+ = 1.
    ExprRef obs_next = base_obs[reg.out.value()];
    for (BoolVar v : pool.support(obs_next)) {
      const ExprRef predicted = predict_next_value(nl, pool, vars, vars.net_of(v));
      if (!predicted.valid()) return pool.const1();
      obs_next = pool.substitute(obs_next, v, predicted);
    }
    ExprRef en_next;
    const Cell& en_drv = nl.cell(nl.net(reg.ins[1]).driver);
    if (en_drv.kind == CellKind::Constant) {
      en_next = (en_drv.param & 1) ? pool.const1() : pool.const0();
    } else {
      en_next = predict_next_value(nl, pool, vars, reg.ins[1]);
      if (!en_next.valid()) return pool.const1();
    }
    return pool.lor(obs_next, pool.lnot(en_next));
  };

  // Seed from the sinks of every combinational block.
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::PrimaryOutput) {
      add_obs(c.ins[0], pool.const1());
    } else if (c.kind == CellKind::Reg) {
      // D is observed iff the register loads (G) and the loaded value is
      // used later — f+_r, constant 1 under the paper's default cut.
      NetId d = c.ins[0];
      NetId en = c.ins[1];
      const bool en_const = nl.cell(nl.net(en).driver).kind == CellKind::Constant;
      const ExprRef en_expr =
          en_const ? ((nl.cell(nl.net(en).driver).param & 1) ? pool.const1() : pool.const0())
                   : ctrl(en);
      add_obs(d, pool.land(en_expr, f_plus(c)));
      // The enable itself steers state and is always considered used.
      add_obs(en, pool.const1());
    }
  }

  // Propagate backward in reverse topological order: when cell c is
  // visited, every consumer of c.out has already contributed to obs(out).
  const std::vector<CellId> order = topological_order(nl);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Cell& c = nl.cell(*it);
    if (!is_comb_for_obs(c.kind)) continue;
    const ExprRef out_obs = aa.obs[c.out.value()];
    switch (c.kind) {
      case CellKind::Mux2: {
        NetId s = c.ins[0];
        NetId a = c.ins[1];
        NetId b = c.ins[2];
        add_obs(s, out_obs);
        add_obs(a, pool.land(pool.lnot(ctrl(s)), out_obs));
        add_obs(b, pool.land(ctrl(s), out_obs));
        break;
      }
      case CellKind::And:
      case CellKind::Nand:
      case CellKind::Or:
      case CellKind::Nor: {
        // Side-input (controlling-value) refinement for pure control
        // logic; conservative propagation for word-level gates.
        const bool all_1bit =
            c.width == 1 && nl.net(c.ins[0]).width == 1 && nl.net(c.ins[1]).width == 1;
        if (all_1bit) {
          const bool and_like = (c.kind == CellKind::And || c.kind == CellKind::Nand);
          ExprRef s0 = ctrl(c.ins[0]);
          ExprRef s1 = ctrl(c.ins[1]);
          // AND/NAND: controlling value 0, so the side input must be 1
          // for a change to pass. OR/NOR: controlling value 1.
          add_obs(c.ins[0], pool.land(and_like ? s1 : pool.lnot(s1), out_obs));
          add_obs(c.ins[1], pool.land(and_like ? s0 : pool.lnot(s0), out_obs));
        } else {
          add_obs(c.ins[0], out_obs);
          add_obs(c.ins[1], out_obs);
        }
        break;
      }
      case CellKind::Latch: {
        add_obs(c.ins[0], pool.land(ctrl(c.ins[1]), out_obs));
        add_obs(c.ins[1], out_obs);
        break;
      }
      case CellKind::IsoAnd:
      case CellKind::IsoOr:
      case CellKind::IsoLatch: {
        add_obs(c.ins[0], pool.land(ctrl(c.ins[1]), out_obs));
        add_obs(c.ins[1], pool.const1());  // keep existing activation logic alive
        break;
      }
      default:
        // Arithmetic modules, comparators, shifts, XORs, buffers:
        // every input change can be observable whenever the output is.
        for (NetId in : c.ins) add_obs(in, out_obs);
        break;
    }
  }
  return aa;
}

std::string activation_to_string(const Netlist& nl, const ExprPool& pool, const NetVarMap& vars,
                                 ExprRef f) {
  return pool.to_string(f, [&](BoolVar v) { return nl.net(vars.net_of(v)).name; });
}

}  // namespace opiso
