#include "isolation/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace opiso {

std::string format_isolation_summary(const IsolationResult& result) {
  std::ostringstream os;
  os << std::fixed;
  os << "operand isolation summary for '" << result.netlist.name() << "'\n";
  os << "  power: " << std::setprecision(3) << result.power_before_mw << " mW -> "
     << result.power_after_mw << " mW (" << std::setprecision(2)
     << -result.power_reduction_pct() << "%)\n";
  os << "  area:  " << std::setprecision(0) << result.area_before_um2 << " um^2 -> "
     << result.area_after_um2 << " um^2 (+" << std::setprecision(2)
     << result.area_increase_pct() << "%)\n";
  os << "  slack: " << std::setprecision(2) << result.slack_before_ns << " ns -> "
     << result.slack_after_ns << " ns\n";
  os << "  isolated modules: " << result.records.size() << "\n";
  for (const IsolationRecord& rec : result.records) {
    os << "    " << result.netlist.cell(rec.candidate).name << ": "
       << isolation_style_name(rec.style) << " bank, " << rec.isolated_bits << " bits, "
       << rec.literal_count << " activation literals, AS net '"
       << result.netlist.net(rec.as_net).name << "'\n";
  }
  return os.str();
}

std::string format_iteration_log(const IsolationResult& result) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  for (const IterationLog& log : result.iterations) {
    os << "iteration " << log.iteration << " (total " << std::setprecision(3)
       << log.total_power_mw << " mW, " << log.num_isolated << " isolated)\n"
       << std::setprecision(4);
    for (const CandidateEvaluation& ev : log.evaluations) {
      os << "  " << (ev.isolated_now ? '+' : ' ') << ' ' << ev.cell_name << " [block "
         << ev.block << "] Pr(!f)=" << std::setprecision(2) << ev.pr_redundant
         << std::setprecision(4) << " dPp=" << ev.primary_mw << " dPs=" << ev.secondary_mw
         << " Pi=" << ev.overhead_mw << " h=" << ev.h;
      if (ev.slack_vetoed) os << " [slack veto]";
      if (!ev.legal) os << " [illegal]";
      os << "  AS=" << ev.activation_str << "\n";
    }
  }
  return os.str();
}

void write_isolation_report(std::ostream& os, const IsolationResult& result) {
  os << format_isolation_summary(result) << "\n" << format_iteration_log(result);
}

}  // namespace opiso
