#include "isolation/savings.hpp"

#include <algorithm>

namespace opiso {

SavingsEstimator::SavingsEstimator(const Netlist& nl, ExprPool& pool, NetVarMap& vars,
                                   const std::vector<IsolationCandidate>& candidates,
                                   const MacroPowerModel& power)
    : nl_(nl), pool_(pool), vars_(vars), cands_(candidates), power_(power) {
  std::vector<bool> is_cand(nl.num_cells(), false);
  for (const IsolationCandidate& c : cands_) is_cand[c.cell.value()] = true;
  const CandidatePredicate pred = [&is_cand](CellId id) { return is_cand[id.value()]; };

  models_.resize(cands_.size());
  for (std::size_t i = 0; i < cands_.size(); ++i) {
    CandidateModel& m = models_[i];
    const Cell& cell = nl_.cell(cands_[i].cell);

    // --- fanin steering events per input port (refined primary model)
    m.port_events.resize(cell.ins.size());
    for (int p = 0; p < static_cast<int>(cell.ins.size()); ++p) {
      auto& events = m.port_events[static_cast<size_t>(p)];
      const FaninNetwork fan = derive_fanin_network(nl_, pool_, vars_, cands_[i].cell, p, pred);
      ExprRef any_candidate = pool_.const0();
      for (const ConnectedCandidate& cc : fan.candidates) {
        const std::size_t k = index_of(cc.candidate);
        const ExprRef fk = cands_[k].activation;
        events.push_back(PortEvent{pool_.land(cc.condition, fk), 1.0, k, true});
        events.push_back(PortEvent{pool_.land(cc.condition, pool_.lnot(fk)), 1.0, k, false});
        any_candidate = pool_.lor(any_candidate, cc.condition);
      }
      // Background event: the pin is not steered from any candidate.
      events.push_back(PortEvent{pool_.lnot(any_candidate), 1.0, kBackground, false});
    }

    // --- event-pair probes for two-input modules
    if (cell.ins.size() == 2) {
      const ExprRef not_f = pool_.lnot(cands_[i].activation);
      for (std::size_t a = 0; a < m.port_events[0].size(); ++a) {
        for (std::size_t b = 0; b < m.port_events[1].size(); ++b) {
          PairProbe pp;
          pp.a_event = a;
          pp.b_event = b;
          pp.probe = 0;  // assigned in register_probes
          m.pair_probes.push_back(pp);
          (void)not_f;
        }
      }
    }

    // --- fanout terms (secondary model)
    for (const FanoutConnection& fc :
         derive_fanout_candidates(nl_, pool_, vars_, cands_[i].cell, pred)) {
      FanoutTerm term;
      term.j = index_of(fc.candidate);
      term.port = fc.port;
      term.g = fc.condition;
      m.fanouts.push_back(term);
    }
  }
}

std::size_t SavingsEstimator::index_of(CellId cell) const {
  for (std::size_t i = 0; i < cands_.size(); ++i) {
    if (cands_[i].cell == cell) return i;
  }
  throw Error("SavingsEstimator: cell is not a candidate");
}

void SavingsEstimator::register_probes(ProbeHost& sim) {
  OPISO_REQUIRE(!probes_registered_, "register_probes: already registered");
  for (std::size_t i = 0; i < models_.size(); ++i) {
    CandidateModel& m = models_[i];
    const ExprRef f = cands_[i].activation;
    const ExprRef not_f = pool_.lnot(f);
    m.probe_f = sim.add_probe(f);
    for (PairProbe& pp : m.pair_probes) {
      const ExprRef ca = m.port_events[0][pp.a_event].condition;
      const ExprRef cb = m.port_events[1][pp.b_event].condition;
      pp.probe = sim.add_probe(pool_.land(not_f, pool_.land(ca, cb)));
    }
    for (FanoutTerm& ft : m.fanouts) {
      const ExprRef fj = cands_[ft.j].activation;
      ft.probe_active = sim.add_probe(pool_.land(not_f, pool_.land(fj, ft.g)));
      ft.probe_idle = sim.add_probe(pool_.land(not_f, pool_.land(pool_.lnot(fj), ft.g)));
    }
  }
  probes_registered_ = true;
}

double SavingsEstimator::pr_active(std::size_t i, const ActivityStats& stats) const {
  return stats.probe_probability(models_[i].probe_f);
}

double SavingsEstimator::pr_redundant(std::size_t i, const ActivityStats& stats) const {
  return 1.0 - pr_active(i, stats);
}

double SavingsEstimator::activation_toggle_rate(std::size_t i,
                                                const ActivityStats& stats) const {
  return stats.probe_toggle_rate(models_[i].probe_f);
}

double SavingsEstimator::actual_toggle_rate(double measured, double pr_active) {
  // Eq. 2. Guard against division by ~0: a module that is never active
  // has no meaningful active-cycle toggle rate.
  if (pr_active <= 1e-9) return 0.0;
  return measured / pr_active;
}

SavingsEstimator::SourceRate SavingsEstimator::source_rate(const PortEvent& ev,
                                                           const ActivityStats& stats,
                                                           NetId pin_net) const {
  if (ev.source == kBackground) return {stats.toggle_rate(pin_net), false};
  const IsolationCandidate& src = cands_[ev.source];
  const double measured = stats.toggle_rate(nl_.cell(src.cell).out);
  if (!src.already_isolated) return {measured, false};
  if (!ev.source_active) return {0.0, false};  // banks blocked during !f
  return {actual_toggle_rate(measured, stats.probe_probability(models_[ev.source].probe_f)),
          true};
}

std::string SavingsEstimator::source_name(const PortEvent& ev) const {
  if (ev.source == kBackground) return "(background)";
  std::string name = nl_.cell(cands_[ev.source].cell).name;
  name += ev.source_active ? " [active]" : " [idle]";
  return name;
}

double SavingsEstimator::primary_savings_mw(std::size_t i, const ActivityStats& stats,
                                            PrimaryModel model,
                                            std::vector<SavingsTerm>* terms) const {
  OPISO_REQUIRE(probes_registered_, "primary_savings_mw: probes not registered");
  const Cell& cell = nl_.cell(cands_[i].cell);
  const CandidateModel& m = models_[i];

  if (model == PrimaryModel::Simple || cell.ins.size() != 2 || m.pair_probes.empty()) {
    // Eq. (1): evenly distributed toggle rates.
    std::vector<double> rates;
    rates.reserve(cell.ins.size());
    for (NetId in : cell.ins) rates.push_back(stats.toggle_rate(in));
    const double saved =
        pr_redundant(i, stats) * power_.module_power_mw(cell.kind, cell.width, rates);
    if (terms) {
      SavingsTerm t;
      t.kind = "primary.simple";
      t.mw = saved;
      t.probability = pr_redundant(i, stats);
      t.rate_a = rates.empty() ? 0.0 : rates[0];
      t.rate_b = rates.size() > 1 ? rates[1] : 0.0;
      terms->push_back(std::move(t));
    }
    return saved;
  }

  // Eq. (3) generalized: sum over steering-event pairs.
  double saved = 0.0;
  for (const PairProbe& pp : m.pair_probes) {
    const double pr = stats.probe_probability(pp.probe);
    if (pr <= 0.0) continue;
    const PortEvent& ea = m.port_events[0][pp.a_event];
    const PortEvent& eb = m.port_events[1][pp.b_event];
    const SourceRate ra = source_rate(ea, stats, cell.ins[0]);
    const SourceRate rb = source_rate(eb, stats, cell.ins[1]);
    const double term_mw = pr * power_.module_power_mw(cell.kind, cell.width, ra.rate, rb.rate);
    saved += term_mw;
    if (terms) {
      SavingsTerm t;
      t.kind = "primary.pair";
      t.mw = term_mw;
      t.probability = pr;
      t.rate_a = ra.rate;
      t.rate_b = rb.rate;
      t.source_a = source_name(ea);
      t.source_b = source_name(eb);
      t.rescaled_a = ra.rescaled;
      t.rescaled_b = rb.rescaled;
      terms->push_back(std::move(t));
    }
  }
  return saved;
}

double SavingsEstimator::secondary_savings_mw(std::size_t i, const ActivityStats& stats,
                                              std::vector<SavingsTerm>* terms) const {
  OPISO_REQUIRE(probes_registered_, "secondary_savings_mw: probes not registered");
  const CandidateModel& m = models_[i];
  double saved = 0.0;
  for (const FanoutTerm& ft : m.fanouts) {
    const IsolationCandidate& cj = cands_[ft.j];
    const Cell& cell_j = nl_.cell(cj.cell);
    std::vector<double> rates;
    rates.reserve(cell_j.ins.size());
    for (NetId in : cell_j.ins) rates.push_back(stats.toggle_rate(in));

    auto delta_with_port_rate = [&](double port_rate) {
      std::vector<double> with = rates;
      with[static_cast<size_t>(ft.port)] = port_rate;
      std::vector<double> without = rates;
      without[static_cast<size_t>(ft.port)] = 0.0;
      return power_.module_power_mw(cell_j.kind, cell_j.width, with) -
             power_.module_power_mw(cell_j.kind, cell_j.width, without);
    };
    auto record = [&](const char* kind, double pr, double rate, bool rescaled, double mw) {
      if (!terms) return;
      SavingsTerm t;
      t.kind = kind;
      t.mw = mw;
      t.probability = pr;
      t.rate_a = rate;
      t.rescaled_a = rescaled;
      t.fanout = cell_j.name;
      t.fanout_port = ft.port;
      t.z_j = cj.already_isolated;
      terms->push_back(std::move(t));
    };

    const double measured = rates[static_cast<size_t>(ft.port)];
    // Term 1 (Eq. 5): c_i idle, c_j active, path connected. If c_j is
    // already isolated its pin rate concentrates in active cycles (Eq. 2).
    const double tr_active =
        cj.already_isolated
            ? actual_toggle_rate(measured, stats.probe_probability(models_[ft.j].probe_f))
            : measured;
    const double pr_act = stats.probe_probability(ft.probe_active);
    const double active_mw = pr_act * delta_with_port_rate(tr_active);
    saved += active_mw;
    record("secondary.active", pr_act, tr_active, cj.already_isolated, active_mw);
    // Term 2: c_i idle, c_j idle — only if c_j is not isolated (z_j = 0),
    // otherwise its banks already block the pin.
    if (!cj.already_isolated) {
      const double pr_idle = stats.probe_probability(ft.probe_idle);
      const double idle_mw = pr_idle * delta_with_port_rate(measured);
      saved += idle_mw;
      record("secondary.idle", pr_idle, measured, false, idle_mw);
    }
  }
  return saved;
}

double SavingsEstimator::overhead_mw(std::size_t i, const ActivityStats& stats,
                                     IsolationStyle style,
                                     std::vector<SavingsTerm>* terms) const {
  OPISO_REQUIRE(probes_registered_, "overhead_mw: probes not registered");
  const Cell& cell = nl_.cell(cands_[i].cell);
  const CellKind bank_kind = isolation_cell_kind(style);
  const double tr_as = activation_toggle_rate(i, stats);

  double overhead = 0.0;
  // Prospective isolation banks, one per input pin.
  for (NetId in : cell.ins) {
    const double bank_mw =
        power_.module_power_mw(bank_kind, nl_.net(in).width, stats.toggle_rate(in), tr_as);
    overhead += bank_mw;
    if (terms) {
      SavingsTerm t;
      t.kind = "overhead.bank";
      t.mw = bank_mw;
      t.rate_a = stats.toggle_rate(in);
      t.rate_b = tr_as;
      t.source_a = nl_.net(in).name;
      terms->push_back(std::move(t));
    }
  }
  // Gate-based banks force the module inputs to 0 (ones) on every
  // falling AS edge and release them on every rising edge: with random
  // operands, each AS toggle flips ~half the input word. This induced
  // module-internal switching is why "AND(OR)-based isolation will
  // result in power savings only if the module is idle for several
  // consecutive clock cycles" (Sec. 5.2) — latch banks hold instead.
  if (style != IsolationStyle::Latch) {
    for (int p = 0; p < static_cast<int>(cell.ins.size()); ++p) {
      const double induced_rate =
          tr_as * 0.5 * static_cast<double>(nl_.net(cell.ins[static_cast<size_t>(p)]).width);
      const double induced_mw = power_.energy_per_toggle_pj(cell.kind, cell.width, p) *
                                induced_rate * power_.clock_freq_mhz * 1e-3;
      overhead += induced_mw;
      if (terms) {
        SavingsTerm t;
        t.kind = "overhead.induced";
        t.mw = induced_mw;
        t.rate_a = induced_rate;
        t.rate_b = tr_as;
        t.source_a = nl_.net(cell.ins[static_cast<size_t>(p)]).name;
        terms->push_back(std::move(t));
      }
    }
  }
  // Activation logic: factored-form gates switching at roughly the
  // average rate of the control signals they combine.
  const ExprRef f = cands_[i].activation;
  const std::vector<BoolVar> sup = pool_.support(f);
  double avg_rate = tr_as;
  if (!sup.empty()) {
    double sum = 0.0;
    for (BoolVar v : sup) sum += stats.toggle_rate(vars_.net_of(v));
    avg_rate = 0.5 * (tr_as + sum / static_cast<double>(sup.size()));
  }
  const double gates = static_cast<double>(pool_.gate_count(f));
  const double logic_mw = power_.module_power_mw(CellKind::And, 1, avg_rate * gates, 0.0);
  overhead += logic_mw;
  if (terms) {
    SavingsTerm t;
    t.kind = "overhead.logic";
    t.mw = logic_mw;
    t.rate_a = avg_rate * gates;
    t.rate_b = tr_as;
    terms->push_back(std::move(t));
  }
  return overhead;
}

}  // namespace opiso
