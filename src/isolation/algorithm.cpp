#include "isolation/algorithm.hpp"

#include "boolfn/bdd.hpp"
#include "fsm/reachability.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/incremental.hpp"
#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <iostream>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace opiso {

namespace {

/// Depth of the factored form (levels of logic after synthesis).
std::size_t expr_depth(const ExprPool& pool, ExprRef r) {
  std::unordered_map<std::uint32_t, std::size_t> memo;
  std::function<std::size_t(ExprRef)> go = [&](ExprRef cur) -> std::size_t {
    if (auto it = memo.find(cur.value()); it != memo.end()) return it->second;
    const ExprNode& n = pool.node(cur);
    std::size_t d = 0;
    switch (n.op) {
      case ExprOp::Const0:
      case ExprOp::Const1:
      case ExprOp::Var:
        d = 0;
        break;
      case ExprOp::Not:
        d = 1 + go(n.a);
        break;
      case ExprOp::And:
      case ExprOp::Or:
        d = 1 + std::max(go(n.a), go(n.b));
        break;
    }
    memo.emplace(cur.value(), d);
    return d;
  };
  return go(r);
}

/// One measurement round on either engine. The parallel engine splits
/// sim_cycles (and warmup) across its lanes so the sampled cycle count —
/// and hence the statistical weight of the estimates — matches the
/// scalar path. `register_on` attaches probes before the run.
ActivityStats measure_activity(const Netlist& nl, const ExprPool* pool, const NetVarMap* vars,
                               const StimulusFactory& stimuli, const IsolationOptions& opt,
                               const std::function<void(ProbeHost&)>& register_on) {
  if (opt.sim_engine == SimEngineKind::Parallel) {
    OPISO_REQUIRE(opt.lane_stimuli != nullptr,
                  "run_operand_isolation: parallel engine needs lane_stimuli");
    ParallelSimulator sim(nl, opt.sim_lanes, pool, vars);
    if (opt.confidence.enabled) sim.enable_batch_stats(opt.confidence.batch_frames);
    if (register_on) register_on(sim);
    sim.set_stimulus(opt.lane_stimuli);
    const std::uint64_t lanes = sim.lanes();
    if (opt.warmup_cycles > 0) sim.warmup((opt.warmup_cycles + lanes - 1) / lanes);
    sim.run(std::max<std::uint64_t>(1, opt.sim_cycles / lanes));
    return sim.stats();
  }
  Simulator sim(nl, pool, vars);
  if (opt.confidence.enabled) sim.enable_batch_stats(opt.confidence.batch_frames);
  if (register_on) register_on(sim);
  std::unique_ptr<Stimulus> stim = stimuli();
  if (opt.warmup_cycles > 0) sim.warmup(*stim, opt.warmup_cycles);
  sim.run(*stim, opt.sim_cycles);
  return sim.stats();
}

/// Incremental session configured to mirror measure_activity's
/// warmup/cycle split, so the full and incremental paths stay
/// measurement-for-measurement comparable.
std::unique_ptr<IncrementalSession> make_incremental_session(const StimulusFactory& stimuli,
                                                             const IsolationOptions& opt) {
  IncrementalConfig cfg;
  cfg.engine = opt.sim_engine;
  cfg.lanes = opt.sim_lanes;
  cfg.warmup_cycles = opt.warmup_cycles;
  cfg.sim_cycles = opt.sim_cycles;
  cfg.tape_budget_bytes = opt.incremental_tape_budget_bytes;
  cfg.verify_stimulus = opt.incremental_verify_stimulus;
  if (opt.confidence.enabled) cfg.batch_frames = opt.confidence.batch_frames;
  return std::make_unique<IncrementalSession>(stimuli, opt.lane_stimuli, cfg);
}

/// Lanes a round's statistics were folded over: frames of the batch
/// accumulator times lanes equals measured cycles exactly on both
/// engines, so the division is exact.
std::uint64_t stats_lanes(const ActivityStats& stats) {
  const std::uint64_t frames = stats.net_batches.num_frames();
  return frames > 0 ? stats.cycles / frames : 0;
}

}  // namespace

double estimate_slack_after_isolation(const Netlist& nl, const DelayModel& dm,
                                      const TimingReport& timing, const ExprPool& pool,
                                      const NetVarMap& vars, CellId cell, ExprRef activation,
                                      IsolationStyle style) {
  const Cell& c = nl.cell(cell);
  const CellKind bank_kind = isolation_cell_kind(style);

  // Arrival of the activation signal: latest tapped control net plus the
  // synthesized logic depth.
  double arr_as = 0.0;
  double min_ctrl_slack = dm.clock_period_ns;
  const std::vector<BoolVar> sup = pool.support(activation);
  for (BoolVar v : sup) {
    const NetId ctrl = vars.net_of(v);
    arr_as = std::max(arr_as, timing.net_arrival(ctrl));
    // The activation logic adds one fanout pin of load to each tapped
    // control net, eating into that net's own slack.
    min_ctrl_slack = std::min(min_ctrl_slack, timing.net_slack(ctrl) - dm.load_per_fanout_ns);
  }
  arr_as += static_cast<double>(expr_depth(pool, activation)) *
            (dm.cell_delay(CellKind::And, 1) + dm.load_per_fanout_ns);

  // Banks delay every data path into the module; the AS path merges in.
  double worst_delta = 0.0;
  for (NetId in : c.ins) {
    const double arr_pin = timing.net_arrival(in);
    const double new_arr = std::max(arr_pin, arr_as) +
                           dm.cell_delay(bank_kind, nl.net(in).width) + dm.load_per_fanout_ns;
    worst_delta = std::max(worst_delta, new_arr - arr_pin);
  }
  const double slack_now = cell_slack(nl, timing, cell);
  return std::min(slack_now - worst_delta, min_ctrl_slack);
}

IsolationResult run_operand_isolation(const Netlist& design, const StimulusFactory& stimuli,
                                      const IsolationOptions& opt) {
  if (opt.sim_engine == SimEngineKind::Parallel) {
    OPISO_REQUIRE(opt.lane_stimuli != nullptr,
                  "run_operand_isolation: parallel engine needs lane_stimuli");
  } else {
    OPISO_REQUIRE(stimuli != nullptr, "run_operand_isolation: stimulus factory required");
  }
  OPISO_SPAN("isolate.run");
  obs::metrics().counter("isolate.runs").add(1);
  IsolationResult result;
  result.netlist = design;
  Netlist& nl = result.netlist;
  nl.validate();

  if (opt.rewrite) {
    // Datapath rewriting runs first so isolation sees the cheaper
    // structure (and its fresh idle-prone operators). The rewrite
    // inherits this run's cost weights and candidate width floor.
    RewriteOptions ropt = opt.rewrite_options;
    ropt.omega_p = opt.omega_p;
    ropt.omega_a = opt.omega_a;
    ropt.iso_min_width = opt.candidates.min_width;
    const RewriteResult rw = rewrite_datapath(nl, ropt);
    result.rewrite = rewrite_report_section(rw);
    if (rw.rewritten) nl = rw.netlist;
  }

  result.area_before_um2 = opt.area.total_area_um2(nl);
  result.slack_before_ns = run_sta(nl, opt.delay).worst_slack;

  // Candidate pool: cells still eligible for isolation. Populated on the
  // first iteration (Algorithm 1 lines 2–11) and shrunk as candidates
  // are consumed (line 28: the block's best candidate leaves the pool
  // whether or not it was isolated).
  std::unordered_set<std::uint32_t> pool_ids;
  bool pool_initialized = false;
  bool measured_before = false;

  // One incremental session spans every measurement round of the run:
  // iteration 0 records the frame tape, each later round (including the
  // final measurement) replays only the dirty cone of the banks
  // committed since — bit-identical statistics either way.
  std::unique_ptr<IncrementalSession> session;
  if (opt.incremental) session = make_incremental_session(stimuli, opt);
  const auto measure = [&](const Netlist& design_now, const ExprPool* pool,
                           const NetVarMap* vars,
                           const std::function<void(ProbeHost&)>& register_on) {
    if (session) return session->measure(design_now, pool, vars, register_on);
    return measure_activity(design_now, pool, vars, stimuli, opt, register_on);
  };

  for (int iteration = 0; iteration < opt.max_iterations; ++iteration) {
    OPISO_SPAN("isolate.iteration");
    obs::metrics().counter("isolate.iterations").add(1);
    // Fresh Boolean universe per iteration: the netlist has changed.
    ExprPool pool;
    NetVarMap vars;
    std::optional<ControlSpace> control_space;  // lazily explored per iteration
    const ActivationAnalysis analysis = derive_activation(nl, pool, vars, opt.activation);
    const std::vector<CombBlock> blocks = combinational_blocks(nl);
    const std::vector<IsolationCandidate> cands =
        identify_candidates(nl, blocks, analysis, pool, opt.candidates);
    if (!pool_initialized) {
      for (const IsolationCandidate& c : cands) {
        if (!c.already_isolated) pool_ids.insert(c.cell.value());
      }
      pool_initialized = true;
    }

    const TimingReport timing = run_sta(nl, opt.delay);

    // Simulate: power estimate + all signal statistics (line 16).
    SavingsEstimator estimator(nl, pool, vars, cands, opt.power);
    const ActivityStats stats =
        measure(nl, &pool, &vars, [&estimator](ProbeHost& sim) { estimator.register_probes(sim); });
    const PowerBreakdown pb = PowerEstimator(opt.power).estimate(nl, stats);
    if (!measured_before) {
      result.power_before_mw = pb.total_mw;
      measured_before = true;
    }

    IterationLog log;
    log.iteration = iteration;
    log.total_power_mw = pb.total_mw;
    if (opt.confidence.enabled && stats.net_batches.enabled()) {
      log.power_mw_ci_halfwidth =
          obs::weighted_interval(stats.net_batches,
                                 PowerEstimator(opt.power).net_toggle_weights(nl),
                                 stats_lanes(stats), opt.confidence.level)
              .halfwidth;
    }
    log.pool_size = pool_ids.size();
    obs::metrics().gauge("isolate.pool_size").set(static_cast<double>(pool_ids.size()));

    // Evaluate every still-eligible candidate (lines 18–21), either for
    // the globally chosen style or — with choose_style_per_candidate —
    // for all three, keeping the best-scoring one.
    const std::vector<IsolationStyle> styles =
        opt.choose_style_per_candidate
            ? std::vector<IsolationStyle>{IsolationStyle::And, IsolationStyle::Or,
                                          IsolationStyle::Latch}
            : std::vector<IsolationStyle>{opt.style};
    std::vector<CandidateEvaluation> evals;
    obs::Span span_evaluate("isolate.evaluate");
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const IsolationCandidate& cand = cands[i];
      if (cand.already_isolated || pool_ids.find(cand.cell.value()) == pool_ids.end()) continue;
      double pr_ci = 0.0;
      if (opt.confidence.enabled && stats.probe_batches.enabled()) {
        // Pr(!f) and Pr(f) share an interval width (complement).
        pr_ci = obs::batch_interval(stats.probe_batches, estimator.activation_probe(i),
                                    stats_lanes(stats), opt.confidence.level)
                    .halfwidth;
      }
      CandidateEvaluation best;
      bool have_best = false;
      for (IsolationStyle style : styles) {
        CandidateEvaluation ev;
        ev.cell = cand.cell;
        ev.cell_name = nl.cell(cand.cell).name;
        ev.block = cand.block;
        ev.style = style;
        ev.activation_str = activation_to_string(nl, pool, vars, cand.activation);
        ev.pr_redundant = estimator.pr_redundant(i, stats);
        ev.pr_redundant_ci_halfwidth = pr_ci;
        ev.primary_mw = estimator.primary_savings_mw(i, stats, opt.primary_model,
                                                     &ev.attribution);
        ev.secondary_mw = estimator.secondary_savings_mw(i, stats, &ev.attribution);
        ev.overhead_mw = estimator.overhead_mw(i, stats, style, &ev.attribution);
        ev.r_power = (ev.primary_mw + ev.secondary_mw - ev.overhead_mw) /
                     std::max(pb.total_mw, 1e-12);
        // Area cost: one bank bit per isolated input bit + literal count
        // of the activation function (Sec. 5.1).
        double bank_area = 0.0;
        for (NetId in : nl.cell(cand.cell).ins) {
          bank_area += opt.area.cell_area_um2(isolation_cell_kind(style), nl.net(in).width);
        }
        const double logic_area = static_cast<double>(pool.literal_count(cand.activation)) *
                                  opt.area.cell_area_um2(CellKind::And, 1);
        ev.r_area = (bank_area + logic_area) / std::max(opt.area.total_area_um2(nl), 1e-12);
        ev.h = opt.omega_p * ev.r_power - opt.omega_a * ev.r_area;
        ev.slack_before_ns = cell_slack(nl, timing, cand.cell);
        ev.est_slack_after_ns = estimate_slack_after_isolation(
            nl, opt.delay, timing, pool, vars, cand.cell, cand.activation, style);
        ev.slack_vetoed = ev.est_slack_after_ns < opt.slack_threshold_ns;
        ev.legal = isolation_is_legal(nl, pool, vars, cand.cell, cand.activation);
        if (!have_best || (ev.h > best.h && !ev.slack_vetoed) ||
            (best.slack_vetoed && !ev.slack_vetoed)) {
          best = std::move(ev);
          have_best = true;
        }
      }
      evals.push_back(std::move(best));
    }
    obs::metrics().counter("isolate.candidates_evaluated").add(evals.size());
    for (const CandidateEvaluation& ev : evals) {
      obs::metrics().histogram("isolate.h").record(ev.h);
      obs::metrics().histogram("isolate.primary_savings_mw").record(ev.primary_mw);
      obs::metrics().histogram("isolate.secondary_savings_mw").record(ev.secondary_mw);
      if (ev.slack_vetoed) obs::metrics().counter("isolate.slack_vetoes").add(1);
      if (!ev.legal) obs::metrics().counter("isolate.illegal_candidates").add(1);
    }
    span_evaluate.end();

    // Per block, isolate the best candidate if worthwhile (lines 22–28).
    std::size_t isolated_count = 0;
    obs::Span span_commit("isolate.commit");
    std::unordered_set<int> blocks_seen;
    for (const CandidateEvaluation& ev : evals) blocks_seen.insert(ev.block);
    for (int block : blocks_seen) {
      CandidateEvaluation* best = nullptr;
      for (CandidateEvaluation& ev : evals) {
        if (ev.block != block || ev.slack_vetoed || !ev.legal) continue;
        if (best == nullptr || ev.h > best->h) best = &ev;
      }
      if (best == nullptr) continue;
      if (best->h >= opt.h_min) {
        // Re-locate the candidate's activation expr and isolate.
        for (std::size_t i = 0; i < cands.size(); ++i) {
          if (cands[i].cell == best->cell) {
            ExprRef f = cands[i].activation;
            if (opt.use_reachability_dont_cares) {
              if (!control_space) control_space = explore_control_space(nl);
              f = minimize_with_reachability(*control_space, nl, pool, vars, f);
            }
            if (opt.simplify_activation) {
              // Graceful degradation: the factored form f is already
              // logically equivalent to the canonical result, so on
              // budget exhaustion we keep it rather than fail the run.
              try {
                BddManager mgr(BddBudget{opt.bdd_node_budget, 0});
                f = mgr.simplify_expr(pool, f);
              } catch (const ResourceError&) {
                obs::metrics().counter("isolate.bdd_budget_fallbacks").add(1);
              }
            }
            result.records.push_back(isolate_module(nl, pool, vars, best->cell, f, best->style));
            break;
          }
        }
        best->isolated_now = true;
        ++isolated_count;
        obs::metrics().counter("isolate.candidates_isolated").add(1);
        obs::metrics().histogram("isolate.h_accepted").record(best->h);
        if (opt.verbose) {
          std::cerr << "[opiso] iter " << iteration << ": isolated " << best->cell_name
                    << " (h=" << best->h << ", AS = " << best->activation_str << ")\n";
        }
      } else {
        obs::metrics().counter("isolate.candidates_rejected").add(1);
      }
      pool_ids.erase(best->cell.value());  // line 28: consumed either way
    }
    span_commit.end();

    log.evaluations = std::move(evals);
    log.num_isolated = isolated_count;
    if (opt.on_iteration) opt.on_iteration(log);
    result.iterations.push_back(std::move(log));
    if (isolated_count == 0) break;  // until !isolation (line 30)
  }

  // Final metrics on the transformed design. Candidates are re-derived
  // on the final netlist so the coverage section can report activation-
  // signal exercise counts for every candidate (the isolated ones
  // included) from the same measurement round that sets power_after.
  {
    OPISO_SPAN("isolate.final_measure");
    ExprPool fpool;
    NetVarMap fvars;
    const ActivationAnalysis fanalysis = derive_activation(nl, fpool, fvars, opt.activation);
    const std::vector<CombBlock> fblocks = combinational_blocks(nl);
    const std::vector<IsolationCandidate> fcands =
        identify_candidates(nl, fblocks, fanalysis, fpool, opt.candidates);
    SavingsEstimator festimator(nl, fpool, fvars, fcands, opt.power);
    const ActivityStats stats = measure(
        nl, &fpool, &fvars, [&festimator](ProbeHost& sim) { festimator.register_probes(sim); });
    result.power_after_mw = PowerEstimator(opt.power).estimate(nl, stats).total_mw;

    std::vector<CandidateExercise> exercise;
    exercise.reserve(fcands.size());
    for (std::size_t i = 0; i < fcands.size(); ++i) {
      exercise.push_back({nl.cell(fcands[i].cell).name, festimator.activation_probe(i)});
    }
    result.coverage = build_coverage_section(nl, stats, exercise);
    if (opt.confidence.enabled) {
      const std::vector<double> weights = PowerEstimator(opt.power).net_toggle_weights(nl);
      result.confidence = build_confidence_section(nl, stats, opt.confidence, weights);
      if (opt.confidence.min_power_ci_halfwidth_mw >= 0.0 && stats.net_batches.enabled()) {
        const obs::SeriesInterval pw = obs::weighted_interval(
            stats.net_batches, weights, stats_lanes(stats), opt.confidence.level);
        result.confidence_converged =
            pw.batches >= 2 && pw.halfwidth <= opt.confidence.min_power_ci_halfwidth_mw;
      }
    }
  }
  if (!measured_before) {
    // No candidates at all: before == after.
    result.power_before_mw = result.power_after_mw;
  }
  result.area_after_um2 = opt.area.total_area_um2(nl);
  result.slack_after_ns = run_sta(nl, opt.delay).worst_slack;
  return result;
}

}  // namespace opiso
