#pragma once
// Isolation-candidate identification — Sec. 4 / Algorithm 1 lines 2–11.
//
// Candidates are the "complex arithmetic operators for which operand
// isolation is expected to have a significant impact": by default
// adders, subtractors and multipliers of at least a minimum width.
// Candidates whose activation function is constant 1 (always observed)
// are excluded — isolating them can never save power. Candidates with a
// constant-0 activation are dead code and reported as such.

#include <vector>

#include "boolfn/expr.hpp"
#include "isolation/activation.hpp"
#include "netlist/netlist.hpp"
#include "netlist/traversal.hpp"

namespace opiso {

struct CandidateConfig {
  std::vector<CellKind> kinds = {CellKind::Add, CellKind::Sub, CellKind::Mul};
  unsigned min_width = 2;

  [[nodiscard]] bool kind_matches(CellKind kind) const;
};

struct IsolationCandidate {
  CellId cell;
  int block = -1;            ///< combinational block index
  ExprRef activation;        ///< f_ci over NetVarMap control variables
  bool already_isolated = false;  ///< the paper's decision variable z
  NetId as_net;              ///< AS net if already isolated
};

/// Identify candidates on the current netlist using a completed
/// activation analysis. Includes already-isolated modules (marked with
/// z = 1) so the savings model can account for them.
[[nodiscard]] std::vector<IsolationCandidate> identify_candidates(
    const Netlist& nl, const std::vector<CombBlock>& blocks, const ActivationAnalysis& analysis,
    const ExprPool& pool, const CandidateConfig& config);

/// True if the module's data inputs are already fed through isolation
/// cells (inserted by a previous iteration).
[[nodiscard]] bool cell_is_isolated(const Netlist& nl, CellId cell);

/// AS net controlling an isolated module's banks (invalid if none).
[[nodiscard]] NetId isolated_as_net(const Netlist& nl, CellId cell);

}  // namespace opiso
