#pragma once
// Human-readable reports for isolation runs: summary block, per-record
// listing, and per-iteration candidate evaluations — the bits a user
// pastes into a review when deciding whether to accept the transform.

#include <iosfwd>
#include <string>

#include "isolation/algorithm.hpp"

namespace opiso {

/// Multi-line summary: power/area/slack before → after, module list.
[[nodiscard]] std::string format_isolation_summary(const IsolationResult& result);

/// Per-iteration table of every candidate evaluation (cost terms, h,
/// veto flags, decisions).
[[nodiscard]] std::string format_iteration_log(const IsolationResult& result);

void write_isolation_report(std::ostream& os, const IsolationResult& result);

}  // namespace opiso
