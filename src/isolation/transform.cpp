#include "isolation/transform.hpp"

#include <unordered_map>

#include "netlist/traversal.hpp"

namespace opiso {

std::string_view isolation_style_name(IsolationStyle style) {
  switch (style) {
    case IsolationStyle::And:
      return "AND";
    case IsolationStyle::Or:
      return "OR";
    case IsolationStyle::Latch:
      return "LAT";
  }
  return "?";
}

CellKind isolation_cell_kind(IsolationStyle style) {
  switch (style) {
    case IsolationStyle::And:
      return CellKind::IsoAnd;
    case IsolationStyle::Or:
      return CellKind::IsoOr;
    case IsolationStyle::Latch:
      return CellKind::IsoLatch;
  }
  throw Error("isolation_cell_kind: invalid style");
}

bool isolation_is_legal(const Netlist& nl, const ExprPool& pool, const NetVarMap& vars,
                        CellId cell, ExprRef activation) {
  for (BoolVar v : pool.support(activation)) {
    if (net_in_combinational_fanout(nl, cell, vars.net_of(v))) return false;
  }
  return true;
}

NetId synthesize_activation_logic(Netlist& nl, const ExprPool& pool, const NetVarMap& vars,
                                  ExprRef expr, const std::string& prefix,
                                  std::vector<CellId>* created_cells) {
  std::unordered_map<std::uint32_t, NetId> memo;
  int counter = 0;
  auto note = [&](NetId net) {
    if (created_cells) created_cells->push_back(nl.net(net).driver);
    return net;
  };
  std::function<NetId(ExprRef)> build = [&](ExprRef r) -> NetId {
    if (auto it = memo.find(r.value()); it != memo.end()) return it->second;
    const ExprNode n = pool.node(r);
    NetId net;
    switch (n.op) {
      case ExprOp::Const0:
        net = note(nl.add_const(nl.fresh_net_name(prefix + "_c0"), 0, 1));
        break;
      case ExprOp::Const1:
        net = note(nl.add_const(nl.fresh_net_name(prefix + "_c1"), 1, 1));
        break;
      case ExprOp::Var:
        net = vars.net_of(n.var);  // tap the existing control net
        break;
      case ExprOp::Not:
        net = note(nl.add_unop(CellKind::Not,
                               nl.fresh_net_name(prefix + "_n" + std::to_string(counter++)),
                               build(n.a)));
        break;
      case ExprOp::And:
        net = note(nl.add_binop(CellKind::And,
                                nl.fresh_net_name(prefix + "_a" + std::to_string(counter++)),
                                build(n.a), build(n.b)));
        break;
      case ExprOp::Or:
        net = note(nl.add_binop(CellKind::Or,
                                nl.fresh_net_name(prefix + "_o" + std::to_string(counter++)),
                                build(n.a), build(n.b)));
        break;
    }
    memo.emplace(r.value(), net);
    return net;
  };
  return build(expr);
}

IsolationRecord isolate_module(Netlist& nl, const ExprPool& pool, const NetVarMap& vars,
                               CellId cell, ExprRef activation, IsolationStyle style) {
  const Cell& c = nl.cell(cell);
  OPISO_REQUIRE(c.out.valid() && !c.ins.empty(), "isolate_module: cell has no data inputs");
  if (!isolation_is_legal(nl, pool, vars, cell, activation)) {
    throw NetlistError("isolating '" + c.name +
                       "' would create a combinational cycle through its activation logic");
  }

  IsolationRecord rec;
  rec.candidate = cell;
  rec.style = style;
  rec.literal_count = pool.literal_count(activation);

  const std::string prefix = "as_" + std::to_string(cell.value());
  rec.as_net = synthesize_activation_logic(nl, pool, vars, activation, prefix, &rec.logic_cells);

  const CellKind bank_kind = isolation_cell_kind(style);
  // Snapshot the pin list: inserting cells appends to the arena and the
  // Cell reference above may dangle after add_iso reallocates.
  const std::vector<NetId> pins = nl.cell(cell).ins;
  for (int p = 0; p < static_cast<int>(pins.size()); ++p) {
    const NetId data = pins[static_cast<size_t>(p)];
    const std::string name =
        nl.fresh_net_name("iso_" + std::to_string(cell.value()) + "_" + std::to_string(p));
    const NetId blocked = nl.add_iso(bank_kind, name, data, rec.as_net);
    nl.reconnect_input(cell, p, blocked);
    rec.bank_cells.push_back(nl.net(blocked).driver);
    rec.isolated_bits += nl.net(data).width;
  }
  return rec;
}

}  // namespace opiso
