#pragma once
// Multiplexing functions g^k_{i,A} — Sec. 4.1.
//
// The fanin logic network L_A(c_i) feeding input A of an isolation
// candidate connects different *fanin candidates* to A depending on the
// configuration of its multiplexors. For each fanin candidate c_k,
// g^k_{i,A}(x) evaluates to 1 iff L_A(c_i) is configured such that c_k's
// output reaches A (e.g. g^{a0}_{a1,A} = S1·!S0 in Fig. 1). The same
// traversal, run forward, yields the fanout candidates C+ of a module
// and their connection conditions — the inputs to the secondary-savings
// model (Sec. 4.3).
//
// Traversal rules mirror the observability rules: mux select polarity
// multiplies the path condition; transparent latches and isolation cells
// multiply their enable; other combinational cells pass the condition
// through unchanged. Conditions of parallel paths OR together.

#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"

namespace opiso {

/// One candidate reachable through a combinational steering network,
/// together with the condition under which it is connected.
struct ConnectedCandidate {
  CellId candidate;
  ExprRef condition;
};

/// Fanin analysis of one candidate input pin.
struct FaninNetwork {
  std::vector<ConnectedCandidate> candidates;  ///< C^-_A with g^k_{i,A}
  /// True if a register, primary input or constant can also reach the
  /// pin — toggles then arrive even when every fanin candidate is idle.
  bool has_noncandidate_source = false;
};

/// Predicate: is this cell an isolation candidate? (Supplied by the
/// candidate identification so the traversal stops at the right cells.)
using CandidatePredicate = std::function<bool(CellId)>;

/// Derive the fanin network of input pin `port` of `cell`.
[[nodiscard]] FaninNetwork derive_fanin_network(const Netlist& nl, ExprPool& pool,
                                                NetVarMap& vars, CellId cell, int port,
                                                const CandidatePredicate& is_candidate);

/// Derive the fanout candidates C+ of `cell` with connection conditions
/// and, per fanout candidate, the input port of that candidate reached.
struct FanoutConnection {
  CellId candidate;  ///< the fanout candidate c_j
  int port;          ///< which input of c_j the path reaches
  ExprRef condition; ///< connection condition g
};
[[nodiscard]] std::vector<FanoutConnection> derive_fanout_candidates(
    const Netlist& nl, ExprPool& pool, NetVarMap& vars, CellId cell,
    const CandidatePredicate& is_candidate);

}  // namespace opiso
