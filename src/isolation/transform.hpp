#pragma once
// Netlist transform: insert isolation banks and activation logic.
//
// Sec. 5.2: three isolation implementations. Latch banks freeze the
// operand at its last value (savings from the first redundant cycle);
// AND (OR) banks force zeros (ones), which costs one extra transition on
// entry to an idle period but avoids the latches' area, clocking and
// verification burden — the paper's recommended style.
//
// The activation function is synthesized structurally into 1-bit
// gates tapping the existing control nets; shared subexpressions map to
// shared gates. Legality: the synthesized logic must not tap any net in
// the candidate's own combinational fanout (that would create a
// combinational cycle through the isolation bank).

#include <string>
#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"

namespace opiso {

enum class IsolationStyle { And, Or, Latch };

[[nodiscard]] std::string_view isolation_style_name(IsolationStyle style);
[[nodiscard]] CellKind isolation_cell_kind(IsolationStyle style);

struct IsolationRecord {
  CellId candidate;
  IsolationStyle style = IsolationStyle::And;
  NetId as_net;                     ///< activation signal
  std::vector<CellId> bank_cells;   ///< one per isolated input pin
  std::vector<CellId> logic_cells;  ///< synthesized activation logic
  std::size_t literal_count = 0;    ///< of the factored activation fn
  unsigned isolated_bits = 0;       ///< total input bits blocked
};

/// True iff inserting activation logic for `activation` at the inputs of
/// `cell` cannot create a combinational cycle (no tapped control net lies
/// in the candidate's combinational fanout).
[[nodiscard]] bool isolation_is_legal(const Netlist& nl, const ExprPool& pool,
                                      const NetVarMap& vars, CellId cell, ExprRef activation);

/// Synthesize `expr` into 1-bit gates; returns the net carrying the
/// value. Constants become Constant cells; variables map to their nets.
/// Gate/net names are derived from `prefix`.
[[nodiscard]] NetId synthesize_activation_logic(Netlist& nl, const ExprPool& pool,
                                                const NetVarMap& vars, ExprRef expr,
                                                const std::string& prefix,
                                                std::vector<CellId>* created_cells = nullptr);

/// Isolate every input of `cell` with banks of the given style driven by
/// the synthesized activation signal. Throws NetlistError if illegal.
IsolationRecord isolate_module(Netlist& nl, const ExprPool& pool, const NetVarMap& vars,
                               CellId cell, ExprRef activation, IsolationStyle style);

}  // namespace opiso
