#include "isolation/muxfn.hpp"

#include <algorithm>
#include <map>

#include "netlist/traversal.hpp"

namespace opiso {

namespace {

bool is_structural_source(CellKind kind) {
  return kind == CellKind::Reg || kind == CellKind::PrimaryInput || kind == CellKind::Constant;
}

/// Condition multiplied onto a path that enters `cell` at `port` and
/// leaves through its output. Returns invalid ExprRef for pins whose
/// induced toggling the model neglects (mux selects, latch enables —
/// footnote 1 of the paper).
ExprRef edge_condition(const Netlist& nl, ExprPool& pool, NetVarMap& vars, const Cell& cell,
                       int port) {
  switch (cell.kind) {
    case CellKind::Mux2:
      if (port == 0) return ExprRef::invalid();  // select-induced toggles neglected
      if (port == 1) return pool.lnot(pool.var(vars.var_of(nl, cell.ins[0])));
      return pool.var(vars.var_of(nl, cell.ins[0]));
    case CellKind::Latch:
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
    case CellKind::IsoLatch:
      if (port == 1) return ExprRef::invalid();  // enable-induced toggles neglected
      return pool.var(vars.var_of(nl, cell.ins[1]));
    default:
      return pool.const1();
  }
}

}  // namespace

FaninNetwork derive_fanin_network(const Netlist& nl, ExprPool& pool, NetVarMap& vars,
                                  CellId cell, int port,
                                  const CandidatePredicate& is_candidate) {
  FaninNetwork fn;
  const NetId pin_net = nl.cell(cell).ins.at(static_cast<size_t>(port));

  // cond[n] = condition under which a toggle on net n propagates to the
  // pin through the steering network (invalid = unreached).
  std::vector<ExprRef> cond(nl.num_nets(), ExprRef::invalid());
  cond[pin_net.value()] = pool.const1();

  // Position of each cell in topological order, to process the fanin
  // cone strictly from the pin backwards.
  const std::vector<CellId> order = topological_order(nl);
  std::vector<std::size_t> pos(nl.num_cells(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].value()] = i;

  // Collect the cone of nets that can reach the pin (stop at candidates
  // and structural sources), then process drivers in reverse topo order.
  std::vector<NetId> cone{pin_net};
  std::vector<bool> seen(nl.num_nets(), false);
  seen[pin_net.value()] = true;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const CellId drv = nl.net(cone[i]).driver;
    const Cell& d = nl.cell(drv);
    if (is_candidate(drv) || is_structural_source(d.kind)) continue;
    for (int p = 0; p < static_cast<int>(d.ins.size()); ++p) {
      if (!edge_condition(nl, pool, vars, d, p).valid()) continue;
      NetId in = d.ins[static_cast<size_t>(p)];
      if (!seen[in.value()]) {
        seen[in.value()] = true;
        cone.push_back(in);
      }
    }
  }
  std::sort(cone.begin(), cone.end(), [&](NetId a, NetId b) {
    return pos[nl.net(a).driver.value()] > pos[nl.net(b).driver.value()];
  });

  std::map<CellId, ExprRef> found;
  for (NetId n : cone) {
    if (!cond[n.value()].valid()) continue;  // unreachable under any condition
    const CellId drv = nl.net(n).driver;
    const Cell& d = nl.cell(drv);
    if (is_candidate(drv)) {
      auto [it, inserted] = found.emplace(drv, cond[n.value()]);
      if (!inserted) it->second = pool.lor(it->second, cond[n.value()]);
      continue;
    }
    if (is_structural_source(d.kind)) {
      if (d.kind != CellKind::Constant) fn.has_noncandidate_source = true;
      continue;
    }
    for (int p = 0; p < static_cast<int>(d.ins.size()); ++p) {
      ExprRef edge = edge_condition(nl, pool, vars, d, p);
      if (!edge.valid()) continue;
      NetId in = d.ins[static_cast<size_t>(p)];
      ExprRef path = pool.land(cond[n.value()], edge);
      cond[in.value()] = cond[in.value()].valid() ? pool.lor(cond[in.value()], path) : path;
    }
  }
  for (const auto& [cand, g] : found) fn.candidates.push_back(ConnectedCandidate{cand, g});
  return fn;
}

std::vector<FanoutConnection> derive_fanout_candidates(const Netlist& nl, ExprPool& pool,
                                                       NetVarMap& vars, CellId cell,
                                                       const CandidatePredicate& is_candidate) {
  std::vector<FanoutConnection> result;
  const Cell& c = nl.cell(cell);
  OPISO_REQUIRE(c.out.valid(), "derive_fanout_candidates: cell has no output");

  const std::vector<CellId> order = topological_order(nl);
  std::vector<ExprRef> cond(nl.num_nets(), ExprRef::invalid());
  cond[c.out.value()] = pool.const1();

  for (CellId id : order) {
    const Cell& y = nl.cell(id);
    if (is_structural_source(y.kind) || y.kind == CellKind::PrimaryOutput) continue;
    if (id == cell) continue;
    // Gather conditions arriving at y's inputs; candidates terminate
    // paths, everything else composes into y's output condition.
    ExprRef out_cond = ExprRef::invalid();
    for (int p = 0; p < static_cast<int>(y.ins.size()); ++p) {
      const NetId in = y.ins[static_cast<size_t>(p)];
      if (!cond[in.value()].valid()) continue;
      if (is_candidate(id)) {
        result.push_back(FanoutConnection{id, p, cond[in.value()]});
        continue;
      }
      ExprRef edge = edge_condition(nl, pool, vars, y, p);
      if (!edge.valid()) continue;
      ExprRef path = pool.land(cond[in.value()], edge);
      out_cond = out_cond.valid() ? pool.lor(out_cond, path) : path;
    }
    if (out_cond.valid() && y.out.valid()) {
      cond[y.out.value()] =
          cond[y.out.value()].valid() ? pool.lor(cond[y.out.value()], out_cond) : out_cond;
    }
  }
  return result;
}

}  // namespace opiso
