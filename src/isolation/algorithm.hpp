#pragma once
// Automated RTL operand isolation — Sec. 5 / Algorithm 1.
//
// Flow:
//   1. Partition the RT structure into combinational blocks.
//   2. Identify isolation candidates; estimate each candidate's slack
//      after isolation and reject those violating the slack threshold.
//   3. Iterate: simulate (power + signal statistics), evaluate the cost
//      h(c) = ωp·rP(c) − ωa·rA(c) for every remaining candidate, isolate
//      the best candidate of each block if h ≥ h_min, remove it from the
//      pool, and repeat until no block isolates anything.
//
// Isolating at most one candidate per block per iteration and
// re-simulating in between is what makes the Eq.-2 toggle-rate rescaling
// valid (Sec. 4.2); it also measures, rather than models, the
// inter-candidate dependencies inside a block.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isolation/candidates.hpp"
#include "isolation/savings.hpp"
#include "isolation/transform.hpp"
#include "obs/confidence.hpp"
#include "opt/rewrite_rules.hpp"
#include "power/area_model.hpp"
#include "power/estimator.hpp"
#include "timing/sta.hpp"

namespace opiso {

struct IterationLog;

struct IsolationOptions {
  IsolationStyle style = IsolationStyle::And;
  /// Evaluate all three bank styles per candidate and pick the one with
  /// the best cost h (extension of Sec. 5.2's global style choice).
  bool choose_style_per_candidate = false;
  /// Canonically simplify activation functions (BDD round trip) before
  /// synthesizing them — Sec. 3's "optimized version thereof".
  bool simplify_activation = true;
  /// Unique-table node budget for that BDD round trip (0 = unlimited).
  /// When an activation function blows past the budget, the canonical
  /// simplification is skipped and the structurally derived expression
  /// — logically equivalent by construction — is synthesized as-is
  /// (counted in the `isolate.bdd_budget_fallbacks` metric). This keeps
  /// pathological activation functions from OOM-ing a sweep; the default
  /// is far above anything the paper's designs need.
  std::size_t bdd_node_budget = 1u << 20;
  /// Minimize activation logic against FSM-reachability don't-cares
  /// (control-state valuations that can never occur) — the "analyzing
  /// the corresponding FSM" route Sec. 3 mentions. Costs one explicit
  /// state-space exploration per iteration; skipped automatically when
  /// the control space exceeds its budget.
  bool use_reachability_dont_cares = false;
  PrimaryModel primary_model = PrimaryModel::Refined;

  double omega_p = 1.0;  ///< weight of relative power savings
  double omega_a = 0.2;  ///< weight of relative area increase
  double h_min = 0.0;    ///< minimum cost-function value to isolate

  /// Candidates whose estimated post-isolation slack falls below this
  /// are rejected up front (Algorithm 1 lines 5–9).
  double slack_threshold_ns = 0.0;

  std::uint64_t sim_cycles = 4096;
  /// Cycles simulated (and discarded) before statistics collection, so
  /// the reset transient does not skew the measured probabilities.
  std::uint64_t warmup_cycles = 32;
  /// Engine driving the per-iteration measurements. Scalar is the
  /// reference path; Parallel packs sim_lanes stimulus streams into one
  /// bit-sliced pass (sim/parallel_sim.hpp) and splits sim_cycles
  /// across the lanes, so the statistical sample size is comparable.
  SimEngineKind sim_engine = SimEngineKind::Scalar;
  unsigned sim_lanes = 64;
  /// Re-simulate incrementally between iterations: the first
  /// measurement round records a frame tape, later rounds re-evaluate
  /// only the dirty cone of the banks committed since (sim/incremental
  /// .hpp) and splice the carried-forward statistics — bit-identical to
  /// full re-simulation, typically several times faster per iteration.
  /// Requires the stimulus factories to be round-invariant (same value
  /// sequence per call), which every seeded factory satisfies.
  bool incremental = true;
  /// Frame-tape memory ceiling; runs whose tape would exceed it fall
  /// back to full re-simulation each round.
  std::size_t incremental_tape_budget_bytes = std::size_t{256} << 20;
  /// Spot-check the round-invariance contract during scalar replays by
  /// re-drawing the stimulus and comparing primary inputs to the tape.
  bool incremental_verify_stimulus = false;
  /// Per-lane stimulus streams for the parallel engine (lane index →
  /// fresh generator; seeds should differ per lane). Required when
  /// sim_engine == Parallel.
  std::function<std::unique_ptr<Stimulus>(unsigned)> lane_stimuli;
  int max_iterations = 32;
  bool verbose = false;

  /// Batch-means confidence collection (obs/confidence.hpp). When
  /// enabled, every measurement round accumulates per-net and per-probe
  /// window moments, each IterationLog carries the total-power CI
  /// half-width, each CandidateEvaluation the Pr(!f) CI half-width, and
  /// the result carries opiso.confidence/v1 + opiso.coverage/v1 report
  /// sections built from the final measurement. With
  /// min_power_ci_halfwidth_mw >= 0 an under-converged run is *flagged*
  /// (confidence_converged = false), never silently extended.
  obs::ConfidenceConfig confidence{};

  /// Run the equality-saturation datapath rewrite (opt/rewrite_rules
  /// .hpp) on the design before isolating. The rewrite shares this
  /// run's ωp/ωa weights and candidate width floor; it degrades to the
  /// unchanged input on any budget exhaustion and gates every extracted
  /// netlist behind verify::equiv, so enabling it never changes
  /// behavior — only (possibly) the structure isolation then works on.
  bool rewrite = false;
  RewriteOptions rewrite_options{};

  CandidateConfig candidates{};
  ActivationOptions activation{};  ///< e.g. register lookahead (Sec. 3)
  DelayModel delay{};
  MacroPowerModel power{};
  AreaModel area{};

  /// Observability hook: invoked after each iteration's log is complete
  /// (before the algorithm decides whether to stop). Drives `--progress`
  /// in the CLI; keep it cheap — it runs inside the optimization loop.
  std::function<void(const IterationLog&)> on_iteration;
};

/// Per-candidate evaluation snapshot from one iteration.
struct CandidateEvaluation {
  CellId cell;
  std::string cell_name;
  int block = -1;
  IsolationStyle style = IsolationStyle::And;  ///< style the costs refer to
  std::string activation_str;
  double pr_redundant = 0.0;
  /// CI half-width of pr_redundant (and of pr_active — they differ by a
  /// sign); 0 unless confidence collection was enabled.
  double pr_redundant_ci_halfwidth = 0.0;
  double primary_mw = 0.0;
  double secondary_mw = 0.0;
  double overhead_mw = 0.0;
  double r_power = 0.0;  ///< relative net power change rP
  double r_area = 0.0;   ///< relative area increase rA
  double h = 0.0;        ///< cost function value
  double slack_before_ns = 0.0;
  double est_slack_after_ns = 0.0;
  bool slack_vetoed = false;
  bool legal = true;
  bool isolated_now = false;
  /// Eq. 1–5 decomposition behind primary_mw/secondary_mw/overhead_mw:
  /// the per-kind sums of these terms reproduce the three totals
  /// exactly (they are the addends, recorded in summation order). Feeds
  /// the run report's power-attribution ledger and `opiso explain`.
  std::vector<SavingsTerm> attribution;
};

struct IterationLog {
  int iteration = 0;
  double total_power_mw = 0.0;
  /// CI half-width of total_power_mw at the configured confidence
  /// level; 0 unless confidence collection was enabled. The sequence of
  /// (total_power_mw ± this) across iterations is the ΔP convergence
  /// trace the confidence report section exposes.
  double power_mw_ci_halfwidth = 0.0;
  std::size_t pool_size = 0;  ///< candidates still eligible at iteration start
  std::vector<CandidateEvaluation> evaluations;
  std::size_t num_isolated = 0;
};

struct IsolationResult {
  Netlist netlist;  ///< transformed copy of the input design
  std::vector<IsolationRecord> records;
  std::vector<IterationLog> iterations;

  /// opiso.coverage/v1 section built from the final measurement round
  /// (candidates re-derived on the transformed design, their activation
  /// signals probed alongside the power measurement).
  obs::JsonValue coverage;
  /// opiso.confidence/v1 section from the same round; null unless
  /// options.confidence.enabled.
  obs::JsonValue confidence;
  /// opiso.rewrite/v1 section describing the pre-isolation datapath
  /// rewrite; null unless options.rewrite.
  obs::JsonValue rewrite;
  /// False iff options.confidence set a min CI half-width and the final
  /// power interval missed it. Drivers flag this (task-failure style)
  /// instead of silently extending the simulation.
  bool confidence_converged = true;

  double power_before_mw = 0.0;
  double power_after_mw = 0.0;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
  double slack_before_ns = 0.0;
  double slack_after_ns = 0.0;

  [[nodiscard]] double power_reduction_pct() const {
    return power_before_mw > 0 ? 100.0 * (power_before_mw - power_after_mw) / power_before_mw
                               : 0.0;
  }
  [[nodiscard]] double area_increase_pct() const {
    return area_before_um2 > 0 ? 100.0 * (area_after_um2 - area_before_um2) / area_before_um2
                               : 0.0;
  }
  [[nodiscard]] double slack_reduction_pct() const {
    return slack_before_ns != 0.0
               ? 100.0 * (slack_before_ns - slack_after_ns) / slack_before_ns
               : 0.0;
  }
};

/// Produces a fresh, identically distributed stimulus for each
/// simulation round (each iteration re-simulates the transformed design).
using StimulusFactory = std::function<std::unique_ptr<Stimulus>()>;

/// Run the full Algorithm-1 flow on a copy of `design`.
[[nodiscard]] IsolationResult run_operand_isolation(const Netlist& design,
                                                    const StimulusFactory& stimuli,
                                                    const IsolationOptions& options = {});

/// Cheap pre-commit estimate of the candidate's slack after isolation:
/// bank delay on the data paths plus the activation-logic path merging
/// in at the bank (Sec. 5.1's three timing effects).
[[nodiscard]] double estimate_slack_after_isolation(const Netlist& nl, const DelayModel& dm,
                                                    const TimingReport& timing,
                                                    const ExprPool& pool, const NetVarMap& vars,
                                                    CellId cell, ExprRef activation,
                                                    IsolationStyle style);

}  // namespace opiso
