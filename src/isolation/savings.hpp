#pragma once
// Power-savings estimation model — Sec. 4.
//
// All probabilities are *measured*: the estimator registers Expr probes
// on the simulator for every joint event the model needs — the paper is
// explicit that activation and multiplexing signals are statistically
// dependent, so products like Pr(!f_i & f_j & g) are evaluated per
// simulated cycle instead of being factored.
//
// Primary savings (saved inside the isolated module c_i):
//   Simple model (Eq. 1):   ΔP_p = Pr(!f_i) · p_i(TrA, TrB)
//   Refined model (Eq. 3 generalized): enumerate, per input port, the
//   steering events {connected to fanin candidate c_k & c_k active,
//   connected & c_k idle, fed from non-candidate sources}, and sum
//   Pr(!f_i & eventA & eventB) · p_i(rate(eventA), rate(eventB)) over
//   all event pairs. Rates of *isolated* fanin candidates use the
//   actual-toggle-rate rescaling of Eq. 2: Tr' = Tr / Pr(AS).
//
// Secondary savings (saved in fanout candidates c_j, Eqs. 4–5):
//   ΔP_s = Σ_j [ Pr(!f_i & f_j & g) · (p_j(Tr*, ..) − p_j(0, ..))
//              + (1−z_j) · Pr(!f_i & !f_j & g) · (p_j(Tr, ..) − p_j(0, ..)) ]
//   where g is the connection condition through the steering network,
//   z_j marks already-isolated fanout candidates, and Tr* is Eq.-2
//   rescaled when z_j = 1.
//
// Isolation overhead P_i: macro-model power of the prospective isolation
// bank cells at the measured data rates and the measured activation-
// signal toggle rate, plus the synthesized activation logic's gates.

#include <string>
#include <vector>

#include "isolation/candidates.hpp"
#include "isolation/muxfn.hpp"
#include "isolation/transform.hpp"
#include "power/macro_model.hpp"
#include "sim/simulator.hpp"

namespace opiso {

enum class PrimaryModel { Simple, Refined };

/// One addend of the Eq. 1–5 savings/overhead decomposition, recorded
/// as it is summed so the attribution ledger provably reconstructs the
/// reported totals: sum(terms with kind "primary.*") == primary_mw,
/// likewise for "secondary.*" and "overhead.*" — exactly, because the
/// totals *are* the sums of these addends in this order.
///
/// Kinds:
///   primary.simple       Eq. 1: Pr(!f)·p(measured rates)  (one term)
///   primary.pair         Eq. 3 generalized: one steering-event pair
///   secondary.active     Eq. 5 term 1: c_i idle, fanout c_j active
///   secondary.idle       Eq. 5 term 2: both idle, only when z_j = 0
///   overhead.bank        prospective isolation bank on one input pin
///   overhead.induced     gate-bank forced-zero switching (non-latch)
///   overhead.logic       synthesized activation logic
struct SavingsTerm {
  std::string kind;
  double mw = 0.0;
  /// Measured probability of the enabling joint event (Pr(!f·...)); 1
  /// for overhead terms, which are unconditional.
  double probability = 1.0;
  double rate_a = 0.0;  ///< toggle rate fed to port A / the bank data pin
  double rate_b = 0.0;  ///< port B / the activation signal, where applicable
  std::string source_a;  ///< feeding cell for pair terms ("(background)" if none)
  std::string source_b;
  bool rescaled_a = false;  ///< Eq. 2 actual-toggle-rate rescale applied
  bool rescaled_b = false;
  std::string fanout;    ///< secondary terms: fanout candidate cell
  int fanout_port = -1;  ///< input port of the fanout candidate reached
  bool z_j = false;      ///< fanout candidate already isolated
};

class SavingsEstimator {
 public:
  /// Derives fanin/fanout networks for all candidates. Every reference
  /// must outlive the estimator.
  SavingsEstimator(const Netlist& nl, ExprPool& pool, NetVarMap& vars,
                   const std::vector<IsolationCandidate>& candidates,
                   const MacroPowerModel& power);

  /// Register all required probes on a simulation engine (scalar or
  /// 64-lane parallel — anything implementing ProbeHost) that shares
  /// `pool`/`vars`. Call before running the engine.
  void register_probes(ProbeHost& sim);

  /// Pr(!f_i) — probability candidate i computes redundantly.
  [[nodiscard]] double pr_redundant(std::size_t i, const ActivityStats& stats) const;
  /// Pr(f_i).
  [[nodiscard]] double pr_active(std::size_t i, const ActivityStats& stats) const;
  /// Toggle rate of the activation signal f_i.
  [[nodiscard]] double activation_toggle_rate(std::size_t i, const ActivityStats& stats) const;

  /// Eq. 2: actual (active-cycles-only) toggle rate from the measured
  /// full-interval average.
  [[nodiscard]] static double actual_toggle_rate(double measured, double pr_active);

  /// ΔP_p in mW. When `terms` is non-null every addend is appended as a
  /// SavingsTerm; the returned total is the sum of those addends (same
  /// additions, same order), so the ledger reconstructs it exactly.
  [[nodiscard]] double primary_savings_mw(std::size_t i, const ActivityStats& stats,
                                          PrimaryModel model,
                                          std::vector<SavingsTerm>* terms = nullptr) const;
  /// ΔP_s in mW (same `terms` contract).
  [[nodiscard]] double secondary_savings_mw(std::size_t i, const ActivityStats& stats,
                                            std::vector<SavingsTerm>* terms = nullptr) const;
  /// P_i in mW for the given style (banks + activation logic; same
  /// `terms` contract).
  [[nodiscard]] double overhead_mw(std::size_t i, const ActivityStats& stats,
                                   IsolationStyle style,
                                   std::vector<SavingsTerm>* terms = nullptr) const;

  [[nodiscard]] std::size_t num_candidates() const { return cands_.size(); }

  /// Probe index of Pr[f_i] (valid after register_probes). The
  /// confidence/coverage layers read this candidate's activation-signal
  /// exercise counts and batch moments through it.
  [[nodiscard]] std::size_t activation_probe(std::size_t i) const { return models_[i].probe_f; }

 private:
  struct PortEvent {
    ExprRef condition;     ///< steering condition (may include f_k term)
    double rate_scale;     ///< 1 / Pr(AS) for isolated-active events
    std::size_t source;    ///< candidate index of the source, or kBackground
    bool source_active;    ///< event asserts f_source
    std::size_t probe = 0; ///< filled during register_probes (pairs use their own)
  };
  static constexpr std::size_t kBackground = static_cast<std::size_t>(-1);

  struct FanoutTerm {
    std::size_t j;        ///< fanout candidate index
    int port;             ///< input port of c_j reached
    ExprRef g;            ///< connection condition
    std::size_t probe_active = 0;  ///< Pr(!f_i & f_j & g)
    std::size_t probe_idle = 0;    ///< Pr(!f_i & !f_j & g)
  };

  struct PairProbe {
    std::size_t a_event;
    std::size_t b_event;
    std::size_t probe;
  };

  struct CandidateModel {
    std::vector<std::vector<PortEvent>> port_events;  ///< per input port
    std::vector<PairProbe> pair_probes;               ///< refined primary
    std::vector<FanoutTerm> fanouts;                  ///< secondary
    std::size_t probe_f = 0;                          ///< Pr(f_i)
  };

  struct SourceRate {
    double rate = 0.0;
    bool rescaled = false;  ///< Eq. 2 rescale was applied
  };
  [[nodiscard]] SourceRate source_rate(const PortEvent& ev, const ActivityStats& stats,
                                       NetId pin_net) const;
  [[nodiscard]] std::string source_name(const PortEvent& ev) const;
  [[nodiscard]] std::size_t index_of(CellId cell) const;

  const Netlist& nl_;
  ExprPool& pool_;
  NetVarMap& vars_;
  std::vector<IsolationCandidate> cands_;
  MacroPowerModel power_;
  std::vector<CandidateModel> models_;
  bool probes_registered_ = false;
};

}  // namespace opiso
