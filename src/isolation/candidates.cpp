#include "isolation/candidates.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace opiso {

bool CandidateConfig::kind_matches(CellKind kind) const {
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

std::vector<IsolationCandidate> identify_candidates(const Netlist& nl,
                                                    const std::vector<CombBlock>& blocks,
                                                    const ActivationAnalysis& analysis,
                                                    const ExprPool& pool,
                                                    const CandidateConfig& config) {
  OPISO_SPAN("candidates.identify");
  const std::vector<int> block_of = block_index_of_cells(nl, blocks);
  std::vector<IsolationCandidate> result;
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (!config.kind_matches(c.kind) || c.width < config.min_width) continue;
    const ExprRef f = analysis.activation_of(nl, id);
    if (pool.is_const1(f)) continue;  // never redundant; nothing to gain
    IsolationCandidate cand;
    cand.cell = id;
    cand.block = block_of[id.value()];
    cand.activation = f;
    cand.already_isolated = cell_is_isolated(nl, id);
    if (cand.already_isolated) cand.as_net = isolated_as_net(nl, id);
    result.push_back(cand);
  }
  return result;
}

bool cell_is_isolated(const Netlist& nl, CellId cell) {
  for (NetId in : nl.cell(cell).ins) {
    if (cell_kind_is_isolation(nl.cell(nl.net(in).driver).kind)) return true;
  }
  return false;
}

NetId isolated_as_net(const Netlist& nl, CellId cell) {
  for (NetId in : nl.cell(cell).ins) {
    const Cell& drv = nl.cell(nl.net(in).driver);
    if (cell_kind_is_isolation(drv.kind)) return drv.ins[1];
  }
  return NetId::invalid();
}

}  // namespace opiso
