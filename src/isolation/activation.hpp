#pragma once
// Activation-function derivation — Sec. 3 of the paper.
//
// For every net we compute an *observability function* over existing
// 1-bit control signals: the condition under which a change at that net
// is observed at a register input or primary output in the current
// cycle. A module's activation function f is the observability of its
// output net; f = 0 identifies a redundant computation.
//
// Derivation is a single backward breadth-first pass per combinational
// block (O(|V|+|E|), as the paper states):
//   * primary-output pins contribute 1 (always observed),
//   * register D pins contribute the register's enable signal G —
//     the paper's f+_r = 1 cut that confines analysis to combinational
//     blocks and avoids FSM look-ahead across sequential elements,
//   * a 2:1 multiplexor propagates ¬S·obs(out) to A and S·obs(out) to B,
//   * 1-bit generic gates are treated as degenerated multiplexors: a
//     change at one input of an AND is observable iff the other input is
//     at its non-controlling value (side-input refinement); word-level
//     gates propagate obs(out) conservatively,
//   * transparent latches propagate EN·obs(out) to D,
//   * isolation cells propagate AS·obs(out) to D (an already-inserted
//     bank blocks observability exactly when AS = 0),
//   * everything else (arith modules, comparators, shifts) propagates
//     obs(out) to every input.
//
// Control variables are allocated in a NetVarMap shared with the
// simulator's Expr probes, so every derived function can be both
// evaluated per cycle (measured probabilities) and synthesized to gates.

#include <vector>

#include "boolfn/expr.hpp"
#include "netlist/netlist.hpp"
#include "sim/activity.hpp"

namespace opiso {

struct ActivationAnalysis {
  /// Observability function per net (indexed by NetId value).
  std::vector<ExprRef> obs;

  /// Activation function of a cell = observability of its output net.
  [[nodiscard]] ExprRef activation_of(const Netlist& nl, CellId cell) const {
    return obs[nl.cell(cell).out.value()];
  }
};

struct ActivationOptions {
  /// Sec. 3 discusses pre-computing next-cycle control values by "a
  /// structural analysis of the fanin" before settling on the f+_r = 1
  /// cut. With lookahead enabled we implement that alternative: for a
  /// register r, f+_r = obs_r(t+1) ∨ ¬EN_r(t+1), where next-cycle
  /// values of control signals are predicted structurally (a registered
  /// signal's next value is EN ? D : Q over *current* nets; values
  /// behind primary inputs are unpredictable and force the conservative
  /// f+_r = 1). The disjunct ¬EN_r(t+1) keeps the cut sound: a value
  /// whose lifetime extends past t+1 might still be observed later.
  bool register_lookahead = false;
};

/// Derive observability functions for all nets. `pool` and `vars` must
/// outlive the uses of the returned expressions.
[[nodiscard]] ActivationAnalysis derive_activation(const Netlist& nl, ExprPool& pool,
                                                   NetVarMap& vars,
                                                   const ActivationOptions& options = {});

/// Structurally predict the value a 1-bit net will carry in the *next*
/// cycle as a function of current-cycle nets. Returns an invalid
/// ExprRef when the value is unpredictable (depends on a primary input
/// or latch through combinational logic).
[[nodiscard]] ExprRef predict_next_value(const Netlist& nl, ExprPool& pool, NetVarMap& vars,
                                         NetId net);

/// Render an activation function with net names as variable names.
[[nodiscard]] std::string activation_to_string(const Netlist& nl, const ExprPool& pool,
                                               const NetVarMap& vars, ExprRef f);

}  // namespace opiso
