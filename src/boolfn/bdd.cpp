#include "boolfn/bdd.hpp"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.hpp"

namespace opiso {

BddManager::BddManager(BddBudget budget) : budget_(budget) {
  // Terminals occupy slots 0 (zero) and 1 (one) with a sentinel var so
  // that every internal node's var compares smaller.
  nodes_.push_back(Node{kTermVar, BddRef::invalid(), BddRef::invalid()});
  nodes_.push_back(Node{kTermVar, BddRef::invalid(), BddRef::invalid()});
  zero_ = BddRef{0};
  one_ = BddRef{1};
}

BddManager::~BddManager() {
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("bdd.managers").add(1);
  m.counter("bdd.nodes_allocated").add(nodes_.size() - 2);  // minus terminals
  m.counter("bdd.unique_hits").add(stats_.unique_hits);
  m.counter("bdd.unique_misses").add(stats_.unique_misses);
  m.counter("bdd.ite_calls").add(stats_.ite_calls);
  m.counter("bdd.ite_cache_hits").add(stats_.ite_cache_hits);
  m.gauge("bdd.last_unique_table_size").set(static_cast<double>(nodes_.size()));
}

BddRef BddManager::make_node(BoolVar var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  Key key{var, low.value(), high.value()};
  if (auto it = unique_.find(key); it != unique_.end()) {
    ++stats_.unique_hits;
    return it->second;
  }
  if (budget_.max_nodes != 0 && nodes_.size() >= budget_.max_nodes) {
    obs::metrics().counter("bdd.budget_exceeded").add(1);
    throw ResourceError(ErrCode::ResourceBddNodes,
                        "BDD node budget of " + std::to_string(budget_.max_nodes) +
                            " nodes exceeded");
  }
  ++stats_.unique_misses;
  BddRef ref{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(BoolVar v) { return make_node(v, zero_, one_); }
BddRef BddManager::nvar(BoolVar v) { return make_node(v, one_, zero_); }

BoolVar BddManager::top_var(BddRef f, BddRef g, BddRef h) const {
  BoolVar top = kTermVar;
  for (BddRef r : {f, g, h}) {
    if (r.valid() && nodes_[r.value()].var < top) top = nodes_[r.value()].var;
  }
  return top;
}

BddRef BddManager::cofactor(BddRef f, BoolVar v, bool value) const {
  const Node& n = nodes_[f.value()];
  if (n.var != v) return f;  // f does not depend on v at the top
  return value ? n.high : n.low;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (is_one(f)) return g;
  if (is_zero(f)) return h;
  if (g == h) return g;
  if (is_one(g) && is_zero(h)) return f;

  ++stats_.ite_calls;
  IteKey key{f.value(), g.value(), h.value()};
  if (auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    ++stats_.ite_cache_hits;
    return it->second;
  }

  const BoolVar v = top_var(f, g, h);
  BddRef lo = ite(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  BddRef hi = ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  BddRef result = make_node(v, lo, hi);
  if (budget_.max_ite_cache != 0 && ite_cache_.size() >= budget_.max_ite_cache) {
    obs::metrics().counter("bdd.budget_exceeded").add(1);
    throw ResourceError(ErrCode::ResourceIteCache,
                        "BDD ITE cache budget of " + std::to_string(budget_.max_ite_cache) +
                            " entries exceeded");
  }
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::bnot(BddRef f) { return ite(f, zero_, one_); }
BddRef BddManager::band(BddRef f, BddRef g) { return ite(f, g, zero_); }
BddRef BddManager::bor(BddRef f, BddRef g) { return ite(f, one_, g); }
BddRef BddManager::bxor(BddRef f, BddRef g) { return ite(f, bnot(g), g); }

BddRef BddManager::restrict_var(BddRef f, BoolVar v, bool value) {
  if (is_zero(f) || is_one(f)) return f;
  const Node n = nodes_[f.value()];
  if (n.var > v || n.var == kTermVar) return f;
  if (n.var == v) return value ? n.high : n.low;
  BddRef lo = restrict_var(n.low, v, value);
  BddRef hi = restrict_var(n.high, v, value);
  return make_node(n.var, lo, hi);
}

BddRef BddManager::exists(BddRef f, BoolVar v) {
  return bor(restrict_var(f, v, false), restrict_var(f, v, true));
}

BddRef BddManager::forall(BddRef f, BoolVar v) {
  return band(restrict_var(f, v, false), restrict_var(f, v, true));
}

bool BddManager::implies(BddRef f, BddRef g) { return is_one(ite(f, g, one_)); }

BddRef BddManager::restrict_to_care(BddRef f, BddRef care) {
  if (is_zero(care)) return zero();  // fully don't-care: any function
  if (is_one(care) || is_zero(f) || is_one(f)) return f;
  const BoolVar v = top_var(f, care, care);
  const BddRef c0 = cofactor(care, v, false);
  const BddRef c1 = cofactor(care, v, true);
  // Sibling substitution: if one branch of the care set is empty, the
  // function can collapse onto the other branch.
  if (is_zero(c0)) return restrict_to_care(cofactor(f, v, true), c1);
  if (is_zero(c1)) return restrict_to_care(cofactor(f, v, false), c0);
  if (nodes_[f.value()].var != v) {
    // f does not depend on v at the top: merge the care branches.
    return restrict_to_care(f, bor(c0, c1));
  }
  return make_node(v, restrict_to_care(cofactor(f, v, false), c0),
                   restrict_to_care(cofactor(f, v, true), c1));
}

bool BddManager::eval(BddRef f, const std::function<bool(BoolVar)>& value) const {
  while (!is_zero(f) && !is_one(f)) {
    const Node& n = nodes_[f.value()];
    f = value(n.var) ? n.high : n.low;
  }
  return is_one(f);
}

double BddManager::probability(BddRef f, const std::function<double(BoolVar)>& p) {
  std::unordered_map<std::uint32_t, double> memo;
  std::function<double(BddRef)> go = [&](BddRef r) -> double {
    if (is_zero(r)) return 0.0;
    if (is_one(r)) return 1.0;
    if (auto it = memo.find(r.value()); it != memo.end()) return it->second;
    const Node& n = nodes_[r.value()];
    const double pv = p(n.var);
    const double result = pv * go(n.high) + (1.0 - pv) * go(n.low);
    memo.emplace(r.value(), result);
    return result;
  };
  return go(f);
}

double BddManager::sat_count(BddRef f, unsigned num_vars) {
  double prob = probability(f, [](BoolVar) { return 0.5; });
  double count = prob;
  for (unsigned i = 0; i < num_vars; ++i) count *= 2.0;
  return count;
}

std::vector<BoolVar> BddManager::support(BddRef f) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<BoolVar> vars;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef cur = stack.back();
    stack.pop_back();
    if (is_zero(cur) || is_one(cur)) continue;
    if (!seen.insert(cur.value()).second) continue;
    const Node& n = nodes_[cur.value()];
    vars.push_back(n.var);
    stack.push_back(n.low);
    stack.push_back(n.high);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::size_t BddManager::size(BddRef f) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<BddRef> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    BddRef cur = stack.back();
    stack.pop_back();
    if (is_zero(cur) || is_one(cur)) continue;
    if (!seen.insert(cur.value()).second) continue;
    ++count;
    const Node& n = nodes_[cur.value()];
    stack.push_back(n.low);
    stack.push_back(n.high);
  }
  return count;
}

BddRef BddManager::from_expr(const ExprPool& pool, ExprRef e) {
  std::unordered_map<std::uint32_t, BddRef> memo;
  std::function<BddRef(ExprRef)> go = [&](ExprRef r) -> BddRef {
    if (auto it = memo.find(r.value()); it != memo.end()) return it->second;
    const ExprNode& n = pool.node(r);
    BddRef result;
    switch (n.op) {
      case ExprOp::Const0:
        result = zero_;
        break;
      case ExprOp::Const1:
        result = one_;
        break;
      case ExprOp::Var:
        result = var(n.var);
        break;
      case ExprOp::Not:
        result = bnot(go(n.a));
        break;
      case ExprOp::And:
        result = band(go(n.a), go(n.b));
        break;
      case ExprOp::Or:
        result = bor(go(n.a), go(n.b));
        break;
    }
    memo.emplace(r.value(), result);
    return result;
  };
  return go(e);
}

ExprRef BddManager::to_expr(ExprPool& pool, BddRef f) {
  std::unordered_map<std::uint32_t, ExprRef> memo;
  std::function<ExprRef(BddRef)> go = [&](BddRef r) -> ExprRef {
    if (is_zero(r)) return pool.const0();
    if (is_one(r)) return pool.const1();
    if (auto it = memo.find(r.value()); it != memo.end()) return it->second;
    const Node n = nodes_[r.value()];
    ExprRef v = pool.var(n.var);
    ExprRef lo = go(n.low);
    ExprRef hi = go(n.high);
    // Shannon expansion with the common special cases folded so simple
    // functions come back in their natural factored form.
    ExprRef result;
    if (pool.is_const0(lo)) {
      result = pool.land(v, hi);
    } else if (pool.is_const1(lo)) {
      result = pool.lor(pool.lnot(v), pool.land(v, hi));
      if (pool.is_const1(hi)) result = pool.const1();
      if (pool.is_const0(hi)) result = pool.lnot(v);
    } else if (pool.is_const0(hi)) {
      result = pool.land(pool.lnot(v), lo);
    } else if (pool.is_const1(hi)) {
      result = pool.lor(v, lo);
    } else {
      result = pool.lor(pool.land(v, hi), pool.land(pool.lnot(v), lo));
    }
    memo.emplace(r.value(), result);
    return result;
  };
  return go(f);
}

ExprRef BddManager::simplify_expr(ExprPool& pool, ExprRef e) {
  const ExprRef resynth = to_expr(pool, from_expr(pool, e));
  return pool.literal_count(resynth) < pool.literal_count(e) ? resynth : e;
}

}  // namespace opiso
