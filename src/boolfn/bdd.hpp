#pragma once
// Reduced Ordered Binary Decision Diagrams.
//
// BDDs give the canonical view of the structurally derived activation
// functions: tautology detection (f ≡ 1 ⇒ the module is never redundant
// and must not be isolated), constant-0 detection, equivalence checks in
// tests, and don't-care-free simplification (bdd_to_expr re-synthesizes
// a compact factored form via Shannon decomposition). Probabilities used
// by the savings model are *measured* in simulation, but the
// independence-based probability here is useful for sanity checks and
// as the stimulus-design tool for the activation-statistics sweep.
//
// Classic implementation: node arena with a unique table, ITE with a
// computed cache, variable order = ascending BoolVar index.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "boolfn/expr.hpp"
#include "support/error.hpp"
#include "support/strong_id.hpp"

namespace opiso {

struct BddTag;
using BddRef = StrongId<BddTag>;

/// Resource budget for a BddManager. Zero means unlimited. Exceeding a
/// budget throws ResourceError (codes resource.bdd-nodes /
/// resource.ite-cache); the manager stays consistent, so callers can
/// catch and degrade to the structural expression path (the classic
/// answer to BDD blow-up on activation-function derivation).
struct BddBudget {
  std::size_t max_nodes = 0;      ///< unique-table node cap (incl. terminals)
  std::size_t max_ite_cache = 0;  ///< computed-cache entry cap
};

class BddManager {
 public:
  explicit BddManager(BddBudget budget = {});
  /// Flushes the accumulated work counters into the global metrics
  /// registry (obs) — per-manager stats stay cheap plain members so the
  /// unique-table/ITE hot paths never touch shared state.
  ~BddManager();

  /// Work counters of this manager (unique-table and ITE-cache hit
  /// rates are the classic health indicators of a BDD workload).
  struct Stats {
    std::uint64_t unique_hits = 0;    ///< make_node found an existing node
    std::uint64_t unique_misses = 0;  ///< make_node allocated a new node
    std::uint64_t ite_calls = 0;      ///< non-terminal ITE invocations
    std::uint64_t ite_cache_hits = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const BddBudget& budget() const { return budget_; }

  [[nodiscard]] BddRef zero() const { return zero_; }
  [[nodiscard]] BddRef one() const { return one_; }
  [[nodiscard]] BddRef var(BoolVar v);
  [[nodiscard]] BddRef nvar(BoolVar v);

  [[nodiscard]] BddRef bnot(BddRef f);
  [[nodiscard]] BddRef band(BddRef f, BddRef g);
  [[nodiscard]] BddRef bor(BddRef f, BddRef g);
  [[nodiscard]] BddRef bxor(BddRef f, BddRef g);
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Cofactor with respect to v = value.
  [[nodiscard]] BddRef restrict_var(BddRef f, BoolVar v, bool value);
  /// ∃v. f
  [[nodiscard]] BddRef exists(BddRef f, BoolVar v);
  /// ∀v. f
  [[nodiscard]] BddRef forall(BddRef f, BoolVar v);

  /// Coudert–Madre restrict: returns g with g∧care = f∧care, using the
  /// don't-care space ¬care to (heuristically) shrink the BDD. Used for
  /// reachability-don't-care minimization of activation logic.
  [[nodiscard]] BddRef restrict_to_care(BddRef f, BddRef care);

  [[nodiscard]] bool is_zero(BddRef f) const { return f == zero_; }
  [[nodiscard]] bool is_one(BddRef f) const { return f == one_; }
  /// Canonical, so equivalence is pointer equality.
  [[nodiscard]] bool equal(BddRef f, BddRef g) const { return f == g; }
  [[nodiscard]] bool implies(BddRef f, BddRef g);

  [[nodiscard]] bool eval(BddRef f, const std::function<bool(BoolVar)>& value) const;

  /// Pr[f = 1] assuming independent variables with Pr[v = 1] = p(v).
  [[nodiscard]] double probability(BddRef f, const std::function<double(BoolVar)>& p);

  /// Number of satisfying assignments over `num_vars` variables
  /// (num_vars must cover the support).
  [[nodiscard]] double sat_count(BddRef f, unsigned num_vars);

  [[nodiscard]] std::vector<BoolVar> support(BddRef f) const;
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  /// Distinct internal nodes reachable from f (BDD size).
  [[nodiscard]] std::size_t size(BddRef f) const;

  /// Build a BDD from an expression.
  [[nodiscard]] BddRef from_expr(const ExprPool& pool, ExprRef e);

  /// Re-synthesize an expression (factored form via Shannon expansion
  /// with memoization). Result is logically equivalent to f.
  [[nodiscard]] ExprRef to_expr(ExprPool& pool, BddRef f);

  /// Canonical simplification: BDD round trip, keeping whichever of the
  /// original and the re-synthesized factored form has fewer literals.
  /// This is the "optimized version" of the activation logic Sec. 3
  /// alludes to — structural derivation can accumulate redundant terms
  /// that the canonical form collapses.
  [[nodiscard]] ExprRef simplify_expr(ExprPool& pool, ExprRef e);

 private:
  struct Node {
    BoolVar var;
    BddRef low;   ///< cofactor var = 0
    BddRef high;  ///< cofactor var = 1
  };

  BddRef make_node(BoolVar var, BddRef low, BddRef high);
  [[nodiscard]] BoolVar top_var(BddRef f, BddRef g, BddRef h) const;
  [[nodiscard]] BddRef cofactor(BddRef f, BoolVar v, bool value) const;

  static constexpr BoolVar kTermVar = 0xFFFFFFFFu;

  struct Key {
    std::uint32_t var, low, high;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = k.var;
      h = h * 0x9E3779B1u ^ k.low;
      h = h * 0x9E3779B1u ^ k.high;
      return h;
    }
  };
  struct IteKey {
    std::uint32_t f, g, h;
    friend bool operator==(const IteKey&, const IteKey&) = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::size_t h = k.f;
      h = h * 0x85EBCA77u ^ k.g;
      h = h * 0x85EBCA77u ^ k.h;
      return h;
    }
  };

  Stats stats_;
  BddBudget budget_;
  std::vector<Node> nodes_;
  std::unordered_map<Key, BddRef, KeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
  BddRef zero_;
  BddRef one_;
};

}  // namespace opiso
