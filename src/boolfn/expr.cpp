#include "boolfn/expr.hpp"

#include <algorithm>
#include <unordered_set>

namespace opiso {

ExprPool::ExprPool() {
  const0_ = intern(ExprOp::Const0, 0, ExprRef::invalid(), ExprRef::invalid());
  const1_ = intern(ExprOp::Const1, 0, ExprRef::invalid(), ExprRef::invalid());
}

ExprRef ExprPool::intern(ExprOp op, BoolVar var, ExprRef a, ExprRef b) {
  Key key{op, var, a.valid() ? a.value() : ExprRef::kInvalid,
          b.valid() ? b.value() : ExprRef::kInvalid};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  ExprRef ref{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(ExprNode{op, var, a, b});
  unique_.emplace(key, ref);
  return ref;
}

const ExprNode& ExprPool::node(ExprRef r) const {
  OPISO_REQUIRE(r.valid() && r.value() < nodes_.size(), "invalid ExprRef");
  return nodes_[r.value()];
}

ExprRef ExprPool::var(BoolVar v) { return intern(ExprOp::Var, v, ExprRef::invalid(), ExprRef::invalid()); }

ExprRef ExprPool::lnot(ExprRef a) {
  if (a == const0_) return const1_;
  if (a == const1_) return const0_;
  const ExprNode& n = node(a);
  if (n.op == ExprOp::Not) return n.a;  // double negation
  return intern(ExprOp::Not, 0, a, ExprRef::invalid());
}

ExprRef ExprPool::land(ExprRef a, ExprRef b) {
  if (a == const0_ || b == const0_) return const0_;
  if (a == const1_) return b;
  if (b == const1_) return a;
  if (a == b) return a;
  if (lnot(a) == b) return const0_;
  // Canonical operand order keeps the DAG maximally shared.
  if (b < a) std::swap(a, b);
  return intern(ExprOp::And, 0, a, b);
}

ExprRef ExprPool::lor(ExprRef a, ExprRef b) {
  if (a == const1_ || b == const1_) return const1_;
  if (a == const0_) return b;
  if (b == const0_) return a;
  if (a == b) return a;
  if (lnot(a) == b) return const1_;
  if (b < a) std::swap(a, b);
  return intern(ExprOp::Or, 0, a, b);
}

ExprRef ExprPool::ite(ExprRef a, ExprRef b, ExprRef c) {
  return lor(land(a, b), land(lnot(a), c));
}

bool ExprPool::eval(ExprRef r, const std::function<bool(BoolVar)>& value) const {
  const ExprNode& n = node(r);
  switch (n.op) {
    case ExprOp::Const0:
      return false;
    case ExprOp::Const1:
      return true;
    case ExprOp::Var:
      return value(n.var);
    case ExprOp::Not:
      return !eval(n.a, value);
    case ExprOp::And:
      return eval(n.a, value) && eval(n.b, value);
    case ExprOp::Or:
      return eval(n.a, value) || eval(n.b, value);
  }
  throw Error("ExprPool::eval: corrupt node");
}

std::vector<BoolVar> ExprPool::support(ExprRef r) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<BoolVar> vars;
  std::vector<ExprRef> stack{r};
  while (!stack.empty()) {
    ExprRef cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.value()).second) continue;
    const ExprNode& n = node(cur);
    if (n.op == ExprOp::Var) vars.push_back(n.var);
    if (n.a.valid()) stack.push_back(n.a);
    if (n.b.valid()) stack.push_back(n.b);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

std::size_t ExprPool::literal_count(ExprRef r) const {
  std::unordered_set<std::uint32_t> seen;
  std::size_t lits = 0;
  std::vector<ExprRef> stack{r};
  while (!stack.empty()) {
    ExprRef cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.value()).second) continue;
    const ExprNode& n = node(cur);
    if (n.op == ExprOp::Var) ++lits;
    // A negated variable is one literal, not a gate plus a literal.
    if (n.op == ExprOp::Not && node(n.a).op == ExprOp::Var) {
      ++lits;
      continue;
    }
    if (n.a.valid()) stack.push_back(n.a);
    if (n.b.valid()) stack.push_back(n.b);
  }
  return lits;
}

std::size_t ExprPool::gate_count(ExprRef r) const {
  std::unordered_set<std::uint32_t> seen;
  std::size_t gates = 0;
  std::vector<ExprRef> stack{r};
  while (!stack.empty()) {
    ExprRef cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur.value()).second) continue;
    const ExprNode& n = node(cur);
    if (n.op == ExprOp::And || n.op == ExprOp::Or || n.op == ExprOp::Not) ++gates;
    if (n.a.valid()) stack.push_back(n.a);
    if (n.b.valid()) stack.push_back(n.b);
  }
  return gates;
}

ExprRef ExprPool::substitute(ExprRef r, BoolVar v, ExprRef e) {
  std::unordered_map<std::uint32_t, ExprRef> memo;
  std::function<ExprRef(ExprRef)> go = [&](ExprRef cur) -> ExprRef {
    if (auto it = memo.find(cur.value()); it != memo.end()) return it->second;
    const ExprNode n = node(cur);  // copy: nodes_ may reallocate below
    ExprRef result;
    switch (n.op) {
      case ExprOp::Const0:
      case ExprOp::Const1:
        result = cur;
        break;
      case ExprOp::Var:
        result = (n.var == v) ? e : cur;
        break;
      case ExprOp::Not:
        result = lnot(go(n.a));
        break;
      case ExprOp::And:
        result = land(go(n.a), go(n.b));
        break;
      case ExprOp::Or:
        result = lor(go(n.a), go(n.b));
        break;
    }
    memo.emplace(cur.value(), result);
    return result;
  };
  return go(r);
}

std::string ExprPool::to_string(ExprRef r,
                                const std::function<std::string(BoolVar)>& name) const {
  const ExprNode& n = node(r);
  switch (n.op) {
    case ExprOp::Const0:
      return "0";
    case ExprOp::Const1:
      return "1";
    case ExprOp::Var:
      return name(n.var);
    case ExprOp::Not: {
      const ExprNode& inner = node(n.a);
      if (inner.op == ExprOp::Var) return "!" + name(inner.var);
      return "!(" + to_string(n.a, name) + ")";
    }
    case ExprOp::And: {
      auto wrap = [&](ExprRef x) {
        return node(x).op == ExprOp::Or ? "(" + to_string(x, name) + ")" : to_string(x, name);
      };
      return wrap(n.a) + " & " + wrap(n.b);
    }
    case ExprOp::Or:
      return to_string(n.a, name) + " | " + to_string(n.b, name);
  }
  throw Error("ExprPool::to_string: corrupt node");
}

std::string ExprPool::to_string(ExprRef r) const {
  return to_string(r, [](BoolVar v) { return "v" + std::to_string(v); });
}

}  // namespace opiso
