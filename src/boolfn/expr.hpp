#pragma once
// Hash-consed Boolean expression DAG.
//
// Activation functions (Sec. 3) and multiplexing functions (Sec. 4.1) are
// built structurally while traversing the netlist and are, by
// construction, in factored form — exactly the representation the paper's
// area model wants (literal count) and the representation the isolation
// transform synthesizes into gates. Variables are opaque 32-bit indices;
// the isolation engine maps them to 1-bit control nets.
//
// The pool applies local simplifications on construction (identity /
// annihilator / idempotence / complement rules and double negation), so
// the common derived functions like "S2·G1 + S1·¬S0·G0" come out
// minimal without a separate optimization pass. BDD-based simplification
// (boolfn/bdd.hpp) is available for the rest.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"
#include "support/strong_id.hpp"

namespace opiso {

struct ExprTag;
using ExprRef = StrongId<ExprTag>;
using BoolVar = std::uint32_t;

enum class ExprOp : std::uint8_t { Const0, Const1, Var, Not, And, Or };

struct ExprNode {
  ExprOp op = ExprOp::Const0;
  BoolVar var = 0;   ///< for Var nodes
  ExprRef a;         ///< operand(s)
  ExprRef b;
};

class ExprPool {
 public:
  ExprPool();

  [[nodiscard]] ExprRef const0() const { return const0_; }
  [[nodiscard]] ExprRef const1() const { return const1_; }
  [[nodiscard]] ExprRef var(BoolVar v);
  [[nodiscard]] ExprRef lnot(ExprRef a);
  [[nodiscard]] ExprRef land(ExprRef a, ExprRef b);
  [[nodiscard]] ExprRef lor(ExprRef a, ExprRef b);
  /// a·b + ¬a·c (built from the primitives above).
  [[nodiscard]] ExprRef ite(ExprRef a, ExprRef b, ExprRef c);

  [[nodiscard]] const ExprNode& node(ExprRef r) const;
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  [[nodiscard]] bool is_const0(ExprRef r) const { return r == const0_; }
  [[nodiscard]] bool is_const1(ExprRef r) const { return r == const1_; }
  [[nodiscard]] bool is_const(ExprRef r) const { return is_const0(r) || is_const1(r); }

  /// Evaluate under an assignment (callback: var -> bool).
  [[nodiscard]] bool eval(ExprRef r, const std::function<bool(BoolVar)>& value) const;

  /// Distinct variables appearing in the expression (sorted).
  [[nodiscard]] std::vector<BoolVar> support(ExprRef r) const;

  /// Literal count of the factored form. Shared subexpressions are
  /// counted once — this matches the gate count of the synthesized
  /// activation logic, which shares common subterms.
  [[nodiscard]] std::size_t literal_count(ExprRef r) const;

  /// Number of distinct non-leaf nodes (≈ gates after synthesis).
  [[nodiscard]] std::size_t gate_count(ExprRef r) const;

  /// Substitute: replace variable v with expression e.
  [[nodiscard]] ExprRef substitute(ExprRef r, BoolVar v, ExprRef e);

  /// Render with a variable namer ("(S2 & G1) | (S1 & !S0 & G0)").
  [[nodiscard]] std::string to_string(ExprRef r,
                                      const std::function<std::string(BoolVar)>& name) const;
  [[nodiscard]] std::string to_string(ExprRef r) const;

 private:
  struct Key {
    ExprOp op;
    std::uint32_t var;
    std::uint32_t a;
    std::uint32_t b;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = static_cast<std::size_t>(k.op);
      h = h * 1000003u ^ k.var;
      h = h * 1000003u ^ k.a;
      h = h * 1000003u ^ k.b;
      return h;
    }
  };

  ExprRef intern(ExprOp op, BoolVar var, ExprRef a, ExprRef b);

  std::vector<ExprNode> nodes_;
  std::unordered_map<Key, ExprRef, KeyHash> unique_;
  ExprRef const0_;
  ExprRef const1_;
};

}  // namespace opiso
