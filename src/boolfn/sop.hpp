#pragma once
// Sum-of-products extraction.
//
// Used to print activation functions the way the paper writes them
// (AS_a1 = S2·G1 + S1·!S0·G0) and as a second, order-independent
// canonicalization in tests. Cubes are extracted as the 1-paths of the
// BDD and then pairwise-merged (distance-1 merging) until closure, which
// is enough to make the small control functions of RT datapaths minimal
// in practice.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "boolfn/bdd.hpp"
#include "boolfn/expr.hpp"

namespace opiso {

/// One product term: var -> required polarity. Empty cube = constant 1.
using Cube = std::map<BoolVar, bool>;

/// Cover of f (disjunction of cubes). Empty cover = constant 0.
[[nodiscard]] std::vector<Cube> extract_cover(BddManager& mgr, BddRef f);

/// Distance-1 merge loop: xy + x!y -> x; also removes duplicate and
/// single-literal-subsumed cubes. Preserves the function.
[[nodiscard]] std::vector<Cube> merge_cover(const std::vector<Cube>& cover);

/// Literal count of a cover (sum of cube sizes).
[[nodiscard]] std::size_t cover_literal_count(const std::vector<Cube>& cover);

/// Render "S2&G1 | S1&!S0&G0" with a variable namer.
[[nodiscard]] std::string cover_to_string(const std::vector<Cube>& cover,
                                          const std::function<std::string(BoolVar)>& name);

/// Build an Expr for a cover.
[[nodiscard]] ExprRef cover_to_expr(ExprPool& pool, const std::vector<Cube>& cover);

}  // namespace opiso
