#include "boolfn/sop.hpp"

#include <algorithm>
#include <functional>

namespace opiso {

std::vector<Cube> extract_cover(BddManager& mgr, BddRef f) {
  std::vector<Cube> cover;
  Cube path;
  std::function<void(BddRef)> walk = [&](BddRef r) {
    if (mgr.is_zero(r)) return;
    if (mgr.is_one(r)) {
      cover.push_back(path);
      return;
    }
    const BoolVar v = mgr.support(r).front();  // top variable (support is sorted)
    path[v] = false;
    walk(mgr.restrict_var(r, v, false));
    path[v] = true;
    walk(mgr.restrict_var(r, v, true));
    path.erase(v);
  };
  walk(f);
  return cover;
}

namespace {

/// a subsumes b if every literal of a appears in b (a is more general).
bool subsumes(const Cube& a, const Cube& b) {
  return std::all_of(a.begin(), a.end(), [&](const auto& lit) {
    auto it = b.find(lit.first);
    return it != b.end() && it->second == lit.second;
  });
}

/// If a and b differ in exactly one variable's polarity and agree on the
/// rest, return the merged cube without that variable.
bool try_merge(const Cube& a, const Cube& b, Cube& out) {
  if (a.size() != b.size()) return false;
  int diffs = 0;
  BoolVar diff_var = 0;
  for (auto ita = a.begin(), itb = b.begin(); ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (ita->second != itb->second) {
      if (++diffs > 1) return false;
      diff_var = ita->first;
    }
  }
  if (diffs != 1) return false;
  out = a;
  out.erase(diff_var);
  return true;
}

}  // namespace

std::vector<Cube> merge_cover(const std::vector<Cube>& cover) {
  std::vector<Cube> cur = cover;
  bool changed = true;
  while (changed) {
    changed = false;
    // Distance-1 merging.
    for (std::size_t i = 0; i < cur.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cur.size() && !changed; ++j) {
        Cube merged;
        if (try_merge(cur[i], cur[j], merged)) {
          cur.erase(cur.begin() + static_cast<std::ptrdiff_t>(j));
          cur.erase(cur.begin() + static_cast<std::ptrdiff_t>(i));
          cur.push_back(std::move(merged));
          changed = true;
        }
      }
    }
    // Subsumption removal.
    for (std::size_t i = 0; i < cur.size() && !changed; ++i) {
      for (std::size_t j = 0; j < cur.size() && !changed; ++j) {
        if (i != j && subsumes(cur[i], cur[j])) {
          cur.erase(cur.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
  }
  std::sort(cur.begin(), cur.end());
  return cur;
}

std::size_t cover_literal_count(const std::vector<Cube>& cover) {
  std::size_t count = 0;
  for (const Cube& c : cover) count += c.size();
  return count;
}

std::string cover_to_string(const std::vector<Cube>& cover,
                            const std::function<std::string(BoolVar)>& name) {
  if (cover.empty()) return "0";
  std::string out;
  for (std::size_t i = 0; i < cover.size(); ++i) {
    if (i > 0) out += " | ";
    if (cover[i].empty()) {
      out += "1";
      continue;
    }
    bool first = true;
    for (const auto& [v, pol] : cover[i]) {
      if (!first) out += "&";
      first = false;
      if (!pol) out += "!";
      out += name(v);
    }
  }
  return out;
}

ExprRef cover_to_expr(ExprPool& pool, const std::vector<Cube>& cover) {
  ExprRef sum = pool.const0();
  for (const Cube& c : cover) {
    ExprRef prod = pool.const1();
    for (const auto& [v, pol] : c) {
      ExprRef lit = pool.var(v);
      prod = pool.land(prod, pol ? lit : pool.lnot(lit));
    }
    sum = pool.lor(sum, prod);
  }
  return sum;
}

}  // namespace opiso
