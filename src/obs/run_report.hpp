#pragma once
// Machine-readable run report for an Algorithm-1 isolation run.
//
// One JSON document per run: the options used, the before/after summary
// (power/area/slack), the per-iteration candidate decision tables (the
// raw material behind Table 1/2 reproductions — cell, style, ΔP terms,
// cost h, slack estimate, and the accept/reject decision with its
// reason), the isolation records of the transformed netlist, and a
// snapshot of the global metrics registry (BDD/simulator/STA counters).
//
// Schema (stable keys, additive evolution):
//   {
//     "schema": "opiso.run_report/v1",
//     "design": "...",
//     "options": {"style": "and", "sim_cycles": ..., ...},
//     "summary": {"power_before_mw": ..., "power_after_mw": ...,
//                 "power_reduction_pct": ..., "area_*", "slack_*",
//                 "modules_isolated": N},
//     "iterations": [{"iteration": 0, "total_power_mw": ...,
//                     "pool_size": ..., "num_isolated": ...,
//                     "candidates": [{"cell": "...", "block": 0,
//                       "style": "and", "pr_redundant": ...,
//                       "primary_mw": ..., "secondary_mw": ...,
//                       "overhead_mw": ..., "r_power": ..., "r_area": ...,
//                       "h": ..., "slack_before_ns": ...,
//                       "est_slack_after_ns": ...,
//                       "decision": "isolated|rejected|slack-veto|illegal",
//                       "activation": "..."}]}],
//     "isolated_modules": [{"cell": "...", "style": "...",
//                           "as_net": "...", "isolated_bits": ...,
//                           "activation_literals": ...}],
//     "confidence": { ...opiso.confidence/v1: batch-means CIs of the
//                     final measurement — design power ± half-width,
//                     per-net toggle-rate half-widths (only when
//                     options.confidence.enabled)... },
//     "coverage": { ...opiso.coverage/v1: net toggle coverage,
//                   never-toggled nets, per-candidate activation-signal
//                   exercise counts of the final measurement... },
//     "power_attribution": { ...opiso.power_attribution/v1 ledger:
//                            per-candidate Eq. 1-5 terms whose sums
//                            equal the candidates[] totals... },
//     "profile": { ...opiso.profile/v1 span tree (only when the
//                  tracer is enabled and recorded events)... },
//     "metrics": { ...MetricsRegistry snapshot... }
//   }
//
// This is the artifact --metrics writes for `opiso isolate`; diffing two
// reports shows exactly where two runs diverged.

#include <iosfwd>

#include "isolation/algorithm.hpp"
#include "obs/json.hpp"

namespace opiso::obs {

/// Decision string for one candidate evaluation row.
[[nodiscard]] const char* candidate_decision(const CandidateEvaluation& ev);

/// Build the full report document (includes a metrics snapshot taken
/// at call time).
[[nodiscard]] JsonValue build_run_report(const IsolationResult& result,
                                         const IsolationOptions& options);

/// Serialize the report (pretty-printed, trailing newline).
void write_run_report(std::ostream& os, const IsolationResult& result,
                      const IsolationOptions& options);

}  // namespace opiso::obs
