#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace opiso::obs {

namespace {
thread_local int t_depth = 0;

std::atomic<int> g_next_thread_index{0};
thread_local int t_thread_index = -1;
}  // namespace

int Tracer::current_thread_index() {
  if (t_thread_index < 0) {
    t_thread_index = g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           epoch_)
          .count());
}

void Tracer::record(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns, int depth,
                    int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::move(name), start_ns, dur_ns, depth, tid});
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  JsonValue doc = JsonValue::object();
  JsonValue& events = doc["traceEvents"];
  events = JsonValue::array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& e : events_) {
      JsonValue ev = JsonValue::object();
      ev["name"] = e.name;
      ev["ph"] = "X";
      ev["pid"] = 1;
      ev["tid"] = e.tid + 1;  // chrome://tracing reserves 0 for the process row
      // Chrome trace timestamps/durations are microseconds.
      ev["ts"] = static_cast<double>(e.start_ns) / 1000.0;
      ev["dur"] = static_cast<double>(e.dur_ns) / 1000.0;
      ev["args"]["depth"] = e.depth;
      events.push_back(std::move(ev));
    }
  }
  doc["displayTimeUnit"] = "ms";
  doc.write(os, 1);
  os << '\n';
}

Span::Span(const char* name) : name_(name) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  depth_ = t_depth++;
  start_ns_ = tracer.now_ns();
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::instance();
  const std::uint64_t end_ns = tracer.now_ns();
  --t_depth;
  tracer.record(name_, start_ns_, end_ns - start_ns_, depth_, Tracer::current_thread_index());
}

}  // namespace opiso::obs
