#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace opiso::obs {

namespace {

/// Bucket index for a histogram value: powers of two centered so that
/// values in (2^(k-1), 2^k] land in the bucket labeled 2^k. Values ≤ 0
/// (and -inf) share the lowest bucket; tiny/huge magnitudes and +inf
/// clamp at the ends. +inf must be caught before log2: casting an
/// infinite double to int is undefined behavior.
int bucket_index(double v) {
  if (!(v > 0.0)) return 0;
  if (std::isinf(v)) return 63;
  const int e = static_cast<int>(std::ceil(std::log2(v)));
  const int idx = e + 32;
  if (idx < 1) return 1;
  if (idx > 63) return 63;
  return idx;
}

}  // namespace

void Histogram::record(double v) {
  if (std::isnan(v)) return;  // a NaN sample would poison sum/min/max forever
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_index(v)];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

Histogram::State Histogram::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  State s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  for (int i = 0; i < kBuckets; ++i) s.buckets[i] = buckets_[i];
  return s;
}

JsonValue Histogram::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue h = JsonValue::object();
  h["count"] = count_;
  h["sum"] = sum_;
  h["min"] = min_;
  h["max"] = max_;
  h["mean"] = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  JsonValue buckets = JsonValue::array();
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    JsonValue b = JsonValue::object();
    b["le"] = std::pow(2.0, i - 32);
    b["count"] = buckets_[i];
    buckets.push_back(std::move(b));
  }
  h["buckets"] = std::move(buckets);
  return h;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  for (auto& b : buckets_) b = 0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

/// Prometheus metric name: prefix + the dotted path with every
/// non-[a-zA-Z0-9_] character replaced by '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "opiso_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

/// Shortest round-trippable decimal, matching how Prometheus clients
/// conventionally render float samples.
std::string prometheus_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = 0.0;
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == v) return probe;
  }
  return buf;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << " " << prometheus_double(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prometheus_name(name);
    const Histogram::State s = h->state();
    os << "# TYPE " << pn << " histogram\n";
    // Cumulative buckets at each occupied power-of-two boundary
    // (bucket i covers (2^(i-33), 2^(i-32)]), then the +Inf catch-all.
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      cumulative += s.buckets[i];
      os << pn << "_bucket{le=\"" << prometheus_double(std::pow(2.0, i - 32)) << "\"} "
         << cumulative << "\n";
    }
    os << pn << "_bucket{le=\"+Inf\"} " << s.count << "\n";
    os << pn << "_sum " << prometheus_double(s.sum) << "\n";
    os << pn << "_count " << s.count << "\n";
  }
}

JsonValue MetricsRegistry::snapshot() const {
  // Group dotted names into a two-level object: "bdd.unique_hits" →
  // snapshot["bdd"]["unique_hits"]. Undotted names stay at top level.
  JsonValue snap = JsonValue::object();
  const auto place = [&snap](const std::string& name, JsonValue v) {
    const std::size_t dot = name.find('.');
    if (dot == std::string::npos) {
      snap[name] = std::move(v);
    } else {
      snap[name.substr(0, dot)][name.substr(dot + 1)] = std::move(v);
    }
  };
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) place(name, JsonValue(c->value()));
  for (const auto& [name, g] : gauges_) place(name, JsonValue(g->value()));
  for (const auto& [name, h] : histograms_) place(name, h->to_json());
  return snap;
}

}  // namespace opiso::obs
