#pragma once
// Schema-aware, tolerance-aware structural diff of report documents.
//
// `opiso report diff a.json b.json [--tolerances FILE] [--subset]`
// compares two JSON reports (run reports, sweep reports, BENCH_*.json
// tables, metrics snapshots — anything JsonValue parses) field by
// field and lists every divergence with its dotted path. CI uses it as
// the comparison core of the determinism job (zero tolerance: the diff
// is empty iff the documents are semantically identical) and of the
// bench/golden-report gates (committed expected subsets + a tolerance
// file replace the old ad-hoc Python comparison).
//
// Semantics:
//  - Objects compare by key (order-insensitive — key order is a
//    serialization detail); arrays compare index-wise and must match in
//    length. Missing/extra keys are reported unless subset mode or an
//    ignore rule applies.
//  - Numbers compare exactly when both sides carry exact integer
//    representations; otherwise as doubles under the matched
//    tolerance rule (|a-b| <= abs  OR  |a-b| <= rel·max(|a|,|b|)).
//  - "schema" keys are compared first at every level they appear; a
//    schema mismatch is reported as kind "schema" so the caller knows
//    the documents are not even the same artifact type.
//  - Subset mode (--subset): keys present only in B are fine — A is an
//    expected subset (a committed golden) of a full generated report.
//
// Tolerance file (schema opiso.report_tolerances/v1):
//   {"schema": "opiso.report_tolerances/v1",
//    "rules": [{"path": "rows.*.power_reduction_pct", "abs": 3.0},
//              {"path": "summary.power_*", "rel": 1e-6},
//              {"path": "benches.*.wall_ms", "rel_increase": 0.10},
//              {"path": "benches.*.lane_cycles_per_sec", "rel_decrease": 0.10},
//              {"path": "metrics.**", "ignore": true}]}
// `rel_increase` / `rel_decrease` are one-sided trajectory rules for
// baseline-vs-fresh comparisons (A = baseline, B = fresh run): the B
// side may move in the improving direction without bound, and only a
// regression beyond the margin — B above A·(1+rel_increase) for
// lower-is-better metrics, B below A·(1-rel_decrease) for
// higher-is-better ones — is reported. This is what lets the CI perf
// gate fail a 10% slowdown while never failing a speedup.
// Paths are dotted; segments match literally, `*` matches exactly one
// segment (array indices are segments), a glob `*`/prefix inside a
// segment matches within it, and `**` — anywhere in the pattern —
// matches zero or more whole segments (`a.**.z` covers `a.z`,
// `a.b.z`, `a.b.c.z`). First matching rule wins; no match means exact
// comparison.

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace opiso::obs {

struct ToleranceRule {
  std::vector<std::string> pattern;  ///< dotted path, split into segments
  bool ignore = false;
  double abs_tol = 0.0;
  double rel_tol = 0.0;
  /// One-sided margins (negative = unset). rel_increase bounds how far
  /// B may rise above A (lower-is-better metrics); rel_decrease bounds
  /// how far B may fall below A (higher-is-better metrics). Movement in
  /// the improving direction is always accepted.
  double rel_increase = -1.0;
  double rel_decrease = -1.0;
};

class ToleranceSpec {
 public:
  ToleranceSpec() = default;

  /// Parse a tolerance document. Throws opiso::Error on an unexpected
  /// schema or malformed rule.
  [[nodiscard]] static ToleranceSpec parse(const JsonValue& doc);

  void add_rule(ToleranceRule rule) { rules_.push_back(std::move(rule)); }

  /// First rule whose pattern matches the dotted path, or null.
  [[nodiscard]] const ToleranceRule* match(const std::vector<std::string>& path) const;

  /// Dotted pattern of the rule that comes closest to matching `path`
  /// (longest glob-aware shared segment prefix; ties break toward the
  /// pattern whose length is nearest the path's), or "" when no rule
  /// matches even the first segment. print_diff uses it to hint at the
  /// tolerance glob that *almost* covered a diverging field — usually
  /// a one-segment typo or a missing `*` level in the rule file.
  [[nodiscard]] std::string nearest_pattern(const std::vector<std::string>& path) const;

 private:
  std::vector<ToleranceRule> rules_;
};

struct DiffEntry {
  std::string path;  ///< dotted path of the diverging field
  /// "schema" | "type" | "missing" (in B) | "extra" (in B) | "length" |
  /// "value"
  std::string kind;
  std::string a;  ///< rendered A-side value ("" when absent)
  std::string b;
  double delta = 0.0;    ///< |a-b| for numeric value diffs
  double allowed = 0.0;  ///< tolerance that was exceeded (0 = exact)
  /// When no tolerance rule matched this path, the nearest rule glob
  /// that almost did (see ToleranceSpec::nearest_pattern); "" otherwise.
  std::string nearest_rule;
};

struct DiffOptions {
  /// A is an expected subset: keys present only in B are not reported.
  bool subset = false;
  /// Stop after this many entries (0 = unlimited).
  std::size_t max_entries = 0;
};

/// Structural diff; empty result means the documents match under the
/// spec and options.
[[nodiscard]] std::vector<DiffEntry> diff_reports(const JsonValue& a, const JsonValue& b,
                                                  const ToleranceSpec& spec = {},
                                                  const DiffOptions& options = {});

/// Human-readable per-field listing (one line per entry).
void print_diff(std::ostream& os, const std::vector<DiffEntry>& entries);

}  // namespace opiso::obs
