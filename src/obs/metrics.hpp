#pragma once
// Metrics registry: named counters, gauges and histograms.
//
// The registry is always on — unlike tracing there is no enable flag,
// because no metric update sits on a per-cycle or per-node hot path.
// Hot layers (simulator inner loop, BDD unique table) accumulate plain
// member counters and *flush* totals into the registry at coarse
// boundaries (end of a run() call, manager destruction); see the
// instrumentation in src/sim/simulator.cpp and src/boolfn/bdd.cpp.
//
// Counters are monotonic u64 (relaxed atomics — exact under concurrent
// increments). Gauges hold the last observed value. Histograms bucket
// by powers of two and keep count/sum/min/max.
//
// Names are dotted paths ("bdd.unique_hits", "sim.cycles"); snapshot()
// renders them into a nested JSON object grouped by the first path
// segment so reports stay readable.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace opiso::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 64;  ///< power-of-two buckets, offset by 32

  /// Consistent point-in-time copy of the whole histogram (one lock),
  /// for exporters that must emit count/sum/buckets from the same
  /// instant. bucket[i] covers (2^(i-33), 2^(i-32)].
  struct State {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t buckets[kBuckets] = {};
  };

  /// NaN samples are dropped (they would poison sum/min/max for the
  /// rest of the run); ±inf samples are counted, clamp to the extreme
  /// buckets, and propagate into sum/min/max per IEEE rules.
  void record(double v);
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] State state() const;
  [[nodiscard]] JsonValue to_json() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  /// Process-wide registry used by all instrumentation points.
  static MetricsRegistry& global();

  /// Get-or-create; returned references stay valid for the registry's
  /// lifetime (metrics are never removed, only reset).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered metric (names stay registered).
  void reset();

  /// Nested JSON snapshot: {"bdd": {"unique_hits": 123, ...}, ...}.
  /// Deterministically ordered (sorted by name).
  [[nodiscard]] JsonValue snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of every metric,
  /// deterministically ordered. Dotted names are sanitized to
  /// opiso_<name with non-alphanumerics replaced by '_'>; histograms
  /// export cumulative power-of-two `_bucket{le="..."}` series plus
  /// `_sum`/`_count`. The JSON snapshot is unaffected.
  void write_prometheus(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace opiso::obs
