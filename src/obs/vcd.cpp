#include "obs/vcd.hpp"

#include <cctype>
#include <ostream>
#include <unordered_map>

#include "support/error.hpp"

namespace opiso::obs {

namespace {

void require_parse(bool cond, const std::string& msg) {
  if (!cond) throw ParseError(msg);
}

// Deterministic identifier codes: index -> shortest base-94 string over
// the printable VCD alphabet '!'..'~', little-endian like real dumpers.
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return code;
}

// VCD reference names may not contain whitespace; netlist names are
// already identifier-like, but sanitize defensively.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out.push_back(std::isspace(static_cast<unsigned char>(c)) ? '_' : c);
  if (out.empty()) out = "_";
  return out;
}

void write_vector(std::ostream& os, std::uint64_t value, unsigned width, const std::string& id) {
  if (width == 1) {
    os << (value & 1) << id << '\n';
    return;
  }
  os << 'b';
  for (int b = static_cast<int>(width) - 1; b >= 0; --b) os << ((value >> b) & 1);
  os << ' ' << id << '\n';
}

}  // namespace

void write_vcd(std::ostream& os, const Netlist& nl, const CycleTrace& trace,
               const PowerTrace* power) {
  OPISO_REQUIRE(trace.has_values(), "write_vcd: trace has no value snapshots (scalar-engine "
                                    "capture with record_values required)");
  OPISO_REQUIRE(trace.num_nets() == 0 || trace.num_nets() == nl.num_nets(),
                "write_vcd: trace was captured from a different netlist");

  std::size_t next_id = 0;
  std::vector<std::string> net_ids(nl.num_nets());
  for (NetId id : nl.net_ids()) net_ids[id.value()] = id_code(next_id++);
  std::vector<std::string> cell_e_ids;
  std::vector<std::string> cell_t_ids;
  if (power != nullptr) {
    cell_e_ids.resize(nl.num_cells());
    cell_t_ids.resize(nl.num_cells());
    for (CellId id : nl.cell_ids()) {
      cell_e_ids[id.value()] = id_code(next_id++);
      cell_t_ids[id.value()] = id_code(next_id++);
    }
  }

  os << "$timescale 1ns $end\n";
  os << "$scope module " << (nl.name().empty() ? "top" : sanitize(nl.name())) << " $end\n";
  for (NetId id : nl.net_ids()) {
    const Net& n = nl.net(id);
    os << "$var wire " << n.width << ' ' << net_ids[id.value()] << ' ' << sanitize(n.name)
       << " $end\n";
  }
  if (power != nullptr) {
    os << "$scope module power $end\n";
    for (CellId id : nl.cell_ids()) {
      const std::string name = sanitize(nl.cell(id).name);
      os << "$var real 64 " << cell_e_ids[id.value()] << " e_" << name << " $end\n";
      os << "$var real 64 " << cell_t_ids[id.value()] << " t_" << name << " $end\n";
    }
    os << "$upscope $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  const std::size_t ns = trace.num_samples();
  std::uint64_t cycle_start = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    os << '#' << cycle_start * 10 << '\n';
    const std::vector<std::uint64_t>& values = trace.sample_values(s);
    const std::vector<std::uint64_t>* prev = s > 0 ? &trace.sample_values(s - 1) : nullptr;
    for (NetId id : nl.net_ids()) {
      const std::size_t n = id.value();
      if (prev != nullptr && values[n] == (*prev)[n]) continue;
      write_vector(os, values[n], nl.net(id).width, net_ids[n]);
    }
    if (power != nullptr) {
      for (CellId id : nl.cell_ids()) {
        const std::size_t c = id.value();
        const std::uint64_t e = power->cell_fj[c][s];
        const std::uint64_t t = power->cell_toggles[c][s];
        if (s == 0 || power->cell_fj[c][s - 1] != e) {
          os << 'r' << e << ' ' << cell_e_ids[c] << '\n';
        }
        if (s == 0 || power->cell_toggles[c][s - 1] != t) {
          os << 'r' << t << ' ' << cell_t_ids[c] << '\n';
        }
      }
    }
    cycle_start += trace.sample_cycles(s);
  }
}

namespace {

class VcdLexer {
 public:
  explicit VcdLexer(std::string_view text) : text_(text) {}

  [[nodiscard]] bool eof() {
    skip_space();
    return pos_ >= text_.size();
  }

  /// Next whitespace-delimited token; empty at end of input.
  std::string_view token() {
    skip_space();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  /// Consume tokens up to and including "$end".
  std::string until_end(std::string_view what) {
    std::string body;
    while (true) {
      const std::string_view t = token();
      require_parse(!t.empty(), std::string("vcd: unterminated ") + std::string(what));
      if (t == "$end") return body;
      if (!body.empty()) body.push_back(' ');
      body.append(t);
    }
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_u64(std::string_view s, std::string_view what) {
  require_parse(!s.empty(), std::string("vcd: empty ") + std::string(what));
  std::uint64_t v = 0;
  for (char c : s) {
    require_parse(c >= '0' && c <= '9', std::string("vcd: bad ") + std::string(what) + ": " + std::string(s));
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

const VcdVar* VcdDocument::find_var(std::string_view name) const {
  for (const VcdVar& v : vars) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

VcdDocument parse_vcd(std::string_view text) {
  VcdDocument doc;
  VcdLexer lex(text);
  std::unordered_map<std::string, unsigned> widths;  // id code -> declared width

  // Declaration section.
  bool in_defs = true;
  while (in_defs) {
    require_parse(!lex.eof(), "vcd: missing $enddefinitions");
    const std::string_view t = lex.token();
    if (t == "$timescale") {
      doc.timescale = lex.until_end("$timescale");
    } else if (t == "$scope") {
      doc.scopes.push_back(lex.until_end("$scope"));
    } else if (t == "$upscope" || t == "$comment" || t == "$date" || t == "$version") {
      lex.until_end(t);
    } else if (t == "$var") {
      VcdVar var;
      var.type = std::string(lex.token());
      var.width = static_cast<unsigned>(parse_u64(lex.token(), "$var width"));
      var.id = std::string(lex.token());
      const std::string rest = lex.until_end("$var");
      // Reference name, possibly followed by a bit-select — keep the name.
      var.name = rest.substr(0, rest.find(' '));
      require_parse(!var.id.empty() && !var.name.empty(), "vcd: malformed $var");
      require_parse(var.width >= 1 && var.width <= 64, "vcd: unsupported $var width " + std::to_string(var.width));
      widths.emplace(var.id, var.width);
      doc.vars.push_back(std::move(var));
    } else if (t == "$enddefinitions") {
      lex.until_end(t);
      in_defs = false;
    } else {
      throw ParseError("vcd: unexpected token in declarations: " + std::string(t));
    }
  }

  // Value-change section.
  bool have_time = false;
  while (!lex.eof()) {
    const std::string_view t = lex.token();
    const char c = t.front();
    if (c == '#') {
      const std::uint64_t ts = parse_u64(t.substr(1), "timestamp");
      require_parse(!have_time || ts > doc.last_timestamp, "vcd: non-increasing timestamp #" + std::to_string(ts));
      if (!have_time) doc.first_timestamp = ts;
      doc.last_timestamp = ts;
      have_time = true;
      ++doc.num_timestamps;
    } else if (c == '$') {
      // $dumpvars / $dumpall / ... sections: contents are ordinary value
      // changes; the $end shows up as its own token and is skipped here.
      if (t != "$end") continue;
    } else if (c == '0' || c == '1' || c == 'x' || c == 'X' || c == 'z' || c == 'Z') {
      require_parse(have_time, "vcd: value change before timestamp");
      const std::string id(t.substr(1));
      const auto it = widths.find(id);
      require_parse(it != widths.end(), "vcd: change on undeclared identifier '" + id + "'");
      ++doc.num_changes;
    } else if (c == 'b' || c == 'B') {
      require_parse(have_time, "vcd: value change before timestamp");
      const std::string_view bits = t.substr(1);
      require_parse(!bits.empty(), "vcd: empty vector value");
      for (char bc : bits) {
        require_parse(bc == '0' || bc == '1' || bc == 'x' || bc == 'X' || bc == 'z' ||
                              bc == 'Z', "vcd: bad vector digit");
      }
      const std::string id(lex.token());
      const auto it = widths.find(id);
      require_parse(it != widths.end(), "vcd: change on undeclared identifier '" + id + "'");
      require_parse(bits.size() <= it->second, "vcd: vector value wider than declared width of '" + id + "'");
      ++doc.num_changes;
    } else if (c == 'r' || c == 'R') {
      require_parse(have_time, "vcd: value change before timestamp");
      const std::string id(lex.token());
      const auto it = widths.find(id);
      require_parse(it != widths.end(), "vcd: change on undeclared identifier '" + id + "'");
      ++doc.num_changes;
    } else {
      throw ParseError("vcd: unexpected token in value changes: " + std::string(t));
    }
  }
  return doc;
}

}  // namespace opiso::obs
