#include "obs/run_report.hpp"

#include <ostream>

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace opiso::obs {

namespace {

JsonValue options_json(const IsolationOptions& opt) {
  JsonValue o = JsonValue::object();
  o["style"] = std::string(isolation_style_name(opt.style));
  o["choose_style_per_candidate"] = opt.choose_style_per_candidate;
  o["simplify_activation"] = opt.simplify_activation;
  o["use_reachability_dont_cares"] = opt.use_reachability_dont_cares;
  o["primary_model"] = opt.primary_model == PrimaryModel::Refined ? "refined" : "simple";
  o["omega_p"] = opt.omega_p;
  o["omega_a"] = opt.omega_a;
  o["h_min"] = opt.h_min;
  o["slack_threshold_ns"] = opt.slack_threshold_ns;
  o["sim_cycles"] = opt.sim_cycles;
  o["warmup_cycles"] = opt.warmup_cycles;
  o["max_iterations"] = opt.max_iterations;
  o["register_lookahead"] = opt.activation.register_lookahead;
  if (opt.confidence.enabled) {
    o["confidence_level"] = opt.confidence.level;
    o["confidence_batch_frames"] = opt.confidence.batch_frames;
    if (opt.confidence.min_power_ci_halfwidth_mw >= 0.0) {
      o["min_ci_halfwidth_mw"] = opt.confidence.min_power_ci_halfwidth_mw;
    }
  }
  return o;
}

JsonValue candidate_json(const CandidateEvaluation& ev) {
  JsonValue c = JsonValue::object();
  c["cell"] = ev.cell_name;
  c["block"] = ev.block;
  c["style"] = std::string(isolation_style_name(ev.style));
  c["pr_redundant"] = ev.pr_redundant;
  if (ev.pr_redundant_ci_halfwidth > 0.0) {
    c["pr_redundant_ci_halfwidth"] = ev.pr_redundant_ci_halfwidth;
  }
  c["primary_mw"] = ev.primary_mw;
  c["secondary_mw"] = ev.secondary_mw;
  c["overhead_mw"] = ev.overhead_mw;
  c["r_power"] = ev.r_power;
  c["r_area"] = ev.r_area;
  c["h"] = ev.h;
  c["slack_before_ns"] = ev.slack_before_ns;
  c["est_slack_after_ns"] = ev.est_slack_after_ns;
  c["decision"] = candidate_decision(ev);
  c["activation"] = ev.activation_str;
  return c;
}

}  // namespace

const char* candidate_decision(const CandidateEvaluation& ev) {
  if (ev.isolated_now) return "isolated";
  if (!ev.legal) return "illegal";
  if (ev.slack_vetoed) return "slack-veto";
  return "rejected";
}

JsonValue build_run_report(const IsolationResult& result, const IsolationOptions& options) {
  JsonValue doc = JsonValue::object();
  doc["schema"] = "opiso.run_report/v1";
  doc["design"] = result.netlist.name();
  doc["options"] = options_json(options);

  JsonValue& summary = doc["summary"];
  summary["power_before_mw"] = result.power_before_mw;
  summary["power_after_mw"] = result.power_after_mw;
  summary["power_reduction_pct"] = result.power_reduction_pct();
  summary["area_before_um2"] = result.area_before_um2;
  summary["area_after_um2"] = result.area_after_um2;
  summary["area_increase_pct"] = result.area_increase_pct();
  summary["slack_before_ns"] = result.slack_before_ns;
  summary["slack_after_ns"] = result.slack_after_ns;
  summary["slack_reduction_pct"] = result.slack_reduction_pct();
  summary["modules_isolated"] = result.records.size();
  summary["iterations"] = result.iterations.size();

  JsonValue iterations = JsonValue::array();
  for (const IterationLog& log : result.iterations) {
    JsonValue it = JsonValue::object();
    it["iteration"] = log.iteration;
    it["total_power_mw"] = log.total_power_mw;
    if (log.power_mw_ci_halfwidth > 0.0) {
      // The ΔP convergence trace: total power ± this per iteration.
      it["power_mw_ci_halfwidth"] = log.power_mw_ci_halfwidth;
    }
    it["pool_size"] = log.pool_size;
    it["num_isolated"] = log.num_isolated;
    JsonValue cands = JsonValue::array();
    for (const CandidateEvaluation& ev : log.evaluations) cands.push_back(candidate_json(ev));
    it["candidates"] = std::move(cands);
    iterations.push_back(std::move(it));
  }
  doc["iterations"] = std::move(iterations);

  JsonValue records = JsonValue::array();
  for (const IsolationRecord& rec : result.records) {
    JsonValue r = JsonValue::object();
    r["cell"] = result.netlist.cell(rec.candidate).name;
    r["style"] = std::string(isolation_style_name(rec.style));
    r["as_net"] = result.netlist.net(rec.as_net).name;
    r["isolated_bits"] = rec.isolated_bits;
    r["activation_literals"] = rec.literal_count;
    records.push_back(std::move(r));
  }
  doc["isolated_modules"] = std::move(records);

  if (!result.confidence.is_null()) doc["confidence"] = result.confidence;
  if (!result.coverage.is_null()) doc["coverage"] = result.coverage;
  if (!result.rewrite.is_null()) doc["rewrite"] = result.rewrite;

  doc["power_attribution"] = build_power_attribution(result);
  if (Tracer::instance().enabled() && Tracer::instance().num_events() > 0) {
    doc["profile"] = profile_to_json(build_profile_tree(Tracer::instance().events()));
  }
  doc["metrics"] = metrics().snapshot();
  return doc;
}

void write_run_report(std::ostream& os, const IsolationResult& result,
                      const IsolationOptions& options) {
  build_run_report(result, options).write(os, 1);
  os << '\n';
}

}  // namespace opiso::obs
