#pragma once
// Waveform-level emitters over a PowerTrace: the opiso.power_trace/v1
// report section, the per-cell toggle/energy heatmap, and the
// original-vs-isolated waveform overlay behind `opiso wave
// --compare-isolated`.
//
// Schema opiso.power_trace/v1 (stable keys, additive evolution):
//   {
//     "schema": "opiso.power_trace/v1",
//     "design": "...", "engine": "scalar|parallel",
//     "cycles": C, "lanes": L, "window": W, "decimation": K,
//     "clock_freq_mhz": f,
//     "total_energy_fj": E,          // exact integer femtojoules
//     "avg_power_mw": P,
//     "samples": {"count": N, "cycle_start": [...], "cycles": [...],
//                 "total_fj": [...], "arith_fj": [...],
//                 "steering_fj": [...], "sequential_fj": [...],
//                 "isolation_fj": [...]},
//     "cells": [{"cell": "...", "kind": "...", "width": w,
//                "candidate": bool, "total_fj": ..., "total_toggles": ...,
//                "series_fj": [...], "series_toggles": [...]}, ...]
//   }
// All *_fj arrays are exact integers; folding samples for emission
// (decimation K folds K capture samples per emitted sample) preserves
// every sum bit-for-bit, so Σ samples.total_fj == total_energy_fj and
// Σ cells[i].total_fj == total_energy_fj hold in every emitted report
// regardless of window or decimation. Per-sample series are emitted for
// the top `top_cells` cells by energy; every cell keeps its exact
// totals. avg_power_mw carries the fJ→mW double bridge (≤1e-9 relative
// of the estimator's total; see DESIGN.md).

#include <cstddef>
#include <iosfwd>
#include <span>

#include "isolation/transform.hpp"
#include "netlist/netlist.hpp"
#include "obs/json.hpp"
#include "power/power_trace.hpp"

namespace opiso::obs {

/// Build the opiso.power_trace/v1 document. `max_samples` bounds the
/// emitted time axis (capture samples are folded exactly when the trace
/// is longer); `top_cells` bounds how many cells carry per-sample
/// series (0 = totals only).
[[nodiscard]] JsonValue build_power_trace_section(const Netlist& nl, const PowerTrace& pt,
                                                  std::string_view design,
                                                  std::string_view engine,
                                                  std::size_t max_samples = 512,
                                                  std::size_t top_cells = 16);

/// Per-cell heatmap rows ranked hottest-first (total energy, ties by
/// cell id): {"schema": "opiso.toggle_heatmap/v1", "rows": [{"rank",
/// "cell", "kind", "width", "candidate", "total_toggles", "total_fj",
/// "energy_pct"}]}.
[[nodiscard]] JsonValue build_toggle_heatmap(const Netlist& nl, const PowerTrace& pt);

/// Human-readable rendering of the heatmap (top `max_rows` rows) for
/// stderr/terminal use.
void write_heatmap_table(std::ostream& os, const Netlist& nl, const PowerTrace& pt,
                         std::size_t max_rows = 24);

/// Overlay of an original-design trace and the isolated design's trace
/// of the same run discipline (same cycles/lanes/window — checked).
/// Emits opiso.wave_compare/v1: both waveforms (decimated in lockstep),
/// the per-sample reclaimed energy, the maximal idle intervals the
/// isolation exploited (consecutive samples with positive reclaimed
/// energy) with per-interval reclaimed femtojoules, and a per-isolated-
/// module ledger matching bank/logic overhead to the module's savings.
[[nodiscard]] JsonValue build_wave_compare(const Netlist& orig_nl, const PowerTrace& orig,
                                           const Netlist& iso_nl, const PowerTrace& iso,
                                           std::span<const IsolationRecord> records,
                                           std::string_view design,
                                           std::size_t max_samples = 512);

}  // namespace opiso::obs
