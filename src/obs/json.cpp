#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace opiso::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    os << "null";
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    os << static_cast<long long>(d);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

// Recursive-descent nesting budget: '[[[[...' on untrusted input must
// exhaust this limit (structured parse error) rather than the stack.
constexpr int kMaxJsonDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const { fail(ErrCode::JsonSyntax, why); }
  [[noreturn]] void fail(ErrCode code, const std::string& why) const {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << why;
    throw ParseError(code, os.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our own writer; decode them permissively as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(text_[pos_])) && text_[pos_] != '-') {
        integral = false;
      }
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral && !token.empty()) {
      // Exact path: integer tokens round-trip through int64/uint64 so
      // counters beyond 2^53 survive parse() unchanged. Out-of-range
      // tokens fall back to the double path below.
      const char* first = token.data();
      const char* last = token.data() + token.size();
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec == std::errc() && ptr == last) return JsonValue(static_cast<long long>(v));
      } else {
        std::uint64_t v = 0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec == std::errc() && ptr == last) {
          // Prefer the signed representation when it fits, so the common
          // case compares exactly against values built from int/long.
          if (v <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
            return JsonValue(static_cast<long long>(v));
          }
          return JsonValue(static_cast<unsigned long long>(v));
        }
      }
    }
    try {
      std::size_t used = 0;
      const double d = std::stod(token, &used);
      if (used != token.size()) fail(ErrCode::JsonNumber, "malformed number");
      if (!std::isfinite(d)) {
        // Huge exponents overflow to ±inf; a non-finite value would be
        // unserializable (the writer would emit null), so reject it here.
        fail(ErrCode::JsonNumber, "number '" + token + "' is out of double range");
      }
      return JsonValue(d);
    } catch (const ParseError&) {
      throw;
    } catch (const std::logic_error&) {
      fail(ErrCode::JsonNumber, "malformed number");
    }
  }

  JsonValue parse_value() {
    DepthGuard guard(*this);
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::object();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj[key] = parse_value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::array();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return JsonValue(parse_string());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue();
    // JSON has no NaN/Infinity literals; name them explicitly so the
    // diagnostic says what was wrong instead of "unexpected character".
    if (consume_literal("NaN") || consume_literal("nan") || consume_literal("Infinity") ||
        consume_literal("-Infinity") || consume_literal("-inf") || consume_literal("inf")) {
      fail(ErrCode::JsonNumber, "NaN/Infinity literals are not valid JSON");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    fail("unexpected character");
  }

  struct DepthGuard {
    Parser& p;
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.depth_ > kMaxJsonDepth) {
        --p.depth_;
        p.fail(ErrCode::JsonDepth,
               "nesting exceeds " + std::to_string(kMaxJsonDepth) + " levels");
      }
    }
    ~DepthGuard() { --p.depth_; }
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  OPISO_REQUIRE(kind_ == Kind::Bool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  OPISO_REQUIRE(kind_ == Kind::Number, "JsonValue: not a number");
  return num_;
}

std::int64_t JsonValue::as_int64() const {
  OPISO_REQUIRE(kind_ == Kind::Number, "JsonValue: not a number");
  switch (rep_) {
    case NumRep::Int64:
      return static_cast<std::int64_t>(ibits_);
    case NumRep::Uint64:
      OPISO_REQUIRE(ibits_ <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
                    "JsonValue: uint64 value does not fit int64");
      return static_cast<std::int64_t>(ibits_);
    case NumRep::Double:
      break;
  }
  OPISO_REQUIRE(num_ == std::floor(num_) && num_ >= -9.223372036854776e18 &&
                    num_ < 9.223372036854776e18,
                "JsonValue: double value is not an exact int64");
  return static_cast<std::int64_t>(num_);
}

std::uint64_t JsonValue::as_uint64() const {
  OPISO_REQUIRE(kind_ == Kind::Number, "JsonValue: not a number");
  switch (rep_) {
    case NumRep::Uint64:
      return ibits_;
    case NumRep::Int64:
      OPISO_REQUIRE(static_cast<std::int64_t>(ibits_) >= 0,
                    "JsonValue: negative value does not fit uint64");
      return ibits_;
    case NumRep::Double:
      break;
  }
  OPISO_REQUIRE(num_ == std::floor(num_) && num_ >= 0.0 && num_ < 1.8446744073709552e19,
                "JsonValue: double value is not an exact uint64");
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  OPISO_REQUIRE(kind_ == Kind::String, "JsonValue: not a string");
  return str_;
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  OPISO_REQUIRE(kind_ == Kind::Object, "JsonValue: not an object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(std::string(key), JsonValue());
  return members_.back().second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  OPISO_REQUIRE(kind_ == Kind::Object, "JsonValue: not an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  throw Error("JsonValue: missing key '" + std::string(key) + "'");
}

bool JsonValue::contains(std::string_view key) const {
  if (kind_ != Kind::Object) return false;
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  OPISO_REQUIRE(kind_ == Kind::Array, "JsonValue: not an array");
  elements_.push_back(std::move(v));
}

const JsonValue& JsonValue::at(std::size_t index) const {
  OPISO_REQUIRE(kind_ == Kind::Array && index < elements_.size(),
                "JsonValue: array index out of range");
  return elements_[index];
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return elements_.size();
  if (kind_ == Kind::Object) return members_.size();
  return 0;
}

void JsonValue::write_indented(std::ostream& os, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent <= 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Number:
      if (rep_ == NumRep::Int64) {
        os << static_cast<std::int64_t>(ibits_);
      } else if (rep_ == NumRep::Uint64) {
        os << ibits_;
      } else {
        write_number(os, num_);
      }
      break;
    case Kind::String: write_escaped(os, str_); break;
    case Kind::Array: {
      if (elements_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i) os << ',';
        pad(depth + 1);
        elements_[i].write_indented(os, indent, depth + 1);
      }
      pad(depth);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) os << ',';
        pad(depth + 1);
        write_escaped(os, members_[i].first);
        os << (indent > 0 ? ": " : ":");
        members_[i].second.write_indented(os, indent, depth + 1);
      }
      pad(depth);
      os << '}';
      break;
    }
  }
}

void JsonValue::write(std::ostream& os, int indent) const { write_indented(os, indent, 0); }

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace opiso::obs
