#pragma once
// Power-attribution ledger — every mW of the run report, accounted for.
//
// The savings model is an accounting identity: the reported primary
// (Eq. 1–3), secondary (Eq. 4–5) and overhead totals of each candidate
// are sums of per-term addends that SavingsEstimator records as it
// computes them (isolation/savings.hpp, SavingsTerm). This module turns
// the recorded terms into
//
//   1. the `power_attribution` section of the run report — schema
//      opiso.power_attribution/v1 — whose per-candidate term lists
//      provably sum to the `iterations[].candidates[]` totals (the
//      sums are re-derived here and asserted by tests/test_attribution),
//   2. a per-candidate plain-text decision narrative for
//      `opiso explain <design> --candidate <cell>`: which iterations
//      evaluated the module, every Eq. 1–5 term with its measured
//      probability, rates and Eq. 2 rescale flags, the fanout z_j
//      decisions, and why the candidate was (not) isolated.
//
// Section shape:
//   "power_attribution": {
//     "schema": "opiso.power_attribution/v1",
//     "iterations": [{"iteration": 0, "candidates": [{
//        "cell": "...", "style": "and", "decision": "isolated",
//        "primary_mw": ..., "secondary_mw": ..., "overhead_mw": ...,
//        "net_mw": ...,
//        "terms": [{"kind": "primary.pair", "mw": ..., "probability": ...,
//                   "rate_a": ..., "rate_b": ..., "source_a": "...",
//                   "rescaled_a": false, ...}, ...]}]}]}

#include <iosfwd>
#include <string_view>

#include "isolation/algorithm.hpp"
#include "obs/json.hpp"

namespace opiso::obs {

/// Per-kind-prefix sums of a term list ("primary", "secondary",
/// "overhead") — the ledger side of the accounting identity.
struct AttributionSums {
  double primary_mw = 0.0;
  double secondary_mw = 0.0;
  double overhead_mw = 0.0;
};
[[nodiscard]] AttributionSums sum_attribution(const std::vector<SavingsTerm>& terms);

/// One recorded term as JSON (stable keys; zero/empty fields omitted
/// except the always-present kind/mw/probability).
[[nodiscard]] JsonValue savings_term_json(const SavingsTerm& term);

/// The full ledger section for a finished run.
[[nodiscard]] JsonValue build_power_attribution(const IsolationResult& result);

/// Print the decision narrative for one candidate cell across all
/// iterations. Returns false (and prints the known candidate names) if
/// the cell was never evaluated.
bool write_candidate_narrative(std::ostream& os, const IsolationResult& result,
                               std::string_view cell_name);

}  // namespace opiso::obs
