#include "obs/report_diff.hpp"

#include <cmath>
#include <ostream>

#include "support/error.hpp"

namespace opiso::obs {

namespace {

std::vector<std::string> split_path(const std::string& dotted) {
  std::vector<std::string> segments;
  std::size_t start = 0;
  while (start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    if (dot == std::string::npos) {
      segments.push_back(dotted.substr(start));
      break;
    }
    segments.push_back(dotted.substr(start, dot - start));
    start = dot + 1;
  }
  return segments;
}

/// Glob match within one segment: `*` matches any run of characters.
bool segment_matches(const std::string& pattern, const std::string& segment) {
  if (pattern == "*") return true;
  // Iterative glob (patterns here are short: at most a few stars).
  std::size_t p = 0, s = 0, star = std::string::npos, mark = 0;
  while (s < segment.size()) {
    if (p < pattern.size() && (pattern[p] == segment[s])) {
      ++p, ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

/// `**` matches zero or more whole segments anywhere in the pattern
/// (not just at the tail): `totals.**.toggles` covers both
/// `totals.toggles` and `totals.a.b.toggles`. Patterns and paths are
/// short, so plain backtracking recursion is fine. Empty segments (from
/// consecutive dots) participate like any other literal segment.
bool path_matches_at(const std::vector<std::string>& pattern, std::size_t p,
                     const std::vector<std::string>& path, std::size_t s) {
  if (p == pattern.size()) return s == path.size();
  if (pattern[p] == "**") {
    for (std::size_t skip = s; skip <= path.size(); ++skip) {
      if (path_matches_at(pattern, p + 1, path, skip)) return true;
    }
    return false;
  }
  if (s == path.size()) return false;
  if (!segment_matches(pattern[p], path[s])) return false;
  return path_matches_at(pattern, p + 1, path, s + 1);
}

bool path_matches(const std::vector<std::string>& pattern,
                  const std::vector<std::string>& path) {
  return path_matches_at(pattern, 0, path, 0);
}

std::string join_path(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& seg : path) {
    if (!out.empty()) out += '.';
    out += seg;
  }
  return out.empty() ? "(root)" : out;
}

std::string render(const JsonValue& v) {
  std::string s = v.dump();
  if (s.size() > 64) s = s.substr(0, 61) + "...";
  return s;
}

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return "bool";
    case JsonValue::Kind::Number: return "number";
    case JsonValue::Kind::String: return "string";
    case JsonValue::Kind::Array: return "array";
    case JsonValue::Kind::Object: return "object";
  }
  return "?";
}

class Differ {
 public:
  Differ(const ToleranceSpec& spec, const DiffOptions& options)
      : spec_(spec), options_(options) {}

  std::vector<DiffEntry> run(const JsonValue& a, const JsonValue& b) {
    entries_.clear();
    path_.clear();
    compare(a, b);
    return std::move(entries_);
  }

 private:
  bool full() const {
    return options_.max_entries != 0 && entries_.size() >= options_.max_entries;
  }

  void report(std::string kind, std::string av, std::string bv, double delta = 0.0,
              double allowed = 0.0) {
    if (full()) return;
    entries_.push_back(DiffEntry{join_path(path_), std::move(kind), std::move(av),
                                 std::move(bv), delta, allowed});
    // A diff on a rule-less path gets a hint at the glob that almost
    // covered it (schema mismatches excluded: no rule is expected
    // there, the documents are simply different artifacts).
    if (current_rule_ == nullptr && entries_.back().kind != "schema") {
      entries_.back().nearest_rule = spec_.nearest_pattern(path_);
    }
  }

  void compare(const JsonValue& a, const JsonValue& b) {
    if (full()) return;
    const ToleranceRule* rule = spec_.match(path_);
    current_rule_ = rule;
    if (rule && rule->ignore) return;

    if (a.kind() != b.kind()) {
      // A double-rep and an int-rep number are still both numbers, so a
      // kind mismatch is a genuine structural divergence.
      report("type", kind_name(a.kind()), kind_name(b.kind()));
      return;
    }
    switch (a.kind()) {
      case JsonValue::Kind::Null:
        return;
      case JsonValue::Kind::Bool:
        if (a.as_bool() != b.as_bool()) report("value", a.dump(), b.dump());
        return;
      case JsonValue::Kind::Number:
        compare_numbers(a, b, rule);
        return;
      case JsonValue::Kind::String:
        if (a.as_string() != b.as_string()) {
          // The "schema" key names the artifact type: surface a
          // mismatch as its own kind so callers can fail fast.
          const bool is_schema = !path_.empty() && path_.back() == "schema";
          report(is_schema ? "schema" : "value", render(a), render(b));
        }
        return;
      case JsonValue::Kind::Array:
        compare_arrays(a, b);
        return;
      case JsonValue::Kind::Object:
        compare_objects(a, b);
        return;
    }
  }

  static bool exact_int_equal(const JsonValue& a, const JsonValue& b) {
    const bool a_signed = a.num_rep() == JsonValue::NumRep::Int64;
    const bool b_signed = b.num_rep() == JsonValue::NumRep::Int64;
    if (a_signed && b_signed) return a.as_int64() == b.as_int64();
    if (!a_signed && !b_signed) return a.as_uint64() == b.as_uint64();
    // Mixed reps agree only in the [0, 2^63) overlap.
    const JsonValue& s = a_signed ? a : b;
    const JsonValue& u = a_signed ? b : a;
    const std::int64_t sv = s.as_int64();
    return sv >= 0 && static_cast<std::uint64_t>(sv) == u.as_uint64();
  }

  void compare_numbers(const JsonValue& a, const JsonValue& b, const ToleranceRule* rule) {
    if (a.is_integer() && b.is_integer()) {
      // Exact path: counters beyond 2^53 must not be compared through
      // doubles. A mismatch still falls through so a tolerance rule may
      // accept the drift (delta measured in double space).
      if (exact_int_equal(a, b)) return;
    } else if (a.as_number() == b.as_number()) {
      return;
    }
    const double av = a.as_number();
    const double bv = b.as_number();
    const double delta = std::abs(av - bv);
    const double abs_tol = rule ? rule->abs_tol : 0.0;
    const double rel_tol = rule ? rule->rel_tol : 0.0;
    const double rel_allow = rel_tol * std::max(std::abs(av), std::abs(bv));
    double allowed = std::max(abs_tol, rel_allow);
    if (delta > 0.0 && (delta <= abs_tol || delta <= rel_allow)) return;
    // One-sided trajectory rules (baseline A vs fresh B): improvement
    // is unbounded, only a regression beyond the margin is a diff.
    if (rule && (rule->rel_increase >= 0.0 || rule->rel_decrease >= 0.0)) {
      bool ok = true;
      if (rule->rel_increase >= 0.0) {
        const double margin = rule->rel_increase * std::abs(av);
        if (bv > av + margin) ok = false;
        allowed = std::max(allowed, margin);
      }
      if (rule->rel_decrease >= 0.0) {
        const double margin = rule->rel_decrease * std::abs(av);
        if (bv < av - margin) ok = false;
        allowed = std::max(allowed, margin);
      }
      if (ok) return;
    }
    report("value", a.dump(), b.dump(), delta, allowed);
  }

  void compare_arrays(const JsonValue& a, const JsonValue& b) {
    if (a.size() != b.size()) {
      report("length", std::to_string(a.size()), std::to_string(b.size()));
      return;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      path_.push_back(std::to_string(i));
      compare(a.at(i), b.at(i));
      path_.pop_back();
    }
  }

  void compare_objects(const JsonValue& a, const JsonValue& b) {
    // "schema" first: a mismatch there makes the rest of the listing
    // noise, so it must lead.
    if (a.contains("schema") && b.contains("schema")) {
      path_.push_back("schema");
      compare(a.at("schema"), b.at("schema"));
      path_.pop_back();
    }
    for (const auto& [key, av] : a.members()) {
      if (key == "schema" && b.contains("schema")) continue;
      path_.push_back(key);
      if (!b.contains(key)) {
        const ToleranceRule* rule = spec_.match(path_);
        current_rule_ = rule;
        if (!rule || !rule->ignore) report("missing", render(av), "");
      } else {
        compare(av, b.at(key));
      }
      path_.pop_back();
    }
    if (options_.subset) return;
    for (const auto& [key, bv] : b.members()) {
      if (a.contains(key)) continue;
      path_.push_back(key);
      const ToleranceRule* rule = spec_.match(path_);
      current_rule_ = rule;
      if (!rule || !rule->ignore) report("extra", "", render(bv));
      path_.pop_back();
    }
  }

  const ToleranceSpec& spec_;
  const DiffOptions& options_;
  std::vector<std::string> path_;
  std::vector<DiffEntry> entries_;
  /// Rule matched for the field currently being compared (null = none);
  /// report() reads it to decide whether a near-miss hint is due.
  const ToleranceRule* current_rule_ = nullptr;
};

}  // namespace

ToleranceSpec ToleranceSpec::parse(const JsonValue& doc) {
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "opiso.report_tolerances/v1") {
    throw Error("tolerance file: expected schema opiso.report_tolerances/v1");
  }
  ToleranceSpec spec;
  if (!doc.contains("rules")) return spec;
  const JsonValue& rules = doc.at("rules");
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const JsonValue& r = rules.at(i);
    if (!r.is_object() || !r.contains("path")) {
      throw Error("tolerance file: rule " + std::to_string(i) + " needs a \"path\"");
    }
    ToleranceRule rule;
    rule.pattern = split_path(r.at("path").as_string());
    if (r.contains("ignore")) rule.ignore = r.at("ignore").as_bool();
    if (r.contains("abs")) rule.abs_tol = r.at("abs").as_number();
    if (r.contains("rel")) rule.rel_tol = r.at("rel").as_number();
    if (r.contains("rel_increase")) rule.rel_increase = r.at("rel_increase").as_number();
    if (r.contains("rel_decrease")) rule.rel_decrease = r.at("rel_decrease").as_number();
    spec.add_rule(std::move(rule));
  }
  return spec;
}

const ToleranceRule* ToleranceSpec::match(const std::vector<std::string>& path) const {
  for (const ToleranceRule& rule : rules_) {
    if (path_matches(rule.pattern, path)) return &rule;
  }
  return nullptr;
}

std::string ToleranceSpec::nearest_pattern(const std::vector<std::string>& path) const {
  // Glob-aware longest shared prefix: how many leading path segments
  // the pattern covers before the two diverge (`**` counts as covering
  // the segment it sits on). A rule must cover at least one segment to
  // qualify; ties break toward the pattern whose segment count is
  // closest to the path's, then toward the earlier rule (matching the
  // first-match-wins semantics of match()).
  const ToleranceRule* best = nullptr;
  std::size_t best_prefix = 0;
  std::size_t best_len_gap = 0;
  for (const ToleranceRule& rule : rules_) {
    std::size_t prefix = 0;
    while (prefix < rule.pattern.size() && prefix < path.size() &&
           (rule.pattern[prefix] == "**" ||
            segment_matches(rule.pattern[prefix], path[prefix]))) {
      ++prefix;
    }
    if (prefix == 0) continue;
    const std::size_t len_gap = rule.pattern.size() > path.size()
                                    ? rule.pattern.size() - path.size()
                                    : path.size() - rule.pattern.size();
    if (best == nullptr || prefix > best_prefix ||
        (prefix == best_prefix && len_gap < best_len_gap)) {
      best = &rule;
      best_prefix = prefix;
      best_len_gap = len_gap;
    }
  }
  if (best == nullptr) return "";
  std::string out;
  for (const std::string& seg : best->pattern) {
    if (!out.empty()) out += '.';
    out += seg;
  }
  return out;
}

std::vector<DiffEntry> diff_reports(const JsonValue& a, const JsonValue& b,
                                    const ToleranceSpec& spec, const DiffOptions& options) {
  return Differ(spec, options).run(a, b);
}

void print_diff(std::ostream& os, const std::vector<DiffEntry>& entries) {
  for (const DiffEntry& e : entries) {
    os << e.kind << "  " << e.path;
    if (e.kind == "value" || e.kind == "schema" || e.kind == "type") {
      os << ": " << e.a << " != " << e.b;
      if (e.delta > 0.0) {
        os << "  (delta " << e.delta << ", allowed " << e.allowed << ")";
      }
    } else if (e.kind == "missing") {
      os << ": only in A (" << e.a << ")";
    } else if (e.kind == "extra") {
      os << ": only in B (" << e.b << ")";
    } else if (e.kind == "length") {
      os << ": array length " << e.a << " != " << e.b;
    }
    if (!e.nearest_rule.empty()) {
      os << "  [no tolerance rule matched; nearest glob: " << e.nearest_rule << "]";
    }
    os << "\n";
  }
}

}  // namespace opiso::obs
