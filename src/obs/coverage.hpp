#pragma once
// Stimulus-coverage observability: did the random stimulus actually
// exercise the design?
//
// Two coverage notions matter for the isolation flow. *Net toggle
// coverage*: a net that never toggled contributes nothing to any power
// estimate — its toggle rate is exactly 0 with no statistical backing,
// and a macro model term fed from it is untested. *Activation
// exercise*: Algorithm 1 accepts or rejects each candidate from
// Pr[f_i] measured on its activation probe; a probe that was never (or
// always) true over the run means the idle/active regime the savings
// model reasons about was simply not visited by the stimulus. Both are
// exact integer counts, so the section is bitwise identical across
// engines/threads/plane widths whenever the underlying counters are.
//
// Inputs are layer-agnostic plain vectors (obs sits below the netlist
// layer); sim provides the Netlist/ActivityStats adapter.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace opiso::obs {

struct CoverageInput {
  std::uint64_t cycles = 0;  ///< total measured lane-cycles
  /// Index-aligned per-net data (names may be shorter than toggles;
  /// missing names render as the index).
  std::vector<std::string> net_names;
  std::vector<std::uint64_t> net_toggles;

  /// Per-candidate activation-signal exercise counts.
  struct Candidate {
    std::string cell;
    std::uint64_t active_cycles = 0;      ///< cycles with f_i = 1
    std::uint64_t activation_toggles = 0; ///< f_i value changes
  };
  std::vector<Candidate> candidates;
};

/// Fraction of nets with at least one observed toggle, in percent.
[[nodiscard]] double toggle_coverage_pct(const std::vector<std::uint64_t>& net_toggles);

/// `opiso.coverage/v1` report section: toggle coverage, the
/// never-toggled net list, and per-candidate activation exercise.
[[nodiscard]] JsonValue build_coverage_section(const CoverageInput& input);

}  // namespace opiso::obs
