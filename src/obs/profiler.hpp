#pragma once
// Hierarchical phase profiler: OPISO_SPAN events → aggregated call tree.
//
// The tracer records one flat completed-span event per OPISO_SPAN
// (name, start, duration, depth, thread index). This module folds that
// stream into a profile tree: one node per distinct call path
// ("isolate.run;isolate.iteration;sim.run"), carrying call count, total
// wall time, self time (total minus the children's totals) and
// percentages of the run. Events from different threads build separate
// stacks and merge by path, so a SweepRunner worker's "sweep.task"
// spans aggregate under "sweep.run" siblings rather than corrupting the
// main thread's nesting.
//
// Two exports:
//   profile_to_json()  — nested tree for the run report ("profile"
//                        section; schema opiso.profile/v1)
//   write_folded()     — collapsed-stack text (one "a;b;c <self_us>"
//                        line per node) for flamegraph.pl / speedscope
//                        / inferno, via `opiso ... --profile out.folded`.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace opiso::obs {

struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;     ///< completed spans at this path
  std::uint64_t total_ns = 0;  ///< summed wall time (includes children)
  std::uint64_t self_ns = 0;   ///< total_ns minus children's total_ns
  /// Children keyed by span name; deterministic (sorted) iteration so
  /// the JSON/folded output is stable across runs of the same trace.
  std::map<std::string, std::unique_ptr<ProfileNode>> children;
};

/// Fold a completed-span stream into a profile tree. The returned root
/// is synthetic (name "(root)"): its children are the top-level spans,
/// its total is their sum. Events must come from Tracer::events() (or
/// any list with consistent per-thread depths).
[[nodiscard]] ProfileNode build_profile_tree(const std::vector<TraceEvent>& events);

/// Nested JSON: {"schema": "opiso.profile/v1", "total_ns": ...,
/// "tree": [{"name": ..., "count": ..., "total_ns": ..., "self_ns": ...,
///           "total_pct": ..., "self_pct": ..., "children": [...]}]}
/// Percentages are of the root total.
[[nodiscard]] JsonValue profile_to_json(const ProfileNode& root);

/// Collapsed-stack text: "isolate.run;sim.run 1234\n" with self time in
/// microseconds (flamegraph-compatible; zero-self nodes are skipped).
void write_folded(std::ostream& os, const ProfileNode& root);

}  // namespace opiso::obs
