#include "obs/confidence.hpp"

// This translation unit is compiled with -ffp-contract=off (see
// src/obs/CMakeLists.txt): all confidence arithmetic must be the same
// IEEE operation sequence on every build of the same source, so the
// determinism CI leg can diff confidence sections bitwise across
// engines, thread counts, plane widths, and incremental replay.

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace opiso::obs {

void BatchAccumulator::configure(std::size_t num_series, std::uint32_t batch_frames) {
  batch_frames_ = batch_frames;
  num_series_ = num_series;
  num_frames_ = 0;
  cell_base_ = 0;
  cells_.clear();
}

void BatchAccumulator::merge(const BatchAccumulator& other) {
  if (!other.enabled()) return;
  if (!enabled()) {
    *this = other;
    return;
  }
  OPISO_REQUIRE(batch_frames_ == other.batch_frames_,
                "BatchAccumulator::merge: batch sizes differ");
  OPISO_REQUIRE(num_series_ == other.num_series_,
                "BatchAccumulator::merge: series counts differ");
  num_frames_ = std::max(num_frames_, other.num_frames_);
  if (cells_.size() < other.cells_.size()) cells_.resize(other.cells_.size(), 0);
  for (std::size_t i = 0; i < other.cells_.size(); ++i) cells_[i] += other.cells_[i];
}

void BatchAccumulator::copy_series(const BatchAccumulator& from, std::size_t series) {
  if (!enabled() || !from.enabled()) return;
  OPISO_REQUIRE(from.batch_frames_ == batch_frames_,
                "BatchAccumulator::copy_series: batch sizes differ");
  OPISO_REQUIRE(series < num_series_ && series < from.num_series_,
                "BatchAccumulator::copy_series: unknown series");
  // The sides may cover netlists of different sizes (a baseline and an
  // append-only evolution): windows are copied cell by cell under each
  // side's own stride. The trailing partial window is copied too — the
  // accumulators must stay exact, not just CI-equivalent.
  const std::uint64_t windows =
      (from.num_frames_ + from.batch_frames_ - 1) / from.batch_frames_;
  num_frames_ = std::max(num_frames_, from.num_frames_);
  const std::size_t need = static_cast<std::size_t>(windows) * num_series_;
  if (cells_.size() < need) cells_.resize(need, 0);
  for (std::uint64_t w = 0; w < windows; ++w) {
    cells_[static_cast<std::size_t>(w) * num_series_ + series] =
        from.cells_[static_cast<std::size_t>(w) * from.num_series_ + series];
  }
}

void BatchAccumulator::reset() {
  num_frames_ = 0;
  cell_base_ = 0;
  std::fill(cells_.begin(), cells_.end(), 0);
}

namespace {

/// Acklam's rational approximation of the standard normal quantile
/// (absolute error < 1.15e-9 over (0, 1)).
double inverse_normal(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00, 2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double student_t_quantile(double level, std::uint64_t df) {
  OPISO_REQUIRE(level > 0.0 && level < 1.0, "student_t_quantile: level must be in (0, 1)");
  OPISO_REQUIRE(df >= 1, "student_t_quantile: df must be >= 1");
  if (df == 1) {
    // t_{1-alpha/2, 1} = tan(pi * level / 2).
    return std::tan(1.5707963267948966 * level);
  }
  if (df == 2) {
    const double alpha = 1.0 - level;
    return std::sqrt(2.0 / (alpha * (2.0 - alpha)) - 2.0);
  }
  // Cornish-Fisher expansion of the t quantile around the normal one.
  const double z = inverse_normal(0.5 * (1.0 + level));
  const double nu = static_cast<double>(df);
  const double z2 = z * z;
  const double g1 = (z2 + 1.0) * z / 4.0;
  const double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
  const double g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
  const double g4 = ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z /
                    92160.0;
  return z + g1 / nu + g2 / (nu * nu) + g3 / (nu * nu * nu) + g4 / (nu * nu * nu * nu);
}

SeriesInterval batch_interval(const BatchAccumulator& acc, std::size_t series,
                              std::uint64_t lanes, double level) {
  SeriesInterval out;
  const std::uint64_t windows = acc.complete_windows();
  out.batches = windows;
  if (windows == 0 || lanes == 0) return out;
  const double scale =
      1.0 / (static_cast<double>(lanes) * static_cast<double>(acc.batch_frames()));
  double sum = 0.0;
  for (std::uint64_t w = 0; w < windows; ++w) {
    sum += static_cast<double>(acc.cell(w, series)) * scale;
  }
  out.mean = sum / static_cast<double>(windows);
  if (windows < 2) return out;
  double ss = 0.0;
  for (std::uint64_t w = 0; w < windows; ++w) {
    const double d = static_cast<double>(acc.cell(w, series)) * scale - out.mean;
    ss += d * d;
  }
  const double var_mean = ss / static_cast<double>(windows - 1) / static_cast<double>(windows);
  out.halfwidth = student_t_quantile(level, windows - 1) * std::sqrt(var_mean);
  return out;
}

SeriesInterval weighted_interval(const BatchAccumulator& acc, const std::vector<double>& weights,
                                 std::uint64_t lanes, double level) {
  SeriesInterval out;
  const std::uint64_t windows = acc.complete_windows();
  out.batches = windows;
  if (windows == 0 || lanes == 0) return out;
  OPISO_REQUIRE(weights.size() == acc.num_series(),
                "weighted_interval: weight vector does not match series count");
  const double scale =
      1.0 / (static_cast<double>(lanes) * static_cast<double>(acc.batch_frames()));
  std::vector<double> samples(static_cast<std::size_t>(windows), 0.0);
  for (std::uint64_t w = 0; w < windows; ++w) {
    double p = 0.0;
    for (std::size_t s = 0; s < weights.size(); ++s) {
      p += weights[s] * (static_cast<double>(acc.cell(w, s)) * scale);
    }
    samples[static_cast<std::size_t>(w)] = p;
  }
  double sum = 0.0;
  for (double p : samples) sum += p;
  out.mean = sum / static_cast<double>(windows);
  if (windows < 2) return out;
  double ss = 0.0;
  for (double p : samples) {
    const double d = p - out.mean;
    ss += d * d;
  }
  const double var_mean = ss / static_cast<double>(windows - 1) / static_cast<double>(windows);
  out.halfwidth = student_t_quantile(level, windows - 1) * std::sqrt(var_mean);
  return out;
}

JsonValue build_confidence_section(const ConfidenceInput& input) {
  JsonValue section = JsonValue::object();
  section["schema"] = "opiso.confidence/v1";
  section["level"] = input.config.level;
  section["batch_frames"] = input.config.batch_frames;
  const BatchAccumulator* acc = input.nets;
  const std::uint64_t frames = acc ? acc->num_frames() : 0;
  const std::uint64_t windows = acc ? acc->complete_windows() : 0;
  const std::uint64_t lanes = frames > 0 ? input.cycles / frames : 0;
  section["frames"] = frames;
  section["batches"] = windows;
  section["lanes"] = lanes;
  section["cycles"] = input.cycles;

  if (acc != nullptr && acc->enabled() && !input.power_weights_mw.empty()) {
    const SeriesInterval pw =
        weighted_interval(*acc, input.power_weights_mw, lanes, input.config.level);
    JsonValue power = JsonValue::object();
    power["mean_mw"] = pw.mean;
    power["ci_halfwidth_mw"] = pw.halfwidth;
    power["batches"] = pw.batches;
    if (input.config.min_power_ci_halfwidth_mw >= 0.0) {
      power["min_ci_halfwidth_mw"] = input.config.min_power_ci_halfwidth_mw;
      power["converged"] =
          pw.batches >= 2 && pw.halfwidth <= input.config.min_power_ci_halfwidth_mw;
    }
    section["power_mw"] = std::move(power);
  }

  JsonValue nets = JsonValue::array();
  double max_half = 0.0;
  double sum_half = 0.0;
  std::size_t count = 0;
  if (acc != nullptr && acc->enabled()) {
    for (std::size_t s = 0; s < acc->num_series(); ++s) {
      const SeriesInterval iv = batch_interval(*acc, s, lanes, input.config.level);
      JsonValue row = JsonValue::object();
      row["net"] = s < input.net_names.size() ? JsonValue(input.net_names[s])
                                              : JsonValue(std::to_string(s));
      row["toggle_rate"] = iv.mean;
      row["ci_halfwidth"] = iv.halfwidth;
      nets.push_back(std::move(row));
      max_half = std::max(max_half, iv.halfwidth);
      sum_half += iv.halfwidth;
      ++count;
    }
  }
  JsonValue net_summary = JsonValue::object();
  net_summary["max_ci_halfwidth"] = max_half;
  net_summary["mean_ci_halfwidth"] = count > 0 ? sum_half / static_cast<double>(count) : 0.0;
  net_summary["nets"] = std::move(nets);
  section["net_toggle_rate"] = std::move(net_summary);
  return section;
}

}  // namespace opiso::obs
