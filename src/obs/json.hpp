#pragma once
// Minimal JSON document model for the observability layer.
//
// Everything the obs subsystem emits (metrics snapshots, run reports,
// bench trajectories) is built as a JsonValue tree and serialized with
// dump(); parse() is the matching reader so reports are round-trippable
// artifacts — tests and downstream tooling can load what a run wrote
// without an external dependency. Objects preserve insertion order so
// reports diff cleanly between runs.
//
// Numbers constructed from integral types keep an exact int64/uint64
// representation that survives dump() → parse() round trips, so large
// counters (e.g. sim.cycles over a long sweep, which exceed 2^53) never
// lose precision through a double. Numbers constructed from doubles
// stay doubles; integral double values within the exact range still
// print without a fractional part.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace opiso::obs {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  /// How a Number is stored. Integral constructors keep the exact
  /// value; as_number() converts on demand.
  enum class NumRep { Double, Int64, Uint64 };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::Number), num_(d) {}
  JsonValue(int i) : JsonValue(static_cast<long long>(i)) {}
  JsonValue(unsigned i) : JsonValue(static_cast<unsigned long long>(i)) {}
  JsonValue(long i) : JsonValue(static_cast<long long>(i)) {}
  JsonValue(long long i)
      : kind_(Kind::Number), rep_(NumRep::Int64), num_(static_cast<double>(i)),
        ibits_(static_cast<std::uint64_t>(i)) {}
  JsonValue(unsigned long i) : JsonValue(static_cast<unsigned long long>(i)) {}
  JsonValue(unsigned long long i)
      : kind_(Kind::Number), rep_(NumRep::Uint64), num_(static_cast<double>(i)), ibits_(i) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}
  JsonValue(std::string_view s) : kind_(Kind::String), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Exact-integer interface. is_integer() is true for numbers built
  /// from (or parsed as) integral values; as_int64/as_uint64 throw when
  /// the stored value does not fit the requested range (including
  /// non-integral doubles).
  [[nodiscard]] bool is_integer() const { return kind_ == Kind::Number && rep_ != NumRep::Double; }
  [[nodiscard]] NumRep num_rep() const { return rep_; }
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;

  /// Object access: insert-or-get (mutable) / lookup (const, throws on
  /// a missing key). A null value silently becomes an object on the
  /// first mutable access so literal-style building works.
  JsonValue& operator[](std::string_view key);
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Array access. A null value becomes an array on the first push.
  void push_back(JsonValue v);
  [[nodiscard]] const JsonValue& at(std::size_t index) const;

  /// Number of elements (array) or members (object); 0 otherwise.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  [[nodiscard]] const std::vector<JsonValue>& elements() const { return elements_; }

  /// Serialize. indent = 0 → compact one-liner; indent > 0 →
  /// pretty-printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;
  void write(std::ostream& os, int indent = 0) const;

  /// Parse a complete JSON document. Throws opiso::ParseError on
  /// malformed input or trailing garbage.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  void write_indented(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  NumRep rep_ = NumRep::Double;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t ibits_ = 0;  ///< exact value for Int64 (two's complement) / Uint64
  std::string str_;
  std::vector<JsonValue> elements_;                          // Array
  std::vector<std::pair<std::string, JsonValue>> members_;   // Object
};

}  // namespace opiso::obs
