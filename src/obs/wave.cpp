#include "obs/wave.hpp"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <ostream>
#include <string>

#include "support/error.hpp"

namespace opiso::obs {

namespace {

// Fold a per-sample series K-to-1 (exact integer sums; the last emitted
// sample may cover fewer capture samples).
std::vector<std::uint64_t> fold_series(const std::vector<std::uint64_t>& series, std::size_t k) {
  if (k <= 1) return series;
  std::vector<std::uint64_t> out;
  out.reserve((series.size() + k - 1) / k);
  for (std::size_t s = 0; s < series.size(); s += k) {
    std::uint64_t acc = 0;
    for (std::size_t j = s; j < std::min(series.size(), s + k); ++j) acc += series[j];
    out.push_back(acc);
  }
  return out;
}

std::size_t decimation_factor(std::size_t num_samples, std::size_t max_samples) {
  if (max_samples == 0 || num_samples <= max_samples) return 1;
  return (num_samples + max_samples - 1) / max_samples;
}

JsonValue to_json_array(const std::vector<std::uint64_t>& v) {
  JsonValue arr = JsonValue::array();
  for (std::uint64_t x : v) arr.push_back(x);
  return arr;
}

std::vector<std::uint64_t> cycle_starts(const std::vector<std::uint64_t>& cycles) {
  std::vector<std::uint64_t> starts(cycles.size());
  std::uint64_t c = 0;
  for (std::size_t s = 0; s < cycles.size(); ++s) {
    starts[s] = c;
    c += cycles[s];
  }
  return starts;
}

/// Cells ranked hottest-first: by total energy descending, cell id
/// ascending on ties (deterministic).
std::vector<std::size_t> rank_cells(const PowerTrace& pt) {
  std::vector<std::size_t> order(pt.cell_total_fj.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pt.cell_total_fj[a] > pt.cell_total_fj[b];
  });
  return order;
}

}  // namespace

JsonValue build_power_trace_section(const Netlist& nl, const PowerTrace& pt,
                                    std::string_view design, std::string_view engine,
                                    std::size_t max_samples, std::size_t top_cells) {
  OPISO_REQUIRE(pt.cell_fj.size() == nl.num_cells(),
                "build_power_trace_section: trace does not match the netlist");
  const std::size_t k = decimation_factor(pt.num_samples(), max_samples);
  const std::vector<std::uint64_t> cycles = fold_series(pt.sample_cycles, k);

  JsonValue doc = JsonValue::object();
  doc["schema"] = "opiso.power_trace/v1";
  doc["design"] = design;
  doc["engine"] = engine;
  doc["cycles"] = pt.cycles;
  doc["lanes"] = pt.lanes;
  doc["window"] = pt.window;
  doc["decimation"] = static_cast<std::uint64_t>(k);
  doc["clock_freq_mhz"] = pt.clock_freq_mhz;
  doc["total_energy_fj"] = pt.total_energy_fj;
  doc["avg_power_mw"] = pt.avg_power_mw();

  JsonValue samples = JsonValue::object();
  samples["count"] = static_cast<std::uint64_t>(cycles.size());
  samples["cycle_start"] = to_json_array(cycle_starts(cycles));
  samples["cycles"] = to_json_array(cycles);
  samples["total_fj"] = to_json_array(fold_series(pt.total_fj, k));
  samples["arith_fj"] = to_json_array(fold_series(pt.arith_fj, k));
  samples["steering_fj"] = to_json_array(fold_series(pt.steering_fj, k));
  samples["sequential_fj"] = to_json_array(fold_series(pt.sequential_fj, k));
  samples["isolation_fj"] = to_json_array(fold_series(pt.isolation_fj, k));
  doc["samples"] = std::move(samples);

  const std::vector<std::size_t> order = rank_cells(pt);
  JsonValue cells = JsonValue::array();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t ci = order[rank];
    const Cell& c = nl.cell(CellId{static_cast<std::uint32_t>(ci)});
    JsonValue row = JsonValue::object();
    row["cell"] = c.name;
    row["kind"] = cell_kind_name(c.kind);
    row["width"] = c.width;
    row["candidate"] = cell_kind_is_arith(c.kind);
    row["total_fj"] = pt.cell_total_fj[ci];
    row["total_toggles"] = pt.cell_total_toggles[ci];
    if (rank < top_cells) {
      row["series_fj"] = to_json_array(fold_series(pt.cell_fj[ci], k));
      row["series_toggles"] = to_json_array(fold_series(pt.cell_toggles[ci], k));
    }
    cells.push_back(std::move(row));
  }
  doc["cells"] = std::move(cells);
  return doc;
}

JsonValue build_toggle_heatmap(const Netlist& nl, const PowerTrace& pt) {
  OPISO_REQUIRE(pt.cell_fj.size() == nl.num_cells(),
                "build_toggle_heatmap: trace does not match the netlist");
  const std::vector<std::size_t> order = rank_cells(pt);
  JsonValue doc = JsonValue::object();
  doc["schema"] = "opiso.toggle_heatmap/v1";
  doc["total_energy_fj"] = pt.total_energy_fj;
  JsonValue rows = JsonValue::array();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t ci = order[rank];
    const Cell& c = nl.cell(CellId{static_cast<std::uint32_t>(ci)});
    JsonValue row = JsonValue::object();
    row["rank"] = static_cast<std::uint64_t>(rank + 1);
    row["cell"] = c.name;
    row["kind"] = cell_kind_name(c.kind);
    row["width"] = c.width;
    row["candidate"] = cell_kind_is_arith(c.kind);
    row["total_toggles"] = pt.cell_total_toggles[ci];
    row["total_fj"] = pt.cell_total_fj[ci];
    row["energy_pct"] = pt.total_energy_fj > 0
                            ? 100.0 * static_cast<double>(pt.cell_total_fj[ci]) /
                                  static_cast<double>(pt.total_energy_fj)
                            : 0.0;
    rows.push_back(std::move(row));
  }
  doc["rows"] = std::move(rows);
  return doc;
}

void write_heatmap_table(std::ostream& os, const Netlist& nl, const PowerTrace& pt,
                         std::size_t max_rows) {
  const std::vector<std::size_t> order = rank_cells(pt);
  os << "  rank  cell                 kind      w  cand     toggles        energy_fj    %\n";
  const std::size_t rows = std::min(order.size(), max_rows);
  for (std::size_t rank = 0; rank < rows; ++rank) {
    const std::size_t ci = order[rank];
    const Cell& c = nl.cell(CellId{static_cast<std::uint32_t>(ci)});
    const double pct = pt.total_energy_fj > 0
                           ? 100.0 * static_cast<double>(pt.cell_total_fj[ci]) /
                                 static_cast<double>(pt.total_energy_fj)
                           : 0.0;
    os << "  " << std::setw(4) << rank + 1 << "  " << std::left << std::setw(20) << c.name
       << std::setw(8) << cell_kind_name(c.kind) << std::right << std::setw(3) << c.width
       << (cell_kind_is_arith(c.kind) ? "   yes" : "    no") << std::setw(12)
       << pt.cell_total_toggles[ci] << std::setw(17) << pt.cell_total_fj[ci] << "  "
       << std::fixed << std::setprecision(1) << std::setw(5) << pct << '\n';
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
  if (order.size() > rows) os << "  ... (" << order.size() - rows << " more cells)\n";
}

JsonValue build_wave_compare(const Netlist& orig_nl, const PowerTrace& orig,
                             const Netlist& iso_nl, const PowerTrace& iso,
                             std::span<const IsolationRecord> records, std::string_view design,
                             std::size_t max_samples) {
  OPISO_REQUIRE(orig.num_samples() == iso.num_samples() && orig.cycles == iso.cycles &&
                    orig.lanes == iso.lanes && orig.window == iso.window,
                "build_wave_compare: traces were captured with different run disciplines");

  JsonValue doc = JsonValue::object();
  doc["schema"] = "opiso.wave_compare/v1";
  doc["design"] = design;
  doc["cycles"] = orig.cycles;
  doc["lanes"] = orig.lanes;
  doc["window"] = orig.window;
  doc["clock_freq_mhz"] = orig.clock_freq_mhz;
  doc["original_total_fj"] = orig.total_energy_fj;
  doc["isolated_total_fj"] = iso.total_energy_fj;
  doc["reclaimed_total_fj"] = static_cast<std::int64_t>(orig.total_energy_fj) -
                              static_cast<std::int64_t>(iso.total_energy_fj);
  doc["original_avg_power_mw"] = orig.avg_power_mw();
  doc["isolated_avg_power_mw"] = iso.avg_power_mw();

  const std::size_t k = decimation_factor(orig.num_samples(), max_samples);
  const std::vector<std::uint64_t> cycles = fold_series(orig.sample_cycles, k);
  JsonValue samples = JsonValue::object();
  samples["count"] = static_cast<std::uint64_t>(cycles.size());
  samples["cycle_start"] = to_json_array(cycle_starts(cycles));
  samples["cycles"] = to_json_array(cycles);
  samples["original_fj"] = to_json_array(fold_series(orig.total_fj, k));
  samples["isolated_fj"] = to_json_array(fold_series(iso.total_fj, k));
  doc["samples"] = std::move(samples);

  // Idle intervals at capture resolution: maximal runs of consecutive
  // samples where the isolated design spent strictly less energy. Their
  // reclaimed sums, minus the overhead of the intervals where isolation
  // cost energy, telescope to reclaimed_total_fj exactly.
  JsonValue intervals = JsonValue::array();
  std::int64_t reclaimed_in_intervals = 0;
  {
    const std::vector<std::uint64_t> starts = cycle_starts(orig.sample_cycles);
    std::size_t s = 0;
    while (s < orig.num_samples()) {
      const std::int64_t d = static_cast<std::int64_t>(orig.total_fj[s]) -
                             static_cast<std::int64_t>(iso.total_fj[s]);
      if (d <= 0) {
        ++s;
        continue;
      }
      const std::size_t begin = s;
      std::int64_t reclaimed = 0;
      while (s < orig.num_samples()) {
        const std::int64_t ds = static_cast<std::int64_t>(orig.total_fj[s]) -
                                static_cast<std::int64_t>(iso.total_fj[s]);
        if (ds <= 0) break;
        reclaimed += ds;
        ++s;
      }
      const std::uint64_t start_cycle = starts[begin];
      const std::uint64_t end_cycle =
          starts[s - 1] + orig.sample_cycles[s - 1];  // exclusive
      JsonValue iv = JsonValue::object();
      iv["name"] = "idle[" + std::to_string(start_cycle) + "," + std::to_string(end_cycle) + ")";
      iv["start_cycle"] = start_cycle;
      iv["end_cycle"] = end_cycle;
      iv["samples"] = static_cast<std::uint64_t>(s - begin);
      iv["reclaimed_fj"] = reclaimed;
      intervals.push_back(std::move(iv));
      reclaimed_in_intervals += reclaimed;
    }
  }
  doc["idle_intervals"] = std::move(intervals);
  doc["reclaimed_in_intervals_fj"] = reclaimed_in_intervals;

  // Per-isolated-module ledger: the module's own energy drop against the
  // bank + activation-logic energy the transform added for it.
  JsonValue modules = JsonValue::array();
  for (const IsolationRecord& rec : records) {
    const Cell& cand = iso_nl.cell(rec.candidate);
    JsonValue m = JsonValue::object();
    m["cell"] = cand.name;
    m["style"] = isolation_style_name(rec.style);
    const CellId orig_id = orig_nl.find_cell(cand.name);
    const std::uint64_t before =
        orig_id.valid() ? orig.cell_total_fj[orig_id.value()] : std::uint64_t{0};
    const std::uint64_t after = iso.cell_total_fj[rec.candidate.value()];
    std::uint64_t overhead = 0;
    for (CellId b : rec.bank_cells) overhead += iso.cell_total_fj[b.value()];
    for (CellId l : rec.logic_cells) overhead += iso.cell_total_fj[l.value()];
    m["before_fj"] = before;
    m["after_fj"] = after;
    m["overhead_fj"] = overhead;
    m["net_reclaimed_fj"] = static_cast<std::int64_t>(before) - static_cast<std::int64_t>(after) -
                            static_cast<std::int64_t>(overhead);
    modules.push_back(std::move(m));
  }
  doc["isolated_modules"] = std::move(modules);
  return doc;
}

}  // namespace opiso::obs
