#pragma once
// Streaming batch-means confidence statistics for activity estimates.
//
// Every toggle rate, probe probability, and power figure the pipeline
// reports is a Monte-Carlo estimate from random stimulus. This layer
// measures how converged those estimates are, without giving up the
// project's bitwise-determinism contract: the accumulator stores only
// exact integers (toggle counts per batch window), so its merge is
// associative and commutative — the cells come out identical whether
// the frames were simulated by one scalar lane at a time, by a
// bit-parallel plane engine, by an incremental dirty-cone replay, or
// split across any number of sweep worker threads. All floating-point
// derivation (means, variances, Student-t half-widths) happens at
// report time, in this translation unit, which is compiled with
// -ffp-contract=off so the arithmetic is the same IEEE sequence on
// every build of the same source.
//
// Batch definition: a *window* is `batch_frames` consecutive stimulus
// frames; one cell accumulates the total event count (bit toggles, or
// lanes-where-probe-held) over all lanes in one window for one series
// (net or probe). Batch means over windows are the classic batch-means
// estimator: consecutive-frame correlation (sequential logic) is
// absorbed inside a window, and the variance of the window means yields
// a confidence interval on the long-run rate. The trailing partial
// window is carried exactly (merges stay associative) but excluded
// from interval computation.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace opiso::obs {

/// Exact-integer per-(window × series) event counts. Disabled (all
/// operations no-ops) until `configure` is called with a nonzero
/// batch size, so the hot simulation loops pay one branch when the
/// feature is off.
class BatchAccumulator {
 public:
  /// Series = nets (or probes); batch_frames = frames per window
  /// (0 disables). Discards any previously accumulated cells.
  void configure(std::size_t num_series, std::uint32_t batch_frames);

  [[nodiscard]] bool enabled() const { return batch_frames_ != 0; }
  [[nodiscard]] std::uint32_t batch_frames() const { return batch_frames_; }
  [[nodiscard]] std::size_t num_series() const { return num_series_; }
  /// Frames begun since the last reset/configure.
  [[nodiscard]] std::uint64_t num_frames() const { return num_frames_; }
  /// Windows with a full complement of batch_frames frames.
  [[nodiscard]] std::uint64_t complete_windows() const {
    return batch_frames_ == 0 ? 0 : num_frames_ / batch_frames_;
  }
  [[nodiscard]] std::uint64_t cell(std::uint64_t window, std::size_t series) const {
    return cells_[static_cast<std::size_t>(window) * num_series_ + series];
  }

  /// Open the next stimulus frame. Every engine calls this once per
  /// measured frame *before* the frame's `add` calls.
  void begin_frame() {
    if (batch_frames_ == 0) return;
    const std::uint64_t window = num_frames_ / batch_frames_;
    cell_base_ = static_cast<std::size_t>(window) * num_series_;
    if (cells_.size() < cell_base_ + num_series_) {
      cells_.resize(cell_base_ + num_series_, 0);
    }
    ++num_frames_;
  }

  /// Count events for one series in the current frame's window.
  void add(std::size_t series, std::uint64_t count) {
    if (batch_frames_ == 0) return;
    cells_[cell_base_ + series] += count;
  }

  /// Element-wise accumulation of another accumulator over the *same
  /// frames* (other lanes of the same stimulus schedule): cells add,
  /// the frame count is the maximum of the two sides. An unconfigured
  /// *this adopts the other side wholesale; a disabled other side is a
  /// no-op. Integer addition makes this associative and commutative,
  /// which is what keeps reports identical across lane/thread/engine
  /// partitions.
  void merge(const BatchAccumulator& other);

  /// Overwrite one series' cells from another accumulator of identical
  /// shape (incremental replay splices carried-forward clean-net cells
  /// this way).
  void copy_series(const BatchAccumulator& from, std::size_t series);

  /// Zero all cells and the frame counter; keeps the configuration.
  void reset();

 private:
  std::uint32_t batch_frames_ = 0;
  std::size_t num_series_ = 0;
  std::uint64_t num_frames_ = 0;
  std::size_t cell_base_ = 0;  ///< (current window) * num_series_
  std::vector<std::uint64_t> cells_;
};

/// Knobs for confidence collection and the optional convergence gate.
struct ConfidenceConfig {
  bool enabled = false;
  /// Two-sided confidence level of the reported intervals.
  double level = 0.95;
  /// Frames per batch window. 16 windows of 16 frames at the default
  /// 4096-cycle runs; larger batches absorb longer-range correlation.
  std::uint32_t batch_frames = 16;
  /// When >= 0: a run whose design-power CI half-width exceeds this is
  /// flagged as under-converged (the run is *not* silently extended).
  double min_power_ci_halfwidth_mw = -1.0;
};

/// Mean and two-sided CI half-width of one estimated rate.
struct SeriesInterval {
  double mean = 0.0;
  double halfwidth = 0.0;
  std::uint64_t batches = 0;  ///< complete windows used (0 or 1 => no interval)
};

/// Two-sided Student-t quantile: the t with P(|T_df| <= t) = level.
/// Exact for df 1 and 2; Cornish-Fisher expansion (≈1e-5 absolute for
/// df >= 3) above — ample for observability and fully deterministic.
[[nodiscard]] double student_t_quantile(double level, std::uint64_t df);

/// CI of one series' per-lane-frame event rate. `lanes` is the number
/// of parallel stimulus lanes each window aggregated (total cycles /
/// frames). halfwidth is 0 with fewer than 2 complete windows.
[[nodiscard]] SeriesInterval batch_interval(const BatchAccumulator& acc, std::size_t series,
                                            std::uint64_t lanes, double level);

/// CI of a fixed linear combination of series rates — the design-power
/// interval, using the macro model's exact per-net dP/dTr weights.
[[nodiscard]] SeriesInterval weighted_interval(const BatchAccumulator& acc,
                                               const std::vector<double>& weights,
                                               std::uint64_t lanes, double level);

/// Layer-agnostic inputs for the report section (callers adapt their
/// Netlist/ActivityStats; obs stays below the netlist layer).
struct ConfidenceInput {
  const BatchAccumulator* nets = nullptr;  ///< per-net toggle batches
  std::uint64_t cycles = 0;                ///< total lane-cycles measured
  std::vector<std::string> net_names;      ///< index-aligned with series
  /// Per-net dP/dTr in mW (empty => no power interval).
  std::vector<double> power_weights_mw;
  ConfidenceConfig config;
};

/// `opiso.confidence/v1` report section: design-power CI, per-net
/// toggle-rate CIs, and the convergence verdict when a gate is set.
[[nodiscard]] JsonValue build_confidence_section(const ConfidenceInput& input);

}  // namespace opiso::obs
