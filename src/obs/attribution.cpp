#include "obs/attribution.hpp"

#include <cstdio>
#include <ostream>
#include <set>

#include "obs/run_report.hpp"

namespace opiso::obs {

namespace {

bool kind_is(const std::string& kind, const char* prefix) {
  return kind.rfind(prefix, 0) == 0;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

AttributionSums sum_attribution(const std::vector<SavingsTerm>& terms) {
  // Accumulate in recording order: the estimator summed the same
  // addends in the same order, so these sums match the reported totals
  // bit for bit, not just within rounding.
  AttributionSums s;
  for (const SavingsTerm& t : terms) {
    if (kind_is(t.kind, "primary.")) s.primary_mw += t.mw;
    else if (kind_is(t.kind, "secondary.")) s.secondary_mw += t.mw;
    else if (kind_is(t.kind, "overhead.")) s.overhead_mw += t.mw;
  }
  return s;
}

JsonValue savings_term_json(const SavingsTerm& term) {
  JsonValue t = JsonValue::object();
  t["kind"] = term.kind;
  t["mw"] = term.mw;
  t["probability"] = term.probability;
  t["rate_a"] = term.rate_a;
  if (term.rate_b != 0.0) t["rate_b"] = term.rate_b;
  if (!term.source_a.empty()) t["source_a"] = term.source_a;
  if (!term.source_b.empty()) t["source_b"] = term.source_b;
  if (term.rescaled_a) t["rescaled_a"] = true;
  if (term.rescaled_b) t["rescaled_b"] = true;
  if (!term.fanout.empty()) {
    t["fanout"] = term.fanout;
    t["fanout_port"] = term.fanout_port;
    t["z_j"] = term.z_j;
  }
  return t;
}

JsonValue build_power_attribution(const IsolationResult& result) {
  JsonValue doc = JsonValue::object();
  doc["schema"] = "opiso.power_attribution/v1";
  JsonValue iterations = JsonValue::array();
  for (const IterationLog& log : result.iterations) {
    JsonValue it = JsonValue::object();
    it["iteration"] = log.iteration;
    JsonValue cands = JsonValue::array();
    for (const CandidateEvaluation& ev : log.evaluations) {
      const AttributionSums sums = sum_attribution(ev.attribution);
      JsonValue c = JsonValue::object();
      c["cell"] = ev.cell_name;
      c["style"] = std::string(isolation_style_name(ev.style));
      c["decision"] = candidate_decision(ev);
      // Ledger-side totals: re-derived from the terms here, equal to
      // the candidates[] row in iterations[] (asserted by tests).
      c["primary_mw"] = sums.primary_mw;
      c["secondary_mw"] = sums.secondary_mw;
      c["overhead_mw"] = sums.overhead_mw;
      c["net_mw"] = sums.primary_mw + sums.secondary_mw - sums.overhead_mw;
      JsonValue terms = JsonValue::array();
      for (const SavingsTerm& t : ev.attribution) terms.push_back(savings_term_json(t));
      c["terms"] = std::move(terms);
      cands.push_back(std::move(c));
    }
    it["candidates"] = std::move(cands);
    iterations.push_back(std::move(it));
  }
  doc["iterations"] = std::move(iterations);
  return doc;
}

bool write_candidate_narrative(std::ostream& os, const IsolationResult& result,
                               std::string_view cell_name) {
  bool found = false;
  for (const IterationLog& log : result.iterations) {
    for (const CandidateEvaluation& ev : log.evaluations) {
      if (ev.cell_name != cell_name) continue;
      found = true;
      os << "iteration " << log.iteration << ": candidate '" << ev.cell_name << "' (block "
         << ev.block << ", style " << isolation_style_name(ev.style) << ")\n";
      os << "  activation AS = " << ev.activation_str << ", Pr(!f) = " << fmt(ev.pr_redundant)
         << "\n";
      os << "  primary savings " << fmt(ev.primary_mw) << " mW (Eq. 1-3):\n";
      for (const SavingsTerm& t : ev.attribution) {
        if (!kind_is(t.kind, "primary.")) continue;
        os << "    [" << t.kind << "] Pr = " << fmt(t.probability) << ", rates ("
           << fmt(t.rate_a) << ", " << fmt(t.rate_b) << ")";
        if (!t.source_a.empty()) os << ", A from " << t.source_a;
        if (t.rescaled_a) os << " (Eq. 2 rescaled)";
        if (!t.source_b.empty()) os << ", B from " << t.source_b;
        if (t.rescaled_b) os << " (Eq. 2 rescaled)";
        os << " -> " << fmt(t.mw) << " mW\n";
      }
      bool any_secondary = false;
      for (const SavingsTerm& t : ev.attribution) {
        if (kind_is(t.kind, "secondary.")) any_secondary = true;
      }
      os << "  secondary savings " << fmt(ev.secondary_mw) << " mW (Eq. 4-5"
         << (any_secondary ? "):\n" : "): no connected fanout candidates\n");
      for (const SavingsTerm& t : ev.attribution) {
        if (!kind_is(t.kind, "secondary.")) continue;
        os << "    [" << t.kind << "] fanout " << t.fanout << " port " << t.fanout_port
           << " (z_j = " << (t.z_j ? 1 : 0) << "), Pr = " << fmt(t.probability) << ", pin rate "
           << fmt(t.rate_a) << (t.rescaled_a ? " (Eq. 2 rescaled)" : "") << " -> " << fmt(t.mw)
           << " mW\n";
      }
      os << "  isolation overhead " << fmt(ev.overhead_mw) << " mW:\n";
      for (const SavingsTerm& t : ev.attribution) {
        if (!kind_is(t.kind, "overhead.")) continue;
        os << "    [" << t.kind << "]";
        if (!t.source_a.empty()) os << " " << t.source_a;
        os << " rates (" << fmt(t.rate_a) << ", " << fmt(t.rate_b) << ") -> " << fmt(t.mw)
           << " mW\n";
      }
      os << "  cost: rP = " << fmt(ev.r_power) << ", rA = " << fmt(ev.r_area)
         << ", h = " << fmt(ev.h) << "; slack " << fmt(ev.slack_before_ns) << " -> est. "
         << fmt(ev.est_slack_after_ns) << " ns\n";
      os << "  decision: " << candidate_decision(ev) << "\n";
    }
  }
  if (!found) {
    std::set<std::string> names;
    for (const IterationLog& log : result.iterations) {
      for (const CandidateEvaluation& ev : log.evaluations) names.insert(ev.cell_name);
    }
    os << "candidate '" << cell_name << "' was never evaluated; known candidates:";
    for (const std::string& n : names) os << " " << n;
    os << "\n";
  }
  return found;
}

}  // namespace opiso::obs
