#pragma once
// IEEE-1364 VCD export of a captured trace, and the matching reader.
//
// The writer serializes a CycleTrace at sample granularity: timestamp
// #(10 * first cycle of the sample), one value change per net whose
// snapshot differs from the previous sample's, plus — when a PowerTrace
// is supplied — two synthetic real-valued signals per cell
// (`e_<cell>` = femtojoules dissipated in the sample, `t_<cell>` =
// input toggles in the sample) so waveform viewers show the power
// waveform time-aligned with the logic activity that caused it.
// Output is fully deterministic: identifier codes are assigned in
// net/cell order from the printable base-94 alphabet, members are
// emitted in netlist order, and no timestamps or environment data are
// embedded.
//
// parse_vcd() reads the subset this writer emits (plus the scalar
// Simulator's inline --vcd output): $timescale/$scope/$var/$upscope/
// $enddefinitions, `#t` timestamps, and scalar/vector/real value
// changes. It validates as it reads — undeclared identifier codes,
// width overflows and non-monotonic timestamps are ParseErrors — which
// is what makes `opiso vcd-check` a meaningful round-trip gate in CI.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/power_trace.hpp"
#include "sim/cycle_trace.hpp"

namespace opiso::obs {

/// Write `trace` (which must have value snapshots, i.e. scalar-engine
/// capture with record_values) as a VCD document. When `power` is
/// non-null it must come from the same trace; per-cell energy/toggle
/// signals are emitted alongside the nets.
void write_vcd(std::ostream& os, const Netlist& nl, const CycleTrace& trace,
               const PowerTrace* power = nullptr);

/// One $var declaration.
struct VcdVar {
  std::string type;  ///< "wire", "real", ...
  unsigned width = 0;
  std::string id;    ///< identifier code
  std::string name;  ///< reference name
};

/// Parsed skeleton of a VCD document: declarations plus change
/// statistics (enough to gate on structure without holding every value).
struct VcdDocument {
  std::string timescale;
  std::vector<std::string> scopes;
  std::vector<VcdVar> vars;
  std::uint64_t num_timestamps = 0;
  std::uint64_t num_changes = 0;       ///< value changes across all timestamps
  std::uint64_t first_timestamp = 0;
  std::uint64_t last_timestamp = 0;

  [[nodiscard]] const VcdVar* find_var(std::string_view name) const;
};

/// Parse and validate. Throws opiso::ParseError on malformed input,
/// undeclared identifiers, vector values wider than their declaration,
/// or non-increasing timestamps.
[[nodiscard]] VcdDocument parse_vcd(std::string_view text);

}  // namespace opiso::obs
