#include "obs/coverage.hpp"

// Compiled with -ffp-contract=off alongside confidence.cpp: the few
// derived percentages here must match bitwise across builds too.

namespace opiso::obs {

double toggle_coverage_pct(const std::vector<std::uint64_t>& net_toggles) {
  if (net_toggles.empty()) return 100.0;
  std::size_t toggled = 0;
  for (std::uint64_t t : net_toggles) {
    if (t != 0) ++toggled;
  }
  return 100.0 * static_cast<double>(toggled) / static_cast<double>(net_toggles.size());
}

JsonValue build_coverage_section(const CoverageInput& input) {
  JsonValue section = JsonValue::object();
  section["schema"] = "opiso.coverage/v1";
  section["cycles"] = input.cycles;

  std::size_t toggled = 0;
  JsonValue never = JsonValue::array();
  for (std::size_t n = 0; n < input.net_toggles.size(); ++n) {
    if (input.net_toggles[n] != 0) {
      ++toggled;
      continue;
    }
    never.push_back(n < input.net_names.size() ? JsonValue(input.net_names[n])
                                               : JsonValue(std::to_string(n)));
  }
  section["nets_total"] = input.net_toggles.size();
  section["nets_toggled"] = toggled;
  section["toggle_coverage_pct"] = toggle_coverage_pct(input.net_toggles);
  section["never_toggled"] = std::move(never);

  JsonValue cands = JsonValue::array();
  for (const CoverageInput::Candidate& c : input.candidates) {
    JsonValue row = JsonValue::object();
    row["cell"] = c.cell;
    row["active_cycles"] = c.active_cycles;
    row["idle_cycles"] = input.cycles >= c.active_cycles ? input.cycles - c.active_cycles : 0;
    row["activation_toggles"] = c.activation_toggles;
    row["pr_active"] = input.cycles > 0 ? static_cast<double>(c.active_cycles) /
                                              static_cast<double>(input.cycles)
                                        : 0.0;
    // Exercised means the stimulus visited both regimes the savings
    // model needs: at least one active and one idle cycle.
    row["exercised"] = c.active_cycles > 0 && c.active_cycles < input.cycles;
    cands.push_back(std::move(row));
  }
  section["candidates"] = std::move(cands);
  return section;
}

}  // namespace opiso::obs
