#pragma once
// Structured tracing: nested RAII spans over the pipeline's phases.
//
// Usage at an instrumentation point:
//
//   void simulate(...) {
//     OPISO_SPAN("sim.run");
//     ...
//   }
//
// The span records a begin timestamp on construction and a complete
// ("ph":"X") event on destruction. Events carry the nesting depth of
// the recording thread, and write_chrome_trace() serializes them in the
// Chrome trace-event JSON format (load via chrome://tracing, Perfetto,
// or speedscope).
//
// Cost model: tracing is globally disabled by default. A disabled span
// is one relaxed atomic load in the constructor and a branch in the
// destructor — safe to leave in hot(ish) paths such as per-iteration
// loops. Do not put spans inside per-cycle or per-BDD-node code; those
// layers accumulate plain counters instead (see metrics.hpp).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace opiso::obs {

struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  ///< since the tracer's epoch (steady clock)
  std::uint64_t dur_ns = 0;
  int depth = 0;  ///< nesting level of the recording thread at begin
  int tid = 0;    ///< small per-thread index (first-use order), not the OS id
};

class Tracer {
 public:
  /// Process-wide tracer used by OPISO_SPAN.
  static Tracer& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer's construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  void record(std::string name, std::uint64_t start_ns, std::uint64_t dur_ns, int depth,
              int tid);

  /// Stable small index of the calling thread (assigned on first use).
  /// Spans record it so multi-threaded traces keep one coherent lane
  /// per worker instead of interleaving everything on tid 1.
  [[nodiscard]] static int current_thread_index();

  /// Snapshot of all recorded events (copies under the lock).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t num_events() const;
  void clear();

  /// Serialize in Chrome trace-event format ({"traceEvents": [...]}).
  void write_chrome_trace(std::ostream& os) const;

  Tracer();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span. Captures the start time if tracing is enabled at
/// construction; records on destruction (or at an explicit end() for
/// regions that stop before scope exit). Not copyable/movable — bind it
/// to a scope via OPISO_SPAN, or name it and call end().
class Span {
 public:
  explicit Span(const char* name);
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record the span now; the destructor becomes a no-op.
  void end();

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  int depth_ = 0;
  bool active_ = false;
};

}  // namespace opiso::obs

#define OPISO_OBS_CONCAT2(a, b) a##b
#define OPISO_OBS_CONCAT(a, b) OPISO_OBS_CONCAT2(a, b)
#define OPISO_SPAN(name) ::opiso::obs::Span OPISO_OBS_CONCAT(opiso_span_, __COUNTER__){name}
