#include "obs/profiler.hpp"

#include <algorithm>
#include <ostream>

namespace opiso::obs {

namespace {

ProfileNode& child_of(ProfileNode& parent, const std::string& name) {
  std::unique_ptr<ProfileNode>& slot = parent.children[name];
  if (!slot) {
    slot = std::make_unique<ProfileNode>();
    slot->name = name;
  }
  return *slot;
}

void finalize_self_times(ProfileNode& node) {
  std::uint64_t children_total = 0;
  for (auto& [name, child] : node.children) {
    finalize_self_times(*child);
    children_total += child->total_ns;
  }
  // Clamp: a child recorded concurrently with its parent's tail can
  // nominally overrun it by clock granularity.
  node.self_ns = node.total_ns > children_total ? node.total_ns - children_total : 0;
}

JsonValue node_to_json(const ProfileNode& node, double root_total_ns) {
  JsonValue j = JsonValue::object();
  j["name"] = node.name;
  j["count"] = node.count;
  j["total_ns"] = node.total_ns;
  j["self_ns"] = node.self_ns;
  if (root_total_ns > 0.0) {
    j["total_pct"] = 100.0 * static_cast<double>(node.total_ns) / root_total_ns;
    j["self_pct"] = 100.0 * static_cast<double>(node.self_ns) / root_total_ns;
  }
  if (!node.children.empty()) {
    JsonValue kids = JsonValue::array();
    for (const auto& [name, child] : node.children) {
      kids.push_back(node_to_json(*child, root_total_ns));
    }
    j["children"] = std::move(kids);
  }
  return j;
}

void write_folded_rec(std::ostream& os, const ProfileNode& node, const std::string& prefix) {
  const std::string path = prefix.empty() ? node.name : prefix + ";" + node.name;
  const std::uint64_t self_us = node.self_ns / 1000;
  if (self_us > 0) os << path << " " << self_us << "\n";
  for (const auto& [name, child] : node.children) write_folded_rec(os, *child, path);
}

}  // namespace

ProfileNode build_profile_tree(const std::vector<TraceEvent>& events) {
  ProfileNode root;
  root.name = "(root)";

  // Per-thread replay: sort that thread's spans by start time (parents
  // tie-break before children via depth), then walk with a depth-indexed
  // stack — an event of depth d is a call inside the last depth d-1
  // event. Threads merge into one tree by path.
  std::map<int, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);

  for (auto& [tid, stream] : by_tid) {
    std::sort(stream.begin(), stream.end(), [](const TraceEvent* a, const TraceEvent* b) {
      if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
      return a->depth < b->depth;
    });
    std::vector<ProfileNode*> stack;  // stack[d] = node of the open span at depth d
    for (const TraceEvent* e : stream) {
      const int depth = std::max(e->depth, 0);
      ProfileNode& parent =
          (depth == 0 || static_cast<std::size_t>(depth) > stack.size())
              ? root
              : *stack[static_cast<std::size_t>(depth) - 1];
      ProfileNode& node = child_of(parent, e->name);
      node.count += 1;
      node.total_ns += e->dur_ns;
      stack.resize(static_cast<std::size_t>(depth));
      stack.push_back(&node);
    }
  }

  for (const auto& [name, child] : root.children) root.total_ns += child->total_ns;
  root.count = 1;
  finalize_self_times(root);
  return root;
}

JsonValue profile_to_json(const ProfileNode& root) {
  JsonValue doc = JsonValue::object();
  doc["schema"] = "opiso.profile/v1";
  doc["total_ns"] = root.total_ns;
  JsonValue tree = JsonValue::array();
  for (const auto& [name, child] : root.children) {
    tree.push_back(node_to_json(*child, static_cast<double>(root.total_ns)));
  }
  doc["tree"] = std::move(tree);
  return doc;
}

void write_folded(std::ostream& os, const ProfileNode& root) {
  for (const auto& [name, child] : root.children) write_folded_rec(os, *child, "");
}

}  // namespace opiso::obs
