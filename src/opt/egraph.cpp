#include "opt/egraph.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "support/error.hpp"

namespace opiso {

bool ENode::operator<(const ENode& o) const {
  return std::tie(kind, param, width, children) <
         std::tie(o.kind, o.param, o.width, o.children);
}

bool ENode::operator==(const ENode& o) const {
  return kind == o.kind && param == o.param && width == o.width && children == o.children;
}

EClassId EGraph::find(EClassId c) const {
  while (parent_[c] != c) c = parent_[c];
  return c;
}

ENode EGraph::canonical(ENode n) const {
  for (EClassId& ch : n.children) ch = find(ch);
  return n;
}

EClassId EGraph::add(ENode n) {
  n = canonical(std::move(n));
  const auto it = memo_.find(n);
  if (it != memo_.end()) return find(it->second);
  const EClassId id = static_cast<EClassId>(classes_.size());
  EClass cls;
  cls.width = n.width;
  cls.nodes.push_back(n);
  classes_.push_back(std::move(cls));
  parent_.push_back(id);
  memo_.emplace(std::move(n), id);
  ++total_nodes_;
  return id;
}

bool EGraph::merge(EClassId a, EClassId b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  OPISO_REQUIRE(classes_[a].width == classes_[b].width,
                "egraph: refusing to merge classes of widths " +
                    std::to_string(classes_[a].width) + " and " +
                    std::to_string(classes_[b].width));
  // Smaller id wins: canonical ids are then independent of merge order
  // within a rebuild round, which keeps extraction deterministic.
  if (b < a) std::swap(a, b);
  EClass& win = classes_[a];
  EClass& lose = classes_[b];
  win.nodes.insert(win.nodes.end(), lose.nodes.begin(), lose.nodes.end());
  lose.nodes.clear();
  lose.nodes.shrink_to_fit();
  parent_[b] = a;
  dirty_.push_back(a);
  return true;
}

void EGraph::rebuild() {
  // Fixpoint congruence closure. The designs this pass targets are a
  // few hundred e-nodes, so the simple "re-hashcons everything until no
  // merge happens" loop is plenty and trivially deterministic. Merges
  // are deferred to the end of each scan — merging mid-scan would
  // splice/clear the node vectors being iterated.
  if (dirty_.empty()) return;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<ENode, EClassId> fresh;
    std::vector<std::pair<EClassId, EClassId>> pending;
    for (EClassId c = 0; c < classes_.size(); ++c) {
      if (find(c) != c) continue;
      for (const ENode& raw : classes_[c].nodes) {
        const ENode n = canonical(raw);
        const auto [it, inserted] = fresh.emplace(n, c);
        if (!inserted && find(it->second) != c) pending.emplace_back(it->second, c);
      }
    }
    for (const auto& [a, b] : pending) {
      if (merge(a, b)) changed = true;
    }
  }
  // Final pass: canonicalize stored nodes, drop duplicates (first
  // occurrence wins, preserving insertion order), refresh the memo.
  memo_.clear();
  total_nodes_ = 0;
  for (EClassId c = 0; c < classes_.size(); ++c) {
    if (find(c) != c) continue;
    std::vector<ENode> dedup;
    std::set<ENode> seen;
    for (const ENode& raw : classes_[c].nodes) {
      ENode n = canonical(raw);
      if (!seen.insert(n).second) continue;
      memo_.emplace(n, c);
      dedup.push_back(std::move(n));
    }
    classes_[c].nodes = std::move(dedup);
    total_nodes_ += classes_[c].nodes.size();
  }
  dirty_.clear();
}

std::optional<std::uint64_t> EGraph::const_value(EClassId c) const {
  for (const ENode& n : classes_[find(c)].nodes) {
    if (n.kind == CellKind::Constant) return n.param;
  }
  return std::nullopt;
}

std::vector<EClassId> EGraph::class_ids() const {
  std::vector<EClassId> out;
  for (EClassId c = 0; c < classes_.size(); ++c) {
    if (find(c) == c) out.push_back(c);
  }
  return out;
}

std::size_t EGraph::num_classes() const {
  std::size_t n = 0;
  for (EClassId c = 0; c < classes_.size(); ++c) {
    if (find(c) == c) ++n;
  }
  return n;
}

unsigned EGraph::node_width(CellKind kind, std::uint64_t param,
                            const std::vector<unsigned>& child_widths) {
  const auto w = [&](std::size_t i) { return child_widths.at(i); };
  switch (kind) {
    case CellKind::Add:
    case CellKind::Sub:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor:
      return std::max(w(0), w(1));
    case CellKind::Mul:
      return std::min(64u, w(0) + w(1));
    case CellKind::Eq:
    case CellKind::Lt:
      return 1;
    case CellKind::Shl:
    case CellKind::Shr:
      (void)param;
      return w(0);
    case CellKind::Not:
    case CellKind::Buf:
      return w(0);
    case CellKind::Mux2:
      return std::max(w(1), w(2));
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
      return w(0);
    default:
      throw NetlistError("egraph: node_width on non-operator kind '" +
                         std::string(cell_kind_name(kind)) + "'");
  }
}

}  // namespace opiso
