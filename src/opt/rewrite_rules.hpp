#pragma once
// Equality-saturation datapath rewriting in front of operand isolation.
//
// The paper observes (Sec. 6) that the inserted activation logic "made
// additional Boolean optimizations possible"; Coward et al. (PAPERS.md)
// close the loop from the other side — many datapaths only expose good
// isolation candidates *after* algebraic rewriting. This module runs a
// bounded equality saturation over the word-level netlist (opt/egraph.hpp)
// with a fixed, width-sound rule set, then extracts the representative
// netlist that minimizes the paper's own cost ranking
//
//     h(c) = ωp·rP − ωa·rA      (Sec. 5.1)
//
// evaluated per e-node: estimated macro-model power at activity rates
// measured by a short profiling simulation — discounted by the measured
// register idle probability for isolatable arithmetic, so the extractor
// prefers forms whose expensive operators sit behind idle enables — plus
// the ωa-weighted area term. Minimizing the summed per-node cost is the
// same ordering as maximizing Σ h over the isolation candidates the
// rewritten netlist will expose.
//
// Safety: every rewrite rule is width-sound by construction (merges
// across widths are rejected by the e-graph), saturation is bounded by
// the PR-4 resource-budget pattern (node/iteration caps degrade to
// "input unchanged", never fail), and every extracted netlist must pass
// verify::equiv before it replaces the input — a verification failure
// or BDD-budget blow-up falls back to the original netlist and says so
// in the opiso.rewrite/v1 report section.

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.hpp"
#include "obs/json.hpp"

namespace opiso {

struct RewriteOptions {
  unsigned max_iterations = 8;       ///< saturation rounds (iteration cap)
  std::size_t max_nodes = 20000;     ///< e-node cap; exceeded => input unchanged
  std::uint64_t profile_seed = 0x5EED0001;  ///< profiling-sim stimulus seed
  std::uint64_t profile_cycles = 256;       ///< measured profiling cycles
  std::uint64_t profile_warmup = 32;        ///< reset-transient flush
  double omega_p = 1.0;              ///< paper's ωp (power weight)
  double omega_a = 0.2;              ///< paper's ωa (area weight)
  unsigned iso_min_width = 2;        ///< isolatable-arith width floor (CandidateConfig)
  std::size_t bdd_node_budget = 1u << 20;  ///< verify::equiv BDD budget (0 = unlimited)
  bool verify = true;                ///< gate extraction behind verify::equiv
};

struct RewriteResult {
  Netlist netlist;             ///< rewritten (and verified) netlist, or the input
  bool rewritten = false;      ///< extraction improved the cost and was emitted
  bool verified = false;       ///< verify::equiv proved the emitted netlist
  std::string fallback_reason; ///< why the input was kept (empty when rewritten)

  unsigned iterations = 0;     ///< saturation rounds actually run
  bool saturated = false;      ///< rule set reached a fixpoint within budget
  bool budget_exhausted = false;  ///< node cap hit (=> fallback)
  std::size_t egraph_classes = 0;
  std::size_t egraph_nodes = 0;
  std::map<std::string, std::uint64_t> rules_fired;  ///< per rule-name merge count

  double cost_before = 0.0;    ///< Σ node cost of the input netlist
  double cost_after = 0.0;     ///< Σ node cost of the extracted netlist
  double est_power_before_mw = 0.0;  ///< macro-model power at profiled activity
  double est_power_after_mw = 0.0;   ///< same, re-profiled on the rewritten netlist
  double pr_idle = 0.0;        ///< measured width-weighted register idle probability
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
  std::size_t verify_obligations = 0;  ///< obligations verify::equiv discharged
};

/// Rewrite `nl` under `opt`. Never throws for resource reasons and never
/// returns an unverified netlist: every non-identity result passed
/// verify::equiv (unless opt.verify is disabled, for tests). The input
/// must validate; latch-bearing designs fall back immediately (the
/// equivalence checker has no latch semantics).
[[nodiscard]] RewriteResult rewrite_datapath(const Netlist& nl, const RewriteOptions& opt = {});

/// The opiso.rewrite/v1 run-report section: rules fired, e-graph size,
/// extraction cost deltas, verification status. Deterministic for a
/// given (netlist, options) — the profiling simulation is always the
/// scalar engine with a fixed seed, independent of thread count or the
/// simulation engine the surrounding flow uses.
[[nodiscard]] obs::JsonValue rewrite_report_section(const RewriteResult& r);

}  // namespace opiso
