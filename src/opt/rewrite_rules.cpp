#include "opt/rewrite_rules.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "netlist/traversal.hpp"
#include "obs/metrics.hpp"
#include "opt/egraph.hpp"
#include "power/area_model.hpp"
#include "power/estimator.hpp"
#include "sim/simulator.hpp"
#include "sim/stimulus.hpp"
#include "support/error.hpp"
#include "verify/equiv.hpp"

namespace opiso {
namespace {

std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Sequential/boundary cells whose outputs the rewriter treats as
/// opaque leaves: the e-graph never looks through state.
bool is_leaf_kind(CellKind kind) {
  return kind == CellKind::PrimaryInput || kind == CellKind::Reg || cell_kind_is_latch(kind);
}

bool is_op_kind(CellKind kind) {
  return !is_leaf_kind(kind) && kind != CellKind::Constant && kind != CellKind::PrimaryOutput;
}

/// Word-level evaluation of one operator — identical semantics to the
/// simulator's eval_scalar_cell and the optimizer's constant folder:
/// inputs are masked to their own widths already, the result is masked
/// to the node's width.
std::uint64_t eval_node(CellKind kind, std::uint64_t param, unsigned out_width,
                        const std::vector<std::uint64_t>& in) {
  std::uint64_t out = 0;
  switch (kind) {
    case CellKind::Add: out = in[0] + in[1]; break;
    case CellKind::Sub: out = in[0] - in[1]; break;
    case CellKind::Mul: out = in[0] * in[1]; break;
    case CellKind::Eq: out = in[0] == in[1]; break;
    case CellKind::Lt: out = in[0] < in[1]; break;
    case CellKind::Shl: out = param >= 64 ? 0 : in[0] << param; break;
    case CellKind::Shr: out = param >= 64 ? 0 : in[0] >> param; break;
    case CellKind::Not: out = ~in[0]; break;
    case CellKind::Buf: out = in[0]; break;
    case CellKind::And: out = in[0] & in[1]; break;
    case CellKind::Or: out = in[0] | in[1]; break;
    case CellKind::Xor: out = in[0] ^ in[1]; break;
    case CellKind::Nand: out = ~(in[0] & in[1]); break;
    case CellKind::Nor: out = ~(in[0] | in[1]); break;
    case CellKind::Xnor: out = ~(in[0] ^ in[1]); break;
    case CellKind::Mux2: out = (in[0] & 1) ? in[2] : in[1]; break;
    case CellKind::IsoAnd: out = (in[1] & 1) ? in[0] : 0; break;
    case CellKind::IsoOr: out = (in[1] & 1) ? in[0] : ~std::uint64_t{0}; break;
    default: throw NetlistError("rewrite: eval_node on non-operator kind");
  }
  return out & width_mask(out_width);
}

// ---------------------------------------------------------------------
// Netlist -> e-graph
// ---------------------------------------------------------------------

struct GraphBuild {
  EGraph g;
  std::vector<EClassId> class_of_net;  ///< old net -> class (where has_class)
  std::vector<char> has_class;
  std::vector<std::string> hint;       ///< class id (at allocation) -> net name
};

GraphBuild build_egraph(const Netlist& nl) {
  GraphBuild b;
  b.class_of_net.assign(nl.num_nets(), 0);
  b.has_class.assign(nl.num_nets(), 0);
  for (CellId id : topological_order(nl)) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::PrimaryOutput) continue;
    ENode n;
    n.width = c.width;
    if (is_leaf_kind(c.kind)) {
      n.kind = c.kind;
      n.param = c.out.value();
    } else if (c.kind == CellKind::Constant) {
      n.kind = CellKind::Constant;
      n.param = c.param & width_mask(c.width);
    } else {
      n.kind = c.kind;
      n.param = (c.kind == CellKind::Shl || c.kind == CellKind::Shr) ? c.param : 0;
      n.children.reserve(c.ins.size());
      for (NetId in : c.ins) {
        OPISO_REQUIRE(b.has_class[in.value()], "rewrite: input net without e-class");
        n.children.push_back(b.class_of_net[in.value()]);
      }
    }
    const EClassId cls = b.g.add(std::move(n));
    b.class_of_net[c.out.value()] = cls;
    b.has_class[c.out.value()] = 1;
    if (cls >= b.hint.size()) b.hint.resize(cls + 1);
    if (b.hint[cls].empty()) b.hint[cls] = nl.net(c.out).name;
  }
  return b;
}

// ---------------------------------------------------------------------
// Rule set (width-sound by construction; see each rule's guard)
// ---------------------------------------------------------------------

bool is_commutative(CellKind k) {
  switch (k) {
    case CellKind::Add:
    case CellKind::Mul:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Nand:
    case CellKind::Nor:
    case CellKind::Xnor:
    case CellKind::Eq:
      return true;
    default:
      return false;
  }
}

bool is_associative(CellKind k) {
  // Sub is not associative; Add needs the width guard applied at the
  // match site (intermediate truncation must agree on both groupings).
  switch (k) {
    case CellKind::Add:
    case CellKind::Mul:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
      return true;
    default:
      return false;
  }
}

/// Operators muxes may be hoisted through. Add/Sub additionally need
/// the no-differential-truncation width guards checked at the site.
bool is_mux_hoistable(CellKind k) {
  switch (k) {
    case CellKind::Add:
    case CellKind::Sub:
    case CellKind::Mul:
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
      return true;
    default:
      return false;
  }
}

struct Saturator {
  EGraph& g;
  const RewriteOptions& opt;
  std::map<std::string, std::uint64_t>& fired;
  std::uint64_t merges_done = 0;

  EClassId mk(CellKind kind, std::uint64_t param, std::vector<EClassId> children) {
    std::vector<unsigned> ws;
    ws.reserve(children.size());
    for (EClassId c : children) ws.push_back(g.width(c));
    ENode n;
    n.kind = kind;
    n.param = param;
    n.width = EGraph::node_width(kind, param, ws);
    n.children = std::move(children);
    return g.add(std::move(n));
  }

  EClassId mk_const(std::uint64_t value, unsigned width) {
    ENode n;
    n.kind = CellKind::Constant;
    n.param = value & width_mask(width);
    n.width = width;
    return g.add(std::move(n));
  }

  /// Merge with the global width safety net: a rule whose conclusion
  /// lands at a different width than the matched class is silently a
  /// no-op (it would change the value lattice), never an error.
  void unite(EClassId cls, EClassId other, const char* rule) {
    if (g.width(cls) != g.width(other)) return;
    if (g.merge(cls, other)) {
      ++merges_done;
      ++fired[rule];
    }
  }

  /// One saturation round over a snapshot of the graph. Returns true if
  /// the graph changed (merge happened or a genuinely new node stuck).
  bool round() {
    struct Item {
      EClassId cls;
      ENode node;
    };
    std::vector<Item> items;
    for (EClassId c : g.class_ids()) {
      for (const ENode& n : g.nodes(c)) items.push_back(Item{c, n});
    }
    const std::uint64_t merges0 = merges_done;
    const std::size_t nodes0 = g.num_nodes();
    for (const Item& it : items) {
      if (g.num_nodes() > opt.max_nodes) break;
      apply_rules(it.cls, it.node);
    }
    g.rebuild();
    return merges_done != merges0 || g.num_nodes() != nodes0;
  }

  void apply_rules(EClassId cls, const ENode& n) {
    if (!is_op_kind(n.kind)) return;
    const unsigned W = n.width;
    const auto ch = [&](std::size_t i) { return g.find(n.children[i]); };
    const auto cw = [&](std::size_t i) { return g.width(n.children[i]); };
    const auto cv = [&](std::size_t i) { return g.const_value(n.children[i]); };

    // -- constant folding: all operands constant -> fold to a constant.
    {
      bool all_const = !n.children.empty();
      std::vector<std::uint64_t> vals;
      vals.reserve(n.children.size());
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        const auto v = cv(i);
        if (!v) {
          all_const = false;
          break;
        }
        vals.push_back(*v);
      }
      if (all_const) unite(cls, mk_const(eval_node(n.kind, n.param, W, vals), W), "const-fold");
    }

    // -- commutativity.
    if (is_commutative(n.kind) && n.children.size() == 2) {
      unite(cls, mk(n.kind, n.param, {ch(1), ch(0)}), "comm");
    }

    // -- associativity: (a K b) K y  =>  a K (b K y). The symmetric
    // grouping follows from commutativity in a later round. For Add the
    // regrouping is only sound when neither grouping truncates an
    // intermediate below W (counterexample otherwise: widths 1,1,8).
    if (is_associative(n.kind)) {
      const std::vector<ENode> lhs = g.nodes(ch(0));  // copy: adds may reallocate
      for (const ENode& m : lhs) {
        if (m.kind != n.kind) continue;
        const EClassId a = g.find(m.children[0]);
        const EClassId b = g.find(m.children[1]);
        if (n.kind == CellKind::Add) {
          const unsigned inner_w = std::max(g.width(b), g.width(ch(1)));
          if (cw(0) != W || inner_w != W) continue;
        }
        unite(cls, mk(n.kind, 0, {a, mk(n.kind, 0, {b, ch(1)})}), "assoc");
      }
    }

    switch (n.kind) {
      case CellKind::Add:
        if (cv(0) == std::uint64_t{0}) unite(cls, ch(1), "identity");
        if (cv(1) == std::uint64_t{0}) unite(cls, ch(0), "identity");
        break;
      case CellKind::Sub:
        if (cv(1) == std::uint64_t{0}) unite(cls, ch(0), "identity");
        if (ch(0) == ch(1)) unite(cls, mk_const(0, W), "identity");
        break;
      case CellKind::Mul:
        if (cv(0) == std::uint64_t{0} || cv(1) == std::uint64_t{0}) {
          unite(cls, mk_const(0, W), "identity");
        }
        if (const auto c1 = cv(1)) mul_const_decompose(cls, W, ch(0), *c1);
        if (const auto c0 = cv(0)) mul_const_decompose(cls, W, ch(1), *c0);
        break;
      case CellKind::And:
        if (cv(0) == std::uint64_t{0} || cv(1) == std::uint64_t{0}) {
          unite(cls, mk_const(0, W), "identity");
        }
        // All-ones identity: sound only when the constant spans the
        // full output word (a narrower ones-constant still masks).
        if (cv(0) == width_mask(cw(0)) && cw(0) == W) unite(cls, ch(1), "identity");
        if (cv(1) == width_mask(cw(1)) && cw(1) == W) unite(cls, ch(0), "identity");
        if (ch(0) == ch(1)) unite(cls, ch(0), "identity");
        break;
      case CellKind::Or:
        if (cv(0) == std::uint64_t{0}) unite(cls, ch(1), "identity");
        if (cv(1) == std::uint64_t{0}) unite(cls, ch(0), "identity");
        if (ch(0) == ch(1)) unite(cls, ch(0), "identity");
        if (((cv(0) == width_mask(cw(0))) || (cv(1) == width_mask(cw(1)))) && cw(0) == W &&
            cw(1) == W) {
          unite(cls, mk_const(width_mask(W), W), "identity");
        }
        break;
      case CellKind::Xor:
        if (cv(0) == std::uint64_t{0}) unite(cls, ch(1), "identity");
        if (cv(1) == std::uint64_t{0}) unite(cls, ch(0), "identity");
        if (ch(0) == ch(1)) unite(cls, mk_const(0, W), "identity");
        break;
      case CellKind::Eq:
        if (ch(0) == ch(1)) unite(cls, mk_const(1, 1), "identity");
        break;
      case CellKind::Lt:
        if (ch(0) == ch(1)) unite(cls, mk_const(0, 1), "identity");
        break;
      case CellKind::Shl:
      case CellKind::Shr:
        if (n.param == 0) unite(cls, ch(0), "identity");
        break;
      case CellKind::Buf:
        unite(cls, ch(0), "identity");
        break;
      case CellKind::Not: {
        const std::vector<ENode> inner = g.nodes(ch(0));
        for (const ENode& m : inner) {
          if (m.kind == CellKind::Not) unite(cls, g.find(m.children[0]), "identity");
        }
        break;
      }
      case CellKind::Mux2: {
        if (const auto sel = cv(0)) unite(cls, (*sel & 1) ? ch(2) : ch(1), "identity");
        if (ch(1) == ch(2)) unite(cls, ch(1), "identity");
        mux_factor(cls, W, ch(0), ch(1), ch(2));
        break;
      }
      case CellKind::IsoAnd:
        if (const auto as = cv(1)) {
          if ((*as & 1) == 1) unite(cls, ch(0), "identity");
          else unite(cls, mk_const(0, W), "identity");
        }
        break;
      case CellKind::IsoOr:
        if (const auto as = cv(1)) {
          if ((*as & 1) == 1) unite(cls, ch(0), "identity");
          else unite(cls, mk_const(width_mask(W), W), "identity");
        }
        break;
      default:
        break;
    }

    // -- mux distribution: K(mux(s,a,b), y) => mux(s, K(a,y), K(b,y)),
    // both operand sides. The inverse (factoring) is matched on Mux2
    // nodes above.
    if (is_mux_hoistable(n.kind) && n.children.size() == 2) {
      mux_distribute(cls, n.kind, W, ch(0), ch(1), /*mux_on_left=*/true);
      mux_distribute(cls, n.kind, W, ch(1), ch(0), /*mux_on_left=*/false);
    }
  }

  /// mux(s, K(a,c), K(b,c)) => K(mux(s,a,b), c) — hoist the shared
  /// operator out of the mux legs (shared operand on either side).
  /// For Add/Sub both legs must already be W wide, otherwise the
  /// narrow leg's truncation has no counterpart after hoisting.
  void mux_factor(EClassId cls, unsigned W, EClassId s, EClassId leg_a, EClassId leg_b) {
    const std::vector<ENode> an = g.nodes(leg_a);
    const std::vector<ENode> bn = g.nodes(leg_b);
    for (const ENode& p : an) {
      if (!is_mux_hoistable(p.kind)) continue;
      for (const ENode& q : bn) {
        if (q.kind != p.kind) continue;
        if ((p.kind == CellKind::Add || p.kind == CellKind::Sub) &&
            (g.width(leg_a) != W || g.width(leg_b) != W)) {
          continue;
        }
        const EClassId pa = g.find(p.children[0]);
        const EClassId pb = g.find(p.children[1]);
        const EClassId qa = g.find(q.children[0]);
        const EClassId qb = g.find(q.children[1]);
        if (pb == qb && g.width(pa) == g.width(qa)) {
          unite(cls, mk(p.kind, 0, {mk(CellKind::Mux2, 0, {s, pa, qa}), pb}), "mux-factor");
        }
        if (pa == qa && g.width(pb) == g.width(qb)) {
          unite(cls, mk(p.kind, 0, {pa, mk(CellKind::Mux2, 0, {s, pb, qb})}), "mux-factor");
        }
      }
    }
  }

  /// K(mux(s,a,b), y) => mux(s, K(a,y), K(b,y)) (and mirrored when the
  /// mux is the right operand). For Add/Sub every leg must compute at
  /// the full width W so no leg truncates where the original did not.
  void mux_distribute(EClassId cls, CellKind k, unsigned W, EClassId mux_side, EClassId other,
                      bool mux_on_left) {
    const std::vector<ENode> muxes = g.nodes(mux_side);
    for (const ENode& m : muxes) {
      if (m.kind != CellKind::Mux2) continue;
      const EClassId s = g.find(m.children[0]);
      const EClassId a = g.find(m.children[1]);
      const EClassId b = g.find(m.children[2]);
      if (k == CellKind::Add || k == CellKind::Sub) {
        const unsigned wo = g.width(other);
        if (std::max(g.width(a), wo) != W || std::max(g.width(b), wo) != W) continue;
      }
      const EClassId la = mux_on_left ? mk(k, 0, {a, other}) : mk(k, 0, {other, a});
      const EClassId lb = mux_on_left ? mk(k, 0, {b, other}) : mk(k, 0, {other, b});
      if (g.width(la) != g.width(lb)) continue;
      unite(cls, mk(CellKind::Mux2, 0, {s, la, lb}), "mux-distribute");
    }
  }

  /// x * C => sum/difference of shifts of zero-extended x. Exact at any
  /// width: the product width W admits the full shifted terms, and the
  /// mod-2^W arithmetic of Add/Sub/Shl matches Mul's own truncation.
  /// Handles C = 2^k, 2^k + 2^j and 2^k - 2^j (covers 3, 5, 6, 7, 10,
  /// 12, 14, ... — the common filter coefficients).
  void mul_const_decompose(EClassId cls, unsigned W, EClassId x, std::uint64_t c) {
    if (c == 0) return;  // annihilator rule handles it
    const auto zext = [&](EClassId v) {
      // No explicit zext cell exists; Or with a W-wide zero constant is
      // the width-adapter idiom (value-identical, W wide).
      if (g.width(v) == W) return v;
      return mk(CellKind::Or, 0, {v, mk_const(0, W)});
    };
    const auto term = [&](unsigned k) {
      return k == 0 ? zext(x) : mk(CellKind::Shl, k, {zext(x)});
    };
    const auto floor_log2 = [](std::uint64_t v) {
      unsigned k = 0;
      while (v >>= 1) ++k;
      return k;
    };
    const bool pow2 = (c & (c - 1)) == 0;
    if (c == 1) {
      unite(cls, zext(x), "mul-shift-add");
    } else if (pow2) {
      unite(cls, term(floor_log2(c)), "mul-shift-add");
    } else if (__builtin_popcountll(c) == 2) {
      const unsigned k = floor_log2(c);
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(c));
      unite(cls, mk(CellKind::Add, 0, {term(k), term(j)}), "mul-shift-add");
    } else {
      const unsigned j = static_cast<unsigned>(__builtin_ctzll(c));
      const std::uint64_t up = c + (std::uint64_t{1} << j);
      if (up != 0 && (up & (up - 1)) == 0) {
        unite(cls, mk(CellKind::Sub, 0, {term(floor_log2(up)), term(j)}), "mul-shift-add");
      }
    }
  }
};

// ---------------------------------------------------------------------
// Profiling + isolation-aware extraction
// ---------------------------------------------------------------------

/// Per-net settled-value tape of the profiling run.
class TapeSink final : public FrameSink {
 public:
  std::vector<std::vector<std::uint64_t>> frames;
  void on_frame(std::uint64_t, const std::uint64_t* data, std::size_t n) override {
    frames.emplace_back(data, data + n);
  }
};

struct Profile {
  std::vector<std::vector<std::uint64_t>> frames;  ///< per cycle, per net
  ActivityStats stats;
  double pr_idle = 0.0;  ///< width-weighted mean Pr(reg EN == 0)
};

Profile profile_activity(const Netlist& nl, const RewriteOptions& opt) {
  Profile p;
  Simulator sim(nl);
  UniformStimulus stim(opt.profile_seed);
  sim.warmup(stim, opt.profile_warmup);
  TapeSink tape;
  sim.set_frame_sink(&tape);
  sim.run(stim, opt.profile_cycles);
  sim.set_frame_sink(nullptr);
  p.frames = std::move(tape.frames);
  p.stats = sim.stats();
  double wsum = 0.0, isum = 0.0;
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::Reg) continue;
    wsum += c.width;
    isum += c.width * (1.0 - p.stats.prob_one(c.ins[1]));
  }
  p.pr_idle = wsum > 0.0 ? isum / wsum : 0.0;
  return p;
}

/// Per-node extraction cost implementing the paper's ranking
/// h(c) = ωp·rP − ωa·rA: normalized macro power at the profiled toggle
/// rates — discounted by the measured register idle probability for
/// isolatable arithmetic, since that fraction is what operand isolation
/// downstream can recover — plus the ωa-weighted cell area. Leaves and
/// constants are free.
struct CostModel {
  MacroPowerModel power;
  AreaModel area;
  double p0 = 1.0;  ///< normalizer: estimated input-netlist power
  double a0 = 1.0;  ///< normalizer: input-netlist area
  double pr_idle = 0.0;
  double omega_p = 1.0;
  double omega_a = 0.2;
  unsigned iso_min_width = 2;

  double node_cost(const EGraph& g, const ENode& n, const std::vector<double>& rate) const {
    if (!is_op_kind(n.kind)) return 0.0;
    std::vector<double> rates;
    rates.reserve(n.children.size());
    for (EClassId c : n.children) rates.push_back(rate[g.find(c)]);
    double pw = power.module_power_mw(n.kind, n.width, rates);
    if (cell_kind_is_arith(n.kind) && n.width >= iso_min_width) pw *= (1.0 - pr_idle);
    const double aw = area.cell_area_um2(n.kind, n.width);
    return omega_p * (pw / p0) + omega_a * (aw / a0);
  }
};

struct Extraction {
  std::vector<ENode> choice;    ///< per class: min-cost node
  std::vector<char> has_choice;
  std::vector<double> cost;     ///< per class: min DAG-node cost sum (tree-shared)
  std::vector<double> rate;     ///< per class: toggles/cycle of the class value
};

/// Evaluate every e-class's value stream over the profiling tape (all
/// nodes of a class are equivalent, so any evaluable representative
/// serves), then pick the min-cost node per class by fixpoint. Both
/// passes iterate classes in canonical-id order with strict-improvement
/// updates, so results are bitwise deterministic.
Extraction extract(const EGraph& g, const GraphBuild& b, const Profile& prof,
                   const CostModel& cm) {
  const std::size_t slots = [&] {
    std::size_t mx = 0;
    for (EClassId c : g.class_ids()) mx = std::max<std::size_t>(mx, c + 1);
    return mx;
  }();
  const std::size_t T = prof.frames.size();
  OPISO_REQUIRE(T >= 2, "rewrite: profiling produced fewer than 2 frames");

  // Pass 1: class value streams, in evaluability order.
  std::vector<std::vector<std::uint64_t>> vals(slots);
  std::vector<char> evaluated(slots, 0);
  std::vector<EClassId> order;
  bool progress = true;
  while (progress) {
    progress = false;
    for (EClassId c : g.class_ids()) {
      if (evaluated[c]) continue;
      for (const ENode& n : g.nodes(c)) {
        bool ready = true;
        if (is_op_kind(n.kind)) {
          for (EClassId chc : n.children) {
            if (!evaluated[g.find(chc)]) {
              ready = false;
              break;
            }
          }
        }
        if (!ready) continue;
        std::vector<std::uint64_t>& v = vals[c];
        v.resize(T);
        const std::uint64_t m = width_mask(n.width);
        if (n.kind == CellKind::Constant) {
          for (std::size_t t = 0; t < T; ++t) v[t] = n.param & m;
        } else if (is_leaf_kind(n.kind)) {
          const std::size_t net = static_cast<std::size_t>(n.param);
          for (std::size_t t = 0; t < T; ++t) v[t] = prof.frames[t][net] & m;
        } else {
          std::vector<std::uint64_t> ins(n.children.size());
          for (std::size_t t = 0; t < T; ++t) {
            for (std::size_t i = 0; i < n.children.size(); ++i) {
              ins[i] = vals[g.find(n.children[i])][t];
            }
            v[t] = eval_node(n.kind, n.param, n.width, ins);
          }
        }
        evaluated[c] = 1;
        order.push_back(c);
        progress = true;
        break;
      }
    }
  }

  Extraction ex;
  ex.rate.assign(slots, 0.0);
  for (EClassId c : order) {
    std::uint64_t toggles = 0;
    for (std::size_t t = 1; t < T; ++t) {
      toggles += static_cast<std::uint64_t>(__builtin_popcountll(vals[c][t] ^ vals[c][t - 1]));
    }
    ex.rate[c] = static_cast<double>(toggles) / static_cast<double>(T - 1);
  }

  // Pass 2: min-cost representative per class.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ex.cost.assign(slots, kInf);
  ex.choice.resize(slots);
  ex.has_choice.assign(slots, 0);
  progress = true;
  while (progress) {
    progress = false;
    for (EClassId c : g.class_ids()) {
      for (const ENode& n : g.nodes(c)) {
        double total = cm.node_cost(g, n, ex.rate);
        bool ok = true;
        for (EClassId chc : n.children) {
          const double cc = ex.cost[g.find(chc)];
          if (!(cc < kInf)) {
            ok = false;
            break;
          }
          total += cc;
        }
        if (ok && total < ex.cost[c] - 1e-12) {
          ex.cost[c] = total;
          ex.choice[c] = n;
          ex.has_choice[c] = 1;
          progress = true;
        }
      }
    }
  }
  (void)b;
  return ex;
}

// ---------------------------------------------------------------------
// Emission: extracted e-graph -> netlist
// ---------------------------------------------------------------------

/// The emitter preserves exactly what verify::equiv matches by name or
/// position: primary-input names, register/latch output-net names and
/// widths, register/latch cell names, and primary-output order. All
/// interior nets are fresh.
struct Emitter {
  const Netlist& old;
  const EGraph& g;
  const GraphBuild& b;
  const Extraction& ex;
  Netlist out;
  std::map<EClassId, NetId> done;  ///< canonical class -> emitted net
  double emitted_cost = 0.0;       ///< Σ node cost over emitted cells (DAG)
  const std::vector<double>* rate = nullptr;
  const CostModel* cm = nullptr;

  explicit Emitter(const Netlist& nl, const EGraph& graph, const GraphBuild& build,
                   const Extraction& extraction)
      : old(nl), g(graph), b(build), ex(extraction), out(nl.name()) {}

  std::string hint_name(EClassId c) const {
    if (c < b.hint.size() && !b.hint[c].empty()) return b.hint[c];
    return "rw";
  }

  NetId emit(EClassId c0) {
    const EClassId c = g.find(c0);
    const auto it = done.find(c);
    if (it != done.end()) return it->second;
    OPISO_REQUIRE(ex.has_choice[c], "rewrite: extraction left class " + std::to_string(c) +
                                        " without a representative");
    const ENode& n = ex.choice[c];
    NetId net;
    if (n.kind == CellKind::Constant) {
      net = out.add_const(out.fresh_net_name(hint_name(c)), n.param, n.width);
    } else {
      OPISO_REQUIRE(is_op_kind(n.kind), "rewrite: leaf class was not pre-seeded");
      std::vector<NetId> ins;
      ins.reserve(n.children.size());
      for (EClassId chc : n.children) ins.push_back(emit(chc));
      net = out.add_net(out.fresh_net_name(hint_name(c)), n.width);
      out.add_cell(n.kind, out.fresh_cell_name(hint_name(c)), ins, net, n.param);
      if (cm != nullptr) emitted_cost += cm->node_cost(g, n, *rate);
    }
    done.emplace(c, net);
    return net;
  }

  Netlist run() {
    // Boundary first: PIs keep their names; state output nets keep
    // their exact original names (verify::equiv matches registers by
    // lowered Q-bit-net name).
    for (CellId id : old.cell_ids()) {
      const Cell& c = old.cell(id);
      if (c.kind == CellKind::PrimaryInput) {
        const NetId pi = out.add_input(old.net(c.out).name, c.width);
        done.emplace(g.find(b.class_of_net[c.out.value()]), pi);
      } else if (c.kind == CellKind::Reg || cell_kind_is_latch(c.kind)) {
        const NetId q = out.add_net(old.net(c.out).name, c.width);
        done.emplace(g.find(b.class_of_net[c.out.value()]), q);
      }
    }
    // Cones: state D/EN first, then POs; state cells go in last (the
    // simulator's topological order seeds all sources ahead of
    // combinational logic regardless of creation order).
    struct StatePatch {
      CellKind kind;
      std::string name;
      NetId d, en, q;
    };
    std::vector<StatePatch> patches;
    for (CellId id : old.cell_ids()) {
      const Cell& c = old.cell(id);
      if (c.kind != CellKind::Reg && !cell_kind_is_latch(c.kind)) continue;
      StatePatch p;
      p.kind = c.kind;
      p.name = c.name;
      p.d = emit(b.class_of_net[c.ins[0].value()]);
      p.en = emit(b.class_of_net[c.ins[1].value()]);
      p.q = done.at(g.find(b.class_of_net[c.out.value()]));
      patches.push_back(std::move(p));
    }
    std::vector<std::pair<std::string, NetId>> pos;
    for (CellId id : old.cell_ids()) {
      const Cell& c = old.cell(id);
      if (c.kind != CellKind::PrimaryOutput) continue;
      pos.emplace_back(c.name, emit(b.class_of_net[c.ins[0].value()]));
    }
    for (const StatePatch& p : patches) {
      out.add_cell(p.kind, p.name, {p.d, p.en}, p.q);
    }
    for (const auto& [name, net] : pos) out.add_output(name, net);
    out.validate();
    return std::move(out);
  }
};

bool netlist_has_latches(const Netlist& nl) {
  for (CellId id : nl.cell_ids()) {
    if (cell_kind_is_latch(nl.cell(id).kind)) return true;
  }
  return false;
}

}  // namespace

RewriteResult rewrite_datapath(const Netlist& nl, const RewriteOptions& opt) {
  nl.validate();
  obs::metrics().counter("rewrite.runs").add(1);
  RewriteResult res;
  res.netlist = nl;
  res.cells_before = nl.num_cells();
  res.cells_after = nl.num_cells();
  if (netlist_has_latches(nl)) {
    res.fallback_reason = "latch-bearing design: verify::equiv has no latch semantics";
    obs::metrics().counter("rewrite.fallbacks").add(1);
    return res;
  }
  bool has_pi = false;
  for (CellId id : nl.cell_ids()) {
    if (nl.cell(id).kind == CellKind::PrimaryInput) has_pi = true;
  }
  if (!has_pi) {
    res.fallback_reason = "design has no primary inputs to profile";
    obs::metrics().counter("rewrite.fallbacks").add(1);
    return res;
  }

  try {
    // 1. Profile the input netlist (always the scalar engine with a
    //    fixed seed: the report section must be bitwise identical no
    //    matter which engine/thread count the surrounding flow uses).
    const Profile prof = profile_activity(nl, opt);

    // 2. Saturate.
    GraphBuild b = build_egraph(nl);
    Saturator sat{b.g, opt, res.rules_fired};
    for (unsigned it = 0; it < opt.max_iterations; ++it) {
      if (b.g.num_nodes() > opt.max_nodes) break;
      ++res.iterations;
      if (!sat.round()) {
        res.saturated = true;
        break;
      }
    }
    res.egraph_classes = b.g.num_classes();
    res.egraph_nodes = b.g.num_nodes();
    if (b.g.num_nodes() > opt.max_nodes) {
      res.budget_exhausted = true;
      res.fallback_reason = "e-node budget exhausted (" + std::to_string(b.g.num_nodes()) +
                            " > " + std::to_string(opt.max_nodes) + ")";
      obs::metrics().counter("rewrite.budget_fallbacks").add(1);
      return res;
    }

    // 3. Extract with the isolation-aware cost model.
    CostModel cm;
    cm.pr_idle = prof.pr_idle;
    cm.omega_p = opt.omega_p;
    cm.omega_a = opt.omega_a;
    cm.iso_min_width = opt.iso_min_width;
    PowerEstimator estimator(cm.power);
    res.est_power_before_mw = estimator.estimate(nl, prof.stats).total_mw;
    cm.p0 = res.est_power_before_mw > 0.0 ? res.est_power_before_mw : 1.0;
    const double a0 = cm.area.total_area_um2(nl);
    cm.a0 = a0 > 0.0 ? a0 : 1.0;
    res.pr_idle = prof.pr_idle;
    const Extraction ex = extract(b.g, b, prof, cm);

    // Cost of the input netlist under the identical model (same class
    // toggle rates), so the comparison is apples-to-apples.
    double cost_before = 0.0;
    for (CellId id : nl.cell_ids()) {
      const Cell& c = nl.cell(id);
      if (!is_op_kind(c.kind) || c.kind == CellKind::PrimaryOutput) continue;
      ENode n;
      n.kind = c.kind;
      n.param = (c.kind == CellKind::Shl || c.kind == CellKind::Shr) ? c.param : 0;
      n.width = c.width;
      for (NetId in : c.ins) n.children.push_back(b.class_of_net[in.value()]);
      cost_before += cm.node_cost(b.g, n, ex.rate);
    }
    res.cost_before = cost_before;

    // 4. Emit + verify.
    Emitter em(nl, b.g, b, ex);
    em.cm = &cm;
    em.rate = &ex.rate;
    Netlist rewritten = em.run();
    res.cost_after = em.emitted_cost;
    if (!(res.cost_after < res.cost_before - 1e-12)) {
      res.fallback_reason = "extraction found no cheaper representative";
      obs::metrics().counter("rewrite.no_improvement").add(1);
      return res;
    }
    if (opt.verify) {
      BddBudget budget;
      budget.max_nodes = opt.bdd_node_budget;
      const EquivResult eq = check_isolation_equivalence(nl, rewritten, budget);
      res.verify_obligations = eq.obligations_checked;
      if (!eq.equivalent) {
        res.fallback_reason = "verify::equiv rejected the extraction: " + eq.reason;
        obs::metrics().counter("rewrite.verify_rejections").add(1);
        return res;
      }
      res.verified = true;
    }
    res.cells_after = rewritten.num_cells();
    res.netlist = std::move(rewritten);
    res.rewritten = true;
    obs::metrics().counter("rewrite.applied").add(1);

    // 5. Honest power delta: re-profile the rewritten netlist with the
    //    same stimulus and report the macro-model estimate.
    const Profile after = profile_activity(res.netlist, opt);
    res.est_power_after_mw = estimator.estimate(res.netlist, after.stats).total_mw;
  } catch (const ResourceError& e) {
    res.netlist = nl;
    res.rewritten = false;
    res.verified = false;
    res.cells_after = nl.num_cells();
    res.fallback_reason = std::string("resource budget: ") + e.what();
    obs::metrics().counter("rewrite.budget_fallbacks").add(1);
  } catch (const Error& e) {
    // The rewrite pass is advisory: any internal failure degrades to
    // the (already validated) input netlist instead of aborting the
    // surrounding isolation flow.
    res.netlist = nl;
    res.rewritten = false;
    res.verified = false;
    res.cells_after = nl.num_cells();
    res.fallback_reason = std::string("internal: ") + e.what();
    obs::metrics().counter("rewrite.fallbacks").add(1);
  }
  return res;
}

obs::JsonValue rewrite_report_section(const RewriteResult& r) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "opiso.rewrite/v1";
  doc["rewritten"] = r.rewritten;
  doc["verified"] = r.verified;
  if (!r.fallback_reason.empty()) doc["fallback_reason"] = r.fallback_reason;
  doc["iterations"] = r.iterations;
  doc["saturated"] = r.saturated;
  doc["budget_exhausted"] = r.budget_exhausted;
  obs::JsonValue eg = obs::JsonValue::object();
  eg["classes"] = static_cast<std::uint64_t>(r.egraph_classes);
  eg["nodes"] = static_cast<std::uint64_t>(r.egraph_nodes);
  doc["egraph"] = std::move(eg);
  obs::JsonValue rules = obs::JsonValue::object();
  for (const auto& [name, count] : r.rules_fired) rules[name] = count;
  doc["rules_fired"] = std::move(rules);
  obs::JsonValue ext = obs::JsonValue::object();
  ext["cost_before"] = r.cost_before;
  ext["cost_after"] = r.cost_after;
  ext["est_power_before_mw"] = r.est_power_before_mw;
  ext["est_power_after_mw"] = r.est_power_after_mw;
  ext["pr_idle"] = r.pr_idle;
  doc["extraction"] = std::move(ext);
  obs::JsonValue cells = obs::JsonValue::object();
  cells["before"] = static_cast<std::uint64_t>(r.cells_before);
  cells["after"] = static_cast<std::uint64_t>(r.cells_after);
  doc["cells"] = std::move(cells);
  obs::JsonValue ver = obs::JsonValue::object();
  ver["obligations_checked"] = static_cast<std::uint64_t>(r.verify_obligations);
  doc["verify"] = std::move(ver);
  return doc;
}

}  // namespace opiso
