#pragma once
// Word-level netlist optimization passes.
//
// optimize() rebuilds the netlist in topological order applying local
// rewrites, then drops everything that cannot reach a primary output:
//
//   * constant folding    — cells whose inputs are all constants become
//                           Constant cells (arith, gates, mux, shifts),
//   * gate simplification — identity/annihilator rewrites (x&0 -> 0,
//                           x&~0 -> x, mux with constant select -> leg,
//                           x^0 -> x, buffers bypassed, x op x folds),
//   * common-subexpression elimination — structurally identical
//                           combinational cells share one instance,
//   * dead-code elimination — cells with no path to any primary output
//                           are removed (unused state machines too).
//
// The passes matter to operand isolation twice over: synthesized
// activation logic can share/shrink (the paper notes the inserted
// AND/OR gates "made additional Boolean optimizations possible", Sec. 6),
// and constant activation functions (f = 0 dead modules) fold away.
//
// Primary inputs are interface and always preserved; primary outputs
// and their cones are the liveness roots. Output order is preserved, so
// optimized netlists stay lock-step comparable with their originals.

#include "netlist/netlist.hpp"

namespace opiso {

struct OptimizeOptions {
  bool constant_fold = true;
  bool simplify = true;  ///< identity/annihilator/idempotence rewrites
  bool cse = true;
  bool dead_code_elim = true;
};

struct OptimizeStats {
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
  std::size_t folded_constants = 0;
  std::size_t simplified = 0;   ///< rewrites that bypassed a cell
  std::size_t cse_merged = 0;
  std::size_t dead_removed = 0;
};

[[nodiscard]] Netlist optimize(const Netlist& nl, const OptimizeOptions& options = {},
                               OptimizeStats* stats = nullptr);

}  // namespace opiso
