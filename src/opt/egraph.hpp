#pragma once
// E-graph over the word-level netlist (equality saturation substrate).
//
// Coward et al. ("Automatic Datapath Optimization using E-Graphs",
// PAPERS.md) showed that datapath rewriting wants an e-graph: a single
// structure holding *every* equivalent form reached by the rule set, so
// extraction can pick the variant with the best cost after the fact
// instead of committing greedily. This implementation keeps the classic
// shape — hashcons + union-find + congruence rebuild — but is tuned for
// determinism rather than raw speed:
//
//   * e-nodes are ordered values keyed by (kind, param, width, child
//     e-classes) and hashconsed through a std::map, so iteration order
//     is a pure function of insertion history, never of pointer values;
//   * union-find always keeps the smaller class id as the canonical
//     representative, so canonical ids are stable across runs;
//   * per-class node lists preserve first-insertion order.
//
// Leaves (primary inputs, register/latch outputs) are opaque e-nodes
// whose `param` is the original NetId — the rewriter never looks through
// the sequential boundary. Constants are keyed by (value, width) so
// equal constants share a class and constant folding is a merge.
//
// Widths are first-class: every e-node carries the inferred output
// width of its operator (identical rules to Netlist::infer_width), and
// merge() refuses to union classes of different widths. Word-level
// rewrites that change an intermediate width are therefore impossible
// to express by accident — the rule set must introduce an explicit
// zero-extension (Or with a wide zero constant) instead.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace opiso {

/// Index of an equivalence class. Not a StrongId: classes are merged and
/// re-canonicalized constantly, and the raw index arithmetic stays local
/// to this module.
using EClassId = std::uint32_t;

/// One operator application over e-classes. For leaf kinds
/// (PrimaryInput / Reg / Latch / IsoLatch) `param` holds the original
/// NetId value and `children` is empty; for Constant `param` is the
/// value; for Shl/Shr it is the shift amount.
struct ENode {
  CellKind kind = CellKind::Constant;
  std::uint64_t param = 0;
  unsigned width = 1;
  std::vector<EClassId> children;

  [[nodiscard]] bool operator<(const ENode& o) const;
  [[nodiscard]] bool operator==(const ENode& o) const;
};

class EGraph {
 public:
  /// Hashcons `n` (children are canonicalized first): returns the
  /// existing class if an identical canonical node is known, otherwise
  /// allocates a fresh class. Never merges.
  EClassId add(ENode n);

  /// Canonical representative of `c`.
  [[nodiscard]] EClassId find(EClassId c) const;

  /// Union two classes; the smaller canonical id wins. Returns true if
  /// the classes were distinct. Throws NetlistError on width mismatch —
  /// a rule produced an unsound rewrite.
  bool merge(EClassId a, EClassId b);

  /// Restore the congruence invariant after a batch of merges: nodes
  /// whose children became equal are re-hashconsed, and classes that now
  /// share a node are merged, to a fixpoint.
  void rebuild();

  [[nodiscard]] unsigned width(EClassId c) const { return classes_[find(c)].width; }

  /// Nodes of the canonical class, in first-insertion order.
  [[nodiscard]] const std::vector<ENode>& nodes(EClassId c) const {
    return classes_[find(c)].nodes;
  }

  /// If the class contains a Constant node, its value.
  [[nodiscard]] std::optional<std::uint64_t> const_value(EClassId c) const;

  /// Canonical class ids, ascending. Deterministic.
  [[nodiscard]] std::vector<EClassId> class_ids() const;

  /// Live (canonical) class count / total stored e-node count.
  [[nodiscard]] std::size_t num_classes() const;
  [[nodiscard]] std::size_t num_nodes() const { return total_nodes_; }

  /// Output width of an operator over child widths — same rules as
  /// Netlist::infer_width, usable before the node exists.
  [[nodiscard]] static unsigned node_width(CellKind kind, std::uint64_t param,
                                           const std::vector<unsigned>& child_widths);

 private:
  struct EClass {
    unsigned width = 1;
    std::vector<ENode> nodes;  ///< canonical-form nodes, insertion order
  };

  [[nodiscard]] ENode canonical(ENode n) const;

  std::vector<EClass> classes_;
  std::vector<EClassId> parent_;      ///< union-find forest
  std::map<ENode, EClassId> memo_;    ///< canonical node -> class (hashcons)
  std::vector<EClassId> dirty_;      ///< classes touched since last rebuild
  std::size_t total_nodes_ = 0;
};

}  // namespace opiso
