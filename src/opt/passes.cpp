#include "opt/passes.hpp"

#include <map>
#include <optional>

#include "netlist/traversal.hpp"

namespace opiso {

namespace {

std::uint64_t width_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Pure word-level semantics of a combinational cell (mirrors the
/// simulator's evaluation; constants only).
std::uint64_t eval_cell(const Cell& c, unsigned out_width, const std::vector<std::uint64_t>& in) {
  std::uint64_t out = 0;
  switch (c.kind) {
    case CellKind::Add: out = in[0] + in[1]; break;
    case CellKind::Sub: out = in[0] - in[1]; break;
    case CellKind::Mul: out = in[0] * in[1]; break;
    case CellKind::Eq: out = in[0] == in[1]; break;
    case CellKind::Lt: out = in[0] < in[1]; break;
    case CellKind::Shl: out = c.param >= 64 ? 0 : in[0] << c.param; break;
    case CellKind::Shr: out = c.param >= 64 ? 0 : in[0] >> c.param; break;
    case CellKind::Not: out = ~in[0]; break;
    case CellKind::Buf: out = in[0]; break;
    case CellKind::And: out = in[0] & in[1]; break;
    case CellKind::Or: out = in[0] | in[1]; break;
    case CellKind::Xor: out = in[0] ^ in[1]; break;
    case CellKind::Nand: out = ~(in[0] & in[1]); break;
    case CellKind::Nor: out = ~(in[0] | in[1]); break;
    case CellKind::Xnor: out = ~(in[0] ^ in[1]); break;
    case CellKind::Mux2: out = (in[0] & 1) ? in[2] : in[1]; break;
    case CellKind::IsoAnd: out = (in[1] & 1) ? in[0] : 0; break;
    case CellKind::IsoOr: out = (in[1] & 1) ? in[0] : ~std::uint64_t{0}; break;
    default: throw Error("eval_cell: not a foldable kind");
  }
  return out & width_mask(out_width);
}

bool is_foldable(CellKind kind) {
  switch (kind) {
    case CellKind::Reg:
    case CellKind::Latch:
    case CellKind::IsoLatch:  // state-holding: folding needs history
    case CellKind::PrimaryInput:
    case CellKind::PrimaryOutput:
    case CellKind::Constant:
      return false;
    default:
      return true;
  }
}

struct Rebuilder {
  const Netlist& old_nl;
  const OptimizeOptions& opt;
  OptimizeStats& stats;
  Netlist out;
  std::vector<NetId> net_map;                      ///< old net -> new net
  std::vector<std::optional<std::uint64_t>> value; ///< new net -> const value
  std::map<std::pair<std::uint64_t, unsigned>, NetId> const_cache;
  /// CSE key: (kind, param, input nets, output width). The width is
  /// part of the key, so two structurally identical cells can only
  /// merge when their results agree bit-for-bit — a hit never needs a
  /// width check, and a mismatch can never poison the cache entry.
  std::map<std::tuple<int, std::uint64_t, std::vector<std::uint32_t>, unsigned>, NetId>
      cse_cache;

  explicit Rebuilder(const Netlist& nl, const OptimizeOptions& o, OptimizeStats& s)
      : old_nl(nl), opt(o), stats(s), out(nl.name()) {
    net_map.assign(nl.num_nets(), NetId::invalid());
  }

  NetId mapped(NetId old_net) const {
    const NetId n = net_map[old_net.value()];
    OPISO_ASSERT(n.valid(), "optimize: input mapped before its driver");
    return n;
  }

  std::optional<std::uint64_t> const_of(NetId new_net) const {
    return value[new_net.value()];
  }

  NetId make_const(std::uint64_t v, unsigned width, const std::string& name_hint) {
    const auto key = std::make_pair(v, width);
    if (auto it = const_cache.find(key); it != const_cache.end()) return it->second;
    const NetId net = out.add_const(out.fresh_net_name(name_hint), v, width);
    value.resize(out.num_nets());
    value[net.value()] = v;
    const_cache.emplace(key, net);
    return net;
  }

  NetId make_cell(CellKind kind, const std::string& cell_name, const std::string& net_name,
                  unsigned width, const std::vector<NetId>& ins, std::uint64_t param) {
    const NetId net = out.add_net(out.fresh_net_name(net_name), width);
    out.add_cell(kind, out.fresh_cell_name(cell_name), ins, net, param);
    value.resize(out.num_nets());
    return net;
  }

  /// Alias: the old cell's output is exactly an existing new net.
  NetId alias(NetId existing, unsigned want_width) {
    if (out.net(existing).width == want_width) {
      ++stats.simplified;
      return existing;
    }
    return NetId::invalid();
  }

  /// Identity/annihilator rewrites; returns invalid if no rule applies.
  NetId simplify(const Cell& c, unsigned out_w, const std::vector<NetId>& in) {
    auto cv = [&](int p) { return const_of(in[static_cast<size_t>(p)]); };
    auto full = [&](int p) { return width_mask(out.net(in[static_cast<size_t>(p)]).width); };
    switch (c.kind) {
      case CellKind::Buf:
        return alias(in[0], out_w);
      case CellKind::Not: {
        // Register Q nets exist before their cells in phase A (the reg
        // cells are created in phase B), so the input may be undriven.
        const CellId drv_id = out.net(in[0]).driver;
        if (!drv_id.valid()) return NetId::invalid();
        const Cell& drv = out.cell(drv_id);
        if (drv.kind == CellKind::Not) return alias(drv.ins[0], out_w);  // double negation
        return NetId::invalid();
      }
      case CellKind::And:
        if (cv(0) == 0 || cv(1) == 0) { ++stats.simplified; return make_const(0, out_w, "zero"); }
        // The all-ones identity needs the constant to span the output
        // word: a narrower ones-constant is zero-extended and masks.
        if (cv(0) == full(0) && out.net(in[0]).width == out_w) return alias(in[1], out_w);
        if (cv(1) == full(1) && out.net(in[1]).width == out_w) return alias(in[0], out_w);
        if (in[0] == in[1]) return alias(in[0], out_w);
        return NetId::invalid();
      case CellKind::Or:
        if (cv(0) == 0) return alias(in[1], out_w);
        if (cv(1) == 0) return alias(in[0], out_w);
        if (in[0] == in[1]) return alias(in[0], out_w);
        if ((cv(0) == full(0) || cv(1) == full(1)) &&
            out.net(in[0]).width == out_w && out.net(in[1]).width == out_w) {
          ++stats.simplified;
          return make_const(width_mask(out_w), out_w, "ones");
        }
        return NetId::invalid();
      case CellKind::Xor:
        if (cv(0) == 0) return alias(in[1], out_w);
        if (cv(1) == 0) return alias(in[0], out_w);
        if (in[0] == in[1]) { ++stats.simplified; return make_const(0, out_w, "zero"); }
        return NetId::invalid();
      case CellKind::Mux2:
        if (cv(0).has_value()) {
          return alias((*cv(0) & 1) ? in[2] : in[1], out_w);
        }
        if (in[1] == in[2]) return alias(in[1], out_w);
        return NetId::invalid();
      case CellKind::Shl:
      case CellKind::Shr:
        if (c.param == 0) return alias(in[0], out_w);
        return NetId::invalid();
      case CellKind::Add:
        if (cv(0) == 0) return alias(in[1], out_w);
        if (cv(1) == 0) return alias(in[0], out_w);
        return NetId::invalid();
      case CellKind::Sub:
        if (cv(1) == 0) return alias(in[0], out_w);
        return NetId::invalid();
      case CellKind::Mul:
        if (cv(0) == 0 || cv(1) == 0) { ++stats.simplified; return make_const(0, out_w, "zero"); }
        return NetId::invalid();
      case CellKind::IsoAnd:
      case CellKind::IsoOr:
      case CellKind::IsoLatch:
        // AS constant-1 banks are transparent wires.
        if (cv(1).has_value() && (*cv(1) & 1) == 1) return alias(in[0], out_w);
        if (c.kind == CellKind::IsoAnd && cv(1) == 0) {
          ++stats.simplified;
          return make_const(0, out_w, "zero");
        }
        // AS constant-0: a dead OR-isolated module forces all-ones,
        // symmetric with the IsoAnd zero rule above (same width guard
        // as the Or ones-rule: only fold when the data input spans the
        // full output word).
        if (c.kind == CellKind::IsoOr && cv(1) == 0 &&
            out.net(in[0]).width == out_w) {
          ++stats.simplified;
          return make_const(width_mask(out_w), out_w, "ones");
        }
        return NetId::invalid();
      default:
        return NetId::invalid();
    }
  }
};

}  // namespace

Netlist optimize(const Netlist& nl, const OptimizeOptions& opt, OptimizeStats* stats_out) {
  nl.validate();
  OptimizeStats stats;
  stats.cells_before = nl.num_cells();

  // ---- liveness: everything that can reach a primary output ----------
  std::vector<bool> live_cell(nl.num_cells(), false);
  {
    std::vector<CellId> work;
    for (CellId po : nl.primary_outputs()) {
      live_cell[po.value()] = true;
      work.push_back(po);
    }
    while (!work.empty()) {
      const CellId id = work.back();
      work.pop_back();
      for (NetId in : nl.cell(id).ins) {
        const CellId drv = nl.net(in).driver;
        if (!live_cell[drv.value()]) {
          live_cell[drv.value()] = true;
          work.push_back(drv);
        }
      }
    }
    if (!opt.dead_code_elim) {
      std::fill(live_cell.begin(), live_cell.end(), true);
    }
  }

  Rebuilder rb(nl, opt, stats);
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (!live_cell[id.value()] && c.kind != CellKind::PrimaryInput) ++stats.dead_removed;
  }

  // ---- phase A0a: primary inputs (interface, original order).
  for (CellId pi : nl.primary_inputs()) {
    const Cell& c = nl.cell(pi);
    const NetId net = rb.out.add_input(nl.net(c.out).name, c.width);
    rb.value.resize(rb.out.num_nets());
    rb.net_map[c.out.value()] = net;
  }

  // ---- phase A0b: live registers. Only their Q nets are created here
  // (register outputs are sources for the combinational rebuild); the
  // Reg cells themselves are added in phase B, once every D/EN cone is
  // mapped, so no placeholder pins or cells ever exist.
  struct RegPatch {
    std::string name;
    NetId q;
    NetId old_d;
    NetId old_en;
  };
  std::vector<RegPatch> patches;
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::Reg || !live_cell[id.value()]) continue;
    const NetId q = rb.out.add_net(rb.out.fresh_net_name(nl.net(c.out).name), c.width);
    rb.value.resize(rb.out.num_nets());
    rb.net_map[c.out.value()] = q;
    patches.push_back(RegPatch{c.name, q, c.ins[0], c.ins[1]});
  }

  // ---- phase A: combinational cells in topological order.
  for (CellId id : topological_order(nl)) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::Reg || c.kind == CellKind::PrimaryOutput ||
        c.kind == CellKind::PrimaryInput) {
      continue;
    }
    if (!live_cell[id.value()]) continue;
    switch (c.kind) {
      case CellKind::Constant: {
        rb.net_map[c.out.value()] = rb.make_const(c.param, c.width, nl.net(c.out).name);
        break;
      }
      default: {
        std::vector<NetId> in;
        in.reserve(c.ins.size());
        for (NetId old_in : c.ins) in.push_back(rb.mapped(old_in));

        // Constant folding.
        if (opt.constant_fold && is_foldable(c.kind)) {
          bool all_const = true;
          std::vector<std::uint64_t> vals;
          for (NetId n : in) {
            const auto v = rb.const_of(n);
            if (!v) {
              all_const = false;
              break;
            }
            vals.push_back(*v);
          }
          if (all_const) {
            rb.net_map[c.out.value()] =
                rb.make_const(eval_cell(c, c.width, vals), c.width, nl.net(c.out).name);
            ++stats.folded_constants;
            break;
          }
        }
        // Local rewrites.
        if (opt.simplify) {
          const NetId rewritten = rb.simplify(c, c.width, in);
          if (rewritten.valid()) {
            rb.net_map[c.out.value()] = rewritten;
            break;
          }
        }
        // Common-subexpression elimination (combinational only).
        if (opt.cse && is_foldable(c.kind) && c.kind != CellKind::IsoLatch) {
          std::vector<std::uint32_t> key_ins;
          for (NetId n : in) key_ins.push_back(n.value());
          const auto key =
              std::make_tuple(static_cast<int>(c.kind), c.param, key_ins, c.width);
          if (auto it = rb.cse_cache.find(key); it != rb.cse_cache.end()) {
            rb.net_map[c.out.value()] = it->second;
            ++stats.cse_merged;
            break;
          }
          const NetId net =
              rb.make_cell(c.kind, c.name, nl.net(c.out).name, c.width, in, c.param);
          rb.cse_cache.emplace(key, net);
          rb.net_map[c.out.value()] = net;
          break;
        }
        rb.net_map[c.out.value()] =
            rb.make_cell(c.kind, c.name, nl.net(c.out).name, c.width, in, c.param);
        break;
      }
    }
  }

  // ---- phase B: create the register cells on their real pins.
  for (const RegPatch& p : patches) {
    rb.out.add_cell(CellKind::Reg, rb.out.fresh_cell_name(p.name),
                    {rb.mapped(p.old_d), rb.mapped(p.old_en)}, p.q);
  }

  // ---- phase C: primary outputs in original order.
  for (CellId po : nl.primary_outputs()) {
    const Cell& c = nl.cell(po);
    rb.out.add_cell(CellKind::PrimaryOutput, rb.out.fresh_cell_name(c.name),
                    {rb.mapped(c.ins[0])}, NetId::invalid());
  }

  rb.out.validate();
  stats.cells_after = rb.out.num_cells();
  if (stats_out) *stats_out = stats;
  return rb.out;
}

}  // namespace opiso
