#include "util/thread_pool.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace opiso {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      ++active_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t executed = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_) break;
      try {
        (*fn_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        ++task_failures_;
        if (!error_ || i < error_index_) {
          error_ = std::current_exception();
          error_index_ = i;
        }
      }
      ++executed;
    }
    const std::uint64_t worker_ns =
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                       std::chrono::steady_clock::now() - t0)
                                       .count());
    busy_ns_.fetch_add(worker_ns, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Report busy time before the completion signal so the caller's
      // snapshot covers every worker that did work this generation.
      if (executed > 0) generation_busy_ns_.push_back(worker_ns);
      done_ += executed;
      --active_;
      // Completion needs every task executed AND every participating
      // worker out of the task loop — a still-active worker may yet
      // touch fn_/n_/next_, which the next generation overwrites.
      if (done_ >= n_ && active_ == 0) done_cv_.notify_all();
    }
    (void)executed;
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  OPISO_REQUIRE(fn != nullptr, "ThreadPool::parallel_for: null function");
  std::lock_guard<std::mutex> job_lock(job_mu_);
  const auto wall0 = std::chrono::steady_clock::now();
  busy_ns_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
    error_ = nullptr;
    error_index_ = 0;
    task_failures_ = 0;
    generation_busy_ns_.clear();
    if (n > queue_depth_max_) queue_depth_max_ = n;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  std::vector<std::uint64_t> worker_busy;
  std::size_t queue_depth_max = 0;
  std::uint64_t task_failures = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return done_ >= n_ && active_ == 0; });
    fn_ = nullptr;
    error = error_;
    worker_busy = generation_busy_ns_;
    queue_depth_max = queue_depth_max_;
    task_failures = task_failures_;
    task_failures_ = 0;
  }

  const std::uint64_t wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           wall0)
          .count());
  obs::MetricsRegistry& m = obs::metrics();
  m.counter("pool.parallel_for").add(1);
  m.counter("pool.tasks").add(n);
  m.counter("pool.busy_ns").add(busy_ns_.load(std::memory_order_relaxed));
  m.gauge("pool.workers").set(static_cast<double>(size()));
  m.gauge("pool.queue_depth_max").set(static_cast<double>(queue_depth_max));
  if (task_failures > 0) m.counter("pool.task_failures").add(task_failures);
  // One sample per worker that ran tasks: the histogram's min/max
  // spread is the load-imbalance signal for this pool.
  for (const std::uint64_t ns : worker_busy) {
    m.histogram("pool.worker_busy_ns").record(static_cast<double>(ns));
  }
  if (wall_ns > 0) {
    m.gauge("pool.occupancy")
        .set(static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) /
             (static_cast<double>(wall_ns) * static_cast<double>(size())));
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace opiso
