#include "util/error.hpp"

namespace opiso {

const char* error_code_name(ErrCode code) noexcept {
  switch (code) {
    case ErrCode::Internal: return "internal";
    case ErrCode::Io: return "io";
    case ErrCode::Usage: return "usage";
    case ErrCode::ParseSyntax: return "parse.syntax";
    case ErrCode::ParseNumber: return "parse.number";
    case ErrCode::ParseWidth: return "parse.width";
    case ErrCode::ParseDuplicate: return "parse.duplicate";
    case ErrCode::ParseUnknownRef: return "parse.unknown-ref";
    case ErrCode::ParseDepth: return "parse.depth";
    case ErrCode::JsonSyntax: return "json.syntax";
    case ErrCode::JsonNumber: return "json.number";
    case ErrCode::JsonDepth: return "json.depth";
    case ErrCode::NetlistInvariant: return "netlist.invariant";
    case ErrCode::SimMisuse: return "sim.misuse";
    case ErrCode::ResourceBddNodes: return "resource.bdd-nodes";
    case ErrCode::ResourceIteCache: return "resource.ite-cache";
    case ErrCode::ResourceWallClock: return "resource.wall-clock";
    case ErrCode::ResourceStimulus: return "resource.stimulus";
    case ErrCode::TaskFailed: return "task.failed";
    case ErrCode::TaskSkipped: return "task.skipped";
    case ErrCode::LintCombLoop: return "lint.comb_loop";
    case ErrCode::LintWidth: return "lint.width";
    case ErrCode::LintUndriven: return "lint.undriven";
    case ErrCode::LintMultiDriven: return "lint.multi_driven";
    case ErrCode::LintDangling: return "lint.dangling";
    case ErrCode::LintDeadLogic: return "lint.dead_logic";
    case ErrCode::LintIsolationUnsound: return "lint.isolation_unsound";
    case ErrCode::LintIsolationUnproven: return "lint.isolation_unproven";
    case ErrCode::LintIsolationOverhead: return "lint.isolation_overhead";
    case ErrCode::ConfidenceUnconverged: return "confidence.under-converged";
  }
  return "unknown";
}

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal";
  }
  return "unknown";
}

namespace {

// Minimal JSON string escaping; the error layer sits below obs so it
// cannot use the JsonValue writer.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(ch) & 0xF];
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string OpisoError::json() const {
  std::string out = "{\"error\":{\"code\":";
  append_json_string(out, code_name());
  out += ",\"severity\":";
  append_json_string(out, severity_name(severity_));
  out += ",\"message\":";
  append_json_string(out, what());
  if (input_line_ > 0) {
    out += ",\"input_line\":";
    out += std::to_string(input_line_);
  }
  if (loc_.file != nullptr) {
    out += ",\"source\":";
    append_json_string(out, std::string(loc_.file) + ":" + std::to_string(loc_.line));
  }
  out += "}}";
  return out;
}

namespace detail {
void throw_require_failure(const char* cond, const char* file, int line,
                           const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(ErrCode::Internal, os.str(), Severity::Error, SourceLoc{file, line}, 0);
}
}  // namespace detail

}  // namespace opiso
