#pragma once
// Structured error taxonomy for the opiso library.
//
// Every failure the library raises is an OpisoError: a stable
// machine-readable error code, a severity, the source location of the
// throw site, an optional input line (for parser diagnostics), and a
// one-line JSON rendering so drivers — the CLI, the sweep runner's
// fault-isolation layer, CI scripts — can record failures structurally
// instead of scraping what() strings.
//
// The legacy class names (Error, ParseError, NetlistError, SimError)
// remain as thin subclasses so existing throw/catch sites keep their
// meaning; new code should throw the most specific class with an
// explicit ErrCode. ResourceError is the budget-violation family: BDD
// node/ITE-cache budgets, per-task wall-clock and stimulus budgets.
// Resource errors are recoverable by design — callers degrade to a
// cheaper path (e.g. keep the factored activation expression when the
// canonical BDD form blows its node budget) or record the task as
// failed and continue the sweep.
//
// OPISO_REQUIRE validates preconditions at API boundaries; internal
// invariants use OPISO_ASSERT which compiles to a check in all build
// types (netlist corruption must never propagate silently into power
// numbers).

#include <sstream>
#include <stdexcept>
#include <string>

namespace opiso {

/// Stable error codes. The wire names (error_code_name) are part of the
/// report/diagnostic schema: existing names never change, new codes are
/// only appended.
enum class ErrCode : std::uint16_t {
  Internal = 0,       ///< violated invariant / requirement (a bug, not bad input)
  Io,                 ///< file open/read/write failure
  Usage,              ///< malformed API or CLI usage
  ParseSyntax,        ///< malformed textual input (.rtl/.rtn/stimulus)
  ParseNumber,        ///< unparseable or out-of-range number literal
  ParseWidth,         ///< declared/inferred width outside [1,64]
  ParseDuplicate,     ///< redefinition of a named signal
  ParseUnknownRef,    ///< reference to an undefined signal (dangling fanin)
  ParseDepth,         ///< expression nesting beyond the recursion budget
  JsonSyntax,         ///< malformed JSON document
  JsonNumber,         ///< NaN/Infinity or malformed JSON number
  JsonDepth,          ///< JSON nesting beyond the recursion budget
  NetlistInvariant,   ///< structural invariant violated (validate())
  SimMisuse,          ///< simulation driven inconsistently
  ResourceBddNodes,   ///< BDD unique-table node budget exceeded
  ResourceIteCache,   ///< BDD ITE computed-cache budget exceeded
  ResourceWallClock,  ///< per-task wall-clock budget exceeded
  ResourceStimulus,   ///< per-task stimulus (lane-cycle) budget exceeded
  TaskFailed,         ///< a sweep task failed (wraps the root cause)
  TaskSkipped,        ///< a sweep task was skipped (fail-fast after a failure)
  // Static-analysis findings (src/lint). Each lint pass reports its
  // findings under one of these codes, so a finding carries the same
  // stable wire name whether it surfaces as an `opiso lint` report
  // entry, a sweep pre-flight task failure, or a parse-time rejection.
  LintCombLoop,           ///< combinational cycle (comb_loop pass)
  LintWidth,              ///< width mismatch / silent truncation (width pass)
  LintUndriven,           ///< net with no driver (drivers pass)
  LintMultiDriven,        ///< conflicting drivers / fanout bookkeeping (drivers pass)
  LintDangling,           ///< net that drives nothing (drivers pass)
  LintDeadLogic,          ///< logic no register or output can observe (dead_logic pass)
  LintIsolationUnsound,   ///< AS = 0 does not imply the output is unobserved
  LintIsolationUnproven,  ///< soundness proof exceeded its BDD budget
  LintIsolationOverhead,  ///< AS gating depth eats into the STA slack
  ConfidenceUnconverged,  ///< power CI half-width above the requested gate
};

enum class Severity : std::uint8_t {
  Warning,  ///< recoverable; the operation degraded but completed
  Error,    ///< the operation failed; the process can continue
  Fatal,    ///< the process cannot meaningfully continue
};

/// Stable wire name of a code ("parse.width", "resource.bdd-nodes", ...).
[[nodiscard]] const char* error_code_name(ErrCode code) noexcept;
[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// Source location of the throw site (code, not input).
struct SourceLoc {
  const char* file = nullptr;
  int line = 0;
};

/// Base class of every exception thrown by the opiso library.
class OpisoError : public std::runtime_error {
 public:
  explicit OpisoError(ErrCode code, const std::string& message,
                      Severity severity = Severity::Error, SourceLoc loc = {},
                      int input_line = 0)
      : std::runtime_error(message),
        code_(code),
        severity_(severity),
        loc_(loc),
        input_line_(input_line) {}

  [[nodiscard]] ErrCode code() const noexcept { return code_; }
  [[nodiscard]] const char* code_name() const noexcept { return error_code_name(code_); }
  [[nodiscard]] Severity severity() const noexcept { return severity_; }
  [[nodiscard]] const SourceLoc& where() const noexcept { return loc_; }
  /// 1-based line of the offending *input* (0 = not input-related).
  [[nodiscard]] int input_line() const noexcept { return input_line_; }

  /// One-line JSON object: {"error":{"code":...,"severity":...,
  /// "message":...[,"input_line":N][,"source":"file:line"]}}. Rendered
  /// by hand so the error layer stays dependency-free.
  [[nodiscard]] std::string json() const;

 private:
  ErrCode code_;
  Severity severity_;
  SourceLoc loc_;
  int input_line_;
};

/// Legacy generic error; also the base of the specific families below so
/// `catch (const Error&)` keeps catching every library failure.
class Error : public OpisoError {
 public:
  explicit Error(const std::string& what, ErrCode code = ErrCode::Internal)
      : OpisoError(code, what) {}
  Error(ErrCode code, const std::string& message) : OpisoError(code, message) {}
  Error(ErrCode code, const std::string& message, Severity severity, SourceLoc loc,
        int input_line)
      : OpisoError(code, message, severity, loc, input_line) {}
};

/// Thrown when a netlist violates structural invariants (bad widths,
/// multiple drivers, combinational cycles, dangling references).
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what)
      : Error(ErrCode::NetlistInvariant, what) {}
  NetlistError(ErrCode code, const std::string& what) : Error(code, what) {}
};

/// Thrown on malformed textual input (.rtl/.rtn netlists, stimulus
/// files, JSON documents). `input_line` is 1-based when known.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(ErrCode::ParseSyntax, what) {}
  ParseError(ErrCode code, const std::string& what, int input_line = 0)
      : Error(code, what, Severity::Error, SourceLoc{}, input_line) {}
};

/// Thrown when a simulation is driven inconsistently (missing stimulus,
/// probing unknown nets, zero simulated cycles).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error(ErrCode::SimMisuse, what) {}
};

/// Thrown when a bounded computation exceeds its resource budget. Always
/// recoverable: severity defaults to Warning because the standard
/// reaction is to degrade (fall back to a cheaper representation, record
/// the task failure) rather than abort.
class ResourceError : public Error {
 public:
  ResourceError(ErrCode code, const std::string& what)
      : Error(code, what, Severity::Warning, SourceLoc{}, 0) {}
};

/// Thrown on file-system failures (open/read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(ErrCode::Io, what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* cond, const char* file, int line,
                                        const std::string& msg);
}  // namespace detail

}  // namespace opiso

#define OPISO_REQUIRE(cond, msg)                                                      \
  do {                                                                                \
    if (!(cond)) ::opiso::detail::throw_require_failure(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define OPISO_ASSERT(cond, msg) OPISO_REQUIRE(cond, msg)
