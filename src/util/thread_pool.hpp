#pragma once
// Deterministic fixed-size thread pool.
//
// The pool exists for one job shape: fan N independent, pure tasks
// across worker threads and wait for all of them (parallel_for). Tasks
// are identified by index and must write their outputs into
// index-addressed slots; because no task reads another task's output
// and the reduction happens in index order at the call site, results
// are bitwise identical for any worker count — the property the sweep
// runner's determinism CI job checks (`--threads 1` vs `--threads 8`).
//
// Scheduling is a single shared atomic next-index (work stealing at
// the granularity of one task); there is no task queue, no futures and
// no nesting — parallel_for calls are serialized by an internal mutex
// so the pool can be shared. Exceptions thrown by tasks are captured
// and the one with the smallest task index is rethrown after every
// in-flight task has drained (again: deterministic).
//
// Occupancy metrics flush to the registry once per parallel_for
// ("pool.tasks", "pool.busy_ns", "pool.occupancy", the per-worker
// "pool.worker_busy_ns" histogram and the high-water "pool.
// queue_depth_max" gauge), never per task.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace opiso {

class ThreadPool {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for every i in [0, n), blocking until all complete.
  /// Work is executed on the pool's workers only (the caller blocks),
  /// so a 1-thread pool is a serial — but still off-thread — schedule.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  // One job at a time; guarded by job_mu_ (serializes parallel_for
  // callers) + mu_ (worker handshake).
  std::mutex job_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new generation
  std::condition_variable done_cv_;  ///< caller waits for completion
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t done_ = 0;
  /// Workers currently inside the current generation's task loop. The
  /// caller waits for this to drain back to 0, not just for done_ == n_:
  /// a slow worker may otherwise still be reading fn_/n_ (or claiming a
  /// next_ index) while the next parallel_for rewrites them.
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  // First-by-index exception capture. task_failures_ counts every
  // throwing task of the current generation (flushed to the
  // "pool.task_failures" counter by parallel_for).
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
  std::uint64_t task_failures_ = 0;

  std::atomic<std::uint64_t> busy_ns_{0};
  /// Busy time of each worker that executed >= 1 task this generation;
  /// reported under mu_ before the completion signal, so parallel_for
  /// reads a consistent snapshot. Feeds "pool.worker_busy_ns".
  std::vector<std::uint64_t> generation_busy_ns_;
  std::size_t queue_depth_max_ = 0;  ///< max n over the pool's lifetime
};

}  // namespace opiso
