#pragma once
// Formal equivalence checking of the isolation transform.
//
// The paper notes that latch insertion complicates verification
// (Sec. 5.2); this module provides the machinery to *prove* the
// transform safe instead of only simulating it. Both designs are
// lowered to gates and their next-state/output functions are built as
// ROBDDs over a shared variable set (primary-input bits and register
// output bits, matched by name — the transform never renames either).
//
// Soundness argument (induction over cycles, equal reset states):
//   * every register pair loads under identical enables,
//   * whenever the enable holds, both load identical values,
//   * registers that do not load hold equal previous values,
//   * all primary outputs are identical functions of (PIs, state).
// Together these imply cycle-by-cycle equality of all observed outputs.
//
// check_isolation_equivalence() verifies exactly those conditions. It
// requires latch-free designs (AND/OR isolation styles) because
// transparent latches have no single-cut combinational semantics; the
// latch style remains covered by the simulation-based lock-step tests.

#include <string>
#include <vector>

#include "boolfn/bdd.hpp"
#include "netlist/netlist.hpp"

namespace opiso {

struct EquivResult {
  bool equivalent = false;
  std::string reason;  ///< first failing obligation if not equivalent
  std::size_t obligations_checked = 0;
  std::size_t bdd_nodes = 0;  ///< manager size after all checks
};

/// Prove that `transformed` is observationally equivalent to `original`
/// (same PO streams for every input stream from the all-zero state).
/// Both netlists must be latch-free; widths must keep bit-level BDDs
/// tractable (array multipliers beyond ~8x8 explode by nature).
[[nodiscard]] EquivResult check_isolation_equivalence(const Netlist& original,
                                                      const Netlist& transformed);

/// Budgeted variant: the internal BddManager is built with `budget`, so
/// a blow-up throws ResourceError (resource.bdd-nodes) instead of
/// running away — callers degrade the same way the activation-function
/// derivation does (catch and fall back to the conservative answer).
[[nodiscard]] EquivResult check_isolation_equivalence(const Netlist& original,
                                                      const Netlist& transformed,
                                                      const BddBudget& budget);

}  // namespace opiso
