#include "verify/equiv.hpp"

#include <map>
#include <unordered_map>

#include "lower/gate_level.hpp"
#include "netlist/traversal.hpp"

namespace opiso {

namespace {

bool has_latches(const Netlist& nl) {
  for (CellId id : nl.cell_ids()) {
    if (cell_kind_is_latch(nl.cell(id).kind)) return true;
  }
  return false;
}

/// Shared variable space across both designs, keyed by net name.
struct VarSpace {
  BddManager& mgr;
  std::unordered_map<std::string, BoolVar> vars;

  BddRef var_for(const std::string& name) {
    auto [it, inserted] = vars.emplace(name, static_cast<BoolVar>(vars.size()));
    (void)inserted;
    return mgr.var(it->second);
  }
};

/// Seed the variable space in interleaved bit order: bit 0 of every
/// word, then bit 1, and so on. Word-major (blocked) order — the
/// first-encounter default — makes the BDD of a w-bit adder output
/// exponential in w; interleaving keeps it linear, which is the
/// difference between rewritten-datapath checks finishing in
/// milliseconds and blowing a multi-million-node budget.
void seed_interleaved_order(const Netlist& g, VarSpace& space) {
  std::map<std::pair<unsigned, std::string>, bool> order;
  for (CellId id : g.cell_ids()) {
    const Cell& c = g.cell(id);
    if (c.kind != CellKind::PrimaryInput && c.kind != CellKind::Reg) continue;
    const std::string& name = g.net(c.out).name;
    unsigned bit = 0;
    const auto dot = name.rfind('.');
    if (dot != std::string::npos && dot + 1 < name.size()) {
      unsigned v = 0;
      bool all_digits = true;
      for (std::size_t i = dot + 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          all_digits = false;
          break;
        }
        v = v * 10 + static_cast<unsigned>(name[i] - '0');
      }
      if (all_digits) bit = v;
    }
    order.emplace(std::make_pair(bit, name), true);
  }
  for (const auto& [key, unused] : order) {
    (void)unused;
    (void)space.var_for(key.second);
  }
}

/// BDD of every net of a lowered (all-1-bit) netlist, with PI bits and
/// register output bits as variables.
std::vector<BddRef> build_net_bdds(const Netlist& g, BddManager& mgr, VarSpace& space) {
  std::vector<BddRef> fn(g.num_nets(), BddRef::invalid());
  for (CellId id : topological_order(g)) {
    const Cell& c = g.cell(id);
    if (!c.out.valid()) continue;
    BddRef f;
    auto in = [&](int p) {
      const BddRef r = fn[c.ins[static_cast<size_t>(p)].value()];
      OPISO_ASSERT(r.valid(), "equiv: net evaluated before its driver");
      return r;
    };
    switch (c.kind) {
      case CellKind::PrimaryInput:
      case CellKind::Reg:
        f = space.var_for(g.net(c.out).name);
        break;
      case CellKind::Constant:
        f = (c.param & 1) ? mgr.one() : mgr.zero();
        break;
      case CellKind::Buf:
        f = in(0);
        break;
      case CellKind::Not:
        f = mgr.bnot(in(0));
        break;
      case CellKind::And:
        f = mgr.band(in(0), in(1));
        break;
      case CellKind::Or:
        f = mgr.bor(in(0), in(1));
        break;
      case CellKind::Xor:
        f = mgr.bxor(in(0), in(1));
        break;
      case CellKind::Nand:
        f = mgr.bnot(mgr.band(in(0), in(1)));
        break;
      case CellKind::Nor:
        f = mgr.bnot(mgr.bor(in(0), in(1)));
        break;
      case CellKind::Xnor:
        f = mgr.bnot(mgr.bxor(in(0), in(1)));
        break;
      case CellKind::Mux2:
        f = mgr.ite(in(0), in(2), in(1));
        break;
      default:
        throw NetlistError("equiv: unexpected cell kind '" +
                           std::string(cell_kind_name(c.kind)) + "' in lowered netlist");
    }
    fn[c.out.value()] = f;
  }
  return fn;
}

}  // namespace

EquivResult check_isolation_equivalence(const Netlist& original, const Netlist& transformed) {
  return check_isolation_equivalence(original, transformed, BddBudget{});
}

EquivResult check_isolation_equivalence(const Netlist& original, const Netlist& transformed,
                                        const BddBudget& budget) {
  EquivResult res;
  if (has_latches(original) || has_latches(transformed)) {
    res.reason = "designs with latches have no single-cut combinational semantics; "
                 "use the simulation-based lock-step check";
    return res;
  }

  const GateLevelResult ga = lower_to_gates(original);
  const GateLevelResult gb = lower_to_gates(transformed);

  BddManager mgr(budget);
  VarSpace space{mgr, {}};
  seed_interleaved_order(ga.netlist, space);
  seed_interleaved_order(gb.netlist, space);
  const std::vector<BddRef> fa = build_net_bdds(ga.netlist, mgr, space);
  const std::vector<BddRef> fb = build_net_bdds(gb.netlist, mgr, space);

  // --- register obligations, matched by bit-net name -------------------
  std::unordered_map<std::string, CellId> regs_b;
  for (CellId id : gb.netlist.cell_ids()) {
    const Cell& c = gb.netlist.cell(id);
    if (c.kind == CellKind::Reg) regs_b.emplace(gb.netlist.net(c.out).name, id);
  }
  std::size_t matched = 0;
  for (CellId id : ga.netlist.cell_ids()) {
    const Cell& ca = ga.netlist.cell(id);
    if (ca.kind != CellKind::Reg) continue;
    const std::string& name = ga.netlist.net(ca.out).name;
    auto it = regs_b.find(name);
    if (it == regs_b.end()) {
      res.reason = "register bit '" + name + "' missing from transformed design";
      return res;
    }
    ++matched;
    const Cell& cb = gb.netlist.cell(it->second);
    const BddRef en_a = fa[ca.ins[1].value()];
    const BddRef en_b = fb[cb.ins[1].value()];
    ++res.obligations_checked;
    if (!mgr.equal(en_a, en_b)) {
      res.reason = "enable functions differ for register bit '" + name + "'";
      return res;
    }
    const BddRef d_a = fa[ca.ins[0].value()];
    const BddRef d_b = fb[cb.ins[0].value()];
    ++res.obligations_checked;
    if (!mgr.is_zero(mgr.band(en_a, mgr.bxor(d_a, d_b)))) {
      res.reason = "register bit '" + name + "' can load a different value while enabled";
      return res;
    }
  }
  if (matched != regs_b.size()) {
    res.reason = "transformed design has extra registers";
    return res;
  }

  // --- primary outputs, by position ------------------------------------
  if (ga.netlist.primary_outputs().size() != gb.netlist.primary_outputs().size()) {
    res.reason = "primary output counts differ";
    return res;
  }
  for (std::size_t i = 0; i < ga.netlist.primary_outputs().size(); ++i) {
    const NetId na = ga.netlist.cell(ga.netlist.primary_outputs()[i]).ins[0];
    const NetId nb = gb.netlist.cell(gb.netlist.primary_outputs()[i]).ins[0];
    ++res.obligations_checked;
    if (!mgr.equal(fa[na.value()], fb[nb.value()])) {
      res.reason = "primary output bit " + std::to_string(i) + " ('" +
                   ga.netlist.net(na).name + "') differs";
      return res;
    }
  }

  res.equivalent = true;
  res.bdd_nodes = mgr.num_nodes();
  return res;
}

}  // namespace opiso
