#pragma once
// Word-level to gate-level lowering.
//
// Expands every multi-bit cell into 1-bit primitives: ripple-carry
// adders/subtractors, array multipliers, per-bit muxes and registers,
// borrow-chain comparators, and per-bit isolation banks. Constant
// shifts lower to pure wiring. The result is a Netlist whose nets are
// all 1-bit wide, suitable for bit-level BDD construction (formal
// equivalence checking of the isolation transform, src/verify) and for
// gate-granularity activity analysis — the abstraction level at which
// the guarded-evaluation baseline [9] operates.
//
// Interface bits are named "<word>.<i>"; BitStimulusAdapter drives the
// lowered design from any word-level stimulus so lock-step equivalence
// runs do not need hand-written bit vectors.

#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/stimulus.hpp"

namespace opiso {

struct GateLevelResult {
  Netlist netlist;
  /// Old net id value -> bit nets (LSB first) in the lowered design.
  std::unordered_map<std::uint32_t, std::vector<NetId>> bits;

  [[nodiscard]] const std::vector<NetId>& bits_of(NetId word_net) const;
};

/// Lower `nl` to 1-bit primitives. Throws NetlistError on cells that
/// have no gate-level expansion (none currently).
[[nodiscard]] GateLevelResult lower_to_gates(const Netlist& nl);

/// Drives a lowered design's "<word>.<i>" bit inputs by slicing values
/// drawn from a word-level stimulus once per word per cycle.
class BitStimulusAdapter : public Stimulus {
 public:
  /// `word_design` is the original netlist the values are drawn for;
  /// `inner` must outlive the adapter.
  BitStimulusAdapter(const Netlist& word_design, Stimulus& inner);
  std::uint64_t next(const Netlist& nl, CellId pi, std::uint64_t cycle) override;

 private:
  const Netlist& word_design_;
  Stimulus& inner_;
  std::uint64_t cached_cycle_ = ~std::uint64_t{0};
  std::unordered_map<std::string, std::uint64_t> cached_values_;
};

}  // namespace opiso
