#include "lower/gate_power.hpp"

#include "sim/simulator.hpp"

namespace opiso {

GateRefPower measure_gate_level_power(const Netlist& word_design, Stimulus& stim,
                                      std::uint64_t cycles, const MacroPowerModel& model) {
  const GateLevelResult g = lower_to_gates(word_design);
  Simulator sim(g.netlist);
  BitStimulusAdapter bits(word_design, stim);
  sim.run(bits, cycles);

  GateRefPower ref;
  ref.gate_cells = g.netlist.num_cells();
  for (std::uint64_t t : sim.stats().toggles) ref.gate_toggles += t;
  ref.total_mw = PowerEstimator(model).estimate(g.netlist, sim.stats()).total_mw;
  return ref;
}

}  // namespace opiso
