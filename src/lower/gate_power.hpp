#pragma once
// Gate-level reference power measurement.
//
// Lowers a word-level design to gates, simulates it with the same
// stimulus, and estimates power from the actual per-gate switching —
// the "ground truth" the word-level macro models approximate. Used by
// bench_power_models to quantify the accuracy of the word-level and
// bit-level macro models under uniform vs. correlated data.

#include "lower/gate_level.hpp"
#include "power/estimator.hpp"

namespace opiso {

struct GateRefPower {
  double total_mw = 0.0;
  std::uint64_t gate_toggles = 0;  ///< total net toggles in the lowered design
  std::size_t gate_cells = 0;
};

/// `stim` is a word-level stimulus for `word_design`; it is adapted to
/// the lowered bit inputs internally.
[[nodiscard]] GateRefPower measure_gate_level_power(const Netlist& word_design, Stimulus& stim,
                                                    std::uint64_t cycles,
                                                    const MacroPowerModel& model = {});

}  // namespace opiso
