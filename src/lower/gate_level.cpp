#include "lower/gate_level.hpp"

#include "netlist/traversal.hpp"

namespace opiso {

namespace {

/// Gate factory with fresh-name bookkeeping and constant sharing.
struct GateBuilder {
  Netlist& g;
  int counter = 0;
  NetId const0;
  NetId const1;

  NetId zero() {
    if (!const0.valid()) const0 = g.add_const("c0", 0, 1);
    return const0;
  }
  NetId one() {
    if (!const1.valid()) const1 = g.add_const("c1", 1, 1);
    return const1;
  }
  std::string name() { return "g" + std::to_string(counter++); }

  NetId bin(CellKind kind, NetId a, NetId b) { return g.add_binop(kind, name(), a, b); }
  NetId un(CellKind kind, NetId a) { return g.add_unop(kind, name(), a); }

  /// Full adder; returns {sum, carry_out}.
  std::pair<NetId, NetId> full_adder(NetId a, NetId b, NetId cin) {
    const NetId axb = bin(CellKind::Xor, a, b);
    const NetId sum = bin(CellKind::Xor, axb, cin);
    const NetId and1 = bin(CellKind::And, a, b);
    const NetId and2 = bin(CellKind::And, cin, axb);
    const NetId cout = bin(CellKind::Or, and1, and2);
    return {sum, cout};
  }

  /// Ripple add of equal-length bit vectors; returns sums and carry out.
  std::pair<std::vector<NetId>, NetId> ripple_add(const std::vector<NetId>& a,
                                                  const std::vector<NetId>& b, NetId cin) {
    OPISO_ASSERT(a.size() == b.size(), "ripple_add: operand lengths differ");
    std::vector<NetId> sums;
    NetId carry = cin;
    for (std::size_t i = 0; i < a.size(); ++i) {
      auto [s, c] = full_adder(a[i], b[i], carry);
      sums.push_back(s);
      carry = c;
    }
    return {sums, carry};
  }
};

/// Pad (zero-extend) or truncate a bit vector to `width`.
std::vector<NetId> fit(GateBuilder& gb, std::vector<NetId> bits, unsigned width) {
  while (bits.size() < width) bits.push_back(gb.zero());
  bits.resize(width);
  return bits;
}

}  // namespace

const std::vector<NetId>& GateLevelResult::bits_of(NetId word_net) const {
  auto it = bits.find(word_net.value());
  OPISO_REQUIRE(it != bits.end(), "bits_of: net was not lowered");
  return it->second;
}

GateLevelResult lower_to_gates(const Netlist& nl) {
  nl.validate();
  GateLevelResult res;
  res.netlist.set_name(nl.name() + "_gates");
  GateBuilder gb{res.netlist};

  auto bits_of = [&](NetId old_net) -> std::vector<NetId>& {
    auto it = res.bits.find(old_net.value());
    OPISO_ASSERT(it != res.bits.end(), "lowering visited a net before its driver");
    return it->second;
  };
  auto set_bits = [&](NetId old_net, std::vector<NetId> bits) {
    res.bits.emplace(old_net.value(), std::move(bits));
  };

  // Registers and latches first (their outputs are sources for the
  // combinational cells); D/EN pins are patched at the end.
  struct SeqPatch {
    std::vector<CellId> bit_cells;  ///< LSB first
    NetId old_d;
    NetId old_en;
  };
  std::vector<SeqPatch> patches;

  // Primary inputs in original order keeps BitStimulusAdapter aligned.
  for (CellId pi : nl.primary_inputs()) {
    const Cell& c = nl.cell(pi);
    std::vector<NetId> bits;
    for (unsigned i = 0; i < c.width; ++i) {
      bits.push_back(res.netlist.add_input(nl.net(c.out).name + "." + std::to_string(i), 1));
    }
    set_bits(c.out, std::move(bits));
  }
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::Reg && c.kind != CellKind::Latch && c.kind != CellKind::IsoLatch) {
      continue;
    }
    SeqPatch patch;
    patch.old_d = c.ins[0];
    patch.old_en = c.ins[1];
    std::vector<NetId> bits;
    for (unsigned i = 0; i < c.width; ++i) {
      const std::string bit_name = nl.net(c.out).name + "." + std::to_string(i);
      const NetId q = res.netlist.add_net(bit_name, 1);
      // D self-loops on Q and EN borrows Q until the patch pass; both
      // are 1-bit so the placeholder is always legal.
      const CellKind kind = c.kind == CellKind::Reg ? CellKind::Reg : CellKind::Latch;
      patch.bit_cells.push_back(
          res.netlist.add_cell(kind, res.netlist.fresh_cell_name("b:" + bit_name), {q, q}, q));
      bits.push_back(q);
    }
    set_bits(c.out, bits);
    patches.push_back(std::move(patch));
  }

  for (CellId id : topological_order(nl)) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::PrimaryInput:
      case CellKind::Reg:
      case CellKind::Latch:
      case CellKind::IsoLatch:
        break;  // handled above
      case CellKind::PrimaryOutput:
        break;  // handled after the loop (order preservation)
      case CellKind::Constant: {
        std::vector<NetId> bits;
        for (unsigned i = 0; i < c.width; ++i) {
          bits.push_back((c.param >> i) & 1 ? gb.one() : gb.zero());
        }
        set_bits(c.out, std::move(bits));
        break;
      }
      case CellKind::Not:
      case CellKind::Buf: {
        const auto in = fit(gb, bits_of(c.ins[0]), c.width);
        std::vector<NetId> bits;
        for (unsigned i = 0; i < c.width; ++i) {
          bits.push_back(c.kind == CellKind::Not ? gb.un(CellKind::Not, in[i]) : in[i]);
        }
        set_bits(c.out, std::move(bits));
        break;
      }
      case CellKind::And:
      case CellKind::Or:
      case CellKind::Xor:
      case CellKind::Nand:
      case CellKind::Nor:
      case CellKind::Xnor: {
        const auto a = fit(gb, bits_of(c.ins[0]), c.width);
        const auto b = fit(gb, bits_of(c.ins[1]), c.width);
        std::vector<NetId> bits;
        for (unsigned i = 0; i < c.width; ++i) bits.push_back(gb.bin(c.kind, a[i], b[i]));
        set_bits(c.out, std::move(bits));
        break;
      }
      case CellKind::Mux2: {
        const NetId sel = bits_of(c.ins[0]).at(0);
        const auto a = fit(gb, bits_of(c.ins[1]), c.width);
        const auto b = fit(gb, bits_of(c.ins[2]), c.width);
        std::vector<NetId> bits;
        for (unsigned i = 0; i < c.width; ++i) {
          bits.push_back(res.netlist.add_mux2(gb.name(), sel, a[i], b[i]));
        }
        set_bits(c.out, std::move(bits));
        break;
      }
      case CellKind::Add: {
        const auto a = fit(gb, bits_of(c.ins[0]), c.width);
        const auto b = fit(gb, bits_of(c.ins[1]), c.width);
        set_bits(c.out, gb.ripple_add(a, b, gb.zero()).first);
        break;
      }
      case CellKind::Sub: {
        // a - b = a + ~b + 1.
        const auto a = fit(gb, bits_of(c.ins[0]), c.width);
        auto b = fit(gb, bits_of(c.ins[1]), c.width);
        for (NetId& bit : b) bit = gb.un(CellKind::Not, bit);
        set_bits(c.out, gb.ripple_add(a, b, gb.one()).first);
        break;
      }
      case CellKind::Mul: {
        // Array multiplier: accumulate shifted partial-product rows.
        const auto& a = bits_of(c.ins[0]);
        const auto& b = bits_of(c.ins[1]);
        std::vector<NetId> acc(c.width, gb.zero());
        for (std::size_t j = 0; j < b.size() && j < c.width; ++j) {
          std::vector<NetId> row(c.width, gb.zero());
          for (std::size_t i = 0; i < a.size() && i + j < c.width; ++i) {
            row[i + j] = gb.bin(CellKind::And, a[i], b[j]);
          }
          acc = gb.ripple_add(acc, row, gb.zero()).first;
        }
        set_bits(c.out, std::move(acc));
        break;
      }
      case CellKind::Eq: {
        const unsigned w = std::max(nl.net(c.ins[0]).width, nl.net(c.ins[1]).width);
        const auto a = fit(gb, bits_of(c.ins[0]), w);
        const auto b = fit(gb, bits_of(c.ins[1]), w);
        NetId all = gb.bin(CellKind::Xnor, a[0], b[0]);
        for (unsigned i = 1; i < w; ++i) {
          all = gb.bin(CellKind::And, all, gb.bin(CellKind::Xnor, a[i], b[i]));
        }
        set_bits(c.out, {all});
        break;
      }
      case CellKind::Lt: {
        // a < b  iff  (a + ~b + 1) produces no carry out.
        const unsigned w = std::max(nl.net(c.ins[0]).width, nl.net(c.ins[1]).width);
        const auto a = fit(gb, bits_of(c.ins[0]), w);
        auto b = fit(gb, bits_of(c.ins[1]), w);
        for (NetId& bit : b) bit = gb.un(CellKind::Not, bit);
        const NetId carry = gb.ripple_add(a, b, gb.one()).second;
        set_bits(c.out, {gb.un(CellKind::Not, carry)});
        break;
      }
      case CellKind::Shl:
      case CellKind::Shr: {
        const auto in = fit(gb, bits_of(c.ins[0]), c.width);
        std::vector<NetId> bits(c.width, gb.zero());
        for (unsigned i = 0; i < c.width; ++i) {
          const std::int64_t src = c.kind == CellKind::Shl
                                       ? static_cast<std::int64_t>(i) - static_cast<std::int64_t>(c.param)
                                       : static_cast<std::int64_t>(i) + static_cast<std::int64_t>(c.param);
          if (src >= 0 && src < static_cast<std::int64_t>(c.width)) {
            bits[i] = in[static_cast<std::size_t>(src)];
          }
        }
        set_bits(c.out, std::move(bits));
        break;
      }
      case CellKind::IsoAnd: {
        const auto d = bits_of(c.ins[0]);
        const NetId as = bits_of(c.ins[1]).at(0);
        std::vector<NetId> bits;
        for (unsigned i = 0; i < c.width; ++i) bits.push_back(gb.bin(CellKind::And, d[i], as));
        set_bits(c.out, std::move(bits));
        break;
      }
      case CellKind::IsoOr: {
        const auto d = bits_of(c.ins[0]);
        const NetId as = bits_of(c.ins[1]).at(0);
        const NetId nas = gb.un(CellKind::Not, as);
        std::vector<NetId> bits;
        for (unsigned i = 0; i < c.width; ++i) bits.push_back(gb.bin(CellKind::Or, d[i], nas));
        set_bits(c.out, std::move(bits));
        break;
      }
    }
  }

  // Patch sequential bit cells: D per bit, shared 1-bit EN.
  for (const SeqPatch& p : patches) {
    const auto d = fit(gb, bits_of(p.old_d), static_cast<unsigned>(p.bit_cells.size()));
    const NetId en = bits_of(p.old_en).at(0);
    for (std::size_t i = 0; i < p.bit_cells.size(); ++i) {
      res.netlist.reconnect_input(p.bit_cells[i], 0, d[i]);
      res.netlist.reconnect_input(p.bit_cells[i], 1, en);
    }
  }

  // Primary outputs in original order. Bit names derive from the PO
  // cell name (unique by construction), not the source net: two word
  // outputs may share one driver net (CSE does this), and net-derived
  // names would then collide.
  for (CellId po : nl.primary_outputs()) {
    const Cell& c = nl.cell(po);
    const auto& bits = bits_of(c.ins[0]);
    std::string base = c.name;
    if (base.rfind("po:", 0) == 0) base = base.substr(3);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      res.netlist.add_output(base + ".po" + std::to_string(i), bits[i]);
    }
  }

  res.netlist.validate();
  return res;
}

BitStimulusAdapter::BitStimulusAdapter(const Netlist& word_design, Stimulus& inner)
    : word_design_(word_design), inner_(inner) {}

std::uint64_t BitStimulusAdapter::next(const Netlist& nl, CellId pi, std::uint64_t cycle) {
  if (cycle != cached_cycle_) {
    cached_cycle_ = cycle;
    cached_values_.clear();
    for (CellId word_pi : word_design_.primary_inputs()) {
      const Cell& c = word_design_.cell(word_pi);
      cached_values_[word_design_.net(c.out).name] = inner_.next(word_design_, word_pi, cycle);
    }
  }
  const std::string& bit_name = nl.net(nl.cell(pi).out).name;
  const auto dot = bit_name.rfind('.');
  OPISO_REQUIRE(dot != std::string::npos, "BitStimulusAdapter: input is not a lowered bit");
  const std::string word = bit_name.substr(0, dot);
  const unsigned bit = static_cast<unsigned>(std::stoul(bit_name.substr(dot + 1)));
  auto it = cached_values_.find(word);
  OPISO_REQUIRE(it != cached_values_.end(), "BitStimulusAdapter: unknown word input " + word);
  return (it->second >> bit) & 1;
}

}  // namespace opiso
