#include "timing/sta.hpp"

#include <algorithm>
#include <limits>

#include "netlist/traversal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace opiso {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

bool is_launch(CellKind kind) {
  return kind == CellKind::Reg || kind == CellKind::PrimaryInput || kind == CellKind::Constant;
}
}  // namespace

TimingReport run_sta(const Netlist& nl, const DelayModel& dm) {
  OPISO_SPAN("sta.run");
  std::uint64_t node_visits = 0;
  TimingReport rep;
  rep.arrival.assign(nl.num_nets(), 0.0);
  rep.required.assign(nl.num_nets(), kInf);
  rep.slack.assign(nl.num_nets(), kInf);

  const std::vector<CellId> order = topological_order(nl);

  // Forward: arrival times.
  for (CellId id : order) {
    ++node_visits;
    const Cell& c = nl.cell(id);
    if (!c.out.valid()) continue;
    const double load =
        dm.load_per_fanout_ns * static_cast<double>(nl.net(c.out).fanouts.size());
    double arr = 0.0;
    if (is_launch(c.kind)) {
      arr = (c.kind == CellKind::Reg ? dm.clk_to_q_ns : 0.0);
    } else {
      double worst_in = 0.0;
      for (NetId in : c.ins) worst_in = std::max(worst_in, rep.arrival[in.value()]);
      arr = worst_in + dm.cell_delay(c.kind, c.width);
    }
    rep.arrival[c.out.value()] = arr + load;
  }

  // Backward: required times, seeded at capture points.
  rep.critical_path_delay = 0.0;
  for (CellId id : nl.cell_ids()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::Reg) {
      // D and EN pins must settle setup before the edge.
      for (NetId in : c.ins) {
        rep.required[in.value()] =
            std::min(rep.required[in.value()], dm.clock_period_ns - dm.setup_ns);
        rep.critical_path_delay = std::max(rep.critical_path_delay, rep.arrival[in.value()]);
      }
    } else if (c.kind == CellKind::PrimaryOutput) {
      rep.required[c.ins[0].value()] =
          std::min(rep.required[c.ins[0].value()], dm.clock_period_ns);
      rep.critical_path_delay = std::max(rep.critical_path_delay, rep.arrival[c.ins[0].value()]);
    }
  }

  // Propagate required times backward through combinational cells in
  // reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ++node_visits;
    const Cell& c = nl.cell(*it);
    if (is_launch(c.kind) || c.kind == CellKind::PrimaryOutput || !c.out.valid()) continue;
    const double load =
        dm.load_per_fanout_ns * static_cast<double>(nl.net(c.out).fanouts.size());
    const double req_out = rep.required[c.out.value()];
    if (req_out == kInf) continue;  // dead logic
    const double req_in = req_out - load - dm.cell_delay(c.kind, c.width);
    for (NetId in : c.ins) {
      rep.required[in.value()] = std::min(rep.required[in.value()], req_in);
    }
  }

  rep.worst_slack = kInf;
  for (std::size_t n = 0; n < rep.slack.size(); ++n) {
    rep.slack[n] = rep.required[n] - rep.arrival[n];
    rep.worst_slack = std::min(rep.worst_slack, rep.slack[n]);
  }
  if (rep.worst_slack == kInf) rep.worst_slack = dm.clock_period_ns;

  obs::metrics().counter("sta.runs").add(1);
  obs::metrics().counter("sta.node_visits").add(node_visits);
  return rep;
}

double cell_slack(const Netlist& nl, const TimingReport& rep, CellId cell) {
  const Cell& c = nl.cell(cell);
  if (c.out.valid()) return rep.slack[c.out.value()];
  return rep.slack[c.ins.at(0).value()];
}

}  // namespace opiso
