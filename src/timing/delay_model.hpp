#pragma once
// Per-kind delay model of the RT cell library.
//
// Stand-in for the synthesis system's timing engine the paper consults
// (Sec. 5.1): datapath modules have width-dependent propagation delays,
// gates have small fixed delays, and every fanout pin adds wire/input
// load delay on the driving net — this last term is what makes the
// activation logic's "increased capacitive loading on every signal used
// in it" visible to the slack analysis.

#include "netlist/cell.hpp"

namespace opiso {

struct DelayModel {
  double clock_period_ns = 20.0;  ///< timing constraint
  double clk_to_q_ns = 0.25;      ///< register output availability
  double setup_ns = 0.20;         ///< required margin at register D
  double load_per_fanout_ns = 0.02;

  /// Intrinsic propagation delay of a cell (input pin to output).
  [[nodiscard]] double cell_delay(CellKind kind, unsigned width) const;
};

}  // namespace opiso
