#pragma once
// Static timing analysis over the RT netlist.
//
// Forward pass computes the latest arrival time of every net (register
// outputs launch at clk-to-q, primary inputs at 0); transparent latches
// are analyzed as flow-through combinational elements (worst case).
// Backward pass computes required times from the capture points
// (register D pins at period − setup, primary outputs at period).
// Slack of a net/cell is required − arrival; the design meets timing iff
// worst_slack ≥ 0.
//
// The isolation algorithm consumes per-cell slack (candidate veto,
// Algorithm 1 lines 5–9) and net arrival times (cheap pre-commit
// estimate of the slack reduction an isolation bank would cause).

#include <vector>

#include "netlist/netlist.hpp"
#include "timing/delay_model.hpp"

namespace opiso {

struct TimingReport {
  std::vector<double> arrival;   ///< per net (latest)
  std::vector<double> required;  ///< per net (earliest requirement)
  std::vector<double> slack;     ///< per net: required − arrival
  double worst_slack = 0.0;
  double critical_path_delay = 0.0;  ///< latest arrival at any capture point

  [[nodiscard]] double net_arrival(NetId n) const { return arrival[n.value()]; }
  [[nodiscard]] double net_slack(NetId n) const { return slack[n.value()]; }
};

[[nodiscard]] TimingReport run_sta(const Netlist& nl, const DelayModel& dm);

/// Slack of a cell = slack of its output net (for sinks: of its input).
[[nodiscard]] double cell_slack(const Netlist& nl, const TimingReport& rep, CellId cell);

}  // namespace opiso
