#include "timing/delay_model.hpp"

namespace opiso {

double DelayModel::cell_delay(CellKind kind, unsigned width) const {
  const double w = static_cast<double>(width);
  switch (kind) {
    case CellKind::PrimaryInput:
    case CellKind::PrimaryOutput:
    case CellKind::Constant:
      return 0.0;
    case CellKind::Add:
    case CellKind::Sub:
      // Ripple-carry-style: linear in width.
      return 0.35 + 0.11 * w;
    case CellKind::Mul:
      return 0.60 + 0.22 * w;
    case CellKind::Eq:
    case CellKind::Lt:
      return 0.30 + 0.05 * w;
    case CellKind::Shl:
    case CellKind::Shr:
      return 0.05;  // constant shifts are wiring
    case CellKind::Not:
    case CellKind::Buf:
      return 0.08;
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Nand:
    case CellKind::Nor:
      return 0.12;
    case CellKind::Xor:
    case CellKind::Xnor:
      return 0.16;
    case CellKind::Mux2:
      return 0.18;
    case CellKind::Reg:
      return clk_to_q_ns;  // used on the Q side by the STA
    case CellKind::Latch:
    case CellKind::IsoLatch:
      return 0.20;
    case CellKind::IsoAnd:
    case CellKind::IsoOr:
      return 0.12;
  }
  return 0.0;
}

}  // namespace opiso
