#include "designs/designs.hpp"

namespace opiso {

// The circuit of Fig. 1, reconstructed so that the structural activation
// derivation produces exactly the functions printed in Sec. 3:
//
//   a1 = A + B
//   m2 = S2 ? a1 : D      -> r1 (EN = G1)   ... a1 observed iff S2·G1
//   m0 = S0 ? C  : a1                        ... a1 passes iff !S0
//   m1 = S1 ? m0 : E      -> a0.A            ... and iff S1
//   a0 = m1 + C           -> r0 (EN = G0)   ... a0 observed iff G0
//
//   AS_a0 = G0
//   AS_a1 = S2·G1 + S1·!S0·G0
//   g^{a1}_{a0,A} = S1·!S0
Netlist make_fig1(unsigned width) {
  Netlist nl("fig1");
  const NetId a = nl.add_input("A", width);
  const NetId b = nl.add_input("B", width);
  const NetId c = nl.add_input("C", width);
  const NetId d = nl.add_input("D", width);
  const NetId e = nl.add_input("E", width);
  const NetId s0 = nl.add_input("S0", 1);
  const NetId s1 = nl.add_input("S1", 1);
  const NetId s2 = nl.add_input("S2", 1);
  const NetId g0 = nl.add_input("G0", 1);
  const NetId g1 = nl.add_input("G1", 1);

  const NetId a1 = nl.add_binop(CellKind::Add, "a1", a, b);
  const NetId m2 = nl.add_mux2("m2", s2, d, a1);   // S2 = 1 selects a1
  const NetId r1 = nl.add_reg("r1", m2, g1);
  const NetId m0 = nl.add_mux2("m0", s0, a1, c);   // S0 = 0 selects a1
  const NetId m1 = nl.add_mux2("m1", s1, e, m0);   // S1 = 1 selects m0
  const NetId a0 = nl.add_binop(CellKind::Add, "a0", m1, c);
  const NetId r0 = nl.add_reg("r0", a0, g0);

  nl.add_output("out0", r0);
  nl.add_output("out1", r1);
  nl.validate();
  return nl;
}

Fig1Nets fig1_nets(const Netlist& nl) {
  Fig1Nets f;
  f.a1_out = nl.find_net("a1");
  f.a0_out = nl.find_net("a0");
  f.a1 = nl.net(f.a1_out).driver;
  f.a0 = nl.net(f.a0_out).driver;
  return f;
}

}  // namespace opiso
